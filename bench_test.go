// Benchmarks that regenerate each table of the paper's evaluation.
// Run a single table with e.g.
//
//	go test -bench=BenchmarkTable5 -benchtime=1x
//
// Each benchmark reports the headline metric of its table as a custom
// unit so regressions in the reproduction are visible in benchstat
// output (geomean overheads in percent, counts otherwise).
package pibe_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cpu"
	"repro/internal/interp"
	"repro/internal/ir"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
	suiteErr  error
)

func sharedSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = bench.NewSuite(1)
	})
	if suiteErr != nil {
		b.Fatalf("NewSuite: %v", suiteErr)
	}
	return suite
}

// lastPct extracts the last percentage from a table row cell like
// "+138.1%" and returns it as a float, for ReportMetric.
func lastPct(cell string) float64 {
	cell = strings.TrimSuffix(strings.TrimSpace(cell), "%")
	cell = strings.TrimPrefix(cell, "+")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0
	}
	return v
}

func runTable(b *testing.B, id string, metric func(*bench.Table) (float64, string)) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.TableByID(id)
		if err != nil {
			b.Fatalf("table %s: %v", id, err)
		}
		if metric != nil {
			v, unit := metric(t)
			b.ReportMetric(v, unit)
		}
	}
}

// geomeanOfLastRow pulls the geomean out of a table whose final row is
// the GEOMEAN row; col selects the column.
func geomeanOfLastRow(col int, unit string) func(*bench.Table) (float64, string) {
	return func(t *bench.Table) (float64, string) {
		last := t.Rows[len(t.Rows)-1]
		return lastPct(last[col]), unit
	}
}

func BenchmarkTable1(b *testing.B) {
	runTable(b, "1", func(t *bench.Table) (float64, string) {
		// icall ticks under all defenses (paper: 73).
		v, _ := strconv.ParseFloat(t.Rows[len(t.Rows)-1][2], 64)
		return v, "alldef-icall-ticks"
	})
}

func BenchmarkTable2(b *testing.B) {
	runTable(b, "2", geomeanOfLastRow(3, "pgo-geomean-%"))
}

func BenchmarkTable3(b *testing.B) {
	runTable(b, "3", geomeanOfLastRow(4, "icp99.999-geomean-%"))
}

func BenchmarkTable4(b *testing.B) {
	runTable(b, "4", func(t *bench.Table) (float64, string) {
		v, _ := strconv.ParseFloat(t.Rows[0][1], 64)
		return v, "single-target-sites"
	})
}

func BenchmarkTable5(b *testing.B) {
	runTable(b, "5", geomeanOfLastRow(6, "lax-geomean-%"))
}

func BenchmarkTable6(b *testing.B) {
	runTable(b, "6", func(t *bench.Table) (float64, string) {
		return lastPct(t.Rows[len(t.Rows)-1][2]), "alldef-pibe-geomean-%"
	})
}

func BenchmarkTable7(b *testing.B) {
	runTable(b, "7", func(t *bench.Table) (float64, string) {
		// nginx all-defenses PIBE degradation (last column of row 3).
		return lastPct(t.Rows[3][4]), "nginx-alldef-pibe-%"
	})
}

func BenchmarkTable8(b *testing.B)  { runTable(b, "8", nil) }
func BenchmarkTable9(b *testing.B)  { runTable(b, "9", nil) }
func BenchmarkTable10(b *testing.B) { runTable(b, "10", nil) }

func BenchmarkTable11(b *testing.B) {
	runTable(b, "11", func(t *bench.Table) (float64, string) {
		v, _ := strconv.ParseFloat(t.Rows[1][1], 64)
		return v, "vuln-icalls"
	})
}

func BenchmarkTable12(b *testing.B) { runTable(b, "12", nil) }

func BenchmarkRobustness(b *testing.B) {
	runTable(b, "robustness", func(t *bench.Table) (float64, string) {
		// Apache-profile (mismatched) geomean, the §8.4 headline.
		return lastPct(t.Rows[2][1]), "apache-profile-geomean-%"
	})
}

// dispatchMachine builds the dispatch-microbenchmark machine — the same
// loop of straight-line work, direct calls and a skewed indirect call
// that internal/interp's engine benchmarks use — so the root pair below
// tracks raw per-instruction dispatch cost for the two execution tiers
// in BENCH_engine.json's trajectory.
func dispatchMachine(b *testing.B, eng interp.Engine) (*interp.Machine, int) {
	b.Helper()
	m := ir.NewModule()
	w := ir.NewFunction(m, "work", 0)
	w.ALU(10).Ret()
	ha := ir.NewFunction(m, "handler_a", 1)
	ha.ALU(2).Ret()
	hb := ir.NewFunction(m, "handler_b", 1)
	hb.ALU(20).Ret()
	e := ir.NewFunction(m, "entry", 0)
	e.Jmp("loop")
	e.NewBlock("loop")
	e.ALU(12)
	e.Call("work", 0)
	site := e.IndirectCall(1)
	e.BrLoop(100, "loop", "out")
	e.NewBlock("out")
	e.Ret()
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		b.Fatalf("Verify: %v", err)
	}
	p, err := interp.Compile(m)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	mc := interp.NewMachine(p, 1)
	mc.CPU = cpu.New(cpu.DefaultParams())
	mc.Engine = eng
	res := interp.NewResolver()
	d, err := interp.NewDist(
		[]int{p.FuncIndex("handler_a"), p.FuncIndex("handler_b")},
		[]uint64{9, 1},
	)
	if err != nil {
		b.Fatalf("NewDist: %v", err)
	}
	res.Set(site, d)
	mc.Res = res
	return mc, p.FuncIndex("entry")
}

func runDispatch(b *testing.B, eng interp.Engine) {
	mc, idx := dispatchMachine(b, eng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mc.RunIndex(idx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineRun times the packed-event interpreter's dispatch;
// BenchmarkMachineRunCompiled times the threaded-code tier on the same
// machine shape. The pair mirrors the machine_run_interp and
// machine_run_compiled rows of `pibe bench-engine`.
func BenchmarkMachineRun(b *testing.B)         { runDispatch(b, interp.EngineInterp) }
func BenchmarkMachineRunCompiled(b *testing.B) { runDispatch(b, interp.EngineCompiled) }
