// Package pibe is a reproduction, in pure Go, of "PIBE: Practical Kernel
// Control-Flow Hardening with Profile-Guided Indirect Branch Elimination"
// (Duta, Giuffrida, Bos, van der Kouwe — ASPLOS 2021).
//
// PIBE makes comprehensive transient control-flow defenses (retpolines,
// return retpolines, LVI-CFI) affordable by first *eliminating* the
// hottest indirect branches — indirect calls via profile-guided indirect
// call promotion, returns via a security-tailored greedy inliner — and
// only then hardening whatever indirect branches remain.
//
// The original system is an LLVM pass pipeline applied to Linux; this
// package reproduces it against a synthetic kernel and a
// microarchitectural timing simulator (see DESIGN.md for the substitution
// map). The pipeline is:
//
//	sys, _ := pibe.NewSyntheticKernel(pibe.KernelConfig{Seed: 1})
//	profile, _ := sys.Profile(pibe.LMBench, 10)     // profiling binary run
//	img, _ := sys.Build(pibe.BuildConfig{           // production binary
//	    Profile:  profile,
//	    Optimize: pibe.OptimizeConfig{ICPBudget: 0.99999, InlineBudget: 0.999},
//	    Defenses: pibe.AllDefenses,
//	})
//	lat, _ := img.MeasureLMBench(pibe.LMBench)
package pibe

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/attack"
	"repro/internal/cpu"
	"repro/internal/diffcheck"
	"repro/internal/fleet"
	"repro/internal/harden"
	"repro/internal/icp"
	"repro/internal/inline"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/jumpswitch"
	"repro/internal/kernel"
	"repro/internal/llvminline"
	"repro/internal/prof"
	"repro/internal/resilience"
	"repro/internal/workload"
)

// Workload selects which workload drives profiling or measurement.
type Workload = workload.Flavor

// The available workloads.
const (
	LMBench = workload.LMBench
	Apache  = workload.Apache
	Nginx   = workload.Nginx
	DBench  = workload.DBench
)

// Defenses selects the transient mitigations to enforce.
type Defenses struct {
	// Retpolines defends indirect calls against Spectre V2.
	Retpolines bool
	// RetRetpolines defends returns against Ret2spec / RSB poisoning.
	RetRetpolines bool
	// LVICFI defends indirect branch target loads against LVI.
	LVICFI bool
	// LLVMCFI, StackProtector and SafeStack are the cheap non-transient
	// defenses of Table 1, included for completeness.
	LLVMCFI        bool
	StackProtector bool
	SafeStack      bool
	// FineIBT places an IBT landing pad plus per-site SID check at every
	// indirect-call target; dispatch stays BTB-predicted (forward edge).
	FineIBT bool
	// PACCFI signs function pointers on the call side and authenticates
	// return addresses with ARM-style pointer authentication (both edges).
	PACCFI bool
	// VeriFence fences only the indirect branches the IR verifier cannot
	// prove safe; provable sites stay bare and jump tables are fenced in
	// place rather than lowered.
	VeriFence bool
	// RSBRefill stuffs the RSB on every syscall entry instead of
	// hardening returns — the ad-hoc mitigation §6.4 argues return
	// retpolines should replace.
	RSBRefill bool
}

// AllDefenses enables the comprehensive configuration of Table 5.
var AllDefenses = Defenses{Retpolines: true, RetRetpolines: true, LVICFI: true}

func (d Defenses) String() string { return d.config().String() }

func (d Defenses) config() harden.Config {
	return harden.Config{
		Retpolines: d.Retpolines, RetRetpolines: d.RetRetpolines, LVICFI: d.LVICFI,
		LLVMCFI: d.LLVMCFI, StackProtector: d.StackProtector, SafeStack: d.SafeStack,
		FineIBT: d.FineIBT, PACCFI: d.PACCFI, VeriFence: d.VeriFence,
		RSBRefill: d.RSBRefill,
	}
}

// KernelConfig parameterizes the synthetic kernel (see internal/kernel).
type KernelConfig struct {
	// Seed makes generation deterministic; equal seeds yield identical
	// kernels.
	Seed int64
	// ColdFuncs scales the never-executed driver corpus; zero means the
	// default (2200).
	ColdFuncs int
	// HelperLayers adds that many layers of intermediate helper
	// functions between the subsystem helpers and the leaf primitives,
	// deepening hot call chains and the static census; zero keeps the
	// default calibrated kernel.
	HelperLayers int
}

// OptimizeConfig selects PIBE's profile-guided transformations.
// The zero value applies none (the paper's "no optimization" columns).
type OptimizeConfig struct {
	// ICPBudget is the indirect-call-promotion budget as a fraction of
	// cumulative indirect-branch weight (0.99 for "99%"); zero disables
	// promotion.
	ICPBudget float64
	// InlineBudget is the inlining budget over cumulative direct-call
	// weight; zero disables inlining.
	InlineBudget float64
	// LaxBudget disables the size heuristics (Rules 2 and 3) for sites
	// within this budget — the paper's "lax heuristics" configuration.
	LaxBudget float64
	// MaxICPTargets caps promoted targets per site (0 = unbounded,
	// PIBE's default; set to 1 or 2 for the classic-ICP ablation).
	MaxICPTargets int
	// UseLLVMInliner replaces PIBE's greedy hottest-first inliner with
	// the LLVM-default bottom-up baseline of §8.4.
	UseLLVMInliner bool
	// DisableRule2 / DisableRule3 turn off the respective size
	// heuristics entirely (ablations).
	DisableRule2 bool
	DisableRule3 bool
	// DisableInheritance turns off the constant-ratio heuristic for
	// inherited call sites (ablation D5).
	DisableInheritance bool
}

func (o OptimizeConfig) any() bool { return o.ICPBudget > 0 || o.InlineBudget > 0 }

// validate rejects configurations that would silently misbehave: NaN,
// negative or >1 budgets, and a negative target cap.
func (o OptimizeConfig) validate() error {
	budgets := []struct {
		name string
		v    float64
	}{
		{"ICPBudget", o.ICPBudget},
		{"InlineBudget", o.InlineBudget},
		{"LaxBudget", o.LaxBudget},
	}
	for _, b := range budgets {
		if math.IsNaN(b.v) {
			return resilience.Faultf(resilience.PhaseBuild, resilience.KindConfig, b.name,
				"pibe: OptimizeConfig.%s is NaN", b.name)
		}
		if b.v < 0 || b.v > 1 {
			return resilience.Faultf(resilience.PhaseBuild, resilience.KindConfig, b.name,
				"pibe: OptimizeConfig.%s = %v, want a fraction in [0, 1]", b.name, b.v)
		}
	}
	if o.MaxICPTargets < 0 {
		return resilience.Faultf(resilience.PhaseBuild, resilience.KindConfig, "MaxICPTargets",
			"pibe: OptimizeConfig.MaxICPTargets = %d, want >= 0", o.MaxICPTargets)
	}
	return nil
}

// Profile wraps a collected execution profile.
type Profile struct {
	p *prof.Profile
}

// WriteTo serializes the profile in the text format of internal/prof.
func (p *Profile) WriteTo(w io.Writer) (int64, error) { return p.p.WriteTo(w) }

// ReadProfile parses a profile serialized with WriteTo. It is strict:
// one malformed record discards the whole profile. Use
// ReadProfileLenient to salvage truncated or partially corrupt profiles.
func ReadProfile(r io.Reader) (*Profile, error) {
	pp, err := prof.Read(r)
	if err != nil {
		return nil, err
	}
	return &Profile{p: pp}, nil
}

// ReadProfileLenient parses a possibly damaged profile, skipping corrupt
// records, and reports what it salvaged. Torn writes (a crashed
// profiling host) and mangled records degrade to a usable partial
// profile instead of an error.
func ReadProfileLenient(r io.Reader) (*Profile, *prof.Salvage, error) {
	pp, sal, err := prof.ReadLenient(r)
	if pp == nil {
		return nil, sal, err
	}
	return &Profile{p: pp}, sal, err
}

// Merge folds another profile into this one.
func (p *Profile) Merge(other *Profile) { p.p.Merge(other.p) }

// TargetDistribution returns the Table 4 statistic: for each observed
// target count (key 7 = ">6"), the number of indirect call sites.
func (p *Profile) TargetDistribution() map[int]int { return p.p.TargetDistribution() }

// Raw exposes the underlying profile for advanced use within this module.
func (p *Profile) Raw() *prof.Profile { return p.p }

// TopReport formats the n hottest call sites with cumulative coverage.
func (p *Profile) TopReport(n int) string { return p.p.TopReport(n) }

// FaultRates configures per-event fault-injection probabilities; see
// resilience.Rates for field semantics.
type FaultRates = resilience.Rates

// UniformFaultRates sets every fault kind to (a normalization of) r.
func UniformFaultRates(r float64) FaultRates { return resilience.UniformRates(r) }

// IsFault extracts the structured fault in err's chain, if any. All
// pipeline failures — interpreter aborts, injected chaos, invalid
// configuration, recovered panics — carry a *resilience.FaultError.
func IsFault(err error) (*resilience.FaultError, bool) { return resilience.AsFault(err) }

// IsPartialProfileErr reports whether err marks a profiling run that
// aborted but still returned a usable partial profile.
func IsPartialProfileErr(err error) bool { return resilience.IsAbort(err) }

// System is a generated synthetic kernel ready to be profiled and built
// into hardened images.
type System struct {
	Kernel *kernel.Kernel
	// baseline program compiled from the pristine module, used for
	// profiling runs.
	prog *interp.Program
	// inject, when armed, threads chaos faults through profiling and
	// measurement runs of this system and its images.
	inject *resilience.Injector
	// measureWorkers, when positive, routes image measurement through
	// the sharded parallel driver with that many workers.
	measureWorkers int
	// engine selects the execution tier for every machine this system's
	// profiling and measurement runs build.
	engine interp.Engine
}

// Engine selects the execution tier for a System's profiling and
// measurement runs. See SetEngine.
type Engine = interp.Engine

// Execution tiers: the packed-event interpreter (the default) and the
// threaded-code compiled engine. The compiled tier is cycle-exact, so
// every profile, measurement, sweep surface and census is identical
// under either; only wall-clock changes. Machines whose configuration
// the compiled tier does not support (live recorder, hook, injector or
// exact-accounting mode) fall back to the interpreter silently.
const (
	EngineInterp   = interp.EngineInterp
	EngineCompiled = interp.EngineCompiled
)

// SetEngine selects the execution tier for this system's profiling and
// measurement runs and those of images it builds.
func (s *System) SetEngine(e Engine) { s.engine = e }

// ParseEngine parses an engine name ("interp" or "compiled").
func ParseEngine(s string) (Engine, error) { return interp.ParseEngine(s) }

// SetMeasureWorkers selects the measurement driver for this system's
// images. Zero (the default) keeps the legacy serial driver; n >= 1
// shards measurement repetitions across up to n workers with derived
// per-repetition seeds. Sharded results are deterministic — identical
// for every n >= 1 — but differ numerically from the serial driver's
// (each repetition warms its own predictors). Measurement under an
// armed chaos injector stays serial regardless.
func (s *System) SetMeasureWorkers(n int) {
	if n < 0 {
		n = 0
	}
	s.measureWorkers = n
}

// NewSyntheticKernel generates the kernel substrate.
func NewSyntheticKernel(cfg KernelConfig) (sys *System, err error) {
	defer resilience.RecoverPanic(&err, resilience.PhaseBuild, "NewSyntheticKernel")
	k, err := kernel.Generate(kernel.Config{Seed: cfg.Seed, ColdFuncs: cfg.ColdFuncs, HelperLayers: cfg.HelperLayers})
	if err != nil {
		return nil, err
	}
	prog, err := interp.Compile(k.Mod.Clone())
	if err != nil {
		return nil, err
	}
	return &System{Kernel: k, prog: prog}, nil
}

// InjectFaults arms a deterministic, seeded chaos injector on this
// system: profiling runs draw interpreter faults from it (aborting runs
// degrade to partial profiles) and measurement runs draw transient
// failures (absorbed by retry with backoff). maxFaults caps the total
// faults fired (0 = unlimited). It returns the injector so callers can
// inspect fired-fault counts; passing all-zero rates disarms injection.
func (s *System) InjectFaults(seed int64, rates FaultRates, maxFaults int) *resilience.Injector {
	if rates == (FaultRates{}) {
		s.inject = nil
		return nil
	}
	s.inject = resilience.NewInjector(seed, rates)
	s.inject.SetMaxFaults(maxFaults)
	return s.inject
}

// Profile runs the profiling binary under the given workload and returns
// the collected edge/value profile. opsScale multiplies the workload's
// mix weights.
//
// If the profiling run aborts (an interpreter trap or resource
// exhaustion, organic or injected), Profile returns the partial profile
// collected so far along with the abort error — check
// IsPartialProfileErr(err); the partial profile merges and builds like
// any other.
func (s *System) Profile(w Workload, opsScale int) (p *Profile, err error) {
	defer resilience.RecoverPanic(&err, resilience.PhaseProfile, "Profile")
	r, err := workload.NewRunner(s.Kernel, s.prog, w, 1000+int64(w))
	if err != nil {
		return nil, err
	}
	r.Inject = s.inject
	r.Engine = s.engine
	pp, err := r.Profile(opsScale)
	if pp == nil {
		return nil, err
	}
	return &Profile{p: pp}, err
}

// BuildConfig describes one production image.
type BuildConfig struct {
	// Profile supplies the PGO input; required when Optimize requests
	// any transformation.
	Profile *Profile
	// Optimize selects PIBE's transformations.
	Optimize OptimizeConfig
	// Defenses selects the hardening applied after optimization.
	Defenses Defenses
	// JumpSwitches enables the runtime-promotion baseline instead of
	// static ICP (§8.2); it composes with Defenses.Retpolines as the
	// fallback for unlearned targets.
	JumpSwitches bool
}

// OptimizeStats reports what the optimization passes did.
type OptimizeStats struct {
	ICP    *icp.Result
	Inline *inline.Result
	LLVM   *llvminline.Result
}

// Image is a built (optimized and hardened) kernel image.
type Image struct {
	sys    *System
	cfg    BuildConfig
	Mod    *ir.Module
	prog   *interp.Program
	Census *harden.Census
	Opt    OptimizeStats
}

// Build produces a production image: clone the kernel, apply ICP and
// inlining under the configured budgets, harden the remaining indirect
// branches, and compile. Invalid configurations are rejected up front
// with structured errors, and panics escaping the transformation passes
// are recovered into errors rather than crashing the host.
func (s *System) Build(cfg BuildConfig) (img *Image, err error) {
	defer resilience.RecoverPanic(&err, resilience.PhaseBuild, "Build")
	if err := cfg.Optimize.validate(); err != nil {
		return nil, err
	}
	if cfg.Optimize.any() && cfg.Profile == nil {
		return nil, errors.New("pibe: optimization requested without a profile")
	}
	mod := s.Kernel.Mod.Clone()
	img = &Image{sys: s, cfg: cfg, Mod: mod}

	var extraWeights map[ir.SiteID]uint64
	// The §8.4 default-LLVM-inliner datapoint is a stock PGO build: no
	// PIBE indirect call promotion either.
	if cfg.Optimize.ICPBudget > 0 && !cfg.Optimize.UseLLVMInliner {
		res, err := icp.Run(mod, cfg.Profile.p, icp.Options{
			Budget:            cfg.Optimize.ICPBudget,
			MaxTargetsPerSite: cfg.Optimize.MaxICPTargets,
		})
		if err != nil {
			return nil, fmt.Errorf("pibe: icp: %v", err)
		}
		img.Opt.ICP = res
		extraWeights = res.NewSiteWeights
	}
	if cfg.Optimize.InlineBudget > 0 {
		if cfg.Optimize.UseLLVMInliner {
			res, err := llvminline.Run(mod, cfg.Profile.p, llvminline.Options{
				Budget:       cfg.Optimize.InlineBudget,
				ExtraWeights: extraWeights,
			})
			if err != nil {
				return nil, fmt.Errorf("pibe: llvm inliner: %v", err)
			}
			img.Opt.LLVM = res
		} else {
			opts := inline.Options{
				Budget:       cfg.Optimize.InlineBudget,
				LaxBudget:    cfg.Optimize.LaxBudget,
				ExtraWeights: extraWeights,
			}
			if cfg.Optimize.DisableRule2 {
				opts.Rule2Threshold = -1
			}
			if cfg.Optimize.DisableRule3 {
				opts.Rule3Threshold = -1
			}
			opts.DisableInheritance = cfg.Optimize.DisableInheritance
			res, err := inline.Run(mod, cfg.Profile.p, opts)
			if err != nil {
				return nil, fmt.Errorf("pibe: inline: %v", err)
			}
			img.Opt.Inline = res
		}
	}
	census, err := harden.Apply(mod, cfg.Defenses.config())
	if err != nil {
		return nil, fmt.Errorf("pibe: harden: %v", err)
	}
	img.Census = census
	if cfg.JumpSwitches {
		// JumpSwitches replaces the static forward-edge instrumentation:
		// indirect calls dispatch through the runtime switch (with a
		// retpoline as the learning/fallback path), so the compiler
		// leaves them bare for the runtime hook to manage.
		for _, f := range mod.Funcs {
			f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
				if in.Op == ir.OpICall && !in.Asm {
					in.Defense = ir.DefNone
				}
			})
		}
	}
	if err := ir.Verify(mod, ir.VerifyOptions{}); err != nil {
		return nil, fmt.Errorf("pibe: built image does not verify: %v", err)
	}
	prog, err := interp.Compile(mod)
	if err != nil {
		return nil, fmt.Errorf("pibe: compile: %v", err)
	}
	img.prog = prog
	return img, nil
}

// Latency is one measured LMBench data point.
type Latency struct {
	Bench  string
	Micros float64
	Cycles float64
}

// runner builds a workload runner against this image, attaching the
// JumpSwitches hook if configured and the system's chaos injector if
// armed (transient measurement faults are absorbed by the runner's
// retry/backoff loop).
func (img *Image) runner(w Workload, seed int64) (*workload.Runner, error) {
	r, err := workload.NewRunner(img.sys.Kernel, img.prog, w, seed)
	if err != nil {
		return nil, err
	}
	if img.cfg.JumpSwitches {
		r.Hook = jumpswitch.New(jumpswitch.DefaultParams())
		// The JumpSwitches runtime is stateful and not safe to share
		// across workers; give the sharded driver a per-repetition
		// factory.
		r.NewHook = func() interp.ICallHook {
			return jumpswitch.New(jumpswitch.DefaultParams())
		}
	}
	r.RefillRSB = img.cfg.Defenses.RSBRefill
	r.Inject = img.sys.inject
	r.Workers = img.sys.measureWorkers
	r.Engine = img.sys.engine
	return r, nil
}

// MeasureLMBench measures all 20 LMBench latency benchmarks on the image.
func (img *Image) MeasureLMBench(w Workload) (lats []Latency, err error) {
	defer resilience.RecoverPanic(&err, resilience.PhaseMeasure, "MeasureLMBench")
	r, err := img.runner(w, 71)
	if err != nil {
		return nil, err
	}
	ms, err := r.MeasureAll()
	if err != nil {
		return nil, err
	}
	out := make([]Latency, len(ms))
	for i, m := range ms {
		out[i] = Latency{Bench: m.Bench, Micros: m.Micros, Cycles: m.Cycles}
	}
	return out, nil
}

// MeasureBenchmark measures a single benchmark.
func (img *Image) MeasureBenchmark(w Workload, bench string) (lat Latency, err error) {
	defer resilience.RecoverPanic(&err, resilience.PhaseMeasure, "MeasureBenchmark")
	r, err := img.runner(w, 71)
	if err != nil {
		return Latency{}, err
	}
	m, err := r.Measure(bench)
	if err != nil {
		return Latency{}, err
	}
	return Latency{Bench: m.Bench, Micros: m.Micros, Cycles: m.Cycles}, nil
}

// MeasureRequestCycles measures the kernel cycles of one application
// request for the macrobenchmarks (Table 7).
func (img *Image) MeasureRequestCycles(app Workload) (cycles float64, err error) {
	defer resilience.RecoverPanic(&err, resilience.PhaseMeasure, "MeasureRequestCycles")
	r, err := img.runner(app, 73)
	if err != nil {
		return 0, err
	}
	return r.MeasureRequest(5)
}

// SecurityReport attacks every indirect branch of the image and reports
// which remain hijackable (Table 11 / §8.6).
func (img *Image) SecurityReport() attack.Report {
	return attack.Evaluate(img.Mod)
}

// Size returns the image size in bytes.
func (img *Image) Size() int64 { return img.Mod.ByteSize() }

// Stats returns the static composition of the image.
func (img *Image) Stats() ir.Stats { return ir.CollectStats(img.Mod) }

// DumpFunction renders one function of the image in the IR text format
// (parsable by internal/ir's Parse). It returns "" if the function does
// not exist.
func (img *Image) DumpFunction(name string) string {
	f := img.Mod.Func(name)
	if f == nil {
		return ""
	}
	return ir.Print(f)
}

// FleetConfig configures continuous fleet profiling (see internal/fleet):
// N concurrent workload runners stream profile deltas into a sharded
// aggregator with per-epoch exponential decay; a drift detector compares
// the live hot set against the profile the active image was built from
// and rebuilds the image from the fresh aggregate when overlap falls
// below the threshold. A rebuilt image is not trusted blindly: it must
// pass differential validation against the unoptimized-but-hardened
// reference (internal/diffcheck), then serve a canary window, and is
// promoted only when its canary latency stays within RegressionBudget of
// the incumbent and no new fault kinds appeared — otherwise the
// incumbent keeps serving.
type FleetConfig struct {
	// Runners is the concurrent collector count per epoch (default 4);
	// runner i profiles Mix[i%len(Mix)].
	Runners int
	// Shards is the aggregator stripe count (default 8).
	Shards int
	// Epochs is the number of collection epochs (default 1).
	Epochs int
	// OpsScale multiplies each runner's workload mix (default 2).
	OpsScale int
	// Seed derives all runner seeds. Same Seed + Shards ⇒ byte-identical
	// aggregate snapshots (absent fault injection).
	Seed int64
	// Decay is the per-epoch count multiplier in (0, 1]; 0 means the
	// default 0.5, 1 disables decay.
	Decay float64
	// Mix lists the flavors the fleet runs (default all-LMBench).
	Mix []Workload
	// HotBudget is the cumulative-weight budget defining the hot set the
	// drift detector compares (default 0.99).
	HotBudget float64
	// DriftThreshold triggers a rebuild when live-vs-baseline hot-set
	// overlap falls below it; 0 disables drift-triggered rebuilds.
	DriftThreshold float64
	// CanaryEpochs is how many epochs (counting the build epoch) a
	// rebuilt candidate serves before the promotion decision (default 1:
	// validate, measure and decide within the drift epoch).
	CanaryEpochs int
	// RegressionBudget is the relative canary-latency regression
	// tolerated versus the incumbent before the candidate is rolled back
	// (0 means the default 0.05; negative means zero tolerance).
	RegressionBudget float64
	// StateDir, when non-empty, makes the fleet crash-safe: the service
	// checkpoints its aggregate, counters and promotion state there
	// after every epoch, and NewFleet resumes mid-loop from an existing
	// checkpoint (losing at most the epoch that was in flight).
	StateDir string
	// Build is the image configuration the rebuild controller uses; its
	// Profile field is replaced by the baseline profile for the initial
	// image and by the live aggregate on each rebuild.
	Build BuildConfig
	// Measure records the per-request kernel-cycle trajectory of the
	// active image after every epoch, on the MeasureApp workload
	// (default Apache), so rebuilds show up as overhead drops.
	Measure    bool
	MeasureApp Workload
	// TamperRebuild is a chaos hook for validation testing: when
	// non-nil, it mutates every rebuilt candidate's module (modeling a
	// miscompiled or corrupted optimization pass) after hardening and
	// before differential validation, which must then reject the
	// candidate. Never set in production.
	TamperRebuild func(*ir.Module)
}

// FleetEpoch is one epoch of a fleet run: the collection tallies, the
// drift statistic, and (when FleetConfig.Measure is set) the measured
// per-request kernel cycles of the image active at the epoch's end.
type FleetEpoch struct {
	Epoch                   int
	Merged, Aborted, Failed int
	// FaultKinds lists (sorted) the structured fault kinds collectors
	// hit this epoch.
	FaultKinds []string
	// Overlap is the hot-set overlap between the live aggregate and the
	// profile the active image was built from.
	Overlap float64
	// Rebuilt records that drift produced a candidate image this epoch;
	// RebuildErr carries a failed rebuild's error text.
	Rebuilt    bool
	RebuildErr string
	// Canary reports that a candidate image was serving its canary
	// window this epoch; Promoted that it passed every gate and became
	// the active image; Rejected carries the reason it was rolled back
	// instead.
	Canary   bool
	Promoted bool
	Rejected string
	// CoolingDown, when non-zero, is how many epochs of rebuild
	// cool-down remained (counting this one) when drift was detected but
	// the rebuild was suppressed after recent rejections.
	CoolingDown int
	// Sites and Ops describe the aggregate snapshot.
	Sites int
	Ops   uint64
	// RequestCycles is the overhead-trajectory sample (0 when Measure is
	// off).
	RequestCycles float64
}

// FleetResult is a completed fleet run.
type FleetResult struct {
	Epochs []FleetEpoch
	// StartEpoch is the epoch the run began at (non-zero after a
	// checkpoint resume).
	StartEpoch int
	// Rebuilds counts drift-triggered rebuilds that passed every
	// promotion gate and became the active image.
	Rebuilds int
	// RebuildFailures counts rebuild attempts whose build failed
	// outright; Rejections counts candidates built but rolled back by a
	// promotion gate (validation, canary latency, new fault kinds).
	RebuildFailures int
	Rejections      int
	// Partial reports that some collectors aborted or failed and the
	// aggregate under-counts the fleet (graceful degradation).
	Partial bool
	// Final is the aggregate snapshot after the last epoch.
	Final *Profile
}

// Fleet couples a fleet profiling service to this system's build
// pipeline: it keeps an active (incumbent) image, detects workload
// drift against the profile that image was built from, re-optimizes on
// drift, and promotes the rebuilt image only after it passes
// differential validation and its canary window.
type Fleet struct {
	sys      *System
	cfg      FleetConfig
	baseline *Profile
	img      *Image
	// ref is the lazily built unoptimized-but-hardened reference image
	// candidates are differentially validated against.
	ref *Image
	// state is a checkpoint loaded from cfg.StateDir, applied to the
	// service before Run.
	state *fleet.State
}

// NewFleet builds the initial image from baseline (via cfg.Build with
// its Profile replaced by baseline) and returns a fleet whose drift
// detector compares live aggregates against that baseline. When
// cfg.StateDir holds a checkpoint from an interrupted run, the fleet
// resumes from it: the checkpointed baseline (which reflects any
// promotions before the crash) drives the initial image and Run
// continues at the checkpointed epoch. The system's chaos injector, if
// armed, is threaded through the collectors.
func (s *System) NewFleet(baseline *Profile, cfg FleetConfig) (f *Fleet, err error) {
	defer resilience.RecoverPanic(&err, resilience.PhaseFleet, "NewFleet")
	if baseline == nil {
		return nil, errors.New("pibe: fleet requires a baseline profile")
	}
	var st *fleet.State
	if cfg.StateDir != "" {
		loaded, _, err := fleet.LoadState(cfg.StateDir)
		if err != nil {
			return nil, fmt.Errorf("pibe: fleet resume: %w", err)
		}
		st = loaded
		if st != nil && st.Baseline != nil {
			// The checkpointed baseline is the profile the incumbent at
			// crash time was built from; rebuilding from it restores that
			// incumbent exactly (builds are deterministic).
			baseline = &Profile{p: st.Baseline}
		}
	}
	bc := cfg.Build
	bc.Profile = baseline
	img, err := s.Build(bc)
	if err != nil {
		return nil, fmt.Errorf("pibe: fleet initial build: %w", err)
	}
	return &Fleet{sys: s, cfg: cfg, baseline: baseline, img: img, state: st}, nil
}

// Image returns the currently active (most recently promoted) image.
func (f *Fleet) Image() *Image { return f.img }

// refImage lazily builds the reference for differential validation: the
// same kernel, hardened identically, but with no profile-guided
// optimization — the image whose behaviour any candidate must preserve.
func (f *Fleet) refImage() (*Image, error) {
	if f.ref != nil {
		return f.ref, nil
	}
	bc := f.cfg.Build
	bc.Profile = nil
	bc.Optimize = OptimizeConfig{}
	ref, err := f.sys.Build(bc)
	if err != nil {
		return nil, fmt.Errorf("reference build: %w", err)
	}
	f.ref = ref
	return ref, nil
}

// validateCandidate differentially validates a candidate image against
// the reference over the fleet's workload mix.
func (f *Fleet) validateCandidate(cand *Image) error {
	ref, err := f.refImage()
	if err != nil {
		return err
	}
	_, err = diffcheck.Validate(f.sys.Kernel, ref.prog, cand.prog, diffcheck.Config{
		Flavors:      f.cfg.Mix,
		Seed:         f.cfg.Seed + 777,
		Runs:         2,
		Harden:       f.cfg.Build.Defenses.config(),
		JumpSwitches: f.cfg.Build.JumpSwitches,
	})
	return err
}

// canaryMetric measures an image the way the live fleet experiences it:
// the geomean of per-request kernel cycles over the mix's application
// workloads, falling back to a geomean of LMBench microbenchmarks when
// the mix has no request-driven flavor.
func (f *Fleet) canaryMetric(img *Image) (float64, error) {
	var apps []Workload
	seen := make(map[Workload]bool)
	for _, w := range f.cfg.Mix {
		if !seen[w] && workload.Request(w) != nil {
			seen[w] = true
			apps = append(apps, w)
		}
	}
	if len(apps) > 0 {
		logSum := 0.0
		for _, w := range apps {
			c, err := img.MeasureRequestCycles(w)
			if err != nil {
				return 0, err
			}
			logSum += math.Log(c)
		}
		return math.Exp(logSum / float64(len(apps))), nil
	}
	lats, err := img.MeasureLMBench(LMBench)
	if err != nil {
		return 0, err
	}
	logSum := 0.0
	for _, l := range lats {
		logSum += math.Log(l.Cycles)
	}
	return math.Exp(logSum / float64(len(lats))), nil
}

// Run executes the configured epochs: concurrent collection, sharded
// aggregation with decay, drift detection, and canary-gated rebuild
// promotion. It returns a partial result alongside the error when the
// run degrades terminally (for example, every collector failing).
func (f *Fleet) Run() (res *FleetResult, err error) {
	defer resilience.RecoverPanic(&err, resilience.PhaseFleet, "Fleet.Run")
	measureApp := f.cfg.MeasureApp
	if f.cfg.Measure && workload.Request(measureApp) == nil {
		measureApp = Apache
	}
	res = &FleetResult{}
	fcfg := fleet.Config{
		Runners:          f.cfg.Runners,
		Shards:           f.cfg.Shards,
		Epochs:           f.cfg.Epochs,
		OpsScale:         f.cfg.OpsScale,
		Seed:             f.cfg.Seed,
		Decay:            f.cfg.Decay,
		Mix:              f.cfg.Mix,
		HotBudget:        f.cfg.HotBudget,
		DriftThreshold:   f.cfg.DriftThreshold,
		CanaryEpochs:     f.cfg.CanaryEpochs,
		RegressionBudget: f.cfg.RegressionBudget,
		StateDir:         f.cfg.StateDir,
		Inject:           f.sys.inject,
		Engine:           f.sys.engine,
		OnEpoch: func(r fleet.EpochReport) error {
			fe := FleetEpoch{
				Epoch: r.Epoch, Merged: r.Merged, Aborted: r.Aborted, Failed: r.Failed,
				FaultKinds: r.FaultKinds,
				Overlap:    r.Overlap, Rebuilt: r.Rebuilt, RebuildErr: r.RebuildErr,
				Canary: r.Canary, Promoted: r.Promoted, Rejected: r.Rejected,
				CoolingDown: r.CoolingDown,
				Sites:       r.Sites, Ops: r.Ops,
			}
			if f.cfg.Measure {
				c, err := f.img.MeasureRequestCycles(measureApp)
				if err != nil {
					return fmt.Errorf("trajectory measurement: %w", err)
				}
				fe.RequestCycles = c
			}
			res.Epochs = append(res.Epochs, fe)
			return nil
		},
	}
	ctrl := &fleet.Controller{
		Rebuild: func(snap *prof.Profile) (*fleet.Candidate, error) {
			bc := f.cfg.Build
			bc.Profile = &Profile{p: snap}
			img, err := f.sys.Build(bc)
			if err != nil {
				return nil, err
			}
			if f.cfg.TamperRebuild != nil {
				// Chaos hook: corrupt the candidate the way a miscompiled
				// pass would, then recompile so the corruption is live.
				f.cfg.TamperRebuild(img.Mod)
				prog, err := interp.Compile(img.Mod)
				if err != nil {
					return nil, fmt.Errorf("pibe: tampered candidate recompile: %w", err)
				}
				img.prog = prog
			}
			return &fleet.Candidate{
				Validate: func() error { return f.validateCandidate(img) },
				Measure:  func() (float64, error) { return f.canaryMetric(img) },
				Promote: func() error {
					f.img = img
					f.baseline = bc.Profile
					return nil
				},
			}, nil
		},
		Incumbent: func() (float64, error) { return f.canaryMetric(f.img) },
	}
	svc, err := fleet.New(f.sys.Kernel, f.sys.prog, fcfg, f.baseline.p, ctrl)
	if err != nil {
		return nil, err
	}
	if f.state != nil {
		if err := svc.Restore(f.state); err != nil {
			return nil, fmt.Errorf("pibe: fleet restore: %w", err)
		}
		res.StartEpoch = f.state.Epoch
	}
	fres, err := svc.Run()
	res.Rebuilds = fres.Rebuilds
	res.RebuildFailures = fres.RebuildFailures
	res.Rejections = fres.Rejections
	res.Partial = fres.Partial
	if fres.Final != nil {
		res.Final = &Profile{p: fres.Final}
	}
	return res, err
}

// HotSetOverlap exposes the fleet drift statistic: the fraction of a's
// budget-selected hot weight whose items are also hot in b.
func HotSetOverlap(a, b *Profile, budget float64) float64 {
	return prof.HotOverlap(a.p, b.p, budget)
}

// CPUFrequencyGHz is the clock the simulator converts cycles with.
func CPUFrequencyGHz() float64 { return cpu.DefaultParams().FreqGHz }

// Geomean aggregates relative overheads the way the paper's tables do.
func Geomean(overheads []float64) float64 { return workload.Geomean(overheads) }

// GeomeanStats reports how many Geomean inputs were skipped (non-finite)
// or clamped (factor floor); see workload.GeomeanStats.
type GeomeanStats = workload.GeomeanStats

// GeomeanCounted is Geomean plus an account of skipped and clamped
// entries, for callers (sweeps, long table runs) that must not let
// aggregation-layer degradation silently flatten their curves.
func GeomeanCounted(overheads []float64) (float64, GeomeanStats) {
	return workload.GeomeanCounted(overheads)
}

// Overhead returns the relative overhead (new-base)/base. A zero
// baseline is an infinite regression, not a free lunch: Overhead(0, new)
// is +Inf for new > 0 and 0 only when both measurements are zero.
// Geomean skips the resulting Inf (and GeomeanCounted counts it), so a
// broken baseline surfaces as a skipped entry instead of silently
// reading as "no overhead".
func Overhead(base, new float64) float64 {
	if base == 0 {
		if new > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return (new - base) / base
}
