package prof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// The on-disk profile format is line-oriented and human-readable, in the
// spirit of the paper's "LLVM-IR friendly format" that maps counts back to
// IR call sites:
//
//	pibe-profile v1
//	ops 220000
//	fn vfs_read 181000
//	site 17 ksys_read direct vfs_read 181000
//	site 23 vfs_read indirect 180000 ext4_read:160000 pipe_read:20000
//
// Lines are written in deterministic order so profiles diff cleanly.

const magic = "pibe-profile v1"

// WriteTo serializes the profile.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(format string, args ...any) error {
		k, err := fmt.Fprintf(bw, format, args...)
		n += int64(k)
		return err
	}
	if err := write("%s\n", magic); err != nil {
		return n, err
	}
	if err := write("ops %d\n", p.Ops); err != nil {
		return n, err
	}
	fns := make([]string, 0, len(p.Invocations))
	for fn := range p.Invocations {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		if err := write("fn %s %d\n", fn, p.Invocations[fn]); err != nil {
			return n, err
		}
	}
	ids := make([]ir.SiteID, 0, len(p.Sites))
	for id := range p.Sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := p.Sites[id]
		if s.Indirect() {
			var sb strings.Builder
			for _, t := range s.SortedTargets() {
				fmt.Fprintf(&sb, " %s:%d", t.Name, t.Count)
			}
			if err := write("site %d %s indirect %d%s\n", s.ID, s.Caller, s.Count, sb.String()); err != nil {
				return n, err
			}
		} else {
			if err := write("site %d %s direct %s %d\n", s.ID, s.Caller, s.Callee, s.Count); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Read parses a profile serialized by WriteTo.
func Read(r io.Reader) (*Profile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("prof: empty input")
	}
	if got := sc.Text(); got != magic {
		return nil, fmt.Errorf("prof: bad magic %q", got)
	}
	p := New()
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "ops":
			if len(fields) != 2 {
				return nil, fmt.Errorf("prof: line %d: malformed ops", line)
			}
			n, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("prof: line %d: %v", line, err)
			}
			p.Ops = n
		case "fn":
			if len(fields) != 3 {
				return nil, fmt.Errorf("prof: line %d: malformed fn", line)
			}
			n, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("prof: line %d: %v", line, err)
			}
			p.Invocations[fields[1]] = n
		case "site":
			if err := parseSite(p, fields, line); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("prof: line %d: unknown record %q", line, fields[0])
		}
	}
	return p, sc.Err()
}

func parseSite(p *Profile, fields []string, line int) error {
	if len(fields) < 4 {
		return fmt.Errorf("prof: line %d: malformed site", line)
	}
	id64, err := strconv.ParseInt(fields[1], 10, 32)
	if err != nil {
		return fmt.Errorf("prof: line %d: %v", line, err)
	}
	id := ir.SiteID(id64)
	caller := fields[2]
	switch fields[3] {
	case "direct":
		if len(fields) != 6 {
			return fmt.Errorf("prof: line %d: malformed direct site", line)
		}
		n, err := strconv.ParseUint(fields[5], 10, 64)
		if err != nil {
			return fmt.Errorf("prof: line %d: %v", line, err)
		}
		p.AddDirect(id, caller, fields[4], n)
	case "indirect":
		if len(fields) < 5 {
			return fmt.Errorf("prof: line %d: malformed indirect site", line)
		}
		total, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return fmt.Errorf("prof: line %d: %v", line, err)
		}
		var sum uint64
		for _, tok := range fields[5:] {
			name, cnt, ok := strings.Cut(tok, ":")
			if !ok {
				return fmt.Errorf("prof: line %d: malformed target %q", line, tok)
			}
			n, err := strconv.ParseUint(cnt, 10, 64)
			if err != nil {
				return fmt.Errorf("prof: line %d: %v", line, err)
			}
			p.AddIndirect(id, caller, name, n)
			sum += n
		}
		if sum != total {
			return fmt.Errorf("prof: line %d: site %d target counts sum to %d, header says %d", line, id, sum, total)
		}
	default:
		return fmt.Errorf("prof: line %d: unknown site kind %q", line, fields[3])
	}
	return nil
}
