package prof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// The on-disk profile format is line-oriented and human-readable, in the
// spirit of the paper's "LLVM-IR friendly format" that maps counts back to
// IR call sites:
//
//	pibe-profile v1
//	ops 220000
//	fn vfs_read 181000
//	site 17 ksys_read direct vfs_read 181000
//	site 23 vfs_read indirect 180000 ext4_read:160000 pipe_read:20000
//
// Lines are written in deterministic order so profiles diff cleanly.

const magic = "pibe-profile v1"

// WriteTo serializes the profile.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(format string, args ...any) error {
		k, err := fmt.Fprintf(bw, format, args...)
		n += int64(k)
		return err
	}
	if err := write("%s\n", magic); err != nil {
		return n, err
	}
	if err := write("ops %d\n", p.Ops); err != nil {
		return n, err
	}
	fns := make([]string, 0, len(p.Invocations))
	for fn := range p.Invocations {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		if err := write("fn %s %d\n", fn, p.Invocations[fn]); err != nil {
			return n, err
		}
	}
	ids := make([]ir.SiteID, 0, len(p.Sites))
	for id := range p.Sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := p.Sites[id]
		if s.Indirect() {
			var sb strings.Builder
			for _, t := range s.SortedTargets() {
				fmt.Fprintf(&sb, " %s:%d", t.Name, t.Count)
			}
			if err := write("site %d %s indirect %d%s\n", s.ID, s.Caller, s.Count, sb.String()); err != nil {
				return n, err
			}
		} else {
			if err := write("site %d %s direct %s %d\n", s.ID, s.Caller, s.Callee, s.Count); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Salvage summarizes what a lenient Read kept, skipped and repaired.
type Salvage struct {
	// Lines counts the non-blank, non-comment lines examined.
	Lines int
	// Kept counts the records accepted into the profile.
	Kept int
	// Skipped counts malformed lines dropped.
	Skipped int
	// Repaired counts indirect sites whose header count disagreed with
	// the sum of their target counts (the target sum wins).
	Repaired int
	// BadMagic records a missing or wrong header line (a truncated-at-
	// the-front or foreign file).
	BadMagic bool
	// Errs holds the first few skip reasons, capped.
	Errs []string
}

// Clean reports whether the input parsed without any degradation.
func (s *Salvage) Clean() bool {
	return s.Skipped == 0 && s.Repaired == 0 && !s.BadMagic
}

func (s *Salvage) String() string {
	out := fmt.Sprintf("prof: salvaged %d of %d records (%d skipped, %d repaired)",
		s.Kept, s.Lines, s.Skipped, s.Repaired)
	if s.BadMagic {
		out += ", bad magic"
	}
	return out
}

// Read parses a profile serialized by WriteTo. It is strict: the first
// malformed record discards the whole profile.
func Read(r io.Reader) (*Profile, error) {
	p, _, err := read(r, false)
	return p, err
}

// ReadLenient parses a profile serialized by WriteTo, skipping corrupt
// records instead of failing, and reports what it salvaged. Truncated
// or partially corrupted profiles — torn writes from a crashed profiling
// host — come back as usable partial profiles. The error is non-nil only
// when the underlying reader fails; the partial profile and salvage
// summary are valid even then.
func ReadLenient(r io.Reader) (*Profile, *Salvage, error) {
	return read(r, true)
}

func read(r io.Reader, lenient bool) (*Profile, *Salvage, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	p := New()
	sal := &Salvage{}
	line := 0
	// skip records a lenient skip, or propagates the error when strict.
	skip := func(err error) error {
		if !lenient {
			return err
		}
		sal.Skipped++
		if len(sal.Errs) < 8 {
			sal.Errs = append(sal.Errs, err.Error())
		}
		return nil
	}
	handle := func(raw string) error {
		text := strings.TrimSpace(raw)
		if text == "" || strings.HasPrefix(text, "#") {
			return nil
		}
		sal.Lines++
		fields := strings.Fields(text)
		var err error
		switch fields[0] {
		case "ops":
			var n uint64
			if len(fields) != 2 {
				err = fmt.Errorf("prof: line %d: malformed ops", line)
			} else if n, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
				err = fmt.Errorf("prof: line %d: %v", line, err)
			} else {
				p.Ops = n
			}
		case "fn":
			var n uint64
			if len(fields) != 3 {
				err = fmt.Errorf("prof: line %d: malformed fn", line)
			} else if n, err = strconv.ParseUint(fields[2], 10, 64); err != nil {
				err = fmt.Errorf("prof: line %d: %v", line, err)
			} else {
				p.Invocations[fields[1]] = n
			}
		case "site":
			err = parseSite(p, fields, line, lenient, sal)
		default:
			err = fmt.Errorf("prof: line %d: unknown record %q", line, fields[0])
		}
		if err != nil {
			return skip(err)
		}
		sal.Kept++
		return nil
	}
	if !sc.Scan() {
		if !lenient {
			return nil, nil, fmt.Errorf("prof: empty input")
		}
		sal.BadMagic = true
		return p, sal, sc.Err()
	}
	line = 1
	if got := sc.Text(); got != magic {
		if !lenient {
			return nil, nil, fmt.Errorf("prof: bad magic %q", got)
		}
		// Headerless input may still hold records (front truncation);
		// feed the first line through the record parser.
		sal.BadMagic = true
		handle(sc.Text())
	}
	for sc.Scan() {
		line++
		if err := handle(sc.Text()); err != nil {
			return nil, nil, err
		}
	}
	return p, sal, sc.Err()
}

// parseSite parses one site record. It stages target counts and commits
// only a fully parsed record, so a lenient skip leaves no partial state.
func parseSite(p *Profile, fields []string, line int, lenient bool, sal *Salvage) error {
	if len(fields) < 4 {
		return fmt.Errorf("prof: line %d: malformed site", line)
	}
	id64, err := strconv.ParseInt(fields[1], 10, 32)
	if err != nil {
		return fmt.Errorf("prof: line %d: %v", line, err)
	}
	id := ir.SiteID(id64)
	caller := fields[2]
	switch fields[3] {
	case "direct":
		if len(fields) != 6 {
			return fmt.Errorf("prof: line %d: malformed direct site", line)
		}
		n, err := strconv.ParseUint(fields[5], 10, 64)
		if err != nil {
			return fmt.Errorf("prof: line %d: %v", line, err)
		}
		p.AddDirect(id, caller, fields[4], n)
	case "indirect":
		if len(fields) < 5 {
			return fmt.Errorf("prof: line %d: malformed indirect site", line)
		}
		total, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return fmt.Errorf("prof: line %d: %v", line, err)
		}
		type target struct {
			name string
			n    uint64
		}
		var targets []target
		var sum uint64
		for _, tok := range fields[5:] {
			name, cnt, ok := strings.Cut(tok, ":")
			if !ok {
				return fmt.Errorf("prof: line %d: malformed target %q", line, tok)
			}
			n, err := strconv.ParseUint(cnt, 10, 64)
			if err != nil {
				return fmt.Errorf("prof: line %d: %v", line, err)
			}
			targets = append(targets, target{name, n})
			sum += n
		}
		if sum != total {
			if !lenient {
				return fmt.Errorf("prof: line %d: site %d target counts sum to %d, header says %d", line, id, sum, total)
			}
			// The per-target counts are self-consistent; the header total
			// is derived. Keep the targets and let their sum win.
			sal.Repaired++
		}
		for _, t := range targets {
			p.AddIndirect(id, caller, t.name, t.n)
		}
	default:
		return fmt.Errorf("prof: line %d: unknown site kind %q", line, fields[3])
	}
	return nil
}
