package prof

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeedProfile builds a small valid profile to seed the corpus.
func fuzzSeedProfile() *Profile {
	p := New()
	p.Ops = 220000
	p.AddInvocation("vfs_read", 181000)
	p.AddInvocation("ext4_read", 160000)
	p.AddDirect(17, "ksys_read", "vfs_read", 181000)
	p.AddIndirect(23, "vfs_read", "ext4_read", 160000)
	p.AddIndirect(23, "vfs_read", "pipe_read", 20000)
	return p
}

// FuzzProfRead proves that neither the strict nor the lenient profile
// reader panics on arbitrary corrupted input, and that whatever the
// lenient reader salvages re-serializes into a profile the strict reader
// accepts (salvage output is always well-formed).
func FuzzProfRead(f *testing.F) {
	var buf bytes.Buffer
	if _, err := fuzzSeedProfile().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add("")
	f.Add("pibe-profile v1\n")
	f.Add(valid[:len(valid)/2])                              // torn write
	f.Add(strings.Replace(valid, "indirect", "garbled", 1))  // corrupt record
	f.Add(strings.Replace(valid, "181000", "-181000", 1))    // bad count
	f.Add("pibe-profile v1\nops 1\nsite 1 f indirect 5 a:3") // sum mismatch
	f.Add("wrong magic\nfn f 1\n")

	f.Fuzz(func(t *testing.T, data string) {
		// Strict: any outcome but a panic is acceptable.
		Read(strings.NewReader(data))

		// Lenient: must never fail on readable input…
		p, sal, err := ReadLenient(strings.NewReader(data))
		if err != nil {
			t.Fatalf("ReadLenient returned error on in-memory input: %v", err)
		}
		if p == nil || sal == nil {
			t.Fatal("ReadLenient returned nil profile or salvage")
		}
		// …and what it salvages must re-serialize into a profile the
		// strict reader accepts.
		var out bytes.Buffer
		if _, err := p.WriteTo(&out); err != nil {
			t.Fatalf("salvaged profile failed to serialize: %v", err)
		}
		if _, err := Read(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("salvaged profile did not round-trip strictly: %v\n%s", err, out.String())
		}
	})
}
