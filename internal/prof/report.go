package prof

import (
	"fmt"
	"strings"
)

// TopReport formats the n hottest call sites with cumulative weight
// coverage — the view used to choose optimization budgets: the row where
// the cumulative column crosses 99% is where a 99% budget stops.
func (p *Profile) TopReport(n int) string {
	sites := p.SitesSorted(nil)
	if n > len(sites) {
		n = len(sites)
	}
	var total uint64
	for _, s := range sites {
		total += s.Count
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-6s %-28s %-28s %12s %8s\n",
		"site", "kind", "caller", "callee/top-target", "count", "cum%")
	var cum uint64
	for _, s := range sites[:n] {
		cum += s.Count
		kind, target := "direct", s.Callee
		if s.Indirect() {
			kind = "icall"
			ts := s.SortedTargets()
			target = fmt.Sprintf("%s (+%d more)", ts[0].Name, len(ts)-1)
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(cum) / float64(total)
		}
		fmt.Fprintf(&sb, "%-6d %-6s %-28s %-28s %12d %7.2f%%\n",
			s.ID, kind, trunc(s.Caller, 28), trunc(target, 28), s.Count, pct)
	}
	fmt.Fprintf(&sb, "total sites: %d, total weight: %d, ops: %d\n", len(sites), total, p.Ops)
	return sb.String()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// CoverageCurve returns, for each requested budget fraction, how many of
// the hottest sites are needed to cover it — the statistic behind the
// paper's candidate counts in Tables 8 and 10.
func (p *Profile) CoverageCurve(budgets []float64, indirect bool) []int {
	sites := p.SitesSorted(func(s *Site) bool { return s.Indirect() == indirect })
	items := make([]WeightedItem, len(sites))
	for i, s := range sites {
		items[i] = WeightedItem{Index: i, Weight: s.Count}
	}
	out := make([]int, len(budgets))
	for i, b := range budgets {
		out[i] = CumulativeBudget(items, b, false)
	}
	return out
}
