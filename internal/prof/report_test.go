package prof

import (
	"strings"
	"testing"
)

func TestTopReport(t *testing.T) {
	p := sample()
	out := p.TopReport(10)
	for _, want := range []string{"vfs_read", "ext4_read", "cum%", "total sites: 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("TopReport missing %q:\n%s", want, out)
		}
	}
	// The hottest row comes first and the indirect site names its top
	// target plus the count of others.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "1000") {
		t.Errorf("first data row is not the hottest:\n%s", out)
	}
	if !strings.Contains(out, "(+2 more)") {
		t.Errorf("indirect target summary missing:\n%s", out)
	}
}

func TestTopReportTruncation(t *testing.T) {
	p := New()
	long := strings.Repeat("x", 60)
	p.AddDirect(1, long, long, 5)
	out := p.TopReport(1)
	if strings.Contains(out, long) {
		t.Error("long names not truncated")
	}
	if !strings.Contains(out, "…") {
		t.Error("truncation marker missing")
	}
}

func TestCoverageCurve(t *testing.T) {
	p := New()
	p.AddDirect(1, "a", "x", 900)
	p.AddDirect(2, "b", "y", 90)
	p.AddDirect(3, "c", "z", 10)
	got := p.CoverageCurve([]float64{0.5, 0.9, 0.999, 1.0}, false)
	want := []int{1, 1, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("curve[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Indirect curve over a direct-only profile is empty.
	if got := p.CoverageCurve([]float64{0.9}, true); got[0] != 0 {
		t.Errorf("indirect curve = %v, want [0]", got)
	}
}
