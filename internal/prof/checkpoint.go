package prof

import (
	"bytes"
	"fmt"
	"hash/fnv"
)

// The CRC-framed checkpoint container the fleet and sweep persist their
// crash-safe state in lives in internal/ckpt; profiles travel inside its
// sections as opaque payloads. What belongs here is only the content
// hash that gates resume.

// Hash returns a deterministic content hash of the profile — FNV-64a over
// its canonical serialization, rendered as 16 hex digits. The fleet
// checkpoint stores it so a resumed service can tell whether a salvaged
// training profile still matches the one the incumbent image was built
// from.
func (p *Profile) Hash() string {
	var buf bytes.Buffer
	p.WriteTo(&buf)
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return fmt.Sprintf("%016x", h.Sum64())
}
