package prof

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
)

// The checkpoint container is the crash-safe framing the fleet service
// persists its state in. Like the profile format it is line-oriented and
// versioned, but each payload is opaque bytes guarded by a CRC so a torn
// or bit-flipped checkpoint is detected and salvaged section by section:
//
//	pibe-checkpoint v1
//	sec meta 42 1a2b3c4d
//	<42 raw payload bytes>
//	sec baseline 1337 deadbeef
//	<1337 raw payload bytes>
//	end 2
//
// Writers emit to a temporary file and rename into place; readers use
// ReadSectionsLenient to keep every section whose frame and CRC are
// intact and report exactly what was lost.

const checkpointMagic = "pibe-checkpoint v1"

// Section is one named, CRC-framed payload of a checkpoint file.
type Section struct {
	Name string
	Data []byte
}

// WriteSections serializes the sections in order. Names must be non-empty
// and free of whitespace so the frame lines stay parseable.
func WriteSections(w io.Writer, secs []Section) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n", checkpointMagic); err != nil {
		return err
	}
	for _, s := range secs {
		if s.Name == "" || strings.ContainsAny(s.Name, " \t\n\r") {
			return fmt.Errorf("prof: checkpoint section name %q is empty or contains whitespace", s.Name)
		}
		crc := crc32.ChecksumIEEE(s.Data)
		if _, err := fmt.Fprintf(bw, "sec %s %d %08x\n", s.Name, len(s.Data), crc); err != nil {
			return err
		}
		if _, err := bw.Write(s.Data); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "end %d\n", len(secs)); err != nil {
		return err
	}
	return bw.Flush()
}

// SectionSalvage summarizes what a lenient checkpoint read kept and lost.
type SectionSalvage struct {
	// Kept counts sections whose frame and CRC were intact.
	Kept int
	// Dropped counts sections discarded for a CRC mismatch.
	Dropped int
	// Truncated records a torn tail: a frame or payload cut short.
	Truncated bool
	// BadMagic records a missing or wrong header line.
	BadMagic bool
	// MissingEnd records an absent or inconsistent end record (a write
	// that never completed, even if every kept section is intact).
	MissingEnd bool
	// Errs holds the first few salvage reasons, capped.
	Errs []string
}

// Clean reports whether the checkpoint parsed without any degradation.
func (s *SectionSalvage) Clean() bool {
	return s.Dropped == 0 && !s.Truncated && !s.BadMagic && !s.MissingEnd
}

func (s *SectionSalvage) String() string {
	out := fmt.Sprintf("prof: checkpoint salvaged %d sections (%d dropped)", s.Kept, s.Dropped)
	if s.Truncated {
		out += ", truncated"
	}
	if s.BadMagic {
		out += ", bad magic"
	}
	if s.MissingEnd {
		out += ", missing end"
	}
	return out
}

// ReadSections parses a checkpoint serialized by WriteSections. It is
// strict: any framing damage, CRC mismatch, missing end record or
// trailing garbage fails the whole read.
func ReadSections(r io.Reader) ([]Section, error) {
	secs, sal, err := readSections(r, false)
	if err != nil {
		return nil, err
	}
	if !sal.Clean() {
		return nil, fmt.Errorf("prof: checkpoint damaged: %s", sal)
	}
	return secs, nil
}

// ReadSectionsLenient parses a checkpoint, keeping every section whose
// frame and CRC survive and reporting what was lost. Torn writes salvage
// to the intact prefix. The error is non-nil only when the underlying
// reader fails; the sections and salvage summary are valid even then.
func ReadSectionsLenient(r io.Reader) ([]Section, *SectionSalvage, error) {
	return readSections(r, true)
}

func readSections(r io.Reader, lenient bool) ([]Section, *SectionSalvage, error) {
	br := bufio.NewReader(r)
	sal := &SectionSalvage{}
	note := func(format string, args ...any) {
		if len(sal.Errs) < 8 {
			sal.Errs = append(sal.Errs, fmt.Sprintf(format, args...))
		}
	}
	fail := func(err error) ([]Section, *SectionSalvage, error) {
		if lenient {
			return nil, sal, nil
		}
		return nil, sal, err
	}
	header, err := readLine(br)
	if err != nil {
		sal.BadMagic, sal.MissingEnd = true, true
		note("missing header: %v", err)
		return fail(fmt.Errorf("prof: checkpoint missing header: %w", err))
	}
	if header != checkpointMagic {
		sal.BadMagic, sal.MissingEnd = true, true
		note("bad magic %q", header)
		return fail(fmt.Errorf("prof: checkpoint bad magic %q", header))
	}
	var secs []Section
	for {
		line, err := readLine(br)
		if err != nil {
			// Ran out before the end record: a write torn between frames.
			sal.Truncated, sal.MissingEnd = true, true
			note("torn between sections: %v", err)
			if lenient {
				return secs, sal, nil
			}
			return nil, sal, fmt.Errorf("prof: checkpoint torn (no end record)")
		}
		fields := strings.Fields(line)
		switch {
		case len(fields) == 4 && fields[0] == "sec":
			name := fields[1]
			size, err1 := strconv.ParseInt(fields[2], 10, 63)
			want, err2 := strconv.ParseUint(fields[3], 16, 32)
			if err1 != nil || err2 != nil || size < 0 {
				sal.Truncated, sal.MissingEnd = true, true
				note("malformed frame %q", line)
				if lenient {
					return secs, sal, nil
				}
				return nil, sal, fmt.Errorf("prof: checkpoint malformed frame %q", line)
			}
			data := make([]byte, size)
			if _, err := io.ReadFull(br, data); err != nil {
				sal.Truncated, sal.MissingEnd = true, true
				note("section %s payload torn: %v", name, err)
				if lenient {
					return secs, sal, nil
				}
				return nil, sal, fmt.Errorf("prof: checkpoint section %s payload torn", name)
			}
			if b, err := br.ReadByte(); err != nil || b != '\n' {
				sal.Truncated, sal.MissingEnd = true, true
				note("section %s frame not newline-terminated", name)
				if lenient {
					return secs, sal, nil
				}
				return nil, sal, fmt.Errorf("prof: checkpoint section %s frame not newline-terminated", name)
			}
			if got := crc32.ChecksumIEEE(data); uint64(got) != want {
				// The frame is intact, so the damage is contained: drop just
				// this section and keep scanning.
				sal.Dropped++
				note("section %s crc mismatch: got %08x want %08x", name, got, want)
				if !lenient {
					return nil, sal, fmt.Errorf("prof: checkpoint section %s crc mismatch", name)
				}
				continue
			}
			secs = append(secs, Section{Name: name, Data: data})
			sal.Kept++
		case len(fields) == 2 && fields[0] == "end":
			n, err := strconv.Atoi(fields[1])
			if err != nil || n != sal.Kept+sal.Dropped {
				sal.MissingEnd = true
				note("end record %q inconsistent with %d sections", line, sal.Kept+sal.Dropped)
				if !lenient {
					return nil, sal, fmt.Errorf("prof: checkpoint end record %q inconsistent", line)
				}
			}
			if _, err := br.ReadByte(); err != io.EOF {
				note("trailing bytes after end record")
				if !lenient {
					return nil, sal, fmt.Errorf("prof: checkpoint has trailing bytes after end record")
				}
			}
			return secs, sal, nil
		default:
			sal.Truncated, sal.MissingEnd = true, true
			note("unknown frame %q", line)
			if lenient {
				return secs, sal, nil
			}
			return nil, sal, fmt.Errorf("prof: checkpoint unknown frame %q", line)
		}
	}
}

// readLine reads one newline-terminated line, rejecting unterminated
// tails (a torn write).
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("unterminated line: %w", err)
	}
	return strings.TrimSuffix(line, "\n"), nil
}

// Hash returns a deterministic content hash of the profile — FNV-64a over
// its canonical serialization, rendered as 16 hex digits. The fleet
// checkpoint stores it so a resumed service can tell whether a salvaged
// training profile still matches the one the incumbent image was built
// from.
func (p *Profile) Hash() string {
	var buf bytes.Buffer
	p.WriteTo(&buf)
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return fmt.Sprintf("%016x", h.Sum64())
}
