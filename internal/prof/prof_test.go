package prof

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func sample() *Profile {
	p := New()
	p.Ops = 42
	p.AddDirect(1, "ksys_read", "vfs_read", 1000)
	p.AddIndirect(2, "vfs_read", "ext4_read", 800)
	p.AddIndirect(2, "vfs_read", "pipe_read", 150)
	p.AddIndirect(2, "vfs_read", "sock_read", 50)
	p.AddInvocation("vfs_read", 1000)
	p.AddInvocation("ext4_read", 800)
	return p
}

func TestAddAndTotals(t *testing.T) {
	p := sample()
	if got := p.DirectWeight(); got != 1000 {
		t.Errorf("DirectWeight = %d, want 1000", got)
	}
	if got := p.IndirectWeight(); got != 1000 {
		t.Errorf("IndirectWeight = %d, want 1000", got)
	}
	s := p.Sites[2]
	if !s.Indirect() || s.Count != 1000 {
		t.Fatalf("site 2: indirect=%v count=%d", s.Indirect(), s.Count)
	}
	ts := s.SortedTargets()
	wantOrder := []string{"ext4_read", "pipe_read", "sock_read"}
	for i, w := range wantOrder {
		if ts[i].Name != w {
			t.Errorf("SortedTargets[%d] = %s, want %s", i, ts[i].Name, w)
		}
	}
}

func TestSortedTargetsTieBreak(t *testing.T) {
	p := New()
	p.AddIndirect(1, "f", "zzz", 10)
	p.AddIndirect(1, "f", "aaa", 10)
	ts := p.Sites[1].SortedTargets()
	if ts[0].Name != "aaa" {
		t.Errorf("equal-count targets must sort by name; got %s first", ts[0].Name)
	}
}

func TestMerge(t *testing.T) {
	a, b := sample(), sample()
	a.Merge(b)
	if a.Ops != 84 {
		t.Errorf("Ops = %d, want 84", a.Ops)
	}
	if a.Sites[1].Count != 2000 {
		t.Errorf("direct count = %d, want 2000", a.Sites[1].Count)
	}
	if a.Sites[2].Targets["ext4_read"] != 1600 {
		t.Errorf("target count = %d, want 1600", a.Sites[2].Targets["ext4_read"])
	}
	if a.Invocations["vfs_read"] != 2000 {
		t.Errorf("invocations = %d, want 2000", a.Invocations["vfs_read"])
	}
}

func TestSitesSortedHottestFirstDeterministic(t *testing.T) {
	p := New()
	p.AddDirect(3, "a", "x", 50)
	p.AddDirect(1, "b", "y", 100)
	p.AddDirect(2, "c", "z", 100)
	got := p.SitesSorted(nil)
	wantIDs := []ir.SiteID{1, 2, 3} // 100(1), 100(2) by ID, then 50
	for i, w := range wantIDs {
		if got[i].ID != w {
			t.Errorf("SitesSorted[%d].ID = %d, want %d", i, got[i].ID, w)
		}
	}
	onlyDirect := p.SitesSorted(func(s *Site) bool { return !s.Indirect() })
	if len(onlyDirect) != 3 {
		t.Errorf("filtered length = %d, want 3", len(onlyDirect))
	}
}

func TestTargetDistribution(t *testing.T) {
	p := New()
	for i := 0; i < 3; i++ {
		p.AddIndirect(ir.SiteID(10+i), "f", "t0", 1)
	}
	p.AddIndirect(20, "g", "t0", 1)
	p.AddIndirect(20, "g", "t1", 1)
	for j := 0; j < 9; j++ {
		p.AddIndirect(30, "h", "t"+string(rune('0'+j)), 1)
	}
	dist := p.TargetDistribution()
	if dist[1] != 3 || dist[2] != 1 || dist[7] != 1 {
		t.Errorf("TargetDistribution = %v, want 1:3 2:1 7:1", dist)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	p := sample()
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Ops != p.Ops {
		t.Errorf("Ops = %d, want %d", got.Ops, p.Ops)
	}
	if !reflect.DeepEqual(got.Invocations, p.Invocations) {
		t.Errorf("Invocations = %v, want %v", got.Invocations, p.Invocations)
	}
	if !reflect.DeepEqual(got.Sites[2].Targets, p.Sites[2].Targets) {
		t.Errorf("Targets = %v, want %v", got.Sites[2].Targets, p.Sites[2].Targets)
	}
	if got.Sites[1].Callee != "vfs_read" {
		t.Errorf("Callee = %q, want vfs_read", got.Sites[1].Callee)
	}
}

func TestSerializeDeterministic(t *testing.T) {
	p := sample()
	var a, b bytes.Buffer
	p.WriteTo(&a)
	p.WriteTo(&b)
	if a.String() != b.String() {
		t.Fatal("two serializations of the same profile differ")
	}
}

func TestReadRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"bad magic":        "nonsense v9\n",
		"empty":            "",
		"bad record":       magic + "\nbogus 1 2\n",
		"bad ops":          magic + "\nops many\n",
		"short site":       magic + "\nsite 1 f\n",
		"bad target":       magic + "\nsite 1 f indirect 5 ext4read5\n",
		"sum mismatch":     magic + "\nsite 1 f indirect 5 a:1 b:1\n",
		"bad direct count": magic + "\nsite 1 f direct g x\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted corrupt input", name)
		}
	}
}

func TestCumulativeBudget(t *testing.T) {
	items := []WeightedItem{{0, 500}, {1, 300}, {2, 150}, {3, 49}, {4, 1}}
	cases := []struct {
		budget float64
		strict bool
		want   int
	}{
		{0, false, 0},
		{0.5, false, 1},
		{0.79, false, 2},
		{0.80, false, 2},
		{0.81, false, 3},
		{0.99, false, 4},
		{0.999, false, 4},
		{1.0, false, 5},
		{0.5, true, 1},
		{0.79, true, 1},
	}
	for _, c := range cases {
		if got := CumulativeBudget(items, c.budget, c.strict); got != c.want {
			t.Errorf("CumulativeBudget(%.3f, strict=%v) = %d, want %d", c.budget, c.strict, got, c.want)
		}
	}
}

// Property: raising the budget never selects fewer items, and the
// selection is always within bounds.
func TestCumulativeBudgetMonotoneQuick(t *testing.T) {
	f := func(seed int64, b1, b2 float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		items := make([]WeightedItem, n)
		for i := range items {
			items[i] = WeightedItem{i, uint64(rng.Intn(1000))}
		}
		// Budget selection assumes hottest-first ordering.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if items[j].Weight > items[i].Weight {
					items[i], items[j] = items[j], items[i]
				}
			}
		}
		clamp := func(x float64) float64 {
			if x < 0 {
				x = -x
			}
			return x - float64(int(x)) // fractional part in [0,1)
		}
		lo, hi := clamp(b1), clamp(b2)
		if lo > hi {
			lo, hi = hi, lo
		}
		nlo := CumulativeBudget(items, lo, false)
		nhi := CumulativeBudget(items, hi, false)
		return nlo <= nhi && nhi <= n && nlo >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips arbitrary profiles.
func TestSerializeRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New()
		p.Ops = uint64(rng.Intn(10000))
		nsites := rng.Intn(30)
		for i := 0; i < nsites; i++ {
			id := ir.SiteID(i + 1)
			if rng.Intn(2) == 0 {
				p.AddDirect(id, fname(rng), fname(rng), uint64(rng.Intn(100000)+1))
			} else {
				nt := rng.Intn(5) + 1
				caller := fname(rng)
				for j := 0; j < nt; j++ {
					p.AddIndirect(id, caller, fname(rng)+string(rune('a'+j)), uint64(rng.Intn(5000)+1))
				}
			}
		}
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			t.Logf("seed %d: write: %v", seed, err)
			return false
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("seed %d: read: %v\n%s", seed, err, buf.String())
			return false
		}
		var buf2 bytes.Buffer
		if _, err := got.WriteTo(&buf2); err != nil {
			t.Logf("seed %d: rewrite: %v", seed, err)
			return false
		}
		if buf.String() != buf2.String() {
			t.Logf("seed %d: mismatch:\nA:\n%s\nB:\n%s", seed, buf.String(), buf2.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func fname(rng *rand.Rand) string {
	names := []string{"vfs_read", "ext4_write", "tcp_sendmsg", "do_fork", "sock_poll", "pipe_write"}
	return names[rng.Intn(len(names))]
}
