// Package prof holds execution profiles: per-call-site execution counts
// and, for indirect call sites, value profiles (target histograms).
//
// This is the moral equivalent of PIBE's profiling pass output: the paper
// instruments every function entry point and call site, maintains a
// counter per dynamic call-graph edge, and lifts the binary-level counts
// back to an LLVM-IR-friendly representation keyed by call site, with
// value-profile metadata of (target name, execution count) tuples for
// indirect sites. Here the interpreter records the same information
// directly against IR site IDs.
package prof

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Site is the profile record for one call site, identified by the site ID
// it had in the profiling build (transforms preserve that identity through
// Instr.Orig).
type Site struct {
	ID     ir.SiteID
	Caller string
	// Callee is the target of a direct site; empty for indirect sites.
	Callee string
	// Count is the site's total execution count.
	Count uint64
	// Targets is the value profile of an indirect site: executions per
	// observed callee. Nil for direct sites.
	Targets map[string]uint64
}

// Indirect reports whether the site is an indirect call site.
func (s *Site) Indirect() bool { return s.Targets != nil }

// SortedTargets returns the value profile as (name, count) pairs sorted by
// count descending, ties broken by name for determinism.
func (s *Site) SortedTargets() []Target {
	ts := make([]Target, 0, len(s.Targets))
	for name, n := range s.Targets {
		ts = append(ts, Target{Name: name, Count: n})
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Count != ts[j].Count {
			return ts[i].Count > ts[j].Count
		}
		return ts[i].Name < ts[j].Name
	})
	return ts
}

// Target is one entry of an indirect site's value profile.
type Target struct {
	Name  string
	Count uint64
}

// Profile aggregates the statistics of one or more profiling runs.
type Profile struct {
	// Sites maps original site ID to its record.
	Sites map[ir.SiteID]*Site
	// Invocations counts how many times each function was entered.
	Invocations map[string]uint64
	// Ops counts the workload operations that produced the profile.
	Ops uint64
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{
		Sites:       make(map[ir.SiteID]*Site),
		Invocations: make(map[string]uint64),
	}
}

// AddDirect records n executions of a direct call site.
func (p *Profile) AddDirect(id ir.SiteID, caller, callee string, n uint64) {
	s := p.Sites[id]
	if s == nil {
		s = &Site{ID: id, Caller: caller, Callee: callee}
		p.Sites[id] = s
	}
	s.Count += n
}

// AddIndirect records n executions of an indirect call site landing on
// target.
func (p *Profile) AddIndirect(id ir.SiteID, caller, target string, n uint64) {
	s := p.Sites[id]
	if s == nil {
		s = &Site{ID: id, Caller: caller, Targets: make(map[string]uint64)}
		p.Sites[id] = s
	}
	if s.Targets == nil {
		s.Targets = make(map[string]uint64)
	}
	s.Count += n
	s.Targets[target] += n
}

// AddInvocation records n entries into fn.
func (p *Profile) AddInvocation(fn string, n uint64) {
	p.Invocations[fn] += n
}

// Clone returns a deep copy of the site, sharing no mutable state with s.
func (s *Site) Clone() *Site {
	ns := *s
	if s.Targets != nil {
		ns.Targets = make(map[string]uint64, len(s.Targets))
		for t, n := range s.Targets {
			ns.Targets[t] = n
		}
	}
	return &ns
}

// Clone returns a deep copy of the profile. The clone shares no mutable
// state with p, so it can be read or merged-into concurrently with
// further mutation of the original.
func (p *Profile) Clone() *Profile {
	np := &Profile{
		Sites:       make(map[ir.SiteID]*Site, len(p.Sites)),
		Invocations: make(map[string]uint64, len(p.Invocations)),
		Ops:         p.Ops,
	}
	for id, s := range p.Sites {
		np.Sites[id] = s.Clone()
	}
	for fn, n := range p.Invocations {
		np.Invocations[fn] = n
	}
	return np
}

// Merge folds other into p. Profiles from repeated runs of the same
// workload are merged this way (the paper aggregates 11 LMBench
// iterations into one profile).
//
// Merge is NOT safe for concurrent use: it mutates p and reads other
// without synchronization, so neither profile may be concurrently
// mutated (and p may not be concurrently read). Callers that aggregate
// profiles from concurrent producers must either serialize their merges
// or go through the synchronized path, internal/fleet's Aggregator.
// Merge is commutative and associative over the merged weights (counts
// are exact uint64 sums), which is what makes sharded aggregation
// order-independent; see the property tests in merge_prop_test.go.
func (p *Profile) Merge(other *Profile) {
	for id, s := range other.Sites {
		if s.Indirect() {
			for t, n := range s.Targets {
				p.AddIndirect(id, s.Caller, t, n)
			}
		} else {
			p.AddDirect(id, s.Caller, s.Callee, s.Count)
		}
	}
	for fn, n := range other.Invocations {
		p.AddInvocation(fn, n)
	}
	p.Ops += other.Ops
}

// DirectWeight returns the cumulative execution count over direct sites.
func (p *Profile) DirectWeight() uint64 {
	var w uint64
	for _, s := range p.Sites {
		if !s.Indirect() {
			w += s.Count
		}
	}
	return w
}

// IndirectWeight returns the cumulative execution count over indirect
// sites.
func (p *Profile) IndirectWeight() uint64 {
	var w uint64
	for _, s := range p.Sites {
		if s.Indirect() {
			w += s.Count
		}
	}
	return w
}

// SitesSorted returns all site records matching the filter, hottest first
// (ties broken by site ID for determinism). A nil filter selects all.
func (p *Profile) SitesSorted(filter func(*Site) bool) []*Site {
	out := make([]*Site, 0, len(p.Sites))
	for _, s := range p.Sites {
		if filter == nil || filter(s) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TargetDistribution tallies, per indirect site, the number of distinct
// targets observed — the statistic behind Table 4 of the paper.
// The returned map is keyed by target count; key 7 aggregates ">6".
func (p *Profile) TargetDistribution() map[int]int {
	dist := make(map[int]int)
	for _, s := range p.Sites {
		if !s.Indirect() {
			continue
		}
		n := len(s.Targets)
		if n > 6 {
			n = 7
		}
		dist[n]++
	}
	return dist
}

// HotSet returns the budget-selected hot item set of the profile: the
// hottest items that together cover the given fraction of the profile's
// cumulative weight, keyed so that workload drift is visible at the
// granularity the optimizers care about. Direct sites are keyed
// "d:<id>" (inlining candidates), indirect (site, target) pairs are
// keyed "i:<id>:<target>" (promotion candidates) — so an application
// mix that rotates which target is hot at a multi-target site changes
// the hot set even though the site itself stays hot. Selection is
// deterministic: items sort by weight descending, key ascending.
func (p *Profile) HotSet(budget float64) map[string]uint64 {
	type item struct {
		key string
		w   uint64
	}
	var items []item
	for id, s := range p.Sites {
		if s.Indirect() {
			for _, t := range s.SortedTargets() {
				items = append(items, item{fmt.Sprintf("i:%d:%s", id, t.Name), t.Count})
			}
		} else {
			items = append(items, item{fmt.Sprintf("d:%d", id), s.Count})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].w != items[j].w {
			return items[i].w > items[j].w
		}
		return items[i].key < items[j].key
	})
	wi := make([]WeightedItem, len(items))
	for i, it := range items {
		wi[i] = WeightedItem{Index: i, Weight: it.w}
	}
	keep := CumulativeBudget(wi, budget, false)
	out := make(map[string]uint64, keep)
	for _, it := range items[:keep] {
		out[it.key] = it.w
	}
	return out
}

// HotOverlap is the drift statistic of the fleet profiling service: the
// histogram intersection of the two profiles' budget-selected hot sets,
// Σ min(ŵ_live, ŵ_base) over hot items, where ŵ is an item's weight
// normalized by its profile's total hot weight. It is 1 exactly when
// the hot distributions agree and decays toward 0 as weight moves to
// different items — or merely redistributes across the same items,
// which is the drift that silently erodes PIBE's wins: a promotion
// chain ordered by stale counts puts the now-hot target deep in the
// chain even though the target was "covered" (the §8.4 mismatched-
// profile effect, measured continuously). Bare set membership misses
// that; weight-mass agreement does not.
//
// Empty-set semantics: two empty hot sets agree vacuously — there is no
// weight anywhere to have moved — so empty-vs-empty is 1.0 (no drift).
// An empty set against a non-empty one is total disagreement, 0. The
// distinction matters to the fleet service: a freshly started fleet
// whose baseline and live aggregate are both still empty must not read
// as maximal drift and spuriously trigger a rebuild.
func HotOverlap(live, base *Profile, budget float64) float64 {
	hl, hb := live.HotSet(budget), base.HotSet(budget)
	var tl, tb uint64
	for _, w := range hl {
		tl += w
	}
	for _, w := range hb {
		tb += w
	}
	if tl == 0 && tb == 0 {
		return 1
	}
	if tl == 0 || tb == 0 {
		return 0
	}
	var sim float64
	for k, w := range hl {
		wl := float64(w) / float64(tl)
		wb := float64(hb[k]) / float64(tb)
		if wl < wb {
			sim += wl
		} else {
			sim += wb
		}
	}
	return sim
}

// WeightedItem pairs an arbitrary index with a profile weight, for budget
// selection.
type WeightedItem struct {
	Index  int
	Weight uint64
}

// CumulativeBudget returns how many of the items, pre-sorted hottest
// first, fit within a budget expressed as a fraction of the total weight.
// A budget of 0.99 selects the hottest items that together make up 99% of
// the cumulative execution count, mirroring the paper's optimization
// budgets. The boundary item that crosses the budget line is included,
// since the paper "greedily select[s] all targets that fit in this
// budget" and then keeps attempting the hottest remaining sites; callers
// that want strict exclusion can pass strict=true.
func CumulativeBudget(items []WeightedItem, budget float64, strict bool) int {
	if budget <= 0 || len(items) == 0 {
		return 0
	}
	var total uint64
	for _, it := range items {
		total += it.Weight
	}
	if total == 0 {
		return 0
	}
	if budget >= 1 {
		return len(items)
	}
	limit := budget * float64(total)
	var cum float64
	for i, it := range items {
		cum += float64(it.Weight)
		if cum >= limit {
			if strict && cum > limit {
				return i
			}
			return i + 1
		}
	}
	return len(items)
}
