package prof

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// randomProfile builds a profile with a seeded mix of direct sites,
// indirect sites (1–4 targets each) and invocation counts. Site IDs
// overlap across profiles drawn from nearby seeds, so merges exercise
// both the disjoint and the accumulate paths.
func randomProfile(seed int64) *Profile {
	rng := rand.New(rand.NewSource(seed))
	p := New()
	for i := 0; i < 5+rng.Intn(20); i++ {
		id := ir.SiteID(rng.Intn(30))
		// Caller and callee are functions of the site ID, as in real
		// profiles: site identity fixes its position in the code, only
		// the counts vary between runs.
		caller := fmt.Sprintf("fn%d", int(id)%8)
		if rng.Intn(2) == 0 {
			p.AddDirect(id, caller, fmt.Sprintf("callee%d", id), uint64(rng.Intn(1000)+1))
		} else {
			// Use a disjoint ID range for indirect sites so a direct and
			// an indirect record never collide on one ID (profiles from
			// real runs key sites by kind-stable IDs the same way).
			id += 100
			for t := 0; t < 1+rng.Intn(4); t++ {
				p.AddIndirect(id, caller, fmt.Sprintf("tgt%d", rng.Intn(6)), uint64(rng.Intn(500)+1))
			}
		}
	}
	for i := 0; i < rng.Intn(6); i++ {
		p.AddInvocation(fmt.Sprintf("fn%d", rng.Intn(8)), uint64(rng.Intn(100)+1))
	}
	p.Ops = uint64(rng.Intn(50))
	return p
}

func serialized(t *testing.T, p *Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// mergeInto clones dst (Merge mutates its receiver) and folds the others
// in, returning the canonical serialized form.
func mergeInto(t *testing.T, dst *Profile, others ...*Profile) []byte {
	t.Helper()
	m := dst.Clone()
	for _, o := range others {
		m.Merge(o)
	}
	return serialized(t, m)
}

// TestMergeCommutative: a⊕b == b⊕a for seeded random profiles. This is
// the property that makes the fleet aggregator's shard merges
// order-independent and hence deterministic under concurrency.
func TestMergeCommutative(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		a, b := randomProfile(seed), randomProfile(seed+1000)
		ab := mergeInto(t, a, b)
		ba := mergeInto(t, b, a)
		if !bytes.Equal(ab, ba) {
			t.Fatalf("seed %d: Merge not commutative (a⊕b %d bytes, b⊕a %d bytes)", seed, len(ab), len(ba))
		}
	}
}

// TestMergeAssociative: (a⊕b)⊕c == a⊕(b⊕c).
func TestMergeAssociative(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		a, b, c := randomProfile(seed), randomProfile(seed+1000), randomProfile(seed+2000)
		ab := a.Clone()
		ab.Merge(b)
		left := mergeInto(t, ab, c)
		bc := b.Clone()
		bc.Merge(c)
		right := mergeInto(t, a, bc)
		if !bytes.Equal(left, right) {
			t.Fatalf("seed %d: Merge not associative", seed)
		}
	}
}

// TestTwoLevelMergeMatchesFlat: partitioning deltas into tenants,
// merging each tenant's share, then merging the per-tenant aggregates
// yields exactly the flat merge of all deltas — for arbitrary
// partitions, including empty tenants. This is the hierarchy property
// the multi-tenant ingestion service's two-level pipeline (per-tenant
// striped aggregator feeding a global cross-tenant layer) rests on: it
// follows from associativity and commutativity over exact uint64 sums,
// but this test pins the composed shape directly, byte-for-byte.
func TestTwoLevelMergeMatchesFlat(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 5000))
		nDeltas := 1 + rng.Intn(12)
		deltas := make([]*Profile, nDeltas)
		for i := range deltas {
			deltas[i] = randomProfile(seed*100 + int64(i))
		}

		// Flat reference: every delta folded into one aggregate.
		flat := mergeInto(t, New(), deltas...)

		// Arbitrary partition: tenant count may exceed the delta count,
		// so some tenants stay empty; assignment is seeded-random, so
		// shares are unbalanced.
		nTenants := 1 + rng.Intn(6)
		tenants := make([]*Profile, nTenants)
		for i := range tenants {
			tenants[i] = New()
		}
		for _, d := range deltas {
			tenants[rng.Intn(nTenants)].Merge(d)
		}

		// Roll the per-tenant aggregates up in two orders: as dealt, and
		// reversed — the global layer must not care which tenant's batch
		// lands first.
		up := mergeInto(t, New(), tenants...)
		rev := make([]*Profile, nTenants)
		for i, p := range tenants {
			rev[nTenants-1-i] = p
		}
		upRev := mergeInto(t, New(), rev...)

		if !bytes.Equal(up, flat) {
			t.Fatalf("seed %d: two-level merge (%d deltas over %d tenants) differs from flat merge", seed, nDeltas, nTenants)
		}
		if !bytes.Equal(upRev, flat) {
			t.Fatalf("seed %d: tenant rollup order changed the global aggregate", seed)
		}
	}
}

// TestMergeEmptyIdentity: merging an empty profile changes nothing, and
// merging into an empty profile reproduces the original.
func TestMergeEmptyIdentity(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := randomProfile(seed)
		want := serialized(t, a)
		if got := mergeInto(t, a, New()); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: a⊕empty != a", seed)
		}
		if got := mergeInto(t, New(), a); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: empty⊕a != a", seed)
		}
	}
}

// TestMergeDoesNotAliasSource: after a merge, mutating the destination
// must not corrupt the source profile (Merge copies counts, it must not
// adopt the source's maps).
func TestMergeDoesNotAliasSource(t *testing.T) {
	src := randomProfile(7)
	want := serialized(t, src)
	dst := New()
	dst.Merge(src)
	for _, s := range dst.Sites {
		s.Count += 999
		for tgt := range s.Targets {
			s.Targets[tgt] += 999
		}
	}
	for fn := range dst.Invocations {
		dst.Invocations[fn] += 999
	}
	if got := serialized(t, src); !bytes.Equal(got, want) {
		t.Fatal("mutating the merge destination corrupted the source profile")
	}
}

// TestCloneIndependent: Clone must deep-copy — mutating the clone leaves
// the original untouched, including indirect target maps.
func TestCloneIndependent(t *testing.T) {
	p := randomProfile(13)
	want := serialized(t, p)
	c := p.Clone()
	if !bytes.Equal(serialized(t, c), want) {
		t.Fatal("clone does not serialize identically to the original")
	}
	for _, s := range c.Sites {
		s.Count++
		for tgt := range s.Targets {
			s.Targets[tgt]++
		}
	}
	c.AddDirect(9999, "new", "new", 1)
	c.AddInvocation("new", 1)
	c.Ops += 42
	if got := serialized(t, p); !bytes.Equal(got, want) {
		t.Fatal("mutating the clone changed the original profile")
	}
}
