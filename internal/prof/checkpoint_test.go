package prof

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func checkpointSections(t *testing.T) []Section {
	t.Helper()
	var prof bytes.Buffer
	if _, err := fuzzSeedProfile().WriteTo(&prof); err != nil {
		t.Fatal(err)
	}
	return []Section{
		{Name: "meta", Data: []byte("epoch 3\nrebuilds 1\n")},
		{Name: "baseline", Data: prof.Bytes()},
		{Name: "aggregate", Data: append([]byte(nil), prof.Bytes()...)},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	secs := checkpointSections(t)
	var buf bytes.Buffer
	if err := WriteSections(&buf, secs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(secs) {
		t.Fatalf("round-trip kept %d of %d sections", len(got), len(secs))
	}
	for i := range secs {
		if got[i].Name != secs[i].Name || !bytes.Equal(got[i].Data, secs[i].Data) {
			t.Fatalf("section %d mismatch: %q vs %q", i, got[i].Name, secs[i].Name)
		}
	}
	// Lenient agrees and reports a clean parse.
	lgot, sal, err := ReadSectionsLenient(bytes.NewReader(buf.Bytes()))
	if err != nil || !sal.Clean() || len(lgot) != len(secs) {
		t.Fatalf("lenient on clean input: %d sections, salvage %v, err %v", len(lgot), sal, err)
	}
	// Binary payloads (newlines, NULs, frame-lookalike bytes) survive.
	bin := []Section{{Name: "blob", Data: []byte("sec fake 3 00000000\nend 1\n\x00\xff")}}
	buf.Reset()
	if err := WriteSections(&buf, bin); err != nil {
		t.Fatal(err)
	}
	got, err = ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 1 || !bytes.Equal(got[0].Data, bin[0].Data) {
		t.Fatalf("binary payload mangled: %v, %v", got, err)
	}
}

func TestCheckpointRejectsBadNames(t *testing.T) {
	var buf bytes.Buffer
	for _, name := range []string{"", "two words", "tab\tname", "new\nline"} {
		if err := WriteSections(&buf, []Section{{Name: name}}); err == nil {
			t.Fatalf("WriteSections accepted section name %q", name)
		}
	}
}

func TestCheckpointBitFlip(t *testing.T) {
	secs := checkpointSections(t)
	var buf bytes.Buffer
	if err := WriteSections(&buf, secs); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Flip one byte inside the middle section's payload: strict must
	// reject, lenient must drop exactly that section and keep the rest.
	flipped := append([]byte(nil), clean...)
	off := bytes.Index(flipped, secs[1].Data) + len(secs[1].Data)/2
	flipped[off] ^= 0x40
	if _, err := ReadSections(bytes.NewReader(flipped)); err == nil {
		t.Fatal("strict read accepted a bit-flipped checkpoint")
	}
	got, sal, err := ReadSectionsLenient(bytes.NewReader(flipped))
	if err != nil {
		t.Fatal(err)
	}
	if sal.Clean() || sal.Dropped != 1 || sal.Kept != 2 {
		t.Fatalf("bit-flip salvage = %+v", sal)
	}
	if len(got) != 2 || got[0].Name != "meta" || got[1].Name != "aggregate" {
		t.Fatalf("salvaged wrong sections: %v", names(got))
	}
	if !bytes.Equal(got[1].Data, secs[2].Data) {
		t.Fatal("section after the damaged one did not survive intact")
	}
}

func TestCheckpointTruncation(t *testing.T) {
	secs := checkpointSections(t)
	var buf bytes.Buffer
	if err := WriteSections(&buf, secs); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Cut everywhere: the salvage must be a clean prefix of the sections,
	// never an error, never a corrupted payload.
	for cut := 0; cut < len(clean); cut++ {
		torn := clean[:cut]
		if _, err := ReadSections(bytes.NewReader(torn)); err == nil && cut < len(clean) {
			t.Fatalf("strict read accepted a checkpoint torn at %d", cut)
		}
		got, sal, err := ReadSectionsLenient(bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("lenient errored at cut %d: %v", cut, err)
		}
		if sal.Clean() {
			t.Fatalf("torn checkpoint at %d reported clean", cut)
		}
		if len(got) > len(secs) {
			t.Fatalf("cut %d salvaged %d sections from a %d-section file", cut, len(got), len(secs))
		}
		for i, s := range got {
			if s.Name != secs[i].Name || !bytes.Equal(s.Data, secs[i].Data) {
				t.Fatalf("cut %d: salvaged section %d is not the original prefix", cut, i)
			}
		}
	}
}

func TestProfileHash(t *testing.T) {
	p := fuzzSeedProfile()
	h1 := p.Hash()
	if len(h1) != 16 {
		t.Fatalf("Hash() = %q, want 16 hex digits", h1)
	}
	if p.Hash() != h1 || p.Clone().Hash() != h1 {
		t.Fatal("Hash is not deterministic across calls / clones")
	}
	q := p.Clone()
	q.AddInvocation("vfs_read", 1)
	if q.Hash() == h1 {
		t.Fatal("Hash did not change after a count changed")
	}
	if New().Hash() == h1 {
		t.Fatal("empty profile hashes like a populated one")
	}
}

func names(secs []Section) string {
	var parts []string
	for _, s := range secs {
		parts = append(parts, s.Name)
	}
	return fmt.Sprint(parts)
}

// FuzzCheckpointRead mirrors FuzzProfRead for the checkpoint container:
// neither reader may panic on arbitrary input, the lenient reader never
// errors on in-memory input, and whatever it salvages re-frames into a
// checkpoint the strict reader accepts.
func FuzzCheckpointRead(f *testing.F) {
	var buf bytes.Buffer
	secs := []Section{
		{Name: "meta", Data: []byte("epoch 3\n")},
		{Name: "baseline", Data: []byte("pibe-profile v1\nops 7\n")},
	}
	if err := WriteSections(&buf, secs); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add("")
	f.Add("pibe-checkpoint v1\n")
	f.Add("pibe-checkpoint v1\nend 0\n")
	f.Add(valid[:len(valid)/2])                          // torn write
	f.Add(strings.Replace(valid, "epoch", "epocX", 1))   // payload bit-flip
	f.Add(strings.Replace(valid, "sec meta", "sec", 1))  // mangled frame
	f.Add(strings.Replace(valid, "end 2", "end 9", 1))   // wrong end count
	f.Add("wrong magic\nsec a 0 00000000\n\nend 1\n")    // foreign header
	f.Add("pibe-checkpoint v1\nsec a 999999 00000000\n") // length past EOF

	f.Fuzz(func(t *testing.T, data string) {
		ReadSections(strings.NewReader(data))

		got, sal, err := ReadSectionsLenient(strings.NewReader(data))
		if err != nil {
			t.Fatalf("ReadSectionsLenient errored on in-memory input: %v", err)
		}
		if sal == nil {
			t.Fatal("ReadSectionsLenient returned nil salvage")
		}
		var out bytes.Buffer
		if err := WriteSections(&out, got); err != nil {
			t.Fatalf("salvaged sections failed to re-frame: %v", err)
		}
		if _, err := ReadSections(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("salvaged sections did not round-trip strictly: %v", err)
		}
	})
}
