package prof

import (
	"testing"
)

func TestProfileHash(t *testing.T) {
	p := fuzzSeedProfile()
	h1 := p.Hash()
	if len(h1) != 16 {
		t.Fatalf("Hash() = %q, want 16 hex digits", h1)
	}
	if p.Hash() != h1 || p.Clone().Hash() != h1 {
		t.Fatal("Hash is not deterministic across calls / clones")
	}
	q := p.Clone()
	q.AddInvocation("vfs_read", 1)
	if q.Hash() == h1 {
		t.Fatal("Hash did not change after a count changed")
	}
	if New().Hash() == h1 {
		t.Fatal("empty profile hashes like a populated one")
	}
}
