package ingest

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
)

// metrics is the service's observability surface: lock-free counters
// plus a fixed-size log-bucketed latency histogram, so a run ingesting
// millions of deltas observes itself in O(1) memory.
//
// Counters split into two classes. The deterministic class (deltas,
// batches, overloads, shed, evictions, resurrections) is persisted in
// the checkpoint and survives resume: prev holds the restored values,
// the atomics count this process, totals are the sum. The per-process
// class (queue high-water, merge latency) describes this process's
// scheduling and is deliberately not persisted.
type metrics struct {
	deltas        atomic.Uint64
	batches       atomic.Uint64
	overloads     atomic.Uint64
	shedDeltas    atomic.Uint64
	evictions     atomic.Uint64
	resurrections atomic.Uint64

	// Fault-isolation counters (see health.go): poison deltas rejected
	// by sanitation, deltas dropped while their tenant was
	// quarantined, deltas refused by per-tenant admission control,
	// breaker trips and heals across all tenants, and per-tenant
	// promotion outcomes. All deterministic and persisted.
	poisonRejects atomic.Uint64
	quarantined   atomic.Uint64
	throttled     atomic.Uint64
	trips         atomic.Uint64
	heals         atomic.Uint64
	promotions    atomic.Uint64
	promoRejects  atomic.Uint64
	promoFailures atomic.Uint64

	// closedRejects counts Submit/enqueue refusals after Close — a
	// property of this process's shutdown, deliberately not persisted.
	closedRejects atomic.Uint64

	// prev carries the counters restored from a checkpoint.
	prev struct {
		deltas, batches, overloads, shedDeltas, evictions, resurrections uint64

		poisonRejects, quarantined, throttled   uint64
		trips, heals                            uint64
		promotions, promoRejects, promoFailures uint64
	}

	queueHighWater atomic.Int64
	merge          latencyHist
}

func (m *metrics) noteQueueDepth(depth int) {
	for {
		cur := m.queueHighWater.Load()
		if int64(depth) <= cur || m.queueHighWater.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

func (m *metrics) noteMerge(d time.Duration) { m.merge.observe(d) }

// latencyHist is a power-of-2^(1/4) bucketed duration histogram: each
// nanosecond value lands in the bucket indexed by its floor log2 times
// 4 plus the next two mantissa bits, giving ~19% relative resolution
// over the full int64 range in a fixed 256-counter array.
const nLatBuckets = 256

type latencyHist struct {
	buckets [nLatBuckets]atomic.Uint64
	count   atomic.Uint64
}

func bucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	v := uint64(ns)
	b := bits.Len64(v) - 1 // floor log2
	frac := 0
	if b >= 2 {
		frac = int((v >> (uint(b) - 2)) & 3)
	}
	i := b*4 + frac
	if i >= nLatBuckets {
		i = nLatBuckets - 1
	}
	return i
}

// bucketLow returns the lower bound of bucket i in nanoseconds — the
// conservative representative quantile() reports.
func bucketLow(i int) int64 {
	b, frac := i/4, i%4
	if b < 2 {
		return int64(1) << uint(b)
	}
	return int64((4 + uint64(frac)) << (uint(b) - 2))
}

func (h *latencyHist) observe(d time.Duration) {
	h.buckets[bucketOf(d.Nanoseconds())].Add(1)
	h.count.Add(1)
}

// quantile returns the q-quantile (0 < q <= 1) as the lower bound of
// the bucket containing it, or 0 when nothing was observed.
func (h *latencyHist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > rank {
			return time.Duration(bucketLow(i))
		}
	}
	return time.Duration(bucketLow(nLatBuckets - 1))
}

// max returns the lower bound of the highest occupied bucket.
func (h *latencyHist) max() time.Duration {
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			return time.Duration(bucketLow(i))
		}
	}
	return 0
}

// TenantStat is one tenant's slice of a Stats snapshot.
type TenantStat struct {
	ID string
	// Deltas is the tenant's all-time submitted delta count.
	Deltas uint64
	// Sites is the tenant aggregate's current distinct-site count.
	Sites int
	// LastActive is the most recent round the tenant submitted in.
	LastActive int
	// Drift is the latest HotOverlap of the tenant's aggregate against
	// its baseline (1 = no drift; 0 before the first EndRound).
	Drift float64
	// Health is the tenant's isolation state ("healthy", "degraded",
	// "quarantined", "probation").
	Health string
	// Poison, Dropped and Throttled are the tenant's all-time
	// sanitation rejections, quarantine drops and admission refusals.
	Poison, Dropped, Throttled uint64
	// Trips counts the tenant's lifetime breaker trips.
	Trips uint64
}

// Stats is a point-in-time snapshot of the service's observability
// surface. Take it between rounds for stable tenant numbers.
type Stats struct {
	// Round is the next round index (== completed rounds).
	Round int
	// Deltas counts every Submit ever accepted into a batch (including
	// ones later shed with that batch), across resumes; DeltasThisProcess
	// counts only this process, which is what throughput is computed
	// over. ShedDeltas of them never reached an aggregate.
	Deltas, DeltasThisProcess uint64
	// Batches counts batch merges completed; Overloads counts shed
	// batches, ShedDeltas the deltas they carried.
	Batches, Overloads, ShedDeltas uint64
	// Evictions and Resurrections count tenant lifecycle transitions.
	Evictions, Resurrections uint64
	// Poison counts deltas rejected by sanitation; QuarantineDropped
	// counts deltas counted-and-dropped while their tenant was
	// quarantined; Throttled counts admission-control refusals. None of
	// these ever reached an aggregate.
	Poison, QuarantineDropped, Throttled uint64
	// Trips and Heals count breaker transitions across all tenants.
	Trips, Heals uint64
	// Promotions, PromoRejects and PromoFailures count per-tenant
	// canary-pipeline outcomes (0 unless Config.Promote is armed).
	Promotions, PromoRejects, PromoFailures uint64
	// ClosedRejects counts Submits refused after Close (this process).
	ClosedRejects uint64
	// Health counts resident tenants by health state name.
	Health map[string]int
	// ShedByReason breaks down every delta that was refused or dropped
	// before reaching an aggregate, by mechanism: "overload" (queue
	// shed), "throttle", "quarantine", "poison", "closed".
	ShedByReason map[string]uint64
	// QueueHighWater is the deepest the merge queue got (this process).
	QueueHighWater int
	// MergeP50/P99/Max are batch-merge latency quantiles (this process).
	MergeP50, MergeP99, MergeMax time.Duration
	// LiveTenants is the current resident tenant count.
	LiveTenants int
	// GlobalSites and GlobalOps describe the global aggregate.
	GlobalSites int
	GlobalOps   uint64
	// GlobalShards is the global aggregator's per-stripe occupancy and
	// merge-load view.
	GlobalShards []fleet.ShardStat
	// Tenants lists per-tenant stats, sorted by ID.
	Tenants []TenantStat
}

// Stats snapshots the service. Safe to call concurrently with Submit,
// but per-tenant numbers are only round-consistent between rounds.
func (s *Service) Stats() Stats {
	st := Stats{
		Round:             s.Round(),
		DeltasThisProcess: s.met.deltas.Load(),
		QueueHighWater:    int(s.met.queueHighWater.Load()),
		MergeP50:          s.met.merge.quantile(0.50),
		MergeP99:          s.met.merge.quantile(0.99),
		MergeMax:          s.met.merge.max(),
	}
	st.Deltas = st.DeltasThisProcess + s.met.prev.deltas
	st.Batches = s.met.batches.Load() + s.met.prev.batches
	st.Overloads = s.met.overloads.Load() + s.met.prev.overloads
	st.ShedDeltas = s.met.shedDeltas.Load() + s.met.prev.shedDeltas
	st.Evictions = s.met.evictions.Load() + s.met.prev.evictions
	st.Resurrections = s.met.resurrections.Load() + s.met.prev.resurrections
	st.Poison = s.met.poisonRejects.Load() + s.met.prev.poisonRejects
	st.QuarantineDropped = s.met.quarantined.Load() + s.met.prev.quarantined
	st.Throttled = s.met.throttled.Load() + s.met.prev.throttled
	st.Trips = s.met.trips.Load() + s.met.prev.trips
	st.Heals = s.met.heals.Load() + s.met.prev.heals
	st.Promotions = s.met.promotions.Load() + s.met.prev.promotions
	st.PromoRejects = s.met.promoRejects.Load() + s.met.prev.promoRejects
	st.PromoFailures = s.met.promoFailures.Load() + s.met.prev.promoFailures
	st.ClosedRejects = s.met.closedRejects.Load()
	st.ShedByReason = map[string]uint64{
		"overload":   st.ShedDeltas,
		"throttle":   st.Throttled,
		"quarantine": st.QuarantineDropped,
		"poison":     st.Poison,
		"closed":     st.ClosedRejects,
	}

	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	st.LiveTenants = len(ts)
	st.Health = make(map[string]int)
	for _, t := range ts {
		t.mu.Lock()
		st.Health[t.health.String()]++
		st.Tenants = append(st.Tenants, TenantStat{
			ID: t.id, Deltas: t.deltas, Sites: t.agg.SiteCount(),
			LastActive: t.lastActive, Drift: t.drift,
			Health: t.health.String(),
			Poison: t.poison, Dropped: t.dropped, Throttled: t.throttled,
			Trips: t.brk.Trips(),
		})
		t.mu.Unlock()
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].ID < st.Tenants[j].ID })

	g := s.global.Snapshot()
	st.GlobalSites = len(g.Sites)
	st.GlobalOps = g.Ops
	st.GlobalShards = s.global.ShardStats()
	return st
}
