package ingest

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ir"
	"repro/internal/prof"
	"repro/internal/resilience"
)

func siteID(i int) ir.SiteID { return ir.SiteID(i) }

// testBases builds two small deterministic base profiles: one
// direct-heavy, one with indirect sites — enough shape for hot-window
// rotation and drift to be visible.
func testBases() []Base {
	direct := prof.New()
	for i := 0; i < 24; i++ {
		direct.AddDirect(siteID(i), fmt.Sprintf("fn%d", i%6), fmt.Sprintf("callee%d", i), uint64(100+i))
	}
	mixed := prof.New()
	for i := 0; i < 16; i++ {
		if i%2 == 0 {
			mixed.AddDirect(siteID(200+i), fmt.Sprintf("mfn%d", i%4), fmt.Sprintf("mcallee%d", i), 50)
		} else {
			for t := 0; t < 3; t++ {
				mixed.AddIndirect(siteID(200+i), fmt.Sprintf("mfn%d", i%4), fmt.Sprintf("tgt%d", t), 20)
			}
		}
	}
	return []Base{{Name: "direct", Prof: direct}, {Name: "mixed", Prof: mixed}}
}

func serialized(t *testing.T, p *prof.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// smallSim is the shape most tests use: 6 tenants (tenant 3 is the
// intermittent one), 8 kernels each, enough rounds for an idle gap.
func smallSim(t *testing.T, workers, rounds int) *Sim {
	t.Helper()
	s, err := NewSim(SimConfig{
		Tenants: 6, Kernels: 8, Rounds: rounds, Workers: workers,
		SitesPerDelta: 6, Seed: 42, Bases: testBases(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestIngestDeterministicAcrossWorkers is the end-to-end determinism
// acceptance: the final global snapshot is byte-identical for every
// worker count, every batch size, and equal to the flat serial merge
// of every delta — the two-level (tenant → global) pipeline with its
// batching, striping and lifecycle adds nothing and loses nothing.
func TestIngestDeterministicAcrossWorkers(t *testing.T) {
	sim := smallSim(t, 1, 6)
	flat := serialized(t, sim.FlatMerge())

	for _, tc := range []struct {
		workers, batch int
	}{{1, 1}, {1, 7}, {4, 1}, {4, 64}, {8, 3}} {
		sim := smallSim(t, tc.workers, 6)
		svc, err := Open(Config{BatchSize: tc.batch, Workers: tc.workers, IdleEvict: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(svc); err != nil {
			t.Fatalf("workers=%d batch=%d: %v", tc.workers, tc.batch, err)
		}
		got := serialized(t, svc.GlobalSnapshot())
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, flat) {
			t.Errorf("workers=%d batch=%d: global snapshot differs from flat merge", tc.workers, tc.batch)
		}
	}
}

// TestIngestLifecycle: the intermittent tenant decays while idle and,
// with a tight eviction horizon, is evicted and later resurrected —
// without perturbing the global aggregate.
func TestIngestLifecycle(t *testing.T) {
	sim := smallSim(t, 2, 8)
	svc, err := Open(Config{Workers: 2, IdleEvict: 1, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(svc); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Evictions == 0 {
		t.Error("intermittent tenant was never evicted with IdleEvict=1")
	}
	if st.Resurrections == 0 {
		t.Error("evicted tenant was never resurrected")
	}
	got := serialized(t, svc.GlobalSnapshot())
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if want := serialized(t, sim.FlatMerge()); !bytes.Equal(got, want) {
		t.Error("eviction/resurrection changed the global aggregate")
	}
}

// TestIngestDrift: tenants that keep reporting see their drift fall
// below 1 as the sim's hot window rotates away from their baseline.
func TestIngestDrift(t *testing.T) {
	sim := smallSim(t, 1, 6)
	svc, err := Open(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := sim.Run(svc); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	var drifted bool
	for _, ts := range st.Tenants {
		if ts.Drift <= 0 || ts.Drift > 1 {
			t.Errorf("tenant %s drift %v outside (0, 1]", ts.ID, ts.Drift)
		}
		if ts.Drift < 0.999 {
			drifted = true
		}
	}
	if !drifted {
		t.Error("no tenant drifted below 1 despite the rotating hot window")
	}
}

// TestIngestShedOverload: with the worker gate held and a single-slot
// queue, a second batch is shed with a structured
// PhaseIngest/KindOverload fault and the shed counters quantify the
// loss; releasing the gate drains the queue.
func TestIngestShedOverload(t *testing.T) {
	svc, err := Open(Config{BatchSize: 1, QueueDepth: 1, Workers: 1, Shed: true})
	if err != nil {
		t.Fatal(err)
	}
	gate := svc.openGate()

	d := prof.New()
	d.AddDirect(siteID(1), "f", "g", 1)

	// First submit: batch enters the queue (worker is gated and has
	// not picked it up yet, or has picked it up and blocks on the
	// gate). Keep submitting until the queue is provably full and a
	// shed happens — at most 3 submits (1 in worker's hands + 1
	// queued + the shed one).
	var fault error
	for i := 0; i < 3 && fault == nil; i++ {
		fault = svc.Submit("tenant-a", d)
	}
	if fault == nil {
		t.Fatal("queue never shed despite gated worker and depth 1")
	}
	fe, ok := resilience.AsFault(fault)
	if !ok || fe.Phase != resilience.PhaseIngest || fe.Kind != resilience.KindOverload {
		t.Fatalf("shed error = %v, want ingest/overload fault", fault)
	}
	st := svc.Stats()
	if st.Overloads == 0 || st.ShedDeltas == 0 {
		t.Errorf("overloads=%d shed=%d after shed, want both > 0", st.Overloads, st.ShedDeltas)
	}

	// Release the gate for good: a closed gate never blocks a worker,
	// so Close can drain the queue.
	close(gate)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	final := svc.Stats()
	if merged := final.Deltas - final.ShedDeltas; merged == 0 {
		t.Error("every delta was shed; expected the queued ones to merge")
	}
}

// TestIngestBlockingNeverSheds: without Shed, a tiny queue backpressures
// instead of dropping — every delta lands in the aggregate.
func TestIngestBlockingNeverSheds(t *testing.T) {
	sim := smallSim(t, 4, 3)
	svc, err := Open(Config{BatchSize: 1, QueueDepth: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(svc); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Overloads != 0 || st.ShedDeltas != 0 {
		t.Errorf("blocking mode shed: overloads=%d shed=%d", st.Overloads, st.ShedDeltas)
	}
	got := serialized(t, svc.GlobalSnapshot())
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if want := serialized(t, sim.FlatMerge()); !bytes.Equal(got, want) {
		t.Error("blocking-mode global snapshot differs from flat merge")
	}
}

// TestIngestTenantIDValidation: IDs outside [A-Za-z0-9._-]+ (or with a
// leading dot) are refused with a config fault before any state is
// created.
func TestIngestTenantIDValidation(t *testing.T) {
	svc, err := Open(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	d := prof.New()
	d.AddDirect(siteID(1), "f", "g", 1)
	for _, id := range []string{"", "a/b", "..", ".hidden", "sp ace", "a\nb"} {
		err := svc.Submit(id, d)
		if !resilience.IsKind(err, resilience.KindConfig) {
			t.Errorf("Submit(%q) = %v, want config fault", id, err)
		}
	}
	if err := svc.Submit("ok.tenant_1-x", d); err != nil {
		t.Errorf("valid tenant id refused: %v", err)
	}
}

// TestIngestStats: counter bookkeeping adds up on a lossless run.
func TestIngestStats(t *testing.T) {
	sim := smallSim(t, 2, 4)
	svc, err := Open(Config{BatchSize: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := sim.Run(svc); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	var want uint64
	for r := 0; r < 4; r++ {
		for tn := 0; tn < 6; tn++ {
			if sim.Active(tn, r) {
				want += 8
			}
		}
	}
	if st.Deltas != want {
		t.Errorf("Deltas = %d, want %d", st.Deltas, want)
	}
	if st.Batches == 0 || st.MergeP99 < st.MergeP50 {
		t.Errorf("batch/latency stats inconsistent: %+v", st)
	}
	var tenantDeltas uint64
	for _, ts := range st.Tenants {
		tenantDeltas += ts.Deltas
	}
	if tenantDeltas != want {
		t.Errorf("per-tenant deltas sum to %d, want %d", tenantDeltas, want)
	}
	var stripeMerges uint64
	for _, sh := range st.GlobalShards {
		stripeMerges += sh.Merges
	}
	if stripeMerges == 0 {
		t.Error("global shard merge counters all zero after a run")
	}
}
