package ingest

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fleet"
	"repro/internal/prof"
	"repro/internal/resilience"
)

// goodDelta is a minimal well-formed delta.
func goodDelta() *prof.Profile {
	p := prof.New()
	p.AddDirect(siteID(1), "f", "g", 1)
	return p
}

// badDelta is structurally malformed: an indirect site whose value
// profile (3) does not sum to its count (7).
func badDelta() *prof.Profile {
	p := prof.New()
	p.AddIndirect(siteID(999), "pc", "pt", 3)
	p.Sites[siteID(999)].Count = 7
	return p
}

// TestSubmitAfterCloseTypedFault: Submit and EndRound against a closed
// service return a structured PhaseIngest/KindClosed fault instead of
// panicking on the closed merge queue.
func TestSubmitAfterCloseTypedFault(t *testing.T) {
	svc, err := Open(Config{Workers: 1, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit("a", goodDelta()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	err = svc.Submit("a", goodDelta())
	fe, ok := resilience.AsFault(err)
	if !ok || fe.Phase != resilience.PhaseIngest || fe.Kind != resilience.KindClosed {
		t.Fatalf("Submit after Close = %v, want ingest/closed fault", err)
	}
	if !resilience.IsKind(svc.EndRound(), resilience.KindClosed) {
		t.Error("EndRound after Close did not return a closed fault")
	}
	if err := svc.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestQueueHighWaterSeesBlockedProducer: with the worker gated and the
// queue provably full under a blocked producer, the high-water mark
// must record the full depth — the pre-send sample in enqueue exists
// because a producer about to block is exactly when the queue is at
// its deepest.
func TestQueueHighWaterSeesBlockedProducer(t *testing.T) {
	const depth = 2
	svc, err := Open(Config{BatchSize: 1, QueueDepth: depth, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	gate := svc.openGate()

	// b1: the worker takes it and blocks at the gate; feeding the gate
	// once synchronizes — after the send returns, b1 has left the queue
	// and the worker is parked waiting for b2.
	if err := svc.Submit("a", goodDelta()); err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{}

	// b2 is handed to (or soon taken by) the parked worker, which then
	// blocks at the gate holding it; b3 and b4 fill the queue.
	for i := 0; i < depth+1; i++ {
		if err := svc.Submit("a", goodDelta()); err != nil {
			t.Fatal(err)
		}
	}
	// b5 must block: worker busy, queue full. Its pre-send sample
	// observes the full queue.
	done := make(chan error, 1)
	go func() { done <- svc.Submit("a", goodDelta()) }()

	close(gate) // release everything
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if hw := svc.Stats().QueueHighWater; hw < depth {
		t.Errorf("QueueHighWater = %d, want >= %d (queue was provably full under a blocked producer)", hw, depth)
	}
}

// TestSanitizePoison: every class of malformed delta is rejected with
// PhaseIngest/KindPoison before touching any aggregate; a well-formed
// delta passes.
func TestSanitizePoison(t *testing.T) {
	universe := prof.New()
	universe.AddDirect(siteID(1), "f", "g", 1)
	universe.AddIndirect(siteID(2), "f", "t", 1)

	cases := []struct {
		name  string
		delta func() *prof.Profile
		cfg   Config
	}{
		{"empty caller", func() *prof.Profile {
			p := prof.New()
			p.AddDirect(siteID(1), "", "g", 1)
			return p
		}, Config{}},
		{"zero count", func() *prof.Profile {
			p := goodDelta()
			p.Sites[siteID(1)].Count = 0
			return p
		}, Config{}},
		{"direct with empty callee", func() *prof.Profile {
			p := prof.New()
			p.AddDirect(siteID(1), "f", "", 1)
			return p
		}, Config{}},
		{"empty target name", func() *prof.Profile {
			p := prof.New()
			p.AddIndirect(siteID(2), "f", "", 1)
			return p
		}, Config{}},
		{"zero target count", func() *prof.Profile {
			p := prof.New()
			p.AddIndirect(siteID(2), "f", "t", 1)
			p.Sites[siteID(2)].Targets["t"] = 0
			return p
		}, Config{}},
		{"target sum mismatch", badDelta, Config{}},
		{"count over max", func() *prof.Profile {
			p := prof.New()
			p.AddDirect(siteID(1), "f", "g", 100)
			return p
		}, Config{MaxDeltaCount: 10}},
		{"ops over max", func() *prof.Profile {
			p := goodDelta()
			p.Ops = 1 << 50
			return p
		}, Config{}},
		{"empty invocation name", func() *prof.Profile {
			p := goodDelta()
			p.AddInvocation("", 1)
			return p
		}, Config{}},
		{"zero invocation count", func() *prof.Profile {
			p := goodDelta()
			p.Invocations["h"] = 0
			return p
		}, Config{}},
		{"site outside universe", func() *prof.Profile {
			p := prof.New()
			p.AddDirect(siteID(42), "f", "g", 1)
			return p
		}, Config{Universe: universe}},
	}
	for _, tc := range cases {
		tc.cfg.Workers = 1
		svc, err := Open(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		err = svc.Submit("a", tc.delta())
		if !resilience.IsKind(err, resilience.KindPoison) {
			t.Errorf("%s: Submit = %v, want poison fault", tc.name, err)
		}
		if st := svc.Stats(); st.Poison != 1 || st.ShedByReason["poison"] != 1 {
			t.Errorf("%s: poison counters %d/%d, want 1/1", tc.name, st.Poison, st.ShedByReason["poison"])
		}
		if err := svc.Submit("a", goodDelta()); err != nil {
			t.Errorf("%s: well-formed delta refused: %v", tc.name, err)
		}
		svc.Close()
	}
}

// TestQuarantineLifecycle walks one tenant through the whole state
// machine — healthy → quarantined (poison burst) → probation → healthy
// (clean probe) — then re-trips it and pins the escalated window. At
// the end, the global aggregate contains exactly the deltas that were
// admitted and well-formed, nothing else.
func TestQuarantineLifecycle(t *testing.T) {
	svc, err := Open(Config{
		Workers: 1, BatchSize: 1,
		TripFaults: 4, OpenRounds: 1, MaxOpenRounds: 4, ProbeJitter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	health := func() string {
		st := svc.Stats()
		for _, ts := range st.Tenants {
			if ts.ID == "bad" {
				return ts.Health
			}
		}
		return "absent"
	}
	endRound := func() {
		t.Helper()
		if err := svc.EndRound(); err != nil {
			t.Fatal(err)
		}
	}

	// Round 0: a poison burst at the trip threshold.
	for i := 0; i < 4; i++ {
		if err := svc.Submit("bad", badDelta()); !resilience.IsKind(err, resilience.KindPoison) {
			t.Fatalf("poison submit %d = %v", i, err)
		}
	}
	endRound()
	if got := health(); got != "quarantined" {
		t.Fatalf("after poison burst: health %q, want quarantined", got)
	}
	if st := svc.Stats(); st.Trips != 1 {
		t.Fatalf("trips = %d, want 1", st.Trips)
	}

	// Round 1: quarantined — a well-formed delta is counted and dropped.
	if err := svc.Submit("bad", goodDelta()); !resilience.IsKind(err, resilience.KindQuarantined) {
		t.Fatalf("quarantined submit = %v, want quarantined fault", err)
	}
	endRound() // open window (1 round) expires
	if got := health(); got != "probation" {
		t.Fatalf("after open window: health %q, want probation", got)
	}
	if st := svc.Stats(); st.QuarantineDropped != 1 {
		t.Fatalf("QuarantineDropped = %d, want 1", st.QuarantineDropped)
	}

	// Round 2: the probe round — one clean delta heals the tenant.
	if err := svc.Submit("bad", goodDelta()); err != nil {
		t.Fatalf("probe submit: %v", err)
	}
	endRound()
	if got := health(); got != "healthy" {
		t.Fatalf("after clean probe: health %q, want healthy", got)
	}
	if st := svc.Stats(); st.Heals != 1 {
		t.Fatalf("heals = %d, want 1", st.Heals)
	}

	// Round 3: re-trip (fresh strike after the heal: base 1-round window).
	for i := 0; i < 4; i++ {
		svc.Submit("bad", badDelta())
	}
	endRound()
	if got := health(); got != "quarantined" {
		t.Fatalf("after second burst: health %q, want quarantined", got)
	}
	endRound() // window expires → probation (round 4)
	if got := health(); got != "probation" {
		t.Fatalf("second window: health %q, want probation", got)
	}

	// Round 5: a poison probe re-trips with the escalated 2-round window.
	svc.Submit("bad", badDelta())
	endRound()
	if got := health(); got != "quarantined" {
		t.Fatalf("failed probe: health %q, want quarantined", got)
	}
	endRound() // escalated window round 1 of 2: still quarantined
	if got := health(); got != "quarantined" {
		t.Fatalf("escalated window did not hold: health %q", got)
	}
	endRound() // round 2 of 2 → probation
	if got := health(); got != "probation" {
		t.Fatalf("escalated window never expired: health %q", got)
	}

	// Exactly one delta (the clean probe) ever merged.
	if got, want := serialized(t, svc.GlobalSnapshot()), serialized(t, goodDelta()); !bytes.Equal(got, want) {
		t.Error("global aggregate is not exactly the one admitted clean delta")
	}
}

// TestTenantRateLimit: the per-tenant token bucket refuses deltas over
// the per-round rate with KindOverload, and refills at the barrier.
func TestTenantRateLimit(t *testing.T) {
	svc, err := Open(Config{Workers: 1, BatchSize: 1, TenantRate: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := 0; i < 2; i++ {
		if err := svc.Submit("a", goodDelta()); err != nil {
			t.Fatalf("submit %d within rate: %v", i, err)
		}
	}
	err = svc.Submit("a", goodDelta())
	if !resilience.IsKind(err, resilience.KindOverload) {
		t.Fatalf("over-rate submit = %v, want overload fault", err)
	}
	if st := svc.Stats(); st.Throttled != 1 || st.ShedByReason["throttle"] != 1 {
		t.Fatalf("throttle counters %d/%d, want 1/1", st.Throttled, st.ShedByReason["throttle"])
	}
	if err := svc.EndRound(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit("a", goodDelta()); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
}

// TestPerTenantPromotion: with Promote armed, drifting tenants drive
// their own canary-gated rebuild pipelines; a controller that fails
// for one tenant strikes only that tenant.
func TestPerTenantPromotion(t *testing.T) {
	sim := smallSim(t, 1, 8)
	var rebuilt, failed int
	svc, err := Open(Config{
		Workers: 1,
		// Threshold 1: any drift at all triggers a rebuild (the first
		// active round is exactly 1.0 and never does).
		Promote: &fleet.PromoteConfig{DriftThreshold: 1},
		NewController: func(id string) *fleet.Controller {
			return &fleet.Controller{Rebuild: func(snap *prof.Profile) (*fleet.Candidate, error) {
				if id == sim.TenantID(1) {
					failed++
					return nil, errors.New("no builder for this tenant")
				}
				rebuilt++
				return &fleet.Candidate{}, nil
			}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := sim.Run(svc); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if rebuilt == 0 || st.Promotions == 0 {
		t.Errorf("promotions = %d (rebuilds seen %d), want > 0 with drifting tenants", st.Promotions, rebuilt)
	}
	if failed == 0 || st.PromoFailures == 0 {
		t.Errorf("promo failures = %d (controller failures %d), want > 0 for the failing tenant", st.PromoFailures, failed)
	}
}

// TestIngestPoisonIsolationByteIdentical is the isolation acceptance
// property: a run with a poison tenant that is quarantined mid-run
// produces a final global snapshot byte-identical to the same run
// where the poison never happened — poison is rejected by sanitation,
// quarantine drops happen before the two-level merge, and neither ever
// reaches an aggregate.
func TestIngestPoisonIsolationByteIdentical(t *testing.T) {
	mk := func(poison bool, workers int) SimConfig {
		cfg := SimConfig{
			Tenants: 6, Kernels: 8, Rounds: 6, Workers: workers,
			SitesPerDelta: 6, Seed: 42, Bases: testBases(),
		}
		if poison {
			cfg.Poison = &PoisonConfig{Kernels: 16, FromRound: 1}
		}
		return cfg
	}
	run := func(simCfg SimConfig, workers int) ([]byte, Stats) {
		t.Helper()
		sim, err := NewSim(simCfg)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := Open(Config{Workers: workers, BatchSize: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(svc); err != nil {
			t.Fatal(err)
		}
		snap := serialized(t, svc.GlobalSnapshot())
		st := svc.Stats()
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
		return snap, st
	}

	clean, _ := run(mk(false, 2), 2)
	for _, workers := range []int{1, 4} {
		poisoned, st := run(mk(true, workers), workers)
		if !bytes.Equal(poisoned, clean) {
			t.Errorf("workers=%d: poisoned run's global snapshot differs from the clean run's", workers)
		}
		if st.Poison == 0 || st.Trips == 0 || st.QuarantineDropped == 0 {
			t.Errorf("workers=%d: poison=%d trips=%d dropped=%d — quarantine never engaged",
				workers, st.Poison, st.Trips, st.QuarantineDropped)
		}
		var found bool
		for _, ts := range st.Tenants {
			if ts.ID == PoisonTenantID {
				found = true
				if ts.Trips == 0 || ts.Poison == 0 {
					t.Errorf("workers=%d: poison tenant row %+v never tripped", workers, ts)
				}
			}
		}
		if !found {
			t.Errorf("workers=%d: poison tenant missing from stats", workers)
		}
	}
}

// TestQuarantineCrashResume: SIGKILL (modeled as abandoning the
// service mid-run) after the poison tenant has been quarantined; the
// resumed service restores the tenant's health and breaker from the
// checkpoint — still quarantined, same trip count — and replays to a
// final global snapshot byte-identical to both the uninterrupted
// poisoned run and the poison-free run.
func TestQuarantineCrashResume(t *testing.T) {
	simCfg := SimConfig{
		Tenants: 6, Kernels: 8, Rounds: 6, Workers: 2,
		SitesPerDelta: 6, Seed: 42, Bases: testBases(),
		Poison: &PoisonConfig{Kernels: 16, FromRound: 0},
	}
	base := Config{Workers: 2, BatchSize: 5}

	// Uninterrupted poisoned reference (no state dir).
	refSim, err := NewSim(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	refSvc, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := refSim.Run(refSvc); err != nil {
		t.Fatal(err)
	}
	want := serialized(t, refSvc.GlobalSnapshot())
	refSvc.Close()

	// Run with checkpointing, kill after round 2 (the poison tenant
	// tripped at the round-0 barrier).
	dir := t.TempDir()
	kill := errors.New("kill")
	killCfg := simCfg
	killCfg.RoundHook = func(round int, svc *Service) error {
		if round == 2 {
			return kill
		}
		return nil
	}
	killSim, err := NewSim(killCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.StateDir = dir
	cfg.Fingerprint = killSim.Fingerprint(cfg)
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := killSim.Run(svc); !errors.Is(err, kill) {
		t.Fatalf("kill hook: %v", err)
	}
	svc.Close() // writes nothing: SIGKILL and Close look identical on disk

	// Resume on a different worker count: quarantine state must have
	// survived the crash byte-identically.
	resumeSim, err := NewSim(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.Round() != 3 {
		t.Fatalf("resumed at round %d, want 3", re.Round())
	}
	var row TenantStat
	for _, ts := range re.Stats().Tenants {
		if ts.ID == PoisonTenantID {
			row = ts
		}
	}
	if row.ID == "" {
		t.Fatal("poison tenant not restored from checkpoint")
	}
	if row.Health != "quarantined" && row.Health != "probation" {
		t.Errorf("restored poison tenant health %q, want quarantined/probation", row.Health)
	}
	if row.Trips == 0 || row.Poison == 0 {
		t.Errorf("restored poison tenant lost its isolation counters: %+v", row)
	}

	if err := resumeSim.Run(re); err != nil {
		t.Fatal(err)
	}
	got := serialized(t, re.GlobalSnapshot())
	st := re.Stats()
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed poisoned run's global snapshot differs from the uninterrupted one")
	}
	if st.Trips == 0 || st.Poison == 0 {
		t.Errorf("resumed run lost isolation counters: trips=%d poison=%d", st.Trips, st.Poison)
	}

	// And the ultimate isolation check: equal to a poison-free run.
	cleanCfg := simCfg
	cleanCfg.Poison = nil
	cleanSim, err := NewSim(cleanCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialized(t, cleanSim.FlatMerge())) {
		t.Error("poisoned crash-resumed run differs from the poison-free flat merge")
	}
}

// TestEvictedQuarantineSurvivesResurrection: a quarantined tenant that
// goes idle, is evicted and later resurrected comes back with its
// breaker state and isolation tallies intact.
func TestEvictedQuarantineSurvivesResurrection(t *testing.T) {
	svc, err := Open(Config{
		Workers: 1, BatchSize: 1, StateDir: t.TempDir(),
		TripFaults: 2, OpenRounds: 8, ProbeJitter: -1, IdleEvict: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for i := 0; i < 2; i++ {
		svc.Submit("bad", badDelta())
	}
	if err := svc.EndRound(); err != nil { // trips; quarantined for 8 rounds
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // idle rounds: evicted after the second
		if err := svc.EndRound(); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}

	// Resurrect: the submission must hit the restored open breaker.
	err = svc.Submit("bad", goodDelta())
	if !resilience.IsKind(err, resilience.KindQuarantined) {
		t.Fatalf("resurrected submit = %v, want quarantined fault", err)
	}
	st := svc.Stats()
	for _, ts := range st.Tenants {
		if ts.ID == "bad" {
			if ts.Health != "quarantined" || ts.Trips != 1 || ts.Poison != 2 {
				t.Errorf("resurrected tenant row %+v lost isolation state", ts)
			}
		}
	}
	if st.Resurrections != 1 {
		t.Errorf("resurrections = %d, want 1", st.Resurrections)
	}
}
