package ingest

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/prof"
	"repro/internal/resilience"
)

// FuzzSubmitDelta throws arbitrarily-shaped deltas at Submit. The
// contract under fuzz: Submit never panics, and every structural
// rejection is a typed PhaseIngest/KindPoison fault — a malformed
// delta must be refused by sanitation, never half-merged.
func FuzzSubmitDelta(f *testing.F) {
	svc, err := Open(Config{Workers: 1, BatchSize: 1 << 20})
	if err != nil {
		f.Fatal(err)
	}
	defer svc.Close()

	f.Add(int32(1), "f", "g", "", uint64(1), uint64(1), uint64(0), "h", uint64(1), false)
	f.Add(int32(2), "f", "", "t", uint64(3), uint64(7), uint64(1), "", uint64(0), true)
	f.Add(int32(-9), "", "g", "t", uint64(0), uint64(0), uint64(1)<<50, "h", uint64(1)<<41, true)
	f.Add(int32(7), "caller", "callee", "target", ^uint64(0), uint64(2), uint64(0), "fn", uint64(5), false)

	f.Fuzz(func(t *testing.T, id int32, caller, callee, target string,
		count, targetCount, ops uint64, invFn string, invCount uint64, indirect bool) {
		delta := prof.New()
		delta.Ops = ops
		site := &prof.Site{ID: ir.SiteID(id), Caller: caller, Callee: callee, Count: count}
		if indirect {
			site.Targets = map[string]uint64{target: targetCount}
		}
		delta.Sites[site.ID] = site
		delta.Invocations[invFn] = invCount

		err := svc.Submit("fuzz", delta)
		if err != nil && !resilience.IsKind(err, resilience.KindPoison) {
			t.Fatalf("Submit rejection is not a poison fault: %v", err)
		}
	})
}
