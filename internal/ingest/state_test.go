package ingest

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/resilience"
)

// openSim builds a Sim plus a fingerprinted service config over dir.
func openSim(t *testing.T, dir string, workers, rounds int) (*Sim, Config) {
	t.Helper()
	sim := smallSim(t, workers, rounds)
	cfg := Config{Workers: workers, BatchSize: 5, IdleEvict: 1, StateDir: dir}
	cfg.Fingerprint = sim.Fingerprint(cfg)
	return sim, cfg
}

// TestIngestCheckpointRoundTrip: a checkpointed run reopens with its
// round counter, counters, tenants and global aggregate intact.
func TestIngestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sim, cfg := openSim(t, dir, 2, 3)
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(svc); err != nil {
		t.Fatal(err)
	}
	before := svc.Stats()
	global := serialized(t, svc.GlobalSnapshot())
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Round() != 3 {
		t.Errorf("reopened Round() = %d, want 3", re.Round())
	}
	after := re.Stats()
	if after.Deltas != before.Deltas || after.Batches != before.Batches ||
		after.Evictions != before.Evictions || after.Resurrections != before.Resurrections {
		t.Errorf("counters after reopen = %+v, want %+v", after, before)
	}
	if after.LiveTenants != before.LiveTenants {
		t.Errorf("reopened %d live tenants, want %d", after.LiveTenants, before.LiveTenants)
	}
	if got := serialized(t, re.GlobalSnapshot()); !bytes.Equal(got, global) {
		t.Error("reopened global aggregate differs from checkpointed one")
	}
	for i, ts := range after.Tenants {
		if want := before.Tenants[i]; ts != want {
			t.Errorf("tenant %s after reopen = %+v, want %+v", ts.ID, ts, want)
		}
	}
}

// TestIngestCrashResumeByteIdentical is the tentpole acceptance: a run
// killed between rounds (state persists only at round barriers, so an
// abandoned process mid-round looks identical on disk) resumes from
// the checkpoint and finishes with a final global snapshot that is
// byte-for-byte the uninterrupted run's — across a worker-count change
// at resume, and with evictions and resurrections in the replayed
// window.
func TestIngestCrashResumeByteIdentical(t *testing.T) {
	const rounds = 8
	refSim := smallSim(t, 1, rounds)
	refSvc, err := Open(Config{Workers: 1, BatchSize: 5, IdleEvict: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := refSim.Run(refSvc); err != nil {
		t.Fatal(err)
	}
	ref := serialized(t, refSvc.GlobalSnapshot())
	refSvc.Close()

	for _, killAfter := range []int{1, 3, 5} {
		dir := t.TempDir()
		sim, cfg := openSim(t, dir, 4, rounds)
		cfg.BatchSize = 5
		svc, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		killed := errors.New("killed")
		sim.cfg.RoundHook = func(r int, _ *Service) error {
			if r == killAfter {
				return killed
			}
			return nil
		}
		if err := sim.Run(svc); !errors.Is(err, killed) {
			t.Fatalf("kill@%d: Run = %v, want the kill sentinel", killAfter, err)
		}
		// Abandon the first service the way SIGKILL would: no flush, no
		// extra checkpoint. (Close only to reap goroutines; it writes
		// nothing to disk.)
		svc.Close()

		sim2, cfg2 := openSim(t, dir, 2, rounds)
		re, err := Open(cfg2)
		if err != nil {
			t.Fatalf("kill@%d: reopen: %v", killAfter, err)
		}
		if re.Round() != killAfter+1 {
			t.Fatalf("kill@%d: resumed at round %d, want %d", killAfter, re.Round(), killAfter+1)
		}
		if err := sim2.Run(re); err != nil {
			t.Fatalf("kill@%d: resumed run: %v", killAfter, err)
		}
		got := serialized(t, re.GlobalSnapshot())
		re.Close()
		if !bytes.Equal(got, ref) {
			t.Errorf("kill@%d: resumed global snapshot differs from uninterrupted run", killAfter)
		}
	}
}

// TestIngestFingerprintMismatch: a checkpoint written under one
// configuration fingerprint refuses to resume under another.
func TestIngestFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	sim, cfg := openSim(t, dir, 1, 2)
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(svc); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	cfg2 := cfg
	cfg2.Fingerprint = "different"
	if _, err := Open(cfg2); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("Open with mismatched fingerprint = %v, want rejection", err)
	}
}

// TestIngestCorruptCheckpointDegrades: flipping bytes inside the
// checkpoint must not brick the service — damaged tenant payloads are
// dropped with warnings (their counts remain in the global aggregate),
// and only the loss of the meta section is fatal.
func TestIngestCorruptCheckpointDegrades(t *testing.T) {
	dir := t.TempDir()
	sim, cfg := openSim(t, dir, 1, 2)
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(svc); err != nil {
		t.Fatal(err)
	}
	before := svc.Stats()
	svc.Close()

	path := filepath.Join(dir, StateFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside a tenant profile section's payload; the CRC
	// catches it and the lenient reader drops that section.
	idx := bytes.Index(data, []byte("tprof-t002"))
	if idx < 0 {
		t.Fatal("checkpoint has no tprof-t002 section")
	}
	mut := append([]byte(nil), data...)
	mut[idx+40] ^= 0x20
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	var warned bool
	cfg.Warnf = func(string, ...any) { warned = true }
	re, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open over damaged checkpoint: %v", err)
	}
	defer re.Close()
	if !warned {
		t.Error("no warning for a damaged checkpoint section")
	}
	if got := re.Stats().LiveTenants; got >= before.LiveTenants {
		t.Errorf("damaged tenant not dropped: %d live tenants, had %d", got, before.LiveTenants)
	}
	if re.Round() != 2 {
		t.Errorf("damaged checkpoint lost the round counter: %d", re.Round())
	}
}

// TestIngestEvictionFileRoundTrip: saveTenantFile/loadTenantFile
// round-trip the aggregate, baseline and counters; a missing file is a
// clean miss.
func TestIngestEvictionFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sim := smallSim(t, 1, 1)
	tn := &tenant{id: "t-round", agg: nil, deltas: 7, lastActive: 3}
	svc, err := Open(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	tn.agg = svc.newTenantAgg()
	tn.agg.Add(sim.Delta(0, 0, 0))
	tn.baseline = sim.Delta(1, 0, 0)
	tn.brk = resilience.NewBreaker(svc.breakerConfig(tn.id))
	if err := saveTenantFile(dir, tn); err != nil {
		t.Fatal(err)
	}

	res, err := loadTenantFile(dir, "t-round", func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("loadTenantFile found nothing")
	}
	if res.deltas != 7 {
		t.Errorf("deltas = %d, want 7", res.deltas)
	}
	if !bytes.Equal(serialized(t, res.aggregate), serialized(t, tn.agg.Snapshot())) {
		t.Error("aggregate did not round-trip")
	}
	if !bytes.Equal(serialized(t, res.baseline), serialized(t, tn.baseline)) {
		t.Error("baseline did not round-trip")
	}

	missing, err := loadTenantFile(dir, "no-such-tenant", func(string, ...any) {})
	if err != nil || missing != nil {
		t.Errorf("missing tenant file: got (%v, %v), want (nil, nil)", missing, err)
	}
}
