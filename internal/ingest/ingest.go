// Package ingest is the multi-tenant profile-ingestion service: the
// fleet-of-fleets layer that sits above internal/fleet's single-fleet
// aggregator. Each tenant is one fleet (one customer's kernel
// population) whose reporting kernels stream profile deltas in; the
// service batches deltas per tenant, merges batches through a bounded
// worker pool into a per-tenant striped aggregator, and folds the same
// batches into a global cross-tenant aggregate — the profile a
// provider-wide PIBE policy build would train on.
//
// The determinism contract is inherited from prof.Merge: counts are
// exact uint64 sums, merging is commutative and associative, so the
// global aggregate — and its canonical serialization — is byte-
// identical for every worker count, queue schedule, batch boundary and
// tenant eviction order, as long as the same deltas arrive. Batching
// and striping change *when* counts are added, never what they sum to.
//
// Backpressure is explicit: the merge queue is bounded. By default a
// producer blocks when the queue is full (lossless, deterministic); in
// shed mode (Config.Shed) a full queue refuses the batch with a
// structured resilience fault (PhaseIngest/KindOverload) instead, the
// producer may back off and retry, and the overload counters quantify
// the resulting under-count.
//
// Tenant lifecycle: tenants are created lazily on first Submit,
// decay while idle (their aggregate is an EWMA of recent rounds, like
// a fleet epoch's), and after Config.IdleEvict idle rounds are evicted
// with a final crash-safe per-tenant checkpoint on the internal/ckpt
// container format. A later Submit for an evicted tenant resurrects it
// from that checkpoint. Eviction and decay touch only the per-tenant
// view; the global aggregate keeps every delta ever merged, which is
// what makes a resumed run's final global snapshot byte-identical to
// an uninterrupted one's.
package ingest

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/prof"
	"repro/internal/resilience"
)

// Config parameterizes the service.
type Config struct {
	// TenantShards is the lock-stripe count of each per-tenant
	// aggregator (default 4; tenants see modest concurrency).
	TenantShards int
	// GlobalShards is the lock-stripe count of the global cross-tenant
	// aggregator (default 16; every worker contends here).
	GlobalShards int
	// BatchSize is how many deltas accumulate into one pending batch
	// before it is handed to the merge queue (default 64). Partial
	// batches are flushed at EndRound, so no delta waits forever.
	BatchSize int
	// QueueDepth bounds the merge queue (default 64 batches).
	QueueDepth int
	// Workers is the merge worker pool size (default GOMAXPROCS).
	Workers int
	// Shed selects overload shedding: when the queue is full, Submit
	// fails with PhaseIngest/KindOverload instead of blocking.
	Shed bool
	// IdleDecay is the per-idle-round decay factor applied to a
	// tenant's aggregate in (0, 1]; 1 disables decay (default 0.5).
	IdleDecay float64
	// IdleEvict is how many consecutive idle rounds a tenant survives
	// before eviction; 0 disables eviction (default 4).
	IdleEvict int
	// HotBudget is the hot-set budget for per-tenant drift (default
	// 0.99): drift is prof.HotOverlap of the tenant's live aggregate
	// against its baseline (the first active round's snapshot).
	HotBudget float64
	// TripFaults is how many tenant faults (poison rejections plus
	// admission-control refusals) within one round trip the tenant's
	// circuit breaker (default 8). See internal/ingest/health.go.
	TripFaults uint64
	// OpenRounds is the base quarantine length in rounds (default 2);
	// consecutive re-trips double it up to MaxOpenRounds (default 16).
	OpenRounds    int
	MaxOpenRounds int
	// ProbeJitter adds a deterministic seeded 0..ProbeJitter extra
	// rounds to each quarantine window so tenants tripped together do
	// not re-probe in lockstep (default 1; negative disables).
	ProbeJitter int
	// Seed drives the breakers' jitter streams (per-tenant seeds are
	// derived from it and the tenant id).
	Seed int64
	// TenantRate is the per-tenant token-bucket refill: deltas admitted
	// per tenant per round (0 = unlimited). Refusals are KindOverload
	// faults and feed the tenant's breaker. Engaging the rate limiter
	// (like Shed) gives up the byte-determinism contract: which deltas
	// are refused depends on arrival order.
	TenantRate int
	// TenantBurst caps the bucket (default TenantRate).
	TenantBurst int
	// DriftFloor, when in (0, 1), marks a tenant Degraded when its
	// round drift (HotOverlap against baseline) falls below it. It
	// never trips the breaker — drift is an anomaly signal, not a
	// fault (0 disables).
	DriftFloor float64
	// MaxDeltaCount bounds every count a delta may carry (site counts,
	// invocation counts, ops); larger is poison (default 1<<40).
	MaxDeltaCount uint64
	// Universe, when non-nil, is the known site universe: a delta
	// naming a site ID outside it is poison.
	Universe *prof.Profile
	// Promote, when non-nil, arms the per-tenant canary-gated
	// promotion pipeline (the same Promoter internal/fleet runs):
	// every round, a healthy/degraded tenant's drift feeds a Promoter
	// built over NewController(tenantID).
	Promote *fleet.PromoteConfig
	// NewController supplies each tenant's rebuild hooks (used only
	// with Promote).
	NewController func(tenantID string) *fleet.Controller
	// StateDir, when non-empty, enables crash-safe checkpoints: the
	// service checkpoints after every EndRound and evicted tenants get
	// per-tenant files, all on the internal/ckpt container format.
	StateDir string
	// Fingerprint identifies the configuration that produced the
	// state: a resumed checkpoint whose recorded fingerprint differs
	// is rejected rather than silently mixing two runs' counts.
	Fingerprint string
	// Warnf receives degradation warnings (salvaged checkpoints,
	// dropped sections). Defaults to a no-op.
	Warnf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.TenantShards <= 0 {
		c.TenantShards = 4
	}
	if c.GlobalShards <= 0 {
		c.GlobalShards = 16
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.IdleDecay <= 0 || c.IdleDecay > 1 {
		c.IdleDecay = 0.5
	}
	if c.IdleEvict < 0 {
		return resilience.Faultf(resilience.PhaseIngest, resilience.KindConfig,
			"idle-evict", "negative idle-evict %d", c.IdleEvict)
	}
	if c.IdleEvict == 0 {
		c.IdleEvict = 4
	}
	if c.HotBudget <= 0 || c.HotBudget > 1 {
		c.HotBudget = 0.99
	}
	if c.TripFaults == 0 {
		c.TripFaults = 8
	}
	if c.OpenRounds <= 0 {
		c.OpenRounds = 2
	}
	if c.MaxOpenRounds <= 0 {
		c.MaxOpenRounds = 16
	}
	if c.MaxOpenRounds < c.OpenRounds {
		c.MaxOpenRounds = c.OpenRounds
	}
	if c.TenantRate < 0 {
		return resilience.Faultf(resilience.PhaseIngest, resilience.KindConfig,
			"tenant-rate", "negative tenant rate %d", c.TenantRate)
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = c.TenantRate
	}
	if c.DriftFloor < 0 || c.DriftFloor >= 1 {
		c.DriftFloor = 0
	}
	if c.MaxDeltaCount == 0 {
		c.MaxDeltaCount = 1 << 40
	}
	if c.Promote != nil && c.NewController == nil {
		return resilience.Faultf(resilience.PhaseIngest, resilience.KindConfig,
			"promote", "Promote configured without NewController")
	}
	if c.Warnf == nil {
		c.Warnf = func(string, ...any) {}
	}
	return nil
}

// tenant is one fleet's ingestion state. Its mutex guards the pending
// batch; the aggregator has its own striping.
type tenant struct {
	id string

	mu       sync.Mutex
	pending  *prof.Profile
	pendingN int

	agg *fleet.Aggregator
	// baseline is the snapshot at the end of the tenant's first active
	// round; drift is measured against it.
	baseline *prof.Profile
	// lastActive is the round index of the tenant's most recent Submit.
	lastActive int
	// deltas counts every delta the tenant ever submitted (persisted).
	deltas uint64
	// drift is the most recent EndRound's HotOverlap against baseline.
	drift float64

	// Fault-isolation state (see health.go). health and brk advance
	// only at the EndRound barrier; the round* fields are the current
	// round's fault window, consumed there.
	health Health
	brk    *resilience.Breaker
	// tokens is the admission-control bucket (unused when TenantRate
	// is 0).
	tokens int
	// All-time tallies, persisted: poison deltas rejected by
	// sanitation, deltas dropped while quarantined, deltas refused by
	// the rate limiter.
	poison, dropped, throttled uint64
	// Current round's window: submissions seen, poison among them,
	// admission refusals among them.
	roundSubmits, roundPoison, roundOverload uint64

	// Per-tenant promotion pipeline (armed by Config.Promote; lazily
	// built). promoted / promoRejected / promoFailures persist.
	promo         *fleet.Promoter
	promoted      int
	promoRejected int
	promoFailures int
}

// batch is one unit of merge work: a pre-merged group of n deltas
// belonging to one tenant.
type batch struct {
	t *tenant
	p *prof.Profile
	n int
}

// Service is the multi-tenant ingestion front. Construct with Open,
// drive with Submit/EndRound, stop with Close.
type Service struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*tenant
	ended   bool // Close was called

	// round is the index of the round currently being ingested; it
	// advances at the EndRound barrier. Atomic so the Submit hot path
	// never touches the service mutex just to stamp lastActive.
	round atomic.Int64

	global *fleet.Aggregator

	queue    chan batch
	inflight sync.WaitGroup
	workers  sync.WaitGroup

	// qmu serializes queue sends against Close's close(queue): sends
	// happen under the read lock with qclosed false, the close under
	// the write lock — so a Submit racing (or following) Close gets a
	// structured PhaseIngest/KindClosed fault instead of a panic on a
	// closed channel.
	qmu     sync.RWMutex
	qclosed bool

	met metrics

	// gate, when non-nil, is a test hook: workers receive from it
	// before touching each batch, so tests can hold the queue full and
	// provoke overload deterministically.
	gate chan struct{}
}

// Open builds a service and, when cfg.StateDir is set and holds a
// checkpoint, resumes from it: the round counter, counters, global
// aggregate and live tenants are restored, fingerprint-gated. A
// missing checkpoint is a fresh start, a damaged one degrades
// leniently (warnings via cfg.Warnf), a fingerprint mismatch is an
// error.
func Open(cfg Config) (*Service, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Service{
		cfg:     cfg,
		tenants: make(map[string]*tenant),
		global:  fleet.NewAggregator(cfg.GlobalShards, 1), // exact: never decays
		queue:   make(chan batch, cfg.QueueDepth),
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("ingest: state dir: %w", err)
		}
		if err := s.restore(); err != nil {
			return nil, err
		}
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Round returns the index of the next round to run: 0 for a fresh
// service, the checkpointed round count after a resume.
func (s *Service) Round() int {
	return int(s.round.Load())
}

// newTenantAgg builds the striped per-tenant aggregator.
func (s *Service) newTenantAgg() *fleet.Aggregator {
	return fleet.NewAggregator(s.cfg.TenantShards, s.cfg.IdleDecay)
}

// validTenantID reports whether id is usable: non-empty, and a safe
// checkpoint-section / file-name token ([A-Za-z0-9._-], no leading
// dot so eviction files cannot hide or escape).
func validTenantID(id string) bool {
	if id == "" || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// lookup returns the tenant, creating or resurrecting it if needed.
func (s *Service) lookup(id string) (*tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return nil, resilience.Faultf(resilience.PhaseIngest, resilience.KindClosed,
			id, "service closed")
	}
	if t, ok := s.tenants[id]; ok {
		return t, nil
	}
	if !validTenantID(id) {
		return nil, resilience.Faultf(resilience.PhaseIngest, resilience.KindConfig,
			id, "invalid tenant id %q: want [A-Za-z0-9._-]+ not starting with a dot", id)
	}
	t := &tenant{
		id: id, agg: s.newTenantAgg(), lastActive: s.Round(),
		brk:    resilience.NewBreaker(s.breakerConfig(id)),
		tokens: s.cfg.TenantBurst,
	}
	if s.cfg.StateDir != "" {
		res, err := loadTenantFile(s.cfg.StateDir, id, s.cfg.Warnf)
		if err != nil {
			return nil, err
		}
		if res != nil {
			t.agg.Add(res.aggregate)
			t.baseline = res.baseline
			t.deltas = res.deltas
			s.restoreIsolation(t, res.iso)
			s.met.resurrections.Add(1)
		}
	}
	s.tenants[id] = t
	return t, nil
}

// Submit ingests one profile delta for the tenant. The delta runs the
// isolation gauntlet before it can touch a batch: a quarantined
// tenant's delta is counted and dropped (KindQuarantined) before the
// two-level merge; the token bucket may refuse it (KindOverload);
// sanitation rejects a malformed delta (KindPoison). A surviving delta
// is only read, never retained: it is merged into the tenant's pending
// batch under the tenant lock (level-0 merge), and a full batch is
// handed to the bounded merge queue. With Config.Shed, a full queue
// sheds the batch and Submit returns a PhaseIngest/KindOverload fault —
// the delta counts submitted in that batch are lost and tallied in the
// shed counters; without it, Submit blocks until the queue drains.
// After Close, Submit returns a PhaseIngest/KindClosed fault.
//
// Submit is safe for concurrent use across and within tenants.
func (s *Service) Submit(tenantID string, delta *prof.Profile) error {
	if delta == nil {
		return nil
	}
	t, err := s.lookup(tenantID)
	if err != nil {
		return err
	}
	s.met.deltas.Add(1)
	poison := s.sanitize(delta) // read-only; outside all locks

	t.mu.Lock()
	t.lastActive = s.Round()
	t.deltas++
	t.roundSubmits++
	if t.health == Quarantined {
		t.dropped++
		t.mu.Unlock()
		s.met.quarantined.Add(1)
		return resilience.Faultf(resilience.PhaseIngest, resilience.KindQuarantined,
			t.id, "tenant quarantined; delta dropped")
	}
	if s.cfg.TenantRate > 0 {
		if t.tokens <= 0 {
			t.throttled++
			t.roundOverload++
			t.mu.Unlock()
			s.met.throttled.Add(1)
			return resilience.Faultf(resilience.PhaseIngest, resilience.KindOverload,
				t.id, "tenant over admission rate (%d/round); delta refused", s.cfg.TenantRate)
		}
		t.tokens--
	}
	if poison != nil {
		t.poison++
		t.roundPoison++
		t.mu.Unlock()
		s.met.poisonRejects.Add(1)
		return resilience.Fault(resilience.PhaseIngest, resilience.KindPoison, t.id, poison)
	}
	if t.pending == nil {
		t.pending = prof.New()
	}
	t.pending.Merge(delta)
	t.pendingN++
	if t.pendingN < s.cfg.BatchSize {
		t.mu.Unlock()
		return nil
	}
	b := batch{t: t, p: t.pending, n: t.pendingN}
	t.pending, t.pendingN = nil, 0
	t.mu.Unlock()
	return s.enqueue(b, s.cfg.Shed)
}

// enqueue hands a batch to the merge queue. shed selects the overload
// policy; EndRound's partial-batch flush always passes shed=false so a
// round barrier is lossless even in shed mode. The send happens under
// the queue read-lock so it can never race Close's close(queue).
func (s *Service) enqueue(b batch, shed bool) error {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.qclosed {
		s.met.closedRejects.Add(1)
		return resilience.Faultf(resilience.PhaseIngest, resilience.KindClosed,
			b.t.id, "service closed; %d-delta batch refused", b.n)
	}
	s.inflight.Add(1)
	if shed {
		select {
		case s.queue <- b:
		default:
			s.inflight.Done()
			s.met.overloads.Add(1)
			s.met.shedDeltas.Add(uint64(b.n))
			b.t.mu.Lock()
			b.t.roundOverload++
			b.t.mu.Unlock()
			return resilience.Faultf(resilience.PhaseIngest, resilience.KindOverload,
				b.t.id, "merge queue full (%d batches); %d-delta batch shed", s.cfg.QueueDepth, b.n)
		}
	} else {
		// Sample the depth before a blocking send as well as after it:
		// a producer about to block is exactly the moment the queue is
		// at its deepest, and sampling only after the send misses it
		// whenever a worker drains the queue while we wait.
		s.met.noteQueueDepth(len(s.queue))
		s.queue <- b
	}
	s.met.noteQueueDepth(len(s.queue))
	return nil
}

// worker drains the merge queue: each batch is folded into its
// tenant's aggregator and the global aggregate, and the pair of merges
// is timed into the latency histogram.
func (s *Service) worker() {
	defer s.workers.Done()
	for b := range s.queue {
		if s.gate != nil {
			<-s.gate
		}
		start := time.Now()
		b.t.agg.Add(b.p)
		s.global.Add(b.p)
		s.met.noteMerge(time.Since(start))
		s.met.batches.Add(1)
		s.inflight.Done()
	}
}

// EndRound is the round barrier. The caller must have quiesced its
// producers (no Submit may be concurrent with EndRound). It flushes
// every tenant's partial pending batch (losslessly, even in shed
// mode), waits for the merge queue to drain, then runs tenant
// lifecycle: active tenants get a fresh snapshot, a baseline if they
// had none, and a drift measurement; the per-tenant promotion pipeline
// and the health state machine advance (see health.go — this barrier
// is the only place breakers transition, which is what keeps
// quarantine windows schedule-independent); idle tenants decay, and
// tenants idle for Config.IdleEvict rounds are evicted with a final
// per-tenant checkpoint. Finally the service checkpoints itself (when
// StateDir is set) and the round counter advances.
func (s *Service) EndRound() error {
	round := s.Round()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return resilience.Faultf(resilience.PhaseIngest, resilience.KindClosed,
			"end-round", "service closed")
	}
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()

	for _, t := range ts {
		t.mu.Lock()
		if t.pendingN > 0 {
			b := batch{t: t, p: t.pending, n: t.pendingN}
			t.pending, t.pendingN = nil, 0
			t.mu.Unlock()
			if err := s.enqueue(b, false); err != nil {
				return err
			}
		} else {
			t.mu.Unlock()
		}
	}
	s.inflight.Wait()

	// Lifecycle. Snapshots double as checkpoint payloads, so each live
	// tenant is snapshotted exactly once per round. The tenant lock is
	// uncontended here (producers are quiesced) but keeps a concurrent
	// Stats reader from seeing torn drift/baseline updates.
	snaps := make(map[string]*prof.Profile, len(ts))
	for _, t := range ts {
		t.mu.Lock()
		if t.lastActive == round {
			snap := t.agg.Snapshot()
			if t.baseline == nil {
				t.baseline = snap.Clone()
			}
			t.drift = prof.HotOverlap(snap, t.baseline, s.cfg.HotBudget)
			s.promoteStep(t, snap)
			s.healthStep(t, true)
			snaps[t.id] = snap
			t.mu.Unlock()
			continue
		}
		s.healthStep(t, false)
		t.agg.Decay()
		if round-t.lastActive >= s.cfg.IdleEvict {
			// Evict: persist the final per-tenant checkpoint BEFORE
			// removing the tenant, so a crash between the two leaves a
			// resumable superset (the service checkpoint from round-1
			// still lists the tenant live; replay overwrites this file
			// at the same point).
			if s.cfg.StateDir != "" {
				if err := saveTenantFile(s.cfg.StateDir, t); err != nil {
					t.mu.Unlock()
					return err
				}
			}
			s.mu.Lock()
			delete(s.tenants, t.id)
			s.mu.Unlock()
			s.met.evictions.Add(1)
			t.mu.Unlock()
			continue
		}
		snaps[t.id] = t.agg.Snapshot()
		t.mu.Unlock()
	}

	if s.cfg.StateDir != "" {
		if err := s.checkpoint(round+1, snaps); err != nil {
			return err
		}
	}
	s.round.Store(int64(round + 1))
	return nil
}

// GlobalSnapshot returns the current global cross-tenant aggregate as
// one merged profile — the canonical, order-independent artifact whose
// serialization the crash-resume and determinism guarantees are stated
// over. Call between rounds (after EndRound) for a stable view.
func (s *Service) GlobalSnapshot() *prof.Profile {
	return s.global.Snapshot()
}

// Close flushes every pending batch, drains the queue and stops the
// workers. Submit and EndRound after Close return a structured
// PhaseIngest/KindClosed fault. Close does not checkpoint: state is
// only ever persisted at round barriers, which is what makes a SIGKILL
// and a Close look identical on disk.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return nil
	}
	s.ended = true
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	for _, t := range ts {
		t.mu.Lock()
		if t.pendingN > 0 {
			b := batch{t: t, p: t.pending, n: t.pendingN}
			t.pending, t.pendingN = nil, 0
			t.mu.Unlock()
			s.enqueue(b, false)
		} else {
			t.mu.Unlock()
		}
	}
	s.inflight.Wait()
	s.qmu.Lock()
	s.qclosed = true
	close(s.queue)
	s.qmu.Unlock()
	s.workers.Wait()
	return nil
}

// openGate arms the worker gate for tests. Must be called before any
// Submit. Each send on the returned channel releases one batch.
func (s *Service) openGate() chan struct{} {
	s.gate = make(chan struct{})
	return s.gate
}
