package ingest

// Tenant fault isolation: the bulkhead layer of the multi-tenant
// ingestion front. One misbehaving tenant — a fleet whose collectors
// ship malformed ("poison") deltas, or one that floods the service —
// must not corrupt the global aggregate or starve its neighbors. Three
// mechanisms compose here:
//
//   - Sanitation: every delta is structurally validated at Submit,
//     before it can touch a pending batch. A malformed delta is
//     rejected with PhaseIngest/KindPoison and never merges, which is
//     what makes the quarantine guarantee byte-exact rather than
//     approximate.
//
//   - A per-tenant circuit breaker (resilience.Breaker) driven at the
//     round barrier from the tenant's per-round fault tallies. The
//     breaker's state maps onto the tenant health state machine:
//
//         healthy ──faults──▶ degraded ──burst──▶ quarantined
//            ▲                                        │ open window
//            └────── clean probe round ── probation ◀─┘
//
//     While quarantined, the tenant's submissions are counted and
//     dropped before the two-level merge. Probation (breaker
//     half-open) admits the whole next active round as the probe
//     batch: a fault-free probed round heals, any fault re-trips with
//     an escalated window.
//
//   - Token-bucket admission control (Config.TenantRate/TenantBurst):
//     a tenant that exceeds its refill rate is refused with
//     KindOverload, which feeds the same breaker — sustained flooding
//     quarantines the tenant instead of degrading everyone.
//
// Every transition happens at the EndRound barrier and is computed
// from per-round fault *counts*, never from arrival order — so health,
// trips and quarantine windows are identical for every worker count
// and schedule, and they checkpoint/restore byte-identically.

import (
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/fleet"
	"repro/internal/prof"
	"repro/internal/resilience"
)

// Health is a tenant's position in the fault-isolation state machine.
type Health int

const (
	// Healthy: no faults in the last completed round.
	Healthy Health = iota
	// Degraded: the tenant faulted (poison, throttle) or drifted below
	// Config.DriftFloor in the last round, but below the trip threshold.
	// Traffic still flows.
	Degraded
	// Quarantined: the tenant's breaker is open; its submissions are
	// counted and dropped before the merge.
	Quarantined
	// Probation: the breaker is half-open; the tenant's next active
	// round is the probe batch deciding between healing and re-trip.
	Probation
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	}
	return fmt.Sprintf("Health(%d)", int(h))
}

// parseHealth inverts Health.String.
func parseHealth(s string) (Health, error) {
	switch s {
	case "healthy":
		return Healthy, nil
	case "degraded":
		return Degraded, nil
	case "quarantined":
		return Quarantined, nil
	case "probation":
		return Probation, nil
	}
	return Healthy, fmt.Errorf("unknown health state %q", s)
}

// breakerConfig derives tenant id's breaker config: shared thresholds,
// a per-tenant jitter seed (so a population tripped by one incident
// does not re-probe in lockstep), both pure functions of the service
// config and the id.
func (s *Service) breakerConfig(id string) resilience.BreakerConfig {
	h := fnv.New64a()
	io.WriteString(h, id)
	return resilience.BreakerConfig{
		TripFaults:   s.cfg.TripFaults,
		OpenSteps:    s.cfg.OpenRounds,
		MaxOpenSteps: s.cfg.MaxOpenRounds,
		JitterSteps:  s.cfg.ProbeJitter,
		Seed:         s.cfg.Seed ^ int64(h.Sum64()),
	}
}

// sanitize structurally validates a delta before it can reach a
// pending batch. It only reads the delta. A nil error means the delta
// is well-formed (an empty delta is a valid no-op); any defect is
// poison. The checks are exactly the invariants prof.Merge and the
// serialization rely on: non-empty names, non-zero bounded counts, a
// value profile that sums to its site count, and (when a site universe
// is configured) site IDs that exist in it.
func (s *Service) sanitize(delta *prof.Profile) error {
	max := s.cfg.MaxDeltaCount
	if delta.Ops > max {
		return fmt.Errorf("ops %d exceeds max delta count %d", delta.Ops, max)
	}
	for id, site := range delta.Sites {
		if site == nil {
			return fmt.Errorf("site %d: nil record", id)
		}
		if site.Caller == "" {
			return fmt.Errorf("site %d: empty caller", id)
		}
		if site.Count == 0 {
			return fmt.Errorf("site %d: zero count", id)
		}
		if site.Count > max {
			return fmt.Errorf("site %d: count %d exceeds max delta count %d", id, site.Count, max)
		}
		if s.cfg.Universe != nil {
			if _, ok := s.cfg.Universe.Sites[id]; !ok {
				return fmt.Errorf("site %d: not in the configured site universe", id)
			}
		}
		if !site.Indirect() {
			if site.Callee == "" {
				return fmt.Errorf("site %d: direct site with empty callee", id)
			}
			continue
		}
		var sum uint64
		for name, n := range site.Targets {
			if name == "" {
				return fmt.Errorf("site %d: empty target name", id)
			}
			if n == 0 {
				return fmt.Errorf("site %d: target %s with zero count", id, name)
			}
			sum += n
			if sum < n {
				return fmt.Errorf("site %d: target counts overflow", id)
			}
		}
		if sum != site.Count {
			return fmt.Errorf("site %d: target counts sum to %d, site count is %d", id, sum, site.Count)
		}
	}
	for fn, n := range delta.Invocations {
		if fn == "" {
			return fmt.Errorf("invocation with empty function name")
		}
		if n == 0 || n > max {
			return fmt.Errorf("invocation %s: count %d out of (0, %d]", fn, n, max)
		}
	}
	return nil
}

// healthStep advances tenant t's breaker and health at the round
// barrier. Called from EndRound with t.mu held and producers quiesced.
// active reports whether the tenant submitted this round (drift is
// only meaningful then). The per-round fault window is consumed and
// reset; the token bucket refills.
func (s *Service) healthStep(t *tenant, active bool) {
	faults := t.roundPoison + t.roundOverload
	t.brk.Observe(t.roundSubmits, faults)
	tripped, healed := t.brk.Advance()
	if tripped {
		s.met.trips.Add(1)
	}
	if healed {
		s.met.heals.Add(1)
	}
	switch t.brk.State() {
	case resilience.BreakerOpen:
		t.health = Quarantined
	case resilience.BreakerHalfOpen:
		t.health = Probation
	default:
		if faults > 0 || (s.cfg.DriftFloor > 0 && active && t.baseline != nil && t.drift < s.cfg.DriftFloor) {
			t.health = Degraded
		} else {
			t.health = Healthy
		}
	}
	t.roundSubmits, t.roundPoison, t.roundOverload = 0, 0, 0
	if s.cfg.TenantRate > 0 {
		t.tokens += s.cfg.TenantRate
		if t.tokens > s.cfg.TenantBurst {
			t.tokens = s.cfg.TenantBurst
		}
	}
}

// newPromoter builds tenant t's canary-gated promotion pipeline from
// the service config (the same Promoter the fleet service runs, one
// instance per tenant).
func (s *Service) newPromoter(t *tenant) *fleet.Promoter {
	var ctrl *fleet.Controller
	if s.cfg.NewController != nil {
		ctrl = s.cfg.NewController(t.id)
	}
	return fleet.NewPromoter(*s.cfg.Promote, ctrl, t.baseline)
}

// promoteStep advances tenant t's per-tenant promotion pipeline by one
// round. Called from EndRound with t.mu held, after drift is computed
// and before the fault window resets (it reads the window for the
// canary's fault-kind gate). Only tenants whose bulkhead is passing
// traffic (healthy or degraded, judged on the health entering this
// round) feed the pipeline: a quarantined tenant's snapshot is frozen
// noise and must not drive a rebuild.
func (s *Service) promoteStep(t *tenant, snap *prof.Profile) {
	if s.cfg.Promote == nil || (t.health != Healthy && t.health != Degraded) {
		return
	}
	if t.promo == nil {
		t.promo = s.newPromoter(t)
	}
	var kinds []string
	if t.roundOverload > 0 {
		kinds = append(kinds, string(resilience.KindOverload))
	}
	if t.roundPoison > 0 {
		kinds = append(kinds, string(resilience.KindPoison))
	}
	out := t.promo.Step(t.drift, snap, kinds)
	if out.Promoted {
		t.promoted++
		t.baseline = t.promo.Baseline()
		s.met.promotions.Add(1)
	}
	if out.Rejected != "" {
		t.promoRejected++
		s.met.promoRejects.Add(1)
	}
	if out.RebuildErr != "" {
		t.promoFailures++
		s.met.promoFailures.Add(1)
	}
}
