package ingest

// BENCH_ingest.json: the machine-readable ingest benchmark report.
// Throughput and latency fields describe this process's run (they are
// scheduling- and hardware-dependent by nature); the counter, tenant
// and snapshot-hash fields are deterministic and survive resume, so
// two reports from the same configuration agree on them exactly.

import (
	"encoding/json"
	"time"
)

// ShardReport is the per-stripe load summary of the global aggregator.
type ShardReport struct {
	MinSites  int    `json:"min_sites"`
	MaxSites  int    `json:"max_sites"`
	MinMerges uint64 `json:"min_merges"`
	MaxMerges uint64 `json:"max_merges"`
}

// TenantReport is one tenant's row (capped; see Report.Tenants).
type TenantReport struct {
	ID         string  `json:"id"`
	Deltas     uint64  `json:"deltas"`
	Sites      int     `json:"sites"`
	LastActive int     `json:"last_active"`
	Drift      float64 `json:"drift"`
	Health     string  `json:"health"`
	Poison     uint64  `json:"poison,omitempty"`
	Dropped    uint64  `json:"dropped,omitempty"`
	Throttled  uint64  `json:"throttled,omitempty"`
	Trips      uint64  `json:"trips,omitempty"`
}

// Report is the BENCH_ingest.json schema.
type Report struct {
	Seed             int64 `json:"seed"`
	Tenants          int   `json:"tenants"`
	KernelsPerTenant int   `json:"kernels_per_tenant"`
	// SimulatedKernels is Tenants × KernelsPerTenant — the reporting
	// population size.
	SimulatedKernels int `json:"simulated_kernels"`
	Rounds           int `json:"rounds"`
	// StartRound is where this process began (>0 after a resume).
	StartRound int `json:"start_round"`
	Workers    int `json:"workers"`
	BatchSize  int `json:"batch_size"`
	QueueDepth int `json:"queue_depth"`

	// DeltasTotal counts deltas across resumes; DeltasThisProcess only
	// this process, and is the numerator of DeltasPerSec.
	DeltasTotal       uint64  `json:"deltas_total"`
	DeltasThisProcess uint64  `json:"deltas_this_process"`
	WallSeconds       float64 `json:"wall_seconds"`
	DeltasPerSec      float64 `json:"deltas_per_sec"`

	Batches        uint64  `json:"batches"`
	MergeP50Micros float64 `json:"merge_p50_micros"`
	MergeP99Micros float64 `json:"merge_p99_micros"`
	MergeMaxMicros float64 `json:"merge_max_micros"`
	QueueHighWater int     `json:"queue_high_water"`

	Overloads  uint64 `json:"overloads"`
	ShedDeltas uint64 `json:"shed_deltas"`

	// Fault-isolation surface: sanitation rejections, quarantine
	// drops, admission refusals, breaker transitions, per-tenant
	// promotion outcomes, the shed-by-reason breakdown and the
	// health-state census at the end of the run.
	Poison            uint64            `json:"poison"`
	QuarantineDropped uint64            `json:"quarantine_dropped"`
	Throttled         uint64            `json:"throttled"`
	Trips             uint64            `json:"trips"`
	Heals             uint64            `json:"heals"`
	Promotions        uint64            `json:"promotions"`
	PromoRejects      uint64            `json:"promo_rejects"`
	ShedByReason      map[string]uint64 `json:"shed_by_reason"`
	HealthCounts      map[string]int    `json:"health_counts"`

	Evictions     uint64 `json:"evictions"`
	Resurrections uint64 `json:"resurrections"`
	LiveTenants   int    `json:"live_tenants"`

	GlobalSites  int         `json:"global_sites"`
	GlobalOps    uint64      `json:"global_ops"`
	GlobalShards ShardReport `json:"global_shards"`

	// SnapshotHash is the content hash of the final global aggregate —
	// the field the crash-resume acceptance check compares.
	SnapshotHash string `json:"snapshot_hash"`

	// Tenants is capped at 32 rows (sorted by ID) so the report stays
	// readable at fleet-of-fleets scale; TenantRowsOmitted says how
	// many were cut.
	TenantRows        []TenantReport `json:"tenant_rows"`
	TenantRowsOmitted int            `json:"tenant_rows_omitted"`
}

const maxTenantRows = 32

// BuildReport assembles the report from a finished run: the sim's
// shape, the service's Stats and the measured wall time.
func BuildReport(sim SimConfig, svc *Service, startRound int, wall time.Duration) *Report {
	st := svc.Stats()
	rep := &Report{
		Seed:              sim.Seed,
		Tenants:           sim.Tenants,
		KernelsPerTenant:  sim.Kernels,
		SimulatedKernels:  sim.Tenants * sim.Kernels,
		Rounds:            st.Round,
		StartRound:        startRound,
		Workers:           sim.Workers,
		BatchSize:         svc.cfg.BatchSize,
		QueueDepth:        svc.cfg.QueueDepth,
		DeltasTotal:       st.Deltas,
		DeltasThisProcess: st.DeltasThisProcess,
		WallSeconds:       wall.Seconds(),
		Batches:           st.Batches,
		MergeP50Micros:    float64(st.MergeP50) / float64(time.Microsecond),
		MergeP99Micros:    float64(st.MergeP99) / float64(time.Microsecond),
		MergeMaxMicros:    float64(st.MergeMax) / float64(time.Microsecond),
		QueueHighWater:    st.QueueHighWater,
		Overloads:         st.Overloads,
		ShedDeltas:        st.ShedDeltas,
		Poison:            st.Poison,
		QuarantineDropped: st.QuarantineDropped,
		Throttled:         st.Throttled,
		Trips:             st.Trips,
		Heals:             st.Heals,
		Promotions:        st.Promotions,
		PromoRejects:      st.PromoRejects,
		ShedByReason:      st.ShedByReason,
		HealthCounts:      st.Health,
		Evictions:         st.Evictions,
		Resurrections:     st.Resurrections,
		LiveTenants:       st.LiveTenants,
		GlobalSites:       st.GlobalSites,
		GlobalOps:         st.GlobalOps,
		SnapshotHash:      svc.GlobalSnapshot().Hash(),
	}
	if wall > 0 {
		rep.DeltasPerSec = float64(st.DeltasThisProcess) / wall.Seconds()
	}
	for i, sh := range st.GlobalShards {
		if i == 0 {
			rep.GlobalShards = ShardReport{MinSites: sh.Sites, MaxSites: sh.Sites,
				MinMerges: sh.Merges, MaxMerges: sh.Merges}
			continue
		}
		if sh.Sites < rep.GlobalShards.MinSites {
			rep.GlobalShards.MinSites = sh.Sites
		}
		if sh.Sites > rep.GlobalShards.MaxSites {
			rep.GlobalShards.MaxSites = sh.Sites
		}
		if sh.Merges < rep.GlobalShards.MinMerges {
			rep.GlobalShards.MinMerges = sh.Merges
		}
		if sh.Merges > rep.GlobalShards.MaxMerges {
			rep.GlobalShards.MaxMerges = sh.Merges
		}
	}
	rows := st.Tenants
	if len(rows) > maxTenantRows {
		rep.TenantRowsOmitted = len(rows) - maxTenantRows
		rows = rows[:maxTenantRows]
	}
	for _, t := range rows {
		rep.TenantRows = append(rep.TenantRows, TenantReport{
			ID: t.ID, Deltas: t.Deltas, Sites: t.Sites,
			LastActive: t.LastActive, Drift: t.Drift,
			Health: t.Health, Poison: t.Poison, Dropped: t.Dropped,
			Throttled: t.Throttled, Trips: t.Trips,
		})
	}
	return rep
}

// WriteJSON renders the report with stable indentation.
func (r *Report) WriteJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
