package ingest

// Crash-safe ingestion state on the shared internal/ckpt container
// format. Two kinds of file live in Config.StateDir:
//
//   - StateFile ("ingest-checkpoint"): the service checkpoint, written
//     atomically at every EndRound barrier. One "meta" section (round,
//     fingerprint, the deterministic counters), one "global" section
//     (the global aggregate's canonical serialization) and, per live
//     tenant, a "tmeta-<id>" key/value section plus "tprof-<id>"
//     (aggregate snapshot) and optionally "tbase-<id>" (baseline).
//
//   - "tenant-<id>.ckpt": an evicted tenant's final state (meta,
//     aggregate, baseline), written atomically just before the tenant
//     leaves the resident map. A later Submit for the tenant
//     resurrects from it.
//
// Crash ordering: the tenant file is written before the tenant is
// dropped and before the round's service checkpoint. A SIGKILL
// in-between leaves the previous service checkpoint (which still
// lists the tenant live) plus a newer tenant file; the resumed run
// replays the round and overwrites the tenant file at the same
// barrier, so the state converges to exactly what an uninterrupted
// run writes. State is only ever persisted at round barriers — a
// mid-round kill loses only the round in flight, which the driver
// replays deterministically.
//
// Loading is lenient the way the fleet checkpoint is: a section whose
// frame or CRC is damaged is dropped; a tenant whose sections are
// incomplete or whose profile hash disagrees with the recorded one is
// dropped with a warning (its counts are still in the global
// aggregate; only its per-tenant view resets); a damaged global
// section degrades to an empty global aggregate with a warning. Only
// a missing meta section, or a fingerprint mismatch, is fatal.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/prof"
	"repro/internal/resilience"
)

// StateFile is the service checkpoint file name inside Config.StateDir.
const StateFile = "ingest-checkpoint"

// tenantFile returns the eviction-checkpoint path for one tenant.
// Tenant IDs are pre-validated to [A-Za-z0-9._-]+ without a leading
// dot, so the name cannot escape dir.
func tenantFile(dir, id string) string {
	return filepath.Join(dir, "tenant-"+id+".ckpt")
}

func profileSection(name string, p *prof.Profile) ckpt.Section {
	var buf bytes.Buffer
	p.WriteTo(&buf)
	return ckpt.Section{Name: name, Data: buf.Bytes()}
}

func parseProfile(data []byte) (*prof.Profile, error) {
	return prof.Read(bytes.NewReader(data))
}

// parseKV decodes a "key value\n" section the way the fleet state
// reader does.
func parseKV(data []byte) map[string]string {
	out := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		out[key] = rest
	}
	return out
}

// writeIsolation appends a tenant's fault-isolation state (health,
// breaker, admission tokens, isolation tallies, promotion backoff) as
// kv lines. Caller holds t.mu or has producers quiesced. Taking the
// breaker snapshot here is safe: checkpoints only happen at round
// barriers, where the observation window is empty by construction.
func writeIsolation(w *bytes.Buffer, t *tenant) {
	fmt.Fprintf(w, "health %s\n", t.health)
	fmt.Fprintf(w, "tokens %d\n", t.tokens)
	fmt.Fprintf(w, "poison %d\n", t.poison)
	fmt.Fprintf(w, "dropped %d\n", t.dropped)
	fmt.Fprintf(w, "throttled %d\n", t.throttled)
	snap := t.brk.Snap()
	fmt.Fprintf(w, "brk-state %s\n", snap.State)
	fmt.Fprintf(w, "brk-open-left %d\n", snap.OpenLeft)
	fmt.Fprintf(w, "brk-strikes %d\n", snap.Strikes)
	fmt.Fprintf(w, "brk-trips %d\n", snap.Trips)
	fmt.Fprintf(w, "brk-heals %d\n", snap.Heals)
	if t.promo != nil {
		strikes, cooldown := t.promo.Backoff()
		fmt.Fprintf(w, "promo-strikes %d\n", strikes)
		fmt.Fprintf(w, "promo-cooldown %d\n", cooldown)
	}
	fmt.Fprintf(w, "promoted %d\n", t.promoted)
	fmt.Fprintf(w, "promo-rejected %d\n", t.promoRejected)
	fmt.Fprintf(w, "promo-failures %d\n", t.promoFailures)
}

// isolationState is the parsed form of writeIsolation's kv lines.
type isolationState struct {
	health                     string
	tokens                     int
	poison, dropped, throttled uint64
	brk                        resilience.BreakerSnap

	promoStrikes, promoCooldown            int
	promoted, promoRejected, promoFailures int
}

// parseIsolation recovers isolation state from a tenant kv section.
// A section with no "health" key predates the isolation layer (or lost
// the lines to corruption) and yields nil — the tenant resumes with a
// fresh, closed bulkhead.
func parseIsolation(kv map[string]string) *isolationState {
	if _, ok := kv["health"]; !ok {
		return nil
	}
	iso := &isolationState{health: kv["health"]}
	iso.tokens, _ = strconv.Atoi(kv["tokens"])
	iso.poison, _ = strconv.ParseUint(kv["poison"], 10, 64)
	iso.dropped, _ = strconv.ParseUint(kv["dropped"], 10, 64)
	iso.throttled, _ = strconv.ParseUint(kv["throttled"], 10, 64)
	iso.brk.State = kv["brk-state"]
	iso.brk.OpenLeft, _ = strconv.Atoi(kv["brk-open-left"])
	iso.brk.Strikes, _ = strconv.Atoi(kv["brk-strikes"])
	iso.brk.Trips, _ = strconv.ParseUint(kv["brk-trips"], 10, 64)
	iso.brk.Heals, _ = strconv.ParseUint(kv["brk-heals"], 10, 64)
	iso.promoStrikes, _ = strconv.Atoi(kv["promo-strikes"])
	iso.promoCooldown, _ = strconv.Atoi(kv["promo-cooldown"])
	iso.promoted, _ = strconv.Atoi(kv["promoted"])
	iso.promoRejected, _ = strconv.Atoi(kv["promo-rejected"])
	iso.promoFailures, _ = strconv.Atoi(kv["promo-failures"])
	return iso
}

// restoreIsolation applies parsed isolation state to a freshly built
// tenant (which already has a closed breaker and a full token bucket).
// Lenient: a breaker or health state that does not parse degrades to
// the fresh bulkhead with a warning rather than failing the resume.
func (s *Service) restoreIsolation(t *tenant, iso *isolationState) {
	if iso == nil {
		return
	}
	t.poison, t.dropped, t.throttled = iso.poison, iso.dropped, iso.throttled
	t.promoted, t.promoRejected, t.promoFailures = iso.promoted, iso.promoRejected, iso.promoFailures
	if s.cfg.TenantRate > 0 {
		t.tokens = iso.tokens
		if t.tokens < 0 {
			t.tokens = 0
		}
		if t.tokens > s.cfg.TenantBurst {
			t.tokens = s.cfg.TenantBurst
		}
	}
	health, herr := parseHealth(iso.health)
	brk, berr := resilience.RestoreBreaker(s.breakerConfig(t.id), iso.brk)
	if herr != nil || berr != nil {
		s.cfg.Warnf("ingest: warning: tenant %s isolation state unusable (%v, %v); resuming with a fresh bulkhead",
			t.id, herr, berr)
		return
	}
	t.health = health
	t.brk = brk
	if s.cfg.Promote != nil && (iso.promoStrikes > 0 || iso.promoCooldown > 0) {
		t.promo = s.newPromoter(t)
		t.promo.RestoreBackoff(iso.promoStrikes, iso.promoCooldown)
	}
}

// saveTenantFile writes a tenant's eviction checkpoint atomically.
// Called from EndRound with producers quiesced, so the tenant's fields
// are stable.
func saveTenantFile(dir string, t *tenant) error {
	agg := t.agg.Snapshot()
	var meta bytes.Buffer
	fmt.Fprintf(&meta, "deltas %d\n", t.deltas)
	fmt.Fprintf(&meta, "last-active %d\n", t.lastActive)
	fmt.Fprintf(&meta, "agg-hash %s\n", agg.Hash())
	writeIsolation(&meta, t)
	secs := []ckpt.Section{
		{Name: "meta", Data: nil},
		profileSection("aggregate", agg),
	}
	if t.baseline != nil {
		fmt.Fprintf(&meta, "base-hash %s\n", t.baseline.Hash())
		secs = append(secs, profileSection("baseline", t.baseline))
	}
	secs[0].Data = meta.Bytes()
	if err := ckpt.SaveAtomic(tenantFile(dir, t.id), secs); err != nil {
		return fmt.Errorf("ingest: evict %s: %w", t.id, err)
	}
	return nil
}

// restoredTenant is what loadTenantFile recovers.
type restoredTenant struct {
	aggregate *prof.Profile
	baseline  *prof.Profile
	deltas    uint64
	iso       *isolationState
}

// loadTenantFile reads a tenant's eviction checkpoint leniently. A
// missing file returns (nil, nil): the tenant is genuinely new. A
// damaged file degrades to whatever survived — at minimum a fresh
// tenant — with warnings; it never fails the Submit that triggered
// the resurrection.
func loadTenantFile(dir, id string, warnf func(string, ...any)) (*restoredTenant, error) {
	path := tenantFile(dir, id)
	secs, sal, err := ckpt.Load(path)
	if err != nil {
		return nil, resilience.Fault(resilience.PhaseIngest, resilience.KindCorrupt, id,
			fmt.Errorf("load tenant checkpoint %s: %w", path, err))
	}
	if secs == nil && sal == nil {
		return nil, nil
	}
	if sal != nil && !sal.Clean() {
		warnf("ingest: warning: tenant checkpoint %s damaged; salvaging (%s)", path, sal)
	}
	byName := make(map[string][]byte, len(secs))
	for _, s := range secs {
		byName[s.Name] = s.Data
	}
	res := &restoredTenant{aggregate: prof.New()}
	kv := parseKV(byName["meta"])
	if v, ok := kv["deltas"]; ok {
		res.deltas, _ = strconv.ParseUint(v, 10, 64)
	}
	res.iso = parseIsolation(kv)
	if data, ok := byName["aggregate"]; ok {
		p, err := parseProfile(data)
		if err != nil {
			warnf("ingest: warning: tenant %s aggregate unparseable, resurrecting empty: %v", id, err)
		} else if want := kv["agg-hash"]; want != "" && p.Hash() != want {
			warnf("ingest: warning: tenant %s aggregate hash %s != recorded %s, resurrecting empty", id, p.Hash(), want)
		} else {
			res.aggregate = p
		}
	}
	if data, ok := byName["baseline"]; ok {
		p, err := parseProfile(data)
		if err != nil {
			warnf("ingest: warning: tenant %s baseline unparseable, dropping: %v", id, err)
		} else if want := kv["base-hash"]; want != "" && p.Hash() != want {
			warnf("ingest: warning: tenant %s baseline hash mismatch, dropping", id)
		} else {
			res.baseline = p
		}
	}
	return res, nil
}

// checkpoint writes the service checkpoint for `round` completed
// rounds. snaps holds the per-tenant aggregate snapshots EndRound
// already took; tenants are serialized in sorted ID order so the file
// bytes are deterministic.
func (s *Service) checkpoint(round int, snaps map[string]*prof.Profile) error {
	var meta bytes.Buffer
	fmt.Fprintf(&meta, "round %d\n", round)
	if s.cfg.Fingerprint != "" {
		fmt.Fprintf(&meta, "fingerprint %s\n", s.cfg.Fingerprint)
	}
	fmt.Fprintf(&meta, "deltas %d\n", s.met.prev.deltas+s.met.deltas.Load())
	fmt.Fprintf(&meta, "batches %d\n", s.met.prev.batches+s.met.batches.Load())
	fmt.Fprintf(&meta, "overloads %d\n", s.met.prev.overloads+s.met.overloads.Load())
	fmt.Fprintf(&meta, "shed-deltas %d\n", s.met.prev.shedDeltas+s.met.shedDeltas.Load())
	fmt.Fprintf(&meta, "evictions %d\n", s.met.prev.evictions+s.met.evictions.Load())
	fmt.Fprintf(&meta, "resurrections %d\n", s.met.prev.resurrections+s.met.resurrections.Load())
	fmt.Fprintf(&meta, "poison %d\n", s.met.prev.poisonRejects+s.met.poisonRejects.Load())
	fmt.Fprintf(&meta, "quarantine-dropped %d\n", s.met.prev.quarantined+s.met.quarantined.Load())
	fmt.Fprintf(&meta, "throttled %d\n", s.met.prev.throttled+s.met.throttled.Load())
	fmt.Fprintf(&meta, "trips %d\n", s.met.prev.trips+s.met.trips.Load())
	fmt.Fprintf(&meta, "heals %d\n", s.met.prev.heals+s.met.heals.Load())
	fmt.Fprintf(&meta, "promotions %d\n", s.met.prev.promotions+s.met.promotions.Load())
	fmt.Fprintf(&meta, "promo-rejects %d\n", s.met.prev.promoRejects+s.met.promoRejects.Load())
	fmt.Fprintf(&meta, "promo-failures %d\n", s.met.prev.promoFailures+s.met.promoFailures.Load())

	global := s.global.Snapshot()
	fmt.Fprintf(&meta, "global-hash %s\n", global.Hash())
	secs := []ckpt.Section{
		{Name: "meta", Data: meta.Bytes()},
		profileSection("global", global),
	}

	s.mu.Lock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	ts := make(map[string]*tenant, len(s.tenants))
	for id, t := range s.tenants {
		ts[id] = t
	}
	s.mu.Unlock()
	sort.Strings(ids)

	for _, id := range ids {
		t := ts[id]
		snap := snaps[id]
		if snap == nil {
			snap = t.agg.Snapshot()
		}
		var tm bytes.Buffer
		fmt.Fprintf(&tm, "deltas %d\n", t.deltas)
		fmt.Fprintf(&tm, "last-active %d\n", t.lastActive)
		fmt.Fprintf(&tm, "drift %s\n", strconv.FormatFloat(t.drift, 'g', -1, 64))
		fmt.Fprintf(&tm, "agg-hash %s\n", snap.Hash())
		writeIsolation(&tm, t)
		if t.baseline != nil {
			fmt.Fprintf(&tm, "base-hash %s\n", t.baseline.Hash())
		}
		secs = append(secs,
			ckpt.Section{Name: "tmeta-" + id, Data: tm.Bytes()},
			profileSection("tprof-"+id, snap))
		if t.baseline != nil {
			secs = append(secs, profileSection("tbase-"+id, t.baseline))
		}
	}

	if err := ckpt.SaveAtomic(filepath.Join(s.cfg.StateDir, StateFile), secs); err != nil {
		return fmt.Errorf("ingest: checkpoint: %w", err)
	}
	return nil
}

// restore loads the service checkpoint from cfg.StateDir into a
// freshly built Service, called once from Open before the workers
// start. A missing file is a fresh start; a fingerprint mismatch is
// fatal; anything else degrades with warnings.
func (s *Service) restore() error {
	path := filepath.Join(s.cfg.StateDir, StateFile)
	secs, sal, err := ckpt.Load(path)
	if err != nil {
		return fmt.Errorf("ingest: load checkpoint %s: %w", path, err)
	}
	if secs == nil && sal == nil {
		return nil
	}
	if sal != nil && !sal.Clean() {
		s.cfg.Warnf("ingest: warning: checkpoint %s damaged; salvaging (%s)", path, sal)
	}
	byName := make(map[string][]byte, len(secs))
	for _, sec := range secs {
		byName[sec.Name] = sec.Data
	}
	metaData, ok := byName["meta"]
	if !ok {
		return fmt.Errorf("ingest: checkpoint %s unusable: meta section lost (%s)", path, sal)
	}
	kv := parseKV(metaData)
	if got := kv["fingerprint"]; got != s.cfg.Fingerprint {
		return fmt.Errorf("ingest: checkpoint %s was written by a different configuration (its fingerprint %q, this run's %q); delete %s or rerun with the original flags",
			path, got, s.cfg.Fingerprint, s.cfg.StateDir)
	}
	round, err := strconv.Atoi(kv["round"])
	if err != nil || round < 0 {
		return fmt.Errorf("ingest: checkpoint %s unusable: bad round %q", path, kv["round"])
	}
	s.round.Store(int64(round))
	parseCounter := func(key string, dst *uint64) {
		if v, ok := kv[key]; ok {
			*dst, _ = strconv.ParseUint(v, 10, 64)
		}
	}
	parseCounter("deltas", &s.met.prev.deltas)
	parseCounter("batches", &s.met.prev.batches)
	parseCounter("overloads", &s.met.prev.overloads)
	parseCounter("shed-deltas", &s.met.prev.shedDeltas)
	parseCounter("evictions", &s.met.prev.evictions)
	parseCounter("resurrections", &s.met.prev.resurrections)
	parseCounter("poison", &s.met.prev.poisonRejects)
	parseCounter("quarantine-dropped", &s.met.prev.quarantined)
	parseCounter("throttled", &s.met.prev.throttled)
	parseCounter("trips", &s.met.prev.trips)
	parseCounter("heals", &s.met.prev.heals)
	parseCounter("promotions", &s.met.prev.promotions)
	parseCounter("promo-rejects", &s.met.prev.promoRejects)
	parseCounter("promo-failures", &s.met.prev.promoFailures)

	if data, ok := byName["global"]; ok {
		p, err := parseProfile(data)
		switch {
		case err != nil:
			s.cfg.Warnf("ingest: warning: global aggregate unparseable, restarting empty: %v", err)
		case kv["global-hash"] != "" && p.Hash() != kv["global-hash"]:
			s.cfg.Warnf("ingest: warning: global aggregate hash %s != recorded %s, restarting empty", p.Hash(), kv["global-hash"])
		default:
			s.global.Add(p)
		}
	} else {
		s.cfg.Warnf("ingest: warning: checkpoint %s lost its global section; restarting the global aggregate empty", path)
	}

	for _, sec := range secs {
		id, ok := strings.CutPrefix(sec.Name, "tmeta-")
		if !ok {
			continue
		}
		if !validTenantID(id) {
			s.cfg.Warnf("ingest: warning: dropping checkpointed tenant with invalid id %q", id)
			continue
		}
		tkv := parseKV(sec.Data)
		profData, ok := byName["tprof-"+id]
		if !ok {
			s.cfg.Warnf("ingest: warning: tenant %s lost its aggregate section; dropping (its counts remain in the global aggregate)", id)
			continue
		}
		agg, err := parseProfile(profData)
		if err != nil {
			s.cfg.Warnf("ingest: warning: tenant %s aggregate unparseable; dropping: %v", id, err)
			continue
		}
		if want := tkv["agg-hash"]; want != "" && agg.Hash() != want {
			s.cfg.Warnf("ingest: warning: tenant %s aggregate hash %s != recorded %s; dropping", id, agg.Hash(), want)
			continue
		}
		t := &tenant{
			id: id, agg: s.newTenantAgg(),
			brk:    resilience.NewBreaker(s.breakerConfig(id)),
			tokens: s.cfg.TenantBurst,
		}
		t.agg.Add(agg)
		t.deltas, _ = strconv.ParseUint(tkv["deltas"], 10, 64)
		t.lastActive, _ = strconv.Atoi(tkv["last-active"])
		t.drift, _ = strconv.ParseFloat(tkv["drift"], 64)
		if baseData, ok := byName["tbase-"+id]; ok {
			base, err := parseProfile(baseData)
			if err != nil {
				s.cfg.Warnf("ingest: warning: tenant %s baseline unparseable; dropping baseline: %v", id, err)
			} else if want := tkv["base-hash"]; want != "" && base.Hash() != want {
				s.cfg.Warnf("ingest: warning: tenant %s baseline hash mismatch; dropping baseline", id)
			} else {
				t.baseline = base
			}
		}
		s.restoreIsolation(t, parseIsolation(tkv))
		s.tenants[id] = t
	}
	return nil
}
