package ingest

// The ingest simulator: a deterministic population of reporting
// kernels driving the service. Every tenant is one simulated fleet,
// every kernel of that fleet submits one profile delta per round, and
// the delta is a pure function of (seed, tenant, kernel, round) — so
// the fan-out can run on any worker count through the deterministic
// parallel measurement driver (workload.RunCells) and the service's
// final global aggregate is byte-identical regardless of scheduling.
//
// The simulated workload has structure the service's observability
// can see: each tenant draws sites from its base profile (a real
// profiling run of one workload flavor) inside a hot window that
// rotates with the round index, so per-tenant drift is visible; every
// fourth tenant reports only intermittently, exercising idle decay,
// eviction and resurrection.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/ir"
	"repro/internal/prof"
	"repro/internal/resilience"
	"repro/internal/workload"
)

// Base is one tenant-population archetype: a named base profile whose
// sites the tenant's kernels report against. Tenant t uses
// Bases[t % len(Bases)].
type Base struct {
	Name string
	Prof *prof.Profile
}

// SimConfig parameterizes the simulator.
type SimConfig struct {
	// Tenants is the fleet count; Kernels the reporting kernels per
	// tenant. Tenants × Kernels is the simulated kernel population.
	Tenants, Kernels int
	// Rounds is how many reporting rounds to run.
	Rounds int
	// Workers is the submission fan-out width (default GOMAXPROCS via
	// workload.RunCells semantics; it never affects the result).
	Workers int
	// SitesPerDelta is how many site records one delta carries
	// (default 12 — a kernel reports its recent hot sites, not its
	// whole profile).
	SitesPerDelta int
	// Seed drives every random choice, via per-(tenant, kernel, round)
	// derived generators.
	Seed int64
	// Bases are the tenant archetypes; at least one is required.
	Bases []Base
	// Poison, when non-nil, adds one extra tenant (PoisonTenantID)
	// whose kernels report structurally malformed deltas — the chaos
	// input the fault-isolation layer exists for.
	Poison *PoisonConfig
	// RoundHook, when non-nil, runs after each completed round (and
	// its EndRound barrier). Returning an error stops the run — the
	// CLI uses it for per-round progress, tests for mid-run kills.
	RoundHook func(round int, svc *Service) error
}

// PoisonTenantID names the simulated poison tenant.
const PoisonTenantID = "poison"

// PoisonConfig shapes the poison tenant.
type PoisonConfig struct {
	// Kernels is how many malformed deltas the poison tenant submits
	// per round (default 16 — comfortably past the default trip
	// threshold, so the breaker engages within one round).
	Kernels int
	// FromRound is the first round the poison tenant reports in.
	FromRound int
}

// simSite is one precomputed base-profile site, in deterministic
// (ID-sorted) order with ID-stable target lists.
type simSite struct {
	id       ir.SiteID
	caller   string
	callee   string
	targets  []string
	indirect bool
}

// Sim is a constructed simulator.
type Sim struct {
	cfg   SimConfig
	sites [][]simSite // per base, sorted by site ID
}

// NewSim validates the config and precomputes the per-base site lists.
func NewSim(cfg SimConfig) (*Sim, error) {
	if cfg.Tenants <= 0 || cfg.Kernels <= 0 || cfg.Rounds <= 0 {
		return nil, resilience.Faultf(resilience.PhaseIngest, resilience.KindConfig, "sim",
			"tenants (%d), kernels (%d) and rounds (%d) must all be positive",
			cfg.Tenants, cfg.Kernels, cfg.Rounds)
	}
	if len(cfg.Bases) == 0 {
		return nil, resilience.Faultf(resilience.PhaseIngest, resilience.KindConfig, "sim",
			"at least one base profile is required")
	}
	if cfg.SitesPerDelta <= 0 {
		cfg.SitesPerDelta = 12
	}
	if cfg.Poison != nil {
		p := *cfg.Poison
		if p.Kernels <= 0 {
			p.Kernels = 16
		}
		if p.FromRound < 0 {
			p.FromRound = 0
		}
		cfg.Poison = &p
	}
	s := &Sim{cfg: cfg}
	for _, b := range cfg.Bases {
		if b.Prof == nil || len(b.Prof.Sites) == 0 {
			return nil, resilience.Faultf(resilience.PhaseIngest, resilience.KindConfig, b.Name,
				"base profile %q is empty", b.Name)
		}
		sites := make([]simSite, 0, len(b.Prof.Sites))
		for id, site := range b.Prof.Sites {
			ss := simSite{id: id, caller: site.Caller, callee: site.Callee, indirect: site.Indirect()}
			if ss.indirect {
				for _, t := range site.SortedTargets() {
					ss.targets = append(ss.targets, t.Name)
				}
			}
			sites = append(sites, ss)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i].id < sites[j].id })
		s.sites = append(s.sites, sites)
	}
	return s, nil
}

// TenantID names tenant t.
func (s *Sim) TenantID(t int) string { return fmt.Sprintf("t%03d", t) }

// Active reports whether tenant t reports in round r: every fourth
// tenant is intermittent (two rounds on, two rounds off), the rest
// always report.
func (s *Sim) Active(t, r int) bool {
	return t%4 != 3 || (r/2)%2 == 0
}

// deltaRNG is a splitmix64 stream seeded from (seed, t, k, r) — the
// same derived-seed discipline the measurement cells use, so a delta
// depends only on its coordinates, never on scheduling.
type deltaRNG uint64

func newDeltaRNG(seed int64, t, k, r int) deltaRNG {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{uint64(seed), uint64(t), uint64(k), uint64(r)} {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return deltaRNG(h.Sum64())
}

func (g *deltaRNG) next() uint64 {
	*g += 0x9e3779b97f4a7c15
	z := uint64(*g)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Delta builds the profile delta kernel k of tenant t reports in
// round r: SitesPerDelta samples drawn from a hot window of the
// tenant's base-profile site list. The window rotates with the round
// (one eighth of the list per round), so consecutive rounds overlap
// but the hot set visibly drifts — which is what the per-tenant drift
// metric exists to observe.
func (s *Sim) Delta(t, k, r int) *prof.Profile {
	rng := newDeltaRNG(s.cfg.Seed, t, k, r)
	sites := s.sites[t%len(s.sites)]
	n := len(sites)
	win := n / 4
	if win < 1 {
		win = 1
	}
	start := (r * n / 8) % n
	p := prof.New()
	for i := 0; i < s.cfg.SitesPerDelta; i++ {
		site := sites[(start+int(rng.next()%uint64(win)))%n]
		count := 1 + rng.next()%256
		if site.indirect {
			target := site.targets[int(rng.next()%uint64(len(site.targets)))]
			p.AddIndirect(site.id, site.caller, target, count)
		} else {
			p.AddDirect(site.id, site.caller, site.callee, count)
		}
		p.AddInvocation(site.caller, 1)
	}
	p.Ops = 1 // one reporting operation per delta
	return p
}

// PoisonDelta builds the malformed delta kernel k of the poison
// tenant reports in round r: an indirect site whose value profile
// does not sum to its site count — exactly the inconsistency
// sanitation exists to catch, and malformed under any Universe. Like
// Delta it is a pure function of its coordinates.
func (s *Sim) PoisonDelta(k, r int) *prof.Profile {
	rng := newDeltaRNG(s.cfg.Seed, 1<<20, k, r)
	p := prof.New()
	id := ir.SiteID(1<<28 | int32(rng.next()%1024))
	p.AddIndirect(id, "poison_caller", "poison_target", 3)
	p.Sites[id].Count = 7
	return p
}

// tolerable reports whether a Submit error is one the simulation
// absorbs without stopping the round: queue/rate shedding, sanitation
// rejections and quarantine drops are all counted by the service and
// are the behavior under test, not a failure of the run.
func tolerable(err error) bool {
	return resilience.IsKind(err, resilience.KindOverload) ||
		resilience.IsKind(err, resilience.KindPoison) ||
		resilience.IsKind(err, resilience.KindQuarantined)
}

// Run drives the service from its current round (0 fresh, the
// checkpointed round after a resume) to cfg.Rounds: each round fans
// the active tenants' kernels out over workload.RunCells, submits the
// poison tenant's malformed deltas (when configured), then runs the
// EndRound barrier. Overload, poison and quarantine faults are counted
// by the service and do not stop the run; any other Submit error does.
// Run is idempotent once the rounds are complete.
func (s *Sim) Run(svc *Service) error {
	for r := svc.Round(); r < s.cfg.Rounds; r++ {
		var active []int
		for t := 0; t < s.cfg.Tenants; t++ {
			if s.Active(t, r) {
				active = append(active, t)
			}
		}
		round := r
		err := workload.RunCells(len(active)*s.cfg.Kernels, s.cfg.Workers, func(i int) error {
			t := active[i/s.cfg.Kernels]
			k := i % s.cfg.Kernels
			err := svc.Submit(s.TenantID(t), s.Delta(t, k, round))
			if tolerable(err) {
				return nil
			}
			return err
		})
		if err != nil {
			return err
		}
		if p := s.cfg.Poison; p != nil && round >= p.FromRound {
			for k := 0; k < p.Kernels; k++ {
				if err := svc.Submit(PoisonTenantID, s.PoisonDelta(k, round)); err != nil && !tolerable(err) {
					return err
				}
			}
		}
		if err := svc.EndRound(); err != nil {
			return err
		}
		if s.cfg.RoundHook != nil {
			if err := s.cfg.RoundHook(round, svc); err != nil {
				return err
			}
		}
	}
	return nil
}

// FlatMerge enumerates every delta of every round and merges them into
// one profile serially — the reference the service's global aggregate
// must equal byte-for-byte in lossless (non-shed) mode, whatever the
// worker count, batch boundaries or tenant lifecycle did.
func (s *Sim) FlatMerge() *prof.Profile {
	out := prof.New()
	for r := 0; r < s.cfg.Rounds; r++ {
		for t := 0; t < s.cfg.Tenants; t++ {
			if !s.Active(t, r) {
				continue
			}
			for k := 0; k < s.cfg.Kernels; k++ {
				out.Merge(s.Delta(t, k, r))
			}
		}
	}
	return out
}

// Fingerprint identifies the (sim, service) configuration for the
// checkpoint's resume gate. It covers everything that changes what
// the deltas or the lifecycle *are* — and deliberately excludes what
// only changes scheduling (workers, queue depth, stripe counts), so a
// resume on a differently-parallel box is allowed and still
// byte-identical.
func (s *Sim) Fingerprint(svc Config) string {
	svc.fill() // hash the effective knobs, not zero-valued defaults
	h := fnv.New64a()
	fmt.Fprintf(h, "seed %d\ntenants %d\nkernels %d\nrounds %d\nsites-per-delta %d\n",
		s.cfg.Seed, s.cfg.Tenants, s.cfg.Kernels, s.cfg.Rounds, s.cfg.SitesPerDelta)
	for _, b := range s.cfg.Bases {
		fmt.Fprintf(h, "base %s\n", b.Name)
	}
	fmt.Fprintf(h, "batch %d\nshed %t\nidle-decay %g\nidle-evict %d\nhot-budget %g\n",
		svc.BatchSize, svc.Shed, svc.IdleDecay, svc.IdleEvict, svc.HotBudget)
	fmt.Fprintf(h, "trip %d\nopen %d\nmax-open %d\njitter %d\nbrk-seed %d\n",
		svc.TripFaults, svc.OpenRounds, svc.MaxOpenRounds, svc.ProbeJitter, svc.Seed)
	fmt.Fprintf(h, "rate %d\nburst %d\ndrift-floor %g\nmax-delta %d\nuniverse %t\n",
		svc.TenantRate, svc.TenantBurst, svc.DriftFloor, svc.MaxDeltaCount, svc.Universe != nil)
	if p := s.cfg.Poison; p != nil {
		fmt.Fprintf(h, "poison %d from %d\n", p.Kernels, p.FromRound)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
