// Package icp implements PIBE's indirect call promotion (§5.3): using the
// value profile of an indirect call site, the hottest targets are
// rewritten into a chain of compare-and-direct-call tests with the
// original indirect call left as the fallback.
//
// Two properties distinguish PIBE's algorithm from classic ICP:
//
//   - promotion candidates are (site, target) pairs selected globally,
//     hottest first, under an optimization budget over the cumulative
//     indirect-branch execution count; and
//   - the number of promoted targets per site is unbounded, because a
//     compare (~2 cycles) is far cheaper than the retpoline (~21 cycles)
//     the fallback must execute under hardening.
package icp

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/prof"
)

// Options configures promotion.
type Options struct {
	// Budget is the fraction of cumulative indirect-call execution count
	// to promote, e.g. 0.99999 for the paper's "99.999%".
	Budget float64
	// MaxTargetsPerSite caps promoted targets per call site; zero means
	// unbounded (PIBE's choice). Classic top-N promotion is the capped
	// ablation.
	MaxTargetsPerSite int
}

// Result reports what was promoted, in the units of Tables 8 and 10.
type Result struct {
	// CandidateSites counts profiled indirect call sites (sites with a
	// value profile that exist in the module).
	CandidateSites int
	// CandidateTargets counts (site, target) pairs.
	CandidateTargets int
	// TotalWeight is the cumulative execution count over all candidate
	// pairs.
	TotalWeight uint64
	// PromotedSites counts sites that received at least one promotion;
	// PromotedTargets the total promoted pairs; PromotedWeight their
	// cumulative count.
	PromotedSites   int
	PromotedTargets int
	PromotedWeight  uint64
	// NewSiteWeights maps each created direct-call site to the profile
	// weight of the promoted target, for consumption by the inliner.
	NewSiteWeights map[ir.SiteID]uint64
}

type pair struct {
	site   ir.SiteID // original site ID
	target string
	weight uint64
}

// Run promotes indirect call sites in the module in place.
func Run(mod *ir.Module, p *prof.Profile, opts Options) (*Result, error) {
	res := &Result{NewSiteWeights: make(map[ir.SiteID]uint64)}

	// Index the module's live indirect call sites by original ID.
	type loc struct {
		f *ir.Function
	}
	sites := make(map[ir.SiteID]loc)
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.OpICall {
					sites[in.Site] = loc{f: f}
				}
			}
		}
	}

	// Gather candidate pairs. A profiled site may have been duplicated
	// by inlining; ICP runs before inlining in the pipeline, so here a
	// profile site maps to exactly the module site with the same ID.
	var pairs []pair
	for id, s := range p.Sites {
		if !s.Indirect() {
			continue
		}
		if _, live := sites[id]; !live {
			continue
		}
		res.CandidateSites++
		for _, t := range s.SortedTargets() {
			if mod.Func(t.Name) == nil {
				return nil, fmt.Errorf("icp: profile target %q of site %d not in module", t.Name, id)
			}
			pairs = append(pairs, pair{site: id, target: t.Name, weight: t.Count})
			res.TotalWeight += t.Count
		}
	}
	res.CandidateTargets = len(pairs)
	if len(pairs) == 0 || opts.Budget <= 0 {
		return res, nil
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].weight != pairs[j].weight {
			return pairs[i].weight > pairs[j].weight
		}
		if pairs[i].site != pairs[j].site {
			return pairs[i].site < pairs[j].site
		}
		return pairs[i].target < pairs[j].target
	})

	items := make([]prof.WeightedItem, len(pairs))
	for i, pr := range pairs {
		items[i] = prof.WeightedItem{Index: i, Weight: pr.weight}
	}
	n := prof.CumulativeBudget(items, opts.Budget, false)

	// Group the selected pairs per site, preserving hotness order.
	perSite := make(map[ir.SiteID][]pair)
	for _, pr := range pairs[:n] {
		if opts.MaxTargetsPerSite > 0 && len(perSite[pr.site]) >= opts.MaxTargetsPerSite {
			continue
		}
		perSite[pr.site] = append(perSite[pr.site], pr)
	}

	// Deterministic site order.
	ids := make([]ir.SiteID, 0, len(perSite))
	for id := range perSite {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		sel := perSite[id]
		f := sites[id].f
		if err := promoteSite(mod, f, id, sel, res); err != nil {
			return nil, err
		}
		res.PromotedSites++
	}
	return res, nil
}

// promoteSite rewrites the indirect call with the given site ID in f into
// a compare chain over the selected targets with the original icall as
// fallback:
//
//	cmpfn reg, @t1 ; br flag, d1, c2
//	d1: call @t1 ; jmp cont
//	c2: cmpfn reg, @t2 ; br flag, d2, fb
//	d2: call @t2 ; jmp cont
//	fb: icall reg ; jmp cont
//	cont: <rest of the original block>
func promoteSite(mod *ir.Module, f *ir.Function, id ir.SiteID, sel []pair, res *Result) error {
	bi, ii := -1, -1
	for b := range f.Blocks {
		for i := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[i]
			if in.Op == ir.OpICall && in.Site == id {
				bi, ii = b, i
			}
		}
	}
	if bi < 0 {
		return fmt.Errorf("icp: site %d vanished from %s", id, f.Name)
	}
	b := f.Blocks[bi]
	icall := b.Instrs[ii]

	prefix := fmt.Sprintf("icp%d.", id)
	contName := prefix + "cont"
	cont := &ir.Block{Name: contName, Instrs: append([]ir.Instr(nil), b.Instrs[ii+1:]...)}

	var chain []*ir.Block
	head := b.Instrs[:ii:ii]
	emitCheck := func(into *[]ir.Instr, k int, pr pair) {
		dName := fmt.Sprintf("%sd%d", prefix, k)
		var next string
		if k+1 < len(sel) {
			next = fmt.Sprintf("%sc%d", prefix, k+1)
		} else {
			next = prefix + "fb"
		}
		*into = append(*into,
			ir.Instr{Op: ir.OpCmpFn, Reg: icall.Reg, Callee: pr.target},
			ir.Instr{Op: ir.OpBr, Then: dName, Else: next, UseFlag: true},
		)
		site := mod.NewSite()
		chain = append(chain, &ir.Block{Name: dName, Instrs: []ir.Instr{
			{Op: ir.OpCall, Callee: pr.target, Args: icall.Args, Site: site, Orig: site},
			{Op: ir.OpJmp, Then: contName},
		}})
		res.NewSiteWeights[site] = pr.weight
		res.PromotedTargets++
		res.PromotedWeight += pr.weight
	}

	emitCheck(&head, 0, sel[0])
	b.Instrs = head
	for k := 1; k < len(sel); k++ {
		cb := &ir.Block{Name: fmt.Sprintf("%sc%d", prefix, k)}
		emitCheck(&cb.Instrs, k, sel[k])
		chain = append(chain, cb)
	}
	// Fallback keeps the original icall (same site ID, so the resolver
	// and any later hardening still recognize it).
	fb := &ir.Block{Name: prefix + "fb", Instrs: []ir.Instr{
		icall,
		{Op: ir.OpJmp, Then: contName},
	}}

	// Order: compare blocks were appended to chain interleaved with
	// direct-call blocks; assemble final layout.
	blocks := make([]*ir.Block, 0, len(f.Blocks)+len(chain)+2)
	blocks = append(blocks, f.Blocks[:bi+1]...)
	blocks = append(blocks, chain...)
	blocks = append(blocks, fb, cont)
	blocks = append(blocks, f.Blocks[bi+1:]...)
	f.Blocks = blocks
	f.InvalidateIndex()
	return nil
}
