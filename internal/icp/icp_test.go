package icp

import (
	"fmt"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/prof"
)

// buildModule returns a module with one indirect call site whose profile
// has targets h1:700, h2:250, h3:50.
func buildModule(t *testing.T) (*ir.Module, ir.SiteID, *prof.Profile) {
	t.Helper()
	m := ir.NewModule()
	for _, n := range []string{"h1", "h2", "h3"} {
		b := ir.NewFunction(m, n, 1)
		b.ALU(2).Ret()
	}
	e := ir.NewFunction(m, "entry", 0)
	e.ALU(1)
	site := e.IndirectCall(1)
	e.Ret()
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	p := prof.New()
	p.AddIndirect(site, "entry", "h1", 700)
	p.AddIndirect(site, "entry", "h2", 250)
	p.AddIndirect(site, "entry", "h3", 50)
	return m, site, p
}

func countOps(m *ir.Module, op ir.Opcode) int {
	n := 0
	for _, f := range m.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == op {
				n++
			}
		})
	}
	return n
}

func TestPromotionCreatesChainWithFallback(t *testing.T) {
	m, site, p := buildModule(t)
	res, err := Run(m, p, Options{Budget: 1.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.PromotedSites != 1 || res.PromotedTargets != 3 {
		t.Fatalf("promoted %d sites / %d targets, want 1/3", res.PromotedSites, res.PromotedTargets)
	}
	if res.PromotedWeight != 1000 {
		t.Errorf("PromotedWeight = %d, want 1000", res.PromotedWeight)
	}
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("post Verify: %v", err)
	}
	// The fallback icall must survive with the original site ID.
	found := false
	m.Func("entry").ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpICall && in.Site == site {
			found = true
		}
	})
	if !found {
		t.Error("fallback icall with original site ID missing")
	}
	// Three promoted direct calls with recorded weights.
	if got := countOps(m, ir.OpCall); got != 3 {
		t.Errorf("direct calls = %d, want 3", got)
	}
	var weights []uint64
	for _, w := range res.NewSiteWeights {
		weights = append(weights, w)
	}
	if len(weights) != 3 {
		t.Fatalf("NewSiteWeights has %d entries, want 3", len(weights))
	}
	var sum uint64
	for _, w := range weights {
		sum += w
	}
	if sum != 1000 {
		t.Errorf("promoted weights sum = %d, want 1000", sum)
	}
}

func TestBudgetLimitsPromotedTargets(t *testing.T) {
	m, _, p := buildModule(t)
	// 70% budget: h1 (700/1000) alone reaches it.
	res, err := Run(m, p, Options{Budget: 0.70})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.PromotedTargets != 1 {
		t.Errorf("PromotedTargets = %d, want 1 at a 70%% budget", res.PromotedTargets)
	}
	if got := countOps(m, ir.OpCall); got != 1 {
		t.Errorf("direct calls = %d, want 1", got)
	}
}

func TestMaxTargetsPerSiteCap(t *testing.T) {
	m, _, p := buildModule(t)
	res, err := Run(m, p, Options{Budget: 1.0, MaxTargetsPerSite: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.PromotedTargets != 1 {
		t.Errorf("PromotedTargets = %d, want 1 under cap", res.PromotedTargets)
	}
}

func TestPromotionExecutionEquivalence(t *testing.T) {
	// Invocation counts per handler must be identical before and after
	// promotion under the same seed: the chain dispatches to exactly
	// the function the resolver picked.
	m, site, p := buildModule(t)
	counts := func(mod *ir.Module) map[string]uint64 {
		prog, err := interp.Compile(mod)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		mc := interp.NewMachine(prog, 777)
		res := interp.NewResolver()
		d, err := interp.NewDist(
			[]int{prog.FuncIndex("h1"), prog.FuncIndex("h2"), prog.FuncIndex("h3")},
			[]uint64{700, 250, 50})
		if err != nil {
			t.Fatalf("NewDist: %v", err)
		}
		res.Set(site, d)
		mc.Res = res
		mc.Rec = interp.NewRecorder(prog)
		for i := 0; i < 1000; i++ {
			if err := mc.Run("entry"); err != nil {
				t.Fatalf("Run: %v", err)
			}
		}
		pr, err := mc.Rec.Profile()
		if err != nil {
			t.Fatalf("Profile: %v", err)
		}
		out := map[string]uint64{}
		for _, h := range []string{"h1", "h2", "h3"} {
			out[h] = pr.Invocations[h]
		}
		return out
	}
	before := counts(m.Clone())
	if _, err := Run(m, p, Options{Budget: 1.0}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	after := counts(m)
	for h, n := range before {
		if after[h] != n {
			t.Errorf("%s: invocations %d -> %d after promotion", h, n, after[h])
		}
	}
}

func TestPromotionSkipsUnprofiledSites(t *testing.T) {
	m := ir.NewModule()
	h := ir.NewFunction(m, "h", 0)
	h.ALU(1).Ret()
	e := ir.NewFunction(m, "entry", 0)
	e.IndirectCall(0)
	e.Ret()
	p := prof.New() // empty: no value profile for the site
	res, err := Run(m, p, Options{Budget: 1.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CandidateSites != 0 || res.PromotedTargets != 0 {
		t.Errorf("unprofiled site considered: %+v", res)
	}
}

func TestPromotionRejectsUnknownTarget(t *testing.T) {
	m, site, _ := buildModule(t)
	p := prof.New()
	p.AddIndirect(site, "entry", "ghost", 10)
	if _, err := Run(m, p, Options{Budget: 1.0}); err == nil {
		t.Fatal("profile target absent from module was accepted")
	}
}

func TestMultipleSitesPromotedDeterministically(t *testing.T) {
	m := ir.NewModule()
	for _, n := range []string{"a", "b"} {
		f := ir.NewFunction(m, n, 0)
		f.ALU(1).Ret()
	}
	e := ir.NewFunction(m, "entry", 0)
	s1 := e.IndirectCall(0)
	s2 := e.IndirectCall(0)
	e.Ret()
	p := prof.New()
	p.AddIndirect(s1, "entry", "a", 500)
	p.AddIndirect(s2, "entry", "b", 500)

	r1, err := Run(m.Clone(), p, Options{Budget: 1.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := Run(m.Clone(), p, Options{Budget: 1.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.PromotedSites != 2 || r2.PromotedSites != 2 {
		t.Errorf("promoted sites = %d/%d, want 2/2", r1.PromotedSites, r2.PromotedSites)
	}
}

func BenchmarkRunPromotion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := ir.NewModule()
		p := prof.New()
		var names []string
		for j := 0; j < 12; j++ {
			n := fmt.Sprintf("impl_%d", j)
			f := ir.NewFunction(m, n, 1)
			f.ALU(3).Ret()
			names = append(names, n)
		}
		e := ir.NewFunction(m, "entry", 0)
		for j := 0; j < 50; j++ {
			site := e.IndirectCall(1)
			for k, n := range names {
				p.AddIndirect(site, "entry", n, uint64(5000/(k+1)))
			}
		}
		e.Ret()
		b.StartTimer()
		if _, err := Run(m, p, Options{Budget: 0.99999}); err != nil {
			b.Fatal(err)
		}
	}
}
