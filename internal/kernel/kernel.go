// Package kernel generates the synthetic Linux-like kernel module the
// evaluation runs against. The real PIBE prototype operates on Linux
// 5.1.0; in this reproduction the kernel is a deterministic, seeded IR
// module whose *shape* matches what PIBE's cost/benefit game depends on:
//
//   - one syscall entry point per LMBench benchmark, with a calibrated
//     per-operation budget of ALU work, direct calls (returns) and
//     indirect calls, derived from Table 2 (baseline latencies) and
//     Table 5 (all-defenses overheads) of the paper;
//   - shared helper layers (fd lookup, permission checks, user copies)
//     so different syscalls exercise common code, which is what makes
//     cross-workload profiles partially transferable (§8.4);
//   - per-subsystem operation tables (file_operations-like) whose
//     indirect call sites have 1..12 observed targets, matching the
//     multi-target distribution of Table 4;
//   - a large body of cold "driver" code that is never executed but
//     contributes the bulk of the static indirect-branch census
//     (Tables 10–12), including boot-only functions and inline-assembly
//     sites (paravirt hypercalls) that hardening cannot rewrite
//     (Table 11).
package kernel

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ir"
)

// PathSpec calibrates one syscall path. Returns counts include the
// returns of indirect-call targets; Cycles is the approximate
// unoptimized, undefended (LTO baseline) cost per operation.
type PathSpec struct {
	Name    string
	Returns int   // dynamic returns per operation
	ICalls  int   // dynamic indirect calls per operation
	Cycles  int64 // target baseline cycles per operation
}

// LMBenchSpecs calibrates the 20 LMBench latency benchmarks of Table 2.
// Cycle targets are the paper's LTO-baseline latencies at 3.7 GHz;
// return/icall densities are chosen so that hardening every branch with
// the combined defense (~31 extra cycles per return, ~40 per indirect
// call) reproduces the per-benchmark overheads of Table 5.
var LMBenchSpecs = []PathSpec{
	{"null", 6, 1, 518},
	{"read", 28, 9, 740},
	{"write", 20, 7, 629},
	{"open", 150, 66, 2886},
	{"stat", 75, 30, 1480},
	{"fstat", 15, 6, 777},
	{"af_unix", 400, 200, 14023},
	{"fork_exit", 4500, 2100, 238900},
	{"fork_exec", 11000, 5200, 586700},
	{"fork_shell", 23000, 10500, 1548800},
	{"pipe", 210, 105, 8436},
	{"select_file", 800, 620, 16169},
	{"select_tcp", 3000, 2700, 34700},
	{"tcp_conn", 1300, 1000, 29637},
	{"udp", 450, 300, 14097},
	{"tcp", 600, 390, 17057},
	{"mmap", 700, 220, 32301},
	{"page_fault", 9, 2, 407},
	{"sig_install", 10, 3, 740},
	{"sig_dispatch", 55, 20, 2479},
}

// Config parameterizes generation.
type Config struct {
	// Seed drives all structural randomness; equal seeds generate
	// byte-identical kernels.
	Seed int64
	// ColdFuncs is the number of never-executed driver functions
	// providing the static branch census. Default 2200.
	ColdFuncs int
	// BootFuncs is the number of boot-only functions. Default 60.
	BootFuncs int
	// AsmICalls is the number of inline-assembly indirect call sites
	// (paravirt hypercalls) hardening cannot rewrite. Default 12.
	AsmICalls int
	// AsmJumpTables is the number of assembly jump tables. Default 5.
	AsmJumpTables int
	// HelperLayers adds that many layers of intermediate helper
	// functions between the subsystem helpers and the leaf primitives:
	// layer k helpers call layer k-1 (layer 0 = the leaves), and the
	// top layer joins the nested-helper pool that prologues, work
	// helpers and impls draw from, so call chains get deeper both
	// statically (census, inliner inheritance) and dynamically. The
	// default 0 keeps the calibrated kernel byte-identical.
	HelperLayers int
}

func (c *Config) fill() {
	if c.ColdFuncs == 0 {
		c.ColdFuncs = 2200
	}
	if c.BootFuncs == 0 {
		c.BootFuncs = 60
	}
	if c.AsmICalls == 0 {
		c.AsmICalls = 12
	}
	if c.AsmJumpTables == 0 {
		c.AsmJumpTables = 5
	}
}

// Site describes one hot (executable) indirect call site: the targets it
// may dispatch to at runtime. Workload flavours weight these targets
// differently.
type Site struct {
	ID      ir.SiteID
	Bench   string // owning benchmark path ("" for shared helpers)
	Targets []string
}

// Kernel is the generated module plus the metadata workloads need.
type Kernel struct {
	Mod *ir.Module
	// Entries maps benchmark name to its syscall entry function.
	Entries map[string]string
	// Sites lists every executable indirect call site in deterministic
	// order.
	Sites []Site
	// Specs are the path specs the kernel was built from.
	Specs []PathSpec
}

// SiteByID returns the hot-site record for the given ID, or nil.
func (k *Kernel) SiteByID(id ir.SiteID) *Site {
	for i := range k.Sites {
		if k.Sites[i].ID == id {
			return &k.Sites[i]
		}
	}
	return nil
}

type gen struct {
	cfg    Config
	rng    *rand.Rand
	mod    *ir.Module
	kernel *Kernel

	leaves    []string // shared leaf helpers
	prologues []string // shared prologue helpers (fdget, security, ...)
}

// Generate builds the kernel.
func Generate(cfg Config) (*Kernel, error) {
	cfg.fill()
	g := &gen{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		mod: ir.NewModule(),
		kernel: &Kernel{
			Entries: make(map[string]string),
			Specs:   LMBenchSpecs,
		},
	}
	g.kernel.Mod = g.mod

	g.buildLeaves()
	g.buildHelperLayers()
	g.buildPrologues()
	for _, spec := range LMBenchSpecs {
		g.buildSyscall(spec)
	}
	g.buildColdCode()

	sort.Slice(g.kernel.Sites, func(i, j int) bool {
		return g.kernel.Sites[i].ID < g.kernel.Sites[j].ID
	})
	if err := verifyGenerated(g.mod); err != nil {
		return nil, err
	}
	return g.kernel, nil
}

// verifyGenerated runs the IR verifier over a freshly generated module
// and wraps any violation so callers can unwrap the typed
// *ir.VerifyError from the chain.
func verifyGenerated(m *ir.Module) error {
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		return fmt.Errorf("kernel: generated module does not verify: %w", err)
	}
	return nil
}

// emitWork appends ~cycles worth of mixed ALU/load/store work (average
// latency ≈2.5 per instruction) to the current block.
func (g *gen) emitWork(b *ir.Builder, cycles int64) {
	for cycles > 0 {
		switch g.rng.Intn(4) {
		case 0:
			b.ALU(1)
			cycles--
		case 1:
			b.ALUCycles(3)
			cycles -= 3
		case 2:
			b.Load(4)
			cycles -= 4
		case 3:
			b.Store()
			cycles--
		}
	}
}

// coldBlockInstrs samples the size of a helper's cold error-handling
// path. Real kernel functions are mostly error handling: the cold code
// rarely executes but dominates the function's InlineCost, which is what
// makes Rules 2 and 3 bind the way Table 9 reports. ~5% of helpers are
// big enough (cost > 3000) to trip Rule 3.
func (g *gen) coldBlockInstrs() int {
	r := g.rng.Intn(100)
	switch {
	case r < 30:
		return 0
	case r < 70:
		return 6 + g.rng.Intn(15)
	case r < 95:
		return 30 + g.rng.Intn(60)
	default:
		return 620 + g.rng.Intn(300)
	}
}

// helperBody emits a standard helper body: hot work, a rarely-taken
// branch to a cold error path, optional nested call, return.
func (g *gen) helperBody(b *ir.Builder, hotCycles int64, nested string, nestedArgs int) {
	g.emitWork(b, hotCycles)
	cold := g.coldBlockInstrs()
	if cold == 0 {
		if nested != "" {
			b.Call(nested, nestedArgs)
		}
		b.Ret()
		return
	}
	b.BrProb(0.015, "cold", "hot")
	b.NewBlock("cold")
	b.ALU(cold)
	b.Jmp("out")
	b.NewBlock("hot")
	if nested != "" {
		b.Call(nested, nestedArgs)
	}
	b.Jmp("out")
	b.NewBlock("out")
	b.Ret()
}

// buildLeaves creates the shared leaf helpers every subsystem calls.
func (g *gen) buildLeaves() {
	names := []string{
		"kmalloc", "kfree", "memcpy_to_user", "memcpy_from_user",
		"spin_lock", "spin_unlock", "mutex_lock", "mutex_unlock",
		"rcu_read_lock", "rcu_read_unlock", "atomic_inc", "atomic_dec",
		"capable", "audit_hook", "get_cpu_var", "put_cpu_var",
		"kref_get", "kref_put", "list_add", "list_del",
		"prefetch_page", "flush_tlb_entry", "update_rusage", "account_time",
	}
	// Lock primitives are noinline in real kernels (they must stay
	// out-of-line for lockdep and contention handling); they are hot in
	// every syscall and form the bulk of Table 9's "other" inhibitor
	// category.
	noinline := map[string]bool{
		"spin_lock": true, "spin_unlock": true,
	}
	for _, n := range names {
		b := ir.NewFunction(g.mod, n, g.rng.Intn(2))
		switch {
		case noinline[n]:
			b.SetAttrs(ir.AttrNoInline)
		case g.rng.Intn(3) == 0:
			b.SetAttrs(ir.AttrInlineHint)
		}
		b.SetSubsystem("core")
		g.helperBody(b, int64(3+g.rng.Intn(4)), "", 0)
		g.leaves = append(g.leaves, n)
	}
}

// buildHelperLayers inserts Config.HelperLayers layers of intermediate
// helpers between the leaves and everything that nests through them.
// Layer k's functions each do a little work and call down into layer
// k-1, so a nested call drawn from the top layer unwinds through the
// whole chain — HelperLayers extra dynamic returns per draw, and a
// correspondingly deeper static call graph for the census and the
// inliner's inheritance heuristic to chew on. With HelperLayers == 0
// this draws nothing from the RNG, keeping default generation
// byte-identical to the unscaled kernel.
func (g *gen) buildHelperLayers() {
	const perLayer = 12
	prev := g.leaves
	for layer := 1; layer <= g.cfg.HelperLayers; layer++ {
		names := make([]string, perLayer)
		for j := range names {
			names[j] = fmt.Sprintf("helper_l%d_%d", layer, j)
			b := ir.NewFunction(g.mod, names[j], 1)
			if g.rng.Intn(3) == 0 {
				b.SetAttrs(ir.AttrInlineHint)
			}
			b.SetSubsystem("core")
			g.helperBody(b, int64(2+g.rng.Intn(3)), prev[g.rng.Intn(len(prev))], 1)
		}
		prev = names
	}
	if g.cfg.HelperLayers > 0 {
		// The top layer joins the nested-helper pool; downstream draws
		// then split between direct leaf calls and deep chains.
		g.leaves = append(g.leaves, prev...)
	}
}

// buildPrologues creates the entry-layer helpers (fd lookup, security
// checks) shared by many syscalls — the cross-workload common paths.
func (g *gen) buildPrologues() {
	names := []string{
		"fdget", "fdput", "security_file_permission", "security_task_check",
		"copy_arg_struct", "verify_user_ptr", "enter_syscall_trace",
		"exit_syscall_trace", "lock_task", "unlock_task",
		"cred_check", "ns_lookup", "pid_resolve", "file_pos_read",
		"file_pos_write", "signal_pending_check",
	}
	// The syscall entry/exit trampolines correspond to the kernel's
	// entry assembly and its fixed companions (audit, seccomp): every
	// syscall runs them and none can be inlined, so their hardened
	// returns are a fixed per-syscall residual (why the paper's "null"
	// overhead stays ~42-46% in every optimized configuration).
	for _, n := range []string{"audit_entry", "audit_exit", "seccomp_check"} {
		b := ir.NewFunction(g.mod, n, 1)
		b.SetAttrs(ir.AttrNoInline)
		b.SetSubsystem("entry")
		g.emitWork(b, int64(3+g.rng.Intn(3)))
		b.Ret()
	}
	for _, n := range names {
		b := ir.NewFunction(g.mod, n, 1)
		b.SetSubsystem("entry")
		switch n {
		case "enter_syscall_trace":
			b.SetAttrs(ir.AttrNoInline)
			g.emitWork(b, 4)
			b.Call("audit_entry", 1)
			b.Call("seccomp_check", 1)
			b.Ret()
		case "exit_syscall_trace":
			b.SetAttrs(ir.AttrNoInline)
			g.emitWork(b, 4)
			b.Call("audit_exit", 1)
			b.Ret()
		default:
			nested := ""
			if g.rng.Intn(10) < 3 {
				nested = g.leaves[g.rng.Intn(len(g.leaves))]
			}
			g.helperBody(b, int64(4+g.rng.Intn(5)), nested, 1)
		}
		g.prologues = append(g.prologues, n)
	}
}

// implPool creates the op-table implementation functions for one
// benchmark's subsystem and returns their names. nestPct is the
// percentage of implementations that call a nested leaf, which
// icall-dominated paths keep low so their return budget is not
// overshot.
func (g *gen) implPool(bench string, n, nestPct int) []string {
	names := make([]string, n)
	for i := range names {
		name := fmt.Sprintf("%s_impl_%d", bench, i)
		b := ir.NewFunction(g.mod, name, 1)
		b.SetSubsystem(bench)
		nested := ""
		if g.rng.Intn(100) < nestPct {
			nested = g.leaves[g.rng.Intn(len(g.leaves))]
		}
		g.helperBody(b, int64(2+g.rng.Intn(3)), nested, 1)
		names[i] = name
	}
	return names
}

// siteTargetCount samples the number of targets for an indirect call
// site, approximating the shape of Table 4 (most sites single-target,
// a tail with many).
func (g *gen) siteTargetCount() int {
	r := g.rng.Intn(1000)
	switch {
	case r < 715:
		return 1
	case r < 865:
		return 2
	case r < 915:
		return 3
	case r < 945:
		return 4
	case r < 955:
		return 5
	case r < 972:
		return 6
	default:
		return 7 + g.rng.Intn(6)
	}
}

// addICallSite emits a resolve+icall pair into b and registers its
// target set, drawn from the pool.
func (g *gen) addICallSite(b *ir.Builder, bench string, pool []string) {
	nt := g.siteTargetCount()
	if nt > len(pool) {
		nt = len(pool)
	}
	perm := g.rng.Perm(len(pool))[:nt]
	targets := make([]string, nt)
	for i, p := range perm {
		targets[i] = pool[p]
	}
	site, reg := b.Resolve()
	b.ICall(site, reg, 1)
	g.kernel.Sites = append(g.kernel.Sites, Site{ID: site, Bench: bench, Targets: targets})
}

// buildSyscall constructs sys_<name> and its helpers to meet the spec's
// dynamic-count calibration:
//
//	sys_X:   prologue helpers + work, call do_X, epilogue, ret
//	do_X:    loop executed ~L times; each iteration does D direct calls
//	         to work helpers and dispatches the body's S icall sites once
//	ret counts: P(1.3) + 1 + L*(D*1.3 + S*(1+0.3)) + E ≈ spec.Returns
func (g *gen) buildSyscall(spec PathSpec) {
	bench := spec.Name
	nestPct := 30
	if spec.ICalls > 0 {
		if headroom := (float64(spec.Returns)/float64(spec.ICalls) - 1) * 100; headroom < 30 {
			nestPct = int(headroom)
			if nestPct < 0 {
				nestPct = 0
			}
		}
	}
	pool := g.implPool(bench, 14, nestPct)

	// ALU budget: measured per-dispatch overheads are ≈9 cycles per
	// indirect call (resolve + dispatch + arg + impl body + return) and
	// ≈13 per direct call (call + args + helper body incl. occasional
	// cold-path dips + return).
	direct := spec.Returns - spec.ICalls
	if direct < 0 {
		direct = 0
	}
	alu := spec.Cycles - int64(spec.ICalls)*9 - int64(direct)*13
	if alu < 40 {
		alu = 40
	}

	// Solve the loop structure: S static icall sites dispatched once
	// per iteration over L iterations. The per-iteration body must stay
	// a few KB so one iteration's footprint fits the instruction cache.
	S := spec.ICalls
	if S > 24 {
		S = 24
	}
	if maxS := int(float64(spec.ICalls) * 2000 / float64(alu+1)); S > maxS && maxS >= 1 {
		S = maxS
	}
	if S < 1 {
		S = 1
	}
	L := int(float64(spec.ICalls)/float64(S) + 0.5)
	if L < 1 {
		L = 1
	}
	// Re-derive S so L*S tracks the target count despite rounding.
	S = int(float64(spec.ICalls)/float64(L) + 0.5)
	if S < 1 {
		S = 1
	}
	kPrime := L * S

	P := 4
	E := 2
	if spec.Returns < 20 {
		P, E = 2, 1
	}
	// Direct-call returns still needed once prologue/epilogue/impl
	// returns are accounted. The nesting factors cover the helpers and
	// impls that call a nested leaf.
	residual := float64(spec.Returns) - float64(kPrime)*(1+float64(nestPct)/100) - float64(P)*1.3 - float64(E) - 1
	D := int(residual/(1.3*float64(L)) + 0.5)
	if D < 0 {
		D = 0
	}

	// Work helpers for the loop body. The first one is the path's bulk
	// copy/validation routine: big unrolled code whose InlineCost
	// exceeds Rule 3's threshold — the hot Rule 3 victims of Table 9.
	works := make([]string, D)
	for j := 0; j < D; j++ {
		name := fmt.Sprintf("%s_work_%d", bench, j)
		wb := ir.NewFunction(g.mod, name, 1)
		wb.SetSubsystem(bench)
		if j == 0 && g.rng.Intn(2) == 0 {
			g.emitWork(wb, int64(4+g.rng.Intn(4)))
			wb.BrProb(0.02, "slow", "fast")
			wb.NewBlock("slow")
			wb.ALU(620 + g.rng.Intn(300))
			wb.Jmp("out")
			wb.NewBlock("fast")
			wb.Jmp("out")
			wb.NewBlock("out")
			wb.Ret()
		} else {
			nested := ""
			if g.rng.Intn(10) < 3 {
				nested = g.leaves[g.rng.Intn(len(g.leaves))]
			}
			g.helperBody(wb, int64(3+g.rng.Intn(5)), nested, 1)
		}
		works[j] = name
	}

	prologueALU := int64(25)
	epilogueALU := int64(15)
	bodyALU := (alu - prologueALU - epilogueALU) / int64(L)
	if bodyALU < 4 {
		bodyALU = 4
	}

	// do_X: the loop.
	doName := "do_" + bench
	db := ir.NewFunction(g.mod, doName, 2)
	db.SetSubsystem(bench)
	db.Jmp("loop")
	db.NewBlock("loop")
	g.emitWork(db, bodyALU)
	for j := 0; j < D; j++ {
		db.Call(works[j], 1)
	}
	for s := 0; s < S; s++ {
		g.addICallSite(db, bench, pool)
	}
	if L > 1 {
		db.BrLoop(int32(L), "loop", "out")
	} else {
		db.Jmp("out")
	}
	db.NewBlock("out")
	db.Ret()

	// sys_X: entry point.
	name := "sys_" + bench
	b := ir.NewFunction(g.mod, name, 2)
	b.SetAttrs(ir.AttrEntry)
	b.SetSubsystem(bench)
	g.emitWork(b, prologueALU)
	b.Call("enter_syscall_trace", 1)
	seen := g.rng.Perm(len(g.prologues))
	for i, used := 0, 1; used < P && i < len(seen); i++ {
		pn := g.prologues[seen[i]]
		if pn == "enter_syscall_trace" || pn == "exit_syscall_trace" {
			continue
		}
		b.Call(pn, 1+g.rng.Intn(2))
		used++
	}
	b.Call(doName, 2)
	g.emitWork(b, epilogueALU)
	for i, used := 0, 1; used < E && i < len(seen); i++ {
		pn := g.prologues[seen[len(seen)-1-i]]
		if pn == "enter_syscall_trace" || pn == "exit_syscall_trace" {
			continue
		}
		b.Call(pn, 1)
		used++
	}
	b.Call("exit_syscall_trace", 1)
	b.Ret()

	g.kernel.Entries[bench] = name
}

// buildColdCode emits the never-executed driver corpus: the bulk of the
// static branch census. Functions only call higher-numbered functions so
// the cold call graph is acyclic.
func (g *gen) buildColdCode() {
	n := g.cfg.ColdFuncs
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("cold_drv_%d", i)
	}
	// Cold implementations for cold icall sites.
	coldPool := make([]string, 24)
	for i := range coldPool {
		coldPool[i] = fmt.Sprintf("cold_ops_impl_%d", i)
		b := ir.NewFunction(g.mod, coldPool[i], 1)
		b.SetSubsystem("drivers")
		g.emitWork(b, 6)
		b.Ret()
	}

	asmICallsLeft := g.cfg.AsmICalls
	asmTablesLeft := g.cfg.AsmJumpTables
	for i := 0; i < n; i++ {
		b := ir.NewFunction(g.mod, names[i], g.rng.Intn(4))
		b.SetSubsystem("drivers")
		g.emitWork(b, int64(8+g.rng.Intn(30)))
		calls := 6 + g.rng.Intn(8)
		for c := 0; c < calls; c++ {
			if i+1 < n && g.rng.Intn(10) < 8 {
				b.Call(names[i+1+g.rng.Intn(n-i-1)], g.rng.Intn(4))
			} else {
				b.Call(g.leaves[g.rng.Intn(len(g.leaves))], g.rng.Intn(2))
			}
		}
		// ~65% of cold functions hold 1–3 indirect call sites; these
		// are what dominate the kernel's 20k-site census.
		if g.rng.Intn(100) < 65 {
			k := 1 + g.rng.Intn(3)
			for j := 0; j < k; j++ {
				site, reg := b.Resolve()
				asm := false
				if asmICallsLeft > 0 && g.rng.Intn(40) == 0 {
					asm = true
					asmICallsLeft--
				}
				blk := b.Func().Blocks[len(b.Func().Blocks)-1]
				b.ICall(site, reg, g.rng.Intn(4))
				if asm {
					blk.Instrs[len(blk.Instrs)-1].Asm = true
				}
			}
		}
		// ~10% end in a switch (jump table).
		if g.rng.Intn(100) < 10 {
			arms := 3 + g.rng.Intn(6)
			targets := make([]string, arms)
			for a := range targets {
				targets[a] = fmt.Sprintf("case%d", a)
			}
			b.Switch(targets)
			if asmTablesLeft > 0 && g.rng.Intn(20) == 0 {
				blk := b.Func().Blocks[len(b.Func().Blocks)-1]
				blk.Instrs[len(blk.Instrs)-1].Asm = true
				asmTablesLeft--
			}
			for a := range targets {
				b.NewBlock(targets[a])
				g.emitWork(b, int64(2+g.rng.Intn(5)))
				b.Jmp("coldout")
			}
			b.NewBlock("coldout")
			b.Ret()
		} else {
			b.Ret()
		}
	}
	// Force remaining asm quota onto the last functions so the census
	// is deterministic regardless of RNG draws.
	for i := n - 1; i >= 0 && (asmICallsLeft > 0 || asmTablesLeft > 0); i-- {
		f := g.mod.Func(names[i])
		f.ForEachInstr(func(b *ir.Block, idx int, in *ir.Instr) {
			switch {
			case in.Op == ir.OpICall && !in.Asm && asmICallsLeft > 0:
				in.Asm = true
				asmICallsLeft--
			case in.Op == ir.OpSwitch && in.JumpTable && !in.Asm && asmTablesLeft > 0:
				in.Asm = true
				asmTablesLeft--
			}
		})
	}

	// Boot-only initialization code.
	for i := 0; i < g.cfg.BootFuncs; i++ {
		b := ir.NewFunction(g.mod, fmt.Sprintf("boot_init_%d", i), 0)
		b.SetAttrs(ir.AttrBoot)
		b.SetSubsystem("init")
		g.emitWork(b, int64(10+g.rng.Intn(20)))
		b.Call(names[g.rng.Intn(n)], 1)
		b.Ret()
	}
}
