package kernel

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

func TestGenerateVerifiesAndIsDeterministic(t *testing.T) {
	k1, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	k2, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if ir.PrintModule(k1.Mod) != ir.PrintModule(k2.Mod) {
		t.Fatal("same seed produced different kernels")
	}
	k3, err := Generate(Config{Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if ir.PrintModule(k1.Mod) == ir.PrintModule(k3.Mod) {
		t.Fatal("different seeds produced identical kernels")
	}
}

func TestGenerateShape(t *testing.T) {
	k, err := Generate(Config{Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(k.Entries) != len(LMBenchSpecs) {
		t.Errorf("entries = %d, want %d", len(k.Entries), len(LMBenchSpecs))
	}
	s := ir.CollectStats(k.Mod)
	t.Logf("funcs=%d instrs=%d bytes=%d dcalls=%d icalls=%d rets=%d switches=%d jts=%d hotSites=%d",
		s.Funcs, s.Instrs, s.Bytes, s.DirectCalls, s.IndirectCalls, s.Returns,
		s.Switches, s.JumpTables, len(k.Sites))
	if s.IndirectCalls < 2000 {
		t.Errorf("static indirect calls = %d, want a few thousand", s.IndirectCalls)
	}
	if s.DirectCalls < 4*s.IndirectCalls {
		t.Errorf("direct/indirect ratio = %d/%d, want >= 4x", s.DirectCalls, s.IndirectCalls)
	}
	if len(k.Sites) < 200 {
		t.Errorf("hot sites = %d, want >= 200", len(k.Sites))
	}
	// Asm census: the configured number of unrewriteable sites exist.
	asmICalls, asmTables := 0, 0
	for _, f := range k.Mod.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Asm && in.Op == ir.OpICall {
				asmICalls++
			}
			if in.Asm && in.Op == ir.OpSwitch {
				asmTables++
			}
		})
	}
	if asmICalls != 12 {
		t.Errorf("asm icalls = %d, want 12", asmICalls)
	}
	if asmTables > 5 {
		t.Errorf("asm jump tables = %d, want <= 5", asmTables)
	}
}

// TestCalibration executes each syscall path and checks that the dynamic
// return/icall counts and baseline cycles land near the spec that was
// derived from the paper's Tables 2 and 5.
func TestCalibration(t *testing.T) {
	k, err := Generate(Config{Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	prog, err := interp.Compile(k.Mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res := buildUniformResolver(t, k, prog)

	for _, spec := range LMBenchSpecs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			mc := interp.NewMachine(prog, 42)
			mc.Res = res
			mc.Rec = interp.NewRecorder(prog)
			ops := 10
			if spec.Cycles > 100_000 {
				ops = 3
			}
			for i := 0; i < ops; i++ {
				if err := mc.Run(k.Entries[spec.Name]); err != nil {
					t.Fatalf("Run: %v", err)
				}
			}
			p, err := mc.Rec.Profile()
			if err != nil {
				t.Fatalf("Profile: %v", err)
			}
			var returns, icalls float64
			for fn, n := range p.Invocations {
				_ = fn
				returns += float64(n)
			}
			for _, s := range p.Sites {
				if s.Indirect() {
					icalls += float64(s.Count)
				}
			}
			returns /= float64(ops)
			icalls /= float64(ops)
			checkWithin(t, "returns/op", returns, float64(spec.Returns), 0.35)
			checkWithin(t, "icalls/op", icalls, float64(spec.ICalls), 0.35)
		})
	}
}

func buildUniformResolver(t *testing.T, k *Kernel, prog *interp.Program) *interp.Resolver {
	t.Helper()
	res := interp.NewResolver()
	for _, site := range k.Sites {
		idx := make([]int, len(site.Targets))
		w := make([]uint64, len(site.Targets))
		for i, tg := range site.Targets {
			fi := prog.FuncIndex(tg)
			if fi < 0 {
				t.Fatalf("site %d target %q missing", site.ID, tg)
			}
			idx[i] = fi
			w[i] = uint64(100 / (i + 1))
		}
		d, err := interp.NewDist(idx, w)
		if err != nil {
			t.Fatalf("NewDist: %v", err)
		}
		res.Set(site.ID, d)
	}
	return res
}

func checkWithin(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		return
	}
	// Tiny paths carry a fixed structural floor (syscall entry/exit
	// trampolines), so allow a small absolute slack besides the
	// relative tolerance.
	if diff := got - want; diff > -6 && diff < 6 {
		return
	}
	ratio := got / want
	if ratio < 1-tol || ratio > 1+tol {
		t.Errorf("%s = %.1f, want %.1f (±%.0f%%)", what, got, want, tol*100)
	}
}

func TestKernelPrintParseRoundTrip(t *testing.T) {
	// The whole generated kernel must survive a print/parse round trip:
	// the strongest structural test of both the generator's output and
	// the IR text format.
	k, err := Generate(Config{Seed: 11, ColdFuncs: 120})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	text := ir.PrintModule(k.Mod)
	got, err := ir.ParseString(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if round := ir.PrintModule(got); round != text {
		t.Fatal("kernel print/parse round trip differs")
	}
	if err := ir.Verify(got, ir.VerifyOptions{}); err != nil {
		t.Fatalf("parsed kernel does not verify: %v", err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Config{Seed: int64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHelperLayersScaling pins the two claims the sweep's
// -sweep-kernel-scale relies on: HelperLayers == 0 draws nothing from
// the RNG (the scaled config's zero value keeps the calibrated kernel
// byte-identical), and HelperLayers > 0 produces a verifying kernel
// whose intermediate helper functions exist and enlarge the static call
// graph the census walks.
func TestHelperLayersScaling(t *testing.T) {
	base, err := Generate(Config{Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	zero, err := Generate(Config{Seed: 7, HelperLayers: 0})
	if err != nil {
		t.Fatalf("Generate(HelperLayers: 0): %v", err)
	}
	if ir.PrintModule(base.Mod) != ir.PrintModule(zero.Mod) {
		t.Fatal("HelperLayers: 0 changed the default kernel")
	}

	deep, err := Generate(Config{Seed: 7, HelperLayers: 3})
	if err != nil {
		t.Fatalf("Generate(HelperLayers: 3): %v", err)
	}
	for layer := 1; layer <= 3; layer++ {
		found := false
		for _, f := range deep.Mod.Funcs {
			if strings.HasPrefix(f.Name, fmt.Sprintf("helper_l%d_", layer)) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no helper_l%d_* functions generated", layer)
		}
	}
	sb, sd := ir.CollectStats(base.Mod), ir.CollectStats(deep.Mod)
	if sd.Funcs <= sb.Funcs {
		t.Errorf("deep kernel funcs = %d, want > base %d", sd.Funcs, sb.Funcs)
	}
	if sd.DirectCalls <= sb.DirectCalls {
		t.Errorf("deep kernel direct calls = %d, want > base %d", sd.DirectCalls, sb.DirectCalls)
	}
	// The scaled kernel still compiles and verifies end to end.
	if _, err := interp.Compile(deep.Mod.Clone()); err != nil {
		t.Fatalf("deep kernel does not compile: %v", err)
	}
}

// TestVerifyGeneratedWrapsTypedError: the generator's verify failure must
// keep the typed *ir.VerifyError in the chain (it is wrapped with %w), so
// callers can distinguish a malformed module from an environmental error.
func TestVerifyGeneratedWrapsTypedError(t *testing.T) {
	m := ir.NewModule()
	f := ir.NewFunction(m, "broken", 0)
	f.Jmp("nowhere")
	err := verifyGenerated(m)
	if err == nil {
		t.Fatal("corrupt module passed verification")
	}
	var ve *ir.VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("error %v does not unwrap to *ir.VerifyError", err)
	}
	if len(ve.Violations) == 0 {
		t.Fatal("VerifyError carries no violations")
	}
	if !strings.HasPrefix(err.Error(), "kernel: generated module does not verify:") {
		t.Errorf("wrap lost the kernel context: %q", err)
	}
	// A clean module produces no error.
	k, genErr := Generate(Config{Seed: 1})
	if genErr != nil {
		t.Fatal(genErr)
	}
	if err := verifyGenerated(k.Mod); err != nil {
		t.Errorf("generated kernel fails verifyGenerated: %v", err)
	}
}
