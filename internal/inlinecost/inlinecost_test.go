package inlinecost

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestInstrCosts(t *testing.T) {
	cases := []struct {
		in   ir.Instr
		want int64
	}{
		{ir.Instr{Op: ir.OpALU}, 5},
		{ir.Instr{Op: ir.OpLoad}, 5},
		{ir.Instr{Op: ir.OpRet}, 5},
		{ir.Instr{Op: ir.OpBr}, 5},
		{ir.Instr{Op: ir.OpCall, Args: 0}, 5},
		{ir.Instr{Op: ir.OpCall, Args: 3}, 20}, // 5 + 5*3, the paper's example
		{ir.Instr{Op: ir.OpICall, Args: 2}, 15},
	}
	for _, c := range cases {
		if got := Instr(&c.in); got != c.want {
			t.Errorf("Instr(%v args=%d) = %d, want %d", c.in.Op, c.in.Args, got, c.want)
		}
	}
}

func TestFunctionSumsBlocks(t *testing.T) {
	m := ir.NewModule()
	b := ir.NewFunction(m, "f", 0)
	b.ALU(9)
	b.Call("f2", 2)
	b.Ret()
	ir.NewFunction(m, "f2", 2).Ret()
	// 9 ALU (45) + call (15) + ret (5) = 65.
	if got := Function(m.Func("f")); got != 65 {
		t.Errorf("Function = %d, want 65", got)
	}
}

func TestThresholdConstantsMatchPaper(t *testing.T) {
	if Rule2Threshold != 12000 {
		t.Errorf("Rule2Threshold = %d, want 12000", Rule2Threshold)
	}
	if Rule3Threshold != 3000 {
		t.Errorf("Rule3Threshold = %d, want 3000", Rule3Threshold)
	}
	if InstrCost != 5 {
		t.Errorf("InstrCost = %d, want 5 (x86 standard cost)", InstrCost)
	}
}

// Property: a function of n unit instructions plus a return costs
// exactly (n+1)*5, and cost scales linearly with duplication.
func TestCostLinearQuick(t *testing.T) {
	f := func(n uint8) bool {
		m := ir.NewModule()
		b := ir.NewFunction(m, "f", 0)
		b.ALU(int(n)).Ret()
		return Function(m.Func("f")) == int64(int(n)+1)*InstrCost
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
