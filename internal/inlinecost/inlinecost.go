// Package inlinecost reimplements the cost heuristic of LLVM's
// InlineCost analysis as the paper describes it (§5.2):
//
//	"The analysis computes a numerical cost heuristic for each
//	 instruction in the callee, and returns the sum of the instruction
//	 costs. Most instructions incur a standard cost, while some have
//	 specific costs assigned to them. On X86 architectures the standard
//	 cost of an instruction is 5 [...]. For example, a nested call
//	 instruction is assigned cost 5 + 5 * num_args."
//
// PIBE's Rule 2 (caller complexity cap, default 12000) and Rule 3 (callee
// complexity cap, default 3000) are both expressed in these units.
package inlinecost

import "repro/internal/ir"

// InstrCost is the standard cost of one instruction.
const InstrCost = 5

// Paper-specified thresholds (§5.2, "Selecting the thresholds").
const (
	// Rule2Threshold caps the complexity a caller may reach through
	// inlining; determined experimentally in the paper starting from
	// LLVM's hot-branch inhibitor threshold of 3000 and stepping by
	// +3000 until no further improvement, arriving at 12000.
	Rule2Threshold = 12000
	// Rule3Threshold caps the complexity of an individual callee so a
	// single large hot callee cannot exhaust the caller's budget
	// (Figure 1); the paper uses LLVM's default threshold of 3000.
	Rule3Threshold = 3000
)

// Instr returns the cost of a single instruction.
func Instr(in *ir.Instr) int64 {
	switch in.Op {
	case ir.OpCall, ir.OpICall:
		// A call needs roughly one set-up instruction per argument
		// plus the call itself.
		return InstrCost + InstrCost*int64(in.Args)
	default:
		return InstrCost
	}
}

// Block returns the summed cost of a block.
func Block(b *ir.Block) int64 {
	var c int64
	for i := range b.Instrs {
		c += Instr(&b.Instrs[i])
	}
	return c
}

// Function returns the summed cost of a function body — the "complexity"
// PIBE's Rules 2 and 3 compare against their thresholds.
func Function(f *ir.Function) int64 {
	var c int64
	for _, b := range f.Blocks {
		c += Block(b)
	}
	return c
}
