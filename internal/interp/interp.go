// Package interp executes IR modules. It serves three roles in the
// pipeline, mirroring how the paper uses its profiling and production
// kernel binaries:
//
//   - the profiling run: execution records per-site counts and
//     indirect-target value profiles into a Recorder;
//   - the measurement run: execution drives the cpu.Model, producing
//     cycle counts for each workload operation;
//   - functional validation: transforms must preserve behaviour, which
//     tests check by comparing execution traces before and after.
//
// The interpreter works on a compiled form of the module (Program) where
// straight-line instruction runs are pre-aggregated, so measurement cost
// is proportional to control-flow events rather than instruction count.
//
// Execution is iterative: calls push an explicit frame onto a pooled
// frame stack instead of recursing through Go stack frames, so MaxDepth
// is bounded by memory, not by goroutine stack growth, and deep call
// chains cost one frame copy rather than a Go call.
package interp

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/resilience"
)

// ckind discriminates compiled instructions. Straight-line runs are not
// instructions at this level at all: compilation folds each run's
// aggregated cost into the preCost/preCount of the control-flow event
// that follows it, so the dispatch loop only ever visits events.
type ckind uint8

const (
	cResolve ckind = iota // function-pointer load
	cCmpFn                // compare register against function
	cBr                   // conditional branch
	cJmp                  // unconditional branch
	cSwitch               // multiway branch
	cCall                 // direct call
	cICall                // indirect call
	cRet                  // return
	cStep                 // superblock seam: the entry accounting of a merged jump target
)

// cinstr is one compiled control-flow event. The layout is deliberately
// compact — 56 bytes, under one cache line — because the dispatch
// loop's cost is dominated by event-record fetches: the compiled image
// must fit in L2 for the interpreter to stream it. Three narrowings
// make that possible: addresses are int32 (the image starts at
// LayoutBase and is far smaller than 2 GiB; Compile rejects overflow),
// kinds that never use a field reuse it (see the per-kind comments),
// and switch target lists live in a per-function side table instead of
// a 24-byte slice header per event. Cost fields are int32 — per-run
// aggregates are bounded by block size times per-instruction latency,
// far below 2^31.
type cinstr struct {
	// preCost/preCount carry the aggregated latency and instruction
	// count of the straight-line run preceding this event (plus the
	// event's own instruction for cCmpFn, whose cycle rides on the
	// fused branch). They are charged before the event executes,
	// preserving the exact charge order of per-instruction execution.
	preCost  int32
	preCount int32
	addr     int32 // branch/call/ret instruction address; cStep: target line base
	// cost: cResolve load latency; cBr taken threshold in 2^-24 units;
	// cStep merged segment cost.
	cost int32
	// then: cBr/cJmp taken block index; cStep line count.
	then int32
	// els: cBr fall-through block index; cCall/cICall return address
	// (addr + size); cStep merged segment instruction count.
	els int32
	// callee: cCall/cCmpFn function index; cSwitch index into the
	// function's switchTargets side table.
	callee  int32
	trip    int32 // cBr: counted-loop trip count (0 = not counted)
	tripIdx int32 // cBr: index into the frame's trip-counter array
	reg     int32
	orig    ir.SiteID
	site    ir.SiteID
	args    int16 // call argument count (InlineCost caps it far below 2^15)
	kind    ckind
	useFlag bool // cBr: branch on flag; cStep: merged segment may fault
	table   bool // cSwitch: lowered as a jump table
	// charged marks events whose segment takes the per-event accounting
	// path (the segment may fault mid-block, so its straight-line runs
	// cannot be batched at segment entry). Per-instruction rather than
	// per-block so superblock merging can join segments with different
	// accounting modes, and so a frame resumed mid-segment after a call
	// recovers the right mode.
	charged bool
	def     ir.Defense
}

// cblock is narrowed like cinstr (48 bytes): block records are loaded
// on every block transition, so they compete with event records for L2.
// All fields fit int32 — addresses by the layout budget Compile
// enforces, costs because they are per-block aggregates.
type cblock struct {
	instrs   []cinstr
	lineBase int32
	nLines   int32

	// tailCost/tailCount carry a trailing straight-line run with no
	// following event (only possible in a malformed block that falls
	// through); charged before the fell-through trap, as
	// per-instruction execution would.
	tailCost  int32
	tailCount int32

	// Batched accounting, precomputed at compile time: the sum of every
	// pre/tail charge in the block. Blocks that cannot fault or suspend
	// mid-block (no resolve, no calls) charge this in a single
	// cpu.Model call at block entry instead of per event; the charges
	// are order-independent additions, so the batch is cycle-exact, not
	// approximate. Blocks with mayFault set take the per-event path so
	// a mid-block trap never over-charges.
	segCost  int32
	segCount int32
	mayFault bool
}

type cfunc struct {
	name     string
	index    int32
	addr     int64
	numRegs  int
	numTrips int
	blocks   []cblock
	// switchTargets holds the per-switch target block lists; cSwitch
	// events index it through their callee field. Hoisting the slices
	// out of cinstr keeps the event record within one cache line.
	switchTargets [][]int32
	// flat marks call-free functions (no direct or indirect calls in
	// any block). Such a body can never suspend — it runs to its return
	// the moment it is entered — so the dispatch loop executes it
	// frameless (runFlat) with scratch register/trip files instead of
	// pushing an activation record.
	flat bool
}

// probThresh converts a branch probability in [0,1] to the 24-bit
// integer threshold the dispatch loop compares a uniform draw against.
func probThresh(p float32) int32 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 24
	}
	return int32(p * (1 << 24))
}

// Program is an executable compilation of an ir.Module. The module is
// laid out (addresses assigned) as part of compilation.
type Program struct {
	mod    *ir.Module
	funcs  []cfunc
	byName map[string]int32

	// Threaded-code form (compiled.go), built lazily on first use and
	// shared by every Machine running this program.
	compileOnce sync.Once
	compiledP   *compiled
}

// LayoutBase is where Compile places the image.
const LayoutBase = 0x1000000

// Compile lowers a module for execution. The module must verify; Compile
// re-checks the invariants it depends on and returns an error otherwise.
func Compile(mod *ir.Module) (*Program, error) {
	if end := mod.Layout(LayoutBase, 16); end > math.MaxInt32 {
		// cinstr stores addresses as int32; an image this large is far
		// outside anything the kernel generator produces.
		return nil, fmt.Errorf("interp: image end address %#x exceeds the 31-bit layout budget", end)
	}
	p := &Program{
		mod:    mod,
		funcs:  make([]cfunc, len(mod.Funcs)),
		byName: make(map[string]int32, len(mod.Funcs)),
	}
	for i, f := range mod.Funcs {
		p.byName[f.Name] = int32(i)
	}
	for i, f := range mod.Funcs {
		cf, err := p.compileFunc(f, int32(i))
		if err != nil {
			return nil, err
		}
		p.funcs[i] = cf
	}
	return p, nil
}

// Module returns the module the program was compiled from.
func (p *Program) Module() *ir.Module { return p.mod }

// FuncIndex returns the dense index of the named function, or -1.
func (p *Program) FuncIndex(name string) int {
	if i, ok := p.byName[name]; ok {
		return int(i)
	}
	return -1
}

// FuncName returns the name of the function at the given index.
func (p *Program) FuncName(idx int) string { return p.funcs[idx].name }

// FuncAddr returns the base address of the function at the given index.
func (p *Program) FuncAddr(idx int) int64 { return p.funcs[idx].addr }

// NumFuncs returns the number of functions in the program.
func (p *Program) NumFuncs() int { return len(p.funcs) }

// SiteBound returns an exclusive upper bound on the site IDs used by the
// program's module, suitable for NewResolverSized.
func (p *Program) SiteBound() int { return int(p.mod.NextSiteID()) }

func (p *Program) compileFunc(f *ir.Function, index int32) (cfunc, error) {
	cf := cfunc{name: f.Name, index: index, addr: f.Addr, numRegs: f.NumRegs}
	blockIdx := make(map[string]int32, len(f.Blocks))
	for i, b := range f.Blocks {
		blockIdx[b.Name] = int32(i)
	}
	lookup := func(name string) (int32, error) {
		if i, ok := blockIdx[name]; ok {
			return i, nil
		}
		return 0, fmt.Errorf("interp: %s: branch to unknown block %q", f.Name, name)
	}
	addr := f.Addr
	cf.blocks = make([]cblock, len(f.Blocks))
	lineSize := int64(64)
	for bi, b := range f.Blocks {
		cb := cblock{lineBase: int32(addr &^ (lineSize - 1))}
		var pendCost, pendCount int32
		appendEvent := func(ci cinstr) {
			ci.preCost += pendCost
			ci.preCount += pendCount
			pendCost, pendCount = 0, 0
			cb.instrs = append(cb.instrs, ci)
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			iaddr := addr
			addr += int64(in.ByteSize())
			switch in.Op {
			case ir.OpALU, ir.OpLoad, ir.OpStore:
				pendCost += int32(in.Latency())
				pendCount++
			case ir.OpResolve:
				appendEvent(cinstr{kind: cResolve, addr: int32(iaddr), site: in.Site, orig: in.Orig, reg: in.Reg, cost: int32(in.Latency())})
			case ir.OpCmpFn:
				tgt, ok := p.byName[in.Callee]
				if !ok {
					return cf, fmt.Errorf("interp: %s: cmpfn against unknown function %q", f.Name, in.Callee)
				}
				// The compare fuses with its branch (macro-fusion); it
				// counts as an instruction but its cycle rides on the
				// branch event.
				appendEvent(cinstr{kind: cCmpFn, addr: int32(iaddr), reg: in.Reg, callee: tgt, preCount: 1})
			case ir.OpBr:
				then, err := lookup(in.Then)
				if err != nil {
					return cf, err
				}
				els, err := lookup(in.Else)
				if err != nil {
					return cf, err
				}
				ci := cinstr{kind: cBr, addr: int32(iaddr), then: then, els: els, cost: probThresh(in.Prob), useFlag: in.UseFlag, trip: in.Trip}
				if in.Trip > 0 {
					ci.tripIdx = int32(cf.numTrips)
					cf.numTrips++
				}
				appendEvent(ci)
			case ir.OpJmp:
				then, err := lookup(in.Then)
				if err != nil {
					return cf, err
				}
				appendEvent(cinstr{kind: cJmp, then: then})
			case ir.OpSwitch:
				ts := make([]int32, len(in.Targets))
				for k, t := range in.Targets {
					ti, err := lookup(t)
					if err != nil {
						return cf, err
					}
					ts[k] = ti
				}
				tbl := int32(len(cf.switchTargets))
				cf.switchTargets = append(cf.switchTargets, ts)
				appendEvent(cinstr{kind: cSwitch, addr: int32(iaddr), callee: tbl, table: in.JumpTable, def: in.Defense})
			case ir.OpCall:
				tgt, ok := p.byName[in.Callee]
				if !ok {
					return cf, fmt.Errorf("interp: %s: call to unknown function %q", f.Name, in.Callee)
				}
				appendEvent(cinstr{kind: cCall, addr: int32(iaddr), els: int32(addr), callee: tgt, site: in.Site, orig: in.Orig, args: int16(in.Args)})
			case ir.OpICall:
				appendEvent(cinstr{kind: cICall, addr: int32(iaddr), els: int32(addr), site: in.Site, orig: in.Orig, reg: in.Reg, args: int16(in.Args), def: in.Defense})
			case ir.OpRet:
				appendEvent(cinstr{kind: cRet, addr: int32(iaddr), def: in.Defense})
			case ir.OpIJump:
				return cf, fmt.Errorf("interp: %s: raw ijump instructions are produced only by lowering and are dispatched via switch", f.Name)
			default:
				return cf, fmt.Errorf("interp: %s: unknown opcode %v", f.Name, in.Op)
			}
		}
		end := addr - 1
		cb.nLines = int32(end/lineSize-int64(cb.lineBase)/lineSize) + 1
		cb.tailCost, cb.tailCount = pendCost, pendCount
		cb.segCost, cb.segCount = cb.tailCost, cb.tailCount
		for ii := range cb.instrs {
			ci := &cb.instrs[ii]
			cb.segCost += ci.preCost
			cb.segCount += ci.preCount
			if ci.kind == cResolve || ci.kind == cCall || ci.kind == cICall {
				cb.mayFault = true
			}
		}
		if cb.mayFault {
			for ii := range cb.instrs {
				cb.instrs[ii].charged = true
			}
		}
		cf.blocks[bi] = cb
	}
	mergeSuperblocks(&cf)
	cf.flat = len(cf.blocks) > 0
	for bi := range cf.blocks {
		for ii := range cf.blocks[bi].instrs {
			if k := cf.blocks[bi].instrs[ii].kind; k == cCall || k == cICall {
				cf.flat = false
			}
		}
	}
	return cf, nil
}

// isTerminator reports whether an event ends its block's event list
// (execution never continues past it within the block).
func isTerminator(k ckind) bool {
	return k == cBr || k == cJmp || k == cSwitch || k == cRet
}

// mergeSuperblocks splices the event list of every unconditional-jump
// target into the jumping block, replacing the cJmp with a cStep event
// that performs exactly the target's block-entry accounting (step/fuel
// check, then its batched Straightline or per-event TouchLines). The
// dispatch loop then runs the whole chain without returning to the
// block-transition path.
//
// The transform is observationally exact: the cStep fires at the same
// sequence point the target's block entry would (so fuel accounting,
// chaos-injection draw order and cpu.Model call order are identical),
// per-event charge flags travel with each segment's events, and blocks
// remain addressable (branches elsewhere still enter the original
// target block directly). Chains are cycle-guarded and depth-capped;
// a malformed target (no terminator) is never merged so fell-through
// trap semantics keep their per-block tail charges.
func mergeSuperblocks(cf *cfunc) {
	const maxChain = 32
	merged := make([][]cinstr, len(cf.blocks))
	var expand func(bi int32, visited map[int32]bool, budget int) []cinstr
	expand = func(bi int32, visited map[int32]bool, budget int) []cinstr {
		instrs := cf.blocks[bi].instrs
		t := -1
		for i := range instrs {
			if isTerminator(instrs[i].kind) {
				t = i
				break
			}
		}
		if t < 0 {
			return instrs // malformed: keep fell-through semantics
		}
		instrs = instrs[:t+1]
		term := &instrs[t]
		if term.kind != cJmp || budget == 0 {
			return instrs
		}
		tgt := term.then
		if visited[tgt] {
			return instrs
		}
		visited[tgt] = true
		tail := expand(tgt, visited, budget-1)
		if len(tail) == 0 || !isTerminator(tail[len(tail)-1].kind) {
			return instrs // target chain is malformed; don't merge
		}
		tb := &cf.blocks[tgt]
		step := cinstr{
			kind:     cStep,
			preCost:  term.preCost, // the run before the jump, segment A's mode
			preCount: term.preCount,
			charged:  term.charged,
			addr:     tb.lineBase,
			then:     tb.nLines,
			cost:     tb.segCost,
			els:      tb.segCount,
			useFlag:  tb.mayFault,
		}
		out := make([]cinstr, 0, t+1+len(tail))
		out = append(out, instrs[:t]...)
		out = append(out, step)
		return append(out, tail...)
	}
	for bi := range cf.blocks {
		visited := map[int32]bool{int32(bi): true}
		merged[bi] = expand(int32(bi), visited, maxChain)
	}
	for bi := range cf.blocks {
		cf.blocks[bi].instrs = merged[bi]
	}
}

// ICallHook lets a runtime mechanism (the JumpSwitches baseline)
// intercept indirect calls that carry no static defense. Handle returns
// true if it charged the timing for the dispatch itself.
type ICallHook interface {
	Handle(m *cpu.Model, site ir.SiteID, siteAddr, targetAddr, retAddr int64, target int32) bool
}

// frame is one pooled activation record on the machine's explicit call
// stack. regs and trips keep their capacity across calls at the same
// depth, so only the live prefix is re-initialised per call.
type frame struct {
	fi       int32
	bi       int32
	ii       int32 // instruction index to resume at within the block
	retAddr  int64
	flag     bool
	entering bool // block-entry accounting (fuel, icache, batch) pending
	regs     []int32
	trips    []int32
}

// Machine executes a Program. CPU, Rec and Hook are all optional; a
// Machine with none of them just validates control flow.
//
// Execution failures — traps, fuel (step-budget) exhaustion, depth
// exhaustion — are reported as *resilience.FaultError values carrying
// the faulting function, so callers can distinguish an abort (after
// which partially recorded state is still usable) from a hard error.
type Machine struct {
	Prog *Program
	CPU  *cpu.Model
	Rec  *Recorder
	Res  *Resolver
	Hook ICallHook
	RNG  *rand.Rand

	// Inject, when non-nil, is consulted for chaos faults: injected traps
	// at function entry, depth exhaustion at each call, fuel exhaustion
	// at each executed block. Injection is deterministic per seed.
	Inject *resilience.Injector

	// MaxDepth bounds call nesting; MaxSteps bounds total executed
	// blocks per Run, so broken control flow fails instead of hanging.
	// Dispatch is iterative, so MaxDepth is limited by memory (one
	// pooled frame per depth), not by Go stack growth.
	MaxDepth int
	MaxSteps int64

	// RefillRSB stuffs the return stack buffer with benign entries at
	// every Run entry, modelling the kernel's RSB refilling on
	// privilege transitions (§6.4 of the paper).
	RefillRSB bool

	// OnResolve, when non-nil, observes every indirect-target resolution:
	// the original site ID (stable across ICP and inlining, which key
	// promoted chains by Orig) and the function index the resolver picked.
	// The sequence of resolutions is preserved by the optimization passes
	// — they reorder dispatch, not resolution — so differential image
	// validation (internal/diffcheck) digests it as the profile-visible
	// observable to compare a candidate image against its reference.
	OnResolve func(orig ir.SiteID, target int32)

	// ExactAccounting forces the per-event cpu.Model charging path even
	// for blocks eligible for batched block-entry charging. The batched
	// path is cycle-exact by construction; this knob exists so tests can
	// prove it (same seed, batched vs exact, identical Cycles/Stats).
	ExactAccounting bool

	// Engine selects the execution tier. EngineCompiled runs the
	// threaded-code chain (compiled.go) when the machine's configuration
	// permits — no recorder, hook, injector, replaced RNG or
	// ExactAccounting — and falls back to the interpreter silently
	// otherwise, so callers can set it unconditionally.
	Engine Engine

	steps int64
	stack []frame
	// src is the concrete view of RNG's source and ownRNG the *rand.Rand
	// NewMachine built around it; the dispatch loop uses src only while
	// RNG == ownRNG, so replacing RNG disables the fast path instead of
	// desynchronising the streams.
	src    *fastSource
	ownRNG *rand.Rand
	// leafRegs/leafTrips are the scratch register and trip-counter files
	// shared by all frameless (runFlat) executions. Call-free bodies
	// cannot nest, so one scratch file of each suffices at any depth;
	// both are cleared per invocation, matching a fresh frame.
	leafRegs  []int32
	leafTrips []int32
	// vm is the compiled tier's per-machine state; scratchCPU stands in
	// for a nil CPU there (closures charge unconditionally rather than
	// nil-check per event).
	vm         *cvm
	scratchCPU *cpu.Model
}

// fastSource is a splitmix64 rand.Source64. Compared with the standard
// library's lagged-Fibonacci source it has 8 bytes of state instead of
// ~5KB, seeds in O(1) instead of ~600 feedback steps (machines are
// created per measurement rep, so seeding is on the hot path), and each
// draw is three xorshift-multiply rounds with no memory traffic.
// Deterministic per seed, like any Source.
type fastSource struct{ s uint64 }

func newFastSource(seed int64) rand.Source64 { return &fastSource{s: uint64(seed)} }

func (f *fastSource) Seed(seed int64) { f.s = uint64(seed) }

func (f *fastSource) Int63() int64 { return int64(f.Uint64() >> 1) }

func (f *fastSource) Uint64() uint64 {
	f.s += 0x9e3779b97f4a7c15
	z := f.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewMachine returns a Machine with sensible limits and a deterministic
// RNG.
//
// The machine keeps a concrete reference to the source alongside the
// *rand.Rand wrapper: the dispatch loop draws through the concrete
// source (inlinable, no interface dispatch) while RNG remains the
// public handle. Both views share the same state, so draws through
// either produce the same stream — rand.Rand.Uint64 forwards straight
// to the Source64. A caller that replaces RNG simply loses the fast
// path; execution falls back to drawing through RNG.
func NewMachine(p *Program, seed int64) *Machine {
	src := &fastSource{s: uint64(seed)}
	rng := rand.New(src)
	return &Machine{
		Prog:     p,
		RNG:      rng,
		src:      src,
		ownRNG:   rng,
		MaxDepth: 256,
		MaxSteps: 32 << 20,
	}
}

// Run executes the named function to completion.
func (mc *Machine) Run(entry string) error {
	idx := mc.Prog.FuncIndex(entry)
	if idx < 0 {
		return trap(entry, "interp: no function %q", entry)
	}
	return mc.RunIndex(idx)
}

// RunIndex executes the function at the given dense index (FuncIndex)
// to completion. Callers that run the same entry repeatedly (benchmark
// loops, measurement reps) use it to hoist the name lookup.
func (mc *Machine) RunIndex(idx int) error {
	if idx < 0 || idx >= len(mc.Prog.funcs) {
		return trap("entry", "interp: no function at index %d", idx)
	}
	mc.steps = 0
	// The entry is "called" from a synthetic address so its final return
	// has a matching RSB entry after warm-up.
	const entryRetAddr = 0x7fff0000
	if mc.Engine == EngineCompiled && mc.compiledEligible() {
		err := mc.runCompiled(int32(idx), entryRetAddr)
		if err != errEngineUnavailable {
			return err
		}
		// Exotic model geometry: fall through to the interpreter.
	}
	if mc.CPU != nil {
		if mc.RefillRSB {
			mc.CPU.RefillRSB()
		}
		mc.CPU.DirectCall(entryRetAddr, 0)
	}
	return mc.exec(int32(idx), entryRetAddr)
}

// trap builds an organic (non-injected) execution trap.
func trap(site, format string, args ...any) error {
	return resilience.Faultf(resilience.PhaseExecute, resilience.KindTrap, site, format, args...)
}

// pushFrame runs the call prologue — depth and chaos checks, recorder
// invoke, register/trip-counter initialisation — and installs the frame
// at the given depth of the pooled stack.
func (mc *Machine) pushFrame(fi int32, depth int, retAddr int64) error {
	f := &mc.Prog.funcs[fi]
	if depth >= mc.MaxDepth || (mc.Inject != nil && mc.Inject.ExhaustDepth()) {
		return resilience.Faultf(resilience.PhaseExecute, resilience.KindDepthExhausted, f.name,
			"interp: call depth exceeds %d at %s", mc.MaxDepth, f.name)
	}
	if mc.Inject != nil {
		if err := mc.Inject.Trap(f.name); err != nil {
			return err
		}
	}
	if mc.Rec != nil {
		mc.Rec.invoke(fi)
	}
	if depth == len(mc.stack) {
		mc.stack = append(mc.stack, frame{})
	}
	fr := &mc.stack[depth]
	fr.fi = fi
	fr.bi = 0
	fr.ii = 0
	fr.retAddr = retAddr
	fr.flag = false
	fr.entering = true
	// Registers hold target indices biased by +1 so that the cleared
	// value 0 means "unresolved" and initialisation is a memclr rather
	// than a sentinel-fill loop.
	if cap(fr.regs) < f.numRegs {
		fr.regs = make([]int32, f.numRegs)
	}
	fr.regs = fr.regs[:f.numRegs]
	clear(fr.regs)
	if cap(fr.trips) < f.numTrips {
		fr.trips = make([]int32, f.numTrips)
	}
	fr.trips = fr.trips[:f.numTrips]
	clear(fr.trips)
	return nil
}

// runFlat executes a call-free callee frameless: the exact observable
// sequence of pushFrame plus a framed execution — depth and chaos
// checks, recorder invoke, step/fuel at each block entry, segment
// charges, predictor events, the final Return — without installing an
// activation record or round-tripping through the dispatch loop's
// frame switch. Registers and trip counters live in per-machine
// scratch files, cleared per invocation exactly as a fresh frame's
// would be; call-free bodies cannot nest, so one scratch file of each
// is enough. The caller has already charged the call itself.
func (mc *Machine) runFlat(lf *cfunc, model *cpu.Model, rng *rand.Rand, src *fastSource, retAddr int64, depth int, exact bool) error {
	inject := mc.Inject
	if depth >= mc.MaxDepth || (inject != nil && inject.ExhaustDepth()) {
		return resilience.Faultf(resilience.PhaseExecute, resilience.KindDepthExhausted, lf.name,
			"interp: call depth exceeds %d at %s", mc.MaxDepth, lf.name)
	}
	if inject != nil {
		if err := inject.Trap(lf.name); err != nil {
			return err
		}
	}
	if mc.Rec != nil {
		mc.Rec.invoke(lf.index)
	}
	if len(mc.leafRegs) < lf.numRegs {
		mc.leafRegs = make([]int32, lf.numRegs+8)
	}
	regs := mc.leafRegs[:lf.numRegs]
	clear(regs)
	if len(mc.leafTrips) < lf.numTrips {
		mc.leafTrips = make([]int32, lf.numTrips+8)
	}
	trips := mc.leafTrips[:lf.numTrips]
	clear(trips)
	res := mc.Res
	onResolve := mc.OnResolve
	flag := false
	bi := int32(0)
	// The step counter lives in a register for the duration of the body
	// and is published back to the machine at every exit, so the fuel
	// check is not a heap read-modify-write per block.
	steps := mc.steps
	maxSteps := mc.MaxSteps
	for {
		b := &lf.blocks[bi]
		steps++
		if steps > maxSteps || (inject != nil && inject.ExhaustFuel()) {
			mc.steps = steps
			return resilience.Faultf(resilience.PhaseExecute, resilience.KindFuelExhausted, lf.name,
				"interp: step budget exhausted in %s", lf.name)
		}
		if model != nil {
			if !b.mayFault && !exact {
				if b.nLines == 1 {
					model.Cycles += int64(b.segCost)
					model.Stats.Instructions += int64(b.segCount)
					model.TouchLine(int64(b.lineBase))
				} else {
					model.Straightline(int64(b.segCost), int64(b.segCount), int64(b.lineBase), int(b.nLines))
				}
			} else {
				model.TouchLines(int64(b.lineBase), int(b.nLines))
			}
		}
		next := int32(-1)
		instrs := b.instrs
		for ii := 0; ii < len(instrs); ii++ {
			ci := &instrs[ii]
			if (ci.charged || exact) && model != nil && ci.preCount != 0 {
				model.AddStraightline(int64(ci.preCost), int64(ci.preCount))
			}
			switch ci.kind {
			case cResolve:
				var d *Dist
				if res != nil {
					d = res.Get(ci.orig)
				}
				if d == nil {
					mc.steps = steps
					return trap(lf.name, "interp: %s: no target distribution for site %d (orig %d)", lf.name, ci.site, ci.orig)
				}
				var tgt int32
				if src != nil {
					tgt = d.pickFast(src)
				} else {
					tgt = d.Pick(rng)
				}
				regs[ci.reg] = tgt + 1
				if onResolve != nil {
					onResolve(ci.orig, tgt)
				}
				if model != nil {
					model.AddStraightline(int64(ci.cost), 1)
				}
			case cCmpFn:
				flag = regs[ci.reg] == ci.callee+1
			case cBr:
				var taken bool
				switch {
				case ci.trip > 0:
					cnt := trips[ci.tripIdx]
					if cnt < ci.trip-1 {
						trips[ci.tripIdx] = cnt + 1
						taken = true
					} else {
						trips[ci.tripIdx] = 0
						taken = false
					}
				case ci.useFlag:
					taken = flag
				default:
					var u uint64
					if src != nil {
						u = src.Uint64()
					} else {
						u = rng.Uint64()
					}
					taken = uint32(u>>40) < uint32(ci.cost)
				}
				if model != nil {
					model.CondBranch(int64(ci.addr), taken)
				}
				if taken {
					next = ci.then
				} else {
					next = ci.els
				}
			case cJmp:
				next = ci.then
			case cSwitch:
				targets := lf.switchTargets[ci.callee]
				var k int
				if src != nil {
					k = int(uint64nSrc(src, uint64(len(targets))))
				} else {
					k = int(uint64n(rng, uint64(len(targets))))
				}
				if model != nil {
					if ci.table {
						model.IndirectJump(int64(ci.addr), int64(k), ci.def)
					} else {
						for j := 0; j <= k && j < len(targets)-1; j++ {
							model.CondBranch(int64(ci.addr)+int64(j), j == k)
						}
					}
				}
				next = targets[k]
			case cRet:
				if model != nil {
					model.Return(retAddr, ci.def)
				}
				mc.steps = steps
				return nil
			case cStep:
				steps++
				if steps > maxSteps || (inject != nil && inject.ExhaustFuel()) {
					mc.steps = steps
					return resilience.Faultf(resilience.PhaseExecute, resilience.KindFuelExhausted, lf.name,
						"interp: step budget exhausted in %s", lf.name)
				}
				if model != nil {
					if !ci.useFlag && !exact {
						if ci.then == 1 {
							model.Cycles += int64(ci.cost)
							model.Stats.Instructions += int64(ci.els)
							model.TouchLine(int64(ci.addr))
						} else {
							model.Straightline(int64(ci.cost), int64(ci.els), int64(ci.addr), int(ci.then))
						}
					} else {
						model.TouchLines(int64(ci.addr), int(ci.then))
					}
				}
			}
			if next >= 0 {
				break
			}
		}
		if next < 0 {
			if model != nil && (b.mayFault || exact) && b.tailCount != 0 {
				model.AddStraightline(int64(b.tailCost), int64(b.tailCount))
			}
			mc.steps = steps
			return trap(lf.name, "interp: %s: block %d fell through without terminator", lf.name, bi)
		}
		bi = next
	}
}

// exec drives the iterative dispatch loop. Each iteration of the outer
// loop resumes the top-of-stack frame: calls suspend the caller (saving
// its resume index) and push the callee; returns pop.
//
// Per-frame state (block index, resume index, flag, register/trip
// slices) is held in locals across the inner block loop — the compiler
// cannot keep fields of a heap frame in registers across the model's
// method calls, so the loop spills them back only at suspension points
// (calls) rather than on every access.
func (mc *Machine) exec(entry int32, retAddr int64) error {
	if err := mc.pushFrame(entry, 0, retAddr); err != nil {
		return err
	}
	model := mc.CPU
	rng := mc.RNG
	src := mc.src
	if rng != mc.ownRNG {
		src = nil // RNG was replaced; draw through the interface
	}
	funcs := mc.Prog.funcs
	res := mc.Res
	rec := mc.Rec
	hook := mc.Hook
	onResolve := mc.OnResolve
	inject := mc.Inject
	exact := mc.ExactAccounting
	// As in runFlat, the step counter stays in a register; it is synced
	// through mc.steps around runFlat calls (the only other reader) and
	// reset by Run, so exit paths need no write-back.
	steps := mc.steps
	maxSteps := mc.MaxSteps
	sp := 0
frames:
	for sp >= 0 {
		fr := &mc.stack[sp]
		f := &funcs[fr.fi]
		bi := fr.bi
		flag := fr.flag
		entering := fr.entering
		resume := int(fr.ii)
		regs := fr.regs
		trips := fr.trips
		frRetAddr := fr.retAddr
		for {
			b := &f.blocks[bi]
			// Blocks without a fault or suspension point charge all
			// their straight-line cost in one model call at entry;
			// the charges are unconditional once the block is entered
			// and commute with the terminator's predictor events, so
			// the batch is cycle-exact. mayFault blocks (and the
			// ExactAccounting test knob) take the per-event path.
			if entering {
				resume = 0
				steps++
				if steps > maxSteps || (inject != nil && inject.ExhaustFuel()) {
					return resilience.Faultf(resilience.PhaseExecute, resilience.KindFuelExhausted, f.name,
						"interp: step budget exhausted in %s", f.name)
				}
				if model != nil {
					if !b.mayFault && !exact {
						if b.nLines == 1 {
							model.Cycles += int64(b.segCost)
							model.Stats.Instructions += int64(b.segCount)
							model.TouchLine(int64(b.lineBase))
						} else {
							model.Straightline(int64(b.segCost), int64(b.segCount), int64(b.lineBase), int(b.nLines))
						}
					} else {
						model.TouchLines(int64(b.lineBase), int(b.nLines))
					}
				}
			}
			next := int32(-1)
			instrs := b.instrs
			for ii := resume; ii < len(instrs); ii++ {
				ci := &instrs[ii]
				if (ci.charged || exact) && model != nil && ci.preCount != 0 {
					model.AddStraightline(int64(ci.preCost), int64(ci.preCount))
				}
				switch ci.kind {
				case cResolve:
					var d *Dist
					if res != nil {
						d = res.Get(ci.orig)
					}
					if d == nil {
						return trap(f.name, "interp: %s: no target distribution for site %d (orig %d)", f.name, ci.site, ci.orig)
					}
					var tgt int32
					if src != nil {
						tgt = d.pickFast(src)
					} else {
						tgt = d.Pick(rng)
					}
					regs[ci.reg] = tgt + 1
					if onResolve != nil {
						onResolve(ci.orig, tgt)
					}
					if model != nil {
						model.AddStraightline(int64(ci.cost), 1)
					}
				case cCmpFn:
					flag = regs[ci.reg] == ci.callee+1
				case cBr:
					var taken bool
					switch {
					case ci.trip > 0:
						cnt := trips[ci.tripIdx]
						if cnt < ci.trip-1 {
							trips[ci.tripIdx] = cnt + 1
							taken = true
						} else {
							trips[ci.tripIdx] = 0
							taken = false
						}
					case ci.useFlag:
						taken = flag
					default:
						// Integer comparison against the precompiled
						// 24-bit threshold: one Uint64 draw, no float
						// conversion on the hot path.
						var u uint64
						if src != nil {
							u = src.Uint64()
						} else {
							u = rng.Uint64()
						}
						taken = uint32(u>>40) < uint32(ci.cost)
					}
					if model != nil {
						model.CondBranch(int64(ci.addr), taken)
					}
					if taken {
						next = ci.then
					} else {
						next = ci.els
					}
				case cJmp:
					next = ci.then
				case cSwitch:
					targets := f.switchTargets[ci.callee]
					var k int
					if src != nil {
						k = int(uint64nSrc(src, uint64(len(targets))))
					} else {
						k = int(uint64n(rng, uint64(len(targets))))
					}
					if model != nil {
						if ci.table {
							model.IndirectJump(int64(ci.addr), int64(k), ci.def)
						} else {
							// Compare chain: one predicted compare+branch
							// per skipped case.
							for j := 0; j <= k && j < len(targets)-1; j++ {
								model.CondBranch(int64(ci.addr)+int64(j), j == k)
							}
						}
					}
					next = targets[k]
				case cCall:
					retAddr := int64(ci.els)
					if rec != nil {
						rec.direct(ci.orig, ci.callee)
					}
					if model != nil {
						model.DirectCall(retAddr, int32(ci.args))
					}
					if lf := &funcs[ci.callee]; lf.flat {
						mc.steps = steps
						if err := mc.runFlat(lf, model, rng, src, retAddr, sp+1, exact); err != nil {
							return err
						}
						steps = mc.steps
						continue
					}
					fr.bi = bi
					fr.ii = int32(ii + 1)
					fr.flag = flag
					fr.entering = false
					if err := mc.pushFrame(ci.callee, sp+1, retAddr); err != nil {
						return err
					}
					sp++
					continue frames
				case cICall:
					tgt := regs[ci.reg] - 1
					if tgt < 0 {
						return trap(f.name, "interp: %s: icall through unresolved register r%d (site %d)", f.name, ci.reg, ci.site)
					}
					retAddr := int64(ci.els)
					if rec != nil {
						rec.indirect(ci.orig, tgt)
					}
					if model != nil {
						handled := false
						if hook != nil && ci.def == ir.DefNone {
							handled = hook.Handle(model, ci.orig, int64(ci.addr), funcs[tgt].addr, retAddr, tgt)
						}
						if !handled {
							model.IndirectCall(int64(ci.addr), funcs[tgt].addr, retAddr, int32(ci.args), ci.def)
						} else {
							// The hook charged dispatch; still push the
							// return address for backward-edge fidelity.
							model.DirectCall(retAddr, int32(ci.args))
						}
					}
					if lf := &funcs[tgt]; lf.flat {
						mc.steps = steps
						if err := mc.runFlat(lf, model, rng, src, retAddr, sp+1, exact); err != nil {
							return err
						}
						steps = mc.steps
						continue
					}
					fr.bi = bi
					fr.ii = int32(ii + 1)
					fr.flag = flag
					fr.entering = false
					if err := mc.pushFrame(tgt, sp+1, retAddr); err != nil {
						return err
					}
					sp++
					continue frames
				case cRet:
					if model != nil {
						model.Return(frRetAddr, ci.def)
					}
					sp--
					continue frames
				case cStep:
					// Superblock seam: the merged jump target's block
					// entry — same step/fuel sequence point and the
					// target segment's own batched-or-per-event charge.
					steps++
					if steps > maxSteps || (inject != nil && inject.ExhaustFuel()) {
						return resilience.Faultf(resilience.PhaseExecute, resilience.KindFuelExhausted, f.name,
							"interp: step budget exhausted in %s", f.name)
					}
					if model != nil {
						if !ci.useFlag && !exact {
							if ci.then == 1 {
								// Single-line segment: charge the fields
								// directly and skip the Straightline call
								// layer (TouchLine's last-line probe is
								// the dominant outcome).
								model.Cycles += int64(ci.cost)
								model.Stats.Instructions += int64(ci.els)
								model.TouchLine(int64(ci.addr))
							} else {
								model.Straightline(int64(ci.cost), int64(ci.els), int64(ci.addr), int(ci.then))
							}
						} else {
							model.TouchLines(int64(ci.addr), int(ci.then))
						}
					}
				}
				if next >= 0 {
					break
				}
			}
			if next < 0 {
				if model != nil && (b.mayFault || exact) && b.tailCount != 0 {
					model.AddStraightline(int64(b.tailCost), int64(b.tailCount))
				}
				return trap(f.name, "interp: %s: block %d fell through without terminator", f.name, bi)
			}
			bi = next
			entering = true
		}
	}
	return nil
}
