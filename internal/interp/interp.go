// Package interp executes IR modules. It serves three roles in the
// pipeline, mirroring how the paper uses its profiling and production
// kernel binaries:
//
//   - the profiling run: execution records per-site counts and
//     indirect-target value profiles into a Recorder;
//   - the measurement run: execution drives the cpu.Model, producing
//     cycle counts for each workload operation;
//   - functional validation: transforms must preserve behaviour, which
//     tests check by comparing execution traces before and after.
//
// The interpreter works on a compiled form of the module (Program) where
// straight-line instruction runs are pre-aggregated, so measurement cost
// is proportional to control-flow events rather than instruction count.
package interp

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/resilience"
)

// ckind discriminates compiled instructions.
type ckind uint8

const (
	cSeg     ckind = iota // aggregated straight-line segment
	cResolve              // function-pointer load
	cCmpFn                // compare register against function
	cBr                   // conditional branch
	cJmp                  // unconditional branch
	cSwitch               // multiway branch
	cCall                 // direct call
	cICall                // indirect call
	cRet                  // return
)

type cinstr struct {
	kind    ckind
	cost    int64 // cSeg: aggregated latency
	count   int64 // cSeg: instruction count
	addr    int64 // branch/call/ret instruction address
	retAddr int64 // call: return address (addr + size)
	callee  int32 // cCall: function index; cCmpFn: compared function index
	site    ir.SiteID
	orig    ir.SiteID
	reg     int32
	args    int32
	def     ir.Defense
	then    int32 // cBr/cJmp: block index
	els     int32
	targets []int32 // cSwitch
	prob    float32
	useFlag bool
	table   bool  // cSwitch: lowered as a jump table
	trip    int32 // cBr: counted-loop trip count (0 = not counted)
	tripIdx int32 // cBr: index into the frame's trip-counter array
}

type cblock struct {
	instrs   []cinstr
	lineBase int64
	nLines   int
}

type cfunc struct {
	name     string
	index    int32
	addr     int64
	numRegs  int
	numTrips int
	blocks   []cblock
}

// Program is an executable compilation of an ir.Module. The module is
// laid out (addresses assigned) as part of compilation.
type Program struct {
	mod    *ir.Module
	funcs  []cfunc
	byName map[string]int32
}

// LayoutBase is where Compile places the image.
const LayoutBase = 0x1000000

// Compile lowers a module for execution. The module must verify; Compile
// re-checks the invariants it depends on and returns an error otherwise.
func Compile(mod *ir.Module) (*Program, error) {
	mod.Layout(LayoutBase, 16)
	p := &Program{
		mod:    mod,
		funcs:  make([]cfunc, len(mod.Funcs)),
		byName: make(map[string]int32, len(mod.Funcs)),
	}
	for i, f := range mod.Funcs {
		p.byName[f.Name] = int32(i)
	}
	for i, f := range mod.Funcs {
		cf, err := p.compileFunc(f, int32(i))
		if err != nil {
			return nil, err
		}
		p.funcs[i] = cf
	}
	return p, nil
}

// Module returns the module the program was compiled from.
func (p *Program) Module() *ir.Module { return p.mod }

// FuncIndex returns the dense index of the named function, or -1.
func (p *Program) FuncIndex(name string) int {
	if i, ok := p.byName[name]; ok {
		return int(i)
	}
	return -1
}

// FuncName returns the name of the function at the given index.
func (p *Program) FuncName(idx int) string { return p.funcs[idx].name }

// FuncAddr returns the base address of the function at the given index.
func (p *Program) FuncAddr(idx int) int64 { return p.funcs[idx].addr }

// NumFuncs returns the number of functions in the program.
func (p *Program) NumFuncs() int { return len(p.funcs) }

func (p *Program) compileFunc(f *ir.Function, index int32) (cfunc, error) {
	cf := cfunc{name: f.Name, index: index, addr: f.Addr, numRegs: f.NumRegs}
	blockIdx := make(map[string]int32, len(f.Blocks))
	for i, b := range f.Blocks {
		blockIdx[b.Name] = int32(i)
	}
	lookup := func(name string) (int32, error) {
		if i, ok := blockIdx[name]; ok {
			return i, nil
		}
		return 0, fmt.Errorf("interp: %s: branch to unknown block %q", f.Name, name)
	}
	addr := f.Addr
	cf.blocks = make([]cblock, len(f.Blocks))
	lineSize := int64(64)
	for bi, b := range f.Blocks {
		cb := cblock{lineBase: addr &^ (lineSize - 1)}
		var seg *cinstr
		flushSeg := func() { seg = nil }
		appendEvent := func(ci cinstr) {
			cb.instrs = append(cb.instrs, ci)
			flushSeg()
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			iaddr := addr
			addr += int64(in.ByteSize())
			switch in.Op {
			case ir.OpALU, ir.OpLoad, ir.OpStore:
				if seg == nil {
					cb.instrs = append(cb.instrs, cinstr{kind: cSeg})
					seg = &cb.instrs[len(cb.instrs)-1]
				}
				seg.cost += int64(in.Latency())
				seg.count++
			case ir.OpResolve:
				appendEvent(cinstr{kind: cResolve, addr: iaddr, site: in.Site, orig: in.Orig, reg: in.Reg, cost: int64(in.Latency())})
			case ir.OpCmpFn:
				tgt, ok := p.byName[in.Callee]
				if !ok {
					return cf, fmt.Errorf("interp: %s: cmpfn against unknown function %q", f.Name, in.Callee)
				}
				appendEvent(cinstr{kind: cCmpFn, addr: iaddr, reg: in.Reg, callee: tgt})
			case ir.OpBr:
				then, err := lookup(in.Then)
				if err != nil {
					return cf, err
				}
				els, err := lookup(in.Else)
				if err != nil {
					return cf, err
				}
				ci := cinstr{kind: cBr, addr: iaddr, then: then, els: els, prob: in.Prob, useFlag: in.UseFlag, trip: in.Trip}
				if in.Trip > 0 {
					ci.tripIdx = int32(cf.numTrips)
					cf.numTrips++
				}
				appendEvent(ci)
			case ir.OpJmp:
				then, err := lookup(in.Then)
				if err != nil {
					return cf, err
				}
				appendEvent(cinstr{kind: cJmp, then: then})
			case ir.OpSwitch:
				ts := make([]int32, len(in.Targets))
				for k, t := range in.Targets {
					ti, err := lookup(t)
					if err != nil {
						return cf, err
					}
					ts[k] = ti
				}
				appendEvent(cinstr{kind: cSwitch, addr: iaddr, targets: ts, table: in.JumpTable, def: in.Defense})
			case ir.OpCall:
				tgt, ok := p.byName[in.Callee]
				if !ok {
					return cf, fmt.Errorf("interp: %s: call to unknown function %q", f.Name, in.Callee)
				}
				appendEvent(cinstr{kind: cCall, addr: iaddr, retAddr: addr, callee: tgt, site: in.Site, orig: in.Orig, args: in.Args})
			case ir.OpICall:
				appendEvent(cinstr{kind: cICall, addr: iaddr, retAddr: addr, site: in.Site, orig: in.Orig, reg: in.Reg, args: in.Args, def: in.Defense})
			case ir.OpRet:
				appendEvent(cinstr{kind: cRet, addr: iaddr, def: in.Defense})
			case ir.OpIJump:
				return cf, fmt.Errorf("interp: %s: raw ijump instructions are produced only by lowering and are dispatched via switch", f.Name)
			default:
				return cf, fmt.Errorf("interp: %s: unknown opcode %v", f.Name, in.Op)
			}
		}
		end := addr - 1
		cb.nLines = int(end/lineSize-cb.lineBase/lineSize) + 1
		cf.blocks[bi] = cb
	}
	return cf, nil
}

// Dist is a weighted distribution over function indices, used to decide
// which target an indirect call site resolves to on a given execution.
type Dist struct {
	targets []int32
	cum     []uint64
	total   uint64
}

// NewDist builds a distribution from (function index, weight) pairs.
// Pairs with zero weight are dropped; at least one positive weight is
// required.
func NewDist(targets []int, weights []uint64) (*Dist, error) {
	if len(targets) != len(weights) {
		return nil, fmt.Errorf("interp: NewDist: %d targets vs %d weights", len(targets), len(weights))
	}
	d := &Dist{}
	var cum uint64
	for i, t := range targets {
		if weights[i] == 0 {
			continue
		}
		if t < 0 {
			return nil, fmt.Errorf("interp: NewDist: invalid target index %d", t)
		}
		cum += weights[i]
		d.targets = append(d.targets, int32(t))
		d.cum = append(d.cum, cum)
	}
	if cum == 0 {
		return nil, fmt.Errorf("interp: NewDist: no positive weights")
	}
	d.total = cum
	return d, nil
}

// Pick samples a function index.
func (d *Dist) Pick(rng *rand.Rand) int32 {
	if len(d.targets) == 1 {
		return d.targets[0]
	}
	x := rng.Uint64() % d.total
	i := sort.Search(len(d.cum), func(i int) bool { return d.cum[i] > x })
	return d.targets[i]
}

// NumTargets returns the number of distinct targets with positive weight.
func (d *Dist) NumTargets() int { return len(d.targets) }

// Resolver supplies the target distribution for each original indirect
// call site. Sites absent from the map cannot be executed indirectly.
type Resolver struct {
	dists map[ir.SiteID]*Dist
}

// NewResolver returns an empty resolver.
func NewResolver() *Resolver {
	return &Resolver{dists: make(map[ir.SiteID]*Dist)}
}

// Set installs the distribution for an original site ID.
func (r *Resolver) Set(orig ir.SiteID, d *Dist) { r.dists[orig] = d }

// Get returns the distribution for an original site ID.
func (r *Resolver) Get(orig ir.SiteID) *Dist { return r.dists[orig] }

// Sites returns the site IDs with installed distributions, sorted.
func (r *Resolver) Sites() []ir.SiteID {
	out := make([]ir.SiteID, 0, len(r.dists))
	for id := range r.dists {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ICallHook lets a runtime mechanism (the JumpSwitches baseline)
// intercept indirect calls that carry no static defense. Handle returns
// true if it charged the timing for the dispatch itself.
type ICallHook interface {
	Handle(m *cpu.Model, site ir.SiteID, siteAddr, targetAddr, retAddr int64, target int32) bool
}

// Machine executes a Program. CPU, Rec and Hook are all optional; a
// Machine with none of them just validates control flow.
//
// Execution failures — traps, fuel (step-budget) exhaustion, depth
// exhaustion — are reported as *resilience.FaultError values carrying
// the faulting function, so callers can distinguish an abort (after
// which partially recorded state is still usable) from a hard error.
type Machine struct {
	Prog *Program
	CPU  *cpu.Model
	Rec  *Recorder
	Res  *Resolver
	Hook ICallHook
	RNG  *rand.Rand

	// Inject, when non-nil, is consulted for chaos faults: injected traps
	// at function entry, depth exhaustion at each call, fuel exhaustion
	// at each executed block. Injection is deterministic per seed.
	Inject *resilience.Injector

	// MaxDepth bounds call nesting; MaxSteps bounds total executed
	// blocks per Run, so broken control flow fails instead of hanging.
	MaxDepth int
	MaxSteps int64

	// RefillRSB stuffs the return stack buffer with benign entries at
	// every Run entry, modelling the kernel's RSB refilling on
	// privilege transitions (§6.4 of the paper).
	RefillRSB bool

	// OnResolve, when non-nil, observes every indirect-target resolution:
	// the original site ID (stable across ICP and inlining, which key
	// promoted chains by Orig) and the function index the resolver picked.
	// The sequence of resolutions is preserved by the optimization passes
	// — they reorder dispatch, not resolution — so differential image
	// validation (internal/diffcheck) digests it as the profile-visible
	// observable to compare a candidate image against its reference.
	OnResolve func(orig ir.SiteID, target int32)

	steps  int64
	frames [][]int32 // register files reused per depth
	trips  [][]int32 // loop trip counters reused per depth
}

// NewMachine returns a Machine with sensible limits and a deterministic
// RNG.
func NewMachine(p *Program, seed int64) *Machine {
	return &Machine{
		Prog:     p,
		RNG:      rand.New(rand.NewSource(seed)),
		MaxDepth: 256,
		MaxSteps: 32 << 20,
	}
}

// Run executes the named function to completion.
func (mc *Machine) Run(entry string) error {
	idx := mc.Prog.FuncIndex(entry)
	if idx < 0 {
		return trap(entry, "interp: no function %q", entry)
	}
	mc.steps = 0
	// The entry is "called" from a synthetic address so its final return
	// has a matching RSB entry after warm-up.
	const entryRetAddr = 0x7fff0000
	if mc.CPU != nil {
		if mc.RefillRSB {
			mc.CPU.RefillRSB()
		}
		mc.CPU.DirectCall(entryRetAddr, 0)
	}
	return mc.call(int32(idx), 0, entryRetAddr)
}

func (mc *Machine) regs(depth, n int) []int32 {
	for len(mc.frames) <= depth {
		mc.frames = append(mc.frames, nil)
	}
	f := mc.frames[depth]
	if cap(f) < n {
		f = make([]int32, n)
		mc.frames[depth] = f
	}
	f = f[:n]
	for i := range f {
		f[i] = -1
	}
	return f
}

func (mc *Machine) tripCounters(depth, n int) []int32 {
	for len(mc.trips) <= depth {
		mc.trips = append(mc.trips, nil)
	}
	f := mc.trips[depth]
	if cap(f) < n {
		f = make([]int32, n)
		mc.trips[depth] = f
	}
	f = f[:n]
	for i := range f {
		f[i] = 0
	}
	return f
}

// trap builds an organic (non-injected) execution trap.
func trap(site, format string, args ...any) error {
	return resilience.Faultf(resilience.PhaseExecute, resilience.KindTrap, site, format, args...)
}

func (mc *Machine) call(fi int32, depth int, retAddr int64) error {
	f := &mc.Prog.funcs[fi]
	if depth >= mc.MaxDepth || mc.Inject.ExhaustDepth() {
		return resilience.Faultf(resilience.PhaseExecute, resilience.KindDepthExhausted, f.name,
			"interp: call depth exceeds %d at %s", mc.MaxDepth, f.name)
	}
	if mc.Inject != nil {
		if err := mc.Inject.Trap(f.name); err != nil {
			return err
		}
	}
	if mc.Rec != nil {
		mc.Rec.invoke(fi)
	}
	regs := mc.regs(depth, f.numRegs)
	var trips []int32
	if f.numTrips > 0 {
		trips = mc.tripCounters(depth, f.numTrips)
	}
	bi := int32(0)
	flag := false
	for {
		mc.steps++
		if mc.steps > mc.MaxSteps || mc.Inject.ExhaustFuel() {
			return resilience.Faultf(resilience.PhaseExecute, resilience.KindFuelExhausted, f.name,
				"interp: step budget exhausted in %s", f.name)
		}
		b := &f.blocks[bi]
		if mc.CPU != nil {
			mc.CPU.TouchLines(b.lineBase, b.nLines)
		}
		next := int32(-1)
		for ii := range b.instrs {
			ci := &b.instrs[ii]
			switch ci.kind {
			case cSeg:
				if mc.CPU != nil {
					mc.CPU.AddStraightline(ci.cost, ci.count)
				}
			case cResolve:
				var d *Dist
				if mc.Res != nil {
					d = mc.Res.Get(ci.orig)
				}
				if d == nil {
					return trap(f.name, "interp: %s: no target distribution for site %d (orig %d)", f.name, ci.site, ci.orig)
				}
				regs[ci.reg] = d.Pick(mc.RNG)
				if mc.OnResolve != nil {
					mc.OnResolve(ci.orig, regs[ci.reg])
				}
				if mc.CPU != nil {
					mc.CPU.AddStraightline(ci.cost, 1)
				}
			case cCmpFn:
				flag = regs[ci.reg] == ci.callee
				if mc.CPU != nil {
					// The compare fuses with its branch (macro-fusion);
					// the branch event carries the cycle.
					mc.CPU.AddStraightline(0, 1)
				}
			case cBr:
				var taken bool
				switch {
				case ci.trip > 0:
					cnt := trips[ci.tripIdx]
					if cnt < ci.trip-1 {
						trips[ci.tripIdx] = cnt + 1
						taken = true
					} else {
						trips[ci.tripIdx] = 0
						taken = false
					}
				case ci.useFlag:
					taken = flag
				default:
					taken = mc.RNG.Float32() < ci.prob
				}
				if mc.CPU != nil {
					mc.CPU.CondBranch(ci.addr, taken)
				}
				if taken {
					next = ci.then
				} else {
					next = ci.els
				}
			case cJmp:
				next = ci.then
			case cSwitch:
				k := mc.RNG.Intn(len(ci.targets))
				if mc.CPU != nil {
					if ci.table {
						mc.CPU.IndirectJump(ci.addr, int64(k), ci.def)
					} else {
						// Compare chain: one predicted compare+branch
						// per skipped case.
						for j := 0; j <= k && j < len(ci.targets)-1; j++ {
							mc.CPU.CondBranch(ci.addr+int64(j), j == k)
						}
					}
				}
				next = ci.targets[k]
			case cCall:
				if mc.Rec != nil {
					mc.Rec.direct(ci.orig, ci.callee)
				}
				if mc.CPU != nil {
					mc.CPU.DirectCall(ci.retAddr, ci.args)
				}
				if err := mc.call(ci.callee, depth+1, ci.retAddr); err != nil {
					return err
				}
			case cICall:
				tgt := regs[ci.reg]
				if tgt < 0 {
					return trap(f.name, "interp: %s: icall through unresolved register r%d (site %d)", f.name, ci.reg, ci.site)
				}
				if mc.Rec != nil {
					mc.Rec.indirect(ci.orig, tgt)
				}
				if mc.CPU != nil {
					handled := false
					if mc.Hook != nil && ci.def == ir.DefNone {
						handled = mc.Hook.Handle(mc.CPU, ci.orig, ci.addr, mc.Prog.funcs[tgt].addr, ci.retAddr, tgt)
					}
					if !handled {
						mc.CPU.IndirectCall(ci.addr, mc.Prog.funcs[tgt].addr, ci.retAddr, ci.args, ci.def)
					} else {
						// The hook charged dispatch; still push the
						// return address for backward-edge fidelity.
						mc.CPU.DirectCall(ci.retAddr, ci.args)
					}
				}
				if err := mc.call(tgt, depth+1, ci.retAddr); err != nil {
					return err
				}
			case cRet:
				if mc.CPU != nil {
					mc.CPU.Return(retAddr, ci.def)
				}
				return nil
			}
			if next >= 0 {
				break
			}
		}
		if next < 0 {
			return trap(f.name, "interp: %s: block %d fell through without terminator", f.name, bi)
		}
		bi = next
	}
}
