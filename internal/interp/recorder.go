package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/prof"
)

// Recorder accumulates profiling counts during execution. It is the
// in-process stand-in for PIBE's Last-Branch-Record-based kernel profiler:
// counts are kept per original call site and lifted to a prof.Profile
// keyed by the site identity the optimization run will see.
type Recorder struct {
	prog        *Program
	direcCounts map[ir.SiteID]uint64
	indirCounts map[ir.SiteID]map[int32]uint64
	invocations []uint64
	ops         uint64
}

// NewRecorder returns a Recorder for the given program.
func NewRecorder(p *Program) *Recorder {
	return &Recorder{
		prog:        p,
		direcCounts: make(map[ir.SiteID]uint64),
		indirCounts: make(map[ir.SiteID]map[int32]uint64),
		invocations: make([]uint64, p.NumFuncs()),
	}
}

func (r *Recorder) invoke(fi int32) { r.invocations[fi]++ }

func (r *Recorder) direct(orig ir.SiteID, callee int32) { r.direcCounts[orig]++ }

func (r *Recorder) indirect(orig ir.SiteID, target int32) {
	m := r.indirCounts[orig]
	if m == nil {
		m = make(map[int32]uint64)
		r.indirCounts[orig] = m
	}
	m[target]++
}

// AddOps notes that n workload operations were executed while recording.
func (r *Recorder) AddOps(n uint64) { r.ops += n }

// Profile lifts the recorded counts into a prof.Profile. The module that
// produced the recordings supplies each site's caller and static callee;
// a recorded site that no longer exists in the module is an internal
// inconsistency and returns an error.
func (r *Recorder) Profile() (*prof.Profile, error) {
	type siteInfo struct {
		caller string
		callee string // direct callee, "" for indirect
	}
	sites := make(map[ir.SiteID]siteInfo)
	for _, f := range r.prog.mod.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpCall:
					sites[in.Orig] = siteInfo{caller: f.Name, callee: in.Callee}
				case ir.OpICall:
					if _, seen := sites[in.Orig]; !seen {
						sites[in.Orig] = siteInfo{caller: f.Name}
					}
				}
			}
		}
	}
	p := prof.New()
	p.Ops = r.ops
	for id, n := range r.direcCounts {
		info, ok := sites[id]
		if !ok {
			return nil, fmt.Errorf("interp: recorded direct site %d not present in module", id)
		}
		p.AddDirect(id, info.caller, info.callee, n)
	}
	for id, targets := range r.indirCounts {
		info, ok := sites[id]
		if !ok {
			return nil, fmt.Errorf("interp: recorded indirect site %d not present in module", id)
		}
		for tgt, n := range targets {
			p.AddIndirect(id, info.caller, r.prog.FuncName(int(tgt)), n)
		}
	}
	for fi, n := range r.invocations {
		if n > 0 {
			p.AddInvocation(r.prog.FuncName(fi), n)
		}
	}
	return p, nil
}
