// Threaded-code compilation tier.
//
// The packed-event interpreter (interp.go) still pays a switch dispatch,
// a bounds-checked event fetch and several cpu.Model method calls per
// control-flow event. This file adds a second execution tier that
// removes all three: each cblock is pre-compiled into a chain of Go
// closures (classic threaded code — the standard pure-Go answer to
// having no runtime codegen), so steady-state execution runs
// closure-to-closure through a two-instruction driver loop
// (`for op != nil { op = op(vm) }`) with every compile-time constant —
// addresses, costs, branch thresholds, defense kinds, callee identities
// — captured in the closure instead of fetched and decoded per event.
//
// Cycle accounting is folded into the chain: the VM borrows the
// cpu.Model's predictor and cache state (cpu.EngineState) for the
// duration of a run and applies the model's own update rules inline,
// with Cycles/Stats accumulating in VM-local fields written back at
// exit. Because every charge is a pure sum and the order-sensitive
// state (BTB/PHT slots, RSB cursor, LRU stamps) is updated through the
// same arrays with the same rules in the same sequence, the compiled
// tier is cycle-exact against the interpreter — a property the
// equivalence tests, FuzzCompiledEquivalence and the diffcheck
// engine-vs-engine gate all enforce.
//
// Superinstruction fusion: the profile work in PR 4/5 identified the
// hot event shapes on the syscall path — straight-line segments ending
// in a return ("step,ret" leaf helpers), direct calls into those
// helpers, resolve feeding an indirect call, and block-entry accounting
// feeding a terminator. Each is fused here:
//
//   - call->leaf and icall->leaf: a call whose callee is a call-free
//     straight-line body executes the whole callee (segment charges,
//     icache touches, the return) inside the caller's closure, from a
//     data-driven leaf descriptor — no frame push, no dispatch.
//   - resolve+icall: one closure draws the target and dispatches it,
//     skipping the register round-trip decode.
//   - block-entry accounting (step/fuel check plus batched segment
//     charge or per-event icache touch) is a compile-time prefix baked
//     into the first event's closure, as is every superblock seam
//     (cStep) for the event that follows it.
//
// The tier is opt-in (Machine.Engine) and conservative: machines with a
// Recorder, ICallHook, Injector, replaced RNG or ExactAccounting fall
// back to the interpreter silently — those paths observe per-event
// execution and the compiled chain does not expose it. OnResolve is
// supported (diffcheck depends on it).
package interp

import (
	"errors"
	"unsafe"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/resilience"
)

// Engine selects the execution tier a Machine uses.
type Engine uint8

const (
	// EngineInterp is the packed-event interpreter — the reference tier.
	EngineInterp Engine = iota
	// EngineCompiled is the threaded-code tier. Machines that carry
	// state the compiled chain cannot observe (recorder, hook, injector,
	// replaced RNG, ExactAccounting) fall back to the interpreter.
	EngineCompiled
)

// ParseEngine parses an engine name as used by the -engine CLI flag.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "interp":
		return EngineInterp, nil
	case "compiled":
		return EngineCompiled, nil
	}
	return EngineInterp, errors.New("interp: unknown engine " + s + " (want interp or compiled)")
}

func (e Engine) String() string {
	if e == EngineCompiled {
		return "compiled"
	}
	return "interp"
}

// errEngineUnavailable reports that the borrowed-state view could not be
// established (exotic icache geometry); the caller falls back to the
// interpreter for this run.
var errEngineUnavailable = errors.New("interp: compiled engine unavailable for this cpu model")

// cop is one compiled operation: execute, return the next operation.
// nil ends the run (vm.err distinguishes completion from fault).
type cop func(vm *cvm) cop

// compiled is the threaded-code form of a Program, built once per
// Program on first use and shared by every Machine running it (closures
// capture only compile-time constants; all mutable state lives in the
// per-machine cvm).
type compiled struct {
	funcs []cfn
	addrs []int64 // function base addresses, indexed like funcs
}

// cfn is one compiled function.
type cfn struct {
	name     string
	index    int32
	numRegs  int
	numTrips int
	// entries holds the entry closure of each block; branch closures
	// capture pointers into it so cyclic control flow resolves lazily.
	entries []cop
	entry0  cop
	// leaf describes a call-free straight-line body ending in a return;
	// call sites execute it inline instead of entering the function.
	leaf *leafBody
	// flatEntries/flatEntry0 are a second compilation of call-free
	// functions whose return ends a nested driver loop instead of
	// popping a frame; call sites run them on scratch registers with no
	// frame push at all (the compiled analogue of the interpreter's
	// frameless runFlat path). nil for functions that make calls.
	flatEntries []cop
	flatEntry0  cop
}

// leafSeg is one straight-line segment of a leaf body: a block entry or
// superblock seam — one step/fuel sequence point plus its batched
// charge and icache touch.
type leafSeg struct {
	cost, count int64
	lineBase    int64
	nLines      int
}

// leafBody is the data-driven description of a leaf function, executed
// inline at fused call sites.
type leafBody struct {
	name   string
	segs   []leafSeg
	retDef ir.Defense
}

// cframe is a suspended caller on the compiled VM's frame stack.
type cframe struct {
	regs    []int32
	trips   []int32
	flag    bool
	retAddr int64
	cont    cop
}

// regFile is the pooled register/trip storage for one call depth —
// one buffer so a frame install is a single capacity check and clear.
type regFile struct {
	buf []int32
}

// cvm is the per-machine state of the compiled tier. The hot fields are
// plain scalars and slice headers so closures touch one pointer (vm)
// plus fixed offsets; cpu parameters are hoisted out of the model at
// run entry so no closure reads through Model.P.
type cvm struct {
	// borrowed model state (slices alias the model's arrays)
	st cpu.EngineState

	// hoisted model parameters
	mispredict       int64
	icMissPenalty    int64
	directCallCost   int64
	callArgCost      int64
	returnCost       int64
	indirectCallCost int64
	condBranchCost   int64
	retpolineCost    int64
	lviForwardCost   int64
	fencedRetpCost   int64
	retRetpCost      int64
	lviReturnCost    int64
	fencedRetRetCost int64
	cfiCheckCost     int64
	stackProtCost    int64
	safeStackCost    int64
	fineIBTCost      int64
	pacSignCost      int64
	pacAuthCost      int64
	veriFenceCost    int64
	rsbRefillCost    int64
	alignMask        int64 // ^(ICacheLine-1)
	icLine           int64

	// execution state
	steps     int64
	maxSteps  int64
	maxDepth  int
	depth     int
	src       *fastSource
	res       *Resolver
	onResolve func(orig ir.SiteID, target int32)
	cp        *compiled
	err       error

	// current frame
	regs    []int32
	trips   []int32
	flag    bool
	retAddr int64

	stack []cframe
	pool  []regFile

	// scratch register file for the frameless flat-call path. Flat
	// functions are call-free, so at most one is live at a time.
	flatRegs  []int32
	flatTrips []int32

	// model is the Model the view and hoisted parameters were taken
	// from; runs against the same model re-borrow with EngineSync.
	model *cpu.Model

	// Pointer-hoisted icache arrays. The touch probe is the hottest
	// operation in the engine, and going through the borrowed slice
	// headers costs three bounds checks plus reloads the compiler
	// cannot elide (stores through one borrowed slice may alias the
	// others). The raw-pointer form is sound because every index is
	// provably in bounds: set <= icSetMask = sets-1 < len(ICMRU), and
	// mru = set*ways + way < sets*ways = len(ICTags) since MRU entries
	// only ever hold way indices in [0, ways) — both the model and
	// touchSlow write int32(w) with w < ways. runCompiled checks the
	// geometry (ways >= 1, len(ICTags) == sets*ways) once before
	// installing these.
	icMRUP    unsafe.Pointer // &ICMRU[0]  ([]int32)
	icTagsP   unsafe.Pointer // &ICTags[0] ([]int64)
	icStampP  unsafe.Pointer // &ICStamp[0] ([]int64)
	icSetMask uint64         // len(ICMRU)-1 == cpu icMask
	icShiftN  uint64
	icWaysN   uintptr

	// rsbP is &RSB[0], same treatment: the cursor invariant
	// RSBTop in [0, RSBDepth) with len(RSB) == RSBDepth (gated in
	// runCompiled) keeps every access in bounds.
	rsbP unsafe.Pointer
}

// --- inlined cpu.Model operations ----------------------------------
//
// Each mirrors the corresponding Model method exactly (cpu.go is the
// source of truth); TestEngineStateMatchesModel in cpu and the
// equivalence tests here pin the behaviour.

func (vm *cvm) pushRSB(ret int64) {
	top := vm.st.RSBTop + 1
	if top == vm.st.RSBDepth {
		top = 0
	}
	*(*int64)(unsafe.Add(vm.rsbP, uintptr(top)*8)) = ret
	vm.st.RSBTop = top
	if vm.st.RSBLen < vm.st.RSBDepth {
		vm.st.RSBLen++
	}
}

func (vm *cvm) popRSB() (int64, bool) {
	if vm.st.RSBLen == 0 {
		return 0, false
	}
	top := vm.st.RSBTop
	v := *(*int64)(unsafe.Add(vm.rsbP, uintptr(top)*8))
	top--
	if top < 0 {
		top = vm.st.RSBDepth - 1
	}
	vm.st.RSBTop = top
	vm.st.RSBLen--
	return v, true
}

func (vm *cvm) refillRSB() {
	const benign = 0x7fffff00
	for i := 0; i < vm.st.RSBDepth; i++ {
		vm.pushRSB(benign)
	}
	vm.st.RSBLen = vm.st.RSBDepth
	vm.st.Cycles += vm.rsbRefillCost
}

// touchProbe is the set-indexed MRU probe — the dominant icache path.
// It is small enough to inline into every closure that touches a line;
// misses fall to touchSlow. line must already be line-aligned. It uses
// the pointer-hoisted arrays (see the cvm field comment for the
// in-bounds argument); the masked set index is value-identical to the
// model's `& icMask` since icSetMask == len(ICMRU)-1 == icMask.
func (vm *cvm) touchProbe(line int64) bool {
	set := uintptr(uint64(line>>vm.icShiftN) & vm.icSetMask)
	mru := set*vm.icWaysN + uintptr(*(*int32)(unsafe.Add(vm.icMRUP, set*4)))
	if *(*int64)(unsafe.Add(vm.icTagsP, mru*8)) == line {
		vm.st.Stats.ICacheHits++
		*(*int64)(unsafe.Add(vm.icStampP, mru*8)) = vm.st.ICTick
		vm.st.ICTick++
		return true
	}
	return false
}

// touchSlow is the tag scan and fill, mirroring Model.touchLineSlow for
// power-of-two line sizes (EngineView guarantees icShift >= 0).
func (vm *cvm) touchSlow(line int64) {
	set := uintptr(uint64(line>>vm.icShiftN) & vm.icSetMask)
	ways := vm.icWaysN
	tags := unsafe.Add(vm.icTagsP, set*ways*8)
	stamp := unsafe.Add(vm.icStampP, set*ways*8)
	victim := uintptr(0)
	victimStamp := *(*int64)(stamp)
	for w := uintptr(0); w < ways; w++ {
		if *(*int64)(unsafe.Add(tags, w*8)) == line {
			vm.st.Stats.ICacheHits++
			*(*int64)(unsafe.Add(stamp, w*8)) = vm.st.ICTick
			vm.st.ICTick++
			*(*int32)(unsafe.Add(vm.icMRUP, set*4)) = int32(w)
			return
		}
		if s := *(*int64)(unsafe.Add(stamp, w*8)); s < victimStamp {
			victim, victimStamp = w, s
		}
	}
	vm.st.Stats.ICacheMisses++
	vm.st.Cycles += vm.icMissPenalty
	*(*int64)(unsafe.Add(tags, victim*8)) = line
	*(*int64)(unsafe.Add(stamp, victim*8)) = vm.st.ICTick
	vm.st.ICTick++
	*(*int32)(unsafe.Add(vm.icMRUP, set*4)) = int32(victim)
}

// touchN touches n consecutive lines starting at base (re-aligned, as
// Model.TouchLines does — the model's line size may differ from the
// 64-byte layout granularity blocks were compiled with). The probe is
// written out with the slice headers hoisted to locals so they stay in
// registers across the loop (stores through the borrowed slices defeat
// the compiler's alias analysis otherwise).
func (vm *cvm) touchN(base int64, n int) {
	line := base & vm.alignMask
	mruP, tagsP, stampP := vm.icMRUP, vm.icTagsP, vm.icStampP
	shift, setMask, ways := vm.icShiftN, vm.icSetMask, vm.icWaysN
	for i := 0; i < n; i++ {
		set := uintptr(uint64(line>>shift) & setMask)
		mru := set*ways + uintptr(*(*int32)(unsafe.Add(mruP, set*4)))
		if *(*int64)(unsafe.Add(tagsP, mru*8)) == line {
			vm.st.Stats.ICacheHits++
			*(*int64)(unsafe.Add(stampP, mru*8)) = vm.st.ICTick
			vm.st.ICTick++
		} else {
			vm.touchSlow(line)
		}
		line += vm.icLine
	}
}

// condBranch mirrors Model.CondBranch; used by the (rare) switch
// compare-chain. Hot branch closures inline the same logic directly.
func (vm *cvm) condBranch(addr int64, taken bool) {
	slot := addr & vm.st.PHTMask
	ctr := vm.st.PHT[slot]
	if (ctr >= 2) == taken {
		vm.st.Stats.PHTHits++
		vm.st.Cycles += vm.condBranchCost
	} else {
		vm.st.Stats.PHTMisses++
		vm.st.Cycles += vm.condBranchCost + vm.mispredict
	}
	if taken {
		if ctr < 3 {
			vm.st.PHT[slot] = ctr + 1
		}
	} else if ctr > 0 {
		vm.st.PHT[slot] = ctr - 1
	}
}

// icallDef charges a defended indirect call (everything in
// Model.IndirectCall's switch except DefNone, which call closures
// inline). The argument cost and RSB push stay at the call site.
func (vm *cvm) icallDef(siteAddr, targetAddr int64, def ir.Defense) {
	switch def {
	case ir.DefRetpoline:
		vm.st.Stats.ThunkedCalls++
		vm.st.Cycles += vm.retpolineCost
	case ir.DefLVI:
		vm.st.Stats.ThunkedCalls++
		slot := siteAddr & vm.st.BTBMask
		if vm.st.BTB[slot] == targetAddr {
			vm.st.Stats.BTBHits++
			vm.st.Cycles += vm.indirectCallCost + vm.lviForwardCost
		} else {
			vm.st.Stats.BTBMisses++
			vm.st.Cycles += vm.indirectCallCost + vm.lviForwardCost + vm.mispredict
			vm.st.BTB[slot] = targetAddr
		}
	case ir.DefFencedRetpoline:
		vm.st.Stats.ThunkedCalls++
		vm.st.Cycles += vm.fencedRetpCost
	case ir.DefLLVMCFI:
		slot := siteAddr & vm.st.BTBMask
		if vm.st.BTB[slot] == targetAddr {
			vm.st.Stats.BTBHits++
			vm.st.Cycles += vm.indirectCallCost + vm.cfiCheckCost
		} else {
			vm.st.Stats.BTBMisses++
			vm.st.Cycles += vm.indirectCallCost + vm.cfiCheckCost + vm.mispredict
			vm.st.BTB[slot] = targetAddr
		}
	case ir.DefFineIBT, ir.DefPAC, ir.DefVeriFence:
		// Hardware-assisted checks over a BTB-predicted dispatch; only
		// the flat check cost differs (Model.IndirectCall's three cases).
		extra := vm.fineIBTCost
		switch def {
		case ir.DefPAC:
			extra = vm.pacSignCost
		case ir.DefVeriFence:
			extra = vm.veriFenceCost
		}
		vm.st.Stats.ThunkedCalls++
		slot := siteAddr & vm.st.BTBMask
		if vm.st.BTB[slot] == targetAddr {
			vm.st.Stats.BTBHits++
			vm.st.Cycles += vm.indirectCallCost + extra
		} else {
			vm.st.Stats.BTBMisses++
			vm.st.Cycles += vm.indirectCallCost + extra + vm.mispredict
			vm.st.BTB[slot] = targetAddr
		}
	default:
		vm.st.Stats.ThunkedCalls++
		vm.st.Cycles += vm.fencedRetpCost
	}
}

// retSlow charges a defended return; Returns++ and the RSB pop already
// happened at the site (the pop precedes the defense switch in
// Model.Return).
func (vm *cvm) retSlow(predicted int64, ok bool, retAddr int64, def ir.Defense) {
	switch def {
	case ir.DefRetRetpoline:
		vm.st.Stats.ThunkedRets++
		vm.st.Cycles += vm.retRetpCost
	case ir.DefLVIRet:
		vm.st.Stats.ThunkedRets++
		if ok && predicted == retAddr {
			vm.st.Stats.RSBHits++
			vm.st.Cycles += vm.returnCost + vm.lviReturnCost
		} else {
			vm.st.Stats.RSBMisses++
			vm.st.Cycles += vm.returnCost + vm.lviReturnCost + vm.mispredict
		}
	case ir.DefFencedRetRet:
		vm.st.Stats.ThunkedRets++
		vm.st.Cycles += vm.fencedRetRetCost
	case ir.DefStackProtector, ir.DefSafeStack:
		extra := vm.stackProtCost
		if def == ir.DefSafeStack {
			extra = vm.safeStackCost
		}
		if ok && predicted == retAddr {
			vm.st.Stats.RSBHits++
			vm.st.Cycles += vm.returnCost + extra
		} else {
			vm.st.Stats.RSBMisses++
			vm.st.Cycles += vm.returnCost + extra + vm.mispredict
		}
	case ir.DefPACRet:
		vm.st.Stats.ThunkedRets++
		if ok && predicted == retAddr {
			vm.st.Stats.RSBHits++
			vm.st.Cycles += vm.returnCost + vm.pacAuthCost
		} else {
			vm.st.Stats.RSBMisses++
			vm.st.Cycles += vm.returnCost + vm.pacAuthCost + vm.mispredict
		}
	default:
		vm.st.Stats.ThunkedRets++
		vm.st.Cycles += vm.fencedRetRetCost
	}
}

// ijump mirrors Model.IndirectJump (jump-table switches are rare enough
// that the defense switch stays a method call).
func (vm *cvm) ijump(siteAddr, targetAddr int64, def ir.Defense) {
	switch def {
	case ir.DefNone:
		slot := siteAddr & vm.st.BTBMask
		if vm.st.BTB[slot] == targetAddr {
			vm.st.Stats.BTBHits++
			vm.st.Cycles += vm.indirectCallCost
		} else {
			vm.st.Stats.BTBMisses++
			vm.st.Cycles += vm.indirectCallCost + vm.mispredict
			vm.st.BTB[slot] = targetAddr
		}
	case ir.DefRetpoline:
		vm.st.Cycles += vm.retpolineCost
	case ir.DefVeriFence:
		slot := siteAddr & vm.st.BTBMask
		if vm.st.BTB[slot] == targetAddr {
			vm.st.Stats.BTBHits++
			vm.st.Cycles += vm.indirectCallCost + vm.veriFenceCost
		} else {
			vm.st.Stats.BTBMisses++
			vm.st.Cycles += vm.indirectCallCost + vm.veriFenceCost + vm.mispredict
			vm.st.BTB[slot] = targetAddr
		}
	default:
		vm.st.Cycles += vm.fencedRetpCost
	}
}

// --- faults ---------------------------------------------------------

func (vm *cvm) fuelFault(name string) cop {
	vm.err = resilience.Faultf(resilience.PhaseExecute, resilience.KindFuelExhausted, name,
		"interp: step budget exhausted in %s", name)
	return nil
}

func (vm *cvm) depthFault(name string) cop {
	vm.err = resilience.Faultf(resilience.PhaseExecute, resilience.KindDepthExhausted, name,
		"interp: call depth exceeds %d at %s", vm.maxDepth, name)
	return nil
}

// --- frame protocol -------------------------------------------------

// enter suspends the current frame and installs a fresh one for cf,
// mirroring pushFrame (depth check, cleared registers/trips). cont is
// the closure to resume the caller at after cf returns.
func (vm *cvm) enter(cf *cfn, retAddr int64, cont cop) cop {
	d := vm.depth + 1
	if d >= vm.maxDepth {
		return vm.depthFault(cf.name)
	}
	if vm.depth >= len(vm.stack) {
		vm.stack = append(vm.stack, make([]cframe, vm.depth+1-len(vm.stack))...)
	}
	fr := &vm.stack[vm.depth]
	fr.regs, fr.trips, fr.flag, fr.retAddr, fr.cont = vm.regs, vm.trips, vm.flag, vm.retAddr, cont
	vm.installFrame(cf, d, retAddr)
	return cf.entry0
}

// installFrame points the VM's live register state at the pooled file
// for depth d, cleared for cf.
func (vm *cvm) installFrame(cf *cfn, d int, retAddr int64) {
	for d >= len(vm.pool) {
		vm.pool = append(vm.pool, regFile{})
	}
	p := &vm.pool[d]
	need := cf.numRegs + cf.numTrips
	if cap(p.buf) < need {
		p.buf = make([]int32, need+16)
	}
	buf := p.buf[:need]
	clear(buf)
	vm.regs, vm.trips = buf[:cf.numRegs], buf[cf.numRegs:]
	vm.flag = false
	vm.retAddr = retAddr
	vm.depth = d
}

// runLeaf executes a leaf body inline at a call site: the exact
// observable sequence of runFlat for this shape — depth check, one
// step/fuel sequence point plus batched charge and icache touch per
// segment, then the return — with no frame and no dispatch. The caller
// has already charged the call itself. next resumes the caller.
func (vm *cvm) runLeaf(lb *leafBody, retAddr int64, next cop) cop {
	if vm.depth+1 >= vm.maxDepth {
		return vm.depthFault(lb.name)
	}
	if n := int64(len(lb.segs)); vm.steps+n <= vm.maxSteps {
		// Whole body fits in the fuel budget: one steps update, no
		// per-segment checks. End state is identical to the careful
		// path (charges are pure sums, touches stay in order).
		vm.steps += n
		for i := range lb.segs {
			s := &lb.segs[i]
			vm.st.Cycles += s.cost
			vm.st.Stats.Instructions += s.count
			if s.nLines == 1 {
				line := s.lineBase & vm.alignMask
				if !vm.touchProbe(line) {
					vm.touchSlow(line)
				}
			} else {
				vm.touchN(s.lineBase, s.nLines)
			}
		}
	} else {
		for i := range lb.segs {
			s := &lb.segs[i]
			vm.steps++
			if vm.steps > vm.maxSteps {
				return vm.fuelFault(lb.name)
			}
			vm.st.Cycles += s.cost
			vm.st.Stats.Instructions += s.count
			if s.nLines == 1 {
				line := s.lineBase & vm.alignMask
				if !vm.touchProbe(line) {
					vm.touchSlow(line)
				}
			} else {
				vm.touchN(s.lineBase, s.nLines)
			}
		}
	}
	vm.st.Stats.Returns++
	predicted, ok := vm.popRSB()
	if lb.retDef == ir.DefNone {
		if ok && predicted == retAddr {
			vm.st.Stats.RSBHits++
			vm.st.Cycles += vm.returnCost
		} else {
			vm.st.Stats.RSBMisses++
			vm.st.Cycles += vm.returnCost + vm.mispredict
		}
	} else {
		vm.retSlow(predicted, ok, retAddr, lb.retDef)
	}
	return next
}

// runFlatInline executes a call-free function at a call site with no
// frame push: the current frame's register pointers are parked in
// locals, the callee runs on the VM's scratch file through a nested
// driver loop over its flat-compiled chain (whose return closure ends
// the loop instead of popping a frame), and the caller's pointers are
// put back. Mirrors the interpreter's runFlat, including the depth
// check. next resumes the caller; nil propagates a fault.
func (vm *cvm) runFlatInline(cf *cfn, retAddr int64, next cop) cop {
	if vm.depth+1 >= vm.maxDepth {
		return vm.depthFault(cf.name)
	}
	sRegs, sTrips, sFlag, sRet := vm.regs, vm.trips, vm.flag, vm.retAddr
	if cap(vm.flatRegs) < cf.numRegs {
		vm.flatRegs = make([]int32, cf.numRegs+16)
	}
	regs := vm.flatRegs[:cf.numRegs]
	clear(regs)
	if cap(vm.flatTrips) < cf.numTrips {
		vm.flatTrips = make([]int32, cf.numTrips+16)
	}
	trips := vm.flatTrips[:cf.numTrips]
	clear(trips)
	vm.regs, vm.trips, vm.flag, vm.retAddr = regs, trips, false, retAddr
	for op := cf.flatEntry0; op != nil; op = op(vm) {
	}
	vm.regs, vm.trips, vm.flag, vm.retAddr = sRegs, sTrips, sFlag, sRet
	if vm.err != nil {
		return nil
	}
	return next
}

// --- compilation ----------------------------------------------------

// compiledProgram builds (once) and returns the threaded-code form.
func (p *Program) compiledProgram() *compiled {
	p.compileOnce.Do(func() {
		p.compiledP = compileProgram(p)
	})
	return p.compiledP
}

func compileProgram(p *Program) *compiled {
	cp := &compiled{
		funcs: make([]cfn, len(p.funcs)),
		addrs: make([]int64, len(p.funcs)),
	}
	for i := range p.funcs {
		src := &p.funcs[i]
		cp.addrs[i] = src.addr
		f := cfn{
			name:     src.name,
			index:    int32(i),
			numRegs:  src.numRegs,
			numTrips: src.numTrips,
			entries:  make([]cop, len(src.blocks)),
			leaf:     leafOf(src),
		}
		if src.flat && f.leaf == nil && len(src.blocks) > 0 {
			f.flatEntries = make([]cop, len(src.blocks))
		}
		cp.funcs[i] = f
	}
	for i := range p.funcs {
		compileFn(cp, p, int32(i))
	}
	for i := range cp.funcs {
		f := &cp.funcs[i]
		if len(f.entries) > 0 {
			f.entry0 = f.entries[0]
		} else {
			name := f.name
			f.entry0 = func(vm *cvm) cop {
				vm.err = trap(name, "interp: %s: block 0 fell through without terminator", name)
				return nil
			}
		}
		if f.flatEntries != nil {
			f.flatEntry0 = f.flatEntries[0]
		}
	}
	return cp
}

// leafOf recognises functions whose merged entry chain is pure
// straight-line code ending in a return — the "step,ret" shape the
// profiler identifies as the hottest callee — and builds the inline
// descriptor. Flatness guarantees no segment may fault, so every
// segment charge is batched, exactly as the interpreter batches them.
func leafOf(f *cfunc) *leafBody {
	if !f.flat || len(f.blocks) == 0 {
		return nil
	}
	b := &f.blocks[0]
	n := len(b.instrs)
	if n == 0 || b.instrs[n-1].kind != cRet {
		return nil
	}
	ret := &b.instrs[n-1]
	if ret.charged && ret.preCount != 0 {
		return nil // per-event segment; keep the generic path
	}
	for i := 0; i < n-1; i++ {
		ci := &b.instrs[i]
		if ci.kind != cStep || ci.useFlag || (ci.charged && ci.preCount != 0) {
			return nil
		}
	}
	if b.mayFault {
		return nil
	}
	segs := make([]leafSeg, 0, n)
	segs = append(segs, leafSeg{int64(b.segCost), int64(b.segCount), int64(b.lineBase), int(b.nLines)})
	for i := 0; i < n-1; i++ {
		ci := &b.instrs[i]
		segs = append(segs, leafSeg{int64(ci.cost), int64(ci.els), int64(ci.addr), int(ci.then)})
	}
	return &leafBody{name: f.name, segs: segs, retDef: ret.def}
}

// segPre describes the accounting prefix baked before an event's
// closure: a block entry or superblock seam — an optional charged run
// from the preceding segment, one step/fuel sequence point, then either
// the segment's batched charge+touch or (for may-fault segments whose
// runs are charged per event) an icache touch alone.
type segPre struct {
	name       string
	preCost    int64 // charged run before a merged jump (cStep only)
	preCount   int64
	batched    bool // segment cannot fault: charge cost/count at entry
	cost       int64
	count      int64
	lineBase   int64
	nLines     int
}

// fuse bakes a prefix in front of a body closure. The prefix and body
// execute under one driver dispatch — the block-entry+terminator
// superinstruction for single-event blocks.
func fuse(pre *segPre, body cop) cop {
	if pre == nil {
		return body
	}
	p := *pre
	if p.batched && p.nLines == 1 && p.preCount == 0 {
		// The dominant prefix: single-line, cannot-fault segment.
		name, cost, count, lb := p.name, p.cost, p.count, p.lineBase
		return func(vm *cvm) cop {
			vm.steps++
			if vm.steps > vm.maxSteps {
				return vm.fuelFault(name)
			}
			vm.st.Cycles += cost
			vm.st.Stats.Instructions += count
			line := lb & vm.alignMask
			if !vm.touchProbe(line) {
				vm.touchSlow(line)
			}
			return body(vm)
		}
	}
	return func(vm *cvm) cop {
		if p.preCount != 0 {
			vm.st.Cycles += p.preCost
			vm.st.Stats.Instructions += p.preCount
		}
		vm.steps++
		if vm.steps > vm.maxSteps {
			return vm.fuelFault(p.name)
		}
		if p.batched {
			vm.st.Cycles += p.cost
			vm.st.Stats.Instructions += p.count
		}
		if p.nLines == 1 {
			line := p.lineBase & vm.alignMask
			if !vm.touchProbe(line) {
				vm.touchSlow(line)
			}
		} else {
			vm.touchN(p.lineBase, p.nLines)
		}
		return body(vm)
	}
}

func compileFn(cp *compiled, p *Program, fi int32) {
	src := &p.funcs[fi]
	f := &cp.funcs[fi]
	for bi := range src.blocks {
		f.entries[bi] = compileBlock(cp, src, f, bi, f.entries, false)
	}
	// Flat functions get a second chain whose return ends a nested
	// driver loop; branch closures target the flat entries so control
	// never escapes into the framed chain mid-run.
	if f.flatEntries != nil {
		for bi := range src.blocks {
			f.flatEntries[bi] = compileBlock(cp, src, f, bi, f.flatEntries, true)
		}
	}
}

func compileBlock(cp *compiled, src *cfunc, f *cfn, bi int, entries []cop, flatRet bool) cop {
	b := &src.blocks[bi]
	name := src.name

	// Pass 1: split the merged event list into (prefix, event) pairs.
	// cStep events become the prefix of the event that follows them;
	// the block's own entry accounting is the prefix of the first.
	type item struct {
		pre *segPre
		ci  *cinstr
	}
	entryPre := &segPre{
		name:     name,
		batched:  !b.mayFault,
		cost:     int64(b.segCost),
		count:    int64(b.segCount),
		lineBase: int64(b.lineBase),
		nLines:   int(b.nLines),
	}
	var items []item
	pending := entryPre
	for ii := range b.instrs {
		ci := &b.instrs[ii]
		if ci.kind == cStep {
			sp := &segPre{
				name:     name,
				batched:  !ci.useFlag,
				cost:     int64(ci.cost),
				count:    int64(ci.els),
				lineBase: int64(ci.addr),
				nLines:   int(ci.then),
			}
			if ci.charged {
				sp.preCost = int64(ci.preCost)
				sp.preCount = int64(ci.preCount)
			}
			if pending != nil {
				// Two seams back-to-back cannot happen (a cStep is always
				// followed by the target's events before the next seam),
				// but keep the earlier prefix as a standalone op if it does.
				items = append(items, item{pre: pending})
			}
			pending = sp
			continue
		}
		items = append(items, item{pre: pending, ci: ci})
		pending = nil
	}
	if pending != nil {
		items = append(items, item{pre: pending})
	}

	// Fall-off closure: reached only when the block has no terminator.
	tailBI := bi
	chargeTail := b.mayFault && b.tailCount != 0
	tc, tn := int64(b.tailCost), int64(b.tailCount)
	next := cop(func(vm *cvm) cop {
		if chargeTail {
			vm.st.Cycles += tc
			vm.st.Stats.Instructions += tn
		}
		vm.err = trap(name, "interp: %s: block %d fell through without terminator", name, tailBI)
		return nil
	})

	// Pass 2: build closures back-to-front so each captures its
	// successor directly. Resolve+icall pairs fuse into one closure.
	for k := len(items) - 1; k >= 0; k-- {
		it := items[k]
		if it.ci == nil {
			next = fuse(it.pre, next)
			continue
		}
		if it.ci.kind == cICall && k > 0 && items[k-1].ci != nil &&
			items[k-1].ci.kind == cResolve && it.pre == nil && items[k-1].ci.reg == it.ci.reg {
			// Fused into the preceding resolve (compiled next iteration);
			// `next` stays pointing at the chain after this icall, which
			// is exactly the fused pair's continuation.
			continue
		}
		if it.ci.kind == cResolve && k+1 < len(items) &&
			items[k+1].ci != nil && items[k+1].ci.kind == cICall &&
			items[k+1].pre == nil && items[k+1].ci.reg == it.ci.reg {
			next = genResolveICall(cp, f, it.pre, it.ci, items[k+1].ci, name, next)
			continue
		}
		next = genEvent(cp, src, f, it.pre, it.ci, name, next, entries, flatRet)
	}
	return next
}

// genResolveICall emits the fused resolve+icall superinstruction.
func genResolveICall(cp *compiled, f *cfn, pre *segPre, res *cinstr, ic *cinstr, name string, next cop) cop {
	// resolve constants
	orig, site, reg := res.orig, res.site, int(res.reg)
	resCost := int64(res.cost)
	resPreCost, resPreCount := chargeOf(res)
	// icall constants (the run between resolve and icall, if any)
	icPreCost, icPreCount := chargeOf(ic)
	icAddr := int64(ic.addr)
	icRet := int64(ic.els)
	icArgs := int64(ic.args)
	icSite := ic.site
	icDef := ic.def
	defNone := icDef == ir.DefNone
	return fuse(pre, func(vm *cvm) cop {
		if resPreCount != 0 {
			vm.st.Cycles += resPreCost
			vm.st.Stats.Instructions += resPreCount
		}
		var d *Dist
		if vm.res != nil {
			d = vm.res.Get(orig)
		}
		if d == nil {
			vm.err = trap(name, "interp: %s: no target distribution for site %d (orig %d)", name, site, orig)
			return nil
		}
		tgt := d.pickFast(vm.src)
		vm.regs[reg] = tgt + 1
		if vm.onResolve != nil {
			vm.onResolve(orig, tgt)
		}
		vm.st.Cycles += resCost
		vm.st.Stats.Instructions++
		if icPreCount != 0 {
			vm.st.Cycles += icPreCost
			vm.st.Stats.Instructions += icPreCount
		}
		if tgt < 0 {
			vm.err = trap(name, "interp: %s: icall through unresolved register r%d (site %d)", name, reg, icSite)
			return nil
		}
		vm.st.Stats.IndirectCalls++
		vm.st.Cycles += icArgs * vm.callArgCost
		ta := cp.addrs[tgt]
		if defNone {
			slot := icAddr & vm.st.BTBMask
			if vm.st.BTB[slot] == ta {
				vm.st.Stats.BTBHits++
				vm.st.Cycles += vm.indirectCallCost
			} else {
				vm.st.Stats.BTBMisses++
				vm.st.Cycles += vm.indirectCallCost + vm.mispredict
				vm.st.BTB[slot] = ta
			}
		} else {
			vm.icallDef(icAddr, ta, icDef)
		}
		vm.pushRSB(icRet)
		callee := &cp.funcs[tgt]
		if callee.leaf != nil {
			return vm.runLeaf(callee.leaf, icRet, next)
		}
		if callee.flatEntry0 != nil {
			return vm.runFlatInline(callee, icRet, next)
		}
		return vm.enter(callee, icRet, next)
	})
}

// chargeOf returns an event's per-event run charge (zero unless the
// segment is in per-event accounting mode).
func chargeOf(ci *cinstr) (int64, int64) {
	if ci.charged && ci.preCount != 0 {
		return int64(ci.preCost), int64(ci.preCount)
	}
	return 0, 0
}

func genEvent(cp *compiled, src *cfunc, f *cfn, pre *segPre, ci *cinstr, name string, next cop, entries []cop, flatRet bool) cop {
	pc, pn := chargeOf(ci)
	switch ci.kind {
	case cResolve:
		orig, site, reg := ci.orig, ci.site, int(ci.reg)
		cost := int64(ci.cost)
		return fuse(pre, func(vm *cvm) cop {
			if pn != 0 {
				vm.st.Cycles += pc
				vm.st.Stats.Instructions += pn
			}
			var d *Dist
			if vm.res != nil {
				d = vm.res.Get(orig)
			}
			if d == nil {
				vm.err = trap(name, "interp: %s: no target distribution for site %d (orig %d)", name, site, orig)
				return nil
			}
			tgt := d.pickFast(vm.src)
			vm.regs[reg] = tgt + 1
			if vm.onResolve != nil {
				vm.onResolve(orig, tgt)
			}
			vm.st.Cycles += cost
			vm.st.Stats.Instructions++
			return next
		})

	case cCmpFn:
		reg, want := int(ci.reg), ci.callee+1
		return fuse(pre, func(vm *cvm) cop {
			if pn != 0 {
				vm.st.Cycles += pc
				vm.st.Stats.Instructions += pn
			}
			vm.flag = vm.regs[reg] == want
			return next
		})

	case cBr:
		thenP := &entries[ci.then]
		elsP := &entries[ci.els]
		addr := int64(ci.addr)
		switch {
		case ci.trip > 0:
			tripIdx, tripMax := int(ci.tripIdx), ci.trip
			return fuse(pre, func(vm *cvm) cop {
				if pn != 0 {
					vm.st.Cycles += pc
					vm.st.Stats.Instructions += pn
				}
				var taken bool
				cnt := vm.trips[tripIdx]
				if cnt < tripMax-1 {
					vm.trips[tripIdx] = cnt + 1
					taken = true
				} else {
					vm.trips[tripIdx] = 0
				}
				slot := addr & vm.st.PHTMask
				ctr := vm.st.PHT[slot]
				if (ctr >= 2) == taken {
					vm.st.Stats.PHTHits++
					vm.st.Cycles += vm.condBranchCost
				} else {
					vm.st.Stats.PHTMisses++
					vm.st.Cycles += vm.condBranchCost + vm.mispredict
				}
				if taken {
					if ctr < 3 {
						vm.st.PHT[slot] = ctr + 1
					}
					return *thenP
				}
				if ctr > 0 {
					vm.st.PHT[slot] = ctr - 1
				}
				return *elsP
			})
		case ci.useFlag:
			return fuse(pre, func(vm *cvm) cop {
				if pn != 0 {
					vm.st.Cycles += pc
					vm.st.Stats.Instructions += pn
				}
				taken := vm.flag
				slot := addr & vm.st.PHTMask
				ctr := vm.st.PHT[slot]
				if (ctr >= 2) == taken {
					vm.st.Stats.PHTHits++
					vm.st.Cycles += vm.condBranchCost
				} else {
					vm.st.Stats.PHTMisses++
					vm.st.Cycles += vm.condBranchCost + vm.mispredict
				}
				if taken {
					if ctr < 3 {
						vm.st.PHT[slot] = ctr + 1
					}
					return *thenP
				}
				if ctr > 0 {
					vm.st.PHT[slot] = ctr - 1
				}
				return *elsP
			})
		default:
			thresh := uint32(ci.cost)
			return fuse(pre, func(vm *cvm) cop {
				if pn != 0 {
					vm.st.Cycles += pc
					vm.st.Stats.Instructions += pn
				}
				u := vm.src.Uint64()
				taken := uint32(u>>40) < thresh
				slot := addr & vm.st.PHTMask
				ctr := vm.st.PHT[slot]
				if (ctr >= 2) == taken {
					vm.st.Stats.PHTHits++
					vm.st.Cycles += vm.condBranchCost
				} else {
					vm.st.Stats.PHTMisses++
					vm.st.Cycles += vm.condBranchCost + vm.mispredict
				}
				if taken {
					if ctr < 3 {
						vm.st.PHT[slot] = ctr + 1
					}
					return *thenP
				}
				if ctr > 0 {
					vm.st.PHT[slot] = ctr - 1
				}
				return *elsP
			})
		}

	case cJmp:
		// Unmerged jump (cycle or chain budget); pure transfer.
		thenP := &entries[ci.then]
		return fuse(pre, func(vm *cvm) cop {
			if pn != 0 {
				vm.st.Cycles += pc
				vm.st.Stats.Instructions += pn
			}
			return *thenP
		})

	case cSwitch:
		targets := src.switchTargets[ci.callee]
		nT := uint64(len(targets))
		addr := int64(ci.addr)
		table, def := ci.table, ci.def
		return fuse(pre, func(vm *cvm) cop {
			if pn != 0 {
				vm.st.Cycles += pc
				vm.st.Stats.Instructions += pn
			}
			k := int(uint64nSrc(vm.src, nT))
			if table {
				vm.ijump(addr, int64(k), def)
			} else {
				for j := 0; j <= k && j < len(targets)-1; j++ {
					vm.condBranch(addr+int64(j), j == k)
				}
			}
			return entries[targets[k]]
		})

	case cCall:
		retC := int64(ci.els)
		args := int64(ci.args)
		callee := &cp.funcs[ci.callee]
		if lb := callee.leaf; lb != nil {
			// call->leaf superinstruction: charge the call, run the body
			// inline, resume at next — one dispatch for the whole call.
			return fuse(pre, func(vm *cvm) cop {
				if pn != 0 {
					vm.st.Cycles += pc
					vm.st.Stats.Instructions += pn
				}
				vm.st.Stats.DirectCalls++
				vm.st.Cycles += vm.directCallCost + args*vm.callArgCost
				vm.pushRSB(retC)
				return vm.runLeaf(lb, retC, next)
			})
		}
		if callee.flatEntries != nil {
			// call->flat: frameless nested run on scratch registers.
			return fuse(pre, func(vm *cvm) cop {
				if pn != 0 {
					vm.st.Cycles += pc
					vm.st.Stats.Instructions += pn
				}
				vm.st.Stats.DirectCalls++
				vm.st.Cycles += vm.directCallCost + args*vm.callArgCost
				vm.pushRSB(retC)
				return vm.runFlatInline(callee, retC, next)
			})
		}
		return fuse(pre, func(vm *cvm) cop {
			if pn != 0 {
				vm.st.Cycles += pc
				vm.st.Stats.Instructions += pn
			}
			vm.st.Stats.DirectCalls++
			vm.st.Cycles += vm.directCallCost + args*vm.callArgCost
			vm.pushRSB(retC)
			return vm.enter(callee, retC, next)
		})

	case cICall:
		reg := int(ci.reg)
		site := ci.site
		addr := int64(ci.addr)
		retC := int64(ci.els)
		args := int64(ci.args)
		def := ci.def
		defNone := def == ir.DefNone
		return fuse(pre, func(vm *cvm) cop {
			if pn != 0 {
				vm.st.Cycles += pc
				vm.st.Stats.Instructions += pn
			}
			tgt := vm.regs[reg] - 1
			if tgt < 0 {
				vm.err = trap(name, "interp: %s: icall through unresolved register r%d (site %d)", name, reg, site)
				return nil
			}
			vm.st.Stats.IndirectCalls++
			vm.st.Cycles += args * vm.callArgCost
			ta := cp.addrs[tgt]
			if defNone {
				slot := addr & vm.st.BTBMask
				if vm.st.BTB[slot] == ta {
					vm.st.Stats.BTBHits++
					vm.st.Cycles += vm.indirectCallCost
				} else {
					vm.st.Stats.BTBMisses++
					vm.st.Cycles += vm.indirectCallCost + vm.mispredict
					vm.st.BTB[slot] = ta
				}
			} else {
				vm.icallDef(addr, ta, def)
			}
			vm.pushRSB(retC)
			callee := &cp.funcs[tgt]
			if callee.leaf != nil {
				return vm.runLeaf(callee.leaf, retC, next)
			}
			if callee.flatEntry0 != nil {
				return vm.runFlatInline(callee, retC, next)
			}
			return vm.enter(callee, retC, next)
		})

	case cRet:
		def := ci.def
		if flatRet {
			// Return inside a frameless flat run: same accounting, then
			// end the nested driver loop (vm.err stays nil).
			if def == ir.DefNone {
				return fuse(pre, func(vm *cvm) cop {
					if pn != 0 {
						vm.st.Cycles += pc
						vm.st.Stats.Instructions += pn
					}
					vm.st.Stats.Returns++
					predicted, ok := vm.popRSB()
					if ok && predicted == vm.retAddr {
						vm.st.Stats.RSBHits++
						vm.st.Cycles += vm.returnCost
					} else {
						vm.st.Stats.RSBMisses++
						vm.st.Cycles += vm.returnCost + vm.mispredict
					}
					return nil
				})
			}
			return fuse(pre, func(vm *cvm) cop {
				if pn != 0 {
					vm.st.Cycles += pc
					vm.st.Stats.Instructions += pn
				}
				vm.st.Stats.Returns++
				predicted, ok := vm.popRSB()
				vm.retSlow(predicted, ok, vm.retAddr, def)
				return nil
			})
		}
		if def == ir.DefNone {
			return fuse(pre, func(vm *cvm) cop {
				if pn != 0 {
					vm.st.Cycles += pc
					vm.st.Stats.Instructions += pn
				}
				vm.st.Stats.Returns++
				predicted, ok := vm.popRSB()
				if ok && predicted == vm.retAddr {
					vm.st.Stats.RSBHits++
					vm.st.Cycles += vm.returnCost
				} else {
					vm.st.Stats.RSBMisses++
					vm.st.Cycles += vm.returnCost + vm.mispredict
				}
				d := vm.depth
				if d == 0 {
					return nil
				}
				d--
				fr := &vm.stack[d]
				vm.regs, vm.trips, vm.flag, vm.retAddr = fr.regs, fr.trips, fr.flag, fr.retAddr
				vm.depth = d
				return fr.cont
			})
		}
		return fuse(pre, func(vm *cvm) cop {
			if pn != 0 {
				vm.st.Cycles += pc
				vm.st.Stats.Instructions += pn
			}
			vm.st.Stats.Returns++
			predicted, ok := vm.popRSB()
			vm.retSlow(predicted, ok, vm.retAddr, def)
			d := vm.depth
			if d == 0 {
				return nil
			}
			d--
			fr := &vm.stack[d]
			vm.regs, vm.trips, vm.flag, vm.retAddr = fr.regs, fr.trips, fr.flag, fr.retAddr
			vm.depth = d
			return fr.cont
		})
	}
	// cStep never reaches here (pass 1 folds it into prefixes).
	return fuse(pre, func(vm *cvm) cop {
		vm.err = trap(name, "interp: %s: unknown compiled event", name)
		return nil
	})
}

// --- machine integration --------------------------------------------

// compiledEligible reports whether this machine's configuration can run
// on the compiled tier. Recorder, hook and injector observe per-event
// execution the closure chain does not expose; a replaced RNG breaks
// the concrete-source draw path; ExactAccounting exists to exercise the
// interpreter's per-event charging. OnResolve is supported.
func (mc *Machine) compiledEligible() bool {
	return mc.Rec == nil && mc.Hook == nil && mc.Inject == nil &&
		!mc.ExactAccounting && mc.RNG == mc.ownRNG
}

// runCompiled executes one entry on the threaded-code tier. It returns
// errEngineUnavailable (without touching any state) when the model
// geometry cannot be borrowed; the caller falls back to the interpreter.
func (mc *Machine) runCompiled(fi int32, entryRetAddr int64) error {
	model := mc.CPU
	if model == nil {
		// Control flow never reads model state, so a machine without a
		// CPU (functional validation, diffcheck) runs against a private
		// throwaway model rather than a nil-check in every closure.
		if mc.scratchCPU == nil {
			mc.scratchCPU = cpu.New(cpu.DefaultParams())
		}
		model = mc.scratchCPU
	}
	vm := mc.vm
	if vm == nil {
		vm = &cvm{}
		mc.vm = vm
	}
	if vm.model != model {
		// First run against this model: take the full borrowed view and
		// hoist the cost parameters. Parameters and geometry are fixed at
		// Model construction, so later runs only re-sync the scalars the
		// model may have evolved between runs.
		if !model.EngineView(&vm.st) {
			return errEngineUnavailable
		}
		// Geometry gate for the raw-pointer icache probe (see the cvm
		// field comment): a degenerate cache would break the in-bounds
		// argument, so treat it as not inlinable.
		if vm.st.ICWays < 1 || len(vm.st.ICMRU) == 0 ||
			len(vm.st.ICTags) != len(vm.st.ICMRU)*vm.st.ICWays ||
			len(vm.st.ICStamp) != len(vm.st.ICTags) ||
			len(vm.st.RSB) != vm.st.RSBDepth || vm.st.RSBDepth < 1 {
			return errEngineUnavailable
		}
		vm.rsbP = unsafe.Pointer(&vm.st.RSB[0])
		vm.icMRUP = unsafe.Pointer(&vm.st.ICMRU[0])
		vm.icTagsP = unsafe.Pointer(&vm.st.ICTags[0])
		vm.icStampP = unsafe.Pointer(&vm.st.ICStamp[0])
		vm.icSetMask = uint64(len(vm.st.ICMRU) - 1)
		vm.icShiftN = uint64(vm.st.ICShift)
		vm.icWaysN = uintptr(vm.st.ICWays)
		par := &model.P
		vm.mispredict = par.MispredictPenalty
		vm.icMissPenalty = par.ICacheMissPenalty
		vm.directCallCost = par.DirectCallCost
		vm.callArgCost = par.CallArgCost
		vm.returnCost = par.ReturnCost
		vm.indirectCallCost = par.IndirectCallCost
		vm.condBranchCost = par.CondBranchCost
		vm.retpolineCost = par.RetpolineCost
		vm.lviForwardCost = par.LVIForwardCost
		vm.fencedRetpCost = par.FencedRetpolineCost
		vm.retRetpCost = par.RetRetpolineCost
		vm.lviReturnCost = par.LVIReturnCost
		vm.fencedRetRetCost = par.FencedRetRetCost
		vm.cfiCheckCost = par.CFICheckCost
		vm.stackProtCost = par.StackProtectorCost
		vm.safeStackCost = par.SafeStackCost
		vm.fineIBTCost = par.FineIBTCheckCost
		vm.pacSignCost = par.PACSignCost
		vm.pacAuthCost = par.PACAuthCost
		vm.veriFenceCost = par.VeriFenceCost
		vm.rsbRefillCost = par.RSBRefillCost
		vm.alignMask = ^(par.ICacheLine - 1)
		vm.icLine = par.ICacheLine
		vm.model = model
	} else {
		model.EngineSync(&vm.st)
	}
	cp := mc.Prog.compiledProgram()
	vm.cp = cp
	vm.src = mc.src
	vm.res = mc.Res
	vm.onResolve = mc.OnResolve
	vm.maxSteps = mc.MaxSteps
	vm.maxDepth = mc.MaxDepth
	vm.steps = 0
	vm.err = nil

	// Entry sequence, in the interpreter's order: RSB refill and the
	// synthetic entry call are charged only when the machine has a real
	// CPU (a throwaway model absorbs them otherwise, unobservably), then
	// the depth-0 frame check.
	if mc.RefillRSB {
		vm.refillRSB()
	}
	vm.st.Stats.DirectCalls++
	vm.st.Cycles += vm.directCallCost
	vm.pushRSB(entryRetAddr)

	cf := &cp.funcs[fi]
	var op cop
	if vm.maxDepth <= 0 {
		op = vm.depthFault(cf.name)
	} else {
		vm.installFrame(cf, 0, entryRetAddr)
		op = cf.entry0
	}
	for op != nil {
		op = op(vm)
	}
	mc.steps = vm.steps
	model.EngineRestore(&vm.st)
	err := vm.err
	vm.err = nil
	return err
}
