package interp

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/ir"
)

// Dist is a weighted distribution over function indices, used to decide
// which target an indirect call site resolves to on a given execution.
//
// Sampling uses Walker/Vose alias tables: the weight mass is laid out as
// n columns of height total, each column split between at most two
// targets, so Pick is O(1) regardless of how many targets the site has.
// The tables are built with exact integer arithmetic (no floating-point
// division), so the sampled distribution matches the weights exactly.
// When n*total would overflow uint64 the constructor falls back to a
// cumulative table searched with sort.Search; both paths draw from the
// RNG through the same unbiased bounded sampler.
type Dist struct {
	targets []int32
	total   uint64

	// Alias tables (nil when the fallback is in use). Column j covers
	// [0,total); values below cut[j] map to targets[j], the rest to
	// aliasTgt[j]. The sample space is [0, n*total).
	cut      []uint64
	aliasTgt []int32

	// Fallback cumulative table (nil when alias tables are in use).
	cum []uint64
}

// NewDist builds a distribution from (function index, weight) pairs.
// Pairs with zero weight are dropped; at least one positive weight is
// required.
func NewDist(targets []int, weights []uint64) (*Dist, error) {
	if len(targets) != len(weights) {
		return nil, fmt.Errorf("interp: NewDist: %d targets vs %d weights", len(targets), len(weights))
	}
	n := 0
	for _, w := range weights {
		if w != 0 {
			n++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("interp: NewDist: no positive weights")
	}
	d := &Dist{targets: make([]int32, 0, n)}
	kept := make([]uint64, 0, n)
	var total uint64
	for i, t := range targets {
		if weights[i] == 0 {
			continue
		}
		if t < 0 {
			return nil, fmt.Errorf("interp: NewDist: invalid target index %d", t)
		}
		total += weights[i]
		d.targets = append(d.targets, int32(t))
		kept = append(kept, weights[i])
	}
	d.total = total
	if n == 1 {
		return d, nil
	}
	if total > ^uint64(0)/uint64(n) {
		// n*total overflows; fall back to a cumulative table.
		d.cum = make([]uint64, n)
		var cum uint64
		for i, w := range kept {
			cum += w
			d.cum[i] = cum
		}
		return d, nil
	}
	d.buildAlias(kept)
	return d, nil
}

// buildAlias constructs the Vose alias tables. Each weight is scaled by
// n (exact: overflow was excluded by the caller) and compared against the
// per-column capacity `total`; underfull columns borrow mass from
// overfull ones until every column is exactly full.
func (d *Dist) buildAlias(weights []uint64) {
	n := len(weights)
	d.cut = make([]uint64, n)
	d.aliasTgt = make([]int32, n)
	scaled := make([]uint64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * uint64(n)
		if scaled[i] < d.total {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		d.cut[s] = scaled[s]
		d.aliasTgt[s] = d.targets[l]
		// Column s used (total - scaled[s]) of l's mass.
		scaled[l] -= d.total - scaled[s]
		if scaled[l] < d.total {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers (from either list — integer arithmetic leaves no
	// rounding residue, so these columns hold exactly `total`).
	for _, l := range large {
		d.cut[l] = d.total
		d.aliasTgt[l] = d.targets[l]
	}
	for _, s := range small {
		d.cut[s] = d.total
		d.aliasTgt[s] = d.targets[s]
	}
}

// uint64n returns an unbiased uniform value in [0, n) using Lemire's
// multiply-shift rejection method. n must be nonzero.
func uint64n(rng *rand.Rand, n uint64) uint64 {
	hi, lo := bits.Mul64(rng.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(rng.Uint64(), n)
		}
	}
	return hi
}

// uint64nSrc is uint64n specialised to the interpreter's concrete fast
// source, so the whole bounded draw inlines into the dispatch loop.
func uint64nSrc(src *fastSource, n uint64) uint64 {
	hi, lo := bits.Mul64(src.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(src.Uint64(), n)
		}
	}
	return hi
}

// pickFast is Pick specialised to the concrete fast source. It consumes
// the identical draw sequence, so a machine produces the same resolve
// trace whichever path it uses.
func (d *Dist) pickFast(src *fastSource) int32 {
	if len(d.targets) == 1 {
		return d.targets[0]
	}
	if d.cut != nil {
		col := uint64nSrc(src, uint64(len(d.targets)))
		if uint64nSrc(src, d.total) < d.cut[col] {
			return d.targets[col]
		}
		return d.aliasTgt[col]
	}
	x := uint64nSrc(src, d.total)
	i := sort.Search(len(d.cum), func(i int) bool { return d.cum[i] > x })
	return d.targets[i]
}

// Pick samples a function index. Single-target distributions draw
// nothing from the RNG; multi-target distributions draw two Uint64s
// (occasionally more, when the unbiased bounded sampler rejects).
func (d *Dist) Pick(rng *rand.Rand) int32 {
	if len(d.targets) == 1 {
		return d.targets[0]
	}
	if d.cut != nil {
		// Two bounded draws (column, then position within the column)
		// instead of one draw over [0, n*total): the factored form avoids
		// a 64-bit division on the hot path and samples the identical
		// distribution — P(column) = 1/n, P(direct | column) = cut/total.
		col := uint64n(rng, uint64(len(d.targets)))
		if uint64n(rng, d.total) < d.cut[col] {
			return d.targets[col]
		}
		return d.aliasTgt[col]
	}
	x := uint64n(rng, d.total)
	i := sort.Search(len(d.cum), func(i int) bool { return d.cum[i] > x })
	return d.targets[i]
}

// NumTargets returns the number of distinct targets with positive weight.
func (d *Dist) NumTargets() int { return len(d.targets) }

// Resolver supplies the target distribution for each original indirect
// call site. Sites without an installed distribution cannot be executed
// indirectly.
//
// Distributions are stored in a dense table indexed by site ID (site IDs
// are allocated densely by ir.Module), so the interpreter's per-resolve
// lookup is a bounds check and a slice load instead of a map probe.
type Resolver struct {
	dense []*Dist
	n     int         // installed (non-nil) entries
	sites []ir.SiteID // cached sorted Sites(); nil after mutation
}

// NewResolver returns an empty resolver that grows on demand.
func NewResolver() *Resolver { return &Resolver{} }

// NewResolverSized returns an empty resolver pre-sized for site IDs in
// [0, bound); Program.SiteBound supplies the bound for a compiled module.
func NewResolverSized(bound int) *Resolver {
	if bound < 0 {
		bound = 0
	}
	return &Resolver{dense: make([]*Dist, bound)}
}

// Set installs (or, with a nil Dist, removes) the distribution for an
// original site ID.
func (r *Resolver) Set(orig ir.SiteID, d *Dist) {
	if orig < 0 {
		return
	}
	for int(orig) >= len(r.dense) {
		r.dense = append(r.dense, make([]*Dist, int(orig)+1-len(r.dense))...)
	}
	if (r.dense[orig] == nil) != (d == nil) {
		if d == nil {
			r.n--
		} else {
			r.n++
		}
	}
	r.dense[orig] = d
	r.sites = nil
}

// Get returns the distribution for an original site ID.
func (r *Resolver) Get(orig ir.SiteID) *Dist {
	if orig < 0 || int(orig) >= len(r.dense) {
		return nil
	}
	return r.dense[orig]
}

// Sites returns the site IDs with installed distributions, sorted. The
// result is cached until the next Set and must not be mutated.
func (r *Resolver) Sites() []ir.SiteID {
	if r.sites == nil {
		out := make([]ir.SiteID, 0, r.n)
		for id, d := range r.dense {
			if d != nil {
				out = append(out, ir.SiteID(id))
			}
		}
		r.sites = out
	}
	return r.sites
}
