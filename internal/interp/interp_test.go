package interp

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
)

// testModule builds:
//
//	entry: alu(4); call work; icall {handler_a:3, handler_b:1}; ret
//	work:  alu(10); ret
//	handler_a: alu(2); ret
//	handler_b: alu(20); ret
func testModule(t *testing.T) (*ir.Module, ir.SiteID) {
	t.Helper()
	m := ir.NewModule()

	w := ir.NewFunction(m, "work", 0)
	w.ALU(10).Ret()
	ha := ir.NewFunction(m, "handler_a", 1)
	ha.ALU(2).Ret()
	hb := ir.NewFunction(m, "handler_b", 1)
	hb.ALU(20).Ret()

	e := ir.NewFunction(m, "entry", 0)
	e.ALU(4)
	e.Call("work", 0)
	site := e.IndirectCall(1)
	e.Ret()

	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m, site
}

func machineFor(t *testing.T, m *ir.Module, site ir.SiteID, seed int64) *Machine {
	t.Helper()
	p, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mc := NewMachine(p, seed)
	res := NewResolver()
	d, err := NewDist(
		[]int{p.FuncIndex("handler_a"), p.FuncIndex("handler_b")},
		[]uint64{3, 1},
	)
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	res.Set(site, d)
	mc.Res = res
	return mc
}

func TestRunExecutesToCompletion(t *testing.T) {
	m, site := testModule(t)
	mc := machineFor(t, m, site, 1)
	if err := mc.Run("entry"); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRunUnknownEntry(t *testing.T) {
	m, site := testModule(t)
	mc := machineFor(t, m, site, 1)
	if err := mc.Run("nosuch"); err == nil {
		t.Fatal("Run of unknown function succeeded")
	}
}

func TestProfileRecordsEdgesAndTargets(t *testing.T) {
	m, site := testModule(t)
	mc := machineFor(t, m, site, 7)
	mc.Rec = NewRecorder(mc.Prog)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := mc.Run("entry"); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	mc.Rec.AddOps(n)
	p, err := mc.Rec.Profile()
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if p.Ops != n {
		t.Errorf("Ops = %d, want %d", p.Ops, n)
	}
	if p.Invocations["entry"] != n || p.Invocations["work"] != n {
		t.Errorf("invocations: entry=%d work=%d, want %d each",
			p.Invocations["entry"], p.Invocations["work"], n)
	}
	s := p.Sites[site]
	if s == nil || !s.Indirect() {
		t.Fatalf("site %d missing or not indirect: %+v", site, s)
	}
	if s.Count != n {
		t.Errorf("site count = %d, want %d", s.Count, n)
	}
	// 3:1 split within sampling noise.
	a, b := s.Targets["handler_a"], s.Targets["handler_b"]
	if a+b != n {
		t.Fatalf("targets sum to %d, want %d", a+b, n)
	}
	if a < 650 || a > 850 {
		t.Errorf("handler_a count = %d, want ≈750", a)
	}
	// The direct call edge must be attributed to its site with caller
	// and callee names.
	var foundDirect bool
	for _, ds := range p.Sites {
		if !ds.Indirect() && ds.Callee == "work" {
			foundDirect = true
			if ds.Caller != "entry" || ds.Count != n {
				t.Errorf("direct edge: caller=%q count=%d", ds.Caller, ds.Count)
			}
		}
	}
	if !foundDirect {
		t.Error("direct edge entry->work not recorded")
	}
}

func TestDeterministicCycles(t *testing.T) {
	m, site := testModule(t)
	run := func() int64 {
		mc := machineFor(t, m, site, 99)
		mc.CPU = cpu.New(cpu.DefaultParams())
		for i := 0; i < 200; i++ {
			if err := mc.Run("entry"); err != nil {
				t.Fatalf("Run: %v", err)
			}
		}
		return mc.CPU.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different cycle counts: %d vs %d", a, b)
	}
}

func TestDefenseCostsShowUpInCycles(t *testing.T) {
	m, site := testModule(t)
	base := measure(t, m, site)

	// Harden the icall with a fenced retpoline and every ret with the
	// combined backward-edge defense; cycles must rise by at least the
	// thunk costs.
	hm := m.Clone()
	for _, f := range hm.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			switch in.Op {
			case ir.OpICall:
				in.Defense = ir.DefFencedRetpoline
			case ir.OpRet:
				in.Defense = ir.DefFencedRetRet
			}
		})
	}
	hard := measure(t, hm, site)
	if hard <= base {
		t.Fatalf("hardened cycles %d not greater than baseline %d", hard, base)
	}
	p := cpu.DefaultParams()
	// Per op: 1 fenced retpoline (42) + 3 returns upgraded from ~1 to 32.
	minDelta := int64(200) * (p.FencedRetpolineCost - p.IndirectCallCost + 3*(p.FencedRetRetCost-p.ReturnCost) - 90)
	if hard-base < minDelta {
		t.Errorf("delta = %d cycles over 200 ops, want >= %d", hard-base, minDelta)
	}
}

func measure(t *testing.T, m *ir.Module, site ir.SiteID) int64 {
	t.Helper()
	mc := machineFor(t, m, site, 5)
	mc.CPU = cpu.New(cpu.DefaultParams())
	for i := 0; i < 50; i++ { // warm predictors
		if err := mc.Run("entry"); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	mc.CPU.Reset()
	for i := 0; i < 200; i++ {
		if err := mc.Run("entry"); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	return mc.CPU.Cycles
}

func TestICallWithoutResolverFails(t *testing.T) {
	m, _ := testModule(t)
	p, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mc := NewMachine(p, 1)
	err = mc.Run("entry")
	if err == nil || !strings.Contains(err.Error(), "no target distribution") {
		t.Fatalf("Run = %v, want missing-distribution error", err)
	}
}

func TestInfiniteLoopHitsStepBudget(t *testing.T) {
	m := ir.NewModule()
	b := ir.NewFunction(m, "spin", 0)
	b.ALU(1).Jmp("entry")
	p, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mc := NewMachine(p, 1)
	mc.MaxSteps = 1000
	err = mc.Run("spin")
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("Run = %v, want step-budget error", err)
	}
}

func TestDeepRecursionHitsDepthLimit(t *testing.T) {
	m := ir.NewModule()
	b := ir.NewFunction(m, "rec", 0)
	b.Call("rec", 0)
	b.Ret()
	p, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mc := NewMachine(p, 1)
	mc.MaxDepth = 32
	err = mc.Run("rec")
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("Run = %v, want depth error", err)
	}
}

func TestPromotionChainSemantics(t *testing.T) {
	// Hand-build a promoted site: resolve; cmp handler_a; flag-br to a
	// direct call, else fall back to the icall. Execution must call
	// exactly one of the two and the recorder must see the same target
	// mix as the unpromoted version.
	m := ir.NewModule()
	ha := ir.NewFunction(m, "handler_a", 0)
	ha.ALU(1).Ret()
	hb := ir.NewFunction(m, "handler_b", 0)
	hb.ALU(1).Ret()

	e := ir.NewFunction(m, "entry", 0)
	site, reg := e.Resolve()
	e.CmpFn(reg, "handler_a")
	e.BrFlag("direct", "fallback")
	e.NewBlock("direct")
	e.Call("handler_a", 0)
	e.Jmp("done")
	e.NewBlock("fallback")
	e.ICall(site, reg, 0)
	e.Jmp("done")
	e.NewBlock("done")
	e.Ret()
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	p, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mc := NewMachine(p, 42)
	res := NewResolver()
	d, _ := NewDist([]int{p.FuncIndex("handler_a"), p.FuncIndex("handler_b")}, []uint64{9, 1})
	res.Set(site, d)
	mc.Res = res
	mc.Rec = NewRecorder(p)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := mc.Run("entry"); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	pr, err := mc.Rec.Profile()
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	// handler_a invocations come through the promoted direct call;
	// handler_b through the fallback icall.
	if inv := pr.Invocations["handler_a"] + pr.Invocations["handler_b"]; inv != n {
		t.Fatalf("total handler invocations = %d, want %d", inv, n)
	}
	if pr.Invocations["handler_a"] < 1600 {
		t.Errorf("handler_a = %d, want ≈1800 (90%%)", pr.Invocations["handler_a"])
	}
	// The fallback icall's value profile must contain only handler_b.
	s := pr.Sites[site]
	if s == nil {
		t.Fatal("fallback icall site not in profile")
	}
	if _, hasA := s.Targets["handler_a"]; hasA {
		t.Error("promoted target handler_a still reaches the fallback icall")
	}
}

func TestDistPickRespectsWeights(t *testing.T) {
	d, err := NewDist([]int{0, 1, 2}, []uint64{0, 5, 5})
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	if d.NumTargets() != 2 {
		t.Fatalf("NumTargets = %d, want 2 (zero-weight dropped)", d.NumTargets())
	}
	mc := NewMachine(&Program{}, 3)
	counts := map[int32]int{}
	for i := 0; i < 1000; i++ {
		counts[d.Pick(mc.RNG)]++
	}
	if counts[0] != 0 {
		t.Error("zero-weight target picked")
	}
	if counts[1] < 350 || counts[2] < 350 {
		t.Errorf("unbalanced picks: %v", counts)
	}
}

func TestNewDistErrors(t *testing.T) {
	if _, err := NewDist([]int{1}, []uint64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewDist([]int{1}, []uint64{0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewDist([]int{-1}, []uint64{1}); err == nil {
		t.Error("negative index accepted")
	}
}

func TestCompileRejectsUnknownCallee(t *testing.T) {
	m := ir.NewModule()
	b := ir.NewFunction(m, "f", 0)
	b.Call("ghost", 0)
	b.Ret()
	if _, err := Compile(m); err == nil {
		t.Fatal("Compile accepted call to unknown function")
	}
}

func TestSwitchExecutesAllArms(t *testing.T) {
	m := ir.NewModule()
	b := ir.NewFunction(m, "sw", 0)
	b.Switch([]string{"a", "b", "c"})
	b.NewBlock("a").ALU(1).Jmp("done")
	b.NewBlock("b").ALU(1).Jmp("done")
	b.NewBlock("c").ALU(1).Jmp("done")
	b.NewBlock("done").Ret()
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	p, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mc := NewMachine(p, 11)
	mc.CPU = cpu.New(cpu.DefaultParams())
	for i := 0; i < 300; i++ {
		if err := mc.Run("sw"); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if mc.CPU.Stats.BTBHits+mc.CPU.Stats.BTBMisses == 0 {
		t.Error("jump-table switch never used the BTB")
	}
}

func TestTripLoopDeterministicCount(t *testing.T) {
	m := ir.NewModule()
	leaf := ir.NewFunction(m, "leaf", 0)
	leaf.ALU(1).Ret()
	f := ir.NewFunction(m, "f", 0)
	f.Jmp("loop")
	f.NewBlock("loop")
	f.Call("leaf", 0)
	f.BrLoop(17, "loop", "out")
	f.NewBlock("out")
	f.Ret()
	p, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mc := NewMachine(p, 1)
	mc.Rec = NewRecorder(p)
	const runs = 9
	for i := 0; i < runs; i++ {
		if err := mc.Run("f"); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	pr, err := mc.Rec.Profile()
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if got := pr.Invocations["leaf"]; got != 17*runs {
		t.Fatalf("leaf invocations = %d, want %d (exactly 17 per activation)", got, 17*runs)
	}
}

func TestRefillRSBFlagChargesEntryCost(t *testing.T) {
	m, site := testModule(t)
	run := func(refill bool) int64 {
		mc := machineFor(t, m, site, 3)
		mc.CPU = cpu.New(cpu.DefaultParams())
		mc.RefillRSB = refill
		for i := 0; i < 100; i++ {
			if err := mc.Run("entry"); err != nil {
				t.Fatalf("Run: %v", err)
			}
		}
		return mc.CPU.Cycles
	}
	plain, refilled := run(false), run(true)
	delta := refilled - plain
	refillTotal := 100 * cpu.DefaultParams().RSBRefillCost
	// The refill cost dominates the delta; refilling also perturbs RSB
	// hit rates a little, so allow slack around the stuffing cost.
	if delta < refillTotal/2 || delta > refillTotal*2 {
		t.Fatalf("refill delta = %d cycles, want near %d", delta, refillTotal)
	}
}

type countingHook struct{ calls int }

func (h *countingHook) Handle(m *cpu.Model, site ir.SiteID, siteAddr, targetAddr, retAddr int64, target int32) bool {
	h.calls++
	m.Cycles += 5
	return true
}

func TestICallHookInterceptsUnhardenedSitesOnly(t *testing.T) {
	m, site := testModule(t)
	hook := &countingHook{}
	mc := machineFor(t, m, site, 3)
	mc.CPU = cpu.New(cpu.DefaultParams())
	mc.Hook = hook
	for i := 0; i < 10; i++ {
		if err := mc.Run("entry"); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if hook.calls != 10 {
		t.Fatalf("hook calls = %d, want 10", hook.calls)
	}
	// Harden the icall: the hook must no longer be consulted.
	hm := m.Clone()
	hm.Func("entry").ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpICall {
			in.Defense = ir.DefRetpoline
		}
	})
	hook2 := &countingHook{}
	mc2 := machineFor(t, hm, site, 3)
	mc2.CPU = cpu.New(cpu.DefaultParams())
	mc2.Hook = hook2
	for i := 0; i < 10; i++ {
		if err := mc2.Run("entry"); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if hook2.calls != 0 {
		t.Fatalf("hook consulted for hardened sites: %d calls", hook2.calls)
	}
}

func BenchmarkInterpreterThroughput(b *testing.B) {
	m := ir.NewModule()
	leaf := ir.NewFunction(m, "leaf", 0)
	leaf.ALU(5).Ret()
	f := ir.NewFunction(m, "f", 0)
	f.Jmp("loop")
	f.NewBlock("loop")
	f.ALU(20)
	f.Call("leaf", 1)
	f.BrLoop(100, "loop", "out")
	f.NewBlock("out")
	f.Ret()
	p, err := Compile(m)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	mc := NewMachine(p, 1)
	mc.CPU = cpu.New(cpu.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mc.Run("f"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mc.CPU.Stats.Instructions)/float64(b.N), "sim-instrs/op")
}
