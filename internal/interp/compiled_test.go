package interp

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/kernel"
)

// The compiled tier's contract is byte-identical observables against
// the interpreter: same resolve trace, same outcome, same Cycles, same
// Stats, for any program, seed and fault mode. These tests enforce it
// over the real synthetic kernel and over fuzz-generated programs.

// enginePair is two machines over the same program — interpreter
// reference and compiled candidate — with independent CPU models and
// identical seeds, plus FNV digests of their resolve streams.
type enginePair struct {
	ref, cand *Machine
}

func newEnginePair(p *Program, res *Resolver, seed int64, maxDepth int, maxSteps int64) *enginePair {
	mk := func(eng Engine) *Machine {
		mc := NewMachine(p, seed)
		mc.CPU = cpu.New(cpu.DefaultParams())
		mc.Res = res
		mc.Engine = eng
		if maxDepth > 0 {
			mc.MaxDepth = maxDepth
		}
		if maxSteps > 0 {
			mc.MaxSteps = maxSteps
		}
		return mc
	}
	return &enginePair{ref: mk(EngineInterp), cand: mk(EngineCompiled)}
}

// runBoth runs one rep on each machine and returns the two observations
// (outcome, resolve digest, cycles, stats).
func observedRun(mc *Machine, p *Program, entry string) (string, string, int64, cpu.Counters) {
	h := fnv.New64a()
	mc.OnResolve = func(orig ir.SiteID, target int32) {
		fmt.Fprintf(h, "%d>%s\n", orig, p.FuncName(int(target)))
	}
	err := mc.Run(entry)
	mc.OnResolve = nil
	outcome := "ok"
	if err != nil {
		outcome = err.Error()
	}
	return outcome, fmt.Sprintf("%016x", h.Sum64()), mc.CPU.Cycles, mc.CPU.Stats
}

// checkPair runs reps paired executions and fails on the first
// divergence. Models are not reset between reps, so warm predictor
// state (BTB/PHT/RSB/icache) must also stay in lockstep: any drift
// shows up as a cycle mismatch in a later rep.
func checkPair(t *testing.T, pair *enginePair, p *Program, entry string, reps int) {
	t.Helper()
	for r := 0; r < reps; r++ {
		refOut, refDig, refCyc, refStats := observedRun(pair.ref, p, entry)
		candOut, candDig, candCyc, candStats := observedRun(pair.cand, p, entry)
		if refOut != candOut {
			t.Fatalf("%s rep %d: outcome diverged:\n  interp:   %s\n  compiled: %s", entry, r, refOut, candOut)
		}
		if refDig != candDig {
			t.Fatalf("%s rep %d: resolve digest diverged: interp %s, compiled %s", entry, r, refDig, candDig)
		}
		if refCyc != candCyc {
			t.Fatalf("%s rep %d: cycles diverged: interp %d, compiled %d", entry, r, refCyc, candCyc)
		}
		if refStats != candStats {
			t.Fatalf("%s rep %d: stats diverged:\n  interp:   %+v\n  compiled: %+v", entry, r, refStats, candStats)
		}
	}
}

// kernelResolver installs a deterministic skewed distribution for every
// site of a generated kernel.
func kernelResolver(t testing.TB, k *kernel.Kernel, p *Program) *Resolver {
	t.Helper()
	res := NewResolverSized(p.SiteBound())
	for _, site := range k.Sites {
		idx := make([]int, len(site.Targets))
		w := make([]uint64, len(site.Targets))
		for i, tgt := range site.Targets {
			idx[i] = p.FuncIndex(tgt)
			w[i] = uint64(i*i + 1)
		}
		d, err := NewDist(idx, w)
		if err != nil {
			t.Fatalf("NewDist: %v", err)
		}
		res.Set(site.ID, d)
	}
	return res
}

// TestCompiledEquivalenceKernel proves cycle-exact equivalence over the
// full synthetic kernel: every syscall entry, several machine seeds,
// warm models carried across reps.
func TestCompiledEquivalenceKernel(t *testing.T) {
	k, err := kernel.Generate(kernel.Config{Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	p, err := Compile(k.Mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res := kernelResolver(t, k, p)
	for _, seed := range []int64{1, 7, 12345} {
		for _, spec := range k.Specs {
			pair := newEnginePair(p, res, seed, 0, 0)
			checkPair(t, pair, p, k.Entries[spec.Name], 4)
		}
	}
}

// TestCompiledEquivalenceFaults drives both engines into every fault
// class — fuel exhaustion, depth exhaustion, unresolved sites — and
// requires identical outcomes and identical partial charges.
func TestCompiledEquivalenceFaults(t *testing.T) {
	k, err := kernel.Generate(kernel.Config{Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	p, err := Compile(k.Mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res := kernelResolver(t, k, p)
	entry := k.Entries[k.Specs[0].Name]
	t.Run("fuel", func(t *testing.T) {
		pair := newEnginePair(p, res, 3, 0, 25)
		checkPair(t, pair, p, entry, 3)
	})
	t.Run("depth", func(t *testing.T) {
		pair := newEnginePair(p, res, 3, 2, 0)
		checkPair(t, pair, p, entry, 3)
	})
	t.Run("unresolved", func(t *testing.T) {
		pair := newEnginePair(p, NewResolver(), 3, 0, 0)
		checkPair(t, pair, p, entry, 3)
	})
	t.Run("refill-rsb", func(t *testing.T) {
		pair := newEnginePair(p, res, 3, 0, 0)
		pair.ref.RefillRSB = true
		pair.cand.RefillRSB = true
		checkPair(t, pair, p, entry, 3)
	})
}

// TestCompiledFallback pins the eligibility rule: machines carrying
// interpreter-only state (a recorder, a replaced RNG, ExactAccounting)
// run the interpreter even with Engine=EngineCompiled, and behave
// identically to an explicit interpreter machine.
func TestCompiledFallback(t *testing.T) {
	k, err := kernel.Generate(kernel.Config{Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	p, err := Compile(k.Mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res := kernelResolver(t, k, p)
	entry := k.Entries[k.Specs[0].Name]

	pair := newEnginePair(p, res, 9, 0, 0)
	pair.ref.Rec = NewRecorder(p)
	pair.cand.Rec = NewRecorder(p)
	if pair.cand.compiledEligible() {
		t.Fatal("machine with recorder must not be compiled-eligible")
	}
	checkPair(t, pair, p, entry, 2)
	refProf, err := pair.ref.Rec.Profile()
	if err != nil {
		t.Fatalf("ref profile: %v", err)
	}
	candProf, err := pair.cand.Rec.Profile()
	if err != nil {
		t.Fatalf("cand profile: %v", err)
	}
	if refProf.Hash() != candProf.Hash() {
		t.Fatal("recorder output diverged between fallback and interpreter machines")
	}

	mc := NewMachine(p, 9)
	mc.Engine = EngineCompiled
	mc.ExactAccounting = true
	if mc.compiledEligible() {
		t.Fatal("ExactAccounting machine must not be compiled-eligible")
	}
}

// --- fuzz -----------------------------------------------------------

// fz is a tiny splitmix64 stream for deterministic program generation.
type fz struct{ s uint64 }

func (f *fz) next() uint64 {
	f.s += 0x9e3779b97f4a7c15
	z := f.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (f *fz) n(n uint64) uint64 { return f.next() % n }

// genModule builds a random small module exercising every event kind:
// leaf chains, call-free loops, probability and flag branches, switches
// (jump-table and compare-chain), direct calls, indirect calls,
// promoted resolve/cmpfn chains, and random defenses on every
// defendable site. Returns the module and its resolve sites.
func genModule(seed uint64) (*ir.Module, []ir.SiteID) {
	r := &fz{s: seed*2 + 1}
	mod := ir.NewModule()
	n := 3 + int(r.n(5))
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	var sites []ir.SiteID
	// pickCallee biases toward higher indices so call graphs terminate;
	// occasional back-edges exercise recursion and depth faults.
	pickCallee := func(i int) string {
		if i < n-1 && r.n(8) != 0 {
			return names[i+1+int(r.n(uint64(n-1-i)))]
		}
		return names[r.n(uint64(n))]
	}
	for i := 0; i < n; i++ {
		b := ir.NewFunction(mod, names[i], 0)
		style := r.n(6)
		if i == 0 {
			style = 5 // the entry is always a caller
		}
		switch style {
		case 0: // straight-line leaf
			b.ALU(1 + int(r.n(30)))
			b.Ret()
		case 1: // superblock chain: jmp-merged straight-line segments
			b.ALU(int(r.n(10)))
			b.Jmp("b1")
			b.NewBlock("b1")
			b.ALU(1 + int(r.n(20)))
			if r.n(2) == 0 {
				b.Jmp("b2")
				b.NewBlock("b2")
				b.ALU(1 + int(r.n(6)))
			}
			b.Ret()
		case 2: // call-free counted loop (flat in the interpreter)
			b.ALU(int(r.n(5)))
			b.Jmp("loop")
			b.NewBlock("loop")
			b.ALU(1 + int(r.n(8)))
			b.BrLoop(int32(1+r.n(6)), "loop", "out")
			b.NewBlock("out")
			b.ALU(int(r.n(4)))
			b.Ret()
		case 3: // probability diamond
			b.ALU(int(r.n(6)))
			b.BrProb(float32(r.n(101))/100, "t", "e")
			b.NewBlock("t")
			b.ALU(1 + int(r.n(10)))
			b.Jmp("j")
			b.NewBlock("e")
			b.ALU(1 + int(r.n(10)))
			b.Jmp("j")
			b.NewBlock("j")
			b.Ret()
		case 4: // switch
			k := 2 + int(r.n(4))
			targets := make([]string, k)
			for j := range targets {
				targets[j] = fmt.Sprintf("s%d", j)
			}
			b.ALU(int(r.n(6)))
			b.Switch(targets)
			for j := range targets {
				b.NewBlock(targets[j])
				b.ALU(1 + int(r.n(5)))
				b.Jmp("done")
			}
			b.NewBlock("done")
			b.Ret()
		default: // caller: direct calls, icalls, promoted chains
			b.ALU(int(r.n(12)))
			for j := 0; j < 1+int(r.n(3)); j++ {
				b.Call(pickCallee(i), int(r.n(3)))
				if r.n(3) == 0 {
					b.ALU(1 + int(r.n(5)))
				}
			}
			if r.n(2) == 0 {
				sites = append(sites, b.IndirectCall(int(r.n(3))))
			}
			if r.n(3) == 0 {
				// Promoted chain: resolve, compare, direct fast path,
				// indirect fallback — the shape ICP emits.
				site, reg := b.Resolve()
				tgt := pickCallee(i)
				b.CmpFn(reg, tgt)
				b.BrFlag("d", "ind")
				b.NewBlock("d")
				b.Call(tgt, 1)
				b.Jmp("jn")
				b.NewBlock("ind")
				b.ICall(site, reg, 1)
				b.Jmp("jn")
				b.NewBlock("jn")
				sites = append(sites, site)
			}
			b.Ret()
		}
	}
	// Random defenses and switch lowering, as the hardening pass would
	// assign them.
	fwd := []ir.Defense{ir.DefNone, ir.DefNone, ir.DefRetpoline, ir.DefLVI, ir.DefFencedRetpoline, ir.DefLLVMCFI, ir.DefFineIBT, ir.DefPAC, ir.DefVeriFence}
	bwd := []ir.Defense{ir.DefNone, ir.DefNone, ir.DefRetRetpoline, ir.DefLVIRet, ir.DefFencedRetRet, ir.DefStackProtector, ir.DefSafeStack, ir.DefPACRet}
	for _, f := range mod.Funcs {
		f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
			switch in.Op {
			case ir.OpICall:
				in.Defense = fwd[r.n(uint64(len(fwd)))]
			case ir.OpRet:
				in.Defense = bwd[r.n(uint64(len(bwd)))]
			case ir.OpSwitch:
				if r.n(2) == 0 {
					in.JumpTable = false
				}
				if in.JumpTable && r.n(3) == 0 {
					if r.n(2) == 0 {
						in.Defense = ir.DefVeriFence
					} else {
						in.Defense = ir.DefRetpoline
					}
				}
			}
		})
	}
	return mod, sites
}

// fuzzResolver installs a random distribution for every resolve site.
func fuzzResolver(r *fz, p *Program, sites []ir.SiteID, nFuncs int) (*Resolver, error) {
	res := NewResolverSized(p.SiteBound())
	for _, site := range sites {
		k := 1 + int(r.n(3))
		idx := make([]int, k)
		w := make([]uint64, k)
		for i := range idx {
			idx[i] = int(r.n(uint64(nFuncs)))
			w[i] = 1 + r.n(100)
		}
		d, err := NewDist(idx, w)
		if err != nil {
			return nil, err
		}
		res.Set(site, d)
	}
	return res, nil
}

// FuzzCompiledEquivalence generates random programs and seeds and
// asserts the compiled engine's resolve-trace digest, outcome, cycle
// count and full predictor statistics are byte-identical to the
// interpreter's — including under tight fuel and depth budgets that
// fault mid-run.
func FuzzCompiledEquivalence(f *testing.F) {
	f.Add(uint64(1), int64(1), uint8(0), uint16(0))
	f.Add(uint64(2), int64(99), uint8(6), uint16(120))
	f.Add(uint64(3), int64(7), uint8(0), uint16(40))
	f.Add(uint64(12345), int64(-5), uint8(3), uint16(0))
	f.Add(uint64(77), int64(1<<40), uint8(2), uint16(9))
	f.Add(uint64(0xdeadbeef), int64(42), uint8(64), uint16(500))
	f.Fuzz(func(t *testing.T, seed uint64, runSeed int64, maxDepth uint8, maxSteps uint16) {
		mod, sites := genModule(seed)
		if err := ir.Verify(mod, ir.VerifyOptions{}); err != nil {
			t.Fatalf("generated module does not verify: %v", err)
		}
		p, err := Compile(mod)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		r := &fz{s: seed ^ 0xabcdef}
		res, err := fuzzResolver(r, p, sites, mod.NumFuncs())
		if err != nil {
			t.Fatalf("resolver: %v", err)
		}
		// maxDepth 0 keeps the default; small values exercise depth
		// faults. maxSteps likewise for fuel faults.
		pair := newEnginePair(p, res, runSeed, int(maxDepth), int64(maxSteps))
		checkPair(t, pair, p, "f0", 3)
	})
}

// BenchmarkMachineRunCompiled is the compiled-tier half of the
// dispatch microbenchmark pair (BenchmarkMachineRun in engine_test.go
// is the interpreter half): same program, same mix, Engine set.
func BenchmarkMachineRunCompiled(b *testing.B) {
	mc := newDispatchBenchMachine(b)
	mc.Engine = EngineCompiled
	idx := mc.Prog.FuncIndex("entry")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mc.RunIndex(idx); err != nil {
			b.Fatal(err)
		}
	}
}
