package interp

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
)

// TestDistPickSkewedEmpirical is the modulo-bias regression test: over a
// skewed 3-target distribution the empirical pick frequencies must match
// the weights within a few standard deviations. The old
// `rng.Uint64() % total` sampler was biased toward low residues; the
// bounded Lemire draws behind the alias tables are exact.
func TestDistPickSkewedEmpirical(t *testing.T) {
	weights := []uint64{1, 10, 100}
	d, err := NewDist([]int{0, 1, 2}, weights)
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	const n = 111000
	rng := rand.New(rand.NewSource(42))
	counts := [3]int{}
	for i := 0; i < n; i++ {
		counts[d.Pick(rng)]++
	}
	var total uint64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		p := float64(w) / float64(total)
		want := float64(n) * p
		// Binomial stddev; 5 sigma keeps the flake rate negligible
		// while still catching the old modulo bias (which skewed the
		// buckets by far more than this for adversarial totals).
		tol := 5 * math.Sqrt(float64(n)*p*(1-p))
		if diff := math.Abs(float64(counts[i]) - want); diff > tol {
			t.Errorf("target %d picked %d times, want %.0f±%.0f", i, counts[i], want, tol)
		}
	}
}

// TestPickFastMatchesPick checks the two sampling entry points consume
// identical draw sequences: a machine produces the same resolve trace
// whether the dispatch loop uses the concrete-source fast path or the
// generic *rand.Rand path.
func TestPickFastMatchesPick(t *testing.T) {
	d, err := NewDist([]int{3, 7, 9, 12}, []uint64{1, 2, 96, 1})
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	a := &fastSource{s: 99}
	b := rand.New(&fastSource{s: 99})
	for i := 0; i < 5000; i++ {
		fast, slow := d.pickFast(a), d.Pick(b)
		if fast != slow {
			t.Fatalf("draw %d: pickFast = %d, Pick = %d", i, fast, slow)
		}
	}
	// The sources must also end in the same state (same number of raw
	// draws consumed).
	if x, y := a.Uint64(), b.Uint64(); x != y {
		t.Fatalf("sources diverged after sampling: %#x vs %#x", x, y)
	}
}

// TestDeepRecursionMemoryBound checks that MaxDepth is bounded by memory,
// not by Go stack growth: the iterative dispatcher must carry a
// million-deep call chain and still report the depth fault cleanly.
func TestDeepRecursionMemoryBound(t *testing.T) {
	m := ir.NewModule()
	b := ir.NewFunction(m, "rec", 0)
	b.Call("rec", 0)
	b.Ret()
	p, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mc := NewMachine(p, 1)
	mc.MaxDepth = 1 << 20
	err = mc.Run("rec")
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("Run = %v, want depth error after %d frames", err, mc.MaxDepth)
	}
}

// newDispatchBenchMachine builds the shared dispatch-microbenchmark
// machine: a loop mixing straight-line work, direct calls and a skewed
// indirect call — the instruction mix the kernel entries are built
// from. BenchmarkMachineRun and BenchmarkMachineRunCompiled both run
// it, differing only in the Engine selector.
func newDispatchBenchMachine(b *testing.B) *Machine {
	b.Helper()
	m := ir.NewModule()
	w := ir.NewFunction(m, "work", 0)
	w.ALU(10).Ret()
	ha := ir.NewFunction(m, "handler_a", 1)
	ha.ALU(2).Ret()
	hb := ir.NewFunction(m, "handler_b", 1)
	hb.ALU(20).Ret()
	e := ir.NewFunction(m, "entry", 0)
	e.Jmp("loop")
	e.NewBlock("loop")
	e.ALU(12)
	e.Call("work", 0)
	site := e.IndirectCall(1)
	e.BrLoop(100, "loop", "out")
	e.NewBlock("out")
	e.Ret()
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		b.Fatalf("Verify: %v", err)
	}
	p, err := Compile(m)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	mc := NewMachine(p, 1)
	mc.CPU = cpu.New(cpu.DefaultParams())
	res := NewResolver()
	d, err := NewDist(
		[]int{p.FuncIndex("handler_a"), p.FuncIndex("handler_b")},
		[]uint64{9, 1},
	)
	if err != nil {
		b.Fatalf("NewDist: %v", err)
	}
	res.Set(site, d)
	mc.Res = res
	return mc
}

// BenchmarkMachineRun times raw interpreter dispatch; see
// BenchmarkMachineRunCompiled for the threaded-code half of the pair.
func BenchmarkMachineRun(b *testing.B) {
	mc := newDispatchBenchMachine(b)
	idx := mc.Prog.FuncIndex("entry")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mc.RunIndex(idx); err != nil {
			b.Fatal(err)
		}
	}
}
