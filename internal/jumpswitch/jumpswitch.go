// Package jumpswitch models JumpSwitches (Amit, Jacobs, Wei — USENIX ATC
// 2019), the runtime indirect-call-promotion baseline PIBE is compared
// against in §8.2 of the paper.
//
// A jump switch replaces an indirect call with an out-of-line compare
// chain over targets learned at runtime, falling back to a retpoline for
// unlearned targets. The mechanism must periodically re-enter a learning
// state — especially for multi-target sites — during which the call is
// reconverted into a retpoline that observes targets, and the chain is
// then live-patched (an RCU-synchronized operation). Three properties
// make it slower than PIBE's static promotion:
//
//   - the switch lives out of line, costing an extra jump per dispatch;
//   - multi-target sites periodically drop back to learning retpolines;
//   - patching costs synchronization every time the chain is updated.
package jumpswitch

import (
	"sort"

	"repro/internal/cpu"
	"repro/internal/ir"
)

// Params tunes the runtime mechanism.
type Params struct {
	// MaxTargets is the number of entries a switch holds (the paper's
	// implementation tracks a small fixed number; 6 here).
	MaxTargets int
	// CompareCost is the cost of one compare+branch in the chain.
	CompareCost int64
	// DispatchJumpCost is the extra jump to the out-of-line switch.
	DispatchJumpCost int64
	// RetpolineCost is the fallback/learning dispatch cost.
	RetpolineCost int64
	// RelearnPeriod is how many executions a multi-target site runs in
	// switch mode before being put back into learning mode.
	RelearnPeriod int
	// LearnLength is how many executions a learning episode lasts.
	LearnLength int
	// PatchCost is charged when a switch is (re)installed: live
	// patching under RCU synchronization.
	PatchCost int64
}

// DefaultParams returns values calibrated so that, on an LMBench-like
// indirect-call mix, JumpSwitches lands between unoptimized retpolines
// and PIBE's static promotion (Table 3: 20.2% vs 5.0% vs 1.3%).
func DefaultParams() Params {
	return Params{
		MaxTargets:       6,
		CompareCost:      2,
		DispatchJumpCost: 2,
		RetpolineCost:    21,
		RelearnPeriod:    4096,
		LearnLength:      128,
		PatchCost:        256,
	}
}

type siteState struct {
	installed []int32         // learned targets, hottest first
	observed  map[int32]int64 // counts seen during learning
	learning  bool
	execs     int // executions since last mode change
	multi     bool
}

// Runtime is the per-kernel jump-switch state machine. It implements
// interp.ICallHook (structurally; the interface lives in interp).
type Runtime struct {
	P     Params
	sites map[ir.SiteID]*siteState

	// Stats
	ChainHits    int64
	ChainMisses  int64
	LearningHits int64
	Patches      int64
}

// New returns a Runtime managing every unhardened indirect call site it
// encounters, all starting in learning mode.
func New(p Params) *Runtime {
	return &Runtime{P: p, sites: make(map[ir.SiteID]*siteState)}
}

// Handle implements the interpreter's indirect-call hook. It charges the
// dispatch cost for the call at site landing on target and returns true;
// the interpreter then charges the call itself.
func (r *Runtime) Handle(m *cpu.Model, site ir.SiteID, siteAddr, targetAddr, retAddr int64, target int32) bool {
	s := r.sites[site]
	if s == nil {
		s = &siteState{learning: true, observed: make(map[int32]int64)}
		r.sites[site] = s
	}
	s.execs++
	if s.learning {
		r.LearningHits++
		m.Cycles += r.P.RetpolineCost
		s.observed[target]++
		if len(s.observed) > 1 {
			s.multi = true
		}
		if s.execs >= r.P.LearnLength {
			r.install(m, s)
		}
		return true
	}
	// Switch mode: walk the chain.
	m.Cycles += r.P.DispatchJumpCost
	for k, t := range s.installed {
		m.Cycles += r.P.CompareCost
		if t == target {
			r.ChainHits++
			r.maybeRelearn(s)
			_ = k
			return true
		}
	}
	// Miss: fall back to the retpoline and remember the new target.
	r.ChainMisses++
	m.Cycles += r.P.RetpolineCost
	s.observed[target]++
	if len(s.observed) > 1 || len(s.installed) > 0 {
		s.multi = true
	}
	r.maybeRelearn(s)
	return true
}

func (r *Runtime) maybeRelearn(s *siteState) {
	// Multi-target sites are periodically downgraded to learning
	// retpolines so the chain can adapt — the behaviour the paper
	// identifies as JumpSwitches' weakness on kernels where most hot
	// indirect calls are multi-targeted (Table 4).
	if s.multi && s.execs >= r.P.RelearnPeriod {
		s.learning = true
		s.execs = 0
		s.observed = make(map[int32]int64)
	}
}

func (r *Runtime) install(m *cpu.Model, s *siteState) {
	type tc struct {
		t int32
		n int64
	}
	var ts []tc
	for t, n := range s.observed {
		ts = append(ts, tc{t, n})
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].n != ts[j].n {
			return ts[i].n > ts[j].n
		}
		return ts[i].t < ts[j].t
	})
	if len(ts) > r.P.MaxTargets {
		ts = ts[:r.P.MaxTargets]
	}
	s.installed = s.installed[:0]
	for _, e := range ts {
		s.installed = append(s.installed, e.t)
	}
	s.learning = false
	s.execs = 0
	m.Cycles += r.P.PatchCost
	r.Patches++
}

// ManagedSites returns how many indirect call sites the runtime has seen.
func (r *Runtime) ManagedSites() int { return len(r.sites) }
