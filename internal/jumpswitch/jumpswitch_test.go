package jumpswitch

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
)

func newRT() (*Runtime, *cpu.Model) {
	return New(DefaultParams()), cpu.New(cpu.DefaultParams())
}

func TestLearningThenChainHit(t *testing.T) {
	rt, m := newRT()
	site := ir.SiteID(1)
	// Learning phase: every dispatch costs a retpoline.
	for i := 0; i < rt.P.LearnLength; i++ {
		if !rt.Handle(m, site, 0x1000, 0x2000, 0x1005, 7) {
			t.Fatal("Handle returned false")
		}
	}
	if rt.LearningHits != int64(rt.P.LearnLength) {
		t.Fatalf("LearningHits = %d, want %d", rt.LearningHits, rt.P.LearnLength)
	}
	if rt.Patches != 1 {
		t.Fatalf("Patches = %d, want 1 after learning completes", rt.Patches)
	}
	// Now in switch mode: a known target is a chain hit and much
	// cheaper than the retpoline.
	before := m.Cycles
	rt.Handle(m, site, 0x1000, 0x2000, 0x1005, 7)
	cost := m.Cycles - before
	if rt.ChainHits != 1 {
		t.Fatalf("ChainHits = %d, want 1", rt.ChainHits)
	}
	if cost >= rt.P.RetpolineCost {
		t.Errorf("chain hit cost %d not cheaper than retpoline %d", cost, rt.P.RetpolineCost)
	}
}

func TestUnknownTargetFallsBackToRetpoline(t *testing.T) {
	rt, m := newRT()
	site := ir.SiteID(2)
	for i := 0; i < rt.P.LearnLength; i++ {
		rt.Handle(m, site, 0, 0, 0, 7)
	}
	before := m.Cycles
	rt.Handle(m, site, 0, 0, 0, 99) // never-seen target
	cost := m.Cycles - before
	if rt.ChainMisses != 1 {
		t.Fatalf("ChainMisses = %d, want 1", rt.ChainMisses)
	}
	if cost < rt.P.RetpolineCost {
		t.Errorf("fallback cost %d below retpoline cost %d", cost, rt.P.RetpolineCost)
	}
}

func TestMultiTargetSitePeriodicallyRelearns(t *testing.T) {
	p := DefaultParams()
	p.RelearnPeriod = 64
	p.LearnLength = 8
	rt := New(p)
	m := cpu.New(cpu.DefaultParams())
	site := ir.SiteID(3)
	// Alternate two targets long enough to cross several relearn
	// periods.
	for i := 0; i < 1000; i++ {
		rt.Handle(m, site, 0, 0, 0, int32(7+i%2))
	}
	if rt.Patches < 2 {
		t.Errorf("Patches = %d, want >= 2 (periodic relearning)", rt.Patches)
	}
	if rt.LearningHits <= int64(p.LearnLength) {
		t.Errorf("LearningHits = %d, want more than one learning episode", rt.LearningHits)
	}
}

func TestSingleTargetSiteStaysInSwitchMode(t *testing.T) {
	p := DefaultParams()
	p.RelearnPeriod = 64
	p.LearnLength = 8
	rt := New(p)
	m := cpu.New(cpu.DefaultParams())
	site := ir.SiteID(4)
	for i := 0; i < 1000; i++ {
		rt.Handle(m, site, 0, 0, 0, 7)
	}
	if rt.Patches != 1 {
		t.Errorf("Patches = %d, want 1 (single-target sites never relearn)", rt.Patches)
	}
}

func TestMaxTargetsCapped(t *testing.T) {
	p := DefaultParams()
	p.LearnLength = 100
	rt := New(p)
	m := cpu.New(cpu.DefaultParams())
	site := ir.SiteID(5)
	// Learn 10 distinct targets; only MaxTargets survive in the chain.
	for i := 0; i < p.LearnLength; i++ {
		rt.Handle(m, site, 0, 0, 0, int32(i%10))
	}
	s := rt.sites[site]
	if len(s.installed) != p.MaxTargets {
		t.Errorf("installed = %d targets, want %d", len(s.installed), p.MaxTargets)
	}
}

func TestManagedSites(t *testing.T) {
	rt, m := newRT()
	rt.Handle(m, 1, 0, 0, 0, 1)
	rt.Handle(m, 2, 0, 0, 0, 1)
	rt.Handle(m, 1, 0, 0, 0, 1)
	if rt.ManagedSites() != 2 {
		t.Errorf("ManagedSites = %d, want 2", rt.ManagedSites())
	}
}
