package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func newModel() *Model { return New(DefaultParams()) }

func TestBTBLearnsAndPredicts(t *testing.T) {
	m := newModel()
	// First execution misses, second hits (same target).
	m.IndirectCall(0x1000, 0x2000, 0x1005, 0, ir.DefNone)
	if m.Stats.BTBMisses != 1 {
		t.Fatalf("first call: misses = %d, want 1", m.Stats.BTBMisses)
	}
	c1 := m.Cycles
	m.IndirectCall(0x1000, 0x2000, 0x1005, 0, ir.DefNone)
	if m.Stats.BTBHits != 1 {
		t.Fatalf("second call: hits = %d, want 1", m.Stats.BTBHits)
	}
	if hitCost := m.Cycles - c1; hitCost >= c1 {
		t.Errorf("BTB hit cost %d should be cheaper than miss cost %d", hitCost, c1)
	}
	// Target change mispredicts again.
	m.IndirectCall(0x1000, 0x3000, 0x1005, 0, ir.DefNone)
	if m.Stats.BTBMisses != 2 {
		t.Errorf("target change: misses = %d, want 2", m.Stats.BTBMisses)
	}
}

func TestBTBAliasing(t *testing.T) {
	m := newModel()
	stride := int64(m.P.BTBEntries) // addresses that alias to the same slot
	m.IndirectCall(0x1000, 0xAAAA, 0, 0, ir.DefNone)
	m.IndirectCall(0x1000+stride, 0xBBBB, 0, 0, ir.DefNone)
	// The second call evicted the first's prediction.
	m.IndirectCall(0x1000, 0xAAAA, 0, 0, ir.DefNone)
	if m.Stats.BTBMisses != 3 {
		t.Errorf("aliasing: misses = %d, want 3 (all mispredict)", m.Stats.BTBMisses)
	}
}

func TestRetpolineIgnoresBTBState(t *testing.T) {
	m := newModel()
	m.PoisonBTB(0x1000, 0xDEAD)
	before := m.Cycles
	m.IndirectCall(0x1000, 0x2000, 0x1005, 0, ir.DefRetpoline)
	if got := m.Cycles - before; got != m.P.RetpolineCost {
		t.Errorf("retpoline cost = %d, want %d", got, m.P.RetpolineCost)
	}
	// The poisoned entry must not have been retrained: retpolines never
	// consult or update the BTB.
	if m.PredictIndirect(0x1000) != 0xDEAD {
		t.Error("retpoline updated the BTB")
	}
	if m.Stats.BTBHits+m.Stats.BTBMisses != 0 {
		t.Error("retpoline consulted the BTB")
	}
}

func TestRSBMatchesCallReturnPairs(t *testing.T) {
	m := newModel()
	m.DirectCall(0x100, 0)
	m.DirectCall(0x200, 0)
	m.Return(0x200, ir.DefNone)
	m.Return(0x100, ir.DefNone)
	if m.Stats.RSBHits != 2 || m.Stats.RSBMisses != 0 {
		t.Errorf("hits=%d misses=%d, want 2/0", m.Stats.RSBHits, m.Stats.RSBMisses)
	}
}

func TestRSBMismatchMispredicts(t *testing.T) {
	m := newModel()
	m.DirectCall(0x100, 0)
	m.Return(0x999, ir.DefNone) // return address overwritten
	if m.Stats.RSBMisses != 1 {
		t.Errorf("misses = %d, want 1", m.Stats.RSBMisses)
	}
}

func TestRSBOverflowLosesDeepFrames(t *testing.T) {
	m := newModel()
	depth := m.P.RSBDepth + 4
	for i := 0; i < depth; i++ {
		m.DirectCall(int64(0x1000+i), 0)
	}
	for i := depth - 1; i >= 0; i-- {
		m.Return(int64(0x1000+i), ir.DefNone)
	}
	// The RSBDepth most recent frames predict; the 4 oldest were
	// overwritten, and after underflow they mispredict.
	if m.Stats.RSBHits != int64(m.P.RSBDepth) {
		t.Errorf("hits = %d, want %d", m.Stats.RSBHits, m.P.RSBDepth)
	}
	if m.Stats.RSBMisses != 4 {
		t.Errorf("misses = %d, want 4", m.Stats.RSBMisses)
	}
}

func TestReturnThunkCosts(t *testing.T) {
	cases := []struct {
		def  ir.Defense
		cost int64
	}{
		{ir.DefRetRetpoline, DefaultParams().RetRetpolineCost},
		{ir.DefFencedRetRet, DefaultParams().FencedRetRetCost},
	}
	for _, c := range cases {
		m := newModel()
		m.DirectCall(0x100, 0)
		before := m.Cycles
		m.Return(0x100, c.def)
		if got := m.Cycles - before; got != c.cost {
			t.Errorf("%v: cost = %d, want %d", c.def, got, c.cost)
		}
	}
}

func TestLVIReturnAddsFenceToPredictedReturn(t *testing.T) {
	m := newModel()
	m.DirectCall(0x100, 0)
	before := m.Cycles
	m.Return(0x100, ir.DefLVIRet)
	want := m.P.ReturnCost + m.P.LVIReturnCost
	if got := m.Cycles - before; got != want {
		t.Errorf("LVI return cost = %d, want %d", got, want)
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	// The per-edge thunk costs must reproduce the ordering of Table 1:
	// fenced retpoline > retpoline > LVI forward, and combined backward
	// (32) > return retpoline (16) > LVI return (11).
	p := DefaultParams()
	if !(p.FencedRetpolineCost > p.RetpolineCost && p.RetpolineCost > p.LVIForwardCost) {
		t.Error("forward-edge cost ordering violated")
	}
	if !(p.FencedRetRetCost > p.RetRetpolineCost && p.RetRetpolineCost > p.LVIReturnCost) {
		t.Error("backward-edge cost ordering violated")
	}
	if p.FencedRetpolineCost != 42 || p.FencedRetRetCost != 32 {
		t.Errorf("combined defense costs (%d fwd, %d bwd) diverge from §6.3 (42/32)",
			p.FencedRetpolineCost, p.FencedRetRetCost)
	}
}

func TestPHTLearnsBias(t *testing.T) {
	m := newModel()
	for i := 0; i < 100; i++ {
		m.CondBranch(0x500, true)
	}
	hits := m.Stats.PHTHits
	if hits < 95 {
		t.Errorf("strongly biased branch: hits = %d/100, want >= 95", hits)
	}
	// Flip direction: the 2-bit counter takes two executions to follow.
	m.CondBranch(0x500, false)
	if m.Stats.PHTMisses < 1 {
		t.Error("direction flip should mispredict")
	}
}

func TestICacheHitsAfterWarmup(t *testing.T) {
	m := newModel()
	m.Straightline(10, 5, 0x4000, 2)
	if m.Stats.ICacheMisses != 2 {
		t.Fatalf("cold misses = %d, want 2", m.Stats.ICacheMisses)
	}
	m.Straightline(10, 5, 0x4000, 2)
	if m.Stats.ICacheHits != 2 {
		t.Errorf("warm hits = %d, want 2", m.Stats.ICacheHits)
	}
}

func TestICacheCapacityEviction(t *testing.T) {
	m := newModel()
	// Touch ways+1 distinct lines mapping to the same set, then re-touch
	// the first: it must have been evicted (LRU).
	setStride := m.P.ICacheLine * int64(m.P.ICacheSets)
	for i := 0; i <= m.P.ICacheWays; i++ {
		m.Straightline(0, 0, int64(i)*setStride, 1)
	}
	missesBefore := m.Stats.ICacheMisses
	m.Straightline(0, 0, 0, 1)
	if m.Stats.ICacheMisses != missesBefore+1 {
		t.Error("LRU line was not evicted at capacity")
	}
}

func TestResetPreservesPredictors(t *testing.T) {
	m := newModel()
	m.IndirectCall(0x1000, 0x2000, 0, 0, ir.DefNone)
	m.Reset()
	if m.Cycles != 0 || m.Stats.BTBMisses != 0 {
		t.Fatal("Reset did not clear measurement state")
	}
	m.IndirectCall(0x1000, 0x2000, 0, 0, ir.DefNone)
	if m.Stats.BTBHits != 1 {
		t.Error("Reset flushed predictor state; warmed BTB expected")
	}
	m.ResetAll()
	m.IndirectCall(0x1000, 0x2000, 0, 0, ir.DefNone)
	if m.Stats.BTBMisses != 1 {
		t.Error("ResetAll did not flush the BTB")
	}
}

func TestPoisonAndPredictRoundTrip(t *testing.T) {
	m := newModel()
	m.PoisonBTB(0xBEEF, 0x6666)
	if got := m.PredictIndirect(0xBEEF); got != 0x6666 {
		t.Errorf("PredictIndirect = %#x, want 0x6666", got)
	}
	m.PoisonRSB(0x7777, 1)
	if got, ok := m.PredictReturn(); !ok || got != 0x7777 {
		t.Errorf("PredictReturn = %#x,%v, want 0x7777,true", got, ok)
	}
}

func TestMicrosConversion(t *testing.T) {
	m := newModel()
	m.Cycles = 3700
	if got := m.Micros(); got < 0.999 || got > 1.001 {
		t.Errorf("3700 cycles at 3.7GHz = %v µs, want 1.0", got)
	}
}

func TestDefenseCostTable(t *testing.T) {
	m := newModel()
	for def := ir.DefRetpoline; def <= ir.DefFencedRetRet; def++ {
		if _, ok := m.DefenseCost(def); !ok {
			t.Errorf("DefenseCost(%v) not defined", def)
		}
	}
	if _, ok := m.DefenseCost(ir.DefNone); ok {
		t.Error("DefenseCost(none) should report !ok")
	}
}

// Property: cycles are monotonically non-decreasing under any event
// sequence, and hardened calls never train the BTB.
func TestCyclesMonotoneQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		m := newModel()
		prev := int64(0)
		for i, op := range ops {
			addr := int64(i) * 37
			switch op % 6 {
			case 0:
				m.DirectCall(addr, int32(op%4))
			case 1:
				m.IndirectCall(addr, addr+1000, addr+5, 0, ir.DefNone)
			case 2:
				m.IndirectCall(addr, addr+1000, addr+5, 0, ir.DefFencedRetpoline)
			case 3:
				m.Return(addr, ir.DefNone)
			case 4:
				m.CondBranch(addr, op%2 == 0)
			case 5:
				m.Straightline(int64(op), 1, addr, 1)
			}
			if m.Cycles < prev {
				return false
			}
			prev = m.Cycles
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNonTransientDefenseCosts(t *testing.T) {
	// LLVM-CFI adds a check to a still-predicted dispatch.
	m := newModel()
	m.IndirectCall(0x1000, 0x2000, 0x1005, 0, ir.DefLLVMCFI) // trains BTB
	before := m.Cycles
	m.IndirectCall(0x1000, 0x2000, 0x1005, 0, ir.DefLLVMCFI)
	want := m.P.IndirectCallCost + m.P.CFICheckCost
	if got := m.Cycles - before; got != want {
		t.Errorf("LLVM-CFI predicted icall = %d, want %d", got, want)
	}
	// Stack protector and safestack add small costs to predicted returns.
	for _, c := range []struct {
		def   ir.Defense
		extra int64
	}{
		{ir.DefStackProtector, DefaultParams().StackProtectorCost},
		{ir.DefSafeStack, DefaultParams().SafeStackCost},
	} {
		m := newModel()
		m.DirectCall(0x100, 0)
		before := m.Cycles
		m.Return(0x100, c.def)
		want := m.P.ReturnCost + c.extra
		if got := m.Cycles - before; got != want {
			t.Errorf("%v return = %d, want %d", c.def, got, want)
		}
	}
}

func TestRefillRSBReplacesPoison(t *testing.T) {
	m := newModel()
	m.PoisonRSB(0x6666, 4)
	before := m.Cycles
	m.RefillRSB()
	if got := m.Cycles - before; got != m.P.RSBRefillCost {
		t.Errorf("refill cost = %d, want %d", got, m.P.RSBRefillCost)
	}
	if tgt, ok := m.PredictReturn(); !ok || tgt == 0x6666 {
		t.Errorf("RSB top after refill = %#x,%v; poison must be gone", tgt, ok)
	}
	// Refilled entries are benign but wrong: the next matched
	// call/return pair still predicts correctly.
	m.DirectCall(0x100, 0)
	m.Return(0x100, ir.DefNone)
	if m.Stats.RSBHits == 0 {
		t.Error("call/return after refill did not predict")
	}
}

func TestHardwareAssistedForwardCosts(t *testing.T) {
	// FineIBT, PAC and VeriFence keep the dispatch BTB-predicted and add
	// a flat per-class check on top — unlike retpolines, which forgo
	// prediction entirely.
	cases := []struct {
		def   ir.Defense
		extra int64
	}{
		{ir.DefFineIBT, DefaultParams().FineIBTCheckCost},
		{ir.DefPAC, DefaultParams().PACSignCost},
		{ir.DefVeriFence, DefaultParams().VeriFenceCost},
	}
	for _, c := range cases {
		m := newModel()
		m.IndirectCall(0x1000, 0x2000, 0x1005, 0, c.def) // trains BTB
		if m.Stats.BTBMisses != 1 {
			t.Errorf("%v: cold call misses = %d, want 1 (still predicted)", c.def, m.Stats.BTBMisses)
		}
		before := m.Cycles
		m.IndirectCall(0x1000, 0x2000, 0x1005, 0, c.def)
		want := m.P.IndirectCallCost + c.extra
		if got := m.Cycles - before; got != want {
			t.Errorf("%v predicted icall = %d, want %d", c.def, got, want)
		}
		if m.Stats.ThunkedCalls != 2 {
			t.Errorf("%v: ThunkedCalls = %d, want 2", c.def, m.Stats.ThunkedCalls)
		}
	}
}

func TestPACReturnAuthCost(t *testing.T) {
	m := newModel()
	m.DirectCall(0x100, 0)
	before := m.Cycles
	m.Return(0x100, ir.DefPACRet)
	want := m.P.ReturnCost + m.P.PACAuthCost
	if got := m.Cycles - before; got != want {
		t.Errorf("pac-ret predicted return = %d, want %d", got, want)
	}
	if m.Stats.RSBHits != 1 {
		t.Error("pac-ret must keep the RSB prediction")
	}
}

func TestVeriFenceIndirectJumpCost(t *testing.T) {
	m := newModel()
	m.IndirectJump(0x3000, 0x4000, ir.DefVeriFence) // cold: miss + fence
	missCost := m.Cycles
	before := m.Cycles
	m.IndirectJump(0x3000, 0x4000, ir.DefVeriFence)
	want := m.P.IndirectCallCost + m.P.VeriFenceCost
	if got := m.Cycles - before; got != want {
		t.Errorf("fenced predicted ijump = %d, want %d", got, want)
	}
	if missCost <= want {
		t.Errorf("cold fenced ijump %d not dearer than warm %d", missCost, want)
	}
}

func TestNewBackendCostOrdering(t *testing.T) {
	// The new backends' whole point is a predicted dispatch plus a cheap
	// check: each per-call cost must undercut the retpoline thunk.
	p := DefaultParams()
	for name, c := range map[string]int64{
		"fineibt": p.FineIBTCheckCost, "pac-sign": p.PACSignCost, "verifence": p.VeriFenceCost,
	} {
		if c >= p.RetpolineCost {
			t.Errorf("%s check cost %d not cheaper than retpoline %d", name, c, p.RetpolineCost)
		}
	}
	if p.PACAuthCost >= p.RetRetpolineCost {
		t.Errorf("pac auth %d not cheaper than return retpoline %d", p.PACAuthCost, p.RetRetpolineCost)
	}
}

func TestDefenseCostTableNewBackends(t *testing.T) {
	m := newModel()
	for _, def := range []ir.Defense{ir.DefFineIBT, ir.DefPAC, ir.DefPACRet, ir.DefVeriFence} {
		if _, ok := m.DefenseCost(def); !ok {
			t.Errorf("DefenseCost(%v) not defined", def)
		}
	}
}
