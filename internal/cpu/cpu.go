// Package cpu models the microarchitectural state that transient
// control-flow attacks abuse and that PIBE's cost/benefit game is played
// against: the branch target buffer (BTB), the return stack buffer (RSB),
// the pattern history table (PHT) and the instruction cache.
//
// The model is a timing simulator, not a pipeline simulator: every
// control-flow event is charged a cycle cost derived from predictor state,
// and hardened sites are charged the thunk costs measured in Table 1 of
// the paper. It is deliberately deterministic — same instruction stream,
// same cycle count — so experiments are reproducible.
package cpu

import (
	"math/bits"

	"repro/internal/ir"
)

// Params configures the model. The zero value is not usable; call
// DefaultParams.
type Params struct {
	// BTBEntries is the number of direct-mapped BTB slots (power of two).
	// Indirect branches index the BTB with the low bits of their
	// address, so distinct branches can alias — the property Spectre V2
	// exploits.
	BTBEntries int
	// RSBDepth is the return stack buffer depth (typically 16).
	RSBDepth int
	// PHTEntries is the number of 2-bit pattern history counters.
	PHTEntries int
	// ICacheSets, ICacheWays and ICacheLine describe the instruction
	// cache geometry. Defaults model 32 KB / 8-way / 64-byte lines.
	ICacheSets, ICacheWays int
	ICacheLine             int64

	// MispredictPenalty is charged when a branch target or direction is
	// mispredicted (pipeline flush).
	MispredictPenalty int64
	// ICacheMissPenalty is charged per instruction line fetched from L2.
	ICacheMissPenalty int64
	// DirectCallCost is the base cost of a predicted direct call.
	DirectCallCost int64
	// CallArgCost is charged per call argument (argument set-up moves).
	CallArgCost int64
	// ReturnCost is the base cost of a correctly predicted return.
	ReturnCost int64
	// IndirectCallCost is the base cost of a BTB-hit indirect call.
	IndirectCallCost int64
	// CondBranchCost is the base cost of a correctly predicted
	// conditional branch.
	CondBranchCost int64

	// Defense thunk costs, in cycles, matching Table 1 and §6.3 of the
	// paper. These replace prediction entirely: a retpoline always costs
	// RetpolineCost regardless of BTB state.
	RetpolineCost       int64 // Spectre V2 retpoline (forward edge), ~21
	LVIForwardCost      int64 // LVI-CFI lfence on an indirect call, ~9
	FencedRetpolineCost int64 // combined retpoline + LVI (Listing 7), ~42
	RetRetpolineCost    int64 // return retpoline, ~16
	LVIReturnCost       int64 // LVI-CFI return hardening (Listing 6), ~11
	FencedRetRetCost    int64 // combined backward-edge defense, ~32

	// Non-transient defense costs (Table 1's cheap rows). These add to
	// the predicted dispatch instead of replacing it.
	CFICheckCost       int64 // LLVM-CFI target-set check, ~3
	StackProtectorCost int64 // canary store+check per return, ~4
	SafeStackCost      int64 // separate return stack bookkeeping, ~1

	// Post-2021 hardware-assisted defense costs. Like the cheap rows
	// above they add to a normally predicted dispatch instead of
	// replacing it — that different cost shape (near-constant, tiny) is
	// what moves the budget/benefit knee relative to retpolines.
	FineIBTCheckCost int64 // landing-pad SID compare at the callee, ~4
	PACSignCost      int64 // pointer-auth sign on the call side, ~6
	PACAuthCost      int64 // return-address authenticate, ~8
	VeriFenceCost    int64 // lfence at a verifier-unproved site, ~10

	// RSBRefillCost is the cost of stuffing the RSB with benign entries
	// on a privilege transition — the ad-hoc kernel mitigation §6.4
	// compares return retpolines against.
	RSBRefillCost int64

	// FreqGHz converts cycles to wall-clock time in reports.
	FreqGHz float64
}

// DefaultParams returns parameters loosely calibrated to the paper's
// Skylake testbed (i7-8700K) and its Table 1 thunk measurements.
func DefaultParams() Params {
	return Params{
		BTBEntries:          4096,
		RSBDepth:            16,
		PHTEntries:          16384,
		ICacheSets:          64,
		ICacheWays:          8,
		ICacheLine:          64,
		MispredictPenalty:   18,
		ICacheMissPenalty:   14,
		DirectCallCost:      2,
		CallArgCost:         1,
		ReturnCost:          1,
		IndirectCallCost:    2,
		CondBranchCost:      1,
		RetpolineCost:       21,
		LVIForwardCost:      9,
		FencedRetpolineCost: 42,
		RetRetpolineCost:    16,
		LVIReturnCost:       11,
		FencedRetRetCost:    32,
		CFICheckCost:        3,
		StackProtectorCost:  4,
		SafeStackCost:       1,
		FineIBTCheckCost:    4,
		PACSignCost:         6,
		PACAuthCost:         8,
		VeriFenceCost:       10,
		RSBRefillCost:       34,
		FreqGHz:             3.7,
	}
}

// Counters tallies predictor behaviour for diagnostics and tests.
type Counters struct {
	Instructions  int64
	BTBHits       int64
	BTBMisses     int64
	RSBHits       int64
	RSBMisses     int64
	PHTHits       int64
	PHTMisses     int64
	ICacheHits    int64
	ICacheMisses  int64
	DirectCalls   int64
	IndirectCalls int64
	Returns       int64
	ThunkedCalls  int64 // indirect calls through a defense thunk
	ThunkedRets   int64 // returns through a defense thunk
}

// Model is one logical core's worth of microarchitectural state.
// It is not safe for concurrent use.
type Model struct {
	P      Params
	Cycles int64
	Stats  Counters

	btb     []int64 // predicted target per slot; 0 = empty
	btbMask int64

	rsb    []int64 // circular return stack
	rsbTop int     // index of most recent entry
	rsbLen int     // valid entries (0..RSBDepth)

	pht     []uint8 // 2-bit saturating counters
	phtMask int64

	// The instruction cache keeps LRU order with monotonic use stamps
	// instead of per-way rank counters: a hit is one tag scan plus one
	// stamp store, and the eviction victim is the minimum stamp. Stamps
	// are seeded descending by way index so a cold set evicts ways in the
	// same order rank-based LRU would (highest way first); thereafter
	// stamps are unique, so the two schemes pick identical victims and
	// the cycle/hit accounting is bit-for-bit unchanged.
	//
	// Tags and stamps are stored flat ([set*ways+way]) and each set
	// remembers its most-recently-hit way, which short-circuits the tag
	// scan for the dominant re-touch pattern (straight-line execution
	// touching the same lines every block). The MRU probe is a pure
	// lookup optimization: hit/miss/eviction behaviour is unchanged.
	icTags  []int64 // [set*ways+way] line tag; -1 = invalid
	icStamp []int64 // [set*ways+way] last-use stamp; min = LRU victim
	icMRU   []int32 // [set] way of the most recent hit or fill
	icTick  int64   // monotonic use counter
	icWays  int
	icMask  int64
	icSets  int64
	// icShift converts an aligned line address to its set index by
	// shift instead of division (ICacheLine is a power of two; New
	// falls back to icShift < 0 and division otherwise).
	icShift int
}

// New returns a Model with cold predictors and caches.
func New(p Params) *Model {
	m := &Model{P: p}
	m.btb = make([]int64, p.BTBEntries)
	m.btbMask = int64(p.BTBEntries - 1)
	m.rsb = make([]int64, p.RSBDepth)
	m.pht = make([]uint8, p.PHTEntries)
	m.phtMask = int64(p.PHTEntries - 1)
	m.icWays = p.ICacheWays
	m.icTags = make([]int64, p.ICacheSets*p.ICacheWays)
	m.icStamp = make([]int64, p.ICacheSets*p.ICacheWays)
	m.icMRU = make([]int32, p.ICacheSets)
	for i := range m.icTags {
		m.icTags[i] = -1
		m.icStamp[i] = -int64(i % p.ICacheWays)
	}
	m.icTick = 1
	m.icShift = -1
	if p.ICacheLine > 0 && p.ICacheLine&(p.ICacheLine-1) == 0 {
		m.icShift = bits.TrailingZeros64(uint64(p.ICacheLine))
	}
	m.icMask = int64(p.ICacheSets - 1)
	m.icSets = int64(p.ICacheSets)
	return m
}

// Reset clears cycle count and statistics but keeps predictor state, so a
// warmed-up model can be measured.
func (m *Model) Reset() {
	m.Cycles = 0
	m.Stats = Counters{}
}

// ResetAll additionally flushes all predictors and caches.
func (m *Model) ResetAll() {
	m.Reset()
	for i := range m.btb {
		m.btb[i] = 0
	}
	for i := range m.pht {
		m.pht[i] = 0
	}
	m.rsbLen, m.rsbTop = 0, 0
	for i := range m.icTags {
		m.icTags[i] = -1
		m.icStamp[i] = -int64(i % m.icWays)
	}
	for s := range m.icMRU {
		m.icMRU[s] = 0
	}
	m.icTick = 1
}

// Micros converts the accumulated cycle count to microseconds.
func (m *Model) Micros() float64 {
	return float64(m.Cycles) / (m.P.FreqGHz * 1e3)
}

// Straightline charges the pre-aggregated cost of a basic block's
// non-control instructions and touches its instruction-cache lines.
// lineBase is the address of the block's first line; nLines the number of
// consecutive lines the block spans.
func (m *Model) Straightline(cost int64, nInstr int64, lineBase int64, nLines int) {
	m.Cycles += cost
	m.Stats.Instructions += nInstr
	line := lineBase &^ (m.P.ICacheLine - 1)
	if nLines == 1 { // the common case: small block within one line
		m.touchLine(line)
		return
	}
	stride := m.P.ICacheLine
	for i := 0; i < nLines; i++ {
		m.touchLine(line)
		line += stride
	}
}

// AddStraightline charges pre-aggregated instruction cost without
// touching the cache; the interpreter pairs it with TouchLines at block
// entry.
func (m *Model) AddStraightline(cost, nInstr int64) {
	m.Cycles += cost
	m.Stats.Instructions += nInstr
}

// TouchLines touches n consecutive instruction-cache lines starting at
// base (rounded down to a line boundary).
func (m *Model) TouchLines(base int64, n int) {
	line := base &^ (m.P.ICacheLine - 1)
	if n == 1 {
		m.touchLine(line)
		return
	}
	stride := m.P.ICacheLine
	for i := 0; i < n; i++ {
		m.touchLine(line)
		line += stride
	}
}

// TouchLine touches the single instruction-cache line containing base.
// It is the one-line specialization of TouchLines, skipping the loop
// set-up for the dominant single-line block.
func (m *Model) TouchLine(base int64) {
	m.touchLine(base &^ (m.P.ICacheLine - 1))
}

func (m *Model) touchLine(line int64) {
	// Set-indexed MRU probe: straight-line execution re-touches the
	// same lines block after block, and the most recently touched line
	// of any set is by construction that set's MRU way, so this single
	// probe resolves both repeat-line and alternating-line patterns
	// without a tag scan. A probe is a lookup shortcut only — hit/miss
	// outcomes, stamp updates and eviction are identical either way.
	if m.icShift >= 0 {
		set := (line >> m.icShift) & m.icMask
		if mru := int(set)*m.icWays + int(m.icMRU[set]); m.icTags[mru] == line {
			m.Stats.ICacheHits++
			m.icStamp[mru] = m.icTick
			m.icTick++
			return
		}
	}
	m.touchLineSlow(line)
}

// touchLineSlow handles the tag scan and fill for a line that missed the
// MRU probe (and the probe itself when the line size is not a power of
// two). line is already aligned.
func (m *Model) touchLineSlow(line int64) {
	var set int64
	if m.icShift >= 0 {
		set = (line >> m.icShift) & m.icMask
	} else {
		set = (line / m.P.ICacheLine) & m.icMask
		base := int(set) * m.icWays
		if mru := base + int(m.icMRU[set]); m.icTags[mru] == line {
			m.Stats.ICacheHits++
			m.icStamp[mru] = m.icTick
			m.icTick++
			return
		}
	}
	base := int(set) * m.icWays
	tags := m.icTags[base : base+m.icWays]
	stamp := m.icStamp[base : base+m.icWays]
	// One pass finds both the matching way (hit) and the LRU victim
	// (miss), so the miss path — common once the working set exceeds
	// the cache — does not rescan.
	victim := 0
	for w := range tags {
		if tags[w] == line {
			m.Stats.ICacheHits++
			stamp[w] = m.icTick
			m.icTick++
			m.icMRU[set] = int32(w)
			return
		}
		if stamp[w] < stamp[victim] {
			victim = w
		}
	}
	m.Stats.ICacheMisses++
	m.Cycles += m.P.ICacheMissPenalty
	tags[victim] = line
	stamp[victim] = m.icTick
	m.icTick++
	m.icMRU[set] = int32(victim)
}

// DirectCall charges a direct call at siteAddr returning to retAddr and
// pushes the return address onto the RSB.
func (m *Model) DirectCall(retAddr int64, args int32) {
	m.Stats.DirectCalls++
	m.Cycles += m.P.DirectCallCost + int64(args)*m.P.CallArgCost
	m.pushRSB(retAddr)
}

// IndirectCall charges an indirect call at siteAddr to targetAddr under
// the given defense, pushes retAddr, and trains the BTB when the call is
// executed natively (no thunk).
func (m *Model) IndirectCall(siteAddr, targetAddr, retAddr int64, args int32, def ir.Defense) {
	m.Stats.IndirectCalls++
	m.Cycles += int64(args) * m.P.CallArgCost
	switch def {
	case ir.DefNone:
		slot := siteAddr & m.btbMask
		if m.btb[slot] == targetAddr {
			m.Stats.BTBHits++
			m.Cycles += m.P.IndirectCallCost
		} else {
			m.Stats.BTBMisses++
			m.Cycles += m.P.IndirectCallCost + m.P.MispredictPenalty
			m.btb[slot] = targetAddr
		}
	case ir.DefRetpoline:
		m.Stats.ThunkedCalls++
		m.Cycles += m.P.RetpolineCost
	case ir.DefLVI:
		// LVI-CFI keeps the indirect jump (BTB-predicted) but fences
		// the target load.
		m.Stats.ThunkedCalls++
		slot := siteAddr & m.btbMask
		if m.btb[slot] == targetAddr {
			m.Stats.BTBHits++
			m.Cycles += m.P.IndirectCallCost + m.P.LVIForwardCost
		} else {
			m.Stats.BTBMisses++
			m.Cycles += m.P.IndirectCallCost + m.P.LVIForwardCost + m.P.MispredictPenalty
			m.btb[slot] = targetAddr
		}
	case ir.DefFencedRetpoline:
		m.Stats.ThunkedCalls++
		m.Cycles += m.P.FencedRetpolineCost
	case ir.DefLLVMCFI:
		// A type-set check before a normally predicted dispatch.
		slot := siteAddr & m.btbMask
		if m.btb[slot] == targetAddr {
			m.Stats.BTBHits++
			m.Cycles += m.P.IndirectCallCost + m.P.CFICheckCost
		} else {
			m.Stats.BTBMisses++
			m.Cycles += m.P.IndirectCallCost + m.P.CFICheckCost + m.P.MispredictPenalty
			m.btb[slot] = targetAddr
		}
	case ir.DefFineIBT:
		// Coarse IBT landing pad plus the per-site SID compare executed
		// at the callee; the dispatch itself stays BTB-predicted.
		m.Stats.ThunkedCalls++
		slot := siteAddr & m.btbMask
		if m.btb[slot] == targetAddr {
			m.Stats.BTBHits++
			m.Cycles += m.P.IndirectCallCost + m.P.FineIBTCheckCost
		} else {
			m.Stats.BTBMisses++
			m.Cycles += m.P.IndirectCallCost + m.P.FineIBTCheckCost + m.P.MispredictPenalty
			m.btb[slot] = targetAddr
		}
	case ir.DefPAC:
		// Camouflage-style PAC-CFI signs the pointer on the call side;
		// prediction is untouched.
		m.Stats.ThunkedCalls++
		slot := siteAddr & m.btbMask
		if m.btb[slot] == targetAddr {
			m.Stats.BTBHits++
			m.Cycles += m.P.IndirectCallCost + m.P.PACSignCost
		} else {
			m.Stats.BTBMisses++
			m.Cycles += m.P.IndirectCallCost + m.P.PACSignCost + m.P.MispredictPenalty
			m.btb[slot] = targetAddr
		}
	case ir.DefVeriFence:
		// An lfence before the dispatch of a site the verifier could not
		// prove; the dispatch itself stays BTB-predicted after the fence
		// retires.
		m.Stats.ThunkedCalls++
		slot := siteAddr & m.btbMask
		if m.btb[slot] == targetAddr {
			m.Stats.BTBHits++
			m.Cycles += m.P.IndirectCallCost + m.P.VeriFenceCost
		} else {
			m.Stats.BTBMisses++
			m.Cycles += m.P.IndirectCallCost + m.P.VeriFenceCost + m.P.MispredictPenalty
			m.btb[slot] = targetAddr
		}
	default:
		// A backward-edge defense on a forward edge is a hardening-pass
		// bug; charge the worst case rather than silently undercount.
		m.Stats.ThunkedCalls++
		m.Cycles += m.P.FencedRetpolineCost
	}
	m.pushRSB(retAddr)
}

// Return charges a return to retAddr under the given defense and pops the
// RSB.
func (m *Model) Return(retAddr int64, def ir.Defense) {
	m.Stats.Returns++
	predicted, ok := m.popRSB()
	switch def {
	case ir.DefNone:
		if ok && predicted == retAddr {
			m.Stats.RSBHits++
			m.Cycles += m.P.ReturnCost
		} else {
			m.Stats.RSBMisses++
			m.Cycles += m.P.ReturnCost + m.P.MispredictPenalty
		}
	case ir.DefRetRetpoline:
		m.Stats.ThunkedRets++
		m.Cycles += m.P.RetRetpolineCost
	case ir.DefLVIRet:
		m.Stats.ThunkedRets++
		if ok && predicted == retAddr {
			m.Stats.RSBHits++
			m.Cycles += m.P.ReturnCost + m.P.LVIReturnCost
		} else {
			m.Stats.RSBMisses++
			m.Cycles += m.P.ReturnCost + m.P.LVIReturnCost + m.P.MispredictPenalty
		}
	case ir.DefFencedRetRet:
		m.Stats.ThunkedRets++
		m.Cycles += m.P.FencedRetRetCost
	case ir.DefStackProtector, ir.DefSafeStack:
		extra := m.P.StackProtectorCost
		if def == ir.DefSafeStack {
			extra = m.P.SafeStackCost
		}
		if ok && predicted == retAddr {
			m.Stats.RSBHits++
			m.Cycles += m.P.ReturnCost + extra
		} else {
			m.Stats.RSBMisses++
			m.Cycles += m.P.ReturnCost + extra + m.P.MispredictPenalty
		}
	case ir.DefPACRet:
		// PAC-CFI authenticates the return address before the return
		// retires; RSB prediction is untouched.
		m.Stats.ThunkedRets++
		if ok && predicted == retAddr {
			m.Stats.RSBHits++
			m.Cycles += m.P.ReturnCost + m.P.PACAuthCost
		} else {
			m.Stats.RSBMisses++
			m.Cycles += m.P.ReturnCost + m.P.PACAuthCost + m.P.MispredictPenalty
		}
	default:
		m.Stats.ThunkedRets++
		m.Cycles += m.P.FencedRetRetCost
	}
}

// RefillRSB overwrites every RSB entry with a benign trampoline address
// and charges the stuffing cost — the kernel's ad-hoc mitigation against
// userspace RSB poisoning on privilege transitions (§6.4).
func (m *Model) RefillRSB() {
	const benign = 0x7fffff00
	for i := 0; i < m.P.RSBDepth; i++ {
		m.pushRSB(benign)
	}
	// Refilling leaves the RSB without the caller's real frames, so the
	// next returns mispredict (benign, not attacker-controlled).
	m.rsbLen = m.P.RSBDepth
	m.Cycles += m.P.RSBRefillCost
}

// CondBranch charges a conditional branch at addr that resolves to taken,
// updating the PHT.
func (m *Model) CondBranch(addr int64, taken bool) {
	slot := addr & m.phtMask
	ctr := m.pht[slot]
	predictTaken := ctr >= 2
	if predictTaken == taken {
		m.Stats.PHTHits++
		m.Cycles += m.P.CondBranchCost
	} else {
		m.Stats.PHTMisses++
		m.Cycles += m.P.CondBranchCost + m.P.MispredictPenalty
	}
	if taken && ctr < 3 {
		m.pht[slot] = ctr + 1
	} else if !taken && ctr > 0 {
		m.pht[slot] = ctr - 1
	}
}

// IndirectJump charges a jump-table dispatch (or other indirect jump) at
// siteAddr to targetAddr. Indirect jumps use the BTB like indirect calls
// but push nothing.
func (m *Model) IndirectJump(siteAddr, targetAddr int64, def ir.Defense) {
	switch def {
	case ir.DefNone:
		slot := siteAddr & m.btbMask
		if m.btb[slot] == targetAddr {
			m.Stats.BTBHits++
			m.Cycles += m.P.IndirectCallCost
		} else {
			m.Stats.BTBMisses++
			m.Cycles += m.P.IndirectCallCost + m.P.MispredictPenalty
			m.btb[slot] = targetAddr
		}
	case ir.DefRetpoline:
		m.Cycles += m.P.RetpolineCost
	case ir.DefVeriFence:
		// A fenced-but-kept jump table: the verifier never proves a
		// data-driven index, so VeriFence fences the dispatch instead of
		// lowering it.
		slot := siteAddr & m.btbMask
		if m.btb[slot] == targetAddr {
			m.Stats.BTBHits++
			m.Cycles += m.P.IndirectCallCost + m.P.VeriFenceCost
		} else {
			m.Stats.BTBMisses++
			m.Cycles += m.P.IndirectCallCost + m.P.VeriFenceCost + m.P.MispredictPenalty
			m.btb[slot] = targetAddr
		}
	default:
		m.Cycles += m.P.FencedRetpolineCost
	}
}

func (m *Model) pushRSB(ret int64) {
	m.rsbTop++
	if m.rsbTop == m.P.RSBDepth {
		m.rsbTop = 0
	}
	m.rsb[m.rsbTop] = ret
	if m.rsbLen < m.P.RSBDepth {
		m.rsbLen++
	}
}

func (m *Model) popRSB() (int64, bool) {
	if m.rsbLen == 0 {
		return 0, false
	}
	v := m.rsb[m.rsbTop]
	m.rsbTop--
	if m.rsbTop < 0 {
		m.rsbTop = m.P.RSBDepth - 1
	}
	m.rsbLen--
	return v, true
}

// --- Speculation introspection and poisoning (attack-simulator API) ---

// PredictIndirect returns the BTB's current prediction for an indirect
// branch at addr (0 if the slot is empty).
func (m *Model) PredictIndirect(addr int64) int64 {
	return m.btb[addr&m.btbMask]
}

// PoisonBTB writes target into the BTB slot that branches at victimAddr
// index — the Spectre V2 training primitive. The attacker only needs an
// address that aliases to the same slot.
func (m *Model) PoisonBTB(victimAddr, target int64) {
	m.btb[victimAddr&m.btbMask] = target
}

// PredictReturn returns the RSB's current top-of-stack prediction.
func (m *Model) PredictReturn() (int64, bool) {
	if m.rsbLen == 0 {
		return 0, false
	}
	return m.rsb[m.rsbTop], true
}

// PoisonRSB overwrites the top n RSB entries with target — the Ret2spec
// training primitive.
func (m *Model) PoisonRSB(target int64, n int) {
	for i := 0; i < n; i++ {
		m.pushRSB(target)
	}
}

// DefenseCost returns the flat per-execution cost of a hardening thunk,
// used by reporting code; ok is false for DefNone (whose cost is dynamic).
func (m *Model) DefenseCost(def ir.Defense) (cost int64, ok bool) {
	switch def {
	case ir.DefRetpoline:
		return m.P.RetpolineCost, true
	case ir.DefLVI:
		return m.P.LVIForwardCost, true
	case ir.DefFencedRetpoline:
		return m.P.FencedRetpolineCost, true
	case ir.DefRetRetpoline:
		return m.P.RetRetpolineCost, true
	case ir.DefLVIRet:
		return m.P.LVIReturnCost, true
	case ir.DefFencedRetRet:
		return m.P.FencedRetRetCost, true
	case ir.DefFineIBT:
		return m.P.FineIBTCheckCost, true
	case ir.DefPAC:
		return m.P.PACSignCost, true
	case ir.DefPACRet:
		return m.P.PACAuthCost, true
	case ir.DefVeriFence:
		return m.P.VeriFenceCost, true
	}
	return 0, false
}
