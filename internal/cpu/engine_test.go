package cpu

import "testing"

// TestEngineStateMatchesModel pins the EngineView/EngineSync/
// EngineRestore borrow protocol the threaded-code engine relies on: the
// view's slices alias the model's own arrays (a predictor update
// through the view is a predictor update of the model), the scalars
// round-trip through Restore, and Sync refreshes exactly the scalars a
// model method may have evolved between runs.
func TestEngineStateMatchesModel(t *testing.T) {
	m := New(DefaultParams())

	// Evolve some state through the method interface first.
	m.DirectCall(0x1000, 2)
	m.IndirectCall(0x2000, 0x3000, 0x2008, 1, 0)
	m.CondBranch(0x4000, true)
	m.TouchLines(0x5000, 3)
	m.Return(0x2008, 0)

	var st EngineState
	if !m.EngineView(&st) {
		t.Fatal("EngineView failed for default geometry")
	}
	if st.Cycles != m.Cycles || st.Stats != m.Stats {
		t.Fatalf("view scalars diverge: cycles %d vs %d", st.Cycles, m.Cycles)
	}
	if st.ICShift < 0 || st.ICMask != int64(len(st.ICMRU)-1) {
		t.Fatalf("view geometry inconsistent: shift %d mask %d sets %d",
			st.ICShift, st.ICMask, len(st.ICMRU))
	}
	if len(st.ICTags) != len(st.ICMRU)*st.ICWays || len(st.ICStamp) != len(st.ICTags) {
		t.Fatalf("icache arrays inconsistent: %d tags, %d stamps, %d sets × %d ways",
			len(st.ICTags), len(st.ICStamp), len(st.ICMRU), st.ICWays)
	}
	if len(st.RSB) != st.RSBDepth {
		t.Fatalf("RSB length %d != depth %d", len(st.RSB), st.RSBDepth)
	}

	// Writes through the borrowed slices must be writes to the model:
	// saturate a PHT counter via the view, then predict through the
	// method interface and expect a hit.
	slot := int64(0x4000) & st.PHTMask
	st.PHT[slot] = 3
	// Engine-evolved scalars go back through Restore.
	st.Cycles += 123
	st.Stats.Instructions += 7
	st.ICTick += 5
	m.EngineRestore(&st)
	if m.Cycles != st.Cycles || m.Stats != st.Stats {
		t.Fatalf("restore did not write scalars back: cycles %d vs %d", m.Cycles, st.Cycles)
	}
	before := m.Stats.PHTHits
	m.CondBranch(0x4000, true)
	if m.Stats.PHTHits != before+1 {
		t.Fatal("PHT write through the borrowed view did not reach the model")
	}

	// Sync refreshes only the run-evolved scalars; the borrowed arrays
	// stay the same backing store.
	tags0 := &st.ICTags[0]
	m.AddStraightline(42, 4)
	m.EngineSync(&st)
	if st.Cycles != m.Cycles || st.Stats != m.Stats || st.ICTick != m.icTick {
		t.Fatalf("sync missed scalars: cycles %d vs %d", st.Cycles, m.Cycles)
	}
	if &st.ICTags[0] != tags0 {
		t.Fatal("sync re-copied geometry")
	}

	// The RSB cursor round-trips: push through the view's arrays the way
	// the engine does, restore, and the model must predict that return.
	top := st.RSBTop + 1
	if top == st.RSBDepth {
		top = 0
	}
	st.RSB[top] = 0x7700
	st.RSBTop = top
	if st.RSBLen < st.RSBDepth {
		st.RSBLen++
	}
	m.EngineRestore(&st)
	if got, ok := m.PredictReturn(); !ok || got != 0x7700 {
		t.Fatalf("PredictReturn = %#x, %v after view push of 0x7700", got, ok)
	}

	// Geometry without an inlinable form is refused.
	odd := DefaultParams()
	odd.ICacheLine = 48
	if New(odd).EngineView(&st) {
		t.Fatal("EngineView accepted a non-power-of-two line size")
	}
}
