package cpu

// EngineState is a borrowed view of a Model's predictor and cache state,
// laid out for an execution engine that inlines the accounting instead of
// calling the Model's methods per event. The slices alias the Model's
// own arrays, so predictor updates land directly in the model; the
// scalars (Cycles, Stats, RSB cursor, icache tick) are evolved locally
// by the engine and written back with EngineRestore.
//
// The contract is exclusive use: between EngineView and EngineRestore the
// Model's methods must not be called, and the Model is single-owner to
// begin with (it is not safe for concurrent use). An engine that mirrors
// the Model's update rules operation-for-operation is cycle-exact, not
// approximate: Cycles and every Counters field are pure sums, and the
// order-sensitive state (BTB/PHT slots, RSB cursor, LRU stamps) is
// updated through the same arrays with the same rules in the same
// sequence.
type EngineState struct {
	Cycles int64
	Stats  Counters

	BTB     []int64
	BTBMask int64

	RSB      []int64
	RSBTop   int
	RSBLen   int
	RSBDepth int

	PHT     []uint8
	PHTMask int64

	ICTags  []int64
	ICStamp []int64
	ICMRU   []int32
	ICTick  int64
	ICWays  int
	ICMask  int64
	ICShift int
}

// EngineView fills st with a borrowed view of the model's state. It
// returns false when the model's geometry has no inlinable form (icache
// line size not a power of two, so set indexing needs division); the
// caller must then fall back to the method-call interface.
func (m *Model) EngineView(st *EngineState) bool {
	if m.icShift < 0 {
		return false
	}
	st.Cycles = m.Cycles
	st.Stats = m.Stats
	st.BTB = m.btb
	st.BTBMask = m.btbMask
	st.RSB = m.rsb
	st.RSBTop = m.rsbTop
	st.RSBLen = m.rsbLen
	st.RSBDepth = m.P.RSBDepth
	st.PHT = m.pht
	st.PHTMask = m.phtMask
	st.ICTags = m.icTags
	st.ICStamp = m.icStamp
	st.ICMRU = m.icMRU
	st.ICTick = m.icTick
	st.ICWays = m.icWays
	st.ICMask = m.icMask
	st.ICShift = m.icShift
	return true
}

// EngineSync refreshes the run-evolved scalars of a view previously
// filled by EngineView (Cycles, Stats, RSB cursor, icache tick) without
// re-copying geometry: the predictor arrays, their masks and the cost
// parameters are fixed when the Model is constructed, so a caller that
// keeps the same Model can re-borrow with this cheaper call.
func (m *Model) EngineSync(st *EngineState) {
	st.Cycles = m.Cycles
	st.Stats = m.Stats
	st.RSBTop = m.rsbTop
	st.RSBLen = m.rsbLen
	st.ICTick = m.icTick
}

// EngineRestore writes the engine-evolved scalars back into the model,
// ending the borrow started by EngineView. Slice-backed state (BTB, PHT,
// RSB entries, icache tags/stamps/MRU) was mutated in place and needs no
// copy-back.
func (m *Model) EngineRestore(st *EngineState) {
	m.Cycles = st.Cycles
	m.Stats = st.Stats
	m.rsbTop = st.RSBTop
	m.rsbLen = st.RSBLen
	m.icTick = st.ICTick
}
