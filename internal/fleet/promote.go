package fleet

import (
	"fmt"
	"sort"

	"repro/internal/prof"
	"repro/internal/resilience"
)

// Promoter is the canary-gated promotion pipeline, extracted from the
// fleet service so any profile-driven control loop can reuse it: the
// fleet promotes one image per fleet, the multi-tenant ingestion front
// promotes one per tenant. The owner feeds it one step (epoch, round)
// at a time; the promoter watches the drift statistic, asks the
// Controller for a candidate when drift trips the threshold, walks the
// candidate through differential validation, a canary window, the
// latency-regression and new-fault-kind gates, and either promotes it
// (advancing the baseline) or rolls it back and arms the
// capped-backoff rebuild cool-down.
//
// Promoter is not safe for concurrent use; owners drive it from their
// barrier, like the Breaker it composes with.
type Promoter struct {
	cfg  PromoteConfig
	ctrl *Controller

	// baseline is the profile the incumbent image was built from; Step
	// measures drift against it and a promotion advances it to the
	// snapshot that drove the rebuild.
	baseline *prof.Profile

	canary    *canaryState
	strikes   int // consecutive rejections / failed rebuilds
	cooldown  int // steps left before the next rebuild attempt
	seenKinds map[string]bool
}

// PromoteConfig shapes one promotion pipeline.
type PromoteConfig struct {
	// DriftThreshold triggers a rebuild when the hot-set overlap the
	// owner reports falls below it; 0 disables drift-triggered rebuilds.
	DriftThreshold float64
	// CanarySteps is how many steps (counting the build step) a freshly
	// built candidate serves before the promotion decision (default 1).
	CanarySteps int
	// RegressionBudget is the relative canary-latency regression allowed
	// versus the incumbent before the candidate is rejected (0 means the
	// default 0.05; negative means no tolerance at all).
	RegressionBudget float64
	// Backoff shapes the rebuild cool-down after a rejected candidate or
	// failed rebuild: the k-th consecutive strike suppresses rebuilds
	// for Backoff.Steps(k) steps. The zero value means
	// resilience.DefaultRetry().
	Backoff resilience.RetryPolicy
}

func (c PromoteConfig) withDefaults() PromoteConfig {
	if c.CanarySteps <= 0 {
		c.CanarySteps = 1
	}
	switch {
	case c.RegressionBudget == 0:
		c.RegressionBudget = 0.05
	case c.RegressionBudget < 0:
		c.RegressionBudget = 0
	}
	return c
}

// StepOutcome reports what one promotion step did; the zero value means
// "nothing happened" (no drift, or the pipeline is disabled).
type StepOutcome struct {
	// Rebuilt records that drift tripped the threshold and the
	// controller produced a candidate; RebuildErr carries a failed
	// build's error text (exactly one of the two is set on a rebuild
	// attempt).
	Rebuilt    bool
	RebuildErr string
	// Canary reports that a candidate served this step.
	Canary bool
	// Promoted records that the candidate passed every gate and the
	// baseline advanced; Rejected carries the reason it was rolled back
	// instead.
	Promoted bool
	Rejected string
	// CoolingDown, when non-zero, is how many cool-down steps remained
	// (counting this one) when drift was detected but the rebuild was
	// suppressed after recent strikes.
	CoolingDown int
}

// NewPromoter builds a promotion pipeline. baseline is the profile the
// incumbent image was built from (nil disables drift detection until a
// baseline is set); ctrl supplies the rebuild hooks (nil disables
// rebuilds entirely — the promoter then only tracks fault kinds).
func NewPromoter(cfg PromoteConfig, ctrl *Controller, baseline *prof.Profile) *Promoter {
	return &Promoter{
		cfg:       cfg.withDefaults(),
		ctrl:      ctrl,
		baseline:  baseline,
		seenKinds: make(map[string]bool),
	}
}

// Baseline returns the profile drift is currently measured against (it
// advances on every promotion).
func (p *Promoter) Baseline() *prof.Profile { return p.baseline }

// SetBaseline replaces the drift baseline (a restored checkpoint's, or
// the first snapshot of a fresh tenant).
func (p *Promoter) SetBaseline(b *prof.Profile) { p.baseline = b }

// Backoff returns the cool-down state for checkpointing: consecutive
// strikes and the steps left before the next rebuild attempt.
func (p *Promoter) Backoff() (strikes, cooldown int) { return p.strikes, p.cooldown }

// RestoreBackoff reinstates checkpointed cool-down state. An in-flight
// canary is not restorable through this path; dropping it on resume
// rolls the candidate back, which is the safe direction.
func (p *Promoter) RestoreBackoff(strikes, cooldown int) {
	if strikes > 0 {
		p.strikes = strikes
	}
	if cooldown > 0 {
		p.cooldown = cooldown
	}
}

// CanaryActive reports whether a candidate is currently serving its
// canary window.
func (p *Promoter) CanaryActive() bool { return p.canary != nil }

// Step advances the pipeline by one step. overlap is the owner's drift
// statistic against Baseline (1 = no drift), snap the aggregate snapshot
// a rebuild would train on, stepKinds the fault kinds observed this step
// (the canary's no-new-fault-kinds gate compares them against the kinds
// seen before the candidate was built).
func (p *Promoter) Step(overlap float64, snap *prof.Profile, stepKinds []string) StepOutcome {
	var out StepOutcome
	defer func() {
		for _, k := range stepKinds {
			p.seenKinds[k] = true
		}
	}()

	if p.canary != nil {
		// The candidate is serving its canary window; collect any fault
		// kind never seen before the candidate was built.
		out.Canary = true
		p.canary.served++
		for _, k := range stepKinds {
			if !p.canary.kindsBefore[k] {
				p.canary.newKinds[k] = true
			}
		}
		if p.canary.served >= p.cfg.CanarySteps {
			p.decideCanary(&out)
		}
		return out
	}

	if p.cfg.DriftThreshold <= 0 || overlap >= p.cfg.DriftThreshold ||
		p.ctrl == nil || p.ctrl.Rebuild == nil {
		return out
	}
	if p.cooldown > 0 {
		out.CoolingDown = p.cooldown
		p.cooldown--
		return out
	}
	cand, err := p.ctrl.Rebuild(snap)
	if err != nil {
		out.RebuildErr = err.Error()
		p.strike()
		return out
	}
	out.Rebuilt = true
	if cand == nil {
		cand = &Candidate{}
	}
	if cand.Validate != nil {
		if err := cand.Validate(); err != nil {
			p.reject(&out, "validation: "+err.Error())
			return out
		}
	}
	kindsBefore := make(map[string]bool, len(p.seenKinds)+len(stepKinds))
	for k := range p.seenKinds {
		kindsBefore[k] = true
	}
	for _, k := range stepKinds {
		// This step's collection ran on the incumbent, before the build:
		// its faults predate the candidate.
		kindsBefore[k] = true
	}
	p.canary = &canaryState{
		snap: snap, cand: cand, served: 1,
		kindsBefore: kindsBefore, newKinds: make(map[string]bool),
	}
	out.Canary = true
	if p.canary.served >= p.cfg.CanarySteps {
		p.decideCanary(&out)
	}
	return out
}

// decideCanary runs the promotion gates at the end of the canary window:
// no new fault kinds, canary latency within the regression budget of the
// incumbent, and a successful activation. Any failure rolls back to the
// incumbent.
func (p *Promoter) decideCanary(out *StepOutcome) {
	c := p.canary
	p.canary = nil
	if len(c.newKinds) > 0 {
		kinds := make([]string, 0, len(c.newKinds))
		for k := range c.newKinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		p.reject(out, fmt.Sprintf("canary: new fault kinds %v", kinds))
		return
	}
	if p.ctrl != nil && p.ctrl.Incumbent != nil && c.cand.Measure != nil {
		inc, err := p.ctrl.Incumbent()
		if err != nil {
			p.reject(out, "incumbent measurement: "+err.Error())
			return
		}
		cl, err := c.cand.Measure()
		if err != nil {
			p.reject(out, "canary measurement: "+err.Error())
			return
		}
		if inc > 0 && cl > inc*(1+p.cfg.RegressionBudget) {
			p.reject(out, fmt.Sprintf(
				"canary latency %.0f regresses incumbent %.0f beyond the %.1f%% budget",
				cl, inc, p.cfg.RegressionBudget*100))
			return
		}
	}
	if c.cand.Promote != nil {
		if err := c.cand.Promote(); err != nil {
			p.reject(out, "activation: "+err.Error())
			return
		}
	}
	out.Promoted = true
	p.baseline = c.snap
	p.strikes = 0
	p.cooldown = 0
}

// reject rolls a candidate back to the incumbent, records the reason,
// and arms the cool-down.
func (p *Promoter) reject(out *StepOutcome, reason string) {
	out.Rejected = reason
	p.canary = nil
	p.strike()
}

// strike arms the capped-backoff cool-down after a rejection or failed
// rebuild: the k-th consecutive strike suppresses rebuild attempts for
// Backoff.Steps(k) steps.
func (p *Promoter) strike() {
	p.strikes++
	p.cooldown = p.cfg.Backoff.Steps(p.strikes)
}
