package fleet

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/prof"
)

// StateFile is the checkpoint file name inside Config.StateDir.
const StateFile = "fleet-checkpoint"

// State is everything a fleet service needs to resume mid-loop after a
// crash: the epoch counter, the run counters, the promotion-pipeline
// state (strikes, cool-down, an in-flight canary) and the aggregate and
// baseline profiles. It round-trips through the shared CRC-framed
// checkpoint container (internal/ckpt) via SaveState / LoadState.
type State struct {
	// Epoch is the number of fully completed epochs; a resumed run
	// continues at this index.
	Epoch int
	// Run counters carried into the resumed Result.
	Rebuilds        int
	RebuildFailures int
	Rejections      int
	Partial         bool
	// Promotion-pipeline state.
	Strikes   int
	Cooldown  int
	SeenKinds []string
	// BaselineHash is the content hash of Baseline at save time; a
	// salvaged baseline that no longer matches is discarded on load.
	BaselineHash string
	// Baseline is the training profile the incumbent image was built
	// from (nil when drift detection was off or the baseline section was
	// lost to corruption).
	Baseline *prof.Profile
	// Aggregate is the post-epoch aggregate snapshot.
	Aggregate *prof.Profile
	// CanarySnap is the drifted snapshot behind a canary that was still
	// serving at checkpoint time (nil when none was); the resuming
	// service re-materializes the candidate from it.
	CanarySnap        *prof.Profile
	CanaryServed      int
	CanaryKindsBefore []string
	CanaryNewKinds    []string
}

// SaveState atomically checkpoints st into dir/StateFile: the sections
// are framed and CRC-guarded, written to a temporary file in the same
// directory, synced, and renamed into place — a crash at any point
// leaves either the previous checkpoint or a salvageable new one, never
// a half-written hole where the old state used to be.
func SaveState(dir string, st *State) error {
	if st == nil {
		return fmt.Errorf("fleet: nil state")
	}
	var meta bytes.Buffer
	fmt.Fprintf(&meta, "epoch %d\n", st.Epoch)
	fmt.Fprintf(&meta, "rebuilds %d\n", st.Rebuilds)
	fmt.Fprintf(&meta, "rebuild-failures %d\n", st.RebuildFailures)
	fmt.Fprintf(&meta, "rejections %d\n", st.Rejections)
	fmt.Fprintf(&meta, "partial %t\n", st.Partial)
	fmt.Fprintf(&meta, "strikes %d\n", st.Strikes)
	fmt.Fprintf(&meta, "cooldown %d\n", st.Cooldown)
	if len(st.SeenKinds) > 0 {
		fmt.Fprintf(&meta, "seen-kinds %s\n", strings.Join(st.SeenKinds, " "))
	}
	if st.BaselineHash != "" {
		fmt.Fprintf(&meta, "baseline-hash %s\n", st.BaselineHash)
	}
	if st.CanarySnap != nil {
		fmt.Fprintf(&meta, "canary-served %d\n", st.CanaryServed)
		if len(st.CanaryKindsBefore) > 0 {
			fmt.Fprintf(&meta, "canary-kinds-before %s\n", strings.Join(st.CanaryKindsBefore, " "))
		}
		if len(st.CanaryNewKinds) > 0 {
			fmt.Fprintf(&meta, "canary-new-kinds %s\n", strings.Join(st.CanaryNewKinds, " "))
		}
	}
	secs := []ckpt.Section{{Name: "meta", Data: meta.Bytes()}}
	add := func(name string, p *prof.Profile) {
		if p == nil {
			return
		}
		var buf bytes.Buffer
		p.WriteTo(&buf)
		secs = append(secs, ckpt.Section{Name: name, Data: buf.Bytes()})
	}
	add("baseline", st.Baseline)
	add("aggregate", st.Aggregate)
	add("canary", st.CanarySnap)

	if err := ckpt.SaveAtomic(filepath.Join(dir, StateFile), secs); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	return nil
}

// LoadState reads dir/StateFile leniently: sections whose frame and CRC
// survived are used, damaged ones are dropped (a lost baseline merely
// disables drift detection until the next promotion; a lost aggregate
// restarts collection from an empty aggregate at the checkpointed
// epoch). A missing file returns (nil, nil, nil) — a fresh start. The
// error is non-nil only when no usable state could be recovered at all.
func LoadState(dir string) (*State, *ckpt.Salvage, error) {
	secs, sal, err := ckpt.Load(filepath.Join(dir, StateFile))
	if err != nil {
		return nil, sal, fmt.Errorf("fleet: %w", err)
	}
	if secs == nil && sal == nil {
		return nil, nil, nil
	}
	byName := make(map[string][]byte, len(secs))
	for _, s := range secs {
		byName[s.Name] = s.Data
	}
	meta, ok := byName["meta"]
	if !ok {
		return nil, sal, fmt.Errorf("fleet: checkpoint unusable: meta section lost (%s)", sal)
	}
	st := &State{}
	for _, line := range strings.Split(string(meta), "\n") {
		if line == "" {
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		switch key {
		case "epoch":
			st.Epoch, _ = strconv.Atoi(rest)
		case "rebuilds":
			st.Rebuilds, _ = strconv.Atoi(rest)
		case "rebuild-failures":
			st.RebuildFailures, _ = strconv.Atoi(rest)
		case "rejections":
			st.Rejections, _ = strconv.Atoi(rest)
		case "partial":
			st.Partial = rest == "true"
		case "strikes":
			st.Strikes, _ = strconv.Atoi(rest)
		case "cooldown":
			st.Cooldown, _ = strconv.Atoi(rest)
		case "seen-kinds":
			st.SeenKinds = strings.Fields(rest)
		case "baseline-hash":
			st.BaselineHash = rest
		case "canary-served":
			st.CanaryServed, _ = strconv.Atoi(rest)
		case "canary-kinds-before":
			st.CanaryKindsBefore = strings.Fields(rest)
		case "canary-new-kinds":
			st.CanaryNewKinds = strings.Fields(rest)
		}
	}
	if st.Epoch < 0 {
		return nil, sal, fmt.Errorf("fleet: checkpoint unusable: negative epoch %d", st.Epoch)
	}
	parse := func(name string) *prof.Profile {
		data, ok := byName[name]
		if !ok {
			return nil
		}
		p, err := prof.Read(bytes.NewReader(data))
		if err != nil {
			// The CRC passed but the payload does not parse — treat like a
			// dropped section rather than failing the resume.
			sal.Errs = append(sal.Errs, fmt.Sprintf("section %s unparseable: %v", name, err))
			return nil
		}
		return p
	}
	st.Baseline = parse("baseline")
	st.Aggregate = parse("aggregate")
	st.CanarySnap = parse("canary")
	if st.Baseline != nil && st.BaselineHash != "" && st.Baseline.Hash() != st.BaselineHash {
		sal.Errs = append(sal.Errs,
			fmt.Sprintf("baseline hash %s does not match recorded %s; discarding baseline",
				st.Baseline.Hash(), st.BaselineHash))
		st.Baseline = nil
	}
	return st, sal, nil
}

// Restore primes the service from a loaded checkpoint so Run continues
// at st.Epoch with the restored aggregate, counters and promotion
// state. An in-flight canary is re-materialized by calling the
// controller's Rebuild on the checkpointed snapshot; if that fails the
// canary is dropped and the drift detector simply rebuilds again.
// Restore must be called before Run.
func (s *Service) Restore(st *State) error {
	if st == nil {
		return nil
	}
	if st.Epoch < 0 {
		return fmt.Errorf("fleet: restore: negative epoch %d", st.Epoch)
	}
	s.startEpoch = st.Epoch
	p := s.promo
	p.strikes = st.Strikes
	p.cooldown = st.Cooldown
	p.seenKinds = make(map[string]bool, len(st.SeenKinds))
	for _, k := range st.SeenKinds {
		p.seenKinds[k] = true
	}
	if st.Baseline != nil {
		p.baseline = st.Baseline
	}
	if st.Aggregate != nil {
		s.agg.Add(st.Aggregate)
	}
	if st.CanarySnap != nil && p.ctrl != nil && p.ctrl.Rebuild != nil {
		cand, err := p.ctrl.Rebuild(st.CanarySnap)
		if err == nil {
			if cand == nil {
				cand = &Candidate{}
			}
			c := &canaryState{
				snap: st.CanarySnap, cand: cand, served: st.CanaryServed,
				kindsBefore: make(map[string]bool, len(st.CanaryKindsBefore)),
				newKinds:    make(map[string]bool, len(st.CanaryNewKinds)),
			}
			for _, k := range st.CanaryKindsBefore {
				c.kindsBefore[k] = true
			}
			for _, k := range st.CanaryNewKinds {
				c.newKinds[k] = true
			}
			p.canary = c
		}
	}
	s.resumed = st
	return nil
}

// checkpoint persists the post-epoch state: epoch+1 completed epochs,
// the Result counters so far, the promotion-pipeline state and the
// aggregate snapshot taken this epoch.
func (s *Service) checkpoint(completed int, res *Result, snap *prof.Profile) error {
	st := &State{
		Epoch:           completed,
		Rebuilds:        res.Rebuilds,
		RebuildFailures: res.RebuildFailures,
		Rejections:      res.Rejections,
		Partial:         res.Partial,
		Strikes:         s.promo.strikes,
		Cooldown:        s.promo.cooldown,
		SeenKinds:       sortedKeys(s.promo.seenKinds),
		Baseline:        s.promo.baseline,
		Aggregate:       snap,
	}
	if st.Baseline != nil {
		st.BaselineHash = st.Baseline.Hash()
	}
	if c := s.promo.canary; c != nil {
		st.CanarySnap = c.snap
		st.CanaryServed = c.served
		st.CanaryKindsBefore = sortedKeys(c.kindsBefore)
		st.CanaryNewKinds = sortedKeys(c.newKinds)
	}
	return SaveState(s.cfg.StateDir, st)
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
