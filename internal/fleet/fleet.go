// Package fleet is the continuous-profiling subsystem: it models a fleet
// of production instances that keep profiling the running kernel while
// it serves traffic, streams their profile deltas into a sharded
// aggregator, watches for workload drift, and triggers a re-optimization
// when the live hot set no longer matches the profile the current image
// was built from.
//
// The paper computes its optimization budgets over one offline,
// "representative" profile; in production the workload mix drifts and a
// stale profile silently erodes the ICP/inlining win (the §8.4
// mismatched-profile effect). This package closes that loop:
//
//	runners (N goroutines, mixed flavors) ──deltas──▶ channel
//	     channel ──collector workers──▶ sharded lock-striped Aggregator
//	     epoch barrier ─▶ decay ─▶ snapshot ─▶ drift detector ─▶ rebuild
//
// Determinism contract: with no fault injector armed, the same Seed,
// Shards and Config produce a byte-identical serialized aggregate
// snapshot regardless of goroutine scheduling. Runner seeds are derived
// from (Seed, epoch, runner index), merges are exact commutative uint64
// sums, and decay happens at the epoch barrier — so no interleaving can
// change the result, and fleet runs are replayable the way chaos runs
// are.
package fleet

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/interp"
	"repro/internal/kernel"
	"repro/internal/prof"
	"repro/internal/resilience"
	"repro/internal/workload"
)

// Config parameterizes one fleet profiling run.
type Config struct {
	// Runners is the number of concurrent workload runners per epoch
	// (default 4). Runner i of an epoch profiles Mix[i%len(Mix)].
	Runners int
	// Shards is the aggregator stripe count (default 8).
	Shards int
	// Epochs is the number of profiling epochs (default 1). Decay is
	// applied at each epoch boundary after the first.
	Epochs int
	// OpsScale is each runner's workload-mix multiplier (default 2).
	OpsScale int
	// Seed derives every runner's seed; equal seeds (and shard counts)
	// reproduce byte-identical aggregates.
	Seed int64
	// Decay is the per-epoch count multiplier in (0, 1]; 0 means the
	// default 0.5, 1 disables decay.
	Decay float64
	// Mix lists the workload flavors the fleet runs; runner i draws
	// Mix[i%len(Mix)]. Empty means all-LMBench.
	Mix []workload.Flavor
	// HotBudget is the cumulative-weight budget defining the hot site
	// set the drift detector compares (default 0.99).
	HotBudget float64
	// DriftThreshold triggers a rebuild when the live aggregate's
	// hot-set overlap with the baseline profile falls below it; 0
	// disables drift-triggered rebuilds.
	DriftThreshold float64
	// Inject, when non-nil, threads chaos faults through the collectors.
	// Aborted collector runs degrade to partial deltas that still merge;
	// the fleet only fails when every collector of every epoch
	// contributed nothing. Note that injected faults are drawn from one
	// shared stream, so chaos fleet runs are not byte-deterministic.
	Inject *resilience.Injector
	// OnEpoch, when non-nil, observes each epoch's report after drift
	// detection and any rebuild. Returning an error aborts the run.
	OnEpoch func(EpochReport) error
}

func (c Config) withDefaults() Config {
	if c.Runners <= 0 {
		c.Runners = 4
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.OpsScale <= 0 {
		c.OpsScale = 2
	}
	if c.Decay == 0 {
		c.Decay = 0.5
	}
	if len(c.Mix) == 0 {
		c.Mix = []workload.Flavor{workload.LMBench}
	}
	if c.HotBudget <= 0 || c.HotBudget > 1 {
		c.HotBudget = 0.99
	}
	return c
}

// EpochReport summarizes one epoch of fleet collection.
type EpochReport struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// Merged counts runners whose delta (complete or partial) reached
	// the aggregate; Aborted counts the subset whose profiling run
	// aborted and degraded to a partial delta; Failed counts runners
	// that contributed nothing.
	Merged, Aborted, Failed int
	// Overlap is the hot-set overlap between the live aggregate
	// snapshot and the baseline profile the current image was built
	// from (1 when no baseline is set).
	Overlap float64
	// Rebuilt records that drift tripped the threshold and the rebuild
	// hook succeeded; RebuildErr carries a failed hook's error text.
	Rebuilt    bool
	RebuildErr string
	// Sites and Ops describe the post-epoch aggregate snapshot.
	Sites int
	Ops   uint64
}

// Result is a completed fleet run.
type Result struct {
	Reports []EpochReport
	// Final is the aggregate snapshot after the last epoch.
	Final *prof.Profile
	// Rebuilds counts drift-triggered rebuilds that succeeded.
	Rebuilds int
	// Partial reports that at least one collector aborted or failed;
	// the aggregate is an under-count of the fleet's true activity but
	// remains usable (graceful degradation).
	Partial bool
}

// Service runs fleet profiling over one generated kernel.
type Service struct {
	k    *kernel.Kernel
	prog *interp.Program
	cfg  Config
	agg  *Aggregator
	// baseline is the profile the currently deployed image was built
	// from; the drift detector compares live snapshots against it and
	// rebuild advances it to the snapshot that drove the rebuild.
	baseline *prof.Profile
	// rebuild is invoked with the fresh aggregate snapshot when drift
	// trips the threshold.
	rebuild func(*prof.Profile) error
}

// New builds a fleet service. baseline is the profile the current image
// was built from (nil disables drift detection); rebuild, when non-nil,
// is called with the live snapshot whenever hot-set overlap falls below
// Config.DriftThreshold, and on success the snapshot becomes the new
// baseline.
func New(k *kernel.Kernel, prog *interp.Program, cfg Config, baseline *prof.Profile, rebuild func(*prof.Profile) error) (*Service, error) {
	if k == nil || prog == nil {
		return nil, errors.New("fleet: nil kernel or program")
	}
	cfg = cfg.withDefaults()
	for _, f := range cfg.Mix {
		if workload.Mix(f) == nil {
			return nil, fmt.Errorf("fleet: flavor %v has no workload mix", f)
		}
	}
	return &Service{
		k:        k,
		prog:     prog,
		cfg:      cfg,
		agg:      NewAggregator(cfg.Shards, cfg.Decay),
		baseline: baseline,
		rebuild:  rebuild,
	}, nil
}

// Aggregator exposes the live aggregate for snapshot reads while (or
// after) the service runs.
func (s *Service) Aggregator() *Aggregator { return s.agg }

// runnerSeed derives a distinct deterministic seed per (epoch, runner).
func (s *Service) runnerSeed(epoch, runner int) int64 {
	return s.cfg.Seed*1_000_003 + int64(epoch)*8191 + int64(runner)*127 + 1
}

// delta is one collector's contribution travelling the channel from a
// runner goroutine to the collector workers.
type delta struct {
	p       *prof.Profile
	aborted bool // profiling aborted; p is the salvaged partial
	failed  bool // nothing usable collected
}

// Run executes the configured epochs. Each epoch: N runner goroutines
// profile their flavor concurrently and stream deltas over a channel
// into collector workers that merge them into the sharded aggregator;
// at the epoch barrier the aggregate is decayed (from the second epoch
// on, before new deltas land), snapshotted, and checked for drift
// against the baseline; drift below the threshold triggers the rebuild
// hook with the snapshot.
//
// Collector faults — injected or organic — degrade to partial
// aggregates: an aborted profiling run contributes the partial profile
// it salvaged, and a runner that produces nothing is only counted as
// failed. Run returns an error (resilience.PhaseFleet /
// KindEmptyAggregate) only when, after all epochs, nothing at all was
// aggregated.
func (s *Service) Run() (*Result, error) {
	res := &Result{}
	for e := 0; e < s.cfg.Epochs; e++ {
		if e > 0 {
			s.agg.Decay()
		}
		rep := s.runEpoch(e)

		snap := s.agg.Snapshot()
		rep.Sites = len(snap.Sites)
		rep.Ops = snap.Ops
		rep.Overlap = 1
		if s.baseline != nil {
			rep.Overlap = prof.HotOverlap(snap, s.baseline, s.cfg.HotBudget)
		}
		if s.cfg.DriftThreshold > 0 && rep.Overlap < s.cfg.DriftThreshold && s.rebuild != nil {
			if err := s.rebuild(snap); err != nil {
				rep.RebuildErr = err.Error()
			} else {
				rep.Rebuilt = true
				s.baseline = snap
				res.Rebuilds++
			}
		}
		if rep.Aborted > 0 || rep.Failed > 0 {
			res.Partial = true
		}
		res.Reports = append(res.Reports, rep)
		if e == s.cfg.Epochs-1 {
			res.Final = snap
		}
		if s.cfg.OnEpoch != nil {
			if err := s.cfg.OnEpoch(rep); err != nil {
				return res, fmt.Errorf("fleet: epoch %d observer: %w", e, err)
			}
		}
	}
	if len(res.Final.Sites) == 0 && len(res.Final.Invocations) == 0 {
		return res, resilience.Faultf(resilience.PhaseFleet, resilience.KindEmptyAggregate, "aggregate",
			"fleet: every collector failed; nothing aggregated after %d epochs", s.cfg.Epochs)
	}
	return res, nil
}

// runEpoch fans out the runners, fans their deltas into the aggregator,
// and returns the epoch's collection tallies.
func (s *Service) runEpoch(epoch int) EpochReport {
	rep := EpochReport{Epoch: epoch}
	deltas := make(chan delta, s.cfg.Runners)

	collectors := s.cfg.Runners
	if collectors > 4 {
		collectors = 4
	}
	var mu sync.Mutex // guards rep tallies
	var collectWG sync.WaitGroup
	for w := 0; w < collectors; w++ {
		collectWG.Add(1)
		go func() {
			defer collectWG.Done()
			for d := range deltas {
				if d.p != nil && !d.failed {
					s.agg.Add(d.p)
				}
				mu.Lock()
				switch {
				case d.failed:
					rep.Failed++
				case d.aborted:
					rep.Aborted++
					rep.Merged++
				default:
					rep.Merged++
				}
				mu.Unlock()
			}
		}()
	}

	var runWG sync.WaitGroup
	for i := 0; i < s.cfg.Runners; i++ {
		runWG.Add(1)
		go func(i int) {
			defer runWG.Done()
			deltas <- s.collect(epoch, i)
		}(i)
	}
	runWG.Wait()
	close(deltas)
	collectWG.Wait()
	return rep
}

// collect runs one collector: a profiling run of the runner's flavor,
// degrading an aborted run to its salvaged partial profile.
func (s *Service) collect(epoch, i int) (d delta) {
	// A panicking collector degrades to a failed delta rather than
	// killing the fleet.
	defer func() {
		if r := recover(); r != nil {
			d = delta{failed: true}
		}
	}()
	flavor := s.cfg.Mix[i%len(s.cfg.Mix)]
	r, err := workload.NewRunner(s.k, s.prog, flavor, s.runnerSeed(epoch, i))
	if err != nil {
		return delta{failed: true}
	}
	r.Inject = s.cfg.Inject
	p, err := r.Profile(s.cfg.OpsScale)
	switch {
	case p == nil:
		return delta{failed: true}
	case err != nil && resilience.IsAbort(err):
		if len(p.Sites) == 0 && len(p.Invocations) == 0 {
			return delta{failed: true}
		}
		return delta{p: p, aborted: true}
	case err != nil:
		return delta{failed: true}
	}
	return delta{p: p}
}
