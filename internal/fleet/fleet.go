// Package fleet is the continuous-profiling subsystem: it models a fleet
// of production instances that keep profiling the running kernel while
// it serves traffic, streams their profile deltas into a sharded
// aggregator, watches for workload drift, and triggers a re-optimization
// when the live hot set no longer matches the profile the current image
// was built from.
//
// The paper computes its optimization budgets over one offline,
// "representative" profile; in production the workload mix drifts and a
// stale profile silently erodes the ICP/inlining win (the §8.4
// mismatched-profile effect). This package closes that loop:
//
//	runners (N goroutines, mixed flavors) ──deltas──▶ channel
//	     channel ──collector workers──▶ sharded lock-striped Aggregator
//	     epoch barrier ─▶ decay ─▶ snapshot ─▶ drift detector ─▶ rebuild
//
// A rebuild is not promoted unconditionally: the candidate image first
// passes differential validation, then serves a configurable canary
// window, and is promoted only if its canary latency stays within the
// regression budget and no new fault kinds appeared — otherwise the
// incumbent keeps serving and repeated rejections trip a capped-backoff
// cool-down (see Controller, Candidate and DESIGN.md §9). With a
// StateDir configured the service checkpoints its state after every
// epoch and resumes mid-loop after a crash.
//
// Determinism contract: with no fault injector armed, the same Seed,
// Shards and Config produce a byte-identical serialized aggregate
// snapshot regardless of goroutine scheduling. Runner seeds are derived
// from (Seed, epoch, runner index), merges are exact commutative uint64
// sums, and decay happens at the epoch barrier — so no interleaving can
// change the result, and fleet runs are replayable the way chaos runs
// are. A killed-and-resumed run reaches the same aggregate (and the same
// promoted image) as an uninterrupted one.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/interp"
	"repro/internal/kernel"
	"repro/internal/prof"
	"repro/internal/resilience"
	"repro/internal/workload"
)

// Config parameterizes one fleet profiling run.
type Config struct {
	// Runners is the number of concurrent workload runners per epoch
	// (default 4). Runner i of an epoch profiles Mix[i%len(Mix)].
	Runners int
	// Shards is the aggregator stripe count (default 8).
	Shards int
	// Epochs is the number of profiling epochs (default 1). Decay is
	// applied at each epoch boundary after the first.
	Epochs int
	// OpsScale is each runner's workload-mix multiplier (default 2).
	OpsScale int
	// Seed derives every runner's seed; equal seeds (and shard counts)
	// reproduce byte-identical aggregates.
	Seed int64
	// Decay is the per-epoch count multiplier in (0, 1]; 0 means the
	// default 0.5, 1 disables decay.
	Decay float64
	// Mix lists the workload flavors the fleet runs; runner i draws
	// Mix[i%len(Mix)]. Empty means all-LMBench.
	Mix []workload.Flavor
	// HotBudget is the cumulative-weight budget defining the hot site
	// set the drift detector compares (default 0.99).
	HotBudget float64
	// DriftThreshold triggers a rebuild when the live aggregate's
	// hot-set overlap with the baseline profile falls below it; 0
	// disables drift-triggered rebuilds.
	DriftThreshold float64
	// CanaryEpochs is how many epochs (counting the build epoch) a
	// freshly built candidate serves before the promotion decision
	// (default 1: validate, measure and decide within the drift epoch).
	CanaryEpochs int
	// RegressionBudget is the relative canary-latency regression allowed
	// versus the incumbent before the candidate is rejected (0 means the
	// default 0.05; negative means no tolerance at all).
	RegressionBudget float64
	// Backoff shapes the rebuild cool-down after a rejected candidate or
	// failed rebuild: the k-th consecutive strike suppresses rebuilds
	// for Backoff.Steps(k) epochs (capped exponential, jittered). The
	// zero value means resilience.DefaultRetry().
	Backoff resilience.RetryPolicy
	// StateDir, when non-empty, makes the run crash-safe: the service
	// checkpoints its aggregate, counters and promotion state there
	// after every epoch (see SaveState) and Restore resumes mid-loop.
	StateDir string
	// Inject, when non-nil, threads chaos faults through the collectors.
	// Aborted collector runs degrade to partial deltas that still merge;
	// the fleet only fails when every collector of every epoch
	// contributed nothing. Note that injected faults are drawn from one
	// shared stream, so chaos fleet runs are not byte-deterministic.
	Inject *resilience.Injector
	// OnEpoch, when non-nil, observes each epoch's report after drift
	// detection, any rebuild and the promotion decision, but before the
	// epoch is checkpointed — an observer failure therefore models a
	// crash that loses exactly the in-flight epoch. Returning an error
	// aborts the run.
	OnEpoch func(EpochReport) error
	// Engine selects the execution tier for the collectors' machines.
	// The compiled tier is cycle-exact, so aggregates and promotion
	// decisions are identical either way; only wall-clock changes.
	Engine interp.Engine
}

func (c Config) withDefaults() Config {
	if c.Runners <= 0 {
		c.Runners = 4
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.OpsScale <= 0 {
		c.OpsScale = 2
	}
	if c.Decay == 0 {
		c.Decay = 0.5
	}
	if len(c.Mix) == 0 {
		c.Mix = []workload.Flavor{workload.LMBench}
	}
	if c.HotBudget <= 0 || c.HotBudget > 1 {
		c.HotBudget = 0.99
	}
	// CanaryEpochs and RegressionBudget defaults are applied by the
	// Promoter (PromoteConfig.withDefaults), which owns those semantics.
	return c
}

// promoteConfig maps the fleet knobs onto the reusable promotion
// pipeline's config.
func (c Config) promoteConfig() PromoteConfig {
	return PromoteConfig{
		DriftThreshold:   c.DriftThreshold,
		CanarySteps:      c.CanaryEpochs,
		RegressionBudget: c.RegressionBudget,
		Backoff:          c.Backoff,
	}
}

// EpochReport summarizes one epoch of fleet collection.
type EpochReport struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// Merged counts runners whose delta (complete or partial) reached
	// the aggregate; Aborted counts the subset whose profiling run
	// aborted and degraded to a partial delta; Failed counts runners
	// that contributed nothing.
	Merged, Aborted, Failed int
	// FaultKinds lists (sorted) the fault kinds collectors hit this
	// epoch; the canary's no-new-fault-kinds gate compares these against
	// the kinds seen before the candidate was built.
	FaultKinds []string
	// Overlap is the hot-set overlap between the live aggregate
	// snapshot and the baseline profile the current image was built
	// from (1 when no baseline is set).
	Overlap float64
	// Rebuilt records that drift tripped the threshold and the rebuild
	// controller produced a candidate; RebuildErr carries a failed
	// build's error text.
	Rebuilt    bool
	RebuildErr string
	// Canary reports that a candidate image served this epoch.
	Canary bool
	// Promoted records that the candidate passed every promotion gate
	// this epoch and the baseline advanced; Rejected carries the reason
	// a candidate was rolled back instead.
	Promoted bool
	Rejected string
	// CoolingDown, when non-zero, is how many epochs of rebuild
	// cool-down remained (counting this one) when drift was detected
	// but the rebuild was suppressed after recent rejections.
	CoolingDown int
	// Sites and Ops describe the post-epoch aggregate snapshot.
	Sites int
	Ops   uint64
}

// Result is a completed fleet run.
type Result struct {
	Reports []EpochReport
	// Final is the aggregate snapshot after the last epoch.
	Final *prof.Profile
	// Rebuilds counts drift-triggered rebuilds that passed every
	// promotion gate and advanced the baseline.
	Rebuilds int
	// RebuildFailures counts rebuild attempts whose build itself failed.
	RebuildFailures int
	// Rejections counts candidates that were built but rolled back by a
	// promotion gate (validation, canary latency, new fault kinds).
	Rejections int
	// Partial reports that at least one collector aborted or failed;
	// the aggregate is an under-count of the fleet's true activity but
	// remains usable (graceful degradation).
	Partial bool
}

// Controller is the build side of the promotion pipeline. The service
// calls Rebuild when drift trips the threshold; the returned Candidate
// is validated, canaried and only then promoted.
type Controller struct {
	// Rebuild builds a candidate image from the drifted snapshot.
	// Returning an error counts as a failed rebuild (and a strike
	// toward the cool-down).
	Rebuild func(snap *prof.Profile) (*Candidate, error)
	// Incumbent, when non-nil, measures the serving image's canary
	// metric (e.g. geomean request latency); nil disables the latency
	// regression gate.
	Incumbent func() (float64, error)
}

// Candidate is one rebuilt image moving through the promotion gates.
// Nil fields skip their gate.
type Candidate struct {
	// Validate differentially validates the candidate against its
	// reference image (see internal/diffcheck); a non-nil error rejects
	// the candidate before it serves a single canary epoch.
	Validate func() error
	// Measure returns the candidate's canary metric, compared against
	// Controller.Incumbent under the regression budget.
	Measure func() (float64, error)
	// Promote activates the candidate as the serving image; it runs
	// only after every gate passed.
	Promote func() error
}

// canaryState tracks the candidate currently serving its canary window.
type canaryState struct {
	snap        *prof.Profile
	cand        *Candidate
	served      int
	kindsBefore map[string]bool
	newKinds    map[string]bool
}

// Service runs fleet profiling over one generated kernel.
type Service struct {
	k    *kernel.Kernel
	prog *interp.Program
	cfg  Config
	agg  *Aggregator
	// promo is the reusable canary-gated promotion pipeline (see
	// Promoter); it owns the drift baseline, the in-flight canary and
	// the rebuild cool-down.
	promo *Promoter

	// resume state (set by Restore)
	startEpoch int
	resumed    *State
}

// New builds a fleet service. baseline is the profile the current image
// was built from (nil disables drift detection); ctrl, when non-nil,
// supplies the rebuild/promotion pipeline invoked whenever hot-set
// overlap falls below Config.DriftThreshold. A promoted candidate's
// snapshot becomes the new baseline.
func New(k *kernel.Kernel, prog *interp.Program, cfg Config, baseline *prof.Profile, ctrl *Controller) (*Service, error) {
	if k == nil || prog == nil {
		return nil, errors.New("fleet: nil kernel or program")
	}
	cfg = cfg.withDefaults()
	for _, f := range cfg.Mix {
		if workload.Mix(f) == nil {
			return nil, fmt.Errorf("fleet: flavor %v has no workload mix", f)
		}
	}
	return &Service{
		k:     k,
		prog:  prog,
		cfg:   cfg,
		agg:   NewAggregator(cfg.Shards, cfg.Decay),
		promo: NewPromoter(cfg.promoteConfig(), ctrl, baseline),
	}, nil
}

// Aggregator exposes the live aggregate for snapshot reads while (or
// after) the service runs.
func (s *Service) Aggregator() *Aggregator { return s.agg }

// Baseline returns the profile the drift detector currently compares
// against (it advances on every promotion).
func (s *Service) Baseline() *prof.Profile { return s.promo.Baseline() }

// runnerSeed derives a distinct deterministic seed per (epoch, runner).
func (s *Service) runnerSeed(epoch, runner int) int64 {
	return s.cfg.Seed*1_000_003 + int64(epoch)*8191 + int64(runner)*127 + 1
}

// delta is one collector's contribution travelling the channel from a
// runner goroutine to the collector workers.
type delta struct {
	p       *prof.Profile
	aborted bool   // profiling aborted; p is the salvaged partial
	failed  bool   // nothing usable collected
	kind    string // fault kind behind an abort/failure, if structured
}

// Run executes the configured epochs (resuming from a restored
// checkpoint's epoch when one was loaded). Each epoch: N runner
// goroutines profile their flavor concurrently and stream deltas over a
// channel into collector workers that merge them into the sharded
// aggregator; at the epoch barrier the aggregate is decayed (from the
// second epoch on, before new deltas land), snapshotted, and checked for
// drift against the baseline; drift below the threshold starts the
// promotion pipeline (build → differential validation → canary window →
// latency and fault-kind gates → promote or roll back).
//
// Collector faults — injected or organic — degrade to partial
// aggregates: an aborted profiling run contributes the partial profile
// it salvaged, and a runner that produces nothing is only counted as
// failed. Run returns an error (resilience.PhaseFleet /
// KindEmptyAggregate) only when, after all epochs, nothing at all was
// aggregated.
func (s *Service) Run() (*Result, error) {
	res := &Result{}
	if st := s.resumed; st != nil {
		res.Rebuilds = st.Rebuilds
		res.RebuildFailures = st.RebuildFailures
		res.Rejections = st.Rejections
		res.Partial = st.Partial
	}
	for e := s.startEpoch; e < s.cfg.Epochs; e++ {
		if e > 0 {
			s.agg.Decay()
		}
		rep := s.runEpoch(e)

		snap := s.agg.Snapshot()
		rep.Sites = len(snap.Sites)
		rep.Ops = snap.Ops
		rep.Overlap = 1
		if base := s.promo.Baseline(); base != nil {
			rep.Overlap = prof.HotOverlap(snap, base, s.cfg.HotBudget)
		}
		s.promotionStep(&rep, res, snap)
		if rep.Aborted > 0 || rep.Failed > 0 {
			res.Partial = true
		}
		res.Reports = append(res.Reports, rep)
		if e == s.cfg.Epochs-1 {
			res.Final = snap
		}
		if s.cfg.OnEpoch != nil {
			if err := s.cfg.OnEpoch(rep); err != nil {
				return res, fmt.Errorf("fleet: epoch %d observer: %w", e, err)
			}
		}
		if s.cfg.StateDir != "" {
			if err := s.checkpoint(e+1, res, snap); err != nil {
				return res, resilience.Fault(resilience.PhaseFleet, resilience.KindTruncated,
					"checkpoint", err)
			}
		}
	}
	if res.Final == nil {
		// Resume landed at or past the configured epoch count: nothing
		// left to collect, but the restored aggregate is still the result.
		res.Final = s.agg.Snapshot()
	}
	if len(res.Final.Sites) == 0 && len(res.Final.Invocations) == 0 {
		return res, resilience.Faultf(resilience.PhaseFleet, resilience.KindEmptyAggregate, "aggregate",
			"fleet: every collector failed; nothing aggregated after %d epochs", s.cfg.Epochs)
	}
	return res, nil
}

// promotionStep advances the canary-gated promotion pipeline by one
// epoch (see Promoter) and maps its outcome onto the epoch report and
// the run result's counters.
func (s *Service) promotionStep(rep *EpochReport, res *Result, snap *prof.Profile) {
	out := s.promo.Step(rep.Overlap, snap, rep.FaultKinds)
	rep.Rebuilt = out.Rebuilt
	rep.RebuildErr = out.RebuildErr
	rep.Canary = out.Canary
	rep.Promoted = out.Promoted
	rep.Rejected = out.Rejected
	rep.CoolingDown = out.CoolingDown
	if out.Promoted {
		res.Rebuilds++
	}
	if out.RebuildErr != "" {
		res.RebuildFailures++
	}
	if out.Rejected != "" {
		res.Rejections++
	}
}

// runEpoch fans out the runners, fans their deltas into the aggregator,
// and returns the epoch's collection tallies.
func (s *Service) runEpoch(epoch int) EpochReport {
	rep := EpochReport{Epoch: epoch}
	deltas := make(chan delta, s.cfg.Runners)

	collectors := s.cfg.Runners
	if collectors > 4 {
		collectors = 4
	}
	kinds := make(map[string]bool)
	var mu sync.Mutex // guards rep tallies
	var collectWG sync.WaitGroup
	for w := 0; w < collectors; w++ {
		collectWG.Add(1)
		go func() {
			defer collectWG.Done()
			for d := range deltas {
				if d.p != nil && !d.failed {
					s.agg.Add(d.p)
				}
				mu.Lock()
				switch {
				case d.failed:
					rep.Failed++
				case d.aborted:
					rep.Aborted++
					rep.Merged++
				default:
					rep.Merged++
				}
				if d.kind != "" {
					kinds[d.kind] = true
				}
				mu.Unlock()
			}
		}()
	}

	var runWG sync.WaitGroup
	for i := 0; i < s.cfg.Runners; i++ {
		runWG.Add(1)
		go func(i int) {
			defer runWG.Done()
			deltas <- s.collect(epoch, i)
		}(i)
	}
	runWG.Wait()
	close(deltas)
	collectWG.Wait()
	for k := range kinds {
		rep.FaultKinds = append(rep.FaultKinds, k)
	}
	sort.Strings(rep.FaultKinds)
	return rep
}

// faultKind extracts the structured kind of a collector error, or "".
func faultKind(err error) string {
	if fe, ok := resilience.AsFault(err); ok {
		return string(fe.Kind)
	}
	return ""
}

// collect runs one collector: a profiling run of the runner's flavor,
// degrading an aborted run to its salvaged partial profile.
func (s *Service) collect(epoch, i int) (d delta) {
	// A panicking collector degrades to a failed delta rather than
	// killing the fleet.
	defer func() {
		if r := recover(); r != nil {
			d = delta{failed: true, kind: string(resilience.KindPanic)}
		}
	}()
	flavor := s.cfg.Mix[i%len(s.cfg.Mix)]
	r, err := workload.NewRunner(s.k, s.prog, flavor, s.runnerSeed(epoch, i))
	if err != nil {
		return delta{failed: true, kind: faultKind(err)}
	}
	r.Inject = s.cfg.Inject
	r.Engine = s.cfg.Engine
	p, err := r.Profile(s.cfg.OpsScale)
	switch {
	case p == nil:
		return delta{failed: true, kind: faultKind(err)}
	case err != nil && resilience.IsAbort(err):
		if len(p.Sites) == 0 && len(p.Invocations) == 0 {
			return delta{failed: true, kind: faultKind(err)}
		}
		return delta{p: p, aborted: true, kind: faultKind(err)}
	case err != nil:
		return delta{failed: true, kind: faultKind(err)}
	}
	return delta{p: p}
}
