package fleet

import (
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/prof"
)

// siteID maps a small int onto the site-ID space; sites stripe by
// id % shards, which is what the expectations below count on.
func siteID(i int) ir.SiteID { return ir.SiteID(i) }

// TestAggregatorShardStats: occupancy reflects where site IDs hash,
// merge counters count Add calls per touched stripe, and Snapshot /
// Decay leave the counters alone.
func TestAggregatorShardStats(t *testing.T) {
	a := NewAggregator(4, 0.5)

	// Site IDs partition by id % shards, so IDs 0..7 land two per stripe.
	d := prof.New()
	for id := 0; id < 8; id++ {
		d.AddDirect(siteID(id), "caller", "callee", 10)
	}
	a.Add(d)

	stats := a.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats returned %d stripes, want 4", len(stats))
	}
	for i, st := range stats {
		if st.Sites != 2 {
			t.Errorf("stripe %d occupancy %d, want 2", i, st.Sites)
		}
		if st.Merges != 1 {
			t.Errorf("stripe %d merges %d, want 1 after one Add touching all stripes", i, st.Merges)
		}
	}

	// A delta touching only stripe 1 bumps only stripe 1's counter.
	d2 := prof.New()
	d2.AddDirect(siteID(5), "caller", "callee", 1)
	a.Add(d2)
	stats = a.ShardStats()
	for i, st := range stats {
		want := uint64(1)
		if i == 1 {
			want = 2
		}
		if st.Merges != want {
			t.Errorf("stripe %d merges %d, want %d", i, st.Merges, want)
		}
	}

	// Snapshot and Decay are reads/maintenance, not merges.
	a.Snapshot()
	a.Decay()
	for i, st := range a.ShardStats() {
		want := uint64(1)
		if i == 1 {
			want = 2
		}
		if st.Merges != want {
			t.Errorf("after Snapshot+Decay: stripe %d merges %d, want %d", i, st.Merges, want)
		}
	}

	// Occupancy tracks the live stripe contents: decay at 0.5 halves the
	// count-10 sites to 5 (still present) and drops the count-1 site.
	stats = a.ShardStats()
	if stats[1].Sites != 2 {
		t.Errorf("stripe 1 occupancy %d after decay, want 2 (count-1 site decayed out)", stats[1].Sites)
	}

	// Total occupancy agrees with SiteCount.
	var total int
	for _, st := range stats {
		total += st.Sites
	}
	if total != a.SiteCount() {
		t.Errorf("ShardStats occupancy sums to %d, SiteCount says %d", total, a.SiteCount())
	}
}

// TestAggregatorShardStatsConcurrent: merge counters are exact under
// concurrent Add — the sum over stripes of per-stripe merges equals
// adds × stripes-touched, with no lost updates.
func TestAggregatorShardStatsConcurrent(t *testing.T) {
	a := NewAggregator(4, 1)
	const adds = 64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < adds/8; i++ {
				d := prof.New()
				for id := 0; id < 4; id++ {
					d.AddDirect(siteID(id), "caller", "callee", 1)
				}
				a.Add(d)
			}
		}(g)
	}
	wg.Wait()
	var merges uint64
	for _, st := range a.ShardStats() {
		merges += st.Merges
	}
	if merges != adds*4 {
		t.Fatalf("total merges %d, want %d (every Add touches all 4 stripes)", merges, adds*4)
	}
}
