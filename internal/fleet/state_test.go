package fleet

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/prof"
)

func testProfile(seed int64) *prof.Profile {
	p := prof.New()
	p.AddDirect(1, "a", "b", uint64(100+seed))
	p.AddIndirect(2, "a", "x", uint64(10+seed))
	p.AddIndirect(2, "a", "y", 3)
	p.AddInvocation("a", uint64(50+seed))
	p.Ops = uint64(40 + seed)
	return p
}

func profileBytes(t *testing.T, p *prof.Profile) []byte {
	t.Helper()
	if p == nil {
		return nil
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func TestStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := &State{
		Epoch:             3,
		Rebuilds:          2,
		RebuildFailures:   1,
		Rejections:        4,
		Partial:           true,
		Strikes:           2,
		Cooldown:          3,
		SeenKinds:         []string{"fuel-exhausted", "trap"},
		Baseline:          testProfile(1),
		Aggregate:         testProfile(2),
		CanarySnap:        testProfile(3),
		CanaryServed:      1,
		CanaryKindsBefore: []string{"trap"},
		CanaryNewKinds:    []string{"corrupt"},
	}
	st.BaselineHash = st.Baseline.Hash()
	if err := SaveState(dir, st); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	got, sal, err := LoadState(dir)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if !sal.Clean() {
		t.Fatalf("clean save salvaged dirty: %s", sal)
	}
	if got.Epoch != st.Epoch || got.Rebuilds != st.Rebuilds || got.RebuildFailures != st.RebuildFailures ||
		got.Rejections != st.Rejections || got.Partial != st.Partial ||
		got.Strikes != st.Strikes || got.Cooldown != st.Cooldown ||
		got.CanaryServed != st.CanaryServed || got.BaselineHash != st.BaselineHash {
		t.Errorf("scalar fields differ:\n got %+v\nwant %+v", got, st)
	}
	if !reflect.DeepEqual(got.SeenKinds, st.SeenKinds) ||
		!reflect.DeepEqual(got.CanaryKindsBefore, st.CanaryKindsBefore) ||
		!reflect.DeepEqual(got.CanaryNewKinds, st.CanaryNewKinds) {
		t.Errorf("kind lists differ: %v/%v/%v", got.SeenKinds, got.CanaryKindsBefore, got.CanaryNewKinds)
	}
	for _, pair := range []struct {
		name      string
		got, want *prof.Profile
	}{
		{"baseline", got.Baseline, st.Baseline},
		{"aggregate", got.Aggregate, st.Aggregate},
		{"canary", got.CanarySnap, st.CanarySnap},
	} {
		if !bytes.Equal(profileBytes(t, pair.got), profileBytes(t, pair.want)) {
			t.Errorf("%s profile did not round-trip", pair.name)
		}
	}
}

func TestLoadStateMissing(t *testing.T) {
	st, sal, err := LoadState(t.TempDir())
	if st != nil || sal != nil || err != nil {
		t.Fatalf("missing checkpoint should be a fresh start, got %+v %v %v", st, sal, err)
	}
}

// TestLoadStateCorruptSection: a bit-flip inside a profile section drops
// just that section; the meta scalars still resume.
func TestLoadStateCorruptSection(t *testing.T) {
	dir := t.TempDir()
	st := &State{Epoch: 2, Rebuilds: 1, Baseline: testProfile(1), Aggregate: testProfile(2)}
	st.BaselineHash = st.Baseline.Hash()
	if err := SaveState(dir, st); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	path := filepath.Join(dir, StateFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	// Flip a byte inside the last section's payload (the aggregate).
	data[len(data)-20] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, sal, err := LoadState(dir)
	if err != nil {
		t.Fatalf("LoadState after corruption: %v", err)
	}
	if sal.Clean() || sal.Dropped != 1 {
		t.Errorf("salvage = %s, want exactly one dropped section", sal)
	}
	if got.Epoch != 2 || got.Rebuilds != 1 {
		t.Errorf("meta scalars lost: %+v", got)
	}
	if got.Baseline == nil {
		t.Error("undamaged baseline section was dropped")
	}
	if got.Aggregate != nil {
		t.Error("corrupted aggregate section survived")
	}
}

// TestLoadStateTornWrite: every truncation point either resumes from the
// salvaged prefix or reports the checkpoint unusable — never panics,
// never fabricates state.
func TestLoadStateTornWrite(t *testing.T) {
	dir := t.TempDir()
	st := &State{Epoch: 5, Baseline: testProfile(1), Aggregate: testProfile(2)}
	st.BaselineHash = st.Baseline.Hash()
	if err := SaveState(dir, st); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	path := filepath.Join(dir, StateFile)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	for cut := 0; cut < len(full); cut += 7 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		got, _, err := LoadState(dir)
		if err != nil {
			continue // meta lost: caller starts fresh
		}
		if got.Epoch != 5 {
			t.Fatalf("cut=%d: salvaged wrong epoch %d", cut, got.Epoch)
		}
	}
}

// TestLoadStateBaselineHashMismatch: a baseline whose content hash no
// longer matches the recorded training-profile hash is discarded.
func TestLoadStateBaselineHashMismatch(t *testing.T) {
	dir := t.TempDir()
	st := &State{Epoch: 1, Baseline: testProfile(1), BaselineHash: "feedfacefeedface"}
	if err := SaveState(dir, st); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	got, sal, err := LoadState(dir)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if got.Baseline != nil {
		t.Error("baseline with mismatched hash was kept")
	}
	if len(sal.Errs) == 0 {
		t.Error("hash mismatch left no salvage note")
	}
}

// TestResumeMatchesUninterrupted is the crash-safety contract: killing
// the fleet mid-loop and resuming from the checkpoint reaches the same
// final aggregate, the same promotion decisions and the same baseline as
// an uninterrupted run.
func TestResumeMatchesUninterrupted(t *testing.T) {
	k, prog := testKernel(t)
	baseline := driftBaseline(t, k, prog)
	mkCfg := func(dir string) Config {
		cfg := testConfig()
		cfg.Epochs = 3
		cfg.DriftThreshold = 0.9
		cfg.StateDir = dir
		return cfg
	}
	ctrl := func() *Controller {
		return &Controller{
			Rebuild: func(snap *prof.Profile) (*Candidate, error) { return &Candidate{}, nil },
		}
	}

	// Uninterrupted reference run.
	dirA := t.TempDir()
	svcA, err := New(k, prog, mkCfg(dirA), baseline.Clone(), ctrl())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	resA, err := svcA.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resA.Rebuilds == 0 {
		t.Fatal("reference run never promoted; drift config inert")
	}

	// Interrupted run: the observer "crashes" the process during epoch 1,
	// after collection but before the epoch is checkpointed — that epoch
	// is the one in flight and the only one allowed to be lost.
	dirB := t.TempDir()
	cfgB := mkCfg(dirB)
	cfgB.OnEpoch = func(r EpochReport) error {
		if r.Epoch == 1 {
			return errors.New("simulated crash")
		}
		return nil
	}
	svcB, err := New(k, prog, cfgB, baseline.Clone(), ctrl())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := svcB.Run(); err == nil {
		t.Fatal("interrupted run did not surface the crash")
	}

	// Resume from the checkpoint: exactly epoch 0 is on disk.
	st, sal, err := LoadState(dirB)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if st == nil || !sal.Clean() {
		t.Fatalf("no clean checkpoint after crash: %+v %v", st, sal)
	}
	if st.Epoch != 1 {
		t.Fatalf("checkpoint lost %d epochs, want exactly the in-flight one (Epoch=1, got %d)",
			3-st.Epoch, st.Epoch)
	}
	cfgR := mkCfg(dirB)
	svcR, err := New(k, prog, cfgR, baseline.Clone(), ctrl())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := svcR.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	resR, err := svcR.Run()
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}

	if !bytes.Equal(profileBytes(t, resR.Final), profileBytes(t, resA.Final)) {
		t.Error("resumed run's final aggregate differs from the uninterrupted run")
	}
	if resR.Rebuilds != resA.Rebuilds || resR.Rejections != resA.Rejections {
		t.Errorf("resumed counters (rebuilds %d, rejections %d) differ from uninterrupted (%d, %d)",
			resR.Rebuilds, resR.Rejections, resA.Rebuilds, resA.Rejections)
	}
	if !bytes.Equal(profileBytes(t, svcR.Baseline()), profileBytes(t, svcA.Baseline())) {
		t.Error("resumed run converged on a different baseline")
	}
	// The resumed reports must replay the uninterrupted run's tail.
	if len(resR.Reports) != 2 {
		t.Fatalf("resumed run replayed %d epochs, want 2", len(resR.Reports))
	}
	for i, r := range resR.Reports {
		want := resA.Reports[i+1]
		// HotOverlap folds float weights in map order, so identical
		// aggregates agree only to ULP noise.
		if r.Epoch != want.Epoch || math.Abs(r.Overlap-want.Overlap) > 1e-9 ||
			r.Rebuilt != want.Rebuilt || r.Promoted != want.Promoted {
			t.Errorf("resumed epoch %d = %+v, uninterrupted = %+v", r.Epoch, r, want)
		}
	}
}

// TestRestoreCanaryInFlight: a canary serving at checkpoint time is
// re-materialized on resume and still reaches its decision.
func TestRestoreCanaryInFlight(t *testing.T) {
	k, prog := testKernel(t)
	cfg := testConfig()
	cfg.Epochs = 1
	cfg.DriftThreshold = 0.9
	cfg.CanaryEpochs = 3
	snap := testProfile(9)
	var rebuilt int
	ctrl := &Controller{
		Rebuild: func(p *prof.Profile) (*Candidate, error) {
			rebuilt++
			return &Candidate{}, nil
		},
	}
	svc, err := New(k, prog, cfg, driftBaseline(t, k, prog), ctrl)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st := &State{
		Epoch:        0,
		CanarySnap:   snap,
		CanaryServed: 2,
		SeenKinds:    []string{"trap"},
	}
	if err := svc.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if rebuilt != 1 {
		t.Fatalf("restore did not re-materialize the candidate (rebuilds %d)", rebuilt)
	}
	res, err := svc.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// served was 2 of 3; the single resumed epoch completes the window
	// and the gate-free candidate promotes.
	r0 := res.Reports[0]
	if !r0.Canary || !r0.Promoted {
		t.Fatalf("restored canary did not decide: %+v", r0)
	}
	if !bytes.Equal(profileBytes(t, svc.Baseline()), profileBytes(t, snap)) {
		t.Error("promotion did not advance the baseline to the canary snapshot")
	}
}
