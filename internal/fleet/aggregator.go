package fleet

import (
	"hash/fnv"
	"sync"

	"repro/internal/prof"
)

// Aggregator is the synchronized merge path for profiles produced by
// concurrent collectors. It is sharded and lock-striped: sites are
// partitioned across shards by site ID (function invocations by name
// hash), each shard guarded by its own mutex, so concurrent Add calls
// touching disjoint shards never contend. Counts are exact uint64 sums —
// merging is commutative and associative (see prof.Merge's contract) —
// so the aggregate is independent of the order in which concurrent
// deltas arrive, which is what makes fleet runs deterministic and
// replayable.
//
// Staleness is handled with epoch-based exponential decay: Decay scales
// every count by the decay factor, so a site that stops being exercised
// loses half its weight per epoch (at the default 0.5) and eventually
// drops out of the aggregate entirely. The live aggregate is therefore
// an exponentially-weighted moving profile of the fleet's recent
// workload mix, not an all-time sum.
type Aggregator struct {
	decay  float64
	shards []aggShard
}

type aggShard struct {
	mu sync.Mutex
	p  *prof.Profile
	// merges counts the Add calls that touched this stripe (not the
	// sites they carried): the per-shard load statistic behind
	// ShardStats, shared by fleet drift reports and ingest metrics.
	merges uint64
}

// NewAggregator returns an aggregator with the given number of stripes.
// decay is the per-epoch count multiplier in (0, 1]; 1 disables decay.
func NewAggregator(shards int, decay float64) *Aggregator {
	if shards <= 0 {
		shards = 1
	}
	if decay <= 0 || decay > 1 {
		decay = 1
	}
	a := &Aggregator{decay: decay, shards: make([]aggShard, shards)}
	for i := range a.shards {
		a.shards[i].p = prof.New()
	}
	return a
}

// Shards returns the stripe count.
func (a *Aggregator) Shards() int { return len(a.shards) }

func shardOfFn(fn string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(fn))
	return int(h.Sum32() % uint32(n))
}

// Add folds one collector delta into the aggregate. It is safe for
// concurrent use: the delta is partitioned per shard lock-free first,
// then each stripe is locked exactly once. The delta itself is only
// read, never retained, so the caller may reuse or discard it.
func (a *Aggregator) Add(delta *prof.Profile) {
	if delta == nil {
		return
	}
	n := len(a.shards)
	sites := make([][]*prof.Site, n)
	for id, s := range delta.Sites {
		si := int(uint32(id)) % n
		sites[si] = append(sites[si], s)
	}
	fns := make([][]string, n)
	for fn := range delta.Invocations {
		si := shardOfFn(fn, n)
		fns[si] = append(fns[si], fn)
	}
	for si := 0; si < n; si++ {
		if len(sites[si]) == 0 && len(fns[si]) == 0 && !(si == 0 && delta.Ops > 0) {
			continue
		}
		sh := &a.shards[si]
		sh.mu.Lock()
		for _, s := range sites[si] {
			if s.Indirect() {
				for t, c := range s.Targets {
					sh.p.AddIndirect(s.ID, s.Caller, t, c)
				}
			} else {
				sh.p.AddDirect(s.ID, s.Caller, s.Callee, s.Count)
			}
		}
		for _, fn := range fns[si] {
			sh.p.AddInvocation(fn, delta.Invocations[fn])
		}
		if si == 0 {
			// Ops is a scalar, not sharded; stripe 0 owns it.
			sh.p.Ops += delta.Ops
		}
		sh.merges++
		sh.mu.Unlock()
	}
}

// scale decays one count, truncating toward zero so repeated decay
// drives stale counts extinct instead of letting them oscillate at 1.
func scale(c uint64, d float64) uint64 {
	return uint64(float64(c) * d)
}

// Decay applies one epoch of exponential decay: every count is scaled
// by the decay factor and entries that reach zero are dropped, so
// stale sites age out of the aggregate instead of pinning hot-set
// selection to a workload the fleet no longer runs. Indirect site
// header counts are recomputed as the sum of their decayed targets,
// preserving the serialization invariant the strict profile reader
// checks (header == Σ targets).
func (a *Aggregator) Decay() {
	if a.decay >= 1 {
		return
	}
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		decayProfile(sh.p, a.decay)
		sh.mu.Unlock()
	}
}

func decayProfile(p *prof.Profile, d float64) {
	for id, s := range p.Sites {
		if s.Indirect() {
			var sum uint64
			for t, c := range s.Targets {
				nc := scale(c, d)
				if nc == 0 {
					delete(s.Targets, t)
				} else {
					s.Targets[t] = nc
					sum += nc
				}
			}
			s.Count = sum
			if len(s.Targets) == 0 {
				delete(p.Sites, id)
			}
		} else {
			s.Count = scale(s.Count, d)
			if s.Count == 0 {
				delete(p.Sites, id)
			}
		}
	}
	for fn, c := range p.Invocations {
		nc := scale(c, d)
		if nc == 0 {
			delete(p.Invocations, fn)
		} else {
			p.Invocations[fn] = nc
		}
	}
	p.Ops = scale(p.Ops, d)
}

// Snapshot returns a copy of the current aggregate as one merged
// profile. Each stripe is locked only while its shard is copied out, so
// a snapshot never blocks writers on the other stripes; the returned
// profile shares no state with the aggregator and is safe to serialize,
// merge or build against while collection continues.
func (a *Aggregator) Snapshot() *prof.Profile {
	out := prof.New()
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		out.Merge(sh.p)
		sh.mu.Unlock()
	}
	return out
}

// ShardStat describes one stripe of the aggregator: its current site
// occupancy and how many Add calls have touched it. Occupancy shows
// whether the hash partitioning is balanced; the merge counter shows
// whether the *load* is — a stripe can be small but hot. Fleet drift
// reports and the ingest service's observability surface both read
// these, so stripe imbalance is diagnosed the same way everywhere.
type ShardStat struct {
	// Sites is the stripe's current distinct-site count.
	Sites int
	// Merges counts Add calls that touched the stripe since creation
	// (restores via Add count too; Decay and Snapshot do not).
	Merges uint64
}

// ShardStats returns one ShardStat per stripe, in stripe order. Each
// stripe is locked only while it is read, so the stats are a consistent
// per-stripe (not cross-stripe) view that never blocks writers on the
// other stripes.
func (a *Aggregator) ShardStats() []ShardStat {
	out := make([]ShardStat, len(a.shards))
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		out[i] = ShardStat{Sites: len(sh.p.Sites), Merges: sh.merges}
		sh.mu.Unlock()
	}
	return out
}

// SiteCount returns the number of distinct sites currently aggregated.
func (a *Aggregator) SiteCount() int {
	var n int
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		n += len(sh.p.Sites)
		sh.mu.Unlock()
	}
	return n
}
