package fleet

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/interp"
	"repro/internal/kernel"
	"repro/internal/prof"
	"repro/internal/resilience"
	"repro/internal/workload"
)

var (
	testOnce sync.Once
	testK    *kernel.Kernel
	testP    *interp.Program
	testErr  error
)

// testKernel builds one small kernel shared by the package's tests.
func testKernel(t *testing.T) (*kernel.Kernel, *interp.Program) {
	t.Helper()
	testOnce.Do(func() {
		testK, testErr = kernel.Generate(kernel.Config{Seed: 3, ColdFuncs: 50})
		if testErr != nil {
			return
		}
		testP, testErr = interp.Compile(testK.Mod.Clone())
	})
	if testErr != nil {
		t.Fatalf("test kernel: %v", testErr)
	}
	return testK, testP
}

func testConfig() Config {
	return Config{
		Runners:  4,
		Shards:   4,
		Epochs:   2,
		OpsScale: 2,
		Seed:     42,
		Mix:      []workload.Flavor{workload.Apache, workload.Nginx},
	}
}

func serialize(t *testing.T, p *prof.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// TestSnapshotDeterminism is the determinism contract: two runs with the
// same seed and shard count produce byte-identical serialized aggregate
// snapshots, regardless of goroutine scheduling.
func TestSnapshotDeterminism(t *testing.T) {
	k, prog := testKernel(t)
	run := func() []byte {
		svc, err := New(k, prog, testConfig(), nil, nil)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := svc.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Partial {
			t.Fatal("fault-free run reported partial aggregate")
		}
		return serialize(t, res.Final)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed + shards produced different aggregates (%d vs %d bytes)", len(a), len(b))
	}
	if len(a) < 100 {
		t.Fatalf("suspiciously small aggregate: %d bytes", len(a))
	}
}

// TestAggregatorMatchesSerialMerge: the sharded concurrent path must
// compute exactly what a serial prof.Merge fold computes.
func TestAggregatorMatchesSerialMerge(t *testing.T) {
	k, prog := testKernel(t)
	var deltas []*prof.Profile
	for i := 0; i < 6; i++ {
		flavor := []workload.Flavor{workload.Apache, workload.Nginx, workload.DBench}[i%3]
		r, err := workload.NewRunner(k, prog, flavor, int64(100+i))
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		p, err := r.Profile(1)
		if err != nil {
			t.Fatalf("Profile: %v", err)
		}
		deltas = append(deltas, p)
	}

	serial := prof.New()
	for _, d := range deltas {
		serial.Merge(d)
	}

	for _, shards := range []int{1, 3, 8} {
		agg := NewAggregator(shards, 1)
		var wg sync.WaitGroup
		for _, d := range deltas {
			wg.Add(1)
			go func(d *prof.Profile) {
				defer wg.Done()
				agg.Add(d)
			}(d)
		}
		wg.Wait()
		if got, want := serialize(t, agg.Snapshot()), serialize(t, serial); !bytes.Equal(got, want) {
			t.Errorf("shards=%d: concurrent aggregate differs from serial merge", shards)
		}
	}
}

func TestDecay(t *testing.T) {
	agg := NewAggregator(2, 0.5)
	d := prof.New()
	d.AddDirect(1, "a", "b", 100)
	d.AddIndirect(2, "a", "x", 10)
	d.AddIndirect(2, "a", "y", 1)
	d.AddInvocation("a", 50)
	d.Ops = 40
	agg.Add(d)

	agg.Decay()
	snap := agg.Snapshot()
	if got := snap.Sites[1].Count; got != 50 {
		t.Errorf("direct count after one decay = %d, want 50", got)
	}
	s2 := snap.Sites[2]
	if s2.Targets["x"] != 5 {
		t.Errorf("indirect target x after decay = %d, want 5", s2.Targets["x"])
	}
	if _, ok := s2.Targets["y"]; ok {
		t.Error("stale single-count target y survived a decay epoch")
	}
	if s2.Count != 5 {
		t.Errorf("indirect header after decay = %d, want sum of surviving targets 5", s2.Count)
	}
	if snap.Invocations["a"] != 25 || snap.Ops != 20 {
		t.Errorf("invocations/ops after decay = %d/%d, want 25/20", snap.Invocations["a"], snap.Ops)
	}

	// Decay to extinction: counts hit zero and entries drop out.
	for i := 0; i < 12; i++ {
		agg.Decay()
	}
	snap = agg.Snapshot()
	if len(snap.Sites) != 0 || len(snap.Invocations) != 0 || snap.Ops != 0 {
		t.Errorf("aggregate did not fully decay: %d sites, %d fns, ops %d",
			len(snap.Sites), len(snap.Invocations), snap.Ops)
	}
}

// TestDecayedSnapshotRoundTrips: decay must preserve the serialization
// invariant (indirect header == Σ target counts) that the strict profile
// reader enforces.
func TestDecayedSnapshotRoundTrips(t *testing.T) {
	k, prog := testKernel(t)
	r, err := workload.NewRunner(k, prog, workload.Apache, 7)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	p, err := r.Profile(2)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	agg := NewAggregator(4, 0.37)
	agg.Add(p)
	for i := 0; i < 3; i++ {
		agg.Decay()
	}
	data := serialize(t, agg.Snapshot())
	if _, err := prof.Read(bytes.NewReader(data)); err != nil {
		t.Fatalf("decayed snapshot rejected by strict reader: %v", err)
	}
}

// TestPartialAggregateUnderFaults: injected collector faults degrade to
// a partial aggregate, not a fleet abort.
func TestPartialAggregateUnderFaults(t *testing.T) {
	k, prog := testKernel(t)
	cfg := testConfig()
	cfg.Inject = resilience.NewInjector(11, resilience.Rates{Trap: 3e-4})
	svc, err := New(k, prog, cfg, nil, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := svc.Run()
	if err != nil {
		t.Fatalf("fleet aborted instead of degrading: %v", err)
	}
	if !res.Partial {
		t.Fatal("injected traps fired but result not marked partial (raise the rate?)")
	}
	var aborted int
	for _, r := range res.Reports {
		aborted += r.Aborted + r.Failed
	}
	if aborted == 0 {
		t.Fatal("no collector aborted or failed")
	}
	if len(res.Final.Sites) == 0 {
		t.Fatal("partial aggregate is empty")
	}
}

// TestEmptyAggregateFault: when every collector dies before contributing
// anything, the fleet reports a structured empty-aggregate fault.
func TestEmptyAggregateFault(t *testing.T) {
	k, prog := testKernel(t)
	cfg := testConfig()
	cfg.Epochs = 1
	cfg.Inject = resilience.NewInjector(5, resilience.Rates{Trap: 1})
	svc, err := New(k, prog, cfg, nil, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := svc.Run()
	if err == nil {
		t.Fatalf("all-collectors-dead run succeeded: %+v", res.Reports)
	}
	fe, ok := resilience.AsFault(err)
	if !ok || fe.Phase != resilience.PhaseFleet || fe.Kind != resilience.KindEmptyAggregate {
		t.Fatalf("error not a fleet/empty-aggregate fault: %v", err)
	}
}

// TestDriftRebuild: an LMBench baseline against an Apache/Nginx fleet
// drifts below the threshold and triggers exactly one rebuild (the
// post-rebuild baseline matches the live mix, so overlap recovers).
func TestDriftRebuild(t *testing.T) {
	k, prog := testKernel(t)
	lr, err := workload.NewRunner(k, prog, workload.LMBench, 1)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	baseline, err := lr.Profile(2)
	if err != nil {
		t.Fatalf("baseline profile: %v", err)
	}

	cfg := testConfig()
	cfg.Epochs = 3
	cfg.DriftThreshold = 0.9
	var rebuilds []*prof.Profile
	svc, err := New(k, prog, cfg, baseline, &Controller{
		Rebuild: func(snap *prof.Profile) (*Candidate, error) {
			rebuilds = append(rebuilds, snap)
			return &Candidate{}, nil
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := svc.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rebuilds == 0 {
		t.Fatalf("no rebuild despite mismatched baseline; overlaps: %+v", overlaps(res))
	}
	first := res.Reports[0]
	if !(first.Overlap < cfg.DriftThreshold) {
		t.Errorf("epoch 0 overlap %.3f not below threshold %.2f", first.Overlap, cfg.DriftThreshold)
	}
	if !first.Rebuilt {
		t.Error("first drifted epoch did not rebuild")
	}
	if !first.Promoted {
		t.Error("gate-free candidate was not promoted within its build epoch")
	}
	// After the rebuild the baseline tracks the live mix: overlap
	// recovers and stays above the pre-rebuild level.
	last := res.Reports[len(res.Reports)-1]
	if last.Overlap <= first.Overlap {
		t.Errorf("overlap did not recover after rebuild: first %.3f, last %.3f", first.Overlap, last.Overlap)
	}
	if len(rebuilds) != res.Rebuilds || rebuilds[0] == nil || len(rebuilds[0].Sites) == 0 {
		t.Fatalf("rebuild hook saw %d calls (want %d) or an empty snapshot", len(rebuilds), res.Rebuilds)
	}
}

func overlaps(res *Result) []float64 {
	var out []float64
	for _, r := range res.Reports {
		out = append(out, r.Overlap)
	}
	return out
}

// TestOnEpochObserver: the observer sees every epoch in order and its
// error aborts the run.
func TestOnEpochObserver(t *testing.T) {
	k, prog := testKernel(t)
	cfg := testConfig()
	var seen []int
	cfg.OnEpoch = func(r EpochReport) error {
		seen = append(seen, r.Epoch)
		return nil
	}
	svc, err := New(k, prog, cfg, nil, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := svc.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != cfg.Epochs || seen[0] != 0 || seen[len(seen)-1] != cfg.Epochs-1 {
		t.Fatalf("observer saw epochs %v, want 0..%d", seen, cfg.Epochs-1)
	}
}

// driftBaseline builds an LMBench profile that an Apache/Nginx fleet
// will drift away from.
func driftBaseline(t *testing.T, k *kernel.Kernel, prog *interp.Program) *prof.Profile {
	t.Helper()
	lr, err := workload.NewRunner(k, prog, workload.LMBench, 1)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	baseline, err := lr.Profile(2)
	if err != nil {
		t.Fatalf("baseline profile: %v", err)
	}
	return baseline
}

// TestRejectionAndCooldown: a candidate that fails validation is rolled
// back with its reason recorded, the incumbent baseline stays, and
// repeated rejections trip the capped-backoff cool-down.
func TestRejectionAndCooldown(t *testing.T) {
	k, prog := testKernel(t)
	cfg := testConfig()
	cfg.Epochs = 5
	cfg.DriftThreshold = 0.9
	cfg.Backoff = resilience.RetryPolicy{Jitter: -1} // deterministic Steps: 2, 4, ...
	svc, err := New(k, prog, cfg, driftBaseline(t, k, prog), &Controller{
		Rebuild: func(snap *prof.Profile) (*Candidate, error) {
			return &Candidate{
				Validate: func() error { return errors.New("trace diverged at site 7") },
			}, nil
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := svc.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Epoch 0 rejects (strike 1, cool-down Steps(1)=1), epoch 1 cools
	// down, epoch 2 rejects again (strike 2, cool-down Steps(2)=2), and
	// epochs 3-4 count that doubled cool-down back down.
	if res.Rebuilds != 0 {
		t.Errorf("rejected candidate counted as promoted rebuild: %d", res.Rebuilds)
	}
	if res.Rejections != 2 {
		t.Errorf("Rejections = %d, want 2; reports %+v", res.Rejections, res.Reports)
	}
	r0 := res.Reports[0]
	if !r0.Rebuilt || r0.Promoted || r0.Rejected == "" {
		t.Errorf("epoch 0 = %+v, want rebuilt+rejected", r0)
	}
	if want := "validation: trace diverged at site 7"; r0.Rejected != want {
		t.Errorf("rejection reason = %q, want %q", r0.Rejected, want)
	}
	if res.Reports[1].CoolingDown != 1 {
		t.Errorf("first strike cool-down = %d, want 1", res.Reports[1].CoolingDown)
	}
	if !res.Reports[2].Rebuilt || res.Reports[2].Rejected == "" {
		t.Errorf("epoch 2 did not retry the rebuild after cool-down: %+v", res.Reports[2])
	}
	if got := []int{res.Reports[3].CoolingDown, res.Reports[4].CoolingDown}; got[0] != 2 || got[1] != 1 {
		t.Errorf("second strike cool-down countdown = %v, want [2 1] (doubled)", got)
	}
	// The incumbent baseline never advanced, so overlap stays drifted.
	if last := res.Reports[len(res.Reports)-1]; last.Overlap >= cfg.DriftThreshold {
		t.Errorf("baseline advanced despite rejections: overlap %.3f", last.Overlap)
	}
}

// TestCanaryLatencyGate: the regression budget separates a candidate
// that is promoted from one that is rolled back.
func TestCanaryLatencyGate(t *testing.T) {
	k, prog := testKernel(t)
	run := func(canaryLatency float64) *Result {
		cfg := testConfig()
		cfg.Epochs = 2
		cfg.DriftThreshold = 0.9
		cfg.RegressionBudget = 0.05
		promoted := false
		svc, err := New(k, prog, cfg, driftBaseline(t, k, prog), &Controller{
			Rebuild: func(snap *prof.Profile) (*Candidate, error) {
				return &Candidate{
					Measure: func() (float64, error) { return canaryLatency, nil },
					Promote: func() error { promoted = true; return nil },
				}, nil
			},
			Incumbent: func() (float64, error) { return 100, nil },
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := svc.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := res.Rebuilds > 0; got != promoted {
			t.Errorf("Rebuilds=%d but Promote callback ran=%t", res.Rebuilds, promoted)
		}
		return res
	}

	if res := run(104); res.Rebuilds == 0 {
		t.Errorf("candidate within budget rejected: %+v", res.Reports)
	}
	res := run(120)
	if res.Rebuilds != 0 || res.Rejections == 0 {
		t.Fatalf("candidate 20%% over budget not rejected: rebuilds=%d rejections=%d",
			res.Rebuilds, res.Rejections)
	}
	if r := res.Reports[0].Rejected; !strings.Contains(r, "canary latency") {
		t.Errorf("rejection reason %q does not name the latency gate", r)
	}
}

// TestCanaryFaultKindGate: a fault kind first seen while the candidate
// serves its canary window rejects the promotion; the same kind seen
// before the build does not.
func TestCanaryFaultKindGate(t *testing.T) {
	k, prog := testKernel(t)
	cfg := testConfig()
	cfg.Epochs = 2
	cfg.DriftThreshold = 0.9
	cfg.CanaryEpochs = 2
	inject := resilience.NewInjector(17, resilience.Rates{})
	cfg.Inject = inject
	cfg.OnEpoch = func(r EpochReport) error {
		if r.Rebuilt {
			// Arm traps only after the candidate starts serving: the next
			// epoch's trap kind is new inside the canary window.
			inject.SetRates(resilience.Rates{Trap: 1})
		}
		return nil
	}
	svc, err := New(k, prog, cfg, driftBaseline(t, k, prog), &Controller{
		Rebuild: func(snap *prof.Profile) (*Candidate, error) { return &Candidate{}, nil },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := svc.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rebuilds != 0 || res.Rejections != 1 {
		t.Fatalf("canary with new fault kinds not rejected: rebuilds=%d rejections=%d reports=%+v",
			res.Rebuilds, res.Rejections, res.Reports)
	}
	if !res.Reports[0].Canary || !res.Reports[1].Canary {
		t.Errorf("canary window not recorded on both epochs: %+v", res.Reports)
	}
	dec := res.Reports[1]
	if !strings.Contains(dec.Rejected, "new fault kinds") || !strings.Contains(dec.Rejected, "trap") {
		t.Errorf("rejection reason %q does not name the new trap kind", dec.Rejected)
	}
	if len(dec.FaultKinds) == 0 || dec.FaultKinds[0] != "trap" {
		t.Errorf("epoch 1 fault kinds = %v, want [trap]", dec.FaultKinds)
	}
}

// TestActivationFailureRollsBack: a Promote callback error is a
// rejection, not a crash, and the incumbent keeps serving.
func TestActivationFailureRollsBack(t *testing.T) {
	k, prog := testKernel(t)
	cfg := testConfig()
	cfg.Epochs = 2
	cfg.DriftThreshold = 0.9
	svc, err := New(k, prog, cfg, driftBaseline(t, k, prog), &Controller{
		Rebuild: func(snap *prof.Profile) (*Candidate, error) {
			return &Candidate{Promote: func() error { return errors.New("swap failed") }}, nil
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := svc.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rebuilds != 0 || res.Rejections == 0 {
		t.Fatalf("activation failure not treated as rejection: %+v", res)
	}
	if r := res.Reports[0].Rejected; !strings.Contains(r, "activation: swap failed") {
		t.Errorf("rejection reason = %q", r)
	}
}

// TestEmptyHotSetOverlapNoDrift pins HotOverlap's empty-set semantics
// from the fleet's point of view. A freshly started fleet whose
// baseline and live aggregate are both still empty has seen no weight
// move anywhere, so the drift statistic must read 1.0 (perfect
// agreement) — any drift threshold below 1 must NOT fire and trigger a
// spurious rebuild. Only an asymmetric emptiness (one side has hot
// weight, the other none) is total disagreement, 0.
func TestEmptyHotSetOverlapNoDrift(t *testing.T) {
	empty, other := prof.New(), prof.New()
	const budget = 0.99
	if got := prof.HotOverlap(empty, other, budget); got != 1.0 {
		t.Fatalf("HotOverlap(empty, empty) = %v, want 1.0 (no drift)", got)
	}
	// Every sane DriftThreshold is < 1, so the fleet's trigger
	// condition overlap < threshold must be false for the empty pair.
	for _, thr := range []float64{0.5, 0.9, 0.999} {
		if overlap := prof.HotOverlap(empty, other, budget); overlap < thr {
			t.Errorf("empty-vs-empty overlap %v below drift threshold %v: would spuriously rebuild", overlap, thr)
		}
	}
	nonempty := prof.New()
	nonempty.AddIndirect(1, "caller", "target", 1000)
	if got := prof.HotOverlap(empty, nonempty, budget); got != 0 {
		t.Errorf("HotOverlap(empty, nonempty) = %v, want 0 (total disagreement)", got)
	}
	if got := prof.HotOverlap(nonempty, empty, budget); got != 0 {
		t.Errorf("HotOverlap(nonempty, empty) = %v, want 0 (total disagreement)", got)
	}
	if got := prof.HotOverlap(nonempty, nonempty, budget); got != 1.0 {
		t.Errorf("HotOverlap(p, p) = %v, want 1.0", got)
	}
}
