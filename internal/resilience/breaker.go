package resilience

import "fmt"

// Breaker is a step-driven circuit breaker: closed → open → half-open →
// closed, with capped-exponential open windows and deterministic seeded
// jitter. Unlike the textbook wall-clock breaker it advances in discrete
// steps (the ingestion service's round barriers, a fleet's epochs), which
// is what makes a run that uses it replayable: every transition is a pure
// function of (config, observed fault counts, step index), never of
// scheduling or time.
//
// Usage per step: feed the step's tallies with Observe, then call Advance
// at the step barrier to evaluate the window and transition. While open,
// Allow reports false and the owner is expected to shed the protected
// work. After the open window expires the breaker turns half-open: the
// next step's traffic is the probe batch, and a fault-free probed step
// heals the breaker while any fault re-trips it with an escalated window.
//
// Breaker is not safe for concurrent use; owners drive it from their
// barrier (single goroutine) and keep their own synchronized tallies.
type Breaker struct {
	cfg BreakerConfig

	state    BreakerState
	openLeft int
	strikes  int // consecutive trips without an intervening heal

	trips, heals uint64

	// current observation window (since the last Advance)
	attempts, faults uint64
}

// BreakerState enumerates the circuit states.
type BreakerState int

const (
	// BreakerClosed: traffic flows, faults are tallied against TripFaults.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is refused for the remaining open window.
	BreakerOpen
	// BreakerHalfOpen: traffic flows as a probe batch; a clean probed
	// step heals, any fault re-trips with escalation.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// ParseBreakerState inverts BreakerState.String.
func ParseBreakerState(s string) (BreakerState, error) {
	switch s {
	case "closed":
		return BreakerClosed, nil
	case "open":
		return BreakerOpen, nil
	case "half-open":
		return BreakerHalfOpen, nil
	}
	return BreakerClosed, fmt.Errorf("resilience: unknown breaker state %q", s)
}

// BreakerConfig shapes one breaker. The zero value gets defaults from
// withDefaults; a given config and fault history always produce the same
// transitions.
type BreakerConfig struct {
	// TripFaults is how many faults observed within one step trip the
	// breaker (default 8).
	TripFaults uint64
	// OpenSteps is the base open-window length in steps (default 2). The
	// k-th consecutive trip holds the breaker open for OpenSteps·2^(k-1)
	// steps, capped at MaxOpenSteps.
	OpenSteps int
	// MaxOpenSteps caps the escalated open window (default 16).
	MaxOpenSteps int
	// JitterSteps adds a deterministic, seeded extra delay in
	// [0, JitterSteps] steps to each open window, so a population of
	// breakers tripped by one incident does not re-probe in lockstep
	// (default 1; negative disables jitter).
	JitterSteps int
	// Seed drives the jitter stream; each trip ordinal draws its jitter
	// from (Seed, trip count) alone, so replays schedule probes
	// identically.
	Seed int64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.TripFaults == 0 {
		c.TripFaults = 8
	}
	if c.OpenSteps <= 0 {
		c.OpenSteps = 2
	}
	if c.MaxOpenSteps <= 0 {
		c.MaxOpenSteps = 16
	}
	if c.MaxOpenSteps < c.OpenSteps {
		c.MaxOpenSteps = c.OpenSteps
	}
	if c.JitterSteps == 0 {
		c.JitterSteps = 1
	}
	if c.JitterSteps < 0 {
		c.JitterSteps = 0
	}
	return c
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether the protected work should be admitted right now:
// true while closed or half-open (probe traffic), false while open.
func (b *Breaker) Allow() bool { return b.state != BreakerOpen }

// State returns the current circuit state.
func (b *Breaker) State() BreakerState { return b.state }

// Trips and Heals count lifetime transitions; Strikes counts consecutive
// trips since the last heal (it sizes the escalating open window).
func (b *Breaker) Trips() uint64 { return b.trips }

// Heals counts lifetime open→closed recoveries.
func (b *Breaker) Heals() uint64 { return b.heals }

// Strikes counts consecutive trips since the last heal.
func (b *Breaker) Strikes() int { return b.strikes }

// OpenLeft reports the steps remaining in an open window (0 unless open).
func (b *Breaker) OpenLeft() int { return b.openLeft }

// Observe adds one step's tallies to the current observation window:
// attempts admitted (probe traffic counts) and faults among them.
// Call any number of times between Advances; counts accumulate.
func (b *Breaker) Observe(attempts, faults uint64) {
	b.attempts += attempts
	b.faults += faults
}

// Advance is the step barrier: it evaluates the observation window
// accumulated since the previous Advance, transitions the breaker, and
// resets the window. It reports whether this step tripped (closed or
// half-open → open) or healed (half-open → closed) the breaker.
func (b *Breaker) Advance() (tripped, healed bool) {
	attempts, faults := b.attempts, b.faults
	b.attempts, b.faults = 0, 0
	switch b.state {
	case BreakerClosed:
		if faults >= b.cfg.TripFaults {
			b.trip()
			return true, false
		}
	case BreakerOpen:
		b.openLeft--
		if b.openLeft <= 0 {
			b.openLeft = 0
			b.state = BreakerHalfOpen
		}
	case BreakerHalfOpen:
		if faults > 0 {
			b.trip()
			return true, false
		}
		if attempts > 0 {
			// A probed, fault-free step: the tenant answered the probe
			// cleanly. A step with no traffic leaves the probe unanswered
			// and the breaker half-open.
			b.state = BreakerClosed
			b.strikes = 0
			b.heals++
			return false, true
		}
	}
	return false, false
}

// trip opens the breaker with the escalated, seeded-jittered window.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.strikes++
	b.trips++
	open := b.cfg.OpenSteps
	for i := 1; i < b.strikes && open < b.cfg.MaxOpenSteps; i++ {
		open *= 2
	}
	if open > b.cfg.MaxOpenSteps {
		open = b.cfg.MaxOpenSteps
	}
	b.openLeft = open + b.jitter()
}

// jitter draws the deterministic extra open delay for the current trip
// ordinal: a splitmix64 hash of (Seed, trips) reduced to
// [0, JitterSteps]. No shared RNG state, so restoring a breaker from a
// snapshot replays the same probe schedule.
func (b *Breaker) jitter() int {
	if b.cfg.JitterSteps <= 0 {
		return 0
	}
	z := uint64(b.cfg.Seed)*0x9e3779b97f4a7c15 + b.trips*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(b.cfg.JitterSteps+1))
}

// BreakerSnap is a breaker's persistable state, taken at a step barrier
// (the observation window is empty there by construction, so it is not
// part of the snapshot).
type BreakerSnap struct {
	State    string
	OpenLeft int
	Strikes  int
	Trips    uint64
	Heals    uint64
}

// Snap captures the breaker for checkpointing. Call only at a step
// barrier (after Advance), when the observation window is empty.
func (b *Breaker) Snap() BreakerSnap {
	return BreakerSnap{
		State:    b.state.String(),
		OpenLeft: b.openLeft,
		Strikes:  b.strikes,
		Trips:    b.trips,
		Heals:    b.heals,
	}
}

// RestoreBreaker rebuilds a breaker from a snapshot under cfg. The
// jitter stream continues from the restored trip count, so a resumed
// breaker schedules future probes exactly as the uninterrupted one
// would have.
func RestoreBreaker(cfg BreakerConfig, s BreakerSnap) (*Breaker, error) {
	state, err := ParseBreakerState(s.State)
	if err != nil {
		return nil, err
	}
	if s.OpenLeft < 0 || s.Strikes < 0 {
		return nil, fmt.Errorf("resilience: negative breaker counters (open-left %d, strikes %d)",
			s.OpenLeft, s.Strikes)
	}
	if state == BreakerOpen && s.OpenLeft == 0 {
		return nil, fmt.Errorf("resilience: open breaker with no window left")
	}
	b := NewBreaker(cfg)
	b.state = state
	b.openLeft = s.OpenLeft
	b.strikes = s.Strikes
	b.trips = s.Trips
	b.heals = s.Heals
	return b, nil
}
