package resilience

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestFaultErrorChain(t *testing.T) {
	cause := errors.New("boom")
	var err error = Fault(PhaseExecute, KindTrap, "vfs_read", cause)
	if !errors.Is(err, cause) {
		t.Fatal("FaultError does not unwrap to its cause")
	}
	fe, ok := AsFault(fmt.Errorf("wrapped: %w", err))
	if !ok || fe.Kind != KindTrap || fe.Phase != PhaseExecute || fe.Site != "vfs_read" {
		t.Fatalf("AsFault through wrapping = %+v, %v", fe, ok)
	}
	if !IsKind(err, KindTrap) || IsKind(err, KindTransient) {
		t.Fatal("IsKind misclassifies")
	}
	msg := err.Error()
	for _, want := range []string{"execute", "trap", "vfs_read", "boom"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestIsAbort(t *testing.T) {
	for _, k := range []Kind{KindTrap, KindFuelExhausted, KindDepthExhausted} {
		if !IsAbort(Fault(PhaseExecute, k, "f", nil)) {
			t.Fatalf("IsAbort(%s) = false", k)
		}
	}
	if IsAbort(Fault(PhaseMeasure, KindTransient, "f", nil)) || IsAbort(errors.New("x")) {
		t.Fatal("IsAbort misclassifies non-aborts")
	}
}

func TestRecoverPanic(t *testing.T) {
	f := func() (err error) {
		defer RecoverPanic(&err, PhaseBuild, "Build")
		panic("producer bug")
	}
	err := f()
	fe, ok := AsFault(err)
	if !ok || fe.Kind != KindPanic || fe.Phase != PhaseBuild {
		t.Fatalf("recovered error = %v", err)
	}
	if !strings.Contains(err.Error(), "producer bug") {
		t.Fatalf("panic payload lost: %v", err)
	}
	// No panic: error stays nil.
	g := func() (err error) {
		defer RecoverPanic(&err, PhaseBuild, "Build")
		return nil
	}
	if err := g(); err != nil {
		t.Fatalf("RecoverPanic without panic set err = %v", err)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() (int, map[Kind]int) {
		in := NewInjector(42, Rates{Trap: 0.1, Depth: 0.05, Measure: 0.2})
		for i := 0; i < 1000; i++ {
			in.Trap("f")
			in.ExhaustDepth()
			in.MeasureFault("read")
		}
		return in.Total(), in.Counts()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || fmt.Sprint(c1) != fmt.Sprint(c2) {
		t.Fatalf("same seed diverged: %d %v vs %d %v", t1, c1, t2, c2)
	}
	if t1 == 0 {
		t.Fatal("injector with positive rates never fired in 3000 draws")
	}
	if c1[KindTrap] == 0 || c1[KindTransient] == 0 {
		t.Fatalf("expected trap and transient fires, got %v", c1)
	}
}

func TestInjectorNilAndZeroRatesSafe(t *testing.T) {
	var in *Injector
	if in.Trap("f") != nil || in.ExhaustFuel() || in.ExhaustDepth() || in.MeasureFault("b") != nil {
		t.Fatal("nil injector injected a fault")
	}
	if got, kinds := in.MangleProfile([]byte("x")); string(got) != "x" || kinds != nil {
		t.Fatal("nil injector mangled data")
	}
	in.SetMaxFaults(3) // must not crash
	if in.Total() != 0 || in.Counts() != nil || in.Summary() != "none" {
		t.Fatal("nil injector reports faults")
	}
	zero := NewInjector(1, Rates{})
	for i := 0; i < 100; i++ {
		if zero.Trap("f") != nil || zero.ExhaustFuel() {
			t.Fatal("zero-rate injector fired")
		}
	}
}

func TestInjectorMaxFaults(t *testing.T) {
	in := NewInjector(7, Rates{Trap: 1})
	in.SetMaxFaults(3)
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Trap("f") != nil {
			fired++
		}
	}
	if fired != 3 || in.Total() != 3 {
		t.Fatalf("MaxFaults(3): fired %d, total %d", fired, in.Total())
	}
}

func TestMangleProfileTruncates(t *testing.T) {
	in := NewInjector(5, Rates{Truncate: 1})
	data := []byte(strings.Repeat("record line\n", 50))
	out, kinds := in.MangleProfile(data)
	if len(kinds) != 1 || kinds[0] != KindTruncated {
		t.Fatalf("kinds = %v", kinds)
	}
	if len(out) >= len(data) || len(out) < len(data)/4 {
		t.Fatalf("truncated to %d of %d bytes", len(out), len(data))
	}
}

func TestMangleProfileCorrupts(t *testing.T) {
	in := NewInjector(5, Rates{Corrupt: 1})
	data := []byte("magic header\nrec a\nrec b\nrec c\n")
	out, kinds := in.MangleProfile(data)
	if len(kinds) != 1 || kinds[0] != KindCorrupt {
		t.Fatalf("kinds = %v", kinds)
	}
	if bytes.Equal(out, data) {
		t.Fatal("corrupt fault left data unchanged")
	}
	if !bytes.HasPrefix(out, []byte("magic header\n")) {
		t.Fatal("corruption touched the header line")
	}
}

func TestTruncatingWriter(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTruncatingWriter(&buf, 10)
	for i := 0; i < 4; i++ {
		n, err := tw.Write([]byte("abcdef"))
		if n != 6 || err != nil {
			t.Fatalf("Write = %d, %v", n, err)
		}
	}
	if buf.Len() != 10 || tw.Dropped != 14 {
		t.Fatalf("kept %d dropped %d, want 10/14", buf.Len(), tw.Dropped)
	}
	if got := buf.String(); got != "abcdefabcd" {
		t.Fatalf("kept prefix %q", got)
	}
}

func TestRetryAbsorbsTransients(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 3 * time.Millisecond,
		Jitter: -1, // exact doubling, no perturbation
		Sleep:  func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := Retry(nil, p, func() error {
		calls++
		if calls < 4 {
			return Fault(PhaseMeasure, KindTransient, "read", errors.New("flake"))
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("Retry = %v after %d calls", err, calls)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	if fmt.Sprint(slept) != fmt.Sprint(want) {
		t.Fatalf("backoff %v, want %v (doubling capped at MaxDelay)", slept, want)
	}
}

func TestRetryJitterBoundsAndDeterminism(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: 4 * time.Millisecond, MaxDelay: 64 * time.Millisecond, Seed: 11}
	spread := false
	for attempt := 1; attempt <= 7; attempt++ {
		nominal := 4 * time.Millisecond << (attempt - 1)
		if nominal > p.MaxDelay {
			nominal = p.MaxDelay
		}
		d := p.DelayAt(attempt)
		lo, hi := nominal/2, nominal+nominal/2
		if d < lo || d > hi {
			t.Fatalf("DelayAt(%d) = %v outside jitter band [%v, %v]", attempt, d, lo, hi)
		}
		if d != nominal {
			spread = true
		}
		if again := p.DelayAt(attempt); again != d {
			t.Fatalf("DelayAt(%d) nondeterministic: %v then %v", attempt, d, again)
		}
	}
	if !spread {
		t.Fatal("jitter never perturbed any delay")
	}
	// Distinct seeds must desynchronize: that is the whole point.
	q := p
	q.Seed = 12
	same := true
	for attempt := 1; attempt <= 7; attempt++ {
		if p.DelayAt(attempt) != q.DelayAt(attempt) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestRetryStepsShape(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 9, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: -1}
	want := []int{1, 2, 4, 8, 8}
	for i, w := range want {
		if got := p.Steps(i + 1); got != w {
			t.Fatalf("Steps(%d) = %d, want %d", i+1, got, w)
		}
	}
	if p.Steps(0) < 1 || DefaultRetry().Steps(1) < 1 {
		t.Fatal("Steps must be at least 1")
	}
}

// TestRetryContextCancel: cancellation aborts the backoff sleep promptly
// (well before the 10s capped delay would elapse) and surfaces the last
// attempt's structured fault rather than swallowing it into ctx.Err().
func TestRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second, Jitter: -1}
	calls := 0
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := Retry(ctx, p, func() error {
		calls++
		return Fault(PhaseMeasure, KindTransient, "b", errors.New("flaky"))
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled Retry slept %v, want a prompt abort", elapsed)
	}
	if calls != 1 {
		t.Fatalf("cancelled mid-backoff but f ran %d times", calls)
	}
	if !IsTransient(err) {
		t.Fatalf("cancellation swallowed the fault: %v", err)
	}

	// An already-cancelled context still runs f once (the attempt is free;
	// only the backoff is abortable) but never sleeps.
	calls = 0
	err = Retry(ctx, RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) { t.Fatal("slept under a dead context") }}, func() error {
		calls++
		return Fault(PhaseMeasure, KindTransient, "b", errors.New("flaky"))
	})
	if calls != 1 || !IsTransient(err) {
		t.Fatalf("dead-context Retry: %d calls, err %v", calls, err)
	}
}

func TestRetryStopsOnNonTransient(t *testing.T) {
	calls := 0
	hard := Fault(PhaseExecute, KindTrap, "f", errors.New("hard"))
	err := Retry(nil, RetryPolicy{Sleep: func(time.Duration) {}}, func() error {
		calls++
		return hard
	})
	if calls != 1 || !errors.Is(err, hard) {
		t.Fatalf("non-transient retried: %d calls, err %v", calls, err)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Retry(nil, RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}, func() error {
		calls++
		return Fault(PhaseMeasure, KindTransient, "b", errors.New("always"))
	})
	if calls != 3 || !IsTransient(err) {
		t.Fatalf("exhaustion: %d calls, err %v", calls, err)
	}
}
