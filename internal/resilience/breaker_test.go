package resilience

import "testing"

// noJitter is the exact-arithmetic config the transition tests use.
func noJitter() BreakerConfig {
	return BreakerConfig{TripFaults: 4, OpenSteps: 2, MaxOpenSteps: 8, JitterSteps: -1}
}

// step feeds one step's tallies and advances.
func step(b *Breaker, attempts, faults uint64) (bool, bool) {
	b.Observe(attempts, faults)
	return b.Advance()
}

func TestBreakerTripOpenProbeHeal(t *testing.T) {
	b := NewBreaker(noJitter())
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("fresh breaker: state %v allow %v", b.State(), b.Allow())
	}

	// Below the threshold: stays closed.
	if tripped, _ := step(b, 10, 3); tripped || b.State() != BreakerClosed {
		t.Fatalf("sub-threshold faults tripped: state %v", b.State())
	}
	// At the threshold: trips open for OpenSteps.
	tripped, healed := step(b, 10, 4)
	if !tripped || healed || b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("threshold step: tripped=%v healed=%v state=%v", tripped, healed, b.State())
	}
	if b.Trips() != 1 || b.Strikes() != 1 || b.OpenLeft() != 2 {
		t.Fatalf("after trip: trips=%d strikes=%d openLeft=%d", b.Trips(), b.Strikes(), b.OpenLeft())
	}

	// Open window: two steps (attempts while open are shed by the owner,
	// so the window sees none).
	step(b, 0, 0)
	if b.State() != BreakerOpen {
		t.Fatalf("one step into a 2-step window: state %v", b.State())
	}
	step(b, 0, 0)
	if b.State() != BreakerHalfOpen || !b.Allow() {
		t.Fatalf("window expired: state %v allow %v", b.State(), b.Allow())
	}

	// Half-open with no traffic: the probe goes unanswered.
	step(b, 0, 0)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("idle half-open advanced to %v", b.State())
	}
	// A clean probed step heals.
	tripped, healed = step(b, 5, 0)
	if tripped || !healed || b.State() != BreakerClosed {
		t.Fatalf("clean probe: tripped=%v healed=%v state=%v", tripped, healed, b.State())
	}
	if b.Heals() != 1 || b.Strikes() != 0 {
		t.Fatalf("after heal: heals=%d strikes=%d", b.Heals(), b.Strikes())
	}
}

func TestBreakerRetripEscalatesCapped(t *testing.T) {
	b := NewBreaker(noJitter())
	// Open windows double per consecutive strike: 2, 4, 8, 8 (capped).
	want := []int{2, 4, 8, 8}
	for i, w := range want {
		// Trip (strike i+1). From half-open a single fault re-trips; from
		// closed it takes TripFaults.
		if b.State() == BreakerHalfOpen {
			step(b, 1, 1)
		} else {
			step(b, 4, 4)
		}
		if b.State() != BreakerOpen || b.OpenLeft() != w {
			t.Fatalf("strike %d: state %v openLeft %d, want open/%d", i+1, b.State(), b.OpenLeft(), w)
		}
		// Serve out the window.
		for b.State() == BreakerOpen {
			step(b, 0, 0)
		}
	}
	if b.Trips() != uint64(len(want)) {
		t.Fatalf("trips = %d, want %d", b.Trips(), len(want))
	}
	// A heal resets the escalation.
	step(b, 3, 0)
	step(b, 4, 4)
	if b.OpenLeft() != 2 {
		t.Fatalf("post-heal strike window %d, want the base 2", b.OpenLeft())
	}
}

// TestBreakerJitterDeterministic: the jittered open window is a pure
// function of (seed, trip ordinal) — two breakers with the same seed
// schedule identically, a different seed may not, and every draw stays
// within [0, JitterSteps].
func TestBreakerJitterDeterministic(t *testing.T) {
	cfg := BreakerConfig{TripFaults: 1, OpenSteps: 2, MaxOpenSteps: 2, JitterSteps: 3, Seed: 7}
	windows := func(cfg BreakerConfig) []int {
		b := NewBreaker(cfg)
		var out []int
		for trip := 0; trip < 6; trip++ {
			step(b, 1, 1)
			out = append(out, b.OpenLeft())
			for b.State() == BreakerOpen {
				step(b, 0, 0)
			}
		}
		return out
	}
	a, bb := windows(cfg), windows(cfg)
	varied := false
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("same seed, trip %d: window %d vs %d", i, a[i], bb[i])
		}
		if a[i] < 2 || a[i] > 2+3 {
			t.Fatalf("trip %d: window %d outside [2, 5]", i, a[i])
		}
		if a[i] != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Error("seeded jitter never varied the window across 6 trips")
	}
}

func TestBreakerSnapRestoreRoundTrip(t *testing.T) {
	cfg := BreakerConfig{TripFaults: 2, OpenSteps: 3, MaxOpenSteps: 6, JitterSteps: -1, Seed: 11}
	b := NewBreaker(cfg)
	step(b, 2, 2) // trip
	step(b, 0, 0) // one step into the window

	re, err := RestoreBreaker(cfg, b.Snap())
	if err != nil {
		t.Fatal(err)
	}
	// Drive both to heal in lockstep; every transition must agree.
	for i := 0; i < 10; i++ {
		s1, h1 := step(b, 1, 0)
		s2, h2 := step(re, 1, 0)
		if s1 != s2 || h1 != h2 || b.State() != re.State() || b.OpenLeft() != re.OpenLeft() {
			t.Fatalf("step %d diverged: (%v,%v,%v,%d) vs (%v,%v,%v,%d)",
				i, s1, h1, b.State(), b.OpenLeft(), s2, h2, re.State(), re.OpenLeft())
		}
	}
	if b.State() != BreakerClosed {
		t.Fatalf("lockstep drive never healed: %v", b.State())
	}
}

func TestBreakerRestoreRejectsGarbage(t *testing.T) {
	cfg := BreakerConfig{}
	for _, snap := range []BreakerSnap{
		{State: "wedged"},
		{State: "open", OpenLeft: 0},
		{State: "closed", Strikes: -1},
		{State: "half-open", OpenLeft: -2},
	} {
		if _, err := RestoreBreaker(cfg, snap); err == nil {
			t.Errorf("RestoreBreaker(%+v) accepted garbage", snap)
		}
	}
}
