// Package resilience is the fault model of the reproduction: structured
// fault errors shared by the interpreter, workload runner, profiler and
// build surface; a deterministic seeded fault injector for chaos testing
// the profile→build→measure pipeline; and retry-with-backoff for
// transient measurement failures.
//
// The paper's pipeline feeds profiling runs of a live kernel into the
// production build. Real profiling runs crash, get truncated, and emit
// partial or corrupt profiles; this package gives every layer of the
// reproduction a common vocabulary for those failures so the pipeline can
// degrade gracefully (salvage a partial profile, skip a corrupt record,
// retry a transient measurement) instead of aborting end-to-end.
package resilience

import (
	"errors"
	"fmt"
	"strings"
)

// Phase identifies the pipeline stage a fault belongs to.
type Phase string

// The pipeline stages.
const (
	PhaseProfile   Phase = "profile"   // profiling run (collection)
	PhaseBuild     Phase = "build"     // optimization + hardening + compile
	PhaseMeasure   Phase = "measure"   // latency / cycle measurement
	PhaseExecute   Phase = "execute"   // inside the interpreter
	PhaseSerialize Phase = "serialize" // profile (de)serialization
	PhaseFleet     Phase = "fleet"     // continuous fleet profiling / aggregation
	PhasePromote   Phase = "promote"   // candidate-image validation / canary promotion
	PhaseIngest    Phase = "ingest"    // multi-tenant profile-delta ingestion
)

// Kind classifies a fault.
type Kind string

// The fault kinds the pipeline distinguishes.
const (
	// KindTrap is an interpreter trap: broken control flow, an
	// unresolved indirect target, a call into a missing function.
	KindTrap Kind = "trap"
	// KindFuelExhausted is the interpreter's step budget running out.
	KindFuelExhausted Kind = "fuel-exhausted"
	// KindDepthExhausted is the interpreter's call-depth bound tripping.
	KindDepthExhausted Kind = "depth-exhausted"
	// KindTruncated is a torn profile write (the tail is missing).
	KindTruncated Kind = "truncated"
	// KindCorrupt is a mangled profile record.
	KindCorrupt Kind = "corrupt"
	// KindTransient is a retryable measurement failure.
	KindTransient Kind = "transient"
	// KindPanic is a panic recovered at the public API surface.
	KindPanic Kind = "panic"
	// KindConfig is an invalid configuration rejected up front.
	KindConfig Kind = "config"
	// KindEmptyAggregate is a fleet profiling run whose every collector
	// failed before contributing anything: the aggregate is empty and
	// there is nothing to degrade to. Partial collector failures are NOT
	// this kind — they degrade to a partial aggregate without error.
	KindEmptyAggregate Kind = "empty-aggregate"
	// KindDivergence is a candidate image whose observable behaviour
	// (trap status or profile-visible indirect-call targets) differs from
	// the reference image over the validation corpus: the optimization
	// passes changed semantics, so the candidate must not be promoted.
	KindDivergence Kind = "divergence"
	// KindUnhardenedSite is a surviving indirect branch that does not
	// carry the configured defense: an optimization or a miscompile
	// dropped a hardening site, violating PIBE's safety invariant.
	KindUnhardenedSite Kind = "unhardened-site"
	// KindOverload is a bounded ingestion queue refusing work: the
	// service is saturated and configured to shed rather than block, so
	// the delta batch was dropped instead of growing the queue without
	// bound. The producer may retry after backing off; the aggregate
	// degrades to an under-count that the overload counters quantify.
	KindOverload Kind = "overload"
	// KindPoison is a malformed profile delta rejected by ingestion
	// sanitation before it could reach any aggregate: zero or overflowing
	// counts, an inconsistent value profile, empty function or target
	// names, or a site outside the configured site universe. Poison never
	// merges, so a quarantined-and-dropped poison stream leaves the
	// global aggregate byte-identical to a run where it never arrived.
	KindPoison Kind = "poison"
	// KindQuarantined is work refused because its tenant's circuit
	// breaker is open: the tenant's recent fault rate tripped the bulkhead
	// and its submissions are counted-and-dropped until the breaker's
	// half-open probe window heals it.
	KindQuarantined Kind = "quarantined"
	// KindClosed is a request against a service that has already been
	// shut down: the work was refused with a structured error rather than
	// panicking on a closed internal queue.
	KindClosed Kind = "closed"
)

// FaultError is the structured error type used at the interp/workload/
// build boundaries in place of stringly errors. It records where in the
// pipeline the fault occurred (Phase), what went wrong (Kind), the site —
// a function, benchmark or record name — and whether it was injected by a
// chaos Injector rather than organic.
type FaultError struct {
	Phase    Phase
	Kind     Kind
	Site     string
	Injected bool
	Err      error
}

func (e *FaultError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s/%s", e.Phase, e.Kind)
	if e.Site != "" {
		fmt.Fprintf(&sb, " at %s", e.Site)
	}
	if e.Injected {
		sb.WriteString(" [injected]")
	}
	if e.Err != nil {
		fmt.Fprintf(&sb, ": %v", e.Err)
	}
	return sb.String()
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *FaultError) Unwrap() error { return e.Err }

// Fault builds a FaultError wrapping err.
func Fault(phase Phase, kind Kind, site string, err error) *FaultError {
	return &FaultError{Phase: phase, Kind: kind, Site: site, Err: err}
}

// Faultf builds a FaultError with a formatted cause.
func Faultf(phase Phase, kind Kind, site, format string, args ...any) *FaultError {
	return &FaultError{Phase: phase, Kind: kind, Site: site, Err: fmt.Errorf(format, args...)}
}

// AsFault extracts the FaultError in err's chain, if any.
func AsFault(err error) (*FaultError, bool) {
	var fe *FaultError
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// IsKind reports whether err wraps a FaultError of the given kind.
func IsKind(err error, k Kind) bool {
	fe, ok := AsFault(err)
	return ok && fe.Kind == k
}

// IsTransient reports whether err is a retryable transient fault.
func IsTransient(err error) bool { return IsKind(err, KindTransient) }

// IsAbort reports whether err is an execution abort (trap or resource
// exhaustion) after which a partially collected result is still usable.
func IsAbort(err error) bool {
	fe, ok := AsFault(err)
	if !ok {
		return false
	}
	switch fe.Kind {
	case KindTrap, KindFuelExhausted, KindDepthExhausted:
		return true
	}
	return false
}

// RecoverPanic converts a panic into a *FaultError assigned through errp.
// It is deferred at the public API surface so producer bugs (and injected
// chaos) surface as structured errors rather than crashing the host:
//
//	func (s *System) Build(cfg BuildConfig) (img *Image, err error) {
//	    defer resilience.RecoverPanic(&err, resilience.PhaseBuild, "Build")
//	    ...
//	}
//
// An existing error is not overwritten unless a panic actually occurred.
func RecoverPanic(errp *error, phase Phase, site string) {
	if r := recover(); r != nil {
		*errp = &FaultError{
			Phase: phase, Kind: KindPanic, Site: site,
			Err: fmt.Errorf("recovered panic: %v", r),
		}
	}
}
