package resilience

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sort"
	"sync"
)

// Rates configures per-event fault probabilities for an Injector. A zero
// rate disables that fault kind. Each rate is evaluated against a
// different event stream, noted per field.
type Rates struct {
	// Trap is the probability, per interpreted function entry, of an
	// injected interpreter trap.
	Trap float64
	// Fuel is the probability, per executed block, of injected step-budget
	// exhaustion. Block counts are large; meaningful rates are tiny
	// (1e-6 .. 1e-4).
	Fuel float64
	// Depth is the probability, per interpreted call, of injected
	// call-depth exhaustion.
	Depth float64
	// Truncate is the probability, per serialized profile, of a torn
	// write that drops the tail of the output.
	Truncate float64
	// Corrupt is the probability, per serialized profile, of one record
	// line being mangled in place.
	Corrupt float64
	// Measure is the probability, per measurement round, of a transient
	// (retryable) measurement failure.
	Measure float64
}

// UniformRates sets every event-scoped rate to r and the per-block Fuel
// rate to r/1000, a rough normalization of the very different event
// frequencies.
func UniformRates(r float64) Rates {
	return Rates{Trap: r, Fuel: r / 1000, Depth: r, Truncate: r, Corrupt: r, Measure: r}
}

// Injector is a deterministic, seeded fault source. The same seed, rates
// and event sequence reproduce the same faults, so chaos runs are exactly
// replayable. All methods are safe for concurrent use and safe on a nil
// receiver (a nil *Injector never injects).
type Injector struct {
	mu    sync.Mutex
	rates Rates
	rng   *rand.Rand
	max   int // 0 = unlimited
	fired map[Kind]int
	total int
}

// NewInjector returns an Injector drawing from a deterministic stream
// seeded with seed.
func NewInjector(seed int64, rates Rates) *Injector {
	return &Injector{
		rates: rates,
		rng:   rand.New(rand.NewSource(seed)),
		fired: make(map[Kind]int),
	}
}

// SetMaxFaults caps the total number of faults the injector will ever
// fire (0 = unlimited). Chaos tests use it to bound disruption so that
// retries are guaranteed to converge.
func (in *Injector) SetMaxFaults(n int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.max = n
	in.mu.Unlock()
}

// SetRates swaps the injector's fault probabilities mid-run, keeping the
// same deterministic draw stream. Chaos scenarios use it to arm a fault
// kind only after a chosen point (e.g. to fire first inside a canary
// window).
func (in *Injector) SetRates(r Rates) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rates = r
	in.mu.Unlock()
}

// trip draws one event against the current rate for kind, recording the
// fault when it fires. The rate is read under the lock so SetRates can
// re-arm a live injector without racing the event streams.
func (in *Injector) trip(kind Kind) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var rate float64
	switch kind {
	case KindTrap:
		rate = in.rates.Trap
	case KindFuelExhausted:
		rate = in.rates.Fuel
	case KindDepthExhausted:
		rate = in.rates.Depth
	case KindTruncated:
		rate = in.rates.Truncate
	case KindCorrupt:
		rate = in.rates.Corrupt
	case KindTransient:
		rate = in.rates.Measure
	}
	if rate <= 0 {
		return false
	}
	if in.max > 0 && in.total >= in.max {
		return false
	}
	if in.rng.Float64() >= rate {
		return false
	}
	in.fired[kind]++
	in.total++
	return true
}

// intn draws a bounded random int from the injector's stream.
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// Trap returns an injected interpreter trap for the named site, or nil.
func (in *Injector) Trap(site string) error {
	if in == nil || !in.trip(KindTrap) {
		return nil
	}
	return &FaultError{
		Phase: PhaseExecute, Kind: KindTrap, Site: site, Injected: true,
		Err: errors.New("injected interpreter trap"),
	}
}

// ExhaustFuel reports whether an injected step-budget exhaustion fires
// for the current block.
func (in *Injector) ExhaustFuel() bool { return in != nil && in.trip(KindFuelExhausted) }

// ExhaustDepth reports whether an injected depth exhaustion fires for the
// current call.
func (in *Injector) ExhaustDepth() bool {
	return in != nil && in.trip(KindDepthExhausted)
}

// MeasureFault returns an injected transient measurement failure for the
// named benchmark, or nil.
func (in *Injector) MeasureFault(bench string) error {
	if in == nil || !in.trip(KindTransient) {
		return nil
	}
	return &FaultError{
		Phase: PhaseMeasure, Kind: KindTransient, Site: bench, Injected: true,
		Err: errors.New("injected transient measurement failure"),
	}
}

// MangleProfile applies serialization faults to an encoded profile: a
// torn write that drops the tail (Truncate) and/or one record line
// scrambled in place (Corrupt). It returns the (possibly) damaged bytes
// and the kinds applied; with no fault it returns data unchanged.
func (in *Injector) MangleProfile(data []byte) ([]byte, []Kind) {
	if in == nil || len(data) == 0 {
		return data, nil
	}
	var applied []Kind
	out := data
	if in.trip(KindCorrupt) {
		out = corruptRecord(append([]byte(nil), out...), in.intn)
		applied = append(applied, KindCorrupt)
	}
	if in.trip(KindTruncated) {
		// Keep at least a quarter so there is something to salvage, and
		// always cut strictly inside the data.
		lo := len(out) / 4
		cut := lo + in.intn(len(out)-lo)
		out = out[:cut]
		applied = append(applied, KindTruncated)
	}
	return out, applied
}

// corruptRecord scrambles one non-header line of a line-oriented blob.
func corruptRecord(data []byte, intn func(int) int) []byte {
	lines := bytes.Split(data, []byte("\n"))
	// Candidate lines: skip the magic header (index 0) and empty tails.
	var cands []int
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) > 0 {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return data
	}
	i := cands[intn(len(cands))]
	if intn(2) == 0 {
		// Garbage prefix: the record keyword is destroyed.
		lines[i] = []byte("\x7fcorrupt\x7f " + string(lines[i]))
	} else {
		// Torn mid-line: keep a prefix that no longer parses.
		cut := 1 + intn(len(lines[i]))
		lines[i] = append(lines[i][:cut:cut], []byte(" \x7f")...)
	}
	return bytes.Join(lines, []byte("\n"))
}

// Counts returns how many faults of each kind have fired.
func (in *Injector) Counts() map[Kind]int {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int, len(in.fired))
	for k, n := range in.fired {
		out[k] = n
	}
	return out
}

// Total returns the total number of faults fired.
func (in *Injector) Total() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Summary renders fired-fault counts as "kind=n kind=n", sorted by kind,
// or "none".
func (in *Injector) Summary() string {
	counts := in.Counts()
	if len(counts) == 0 {
		return "none"
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var sb bytes.Buffer
	for i, k := range kinds {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(itoa(counts[Kind(k)]))
	}
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TruncatingWriter models a torn profile write: bytes past Limit are
// silently discarded (the producer believes the write succeeded, as a
// crashed profiling host would). Dropped reports how many bytes were
// lost.
type TruncatingWriter struct {
	W       io.Writer
	Limit   int64
	Dropped int64
	n       int64
}

// NewTruncatingWriter wraps w to discard everything after limit bytes.
func NewTruncatingWriter(w io.Writer, limit int64) *TruncatingWriter {
	return &TruncatingWriter{W: w, Limit: limit}
}

func (t *TruncatingWriter) Write(p []byte) (int, error) {
	keep := int64(len(p))
	if t.n+keep > t.Limit {
		keep = t.Limit - t.n
		if keep < 0 {
			keep = 0
		}
	}
	if keep > 0 {
		if _, err := t.W.Write(p[:keep]); err != nil {
			return 0, err
		}
	}
	t.n += int64(len(p))
	t.Dropped += int64(len(p)) - keep
	return len(p), nil
}
