package resilience

import "time"

// RetryPolicy bounds a capped-exponential-backoff retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 1ms); it
	// doubles per retry up to MaxDelay (default 50ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep is a test hook; nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetry is the policy the measurement drivers use.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetry()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	return p
}

// Retry runs f, retrying with capped exponential backoff while it fails
// with a transient fault (IsTransient). Any other error — or transient
// failure persisting through MaxAttempts — is returned as-is.
func Retry(p RetryPolicy, f func() error) error {
	p = p.withDefaults()
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		err = f()
		if err == nil || !IsTransient(err) || attempt >= p.MaxAttempts {
			return err
		}
		sleep(delay)
		delay *= 2
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}
