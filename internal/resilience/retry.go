package resilience

import (
	"context"
	"math/rand"
	"time"
)

// RetryPolicy bounds a capped-exponential-backoff retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 1ms); it
	// doubles per retry up to MaxDelay (default 50ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter is the symmetric random perturbation applied to each delay,
	// as a fraction of the nominal delay: 0.5 means each delay lands
	// uniformly in [0.5d, 1.5d]. Zero means the default (0.5); a negative
	// value disables jitter. Jitter keeps concurrent collectors that hit
	// the same transient fault from retrying in lockstep.
	Jitter float64
	// Seed seeds the jitter stream, so a given (Seed, attempt) pair
	// always perturbs by the same amount. Concurrent users should derive
	// distinct seeds (the workload runner uses its own run seed).
	Seed int64
	// Sleep is a test hook; nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetry is the policy the measurement drivers use.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, Jitter: 0.5}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetry()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Jitter == 0 {
		p.Jitter = d.Jitter
	}
	return p
}

// DelayAt returns the backoff delay before retry number attempt (1-based):
// BaseDelay doubled per retry, capped at MaxDelay, with the policy's
// seeded jitter applied. Deterministic in (policy, attempt).
func (p RetryPolicy) DelayAt(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		// Stateless per-(seed, attempt) draw so callers need not thread a
		// shared RNG through concurrent retry loops.
		rng := rand.New(rand.NewSource(p.Seed*0x9e3779b9 + int64(attempt)*0x85ebca6b + 1))
		factor := 1 + p.Jitter*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * factor)
		if d < 1 {
			d = 1
		}
	}
	return d
}

// Steps maps the policy's backoff shape onto a unitless multiplier:
// DelayAt(attempt) expressed in units of BaseDelay, at least 1. The fleet
// service reuses it to size rebuild cool-downs in epochs after repeated
// candidate rejections.
func (p RetryPolicy) Steps(attempt int) int {
	p = p.withDefaults()
	n := int(p.DelayAt(attempt) / p.BaseDelay)
	if n < 1 {
		n = 1
	}
	return n
}

// Retry runs f, retrying with capped exponential backoff while it fails
// with a transient fault (IsTransient). Any other error — or transient
// failure persisting through MaxAttempts — is returned as-is.
//
// Cancelling ctx aborts the backoff sleep promptly and stops retrying:
// the last attempt's error is returned (never swallowed by ctx.Err()),
// so callers still see the structured fault that was being retried. A
// nil ctx behaves like context.Background(). The Sleep test hook, when
// set, bypasses the cancellable timer but is still skipped when ctx is
// already cancelled.
func Retry(ctx context.Context, p RetryPolicy, f func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		err = f()
		if err == nil || !IsTransient(err) || attempt >= p.MaxAttempts {
			return err
		}
		if !sleepCtx(ctx, p.DelayAt(attempt), p.Sleep) {
			return err
		}
	}
}

// sleepCtx sleeps for d, returning early (false) when ctx is cancelled.
// A non-nil test hook replaces the timer but not the cancellation check.
func sleepCtx(ctx context.Context, d time.Duration, hook func(time.Duration)) bool {
	if ctx.Err() != nil {
		return false
	}
	if hook != nil {
		hook(d)
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
