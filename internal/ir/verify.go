package ir

import (
	"fmt"
	"strings"
)

// VerifyError is the typed error Verify returns: the list of structural
// violations found, one string per violation. Callers that wrap it must
// use %w so errors.As can distinguish a malformed module from an
// environmental failure.
type VerifyError struct {
	Violations []string
}

func (e *VerifyError) Error() string {
	return "ir: verify: " + strings.Join(e.Violations, "; ")
}

// VerifyOptions configures Verify.
type VerifyOptions struct {
	// AllowUnknownCallees skips checking that direct-call targets exist
	// in the module. Useful for partially built modules in tests.
	AllowUnknownCallees bool
}

// Verify checks module-level structural invariants:
//
//   - every function has an entry block and unique block names;
//   - every block ends in exactly one terminator, at the end;
//   - branch targets name existing blocks in the same function;
//   - register operands are within the function's register count;
//   - direct-call and compare targets name existing functions;
//   - site IDs are unique module-wide and within the allocator bound;
//   - switches have at least one target.
//
// It returns all violations joined into a single error, or nil.
func Verify(m *Module, opts VerifyOptions) error {
	var errs []string
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	// A call site's ID is shared between the OpResolve that loads the
	// function pointer and the OpICall that consumes it, so resolve
	// sites and call sites are tracked in separate namespaces.
	callSites := make(map[SiteID]string)
	resolveSites := make(map[SiteID]string)
	for _, f := range m.Funcs {
		verifyFunc(m, f, opts, callSites, resolveSites, report)
		if len(errs) > 64 {
			errs = append(errs, "... (truncated)")
			break
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return &VerifyError{Violations: errs}
}

func verifyFunc(m *Module, f *Function, opts VerifyOptions, callSites, resolveSites map[SiteID]string, report func(string, ...any)) {
	if len(f.Blocks) == 0 {
		report("%s: no blocks", f.Name)
		return
	}
	names := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if names[b.Name] {
			report("%s: duplicate block %q", f.Name, b.Name)
		}
		names[b.Name] = true
	}
	checkTarget := func(b *Block, target string) {
		if !names[target] {
			report("%s.%s: branch to unknown block %q", f.Name, b.Name, target)
		}
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			report("%s.%s: empty block", f.Name, b.Name)
			continue
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			last := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				if last {
					report("%s.%s: block does not end in a terminator (ends in %s)", f.Name, b.Name, in.Op)
				} else {
					report("%s.%s[%d]: terminator %s in mid-block", f.Name, b.Name, i, in.Op)
				}
			}
			switch in.Op {
			case OpBr:
				checkTarget(b, in.Then)
				checkTarget(b, in.Else)
				if !in.UseFlag && (in.Prob < 0 || in.Prob > 1) {
					report("%s.%s[%d]: branch probability %v out of range", f.Name, b.Name, i, in.Prob)
				}
			case OpJmp:
				checkTarget(b, in.Then)
			case OpSwitch:
				if len(in.Targets) == 0 {
					report("%s.%s[%d]: switch with no targets", f.Name, b.Name, i)
				}
				for _, t := range in.Targets {
					checkTarget(b, t)
				}
			case OpCall:
				if !opts.AllowUnknownCallees && m.Func(in.Callee) == nil {
					report("%s.%s[%d]: call to unknown function %q", f.Name, b.Name, i, in.Callee)
				}
			case OpCmpFn:
				if !opts.AllowUnknownCallees && m.Func(in.Callee) == nil {
					report("%s.%s[%d]: cmpfn against unknown function %q", f.Name, b.Name, i, in.Callee)
				}
			}
			switch in.Op {
			case OpResolve, OpCmpFn, OpICall, OpIJump:
				if in.Reg < 0 || int(in.Reg) >= f.NumRegs {
					report("%s.%s[%d]: register r%d out of range (function has %d)", f.Name, b.Name, i, in.Reg, f.NumRegs)
				}
			}
			if in.Op == OpCall || in.Op == OpICall || in.Op == OpResolve {
				if in.Site == 0 {
					report("%s.%s[%d]: %s without a site ID", f.Name, b.Name, i, in.Op)
				} else {
					sites := callSites
					if in.Op == OpResolve {
						sites = resolveSites
					}
					if prev, dup := sites[in.Site]; dup {
						report("%s.%s[%d]: site %d reused (first at %s)", f.Name, b.Name, i, in.Site, prev)
					}
					sites[in.Site] = fmt.Sprintf("%s.%s[%d]", f.Name, b.Name, i)
					if in.Site >= m.NextSiteID() {
						report("%s.%s[%d]: site %d beyond allocator bound %d", f.Name, b.Name, i, in.Site, m.NextSiteID())
					}
					if in.Orig == 0 {
						report("%s.%s[%d]: site %d without Orig", f.Name, b.Name, i, in.Site)
					}
				}
			}
		}
	}
}
