package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildSimpleModule(t *testing.T) *Module {
	t.Helper()
	m := NewModule()

	callee := NewFunction(m, "callee", 1)
	callee.ALU(3).Ret()

	caller := NewFunction(m, "caller", 0)
	caller.ALU(2)
	caller.Call("callee", 1)
	site, reg := caller.Resolve()
	caller.ICall(site, reg, 2)
	caller.Ret()

	if err := Verify(m, VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m
}

func TestBuilderProducesVerifiableModule(t *testing.T) {
	m := buildSimpleModule(t)
	if got := m.NumFuncs(); got != 2 {
		t.Fatalf("NumFuncs = %d, want 2", got)
	}
	if m.Func("caller") == nil || m.Func("callee") == nil {
		t.Fatal("functions not registered")
	}
	if m.Func("nope") != nil {
		t.Fatal("lookup of unknown function succeeded")
	}
}

func TestModuleStats(t *testing.T) {
	m := buildSimpleModule(t)
	s := CollectStats(m)
	if s.Funcs != 2 {
		t.Errorf("Funcs = %d, want 2", s.Funcs)
	}
	if s.DirectCalls != 1 {
		t.Errorf("DirectCalls = %d, want 1", s.DirectCalls)
	}
	if s.IndirectCalls != 1 {
		t.Errorf("IndirectCalls = %d, want 1", s.IndirectCalls)
	}
	if s.Returns != 2 {
		t.Errorf("Returns = %d, want 2", s.Returns)
	}
	wantInstrs := int64(3 + 1 + 2 + 1 + 1 + 1 + 1) // callee: 3 alu + ret; caller: 2 alu + call + resolve + icall + ret
	if s.Instrs != wantInstrs {
		t.Errorf("Instrs = %d, want %d", s.Instrs, wantInstrs)
	}
	if s.Bytes != wantInstrs*DefaultInstrSize {
		t.Errorf("Bytes = %d, want %d", s.Bytes, wantInstrs*DefaultInstrSize)
	}
}

func TestLayoutAssignsMonotonicAlignedAddresses(t *testing.T) {
	m := buildSimpleModule(t)
	size := m.Layout(0x1000, 16)
	if size <= 0 {
		t.Fatalf("Layout size = %d, want > 0", size)
	}
	var prevEnd int64 = 0x1000
	for _, f := range m.Funcs {
		if f.Addr%16 != 0 {
			t.Errorf("%s: address %#x not 16-aligned", f.Name, f.Addr)
		}
		if f.Addr < prevEnd {
			t.Errorf("%s: address %#x overlaps previous end %#x", f.Name, f.Addr, prevEnd)
		}
		prevEnd = f.Addr + f.ByteSize()
	}
}

func TestVerifyCatchesBranchToUnknownBlock(t *testing.T) {
	m := NewModule()
	b := NewFunction(m, "f", 0)
	b.BrProb(0.5, "missing", "entry")
	err := Verify(m, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "unknown block") {
		t.Fatalf("Verify = %v, want unknown-block error", err)
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	m := NewModule()
	b := NewFunction(m, "f", 0)
	b.Ret()
	b.ALU(1) // after a terminator
	err := Verify(m, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("Verify = %v, want mid-block terminator error", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule()
	NewFunction(m, "f", 0).ALU(2)
	err := Verify(m, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "does not end in a terminator") {
		t.Fatalf("Verify = %v, want missing-terminator error", err)
	}
}

func TestVerifyCatchesUnknownCallee(t *testing.T) {
	m := NewModule()
	b := NewFunction(m, "f", 0)
	b.Call("ghost", 0)
	b.Ret()
	err := Verify(m, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("Verify = %v, want unknown-function error", err)
	}
	if err := Verify(m, VerifyOptions{AllowUnknownCallees: true}); err != nil {
		t.Fatalf("Verify with AllowUnknownCallees: %v", err)
	}
}

func TestVerifyCatchesRegisterOutOfRange(t *testing.T) {
	m := NewModule()
	b := NewFunction(m, "f", 0)
	site := m.NewSite()
	b.ICall(site, 7, 0) // register 7 never allocated
	b.Ret()
	err := Verify(m, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Verify = %v, want register-range error", err)
	}
}

func TestVerifyCatchesDuplicateSiteIDs(t *testing.T) {
	m := NewModule()
	b := NewFunction(m, "g", 0)
	b.Ret()
	f := NewFunction(m, "f", 0)
	site := f.Call("g", 0)
	f.Func().Entry().Instrs = append(f.Func().Entry().Instrs,
		Instr{Op: OpCall, Callee: "g", Site: site, Orig: site})
	f.Ret()
	err := Verify(m, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "reused") {
		t.Fatalf("Verify = %v, want site-reuse error", err)
	}
}

func TestAddFuncRejectsDuplicate(t *testing.T) {
	m := NewModule()
	NewFunction(m, "f", 0).Ret()
	err := m.AddFunc(&Function{Name: "f"})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("AddFunc with a duplicate name = %v, want duplicate error", err)
	}
	if m.NumFuncs() != 1 {
		t.Fatalf("failed AddFunc mutated the module: %d funcs", m.NumFuncs())
	}
}

func TestMustAddFuncPanicsOnDuplicate(t *testing.T) {
	m := NewModule()
	NewFunction(m, "f", 0).Ret()
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddFunc with a duplicate name did not panic")
		}
	}()
	NewFunction(m, "f", 0)
}

func TestCloneBlocksIntoRemapsEverything(t *testing.T) {
	m := buildSimpleModule(t)
	caller := m.Func("caller")
	before := m.NextSiteID()
	cloned := m.CloneBlocksInto(caller, "il0.", 10)
	if len(cloned) != len(caller.Blocks) {
		t.Fatalf("cloned %d blocks, want %d", len(cloned), len(caller.Blocks))
	}
	for _, b := range cloned {
		if !strings.HasPrefix(b.Name, "il0.") {
			t.Errorf("block %q missing prefix", b.Name)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case OpResolve, OpICall:
				if in.Reg < 10 {
					t.Errorf("register r%d not shifted", in.Reg)
				}
				if in.Site < before {
					t.Errorf("site %d not refreshed (allocator was at %d)", in.Site, before)
				}
				if in.Orig >= before {
					t.Errorf("orig %d should preserve the original site", in.Orig)
				}
			case OpCall:
				if in.Site < before {
					t.Errorf("call site %d not refreshed", in.Site)
				}
			}
		}
	}
	// The original must be untouched.
	if err := Verify(m, VerifyOptions{}); err != nil {
		t.Fatalf("original module corrupted: %v", err)
	}
}

func TestModuleCloneIsDeep(t *testing.T) {
	m := buildSimpleModule(t)
	c := m.Clone()
	c.Func("caller").Entry().Instrs[0].Cycles = 99
	if m.Func("caller").Entry().Instrs[0].Cycles == 99 {
		t.Fatal("Clone shares instruction storage with the original")
	}
	if err := Verify(c, VerifyOptions{}); err != nil {
		t.Fatalf("clone does not verify: %v", err)
	}
	if c.NextSiteID() != m.NextSiteID() {
		t.Fatalf("clone allocator = %d, want %d", c.NextSiteID(), m.NextSiteID())
	}
}

func TestPrintRoundsTripKeyFacts(t *testing.T) {
	m := buildSimpleModule(t)
	out := Print(m.Func("caller"))
	for _, want := range []string{"func caller", "entry:", "call @callee args=1", "icall r0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestInstrDefaults(t *testing.T) {
	in := Instr{Op: OpALU}
	if in.ByteSize() != DefaultInstrSize {
		t.Errorf("ByteSize = %d, want %d", in.ByteSize(), DefaultInstrSize)
	}
	if in.Latency() != 1 {
		t.Errorf("Latency = %d, want 1", in.Latency())
	}
	in.Size, in.Cycles = 12, 4
	if in.ByteSize() != 12 || in.Latency() != 4 {
		t.Errorf("overrides not honored: size=%d cycles=%d", in.ByteSize(), in.Latency())
	}
}

func TestOpcodeClassification(t *testing.T) {
	terms := map[Opcode]bool{OpBr: true, OpJmp: true, OpSwitch: true, OpRet: true, OpIJump: true}
	for op := OpALU; op <= OpIJump; op++ {
		if got := op.IsTerminator(); got != terms[op] {
			t.Errorf("%s.IsTerminator() = %v, want %v", op, got, terms[op])
		}
	}
	if !OpCall.IsCall() || !OpICall.IsCall() || OpRet.IsCall() {
		t.Error("IsCall classification wrong")
	}
}

func TestSiteAllocatorNeverRepeats(t *testing.T) {
	m := NewModule()
	seen := make(map[SiteID]bool)
	for i := 0; i < 1000; i++ {
		s := m.NewSite()
		if seen[s] {
			t.Fatalf("site %d repeated", s)
		}
		seen[s] = true
	}
	m.ReserveSites(5000)
	if s := m.NewSite(); s != 5001 {
		t.Fatalf("after ReserveSites(5000), NewSite = %d, want 5001", s)
	}
}

// Property: layout size equals the sum of function sizes plus alignment
// padding, and is invariant under cloning.
func TestLayoutSizePropertyQuick(t *testing.T) {
	f := func(nf uint8, ni uint8) bool {
		n := int(nf%7) + 1
		m := NewModule()
		for i := 0; i < n; i++ {
			b := NewFunction(m, fnName(i), 0)
			b.ALU(int(ni%29) + 1).Ret()
		}
		total := m.Layout(0, 16)
		cloneTotal := m.Clone().Layout(0, 16)
		if total != cloneTotal {
			return false
		}
		var raw int64
		for _, fn := range m.Funcs {
			raw += fn.ByteSize()
		}
		// Padding is bounded by 16 bytes per function.
		return total >= raw && total <= raw+int64(16*n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fnName(i int) string { return "f" + string(rune('a'+i)) }
