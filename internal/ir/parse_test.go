package ir

import (
	"strings"
	"testing"
)

func TestParsePrintRoundTrip(t *testing.T) {
	m := NewModule()
	h := NewFunction(m, "handler", 1)
	h.SetAttrs(AttrInlineHint)
	h.ALU(2).Ret()

	f := NewFunction(m, "dispatch", 2)
	f.SetAttrs(AttrEntry)
	f.ALUCycles(3)
	f.Load(4)
	f.Store()
	f.Call("handler", 2)
	site, reg := f.Resolve()
	f.CmpFn(reg, "handler")
	f.BrFlag("direct", "indirect")
	f.NewBlock("direct")
	f.Call("handler", 1)
	f.Jmp("join")
	f.NewBlock("indirect")
	f.ICall(site, reg, 1)
	f.Jmp("join")
	f.NewBlock("join")
	f.Switch([]string{"a", "b"})
	f.NewBlock("a")
	f.BrProb(0.25, "a", "done")
	f.NewBlock("b")
	f.BrLoop(7, "b", "done")
	f.NewBlock("done")
	f.Ret()
	if err := Verify(m, VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	text := PrintModule(m)
	got, err := ParseString(text)
	if err != nil {
		t.Fatalf("Parse: %v\ninput:\n%s", err, text)
	}
	if err := Verify(got, VerifyOptions{}); err != nil {
		t.Fatalf("parsed module does not verify: %v", err)
	}
	round := PrintModule(got)
	if round != text {
		t.Fatalf("round trip not identity:\n--- printed ---\n%s\n--- reparsed ---\n%s", text, round)
	}
	// The site allocator must be advanced past the parsed sites.
	if got.NextSiteID() <= site {
		t.Errorf("allocator at %d, want past %d", got.NextSiteID(), site)
	}
}

func TestParseDefenseAnnotations(t *testing.T) {
	m := NewModule()
	f := NewFunction(m, "f", 0)
	site, reg := f.Resolve()
	f.ICall(site, reg, 0)
	f.Func().Entry().Instrs[1].Defense = DefFencedRetpoline
	f.Ret()
	f.Func().Entry().Instrs[2].Defense = DefFencedRetRet

	got, err := ParseString(PrintModule(m))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ins := got.Func("f").Entry().Instrs
	if ins[1].Defense != DefFencedRetpoline {
		t.Errorf("icall defense = %v", ins[1].Defense)
	}
	if ins[2].Defense != DefFencedRetRet {
		t.Errorf("ret defense = %v", ins[2].Defense)
	}
}

func TestParseHandWrittenFixture(t *testing.T) {
	src := `func leaf (params=0, regs=0) [noinline]
entry:
  alu
  ret

func main (params=0, regs=1) [entry]
entry:
  alu cycles=7
  call @leaf args=2 site=5
  resolve r0 site=9
  icall r0 args=1 site=9
  switch a, b [chain]
a:
  jmp done
b:
  br trip=3, b, done
done:
  ret
`
	m, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Verify(m, VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	main := m.Func("main")
	if !main.Attrs.Has(AttrEntry) {
		t.Error("entry attr lost")
	}
	if !m.Func("leaf").Attrs.Has(AttrNoInline) {
		t.Error("noinline attr lost")
	}
	ins := main.Entry().Instrs
	if ins[0].Cycles != 7 {
		t.Errorf("cycles = %d", ins[0].Cycles)
	}
	if ins[1].Site != 5 || ins[1].Args != 2 {
		t.Errorf("call parsed wrong: %+v", ins[1])
	}
	if sw := ins[4]; sw.Op != OpSwitch || sw.JumpTable {
		t.Errorf("switch parsed wrong: %+v", sw)
	}
	trip := main.Block("b").Instrs[0]
	if trip.Trip != 3 {
		t.Errorf("trip = %d, want 3", trip.Trip)
	}
	if m.NextSiteID() <= 9 {
		t.Errorf("allocator not reserved past parsed sites")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"instr outside block": "  alu\n",
		"block outside func":  "entry:\n",
		"bad opcode":          "func f (params=0, regs=0)\nentry:\n  frobnicate\n",
		"bad header":          "func f params=0\nentry:\n  ret\n",
		"bad br":              "func f (params=0, regs=0)\nentry:\n  br maybe, a, b\n",
		"bad attr":            "func f (params=0, regs=0) [sparkly]\nentry:\n  ret\n",
		"switch no targets":   "func f (params=0, regs=0)\nentry:\n  switch [chain]\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParsePrintRoundTripOnGeneratedKernelFunction(t *testing.T) {
	// Round-trip a function with every production the builder emits.
	m := buildSimpleModule(t)
	text := PrintModule(m)
	got, err := ParseString(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if PrintModule(got) != text {
		t.Fatal("round trip differs")
	}
	if !strings.Contains(text, "icall") {
		t.Fatal("fixture lost its icall")
	}
}
