package ir

import (
	"fmt"
	"strings"
)

// Print renders a function in a stable textual form, used by golden tests
// and debugging. The format is line-oriented:
//
//	func read (params=2, regs=1) [entry]
//	entry:
//	  alu
//	  resolve r0 site=3
//	  icall r0 args=2 site=3 [retpoline]
//	  ret [ret-retpoline]
func Print(f *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d, regs=%d)", f.Name, f.Params, f.NumRegs)
	var attrs []string
	if f.Attrs.Has(AttrNoInline) {
		attrs = append(attrs, "noinline")
	}
	if f.Attrs.Has(AttrOptNone) {
		attrs = append(attrs, "optnone")
	}
	if f.Attrs.Has(AttrInlineHint) {
		attrs = append(attrs, "inlinehint")
	}
	if f.Attrs.Has(AttrEntry) {
		attrs = append(attrs, "entry")
	}
	if f.Attrs.Has(AttrBoot) {
		attrs = append(attrs, "boot")
	}
	if len(attrs) > 0 {
		fmt.Fprintf(&sb, " [%s]", strings.Join(attrs, ","))
	}
	sb.WriteByte('\n')
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for i := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(formatInstr(&b.Instrs[i]))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// PrintModule renders every function in module order.
func PrintModule(m *Module) string {
	var sb strings.Builder
	for i, f := range m.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(Print(f))
	}
	return sb.String()
}

func formatInstr(in *Instr) string {
	var sb strings.Builder
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpALU, OpLoad, OpStore:
		if in.Cycles > 1 {
			fmt.Fprintf(&sb, " cycles=%d", in.Cycles)
		}
	case OpResolve:
		fmt.Fprintf(&sb, " r%d site=%d", in.Reg, in.Site)
	case OpCmpFn:
		fmt.Fprintf(&sb, " r%d, @%s", in.Reg, in.Callee)
	case OpBr:
		switch {
		case in.Trip > 0:
			fmt.Fprintf(&sb, " trip=%d, %s, %s", in.Trip, in.Then, in.Else)
		case in.UseFlag:
			fmt.Fprintf(&sb, " flag, %s, %s", in.Then, in.Else)
		default:
			fmt.Fprintf(&sb, " p=%.3f, %s, %s", in.Prob, in.Then, in.Else)
		}
	case OpJmp:
		fmt.Fprintf(&sb, " %s", in.Then)
	case OpSwitch:
		kind := "chain"
		if in.JumpTable {
			kind = "table"
		}
		fmt.Fprintf(&sb, " %s [%s]", strings.Join(in.Targets, ", "), kind)
	case OpCall:
		fmt.Fprintf(&sb, " @%s args=%d site=%d", in.Callee, in.Args, in.Site)
	case OpICall:
		fmt.Fprintf(&sb, " r%d args=%d site=%d", in.Reg, in.Args, in.Site)
	case OpIJump:
		fmt.Fprintf(&sb, " r%d", in.Reg)
	}
	if in.Orig != 0 && in.Orig != in.Site {
		fmt.Fprintf(&sb, " orig=%d", in.Orig)
	}
	if in.Defense != DefNone {
		fmt.Fprintf(&sb, " [%s]", in.Defense)
	}
	return sb.String()
}
