package ir

import (
	"errors"
	"strings"
	"testing"
)

// proveFixture builds one function per provability class and returns the
// site for each by name.
func proveFixture(t *testing.T) (*Module, map[string]SiteID) {
	t.Helper()
	m := NewModule()
	NewFunction(m, "callee", 0).ALU(1).Ret()
	sites := make(map[string]SiteID)

	add := func(name string, build func(b *Builder) (SiteID, int32)) {
		b := NewFunction(m, name, 0)
		site, reg := build(b)
		sites[name] = site
		_ = reg
	}

	add("adjacent", func(b *Builder) (SiteID, int32) {
		site, reg := b.Resolve()
		b.ICall(site, reg, 0).Ret()
		return site, reg
	})
	add("aluBetween", func(b *Builder) (SiteID, int32) {
		site, reg := b.Resolve()
		b.ALU(3).ICall(site, reg, 0).Ret()
		return site, reg
	})
	add("loadBetween", func(b *Builder) (SiteID, int32) {
		site, reg := b.Resolve()
		b.Load(4).ICall(site, reg, 0).Ret()
		return site, reg
	})
	add("storeBetween", func(b *Builder) (SiteID, int32) {
		site, reg := b.Resolve()
		b.Store().ICall(site, reg, 0).Ret()
		return site, reg
	})
	add("callBetween", func(b *Builder) (SiteID, int32) {
		site, reg := b.Resolve()
		b.Call("callee", 0)
		b.ICall(site, reg, 0).Ret()
		return site, reg
	})
	add("crossBlock", func(b *Builder) (SiteID, int32) {
		site, reg := b.Resolve()
		b.Jmp("fb")
		b.NewBlock("fb").ICall(site, reg, 0).Ret()
		return site, reg
	})
	add("asm", func(b *Builder) (SiteID, int32) {
		site, reg := b.Resolve()
		b.ICall(site, reg, 0)
		b.Func().Entry().Instrs[1].Asm = true
		b.Ret()
		return site, reg
	})
	add("overBudget", func(b *Builder) (SiteID, int32) {
		site, reg := b.Resolve()
		b.ICall(site, reg, 0)
		for i := 0; i < DefaultVerifierBudget; i++ {
			b.ALU(1)
		}
		b.Ret()
		return site, reg
	})

	if err := Verify(m, VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m, sites
}

func TestProvableSites(t *testing.T) {
	m, sites := proveFixture(t)
	prov := ProvableSites(m, 0)
	want := map[string]bool{
		"adjacent":   true,
		"aluBetween": true, // ALU work does not clobber the window
		// Every clobber class closes the window:
		"loadBetween":  false,
		"storeBetween": false,
		"callBetween":  false,
		"crossBlock":   false, // intra-block dataflow only (the ICP-fallback shape)
		"asm":          false,
		"overBudget":   false, // verifier budget exhausted
	}
	for name, w := range want {
		if prov[sites[name]] != w {
			t.Errorf("site %q provable = %v, want %v", name, prov[sites[name]], w)
		}
	}
}

func TestProvableSitesBudget(t *testing.T) {
	m, sites := proveFixture(t)
	// A huge explicit budget admits the over-budget function too.
	prov := ProvableSites(m, 1<<20)
	if !prov[sites["overBudget"]] {
		t.Error("explicit large budget still rejects the big function")
	}
	// A tiny budget rejects everything (every fixture has >1 instr).
	if got := ProvableSites(m, 1); len(got) != 0 {
		t.Errorf("budget 1 proved %d sites, want 0", len(got))
	}
	// Determinism: a pure function of the module.
	a, b := ProvableSites(m, 0), ProvableSites(m, 0)
	if len(a) != len(b) {
		t.Fatalf("ProvableSites not deterministic: %d vs %d", len(a), len(b))
	}
	for s := range a {
		if !b[s] {
			t.Errorf("site %d in first run only", s)
		}
	}
}

func TestVerifyErrorTyped(t *testing.T) {
	m := NewModule()
	f := NewFunction(m, "f", 0)
	f.Jmp("nowhere") // branch to a block that does not exist
	err := Verify(m, VerifyOptions{})
	if err == nil {
		t.Fatal("malformed module verified")
	}
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("Verify error %T is not *VerifyError", err)
	}
	if len(ve.Violations) == 0 {
		t.Fatal("VerifyError carries no violations")
	}
	if !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("error %q does not name the bad target", err)
	}
}
