// Package ir defines the intermediate representation that the PIBE
// pipeline operates on: modules of functions made of basic blocks of
// instructions over a small register machine.
//
// The IR is deliberately lower-level than a source AST and higher-level
// than machine code: it has explicit direct calls, indirect calls through
// registers, returns, conditional branches and multiway switches, which is
// exactly the vocabulary the paper's transformations (inlining, indirect
// call promotion, jump-table lowering, hardening) need. Every instruction
// carries a byte size so that code layout, image growth and instruction
// cache behaviour are measurable.
package ir

import (
	"fmt"
	"sort"
)

// Opcode identifies the operation an Instr performs.
type Opcode uint8

// The instruction set. OpALU stands in for any straight-line computation
// (arithmetic, logic, address generation); its Cycles field carries the
// latency. Control flow and memory operations are explicit because the
// hardening passes and the CPU model treat them specially.
const (
	OpInvalid Opcode = iota
	OpALU            // generic computation
	OpLoad           // memory load
	OpStore          // memory store
	OpResolve        // load a function pointer for call site Site into Reg
	OpCmpFn          // compare Reg against function FnConst; sets the flag
	OpBr             // conditional branch to Then/Else (flag- or probability-driven)
	OpJmp            // unconditional branch to Then
	OpSwitch         // multiway branch over Targets (lowers to a jump table or a compare chain)
	OpCall           // direct call to Callee
	OpICall          // indirect call through Reg
	OpRet            // return to caller
	OpIJump          // indirect jump (lowered jump table dispatch)
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpALU:     "alu",
	OpLoad:    "load",
	OpStore:   "store",
	OpResolve: "resolve",
	OpCmpFn:   "cmpfn",
	OpBr:      "br",
	OpJmp:     "jmp",
	OpSwitch:  "switch",
	OpCall:    "call",
	OpICall:   "icall",
	OpRet:     "ret",
	OpIJump:   "ijump",
}

func (op Opcode) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTerminator reports whether the opcode ends a basic block.
func (op Opcode) IsTerminator() bool {
	switch op {
	case OpBr, OpJmp, OpSwitch, OpRet, OpIJump:
		return true
	}
	return false
}

// IsCall reports whether the opcode transfers control to another function
// and pushes a return address.
func (op Opcode) IsCall() bool { return op == OpCall || op == OpICall }

// Defense identifies the hardening applied to an individual indirect
// branch (or to the call/branch form a site was lowered to). The zero
// value means the site is unprotected.
type Defense uint8

// Defenses attachable to instructions. The cycle costs of each are owned
// by the CPU model; the IR only records which thunk a site was rewritten
// to use.
const (
	DefNone            Defense = iota
	DefRetpoline               // Spectre V2 retpoline thunk (forward edge)
	DefLVI                     // LVI-CFI lfence hardening
	DefFencedRetpoline         // combined LVI-protected retpoline (Listing 7)
	DefRetRetpoline            // return retpoline (backward edge)
	DefLVIRet                  // LVI-CFI return hardening (Listing 6)
	DefFencedRetRet            // combined return retpoline + LVI fence

	// Non-transient defenses, present in the paper's Table 1 to justify
	// its focus on the expensive transient ones: forward-edge CFI type
	// checks and backward-edge stack integrity. They do not inhibit
	// speculation.
	DefLLVMCFI        // LLVM-CFI forward-edge target-set check
	DefStackProtector // stack canary verified before return
	DefSafeStack      // return address on a separate safe stack

	// Post-2021 hardware-assisted defenses with cost shapes the paper's
	// Table 1 could not include: FineIBT's landing-pad SID compare lands
	// at the callee, PAC-CFI's sign/auth pair lands on the call and
	// return sides, and VeriFence fences only the sites a verifier-style
	// analysis (ProvableSites) cannot prove safe.
	DefFineIBT   // coarse IBT landing pad + per-site SID compare (forward edge)
	DefPAC       // PAC-CFI pointer signing on the call side (forward edge)
	DefPACRet    // PAC-CFI return-address authentication (backward edge)
	DefVeriFence // lfence at a verifier-unproved indirect branch
)

var defNames = [...]string{
	DefNone:            "none",
	DefRetpoline:       "retpoline",
	DefLVI:             "lvi-cfi",
	DefFencedRetpoline: "fenced-retpoline",
	DefRetRetpoline:    "ret-retpoline",
	DefLVIRet:          "lvi-ret",
	DefFencedRetRet:    "fenced-ret-retpoline",
	DefLLVMCFI:         "llvm-cfi",
	DefStackProtector:  "stackprotector",
	DefSafeStack:       "safestack",
	DefFineIBT:         "fineibt",
	DefPAC:             "pac-cfi",
	DefPACRet:          "pac-ret",
	DefVeriFence:       "verifence",
}

func (d Defense) String() string {
	if int(d) < len(defNames) {
		return defNames[d]
	}
	return fmt.Sprintf("defense(%d)", uint8(d))
}

// DefaultInstrSize is the byte size assumed for an instruction unless the
// producer overrides it. Five bytes matches the approximation LLVM's
// InlineCost analysis uses for the average x86 instruction.
const DefaultInstrSize = 5

// Instr is a single IR instruction. The struct is a tagged union: which
// fields are meaningful depends on Op. Instructions are stored by value
// inside blocks so that cloning a function is a deep copy by construction.
type Instr struct {
	Op Opcode

	// Size is the encoded size in bytes; zero means DefaultInstrSize.
	Size int32

	// Cycles is the base latency of OpALU/OpLoad/OpStore; zero means 1.
	Cycles int32

	// Reg is the virtual register operand of OpResolve (destination),
	// OpCmpFn, OpICall and OpIJump (source).
	Reg int32

	// Args is the argument count of OpCall/OpICall; it feeds both the
	// InlineCost model (5 + 5*Args) and the timing model.
	Args int32

	// Site uniquely identifies a call site (OpCall, OpICall) or a
	// function-pointer load (OpResolve) within a module. Sites created
	// by cloning receive fresh IDs.
	Site SiteID

	// Orig is the site this one was cloned from; for sites that were
	// never cloned it equals Site. Profile value distributions and
	// workload target selection are keyed by Orig so that inlined
	// copies of an indirect call keep behaving like the original.
	Orig SiteID

	// Defense records the hardening thunk the site was rewritten to use.
	Defense Defense

	// Callee is the target of OpCall and the comparison constant of
	// OpCmpFn.
	Callee string

	// Then and Else name successor blocks of OpBr; Then also names the
	// successor of OpJmp.
	Then, Else string

	// Targets names the case blocks of OpSwitch.
	Targets []string

	// Prob is the probability OpBr takes Then when UseFlag is false.
	Prob float32

	// UseFlag makes OpBr consume the flag set by the latest OpCmpFn
	// instead of sampling Prob.
	UseFlag bool

	// Trip, when positive, makes OpBr a counted loop back-edge: within
	// one activation of the function the branch takes Then on its first
	// Trip-1 executions and Else on the Trip-th, then resets. This
	// models kernels iterating over fixed-size structures (fd tables,
	// VMA lists) deterministically.
	Trip int32

	// JumpTable marks an OpSwitch that is lowered through an indirect
	// jump table (one OpIJump-equivalent dispatch) rather than a
	// compare chain. Jump tables are what the hardening pass disables.
	JumpTable bool

	// Asm marks an instruction that originates from an inline-assembly
	// macro (e.g. the kernel's para-virtualization hypercalls). The
	// compiler cannot rewrite such sites, so hardening and optimization
	// passes must leave them alone — they are the residual vulnerable
	// branches of Table 11.
	Asm bool
}

// SiteID uniquely identifies a call site or resolve site within a module.
type SiteID int32

// ByteSize returns the encoded size of the instruction in bytes.
func (in *Instr) ByteSize() int32 {
	if in.Size > 0 {
		return in.Size
	}
	return DefaultInstrSize
}

// Latency returns the base latency of the instruction in cycles, before
// any microarchitectural effects the CPU model layers on top.
func (in *Instr) Latency() int32 {
	if in.Cycles > 0 {
		return in.Cycles
	}
	return 1
}

// Clone returns a deep copy of the instruction.
func (in Instr) Clone() Instr {
	if in.Targets != nil {
		in.Targets = append([]string(nil), in.Targets...)
	}
	return in
}

// Block is a basic block: a named, straight-line run of instructions
// ending in a terminator.
type Block struct {
	Name   string
	Instrs []Instr
}

// Terminator returns the block's final instruction, or nil if the block
// is empty.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// ByteSize returns the total encoded size of the block.
func (b *Block) ByteSize() int64 {
	var n int64
	for i := range b.Instrs {
		n += int64(b.Instrs[i].ByteSize())
	}
	return n
}

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	nb := &Block{Name: b.Name, Instrs: make([]Instr, len(b.Instrs))}
	for i := range b.Instrs {
		nb.Instrs[i] = b.Instrs[i].Clone()
	}
	return nb
}

// Attr is a bit set of function attributes that constrain optimization,
// mirroring the LLVM attributes the paper's Table 9 cites as inlining
// inhibitors.
type Attr uint8

// Function attributes.
const (
	AttrNoInline   Attr = 1 << iota // callee must not be inlined
	AttrOptNone                     // function must not be transformed at all
	AttrInlineHint                  // producer suggests inlining
	AttrEntry                       // kernel entry point (syscall handler)
	AttrBoot                        // only runs during boot; irrelevant to transient attacks
)

// Has reports whether all bits of q are set.
func (a Attr) Has(q Attr) bool { return a&q == q }

// Function is a single IR function. Blocks[0] is the entry block.
type Function struct {
	Name    string
	Params  int
	Attrs   Attr
	Blocks  []*Block
	NumRegs int

	// Subsystem is a free-form label used by the synthetic kernel
	// generator ("vfs", "net", ...) and reporting; it has no semantic
	// effect on transformations.
	Subsystem string

	// Addr is the function's base address assigned by Module.Layout.
	Addr int64

	blockIdx map[string]int // lazily built name -> index
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Block returns the named block, or nil.
func (f *Function) Block(name string) *Block {
	i := f.BlockIndex(name)
	if i < 0 {
		return nil
	}
	return f.Blocks[i]
}

// BlockIndex returns the index of the named block, or -1.
func (f *Function) BlockIndex(name string) int {
	if f.blockIdx == nil || len(f.blockIdx) != len(f.Blocks) {
		f.reindex()
	}
	if i, ok := f.blockIdx[name]; ok && i < len(f.Blocks) && f.Blocks[i].Name == name {
		return i
	}
	// Index may be stale after in-place edits; rebuild once.
	f.reindex()
	if i, ok := f.blockIdx[name]; ok {
		return i
	}
	return -1
}

func (f *Function) reindex() {
	f.blockIdx = make(map[string]int, len(f.Blocks))
	for i, b := range f.Blocks {
		f.blockIdx[b.Name] = i
	}
}

// InvalidateIndex drops the cached block-name index after structural edits.
func (f *Function) InvalidateIndex() { f.blockIdx = nil }

// ByteSize returns the total encoded size of the function.
func (f *Function) ByteSize() int64 {
	var n int64
	for _, b := range f.Blocks {
		n += b.ByteSize()
	}
	return n
}

// Clone returns a deep copy of the function. Site IDs are preserved;
// callers that splice cloned bodies into other functions must refresh
// site IDs through Module.CloneBlocksInto.
func (f *Function) Clone() *Function {
	nf := &Function{
		Name:      f.Name,
		Params:    f.Params,
		Attrs:     f.Attrs,
		NumRegs:   f.NumRegs,
		Subsystem: f.Subsystem,
		Addr:      f.Addr,
		Blocks:    make([]*Block, len(f.Blocks)),
	}
	for i, b := range f.Blocks {
		nf.Blocks[i] = b.Clone()
	}
	return nf
}

// ForEachInstr calls fn for every instruction in the function, in layout
// order, passing the containing block and the instruction index. The
// callback may mutate the instruction in place but must not add or remove
// instructions.
func (f *Function) ForEachInstr(fn func(b *Block, i int, in *Instr)) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			fn(b, i, &b.Instrs[i])
		}
	}
}

// Module is a linked program: an ordered collection of functions plus the
// site-ID allocator. Order is deterministic and meaningful (layout order).
type Module struct {
	Funcs []*Function

	funcIdx  map[string]int
	nextSite SiteID
}

// NewModule returns an empty module.
func NewModule() *Module {
	return &Module{funcIdx: make(map[string]int)}
}

// AddFunc appends f to the module. A function with the same name already
// present is a producer bug; it is reported as an error rather than a
// panic so module-building pipelines degrade instead of crashing.
func (m *Module) AddFunc(f *Function) error {
	if m.funcIdx == nil {
		m.funcIdx = make(map[string]int)
	}
	if _, dup := m.funcIdx[f.Name]; dup {
		return fmt.Errorf("ir: duplicate function %q", f.Name)
	}
	m.funcIdx[f.Name] = len(m.Funcs)
	m.Funcs = append(m.Funcs, f)
	return nil
}

// MustAddFunc is AddFunc for producers that have already established the
// name is fresh (clones of valid modules, generated unique names); it
// panics on a duplicate.
func (m *Module) MustAddFunc(f *Function) {
	if err := m.AddFunc(f); err != nil {
		panic(err.Error())
	}
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Function {
	if i, ok := m.funcIdx[name]; ok {
		return m.Funcs[i]
	}
	return nil
}

// NumFuncs returns the number of functions in the module.
func (m *Module) NumFuncs() int { return len(m.Funcs) }

// NewSite allocates a fresh site ID.
func (m *Module) NewSite() SiteID {
	m.nextSite++
	return m.nextSite
}

// NextSiteID reports the next site ID that NewSite would return, which is
// also an upper bound (exclusive) on all allocated IDs plus one.
func (m *Module) NextSiteID() SiteID { return m.nextSite + 1 }

// ReserveSites bumps the allocator so the next site ID is at least n+1.
// Producers that assign site IDs themselves call this to keep NewSite from
// reusing them.
func (m *Module) ReserveSites(n SiteID) {
	if n > m.nextSite {
		m.nextSite = n
	}
}

// ByteSize returns the total encoded size of all functions.
func (m *Module) ByteSize() int64 {
	var n int64
	for _, f := range m.Funcs {
		n += f.ByteSize()
	}
	return n
}

// Layout assigns a base address to every function and returns the total
// image size. Functions are laid out in module order, aligned to align
// bytes (minimum 16).
func (m *Module) Layout(base int64, align int64) int64 {
	if align < 16 {
		align = 16
	}
	addr := base
	for _, f := range m.Funcs {
		addr = (addr + align - 1) / align * align
		f.Addr = addr
		addr += f.ByteSize()
	}
	return addr - base
}

// Clone returns a deep copy of the module, preserving function order and
// the site-ID allocator state.
func (m *Module) Clone() *Module {
	nm := NewModule()
	nm.nextSite = m.nextSite
	for _, f := range m.Funcs {
		nm.MustAddFunc(f.Clone())
	}
	return nm
}

// CloneBlocksInto deep-copies the body of src, renaming every block with
// the given prefix and allocating fresh site IDs (preserving Orig). The
// register operands are shifted by regBase. Returns the cloned blocks.
//
// This is the primitive both the inliner and test fixtures build on.
func (m *Module) CloneBlocksInto(src *Function, prefix string, regBase int32) []*Block {
	blocks := make([]*Block, len(src.Blocks))
	for i, b := range src.Blocks {
		nb := b.Clone()
		nb.Name = prefix + b.Name
		for j := range nb.Instrs {
			in := &nb.Instrs[j]
			switch in.Op {
			case OpResolve, OpCmpFn, OpICall, OpIJump:
				in.Reg += regBase
			}
			if in.Site != 0 {
				orig := in.Orig
				if orig == 0 {
					orig = in.Site
				}
				in.Site = m.NewSite()
				in.Orig = orig
			}
			if in.Then != "" {
				in.Then = prefix + in.Then
			}
			if in.Else != "" {
				in.Else = prefix + in.Else
			}
			for k := range in.Targets {
				in.Targets[k] = prefix + in.Targets[k]
			}
		}
		blocks[i] = nb
	}
	return blocks
}

// Stats summarizes the static composition of a module. It backs the size
// and branch-census tables of the evaluation (Tables 10–12).
type Stats struct {
	Funcs         int
	Blocks        int
	Instrs        int64
	Bytes         int64
	DirectCalls   int // OpCall sites
	IndirectCalls int // OpICall sites
	Returns       int // OpRet sites
	IndirectJumps int // OpIJump sites plus jump-table switches
	Switches      int // OpSwitch sites
	JumpTables    int // OpSwitch sites lowered as jump tables
	DefenseCount  map[Defense]int
}

// CollectStats walks the module and tallies its static composition.
func CollectStats(m *Module) Stats {
	s := Stats{DefenseCount: make(map[Defense]int)}
	s.Funcs = len(m.Funcs)
	for _, f := range m.Funcs {
		s.Blocks += len(f.Blocks)
		for _, b := range f.Blocks {
			s.Instrs += int64(len(b.Instrs))
			for i := range b.Instrs {
				in := &b.Instrs[i]
				s.Bytes += int64(in.ByteSize())
				switch in.Op {
				case OpCall:
					s.DirectCalls++
				case OpICall:
					s.IndirectCalls++
					s.DefenseCount[in.Defense]++
				case OpRet:
					s.Returns++
					s.DefenseCount[in.Defense]++
				case OpIJump:
					s.IndirectJumps++
					s.DefenseCount[in.Defense]++
				case OpSwitch:
					s.Switches++
					if in.JumpTable {
						s.JumpTables++
						s.IndirectJumps++
					}
				}
			}
		}
	}
	return s
}

// SortedFuncNames returns the module's function names in lexical order.
// Reporting code uses it for deterministic output.
func (m *Module) SortedFuncNames() []string {
	names := make([]string, 0, len(m.Funcs))
	for _, f := range m.Funcs {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}
