package ir

import "fmt"

// Builder constructs a Function incrementally. It is the convenience
// layer used by the synthetic kernel generator and by tests; transforms
// edit IR directly.
//
// A Builder always has a current block; instruction-emitting methods
// append to it. Emitting a terminator does not switch blocks — call
// SetBlock (or NewBlock) to continue elsewhere.
type Builder struct {
	mod *Module
	fn  *Function
	cur *Block
}

// NewFunction starts building a function with the given name and
// parameter count, creating its entry block. The function is registered
// in the module immediately so that calls to it can be emitted before it
// is finished. Like the other Builder conveniences it panics on producer
// misuse (here: a duplicate name).
func NewFunction(m *Module, name string, params int) *Builder {
	f := &Function{Name: name, Params: params}
	entry := &Block{Name: "entry"}
	f.Blocks = append(f.Blocks, entry)
	m.MustAddFunc(f)
	return &Builder{mod: m, fn: f, cur: entry}
}

// Func returns the function under construction.
func (b *Builder) Func() *Function { return b.fn }

// Module returns the module the function belongs to.
func (b *Builder) Module() *Module { return b.mod }

// SetAttrs adds attribute bits to the function.
func (b *Builder) SetAttrs(a Attr) *Builder {
	b.fn.Attrs |= a
	return b
}

// SetSubsystem labels the function with a subsystem name.
func (b *Builder) SetSubsystem(s string) *Builder {
	b.fn.Subsystem = s
	return b
}

// NewBlock appends a new block with the given name and makes it current.
func (b *Builder) NewBlock(name string) *Builder {
	blk := &Block{Name: name}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	b.fn.InvalidateIndex()
	b.cur = blk
	return b
}

// SetBlock makes the named existing block current. It panics if the block
// does not exist; builders are producer code where that is always a bug.
func (b *Builder) SetBlock(name string) *Builder {
	blk := b.fn.Block(name)
	if blk == nil {
		panic(fmt.Sprintf("ir: builder: no block %q in %q", name, b.fn.Name))
	}
	b.cur = blk
	return b
}

// CurrentBlock returns the name of the block being appended to.
func (b *Builder) CurrentBlock() string { return b.cur.Name }

func (b *Builder) emit(in Instr) *Builder {
	b.cur.Instrs = append(b.cur.Instrs, in)
	return b
}

// Reg allocates a fresh virtual register.
func (b *Builder) Reg() int32 {
	r := int32(b.fn.NumRegs)
	b.fn.NumRegs++
	return r
}

// ALU emits n generic computation instructions of unit latency.
func (b *Builder) ALU(n int) *Builder {
	for i := 0; i < n; i++ {
		b.emit(Instr{Op: OpALU})
	}
	return b
}

// ALUCycles emits one computation instruction with the given latency.
func (b *Builder) ALUCycles(cycles int32) *Builder {
	return b.emit(Instr{Op: OpALU, Cycles: cycles})
}

// Load emits a memory load with the given latency (zero means 1).
func (b *Builder) Load(cycles int32) *Builder {
	return b.emit(Instr{Op: OpLoad, Cycles: cycles})
}

// Store emits a memory store.
func (b *Builder) Store() *Builder {
	return b.emit(Instr{Op: OpStore})
}

// Call emits a direct call with a fresh site ID and returns that ID.
func (b *Builder) Call(callee string, args int) SiteID {
	site := b.mod.NewSite()
	b.emit(Instr{Op: OpCall, Callee: callee, Args: int32(args), Site: site, Orig: site})
	return site
}

// Resolve emits a function-pointer load for a fresh site into a fresh
// register, returning both. The matching ICall must use the same register
// and the same site so that profiling attributes targets correctly.
func (b *Builder) Resolve() (SiteID, int32) {
	site := b.mod.NewSite()
	reg := b.Reg()
	b.emit(Instr{Op: OpResolve, Site: site, Orig: site, Reg: reg, Cycles: 1})
	return site, reg
}

// ICall emits an indirect call through reg for the given site.
func (b *Builder) ICall(site SiteID, reg int32, args int) *Builder {
	return b.emit(Instr{Op: OpICall, Site: site, Orig: site, Reg: reg, Args: int32(args)})
}

// IndirectCall is the common Resolve+ICall pair; it returns the site ID.
func (b *Builder) IndirectCall(args int) SiteID {
	site, reg := b.Resolve()
	b.ICall(site, reg, args)
	return site
}

// CmpFn emits a comparison of reg against the address of callee.
func (b *Builder) CmpFn(reg int32, callee string) *Builder {
	return b.emit(Instr{Op: OpCmpFn, Reg: reg, Callee: callee})
}

// BrFlag emits a conditional branch on the current flag.
func (b *Builder) BrFlag(then, els string) *Builder {
	return b.emit(Instr{Op: OpBr, Then: then, Else: els, UseFlag: true})
}

// BrProb emits a conditional branch taken with probability p.
func (b *Builder) BrProb(p float32, then, els string) *Builder {
	return b.emit(Instr{Op: OpBr, Then: then, Else: els, Prob: p})
}

// BrLoop emits a counted loop back-edge: taken to then on the first
// trip-1 executions per function activation, then to els.
func (b *Builder) BrLoop(trip int32, then, els string) *Builder {
	return b.emit(Instr{Op: OpBr, Then: then, Else: els, Trip: trip})
}

// Jmp emits an unconditional branch.
func (b *Builder) Jmp(to string) *Builder {
	return b.emit(Instr{Op: OpJmp, Then: to})
}

// Switch emits a multiway branch over the target blocks. Producers emit
// switches as jump tables; the hardening pass may clear JumpTable to lower
// them to compare chains.
func (b *Builder) Switch(targets []string) *Builder {
	return b.emit(Instr{Op: OpSwitch, Targets: append([]string(nil), targets...), JumpTable: true})
}

// Ret emits a return.
func (b *Builder) Ret() *Builder {
	return b.emit(Instr{Op: OpRet})
}
