package ir

// This file implements the provable-site analysis that backs the
// VeriFence-style hardening pass: instead of fencing every indirect
// branch, a verifier proves as many sites safe as it can afford to, and
// only the remainder pay for an lfence. The analysis reuses the same
// structural vocabulary as Verify — it walks blocks, follows register
// dataflow, and gives up exactly where a real verifier gives up.
//
// A forward-edge site is provable when the verifier can close the
// dataflow window between the function-pointer load and the branch that
// consumes it:
//
//   - the OpResolve defining the icall's register is in the same block,
//     before the icall (intra-block dataflow only — cross-block value
//     tracking is where verifier state explosion starts, and it is
//     exactly what ICP's promotion chains introduce: the fallback icall
//     of a promoted site lives in a synthesized block away from its
//     resolve, so promoted fallbacks are unprovable);
//   - no memory operation or call separates the resolve from the icall
//     (a load/store could alias the pointer slot, and a call clobbers
//     everything the verifier reasoned about);
//   - the site does not originate from inline assembly; and
//   - the containing function fits in the verifier's state-exploration
//     budget. Like the eBPF verifier's instruction-exploration cap,
//     functions past the budget are rejected wholesale — which is why
//     aggressive inlining, by growing hot callers, erodes VeriFence's
//     discount even as it removes branches.
//
// Jump-table dispatch is never provable: its index is data-driven by
// construction.

// DefaultVerifierBudget is the verifier's per-function state-exploration
// budget in static instructions. Functions larger than this exhaust the
// verifier and every indirect call inside them is unprovable. The value
// is calibrated against the synthetic kernel so that both classes are
// well-populated: hand-sized helpers and syscall bodies verify, while
// inline-bloated handlers and the largest cold functions do not.
const DefaultVerifierBudget = 160

// ProvableSites returns the set of OpICall sites (keyed by Site, not
// Orig — the analysis runs on the final module, after cloning) that a
// VeriFence-style verifier proves safe under the given per-function
// instruction budget. budget <= 0 selects DefaultVerifierBudget. The
// result is a pure function of the module, so a hardening pass and a
// later invariant check recompute identical sets.
func ProvableSites(m *Module, budget int) map[SiteID]bool {
	if budget <= 0 {
		budget = DefaultVerifierBudget
	}
	prov := make(map[SiteID]bool)
	for _, f := range m.Funcs {
		var instrs int
		for _, b := range f.Blocks {
			instrs += len(b.Instrs)
		}
		if instrs > budget {
			continue // verifier budget exhausted: nothing in f is provable
		}
		nregs := f.NumRegs
		if nregs == 0 {
			continue
		}
		clean := make([]bool, nregs)
		for _, b := range f.Blocks {
			for i := range clean {
				clean[i] = false
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case OpResolve:
					if int(in.Reg) < nregs {
						clean[in.Reg] = true
					}
				case OpICall:
					if !in.Asm && int(in.Reg) < nregs && clean[in.Reg] {
						prov[in.Site] = true
					}
					// The call itself clobbers every open window.
					for j := range clean {
						clean[j] = false
					}
				case OpCall, OpLoad, OpStore:
					for j := range clean {
						clean[j] = false
					}
				}
			}
		}
	}
	return prov
}
