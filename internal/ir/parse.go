package ir

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads the textual form produced by Print/PrintModule back into a
// module. Parse(Print(m)) is the identity on every field the printer
// emits; fields the printer omits for brevity (unit latencies, default
// sizes) come back as their defaults. It exists for golden tests, for
// the `pibe dump` tooling, and for writing compact IR fixtures by hand.
func Parse(r io.Reader) (*Module, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	m := NewModule()
	var (
		fn      *Function
		blk     *Block
		line    int
		maxSite SiteID
	)
	finishFunc := func() {
		fn, blk = nil, nil
	}
	for sc.Scan() {
		line++
		text := sc.Text()
		trimmed := strings.TrimSpace(text)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			finishFunc()
			continue
		}
		switch {
		case strings.HasPrefix(trimmed, "func "):
			f, err := parseFuncHeader(trimmed)
			if err != nil {
				return nil, fmt.Errorf("ir: line %d: %v", line, err)
			}
			if err := m.AddFunc(f); err != nil {
				return nil, fmt.Errorf("ir: line %d: %v", line, err)
			}
			fn, blk = f, nil
		case strings.HasSuffix(trimmed, ":") && !strings.HasPrefix(text, " "):
			if fn == nil {
				return nil, fmt.Errorf("ir: line %d: block outside function", line)
			}
			blk = &Block{Name: strings.TrimSuffix(trimmed, ":")}
			fn.Blocks = append(fn.Blocks, blk)
			fn.InvalidateIndex()
		default:
			if blk == nil {
				return nil, fmt.Errorf("ir: line %d: instruction outside block", line)
			}
			in, err := parseInstr(trimmed)
			if err != nil {
				return nil, fmt.Errorf("ir: line %d: %v", line, err)
			}
			if in.Site > maxSite {
				maxSite = in.Site
			}
			blk.Instrs = append(blk.Instrs, in)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	m.ReserveSites(maxSite)
	return m, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Module, error) { return Parse(strings.NewReader(s)) }

func parseFuncHeader(s string) (*Function, error) {
	// func NAME (params=N, regs=M) [attr,attr]
	rest := strings.TrimPrefix(s, "func ")
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return nil, fmt.Errorf("malformed function header %q", s)
	}
	name := strings.TrimSpace(rest[:open])
	close := strings.IndexByte(rest, ')')
	if close < open {
		return nil, fmt.Errorf("malformed function header %q", s)
	}
	f := &Function{Name: name}
	for _, kv := range strings.Split(rest[open+1:close], ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("malformed attribute %q", kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, err
		}
		switch k {
		case "params":
			f.Params = n
		case "regs":
			f.NumRegs = n
		default:
			return nil, fmt.Errorf("unknown header field %q", k)
		}
	}
	if tail := strings.TrimSpace(rest[close+1:]); strings.HasPrefix(tail, "[") && strings.HasSuffix(tail, "]") {
		for _, a := range strings.Split(tail[1:len(tail)-1], ",") {
			switch a {
			case "noinline":
				f.Attrs |= AttrNoInline
			case "optnone":
				f.Attrs |= AttrOptNone
			case "inlinehint":
				f.Attrs |= AttrInlineHint
			case "entry":
				f.Attrs |= AttrEntry
			case "boot":
				f.Attrs |= AttrBoot
			default:
				return nil, fmt.Errorf("unknown attribute %q", a)
			}
		}
	}
	return f, nil
}

func parseInstr(s string) (Instr, error) {
	var in Instr
	// Trailing [defense] annotation.
	if i := strings.LastIndexByte(s, '['); i >= 0 && strings.HasSuffix(s, "]") {
		tag := s[i+1 : len(s)-1]
		if d, ok := defenseByName(tag); ok {
			in.Defense = d
			s = strings.TrimSpace(s[:i])
		}
	}
	op, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	kv := func(key string) (string, bool) {
		for _, f := range fields {
			if v, ok := strings.CutPrefix(f, key+"="); ok {
				return v, true
			}
		}
		return "", false
	}
	atoi32 := func(v string) (int32, error) {
		n, err := strconv.ParseInt(v, 10, 32)
		return int32(n), err
	}
	if v, ok := kv("cycles"); ok {
		n, err := atoi32(v)
		if err != nil {
			return in, err
		}
		in.Cycles = n
	}
	if v, ok := kv("site"); ok {
		n, err := atoi32(v)
		if err != nil {
			return in, err
		}
		in.Site = SiteID(n)
		in.Orig = in.Site
	}
	if v, ok := kv("orig"); ok {
		n, err := atoi32(v)
		if err != nil {
			return in, err
		}
		in.Orig = SiteID(n)
	}
	if v, ok := kv("args"); ok {
		n, err := atoi32(v)
		if err != nil {
			return in, err
		}
		in.Args = n
	}
	reg := func(tok string) (int32, error) {
		if !strings.HasPrefix(tok, "r") {
			return 0, fmt.Errorf("expected register, got %q", tok)
		}
		return atoi32(strings.TrimSuffix(strings.TrimPrefix(tok, "r"), ","))
	}
	switch op {
	case "alu":
		in.Op = OpALU
	case "load":
		in.Op = OpLoad
	case "store":
		in.Op = OpStore
	case "resolve":
		in.Op = OpResolve
		if len(fields) < 1 {
			return in, fmt.Errorf("resolve needs a register")
		}
		r, err := reg(fields[0])
		if err != nil {
			return in, err
		}
		in.Reg = r
		if in.Cycles == 0 {
			in.Cycles = 1
		}
	case "cmpfn":
		in.Op = OpCmpFn
		if len(fields) < 2 {
			return in, fmt.Errorf("cmpfn needs register and target")
		}
		r, err := reg(fields[0])
		if err != nil {
			return in, err
		}
		in.Reg = r
		in.Callee = strings.TrimPrefix(fields[1], "@")
	case "br":
		in.Op = OpBr
		// "br flag, A, B" or "br p=0.500, A, B"
		parts := strings.SplitN(rest, ",", 3)
		if len(parts) != 3 {
			return in, fmt.Errorf("malformed br %q", s)
		}
		cond := strings.TrimSpace(parts[0])
		switch {
		case cond == "flag":
			in.UseFlag = true
		case strings.HasPrefix(cond, "p="):
			p, err := strconv.ParseFloat(cond[2:], 32)
			if err != nil {
				return in, err
			}
			in.Prob = float32(p)
		case strings.HasPrefix(cond, "trip="):
			n, err := atoi32(cond[5:])
			if err != nil {
				return in, err
			}
			in.Trip = n
		default:
			return in, fmt.Errorf("unknown br condition %q", cond)
		}
		in.Then = strings.TrimSpace(parts[1])
		in.Else = strings.TrimSpace(parts[2])
	case "jmp":
		in.Op = OpJmp
		if len(fields) < 1 {
			return in, fmt.Errorf("jmp needs a target")
		}
		in.Then = fields[0]
	case "switch":
		in.Op = OpSwitch
		// "switch A, B, C [table|chain]"
		body := rest
		if i := strings.LastIndexByte(body, '['); i >= 0 {
			mode := strings.TrimSuffix(body[i+1:], "]")
			in.JumpTable = mode == "table"
			body = strings.TrimSpace(body[:i])
		}
		for _, tgt := range strings.Split(body, ",") {
			tgt = strings.TrimSpace(tgt)
			if tgt != "" {
				in.Targets = append(in.Targets, tgt)
			}
		}
		if len(in.Targets) == 0 {
			return in, fmt.Errorf("switch with no targets")
		}
	case "call":
		in.Op = OpCall
		if len(fields) < 1 || !strings.HasPrefix(fields[0], "@") {
			return in, fmt.Errorf("call needs @callee")
		}
		in.Callee = strings.TrimPrefix(fields[0], "@")
	case "icall":
		in.Op = OpICall
		if len(fields) < 1 {
			return in, fmt.Errorf("icall needs a register")
		}
		r, err := reg(fields[0])
		if err != nil {
			return in, err
		}
		in.Reg = r
	case "ret":
		in.Op = OpRet
	default:
		return in, fmt.Errorf("unknown opcode %q", op)
	}
	return in, nil
}

func defenseByName(name string) (Defense, bool) {
	for d, n := range defNames {
		if n == name && Defense(d) != DefNone {
			return Defense(d), true
		}
	}
	return DefNone, false
}
