// Package attack simulates the transient control-flow hijacking attacks
// of the paper's threat model against a (possibly hardened) module, using
// the CPU model's predictor state as the attack surface:
//
//   - Spectre V2: poison the BTB slot a victim indirect branch indexes
//     (any attacker branch aliasing to the same slot suffices) and check
//     whether the CPU's speculative dispatch for the victim lands on the
//     attacker's gadget.
//   - Ret2spec: poison the RSB and check whether a victim return
//     speculates to the gadget.
//   - LVI: inject a value into the faulting load that feeds an indirect
//     branch (or a return address pop) and check whether the transient
//     target is attacker-controlled.
//
// A site defends successfully when its thunk either avoids the poisoned
// predictor entirely (retpolines pin speculation into the thunk's capture
// loop) or fences the injected load before the control transfer.
package attack

import (
	"repro/internal/cpu"
	"repro/internal/ir"
)

// GadgetAddr is the attacker-chosen speculative target used by the
// simulations.
const GadgetAddr = 0x66660000

// Outcome reports one attack attempt.
type Outcome struct {
	Vulnerable bool
	// Reason explains the verdict ("speculates to gadget via poisoned
	// BTB", "retpoline captures speculation", ...).
	Reason string
}

// SpectreV2 attacks an indirect call/jump at siteAddr hardened with def.
func SpectreV2(m *cpu.Model, siteAddr int64, def ir.Defense) Outcome {
	m.PoisonBTB(siteAddr, GadgetAddr)
	switch def {
	case ir.DefNone, ir.DefLVI:
		// LVI-CFI keeps the BTB-predicted indirect jump (Listing 5), so
		// it does not stop BTB poisoning by itself.
		if m.PredictIndirect(siteAddr) == GadgetAddr {
			return Outcome{Vulnerable: true, Reason: "speculates to gadget via poisoned BTB"}
		}
		return Outcome{Vulnerable: false, Reason: "BTB slot not attacker-controlled"}
	case ir.DefRetpoline, ir.DefFencedRetpoline:
		// The retpoline replaces the indirect branch with a ret whose
		// RSB entry the thunk itself just planted; the poisoned BTB slot
		// is never consulted.
		return Outcome{Vulnerable: false, Reason: "retpoline captures speculation in thunk loop"}
	default:
		return Outcome{Vulnerable: false, Reason: "backward-edge thunk: no BTB dispatch"}
	}
}

// Ret2spec attacks a return hardened with def. depth is how many RSB
// entries the attacker can pollute before the victim return executes.
func Ret2spec(m *cpu.Model, def ir.Defense, depth int) Outcome {
	m.PoisonRSB(GadgetAddr, depth)
	switch def {
	case ir.DefNone, ir.DefLVIRet:
		// The LVI return sequence (Listing 6) fences the load of the
		// return address but still returns through the RSB-predicted
		// path, so RSB poisoning still redirects speculation.
		if tgt, ok := m.PredictReturn(); ok && tgt == GadgetAddr {
			return Outcome{Vulnerable: true, Reason: "speculates to gadget via poisoned RSB"}
		}
		return Outcome{Vulnerable: false, Reason: "RSB top not attacker-controlled"}
	case ir.DefRetRetpoline, ir.DefFencedRetRet:
		// The return retpoline places the top of the RSB in a known
		// state before returning, so any poisoning is overwritten.
		return Outcome{Vulnerable: false, Reason: "return retpoline re-pins the RSB top"}
	default:
		return Outcome{Vulnerable: false, Reason: "forward-edge thunk on a return is over-defended"}
	}
}

// LVI attacks the target load of an indirect branch hardened with def:
// the attacker injects GadgetAddr into the faulting load's result.
func LVI(def ir.Defense) Outcome {
	switch def {
	case ir.DefNone, ir.DefRetpoline, ir.DefRetRetpoline:
		// Plain retpolines move the target into the thunk via an
		// unfenced load/store; LVI can still inject into it.
		return Outcome{Vulnerable: true, Reason: "unfenced target load accepts injected value"}
	case ir.DefLVI, ir.DefLVIRet, ir.DefFencedRetpoline, ir.DefFencedRetRet:
		return Outcome{Vulnerable: false, Reason: "lfence retires the load before the transfer"}
	default:
		return Outcome{Vulnerable: true, Reason: "unknown defense treated as unprotected"}
	}
}

// RSBScenario distinguishes how an attacker pollutes the RSB for a
// Ret2spec attack against the kernel (§6.4's analysis of RSB refilling).
type RSBScenario int

// The pollution scenarios of §2.2/§6.4.
const (
	// PoisonFromUserspace: the attacker fills the RSB in user mode and
	// relies on the kernel reusing the entries after the transition.
	PoisonFromUserspace RSBScenario = iota
	// PoisonSpeculatively: RSB entries pushed by speculatively executed
	// calls inside the kernel are not reverted on a pipeline flush, so
	// pollution happens after any entry-time refill.
	PoisonSpeculatively
)

func (s RSBScenario) String() string {
	if s == PoisonFromUserspace {
		return "user-mode pollution"
	}
	return "speculative in-kernel pollution"
}

// Ret2specUnderRefill evaluates a Ret2spec attempt against a kernel that
// refills the RSB on privilege transitions instead of hardening returns.
// Refilling defeats user-mode pollution, but — as the paper argues when
// recommending return retpolines — not pollution that happens after the
// refill.
func Ret2specUnderRefill(m *cpu.Model, sc RSBScenario) Outcome {
	// The attacker poisons, then the kernel entry path runs.
	m.PoisonRSB(GadgetAddr, 4)
	if sc == PoisonFromUserspace {
		m.RefillRSB()
	}
	// Victim return executes with no matching frame of its own.
	if tgt, ok := m.PredictReturn(); ok && tgt == GadgetAddr {
		return Outcome{Vulnerable: true, Reason: "poisoned entry survives past the refill point"}
	}
	return Outcome{Vulnerable: false, Reason: "refill replaced the poisoned entries"}
}

// Report tallies, for every indirect branch in a module, which attack
// classes remain viable. It is the per-module security evaluation behind
// Table 11.
type Report struct {
	ICallsSpectreV2 int // indirect calls hijackable via BTB poisoning
	ICallsLVI       int // indirect calls hijackable via LVI
	ReturnsRet2spec int // returns hijackable via RSB poisoning
	ReturnsLVI      int
	IJumpsSpectreV2 int // jump-table dispatches hijackable via BTB
	TotalICalls     int
	TotalReturns    int
	TotalIJumps     int
}

// Evaluate lays the module out and attacks every indirect branch once.
// Boot-only code is skipped, matching the paper's observation that
// boot-time returns are not subject to transient attacks after boot.
func Evaluate(mod *ir.Module) Report {
	mod.Layout(0x1000000, 16)
	m := cpu.New(cpu.DefaultParams())
	var r Report
	for _, f := range mod.Funcs {
		if f.Attrs.Has(ir.AttrBoot) {
			continue
		}
		addr := f.Addr
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			iaddr := addr
			addr += int64(in.ByteSize())
			switch in.Op {
			case ir.OpICall:
				r.TotalICalls++
				if SpectreV2(m, iaddr, in.Defense).Vulnerable {
					r.ICallsSpectreV2++
				}
				if LVI(in.Defense).Vulnerable {
					r.ICallsLVI++
				}
			case ir.OpRet:
				r.TotalReturns++
				m.DirectCall(iaddr, 0) // give the RSB a frame to poison over
				if Ret2spec(m, in.Defense, 4).Vulnerable {
					r.ReturnsRet2spec++
				}
				if in.Defense == ir.DefNone || in.Defense == ir.DefRetpoline || in.Defense == ir.DefRetRetpoline {
					r.ReturnsLVI++
				}
			case ir.OpSwitch:
				if in.JumpTable {
					r.TotalIJumps++
					def := in.Defense
					if SpectreV2(m, iaddr, def).Vulnerable {
						r.IJumpsSpectreV2++
					}
				}
			}
		})
	}
	return r
}
