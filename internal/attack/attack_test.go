package attack

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/harden"
	"repro/internal/ir"
)

func model() *cpu.Model { return cpu.New(cpu.DefaultParams()) }

func TestSpectreV2Matrix(t *testing.T) {
	cases := []struct {
		def  ir.Defense
		vuln bool
	}{
		{ir.DefNone, true},
		{ir.DefLVI, true}, // LVI-CFI alone keeps the BTB-predicted jump
		{ir.DefRetpoline, false},
		{ir.DefFencedRetpoline, false},
	}
	for _, c := range cases {
		got := SpectreV2(model(), 0x1234, c.def)
		if got.Vulnerable != c.vuln {
			t.Errorf("SpectreV2(%v) = %v (%s), want vulnerable=%v", c.def, got.Vulnerable, got.Reason, c.vuln)
		}
	}
}

func TestSpectreV2UsesAliasing(t *testing.T) {
	// Poisoning through an aliasing attacker branch (victim + BTB size)
	// must also work: the model indexes by low address bits only.
	m := model()
	stride := int64(m.P.BTBEntries)
	m.PoisonBTB(0x1000+stride, GadgetAddr)
	if m.PredictIndirect(0x1000) != GadgetAddr {
		t.Fatal("aliased poisoning did not reach the victim slot")
	}
}

func TestRet2specMatrix(t *testing.T) {
	cases := []struct {
		def  ir.Defense
		vuln bool
	}{
		{ir.DefNone, true},
		{ir.DefLVIRet, true}, // fences the load, still RSB-predicted
		{ir.DefRetRetpoline, false},
		{ir.DefFencedRetRet, false},
	}
	for _, c := range cases {
		m := model()
		m.DirectCall(0x5000, 0)
		got := Ret2spec(m, c.def, 4)
		if got.Vulnerable != c.vuln {
			t.Errorf("Ret2spec(%v) = %v (%s), want vulnerable=%v", c.def, got.Vulnerable, got.Reason, c.vuln)
		}
	}
}

func TestLVIMatrix(t *testing.T) {
	vuln := []ir.Defense{ir.DefNone, ir.DefRetpoline, ir.DefRetRetpoline}
	safe := []ir.Defense{ir.DefLVI, ir.DefLVIRet, ir.DefFencedRetpoline, ir.DefFencedRetRet}
	for _, d := range vuln {
		if !LVI(d).Vulnerable {
			t.Errorf("LVI(%v) should be vulnerable", d)
		}
	}
	for _, d := range safe {
		if LVI(d).Vulnerable {
			t.Errorf("LVI(%v) should be safe", d)
		}
	}
}

func buildModule(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule()
	h := ir.NewFunction(m, "h", 0)
	h.ALU(1).Ret()
	f := ir.NewFunction(m, "f", 0)
	f.IndirectCall(0)
	f.Switch([]string{"a"})
	f.NewBlock("a").Ret()
	boot := ir.NewFunction(m, "boot_x", 0)
	boot.SetAttrs(ir.AttrBoot)
	boot.IndirectCall(0)
	boot.Ret()
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m
}

func TestEvaluateUnprotectedModule(t *testing.T) {
	m := buildModule(t)
	r := Evaluate(m)
	// Boot code is excluded: 1 icall, 2 returns, 1 jump table.
	if r.TotalICalls != 1 || r.TotalReturns != 2 || r.TotalIJumps != 1 {
		t.Fatalf("census = %+v", r)
	}
	if r.ICallsSpectreV2 != 1 || r.ICallsLVI != 1 {
		t.Errorf("unprotected icall not reported vulnerable: %+v", r)
	}
	if r.ReturnsRet2spec != 2 {
		t.Errorf("unprotected returns not reported vulnerable: %+v", r)
	}
	if r.IJumpsSpectreV2 != 1 {
		t.Errorf("jump table not reported vulnerable: %+v", r)
	}
}

func TestEvaluateHardenedModule(t *testing.T) {
	m := buildModule(t)
	if _, err := harden.Apply(m, harden.Config{Retpolines: true, RetRetpolines: true, LVICFI: true}); err != nil {
		t.Fatalf("harden: %v", err)
	}
	r := Evaluate(m)
	if r.ICallsSpectreV2 != 0 || r.ICallsLVI != 0 {
		t.Errorf("hardened icalls still vulnerable: %+v", r)
	}
	if r.ReturnsRet2spec != 0 || r.ReturnsLVI != 0 {
		t.Errorf("hardened returns still vulnerable: %+v", r)
	}
	// The switch was lowered to a compare chain: no indirect jump left.
	if r.TotalIJumps != 0 {
		t.Errorf("jump table survived hardening: %+v", r)
	}
}

func TestEvaluateAsmSitesStayVulnerable(t *testing.T) {
	m := buildModule(t)
	// Mark the icall as inline assembly; hardening must skip it and the
	// evaluation must still flag it.
	m.Func("f").ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpICall {
			in.Asm = true
		}
	})
	if _, err := harden.Apply(m, harden.Config{Retpolines: true, RetRetpolines: true, LVICFI: true}); err != nil {
		t.Fatalf("harden: %v", err)
	}
	r := Evaluate(m)
	if r.ICallsSpectreV2 != 1 {
		t.Errorf("asm icall not flagged: %+v", r)
	}
}

func TestRetpolineRemainsLVIVulnerableWithoutFence(t *testing.T) {
	// §6.3's motivation: retpolines and LVI-CFI are individually
	// insufficient; only the fenced retpoline stops both attacks.
	m := buildModule(t)
	if _, err := harden.Apply(m, harden.Config{Retpolines: true}); err != nil {
		t.Fatalf("harden: %v", err)
	}
	r := Evaluate(m)
	if r.ICallsSpectreV2 != 0 {
		t.Error("retpoline failed against Spectre V2")
	}
	if r.ICallsLVI != 1 {
		t.Error("plain retpoline should remain LVI-vulnerable")
	}
}

func TestRet2specUnderRefill(t *testing.T) {
	// Refilling stops user-mode pollution...
	m := model()
	if out := Ret2specUnderRefill(m, PoisonFromUserspace); out.Vulnerable {
		t.Errorf("user-mode pollution survived refill: %s", out.Reason)
	}
	// ...but not pollution that happens after the refill point — the
	// §6.4 argument for return retpolines.
	m2 := model()
	if out := Ret2specUnderRefill(m2, PoisonSpeculatively); !out.Vulnerable {
		t.Errorf("speculative pollution should defeat refilling: %s", out.Reason)
	}
}
