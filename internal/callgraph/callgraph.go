// Package callgraph builds the weighted dynamic call graph of a module
// from its static call sites and a profile — the structure PIBE's
// optimization passes navigate and the bottom-up order LLVM's default
// inliner visits.
package callgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/prof"
)

// Edge is one call-graph edge: a static call site connecting caller and
// callee with a profile weight. Indirect sites contribute one edge per
// profiled target.
type Edge struct {
	Caller   string
	Callee   string
	Site     ir.SiteID
	Weight   uint64
	Indirect bool
}

// Graph is a weighted call graph.
type Graph struct {
	// Nodes is the set of function names, in module order.
	Nodes []string
	// Out maps a caller to its outgoing edges, ordered by weight
	// descending then site ID.
	Out map[string][]Edge
	// In maps a callee to its incoming edges.
	In map[string][]Edge
	// Invocations is each function's entry count from the profile.
	Invocations map[string]uint64
}

// Build constructs the graph. Profile data is optional (nil gives an
// unweighted static graph; indirect sites then contribute no edges since
// their targets are unknown statically).
func Build(mod *ir.Module, p *prof.Profile) *Graph {
	g := &Graph{
		Out:         make(map[string][]Edge),
		In:          make(map[string][]Edge),
		Invocations: make(map[string]uint64),
	}
	for _, f := range mod.Funcs {
		g.Nodes = append(g.Nodes, f.Name)
	}
	add := func(e Edge) {
		g.Out[e.Caller] = append(g.Out[e.Caller], e)
		g.In[e.Callee] = append(g.In[e.Callee], e)
	}
	for _, f := range mod.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			switch in.Op {
			case ir.OpCall:
				var w uint64
				if p != nil {
					if s := p.Sites[in.Orig]; s != nil && !s.Indirect() {
						w = s.Count
					}
				}
				add(Edge{Caller: f.Name, Callee: in.Callee, Site: in.Site, Weight: w})
			case ir.OpICall:
				if p == nil {
					return
				}
				s := p.Sites[in.Orig]
				if s == nil || !s.Indirect() {
					return
				}
				for _, t := range s.SortedTargets() {
					add(Edge{Caller: f.Name, Callee: t.Name, Site: in.Site, Weight: t.Count, Indirect: true})
				}
			}
		})
	}
	for caller := range g.Out {
		es := g.Out[caller]
		sort.Slice(es, func(i, j int) bool {
			if es[i].Weight != es[j].Weight {
				return es[i].Weight > es[j].Weight
			}
			if es[i].Site != es[j].Site {
				return es[i].Site < es[j].Site
			}
			return es[i].Callee < es[j].Callee
		})
	}
	if p != nil {
		for fn, n := range p.Invocations {
			g.Invocations[fn] = n
		}
	}
	return g
}

// PostOrder returns the functions in bottom-up order: callees before
// callers, with cycles broken at the first back edge encountered.
// Functions unreachable from any other function come last, in module
// order. This is the visit order of LLVM's default inliner.
func (g *Graph) PostOrder() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(g.Nodes))
	var order []string
	var visit func(string)
	visit = func(fn string) {
		if state[fn] != white {
			return
		}
		state[fn] = gray
		for _, e := range g.Out[fn] {
			if state[e.Callee] == white {
				visit(e.Callee)
			}
		}
		state[fn] = black
		order = append(order, fn)
	}
	for _, fn := range g.Nodes {
		visit(fn)
	}
	return order
}

// DOT renders the subgraph reachable from root (or the whole graph if
// root is "") in Graphviz format, with edge weights as labels and
// indirect edges dashed. maxNodes bounds the output for big kernels.
func (g *Graph) DOT(root string, maxNodes int) string {
	if maxNodes <= 0 {
		maxNodes = 100
	}
	include := make(map[string]bool)
	if root == "" {
		for _, n := range g.Nodes {
			if len(include) >= maxNodes {
				break
			}
			include[n] = true
		}
	} else {
		queue := []string{root}
		for len(queue) > 0 && len(include) < maxNodes {
			n := queue[0]
			queue = queue[1:]
			if include[n] {
				continue
			}
			include[n] = true
			for _, e := range g.Out[n] {
				queue = append(queue, e.Callee)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	names := make([]string, 0, len(include))
	for n := range include {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "  %q;\n", n)
	}
	for _, n := range names {
		for _, e := range g.Out[n] {
			if !include[e.Callee] {
				continue
			}
			style := ""
			if e.Indirect {
				style = ", style=dashed"
			}
			fmt.Fprintf(&sb, "  %q -> %q [label=%q%s];\n", e.Caller, e.Callee, fmt.Sprint(e.Weight), style)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// TotalWeight sums edge weights over the whole graph, split by edge kind.
func (g *Graph) TotalWeight() (direct, indirect uint64) {
	for _, es := range g.Out {
		for _, e := range es {
			if e.Indirect {
				indirect += e.Weight
			} else {
				direct += e.Weight
			}
		}
	}
	return direct, indirect
}
