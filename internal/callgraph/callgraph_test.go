package callgraph

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/prof"
)

// buildDiamond: main -> {a, b}, a -> leaf, b -> leaf, plus an indirect
// call in main profiled to hit a and b.
func buildDiamond(t *testing.T) (*ir.Module, *prof.Profile) {
	t.Helper()
	m := ir.NewModule()
	leaf := ir.NewFunction(m, "leaf", 0)
	leaf.ALU(1).Ret()
	a := ir.NewFunction(m, "a", 0)
	sa := a.Call("leaf", 0)
	a.Ret()
	b := ir.NewFunction(m, "b", 0)
	sb := b.Call("leaf", 0)
	b.Ret()
	main := ir.NewFunction(m, "main", 0)
	s1 := main.Call("a", 0)
	s2 := main.Call("b", 0)
	si := main.IndirectCall(0)
	main.Ret()
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	p := prof.New()
	p.AddDirect(s1, "main", "a", 100)
	p.AddDirect(s2, "main", "b", 50)
	p.AddDirect(sa, "a", "leaf", 100)
	p.AddDirect(sb, "b", "leaf", 50)
	p.AddIndirect(si, "main", "a", 30)
	p.AddIndirect(si, "main", "b", 10)
	p.AddInvocation("main", 1)
	p.AddInvocation("a", 130)
	p.AddInvocation("b", 60)
	p.AddInvocation("leaf", 150)
	return m, p
}

func TestBuildEdges(t *testing.T) {
	m, p := buildDiamond(t)
	g := Build(m, p)
	if len(g.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(g.Nodes))
	}
	// main has 2 direct + 2 indirect edges, hottest first.
	out := g.Out["main"]
	if len(out) != 4 {
		t.Fatalf("main out-edges = %d, want 4", len(out))
	}
	if out[0].Callee != "a" || out[0].Weight != 100 {
		t.Errorf("hottest edge = %+v, want a/100", out[0])
	}
	var indir int
	for _, e := range out {
		if e.Indirect {
			indir++
		}
	}
	if indir != 2 {
		t.Errorf("indirect edges = %d, want 2", indir)
	}
	// leaf's incoming edges come from both a and b.
	if len(g.In["leaf"]) != 2 {
		t.Errorf("leaf in-edges = %d, want 2", len(g.In["leaf"]))
	}
	if g.Invocations["leaf"] != 150 {
		t.Errorf("leaf invocations = %d, want 150", g.Invocations["leaf"])
	}
}

func TestBuildWithoutProfile(t *testing.T) {
	m, _ := buildDiamond(t)
	g := Build(m, nil)
	out := g.Out["main"]
	// Only static direct edges; indirect sites contribute nothing.
	if len(out) != 2 {
		t.Fatalf("main out-edges = %d, want 2 (static only)", len(out))
	}
	for _, e := range out {
		if e.Weight != 0 {
			t.Errorf("unprofiled edge has weight %d", e.Weight)
		}
	}
}

func TestPostOrderBottomUp(t *testing.T) {
	m, p := buildDiamond(t)
	g := Build(m, p)
	order := g.PostOrder()
	pos := make(map[string]int)
	for i, f := range order {
		pos[f] = i
	}
	if len(order) != 4 {
		t.Fatalf("order = %v, want 4 entries", order)
	}
	if pos["leaf"] > pos["a"] || pos["leaf"] > pos["b"] {
		t.Errorf("leaf must precede its callers: %v", order)
	}
	if pos["a"] > pos["main"] || pos["b"] > pos["main"] {
		t.Errorf("callees must precede main: %v", order)
	}
}

func TestPostOrderHandlesCycles(t *testing.T) {
	m := ir.NewModule()
	a := ir.NewFunction(m, "a", 0)
	a.Call("b", 0)
	a.Ret()
	b := ir.NewFunction(m, "b", 0)
	b.Call("a", 0)
	b.Ret()
	g := Build(m, nil)
	order := g.PostOrder()
	if len(order) != 2 {
		t.Fatalf("cycle: order = %v", order)
	}
}

func TestTotalWeight(t *testing.T) {
	m, p := buildDiamond(t)
	g := Build(m, p)
	d, i := g.TotalWeight()
	if d != 300 {
		t.Errorf("direct weight = %d, want 300", d)
	}
	if i != 40 {
		t.Errorf("indirect weight = %d, want 40", i)
	}
}

func TestDOTExport(t *testing.T) {
	m, p := buildDiamond(t)
	g := Build(m, p)
	dot := g.DOT("main", 50)
	for _, want := range []string{"digraph callgraph", `"main" -> "a"`, "style=dashed", `label="100"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Bounded output: with maxNodes 1 only the root appears and no edges
	// to excluded nodes.
	small := g.DOT("main", 1)
	if strings.Contains(small, `-> "a"`) {
		t.Error("maxNodes bound not respected")
	}
	// Whole-graph mode.
	if whole := g.DOT("", 0); !strings.Contains(whole, `"leaf"`) {
		t.Error("whole-graph export missing nodes")
	}
}
