package bench

import (
	"fmt"

	pibe "repro"
	"repro/internal/attack"
	"repro/internal/cpu"
)

// Ablations exercises the design decisions DESIGN.md §5 calls out,
// reporting the LMBench geomean (all defenses) for each variant so the
// contribution of every mechanism is visible in isolation:
//
//	D1  greedy hottest-first order   vs LLVM bottom-up order
//	D2  Rule 2 caller budget         vs disabled
//	D3  Rule 3 callee cap            vs disabled
//	D4  unbounded promoted targets   vs classic top-1 / top-2 ICP
//	D5  constant-ratio inheritance   vs no inherited candidates
//	D6  static promotion             vs JumpSwitches runtime patching
//	§6.4 return retpolines           vs RSB refilling
func (s *Suite) Ablations() (*Table, error) {
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablations",
		Title:  "Design-decision ablations (LMBench geomean, all defenses unless noted)",
		Header: []string{"variant", "geomean", "decision"},
	}
	full := pibe.OptimizeConfig{ICPBudget: BudgetICP, InlineBudget: 0.999999, LaxBudget: 0.99}

	add := func(label, name, decision string, cfg pibe.BuildConfig) error {
		lat, err := s.Latencies(name, cfg)
		if err != nil {
			return err
		}
		ovs := overheads(base, lat)
		t.Rows = append(t.Rows, []string{label, pct(ovs[len(ovs)-1]), decision})
		return nil
	}
	mk := func(mut func(*pibe.OptimizeConfig)) pibe.BuildConfig {
		o := full
		mut(&o)
		return pibe.BuildConfig{Profile: s.ProfLM, Defenses: pibe.AllDefenses, Optimize: o}
	}

	if err := add("PIBE (full)", "alldef-lax2", "reference",
		mk(func(o *pibe.OptimizeConfig) {})); err != nil {
		return nil, err
	}
	if err := add("LLVM bottom-up inline order", "abl-d1",
		"D1: hottest-first order", pibe.BuildConfig{Profile: s.ProfLM, Defenses: pibe.AllDefenses,
			Optimize: pibe.OptimizeConfig{InlineBudget: 0.999999, UseLLVMInliner: true}}); err != nil {
		return nil, err
	}
	if err := add("Rule 2 disabled", "abl-d2", "D2: caller complexity budget",
		mk(func(o *pibe.OptimizeConfig) { o.LaxBudget = 0; o.DisableRule2 = true })); err != nil {
		return nil, err
	}
	if err := add("Rule 3 disabled", "abl-d3", "D3: callee complexity cap",
		mk(func(o *pibe.OptimizeConfig) { o.LaxBudget = 0; o.DisableRule3 = true })); err != nil {
		return nil, err
	}
	if err := add("both rules active (no lax)", "alldef-inl999999", "D2+D3 baseline",
		mk(func(o *pibe.OptimizeConfig) { o.LaxBudget = 0 })); err != nil {
		return nil, err
	}
	if err := add("ICP capped at 1 target/site", "abl-d4a", "D4: unbounded promotion",
		mk(func(o *pibe.OptimizeConfig) { o.MaxICPTargets = 1 })); err != nil {
		return nil, err
	}
	if err := add("ICP capped at 2 targets/site", "abl-d4b", "D4: unbounded promotion",
		mk(func(o *pibe.OptimizeConfig) { o.MaxICPTargets = 2 })); err != nil {
		return nil, err
	}
	if err := add("no inherited candidates", "abl-d5", "D5: constant-ratio heuristic",
		mk(func(o *pibe.OptimizeConfig) { o.DisableInheritance = true })); err != nil {
		return nil, err
	}
	if err := add("JumpSwitches (retpolines only)", "jumpswitches", "D6: static vs runtime",
		pibe.BuildConfig{Defenses: pibe.Defenses{Retpolines: true}, JumpSwitches: true}); err != nil {
		return nil, err
	}

	// §6.4: RSB refilling vs return retpolines, backward edge only.
	if err := add("return retpolines (no opt)", "t6-lto-return retpolines", "§6.4",
		pibe.BuildConfig{Defenses: pibe.Defenses{RetRetpolines: true}}); err != nil {
		return nil, err
	}
	if err := add("RSB refilling (no opt)", "abl-rsbrefill", "§6.4",
		pibe.BuildConfig{Defenses: pibe.Defenses{RSBRefill: true}}); err != nil {
		return nil, err
	}

	// The security half of the §6.4 argument: refilling only stops
	// user-mode pollution.
	m := cpu.New(cpu.DefaultParams())
	user := attack.Ret2specUnderRefill(m, attack.PoisonFromUserspace)
	m2 := cpu.New(cpu.DefaultParams())
	spec := attack.Ret2specUnderRefill(m2, attack.PoisonSpeculatively)
	t.Notes = append(t.Notes,
		fmt.Sprintf("RSB refilling security: %s -> vulnerable=%v; %s -> vulnerable=%v (return retpolines stop both)",
			attack.PoisonFromUserspace, user.Vulnerable, attack.PoisonSpeculatively, spec.Vulnerable))
	return t, nil
}
