// Package bench is the experiment harness: it rebuilds every table of the
// paper's evaluation (§6 Table 1, §8 Tables 2–12 and the §8.4 robustness
// experiment) against the synthetic kernel, and renders them as aligned
// text tables alongside the paper's reference values where useful.
package bench

import (
	"fmt"
	"strings"

	pibe "repro"
	"repro/internal/resilience"
)

// Suite owns the kernel, the profiles and a cache of built images so
// experiments that share a configuration do not rebuild it.
type Suite struct {
	Seed int64
	Sys  *pibe.System

	ProfLM     *pibe.Profile
	ProfApache *pibe.Profile

	images  map[string]*pibe.Image
	lats    map[string][]pibe.Latency
	baseLat []pibe.Latency
}

// NewSuite generates the kernel and collects the LMBench and Apache
// profiles (the two profiling workloads of the evaluation).
func NewSuite(seed int64) (*Suite, error) {
	sys, err := pibe.NewSyntheticKernel(pibe.KernelConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	profLM, err := sys.Profile(pibe.LMBench, 5)
	if err != nil {
		return nil, err
	}
	profAp, err := sys.Profile(pibe.Apache, 4)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Seed:       seed,
		Sys:        sys,
		ProfLM:     profLM,
		ProfApache: profAp,
		images:     make(map[string]*pibe.Image),
		lats:       make(map[string][]pibe.Latency),
	}, nil
}

// Standard optimization budgets used across the tables.
const (
	BudgetICP = 0.99999 // the 99.999% promotion budget of Tables 3 and 5
)

// Image builds (or returns the cached) image for a named configuration.
func (s *Suite) Image(name string, cfg pibe.BuildConfig) (*pibe.Image, error) {
	if img, ok := s.images[name]; ok {
		return img, nil
	}
	img, err := s.Sys.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: build %s: %v", name, err)
	}
	s.images[name] = img
	return img, nil
}

// Latencies measures (or returns cached) LMBench latencies for a named
// configuration. Transient measurement failures that survive the
// per-benchmark retry are absorbed here with a second capped-backoff
// pass over the whole suite, so one flaky round cannot sink a long
// table-reproduction run.
func (s *Suite) Latencies(name string, cfg pibe.BuildConfig) ([]pibe.Latency, error) {
	if l, ok := s.lats[name]; ok {
		return l, nil
	}
	img, err := s.Image(name, cfg)
	if err != nil {
		return nil, err
	}
	var l []pibe.Latency
	err = resilience.Retry(resilience.DefaultRetry(), func() error {
		var merr error
		l, merr = img.MeasureLMBench(pibe.LMBench)
		return merr
	})
	if err != nil {
		return nil, fmt.Errorf("bench: measure %s: %v", name, err)
	}
	s.lats[name] = l
	return l, nil
}

// Baseline returns the LTO-baseline latencies (no PGO, no defenses),
// the reference everything else is relative to.
func (s *Suite) Baseline() ([]pibe.Latency, error) {
	if s.baseLat != nil {
		return s.baseLat, nil
	}
	l, err := s.Latencies("lto-baseline", pibe.BuildConfig{})
	if err != nil {
		return nil, err
	}
	s.baseLat = l
	return l, nil
}

// overheads computes per-benchmark relative overheads against the LTO
// baseline plus their geometric mean (appended last).
func overheads(base, cfg []pibe.Latency) []float64 {
	out := make([]float64, 0, len(cfg)+1)
	for i := range cfg {
		out = append(out, pibe.Overhead(base[i].Micros, cfg[i].Micros))
	}
	out = append(out, pibe.Geomean(out))
	return out
}

// Table is a rendered experiment result.
type Table struct {
	ID     string // "1", "2", ..., "robustness"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				sb.WriteString(c)
				sb.WriteString(strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func pct(x float64) string { return fmt.Sprintf("%+.1f%%", 100*x) }
func us(x float64) string  { return fmt.Sprintf("%.2f", x) }
func n(x int) string       { return fmt.Sprintf("%d", x) }
func n64(x int64) string   { return fmt.Sprintf("%d", x) }
func u64(x uint64) string  { return fmt.Sprintf("%d", x) }
func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func frac(a, b uint64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b))
}
