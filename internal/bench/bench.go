// Package bench is the experiment harness: it rebuilds every table of the
// paper's evaluation (§6 Table 1, §8 Tables 2–12 and the §8.4 robustness
// experiment) against the synthetic kernel, and renders them as aligned
// text tables alongside the paper's reference values where useful.
package bench

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	pibe "repro"
	"repro/internal/resilience"
)

// Suite owns the kernel, the profiles and a cache of built images so
// experiments that share a configuration do not rebuild it.
//
// The suite is safe for concurrent use: the table generators fan
// configuration builds and measurements out across a bounded worker pool
// (see ForEach), and the image/latency caches deduplicate concurrent
// requests for the same configuration so it is built exactly once no
// matter how many workers race for it.
type Suite struct {
	Seed int64
	Sys  *pibe.System

	ProfLM     *pibe.Profile
	ProfApache *pibe.Profile

	// Workers bounds the goroutines a table generator fans out across.
	// Zero or negative selects the default, min(GOMAXPROCS, 4).
	Workers int

	mu     sync.Mutex
	flight map[string]*flight
}

// flight is one cached (possibly still in-progress) build or
// measurement. The first caller to claim a key becomes the leader and
// performs the work; everyone else blocks on done and shares the
// result. Entries are never evicted — the flight map IS the cache.
type flight struct {
	done chan struct{}
	img  *pibe.Image
	lat  []pibe.Latency
	err  error
}

// claim returns the flight for key, creating it if absent. The boolean
// reports whether the caller is the leader and must do the work (and
// close done when finished).
func (s *Suite) claim(key string) (*flight, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.flight[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	s.flight[key] = f
	return f, true
}

// ForEach runs fn(0) .. fn(n-1) across a bounded pool of workers and
// waits for all of them. Every index runs even if an earlier one fails;
// the returned error is the one with the lowest index, so the outcome
// is deterministic regardless of scheduling.
func (s *Suite) ForEach(n int, fn func(i int) error) error {
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 4 {
			w = 4
		}
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		// Same contract as the parallel path below: every index runs
		// even if an earlier one fails (so cache warm-up is identical
		// for every worker count), and the lowest-index error wins.
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	next := int64(-1)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// NewSuite generates the kernel and collects the LMBench and Apache
// profiles (the two profiling workloads of the evaluation).
func NewSuite(seed int64) (*Suite, error) {
	return NewSuiteKernel(pibe.KernelConfig{Seed: seed})
}

// NewSuiteKernel is NewSuite with an explicit kernel configuration, for
// harnesses (the budget sweep's -sweep-kernel-scale) that evaluate
// scaled-up kernels rather than the default calibrated one.
func NewSuiteKernel(cfg pibe.KernelConfig) (*Suite, error) {
	sys, err := pibe.NewSyntheticKernel(cfg)
	if err != nil {
		return nil, err
	}
	profLM, err := sys.Profile(pibe.LMBench, 5)
	if err != nil {
		return nil, err
	}
	profAp, err := sys.Profile(pibe.Apache, 4)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Seed:       cfg.Seed,
		Sys:        sys,
		ProfLM:     profLM,
		ProfApache: profAp,
		flight:     make(map[string]*flight),
	}, nil
}

// Standard optimization budgets used across the tables.
const (
	BudgetICP = 0.99999 // the 99.999% promotion budget of Tables 3 and 5
)

// Image builds (or returns the cached) image for a named configuration.
// Concurrent calls for the same name share one build.
func (s *Suite) Image(name string, cfg pibe.BuildConfig) (*pibe.Image, error) {
	f, leader := s.claim("img:" + name)
	if !leader {
		<-f.done
		return f.img, f.err
	}
	defer close(f.done)
	f.img, f.err = s.Sys.Build(cfg)
	if f.err != nil {
		f.err = fmt.Errorf("bench: build %s: %w", name, f.err)
	}
	return f.img, f.err
}

// Latencies measures (or returns cached) LMBench latencies for a named
// configuration. Transient measurement failures that survive the
// per-benchmark retry are absorbed here with a second capped-backoff
// pass over the whole suite, so one flaky round cannot sink a long
// table-reproduction run.
func (s *Suite) Latencies(name string, cfg pibe.BuildConfig) ([]pibe.Latency, error) {
	f, leader := s.claim("lat:" + name)
	if !leader {
		<-f.done
		return f.lat, f.err
	}
	defer close(f.done)
	img, err := s.Image(name, cfg)
	if err != nil {
		f.err = err
		return nil, err
	}
	f.err = resilience.Retry(nil, resilience.DefaultRetry(), func() error {
		var merr error
		f.lat, merr = img.MeasureLMBench(pibe.LMBench)
		return merr
	})
	if f.err != nil {
		f.lat = nil
		f.err = fmt.Errorf("bench: measure %s: %w", name, f.err)
	}
	return f.lat, f.err
}

// Baseline returns the LTO-baseline latencies (no PGO, no defenses),
// the reference everything else is relative to.
func (s *Suite) Baseline() ([]pibe.Latency, error) {
	return s.Latencies("lto-baseline", pibe.BuildConfig{})
}

// overheads computes per-benchmark relative overheads against the LTO
// baseline plus their geometric mean (appended last). A geomean that
// had to skip or clamp inputs (a zero/failed baseline showing up as
// ±Inf, an overhead under -99%) is flagged on stderr rather than left
// to silently misrepresent the row.
func overheads(base, cfg []pibe.Latency) []float64 {
	out := make([]float64, 0, len(cfg)+1)
	for i := range cfg {
		out = append(out, pibe.Overhead(base[i].Micros, cfg[i].Micros))
	}
	g, stats := pibe.GeomeanCounted(out)
	if stats.Degenerate() {
		fmt.Fprintf(os.Stderr, "bench: warning: geomean over %d overheads degraded: %s\n", len(out), stats)
	}
	out = append(out, g)
	return out
}

// Table is a rendered experiment result.
type Table struct {
	ID     string // "1", "2", ..., "robustness"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				sb.WriteString(c)
				sb.WriteString(strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func pct(x float64) string { return fmt.Sprintf("%+.1f%%", 100*x) }
func us(x float64) string  { return fmt.Sprintf("%.2f", x) }
func n(x int) string       { return fmt.Sprintf("%d", x) }
func n64(x int64) string   { return fmt.Sprintf("%d", x) }
func u64(x uint64) string  { return fmt.Sprintf("%d", x) }
func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func frac(a, b uint64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b))
}
