package bench

import (
	"errors"
	"strings"
	"sync"
	"testing"

	pibe "repro"
	"repro/internal/resilience"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"name", "value"},
		Rows:   [][]string{{"alpha", "1"}, {"beta-long", "22"}},
		Notes:  []string{"a note"},
	}
	out := tab.Render()
	for _, want := range []string{"Table x: demo", "alpha", "beta-long", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: both data rows end at the same width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines[2]) == 0 {
		t.Fatal("missing separator")
	}
}

func TestBudgetLabel(t *testing.T) {
	cases := map[float64]string{
		0.99:     "99%",
		0.999:    "99.9%",
		0.99999:  "99.999%",
		0.999999: "99.9999%",
	}
	for in, want := range cases {
		if got := budgetLabel(in); got != want {
			t.Errorf("budgetLabel(%v) = %q, want %q", in, got, want)
		}
	}
}

func newTestSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(2)
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	return s
}

func TestSuiteStaticTables(t *testing.T) {
	s := newTestSuite(t)

	t4, err := s.Table4()
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	if len(t4.Rows) != 1 || len(t4.Rows[0]) != 8 {
		t.Fatalf("Table4 shape: %+v", t4.Rows)
	}
	// Most sites are single-target (Table 4's dominant bucket).
	if t4.Rows[0][1] == "0" {
		t.Error("no single-target sites in profile")
	}

	t8, err := s.Table8()
	if err != nil {
		t.Fatalf("Table8: %v", err)
	}
	if len(t8.Rows) != 3 {
		t.Fatalf("Table8 rows = %d, want 3 budgets", len(t8.Rows))
	}

	t9, err := s.Table9()
	if err != nil {
		t.Fatalf("Table9: %v", err)
	}
	if len(t9.Rows) != 3 {
		t.Fatalf("Table9 rows = %d", len(t9.Rows))
	}

	t10, err := s.Table10()
	if err != nil {
		t.Fatalf("Table10: %v", err)
	}
	if len(t10.Rows) != 3 {
		t.Fatalf("Table10 rows = %d", len(t10.Rows))
	}

	t11, err := s.Table11()
	if err != nil {
		t.Fatalf("Table11: %v", err)
	}
	if got := t11.Rows[2][1]; got != "5" {
		t.Errorf("Table11 vulnerable ijumps = %s, want 5", got)
	}

	t12, err := s.Table12()
	if err != nil {
		t.Fatalf("Table12: %v", err)
	}
	if len(t12.Rows) < 6 {
		t.Fatalf("Table12 rows = %d", len(t12.Rows))
	}
}

func TestTable1MatchesCostModel(t *testing.T) {
	s := newTestSuite(t)
	t1, err := s.Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	// The final row is "all defenses": icall delta must be ≈ fenced
	// retpoline (42-2) + fenced return (32-1) ≈ 71 ticks.
	all := t1.Rows[len(t1.Rows)-1]
	if all[0] != "all defenses" {
		t.Fatalf("row order changed: %v", all)
	}
	if !strings.HasPrefix(all[2], "7") {
		t.Errorf("all-defenses icall ticks = %s, want ≈71", all[2])
	}
}

func TestCandidateOverlapBounds(t *testing.T) {
	s := newTestSuite(t)
	for _, indirect := range []bool{true, false} {
		ov := CandidateOverlap(s.ProfLM, s.ProfApache, 0.99, indirect)
		if ov < 0 || ov > 1 {
			t.Errorf("overlap(indirect=%v) = %v out of range", indirect, ov)
		}
		// A profile always fully overlaps itself.
		if self := CandidateOverlap(s.ProfLM, s.ProfLM, 0.99, indirect); self < 0.999 {
			t.Errorf("self-overlap = %v, want 1", self)
		}
	}
}

func TestTableByIDUnknown(t *testing.T) {
	s := newTestSuite(t)
	if _, err := s.TableByID("42"); err == nil {
		t.Fatal("unknown table id accepted")
	}
}

// TestParallelTablesMatchSerial: the worker-pool table generators must
// render byte-identical tables to a serial run, and concurrent suites
// must be race-free (run under -race in CI). Table 3 covers the
// parallel-measurement path and Table 12 the parallel-build path;
// Tables 5 and 6 run on the same forEach/singleflight machinery, so
// these two are representative without making the race run prohibitive.
func TestParallelTablesMatchSerial(t *testing.T) {
	serial := newTestSuite(t)
	serial.Workers = 1
	par := newTestSuite(t)
	par.Workers = 4
	for _, id := range []string{"3", "12"} {
		ts, err := serial.TableByID(id)
		if err != nil {
			t.Fatalf("serial table %s: %v", id, err)
		}
		tp, err := par.TableByID(id)
		if err != nil {
			t.Fatalf("parallel table %s: %v", id, err)
		}
		if ts.Render() != tp.Render() {
			t.Errorf("table %s differs between serial and parallel generation:\n--- serial ---\n%s--- parallel ---\n%s",
				id, ts.Render(), tp.Render())
		}
	}
}

// TestConcurrentImageSingleflight: many goroutines racing for the same
// configuration share exactly one build.
func TestConcurrentImageSingleflight(t *testing.T) {
	s := newTestSuite(t)
	const n = 8
	imgs := make([]*pibe.Image, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			img, err := s.Image("shared", pibe.BuildConfig{Defenses: pibe.AllDefenses})
			if err != nil {
				t.Errorf("Image: %v", err)
				return
			}
			imgs[i] = img
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if imgs[i] != imgs[0] {
			t.Fatalf("goroutine %d got a different image: singleflight built more than once", i)
		}
	}
}

func TestImageCaching(t *testing.T) {
	s := newTestSuite(t)
	a, err := s.Image("x", pibe.BuildConfig{Defenses: pibe.AllDefenses})
	if err != nil {
		t.Fatalf("Image: %v", err)
	}
	b, err := s.Image("x", pibe.BuildConfig{})
	if err != nil {
		t.Fatalf("Image: %v", err)
	}
	if a != b {
		t.Error("cache miss for identical name")
	}
}

// TestForEachSerialContract: the serial (effective workers == 1) path
// honors the same contract as the worker pool — every index runs even
// after an earlier one fails (cache warm-up must be identical for every
// worker count) and the lowest-index error is the one returned.
func TestForEachSerialContract(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var mu sync.Mutex
		ran := make(map[int]bool)
		s := &Suite{Workers: workers}
		err := s.ForEach(5, func(i int) error {
			mu.Lock()
			ran[i] = true
			mu.Unlock()
			switch i {
			case 1:
				return errors.New("early")
			case 3:
				return errors.New("late")
			}
			return nil
		})
		if err == nil || err.Error() != "early" {
			t.Errorf("workers=%d: err = %v, want the lowest-index error %q", workers, err, "early")
		}
		if len(ran) != 5 {
			t.Errorf("workers=%d: ran %d of 5 indices after a failure: %v", workers, len(ran), ran)
		}
	}
}

// TestTablesWrapKeepsTypedFault: when a table generator fails, the
// Tables() loop wraps the error with the table name using %w — the typed
// resilience fault underneath must stay reachable so macro callers can
// distinguish an injected transient blackout from a logic error.
func TestTablesWrapKeepsTypedFault(t *testing.T) {
	s := newTestSuite(t)
	inj := s.Sys.InjectFaults(77, pibe.FaultRates{Measure: 1}, 0)
	defer s.Sys.InjectFaults(0, pibe.FaultRates{}, 0)
	_, err := s.AllTables()
	if err == nil {
		t.Fatal("measurement blackout did not fail table generation")
	}
	if inj.Total() == 0 {
		t.Fatal("no faults fired; the scenario tested nothing")
	}
	if !strings.HasPrefix(err.Error(), "table ") {
		t.Errorf("wrap lost the table context: %q", err)
	}
	fe, ok := resilience.AsFault(err)
	if !ok {
		t.Fatalf("error chain %v lost the typed fault", err)
	}
	if fe.Kind != resilience.KindTransient {
		t.Errorf("fault kind = %v, want transient (injected measure fault)", fe.Kind)
	}
	if !errors.Is(err, fe) {
		t.Error("errors.Is cannot find the fault in the chain")
	}
}
