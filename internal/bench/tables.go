package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	pibe "repro"
	"repro/internal/prof"
)

// cfgAllDefNoOpt is the unoptimized comprehensive-defense configuration.
func cfgAllDefNoOpt() pibe.BuildConfig {
	return pibe.BuildConfig{Defenses: pibe.AllDefenses}
}

// cfgPIBEBaseline is the PGO-tuned, defense-free configuration of §8.1.
func (s *Suite) cfgPIBEBaseline() pibe.BuildConfig {
	return pibe.BuildConfig{
		Profile:  s.ProfLM,
		Optimize: pibe.OptimizeConfig{ICPBudget: BudgetICP, InlineBudget: 0.999999, LaxBudget: 0.99},
	}
}

// cfgOptimal is PIBE's best configuration for a defense set ("lax
// heuristics": 99.9999% budget with size heuristics disabled within the
// 99% budget).
func (s *Suite) cfgOptimal(d pibe.Defenses) pibe.BuildConfig {
	return pibe.BuildConfig{
		Profile:  s.ProfLM,
		Defenses: d,
		Optimize: pibe.OptimizeConfig{ICPBudget: BudgetICP, InlineBudget: 0.999999, LaxBudget: 0.99},
	}
}

// Table2 reproduces Table 2: the LTO and PIBE baselines.
func (s *Suite) Table2() (*Table, error) {
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	pb, err := s.Latencies("pibe-baseline", s.cfgPIBEBaseline())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "2",
		Title:  "Baselines: LTO vs PIBE-optimized (no defenses), latency in µs",
		Header: []string{"test", "LTO (µs)", "PIBE (µs)", "overhead"},
		Notes:  []string{"paper geomean: -6.6%"},
	}
	ovs := overheads(base, pb)
	for i := range base {
		t.Rows = append(t.Rows, []string{base[i].Bench, us(base[i].Micros), us(pb[i].Micros), pct(ovs[i])})
	}
	t.Rows = append(t.Rows, []string{"GEOMEAN", "-", "-", pct(ovs[len(ovs)-1])})
	return t, nil
}

// table3Benches is the retpoline-sensitive subset the paper's Table 3
// reports.
var table3Benches = []string{
	"null", "read", "write", "open", "stat", "fstat",
	"select_tcp", "udp", "tcp", "tcp_conn", "af_unix", "pipe",
}

// Table3 reproduces Table 3: retpoline overhead — unoptimized vs
// JumpSwitches vs static promotion at two budgets.
func (s *Suite) Table3() (*Table, error) {
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	retp := pibe.Defenses{Retpolines: true}
	cols := []struct {
		name string
		cfg  pibe.BuildConfig
	}{
		{"retp-noopt", pibe.BuildConfig{Defenses: retp}},
		{"jumpswitches", pibe.BuildConfig{Defenses: retp, JumpSwitches: true}},
		{"icp-99", pibe.BuildConfig{Profile: s.ProfLM, Defenses: retp, Optimize: pibe.OptimizeConfig{ICPBudget: 0.99}}},
		{"icp-99.999", pibe.BuildConfig{Profile: s.ProfLM, Defenses: retp, Optimize: pibe.OptimizeConfig{ICPBudget: 0.99999}}},
	}
	t := &Table{
		ID:     "3",
		Title:  "Retpoline overhead vs LTO baseline",
		Header: []string{"test", "LTO w/retp", "JumpSwitches", "+icp (99%)", "+icp (99.999%)"},
		Notes:  []string{"paper geomeans: 20.2% / 5.0% / 3.9% / 1.3%"},
	}
	baseIdx := indexLat(base)
	all := make([][]float64, len(cols))
	if err := s.ForEach(len(cols), func(i int) error {
		lat, err := s.Latencies(cols[i].name, cols[i].cfg)
		if err != nil {
			return err
		}
		idx := indexLat(lat)
		ovs := make([]float64, 0, len(table3Benches))
		for _, b := range table3Benches {
			ovs = append(ovs, pibe.Overhead(baseIdx[b], idx[b]))
		}
		all[i] = ovs
		return nil
	}); err != nil {
		return nil, err
	}
	for i, b := range table3Benches {
		row := []string{b}
		for _, ovs := range all {
			row = append(row, pct(ovs[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	gm := []string{"GEOMEAN"}
	for _, ovs := range all {
		gm = append(gm, pct(pibe.Geomean(ovs)))
	}
	t.Rows = append(t.Rows, gm)
	return t, nil
}

// Table4 reproduces Table 4: indirect call sites by number of observed
// targets.
func (s *Suite) Table4() (*Table, error) {
	dist := s.ProfLM.TargetDistribution()
	t := &Table{
		ID:     "4",
		Title:  "Indirect calls by number of targets invoked (LMBench profile)",
		Header: []string{"targets", "1", "2", "3", "4", "5", "6", ">6"},
		Notes:  []string{"paper: 517 / 109 / 34 / 23 / 6 / 12 / 22"},
	}
	row := []string{"indirect calls"}
	for k := 1; k <= 7; k++ {
		row = append(row, n(dist[k]))
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}

// table5Cols are the configurations of Table 5, all with every defense
// enabled.
func (s *Suite) table5Cols() []struct {
	name string
	cfg  pibe.BuildConfig
} {
	mk := func(inl, lax float64) pibe.BuildConfig {
		return pibe.BuildConfig{
			Profile:  s.ProfLM,
			Defenses: pibe.AllDefenses,
			Optimize: pibe.OptimizeConfig{ICPBudget: BudgetICP, InlineBudget: inl, LaxBudget: lax},
		}
	}
	return []struct {
		name string
		cfg  pibe.BuildConfig
	}{
		{"alldef-noopt", cfgAllDefNoOpt()},
		{"alldef-icp", pibe.BuildConfig{Profile: s.ProfLM, Defenses: pibe.AllDefenses,
			Optimize: pibe.OptimizeConfig{ICPBudget: BudgetICP}}},
		{"alldef-inl99", mk(0.99, 0)},
		{"alldef-inl999", mk(0.999, 0)},
		{"alldef-inl999999", mk(0.999999, 0)},
		{"alldef-lax", mk(0.999999, 0.99)},
	}
}

// Table5 reproduces Table 5: comprehensive defenses across optimization
// configurations.
func (s *Suite) Table5() (*Table, error) {
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	cols := s.table5Cols()
	t := &Table{
		ID:    "5",
		Title: "Overhead with all defenses, per optimization configuration",
		Header: []string{"test", "no-opt", "+icp(99.999%)", "+inl(99%)",
			"+inl(99.9%)", "+inl(99.9999%)", "lax heuristics"},
		Notes: []string{"paper geomeans: 149.1% / 133.1% / 28.0% / 15.9% / 12.7% / 10.6%"},
	}
	all := make([][]float64, len(cols))
	if err := s.ForEach(len(cols), func(i int) error {
		lat, err := s.Latencies(cols[i].name, cols[i].cfg)
		if err != nil {
			return err
		}
		all[i] = overheads(base, lat)
		return nil
	}); err != nil {
		return nil, err
	}
	for i := range base {
		row := []string{base[i].Bench}
		for _, ovs := range all {
			row = append(row, pct(ovs[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	gm := []string{"GEOMEAN"}
	for _, ovs := range all {
		gm = append(gm, pct(ovs[len(ovs)-1]))
	}
	t.Rows = append(t.Rows, gm)
	return t, nil
}

// Table6 reproduces Table 6: per-defense geomean, unoptimized vs PIBE.
func (s *Suite) Table6() (*Table, error) {
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "6",
		Title:  "LMBench geomean overhead per defense",
		Header: []string{"defense", "LTO", "PIBE"},
		Notes:  []string{"paper: none 0/-6.6, retpolines 20.2/1.3, ret-retpolines 63.4/3.7, LVI-CFI 61.9/1.8, all 149.1/10.6"},
	}
	rows := []struct {
		name string
		d    pibe.Defenses
	}{
		{"none", pibe.Defenses{}},
		{"retpolines", pibe.Defenses{Retpolines: true}},
		{"return retpolines", pibe.Defenses{RetRetpolines: true}},
		{"LVI-CFI", pibe.Defenses{LVICFI: true}},
		{"all", pibe.AllDefenses},
	}
	type pair struct{ lto, pibe float64 }
	res := make([]pair, len(rows))
	if err := s.ForEach(len(rows), func(i int) error {
		r := rows[i]
		var ltoCfg pibe.BuildConfig
		ltoCfg.Defenses = r.d
		pc := s.cfgOptimal(r.d)
		if r.name == "retpolines" {
			// For the retpolines-only configuration the paper applies
			// only indirect call promotion.
			pc.Optimize = pibe.OptimizeConfig{ICPBudget: BudgetICP}
		}
		ltoLat, err := s.Latencies("t6-lto-"+r.name, ltoCfg)
		if err != nil {
			return err
		}
		pibeLat, err := s.Latencies("t6-pibe-"+r.name, pc)
		if err != nil {
			return err
		}
		lo := overheads(base, ltoLat)
		po := overheads(base, pibeLat)
		res[i] = pair{lo[len(lo)-1], po[len(po)-1]}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, r := range rows {
		t.Rows = append(t.Rows, []string{r.name, pct(res[i].lto), pct(res[i].pibe)})
	}
	return t, nil
}

// Table8 reproduces Table 8: gadgets eliminated per budget.
func (s *Suite) Table8() (*Table, error) {
	t := &Table{
		ID:    "8",
		Title: "Indirect branch gadgets eliminated by PIBE per budget",
		Header: []string{"budget", "icall weight", "call sites", "call targets",
			"return weight", "return sites"},
		Notes: []string{"paper at 99%: 98.8% weight, 17.2% sites, 12.3% return sites; at 99.9999%: 100%/89.7%/86.1%"},
	}
	if err := s.warmBudgetImages(); err != nil {
		return nil, err
	}
	for _, b := range statsBudgets {
		img, err := s.budgetImage(b)
		if err != nil {
			return nil, err
		}
		icpR, inlR := img.Opt.ICP, img.Opt.Inline
		t.Rows = append(t.Rows, []string{
			budgetLabel(b),
			fmt.Sprintf("%s %s", u64(icpR.PromotedWeight), frac(icpR.PromotedWeight, icpR.TotalWeight)),
			fmt.Sprintf("%d %s", icpR.PromotedSites, frac(uint64(icpR.PromotedSites), uint64(icpR.CandidateSites))),
			fmt.Sprintf("%d %s", icpR.PromotedTargets, frac(uint64(icpR.PromotedTargets), uint64(icpR.CandidateTargets))),
			fmt.Sprintf("%s %.1f%%", u64(inlR.InlinedWeight), 100*inlR.ElidedReturnFraction()),
			fmt.Sprintf("%d %s", inlR.Inlined, frac(uint64(inlR.Inlined), uint64(inlR.Candidates))),
		})
	}
	return t, nil
}

// budgetImage builds the all-defenses image with the same budget for
// promotion and inlining, as Tables 8–12 use.
func (s *Suite) budgetImage(b float64) (*pibe.Image, error) {
	return s.Image(fmt.Sprintf("alldef-b%g", b), pibe.BuildConfig{
		Profile:  s.ProfLM,
		Defenses: pibe.AllDefenses,
		Optimize: pibe.OptimizeConfig{ICPBudget: b, InlineBudget: b},
	})
}

// statsBudgets are the three budgets Tables 8–11 report.
var statsBudgets = []float64{0.99, 0.999, 0.999999}

// warmBudgetImages builds the per-budget images of Tables 8–11 in
// parallel so the serial per-row loops below only hit the cache.
func (s *Suite) warmBudgetImages() error {
	return s.ForEach(len(statsBudgets), func(i int) error {
		_, err := s.budgetImage(statsBudgets[i])
		return err
	})
}

// Table9 reproduces Table 9: inlining weight blocked by each size
// heuristic.
func (s *Suite) Table9() (*Table, error) {
	t := &Table{
		ID:     "9",
		Title:  "Weight not elided by the inliner, per inhibitor",
		Header: []string{"budget", "overall", "Rule 2", "Rule 3", "other"},
		Notes:  []string{"paper at 99.9999%: Rule2 0.96%, Rule3 3.41%, other 1.9%"},
	}
	if err := s.warmBudgetImages(); err != nil {
		return nil, err
	}
	for _, b := range statsBudgets {
		img, err := s.budgetImage(b)
		if err != nil {
			return nil, err
		}
		r := img.Opt.Inline
		ov := float64(r.OverallWeight)
		pc := func(x int64) string {
			if ov == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%dm %.2f%%", x, 100*float64(x)/ov)
		}
		t.Rows = append(t.Rows, []string{
			budgetLabel(b),
			u64(r.OverallWeight),
			pc(r.BlockedRule2Weight), pc(r.BlockedRule3Weight), pc(r.BlockedOtherWeight),
		})
	}
	return t, nil
}

// Table10 reproduces Table 10: optimization candidates relative to the
// total static indirect branch census.
func (s *Suite) Table10() (*Table, error) {
	t := &Table{
		ID:     "10",
		Title:  "Promotion/inlining candidates vs total kernel branches",
		Header: []string{"budget", "icalls total", "icp candidates", "call sites total", "inline candidates"},
		Notes:  []string{"paper: icp 0.59-3.09% of 20927; inlining 1.14-7.5% of ~133k"},
	}
	if err := s.warmBudgetImages(); err != nil {
		return nil, err
	}
	for _, b := range statsBudgets {
		img, err := s.budgetImage(b)
		if err != nil {
			return nil, err
		}
		st := img.Stats()
		icpR, inlR := img.Opt.ICP, img.Opt.Inline
		// Candidates processed under this budget: promoted sites for
		// icp, attempted sites for inlining.
		t.Rows = append(t.Rows, []string{
			budgetLabel(b),
			n(st.IndirectCalls),
			fmt.Sprintf("%d (%s)", icpR.PromotedSites, frac(uint64(icpR.PromotedSites), uint64(st.IndirectCalls))),
			n(st.DirectCalls),
			fmt.Sprintf("%d (%s)", inlR.Candidates, frac(uint64(inlR.Candidates), uint64(st.DirectCalls))),
		})
	}
	return t, nil
}

// Table11 reproduces Table 11: forward edges protected/vulnerable.
func (s *Suite) Table11() (*Table, error) {
	t := &Table{
		ID:     "11",
		Title:  "Forward edges protected vs vulnerable (all defenses)",
		Header: []string{"statistic", "no-opt", "99%", "99.9%", "99.9999%"},
		Notes:  []string{"paper: Def 20927→26066, Vuln ICalls 41→170, Vuln IJumps 5"},
	}
	if err := s.warmBudgetImages(); err != nil {
		return nil, err
	}
	imgs := []*pibe.Image{}
	noopt, err := s.Image("alldef-noopt", cfgAllDefNoOpt())
	if err != nil {
		return nil, err
	}
	imgs = append(imgs, noopt)
	for _, b := range statsBudgets {
		img, err := s.budgetImage(b)
		if err != nil {
			return nil, err
		}
		imgs = append(imgs, img)
	}
	def := []string{"Def. ICalls"}
	vul := []string{"Vuln. ICalls"}
	jmp := []string{"Vuln. IJumps"}
	for _, img := range imgs {
		rep := img.SecurityReport()
		def = append(def, n(img.Census.DefendedICalls))
		vul = append(vul, n(rep.ICallsSpectreV2))
		jmp = append(jmp, n(rep.IJumpsSpectreV2))
	}
	t.Rows = append(t.Rows, def, vul, jmp)
	return t, nil
}

// Table12 reproduces Table 12: image size growth per configuration.
func (s *Suite) Table12() (*Table, error) {
	base, err := s.Image("lto-baseline", pibe.BuildConfig{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "12",
		Title:  "Image size increase due to optimization",
		Header: []string{"config", "budget", "abs size (vs LTO)", "img size (vs no-opt)"},
		Notes: []string{
			"paper all-defenses: abs 8.1/13.8/36.8%, img 4.8/10.3/32.7%",
			"runtime slab/dynamic memory not modelled in this reproduction",
		},
	}
	type cfgRow struct {
		label   string
		d       pibe.Defenses
		budgets []float64
	}
	rows := []cfgRow{
		{"w/all-defenses", pibe.AllDefenses, []float64{0.99, 0.999, 0.999999}},
		{"w/retpolines", pibe.Defenses{Retpolines: true}, []float64{0.99999}},
		{"w/LVI-CFI", pibe.Defenses{LVICFI: true}, []float64{0.99, 0.999999}},
		{"w/ret-retpolines", pibe.Defenses{RetRetpolines: true}, []float64{0.99, 0.999999}},
	}
	// Build every configuration in parallel first; the ordered assembly
	// loop below then only hits the cache.
	type build struct {
		name string
		cfg  pibe.BuildConfig
	}
	var builds []build
	for _, r := range rows {
		builds = append(builds, build{"t12-noopt-" + r.label, pibe.BuildConfig{Defenses: r.d}})
		for _, b := range r.budgets {
			builds = append(builds, build{fmt.Sprintf("t12-%s-b%g", r.label, b), pibe.BuildConfig{
				Profile:  s.ProfLM,
				Defenses: r.d,
				Optimize: pibe.OptimizeConfig{ICPBudget: b, InlineBudget: b},
			}})
		}
	}
	if err := s.ForEach(len(builds), func(i int) error {
		_, err := s.Image(builds[i].name, builds[i].cfg)
		return err
	}); err != nil {
		return nil, err
	}
	for _, r := range rows {
		nooptName := "t12-noopt-" + r.label
		noopt, err := s.Image(nooptName, pibe.BuildConfig{Defenses: r.d})
		if err != nil {
			return nil, err
		}
		for _, b := range r.budgets {
			img, err := s.Image(fmt.Sprintf("t12-%s-b%g", r.label, b), pibe.BuildConfig{
				Profile:  s.ProfLM,
				Defenses: r.d,
				Optimize: pibe.OptimizeConfig{ICPBudget: b, InlineBudget: b},
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				r.label,
				budgetLabel(b),
				pct(float64(img.Size()-base.Size()) / float64(base.Size())),
				pct(float64(img.Size()-noopt.Size()) / float64(noopt.Size())),
			})
		}
	}
	return t, nil
}

// budgetLabel renders a budget fraction as the paper writes it ("99.999%").
func budgetLabel(b float64) string {
	v := strconv.FormatFloat(b*100, 'f', 6, 64)
	v = strings.TrimRight(v, "0")
	v = strings.TrimRight(v, ".")
	return v + "%"
}

// indexLat maps benchmark name to measured latency.
func indexLat(ls []pibe.Latency) map[string]float64 {
	m := make(map[string]float64, len(ls))
	for _, l := range ls {
		m[l.Bench] = l.Micros
	}
	return m
}

// CandidateOverlap computes how much of one profile's hot candidate
// weight (at the given budget) is also hot in another profile — the §8.4
// workload-robustness statistic.
func CandidateOverlap(a, b *pibe.Profile, budget float64, indirect bool) float64 {
	sel := func(p *prof.Profile) map[string]uint64 {
		type item struct {
			key string
			w   uint64
		}
		var items []item
		for id, s := range p.Sites {
			if s.Indirect() != indirect {
				continue
			}
			if indirect {
				for _, tgt := range s.SortedTargets() {
					items = append(items, item{fmt.Sprintf("%d:%s", id, tgt.Name), tgt.Count})
				}
			} else {
				items = append(items, item{fmt.Sprintf("%d", id), s.Count})
			}
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].w != items[j].w {
				return items[i].w > items[j].w
			}
			return items[i].key < items[j].key
		})
		wi := make([]prof.WeightedItem, len(items))
		for i, it := range items {
			wi[i] = prof.WeightedItem{Index: i, Weight: it.w}
		}
		keep := prof.CumulativeBudget(wi, budget, false)
		out := make(map[string]uint64, keep)
		for _, it := range items[:keep] {
			out[it.key] = it.w
		}
		return out
	}
	sa, sb := sel(a.Raw()), sel(b.Raw())
	var total, shared uint64
	for k, w := range sa {
		total += w
		if _, ok := sb[k]; ok {
			shared += w
		}
	}
	if total == 0 {
		return 0
	}
	return float64(shared) / float64(total)
}

// Robustness reproduces §8.4: optimizing with the Apache profile and
// measuring LMBench, plus the default-LLVM-inliner comparison and the
// candidate-weight overlap.
func (s *Suite) Robustness() (*Table, error) {
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "robustness",
		Title:  "Workload robustness (§8.4): LMBench geomean with all defenses",
		Header: []string{"configuration", "geomean"},
		Notes:  []string{"paper: matched profile 10.6%, Apache profile 22.5%, default LLVM inliner 100.2%, no-opt 149.1%"},
	}
	add := func(label, name string, cfg pibe.BuildConfig) error {
		lat, err := s.Latencies(name, cfg)
		if err != nil {
			return err
		}
		ovs := overheads(base, lat)
		t.Rows = append(t.Rows, []string{label, pct(ovs[len(ovs)-1])})
		return nil
	}
	if err := add("no optimization", "alldef-noopt", cfgAllDefNoOpt()); err != nil {
		return nil, err
	}
	if err := add("LMBench profile (matched)", "alldef-lax", s.table5Cols()[5].cfg); err != nil {
		return nil, err
	}
	apCfg := s.cfgOptimal(pibe.AllDefenses)
	apCfg.Profile = s.ProfApache
	if err := add("Apache profile (mismatched)", "alldef-apacheprof", apCfg); err != nil {
		return nil, err
	}
	llvmCfg := pibe.BuildConfig{
		Profile:  s.ProfLM,
		Defenses: pibe.AllDefenses,
		Optimize: pibe.OptimizeConfig{InlineBudget: 0.999999, UseLLVMInliner: true},
	}
	if err := add("default LLVM inliner", "alldef-llvminline", llvmCfg); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("candidate weight shared LMBench∩Apache at 99%% budget: icp %.0f%%, inlining %.0f%% (paper: 58%% / 67%%)",
			100*CandidateOverlap(s.ProfLM, s.ProfApache, 0.99, true),
			100*CandidateOverlap(s.ProfLM, s.ProfApache, 0.99, false)))
	return t, nil
}
