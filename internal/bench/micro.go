package bench

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/harden"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Table 1 measures the per-branch cost of each mitigation with the
// paper's microbenchmark methodology: an empty callee, everything hot in
// cache, measured as the delta in ticks per call against the
// uninstrumented binary; plus the slowdown on a SPEC-CPU2006-like
// userspace application.

const microIters = 2048

// buildMicro returns a module with three benchmark entries that each
// perform microIters calls of one kind per run: direct, indirect
// (register), and virtual (indirect through a table load).
func buildMicro() (*ir.Module, ir.SiteID, ir.SiteID) {
	m := ir.NewModule()
	callee := ir.NewFunction(m, "callee", 0)
	callee.Ret()

	d := ir.NewFunction(m, "bench_dcall", 0)
	d.Jmp("loop")
	d.NewBlock("loop")
	d.Call("callee", 0)
	d.BrLoop(microIters, "loop", "out")
	d.NewBlock("out")
	d.Ret()

	ic := ir.NewFunction(m, "bench_icall", 0)
	ic.Jmp("loop")
	ic.NewBlock("loop")
	icSite, reg := ic.Resolve()
	ic.ICall(icSite, reg, 0)
	ic.BrLoop(microIters, "loop", "out")
	ic.NewBlock("out")
	ic.Ret()

	// A virtual call loads the function pointer from an object's vtable
	// (one extra dependent load) before the indirect call.
	vc := ir.NewFunction(m, "bench_vcall", 0)
	vc.Jmp("loop")
	vc.NewBlock("loop")
	vc.Load(2)
	vcSite, vreg := vc.Resolve()
	vc.ICall(vcSite, vreg, 0)
	vc.BrLoop(microIters, "loop", "out")
	vc.NewBlock("out")
	vc.Ret()

	return m, icSite, vcSite
}

// measureMicro returns cycles per call for the three branch kinds under
// one hardening configuration.
func measureMicro(cfg harden.Config) (dcall, icall, vcall float64, err error) {
	mod, icSite, vcSite := buildMicro()
	if _, err := harden.Apply(mod, cfg); err != nil {
		return 0, 0, 0, err
	}
	prog, err := interp.Compile(mod)
	if err != nil {
		return 0, 0, 0, err
	}
	res := interp.NewResolver()
	d, err := interp.NewDist([]int{prog.FuncIndex("callee")}, []uint64{1})
	if err != nil {
		return 0, 0, 0, err
	}
	res.Set(icSite, d)
	res.Set(vcSite, d)

	measure := func(entry string) (float64, error) {
		mc := interp.NewMachine(prog, 7)
		mc.Res = res
		mc.CPU = cpu.New(cpu.DefaultParams())
		// Warm caches and predictors, then measure.
		if err := mc.Run(entry); err != nil {
			return 0, err
		}
		mc.CPU.Reset()
		if err := mc.Run(entry); err != nil {
			return 0, err
		}
		return float64(mc.CPU.Cycles) / microIters, nil
	}
	if dcall, err = measure("bench_dcall"); err != nil {
		return
	}
	if icall, err = measure("bench_icall"); err != nil {
		return
	}
	vcall, err = measure("bench_vcall")
	return
}

// buildSpecApp generates a SPEC-CPU2006-like userspace program: phases of
// compute loops with moderate call density (≈1 return per ~55 cycles)
// and occasional virtual dispatch.
func buildSpecApp() (*ir.Module, []ir.SiteID) {
	m := ir.NewModule()
	var sites []ir.SiteID

	leaf := ir.NewFunction(m, "leaf_compute", 1)
	leaf.ALUCycles(4)
	leaf.ALU(3)
	leaf.Ret()

	for v := 0; v < 3; v++ {
		f := ir.NewFunction(m, fmt.Sprintf("virt_%d", v), 1)
		f.ALUCycles(3)
		f.ALU(2)
		f.Ret()
	}

	const phases = 8
	for p := 0; p < phases; p++ {
		f := ir.NewFunction(m, fmt.Sprintf("phase_%d", p), 0)
		f.ALU(6)
		f.Jmp("loop")
		f.NewBlock("loop")
		// ~40 cycles of work, one helper call, and a virtual dispatch
		// every 4th iteration (modelled as a site with p=0.25 use).
		for i := 0; i < 12; i++ {
			f.ALUCycles(3)
		}
		f.Call("leaf_compute", 1)
		f.BrProb(0.25, "virt", "cont")
		f.NewBlock("virt")
		site, reg := f.Resolve()
		f.ICall(site, reg, 1)
		sites = append(sites, site)
		f.Jmp("cont")
		f.NewBlock("cont")
		f.BrLoop(64, "loop", "out")
		f.NewBlock("out")
		f.Ret()
	}

	main := ir.NewFunction(m, "spec_main", 0)
	main.Jmp("loop")
	main.NewBlock("loop")
	for p := 0; p < phases; p++ {
		main.Call(fmt.Sprintf("phase_%d", p), 0)
	}
	main.BrLoop(16, "loop", "out")
	main.NewBlock("out")
	main.Ret()
	return m, sites
}

// measureSpec returns total cycles for one run of the SPEC-like app under
// a hardening configuration.
func measureSpec(cfg harden.Config) (int64, error) {
	mod, sites := buildSpecApp()
	if _, err := harden.Apply(mod, cfg); err != nil {
		return 0, err
	}
	prog, err := interp.Compile(mod)
	if err != nil {
		return 0, err
	}
	res := interp.NewResolver()
	idx := []int{prog.FuncIndex("virt_0"), prog.FuncIndex("virt_1"), prog.FuncIndex("virt_2")}
	for _, s := range sites {
		d, err := interp.NewDist(idx, []uint64{6, 3, 1})
		if err != nil {
			return 0, err
		}
		res.Set(s, d)
	}
	mc := interp.NewMachine(prog, 11)
	mc.Res = res
	mc.CPU = cpu.New(cpu.DefaultParams())
	if err := mc.Run("spec_main"); err != nil {
		return 0, err
	}
	mc.CPU.Reset()
	if err := mc.Run("spec_main"); err != nil {
		return 0, err
	}
	return mc.CPU.Cycles, nil
}

// Table1 reproduces Table 1: per-branch overhead in ticks per defense
// plus the SPEC-like slowdown.
func (s *Suite) Table1() (*Table, error) {
	type row struct {
		name  string
		cfg   harden.Config
		paper string // paper's (dcall, icall, vcall, spec) for reference
	}
	rows := []row{
		{"uninstrumented", harden.Config{}, "0/0/0/0.0%"},
		{"LLVM-CFI", harden.Config{LLVMCFI: true}, "2/3/1/-0.4%"},
		{"stackprotector", harden.Config{StackProtector: true}, "4/4/4/1.0%"},
		{"safestack", harden.Config{SafeStack: true}, "2/1/1/0.6%"},
		{"LVI-CFI", harden.Config{LVICFI: true}, "11/20/23/29.4%"},
		{"retpolines", harden.Config{Retpolines: true}, "1/21/21/16.1%"},
		{"retpolines+LVI-CFI", harden.Config{Retpolines: true, LVICFI: true}, "14/53/54/44.3%"},
		{"return retpolines", harden.Config{RetRetpolines: true}, "16/16/16/23.2%"},
		{"all defenses", harden.Config{Retpolines: true, RetRetpolines: true, LVICFI: true}, "32/73/71/62.0%"},
	}
	t := &Table{
		ID:     "1",
		Title:  "Overhead of mitigations in ticks per call kind and SPEC-like slowdown",
		Header: []string{"defense", "dcall", "icall", "vcall", "spec-like", "paper(d/i/v/spec)"},
		Notes: []string{
			"ticks are deltas vs the uninstrumented binary, like the paper's Table 1",
			"spec-like: synthetic CPU2006-shaped userspace app (see DESIGN.md)",
		},
	}
	baseD, baseI, baseV, err := measureMicro(harden.Config{})
	if err != nil {
		return nil, err
	}
	baseSpec, err := measureSpec(harden.Config{})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		d, i, v, err := measureMicro(r.cfg)
		if err != nil {
			return nil, err
		}
		spec, err := measureSpec(r.cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			r.name,
			f1(d - baseD), f1(i - baseI), f1(v - baseV),
			pct(float64(spec-baseSpec) / float64(baseSpec)),
			r.paper,
		})
	}
	return t, nil
}
