package bench

import (
	"fmt"

	pibe "repro"
	"repro/internal/workload"
)

// Table7 reproduces Table 7: application-benchmark throughput degradation
// (Nginx, Apache, DBench) per defense configuration, unoptimized vs PIBE.
//
// Throughput is modelled as requests/second: each request spends a fixed
// amount of userspace cycles (constant across kernel configurations,
// derived from the app's kernel share on the LTO baseline) plus the
// measured kernel cycles for its syscall script. PIBE images are
// optimized with an LMBench training workload, as in the paper.
func (s *Suite) Table7() (*Table, error) {
	t := &Table{
		ID:     "7",
		Title:  "Throughput degradation vs LTO baseline (optimized with LMBench profile)",
		Header: []string{"benchmark", "configuration", "vanilla", "no-opt", "PIBE"},
		Notes: []string{
			"paper nginx all-defenses: -51.7% / -6.0%; apache: -39.3% / -7.9%; dbench: -45.6% / -6.7%",
		},
	}
	apps := []pibe.Workload{pibe.Nginx, pibe.Apache, pibe.DBench}
	defCfgs := []struct {
		label string
		d     pibe.Defenses
	}{
		{"w/retpolines", pibe.Defenses{Retpolines: true}},
		{"w/ret-retpolines", pibe.Defenses{RetRetpolines: true}},
		{"w/LVI-CFI", pibe.Defenses{LVICFI: true}},
		{"w/all-defenses", pibe.AllDefenses},
	}
	baseImg, err := s.Image("lto-baseline", pibe.BuildConfig{})
	if err != nil {
		return nil, err
	}
	for _, app := range apps {
		baseKern, err := baseImg.MeasureRequestCycles(app)
		if err != nil {
			return nil, err
		}
		share := workload.UserShare(app)
		userCycles := baseKern * share / (1 - share)
		ghz := pibe.CPUFrequencyGHz()
		throughput := func(kern float64) float64 {
			return ghz * 1e9 / (kern + userCycles)
		}
		baseTp := throughput(baseKern)
		unit := "req/sec"
		if app == pibe.DBench {
			unit = "MB/sec"
		}
		for i, dc := range defCfgs {
			noopt, err := s.Image("t7-noopt-"+dc.d.String(), pibe.BuildConfig{Defenses: dc.d})
			if err != nil {
				return nil, err
			}
			optCfg := s.cfgOptimal(dc.d)
			if dc.label == "w/retpolines" {
				optCfg.Optimize = pibe.OptimizeConfig{ICPBudget: BudgetICP}
			}
			opt, err := s.Image("t7-opt-"+dc.d.String(), optCfg)
			if err != nil {
				return nil, err
			}
			kernNoopt, err := noopt.MeasureRequestCycles(app)
			if err != nil {
				return nil, err
			}
			kernOpt, err := opt.MeasureRequestCycles(app)
			if err != nil {
				return nil, err
			}
			vanilla := ""
			if i == 0 {
				vanilla = fmt.Sprintf("%.0f %s", baseTp, unit)
			}
			t.Rows = append(t.Rows, []string{
				app.String(), dc.label, vanilla,
				pct(throughput(kernNoopt)/baseTp - 1),
				pct(throughput(kernOpt)/baseTp - 1),
			})
		}
	}
	return t, nil
}

// AllTables runs every experiment in paper order.
func (s *Suite) AllTables() ([]*Table, error) {
	type gen struct {
		name string
		fn   func() (*Table, error)
	}
	gens := []gen{
		{"1", s.Table1}, {"2", s.Table2}, {"3", s.Table3}, {"4", s.Table4},
		{"5", s.Table5}, {"6", s.Table6}, {"7", s.Table7},
		{"robustness", s.Robustness},
		{"8", s.Table8}, {"9", s.Table9}, {"10", s.Table10},
		{"11", s.Table11}, {"12", s.Table12},
		{"ablations", s.Ablations},
	}
	var out []*Table
	for _, g := range gens {
		t, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("table %s: %w", g.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// TableByID runs one experiment by its paper table number (or
// "robustness").
func (s *Suite) TableByID(id string) (*Table, error) {
	switch id {
	case "1":
		return s.Table1()
	case "2":
		return s.Table2()
	case "3":
		return s.Table3()
	case "4":
		return s.Table4()
	case "5":
		return s.Table5()
	case "6":
		return s.Table6()
	case "7":
		return s.Table7()
	case "8":
		return s.Table8()
	case "9":
		return s.Table9()
	case "10":
		return s.Table10()
	case "11":
		return s.Table11()
	case "12":
		return s.Table12()
	case "robustness":
		return s.Robustness()
	case "ablations":
		return s.Ablations()
	default:
		return nil, fmt.Errorf("bench: unknown table %q (1-12, robustness, ablations)", id)
	}
}
