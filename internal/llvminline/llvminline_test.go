package llvminline

import (
	"testing"

	"repro/internal/inlinecost"
	"repro/internal/ir"
	"repro/internal/prof"
)

// buildModule: caller calls tiny (cost < cold threshold), midsize (cost
// between cold and hot thresholds) and huge (cost > hot threshold).
func buildModule(t *testing.T) (*ir.Module, *prof.Profile, map[string]ir.SiteID) {
	t.Helper()
	m := ir.NewModule()
	tiny := ir.NewFunction(m, "tiny", 0)
	tiny.ALU(10).Ret() // cost 55
	mid := ir.NewFunction(m, "mid", 0)
	mid.ALU(199).Ret() // cost 1000
	huge := ir.NewFunction(m, "huge", 0)
	huge.ALU(799).Ret() // cost 4000

	caller := ir.NewFunction(m, "caller", 0)
	sites := map[string]ir.SiteID{
		"tiny": caller.Call("tiny", 0),
		"mid":  caller.Call("mid", 0),
		"huge": caller.Call("huge", 0),
	}
	caller.Ret()
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if c := inlinecost.Function(m.Func("mid")); c != 1000 {
		t.Fatalf("mid cost = %d", c)
	}
	p := prof.New()
	p.AddDirect(sites["tiny"], "caller", "tiny", 10)
	p.AddDirect(sites["mid"], "caller", "mid", 1000)
	p.AddDirect(sites["huge"], "caller", "huge", 1000)
	return m, p, sites
}

func TestThresholdsRespectHotness(t *testing.T) {
	m, p, sites := buildModule(t)
	// Budget 0.99 makes mid and huge hot (weight 1000 each of 2010);
	// tiny (weight 10) stays cold but is below the cold threshold.
	res, err := Run(m, p, Options{Budget: 0.99})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// tiny inlined (cold but small), mid inlined (hot, under 3000),
	// huge not (over the hot threshold).
	if res.Inlined != 2 {
		t.Errorf("Inlined = %d, want 2", res.Inlined)
	}
	if _, _, ok := findSite(m.Func("caller"), sites["huge"]); !ok {
		t.Error("huge was inlined despite exceeding the hot threshold")
	}
	if _, _, ok := findSite(m.Func("caller"), sites["mid"]); ok {
		t.Error("hot mid-size callee was not inlined")
	}
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("post Verify: %v", err)
	}
}

func TestColdSiteUsesColdThreshold(t *testing.T) {
	m, p, sites := buildModule(t)
	// Zero budget: nothing is hot; only tiny (cost 55 < 225) inlines.
	res, err := Run(m, p, Options{Budget: 0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inlined != 1 {
		t.Errorf("Inlined = %d, want 1 (tiny only)", res.Inlined)
	}
	if _, _, ok := findSite(m.Func("caller"), sites["mid"]); !ok {
		t.Error("cold mid-size callee was inlined")
	}
}

func TestInlineHintRaisesThreshold(t *testing.T) {
	m, p, sites := buildModule(t)
	m.Func("mid").Attrs |= ir.AttrInlineHint
	res, err := Run(m, p, Options{Budget: 0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// tiny + hinted mid.
	if res.Inlined != 2 {
		t.Errorf("Inlined = %d, want 2", res.Inlined)
	}
	if _, _, ok := findSite(m.Func("caller"), sites["mid"]); ok {
		t.Error("hinted mid was not inlined")
	}
}

func TestBottomUpOrderInlinesTransitively(t *testing.T) {
	// c -> b -> a, all tiny: bottom-up visits a's callers first, so b
	// absorbs a, then c absorbs the combined body.
	m := ir.NewModule()
	a := ir.NewFunction(m, "a", 0)
	a.ALU(2).Ret()
	b := ir.NewFunction(m, "b", 0)
	sa := b.Call("a", 0)
	b.Ret()
	c := ir.NewFunction(m, "c", 0)
	sb := c.Call("b", 0)
	c.Ret()
	p := prof.New()
	p.AddDirect(sa, "b", "a", 5)
	p.AddDirect(sb, "c", "b", 5)
	res, err := Run(m, p, Options{Budget: 0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inlined < 2 {
		t.Errorf("Inlined = %d, want >= 2", res.Inlined)
	}
	calls := 0
	m.Func("c").ForEachInstr(func(blk *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpCall {
			calls++
		}
	})
	if calls != 0 {
		t.Errorf("c still contains %d calls", calls)
	}
}

func TestNoInlineRespected(t *testing.T) {
	m, p, sites := buildModule(t)
	m.Func("tiny").Attrs |= ir.AttrNoInline
	res, err := Run(m, p, Options{Budget: 0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inlined != 0 {
		t.Errorf("Inlined = %d, want 0", res.Inlined)
	}
	if _, _, ok := findSite(m.Func("caller"), sites["tiny"]); !ok {
		t.Error("noinline tiny was inlined")
	}
}

func findSite(f *ir.Function, site ir.SiteID) (int, int, bool) {
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			if b.Instrs[ii].Op == ir.OpCall && b.Instrs[ii].Site == site {
				return bi, ii, true
			}
		}
	}
	return 0, 0, false
}
