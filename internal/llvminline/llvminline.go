// Package llvminline reimplements the shape of LLVM's default
// profile-guided inliner, as the baseline PIBE is compared against in
// §8.4 of the paper:
//
//	"The default inliner's bottom-up approach guarantees that it will
//	 visit all call sites in the kernel call-graph. However, its
//	 inlining decisions are made solely based on size complexity and
//	 inline hints. [...] the inlining order is irrespective of profiling
//	 weight, which leads to colder calls inhibiting more beneficial
//	 inlining."
//
// Concretely: functions are visited in post-order (callees before
// callers); within a function, call sites are visited in layout order;
// a site is inlined if the callee's cost is below the hot threshold
// (3000) when the site falls inside the optimization budget, or below
// the cold threshold (225) otherwise; InlineHint raises a cold site to
// the hot threshold. The same per-caller growth cap applies as in PIBE's
// Rule 2 so images stay comparable.
package llvminline

import (
	"fmt"

	"repro/internal/callgraph"
	"repro/internal/inline"
	"repro/internal/inlinecost"
	"repro/internal/ir"
	"repro/internal/prof"
)

// Thresholds mirroring LLVM's defaults.
const (
	HotThreshold  = 3000
	ColdThreshold = 225
)

// Options configures the baseline inliner.
type Options struct {
	// Budget classifies sites as hot the same way PIBE's Rule 1 does;
	// the visit order, however, ignores it.
	Budget float64
	// ExtraWeights supplies counts for post-profiling sites (promoted
	// calls), as for the PIBE inliner.
	ExtraWeights map[ir.SiteID]uint64
}

// Result summarizes the run.
type Result struct {
	Candidates    int
	Inlined       int
	InlinedWeight uint64
	TotalWeight   uint64
}

// Run applies the baseline policy to the module in place.
func Run(mod *ir.Module, p *prof.Profile, opts Options) (*Result, error) {
	res := &Result{}

	weight := func(in *ir.Instr) uint64 {
		if w, ok := opts.ExtraWeights[in.Site]; ok {
			return w
		}
		if s := p.Sites[in.Orig]; s != nil && !s.Indirect() {
			return s.Count
		}
		return 0
	}

	// Classify hotness by budget over the cumulative direct-call count.
	var weights []prof.WeightedItem
	for _, f := range mod.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == ir.OpCall {
				if w := weight(in); w > 0 {
					weights = append(weights, prof.WeightedItem{Index: len(weights), Weight: w})
					res.TotalWeight += w
					res.Candidates++
				}
			}
		})
	}
	hotFloor := uint64(0)
	if len(weights) > 0 && opts.Budget > 0 {
		// Sort hottest-first for the budget cut.
		for i := 0; i < len(weights); i++ {
			for j := i + 1; j < len(weights); j++ {
				if weights[j].Weight > weights[i].Weight {
					weights[i], weights[j] = weights[j], weights[i]
				}
			}
		}
		n := prof.CumulativeBudget(weights, opts.Budget, false)
		if n > 0 {
			hotFloor = weights[n-1].Weight
		}
	}

	g := callgraph.Build(mod, p)
	order := g.PostOrder()

	added := make(map[string]int64)
	cost := make(map[string]int64)
	costOf := func(f *ir.Function) int64 {
		if c, ok := cost[f.Name]; ok {
			return c
		}
		c := inlinecost.Function(f)
		cost[f.Name] = c
		return c
	}

	ilSeq := 0
	for _, fname := range order {
		f := mod.Func(fname)
		if f == nil || f.Attrs.Has(ir.AttrOptNone) {
			continue
		}
		// Layout-order scan; inlining splices blocks after the current
		// one, so a simple re-scan loop keeps indices valid.
		for {
			bi, ii := -1, -1
			var site *ir.Instr
		scan:
			for b := range f.Blocks {
				for i := range f.Blocks[b].Instrs {
					in := &f.Blocks[b].Instrs[i]
					if in.Op != ir.OpCall || in.Asm {
						continue
					}
					callee := mod.Func(in.Callee)
					if callee == nil || callee == f ||
						callee.Attrs.Has(ir.AttrNoInline) || callee.Attrs.Has(ir.AttrOptNone) {
						continue
					}
					w := weight(in)
					threshold := int64(ColdThreshold)
					if (hotFloor > 0 && w >= hotFloor) || callee.Attrs.Has(ir.AttrInlineHint) {
						threshold = HotThreshold
					}
					cc := costOf(callee)
					if cc > threshold {
						continue
					}
					if added[f.Name]+cc > inlinecost.Rule2Threshold {
						continue
					}
					bi, ii, site = b, i, in
					break scan
				}
			}
			if bi < 0 {
				break
			}
			calleeName := site.Callee
			w := weight(site)
			tag := fmt.Sprintf("llvm%d", ilSeq)
			ilSeq++
			if _, err := inline.Apply(mod, f, bi, ii, tag); err != nil {
				return nil, err
			}
			res.Inlined++
			res.InlinedWeight += w
			cc := cost[calleeName]
			added[f.Name] += cc
			if c, ok := cost[f.Name]; ok {
				cost[f.Name] = c + cc
			}
		}
	}
	return res, nil
}
