package diffcheck

import (
	"testing"

	"repro/internal/harden"
	"repro/internal/interp"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// TestValidateEngines runs the engine-vs-engine gate over the full
// workload corpus: the threaded-code tier must be observationally and
// cycle-exactly identical to the interpreter on the generated kernel.
func TestValidateEngines(t *testing.T) {
	k, err := kernel.Generate(kernel.Config{Seed: 3})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	prog, err := interp.Compile(k.Mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rep, err := ValidateEngines(k, prog, Config{
		Flavors: []workload.Flavor{workload.LMBench, workload.Apache, workload.Nginx, workload.DBench},
		Seed:    41,
		Runs:    2,
	})
	if err != nil {
		t.Fatalf("ValidateEngines: %v", err)
	}
	if rep.Entries == 0 || rep.Runs == 0 {
		t.Fatalf("empty validation: %+v", rep)
	}
	// The digest is deterministic for a fixed seed; equal reports from
	// repeated validations prove the comparison itself is stable.
	rep2, err := ValidateEngines(k, prog, Config{
		Flavors: []workload.Flavor{workload.LMBench, workload.Apache, workload.Nginx, workload.DBench},
		Seed:    41,
		Runs:    2,
	})
	if err != nil {
		t.Fatalf("ValidateEngines (repeat): %v", err)
	}
	if rep.Digest != rep2.Digest || rep.Entries != rep2.Entries || rep.Runs != rep2.Runs {
		t.Fatalf("validation not deterministic: %+v vs %+v", rep, rep2)
	}

	// Nil inputs are configuration faults, not panics.
	if _, err := ValidateEngines(nil, prog, Config{}); err == nil {
		t.Fatal("nil kernel accepted")
	}
	if _, err := ValidateEngines(k, nil, Config{}); err == nil {
		t.Fatal("nil program accepted")
	}
}

// TestValidateEnginesNewBackends re-runs the engine-vs-engine gate on a
// kernel hardened under each post-2021 backend: the compiled tier must
// stay cycle-exact when every surviving indirect branch carries a
// FineIBT check, a PAC sign/auth pair, or a VeriFence lfence.
func TestValidateEnginesNewBackends(t *testing.T) {
	for _, cfg := range []harden.Config{
		{FineIBT: true},
		{PACCFI: true},
		{VeriFence: true},
	} {
		t.Run(cfg.String(), func(t *testing.T) {
			k, err := kernel.Generate(kernel.Config{Seed: 3})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if _, err := harden.Apply(k.Mod, cfg); err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if err := harden.CheckInvariants(k.Mod, cfg, false); err != nil {
				t.Fatalf("CheckInvariants: %v", err)
			}
			prog, err := interp.Compile(k.Mod)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			rep, err := ValidateEngines(k, prog, Config{
				Flavors: []workload.Flavor{workload.LMBench, workload.Apache},
				Seed:    59,
				Runs:    2,
				Harden:  cfg,
			})
			if err != nil {
				t.Fatalf("ValidateEngines(%s): %v", cfg, err)
			}
			if rep.Entries == 0 || rep.Runs == 0 {
				t.Fatalf("empty validation: %+v", rep)
			}
		})
	}
}
