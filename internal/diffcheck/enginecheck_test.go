package diffcheck

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// TestValidateEngines runs the engine-vs-engine gate over the full
// workload corpus: the threaded-code tier must be observationally and
// cycle-exactly identical to the interpreter on the generated kernel.
func TestValidateEngines(t *testing.T) {
	k, err := kernel.Generate(kernel.Config{Seed: 3})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	prog, err := interp.Compile(k.Mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rep, err := ValidateEngines(k, prog, Config{
		Flavors: []workload.Flavor{workload.LMBench, workload.Apache, workload.Nginx, workload.DBench},
		Seed:    41,
		Runs:    2,
	})
	if err != nil {
		t.Fatalf("ValidateEngines: %v", err)
	}
	if rep.Entries == 0 || rep.Runs == 0 {
		t.Fatalf("empty validation: %+v", rep)
	}
	// The digest is deterministic for a fixed seed; equal reports from
	// repeated validations prove the comparison itself is stable.
	rep2, err := ValidateEngines(k, prog, Config{
		Flavors: []workload.Flavor{workload.LMBench, workload.Apache, workload.Nginx, workload.DBench},
		Seed:    41,
		Runs:    2,
	})
	if err != nil {
		t.Fatalf("ValidateEngines (repeat): %v", err)
	}
	if rep.Digest != rep2.Digest || rep.Entries != rep2.Entries || rep.Runs != rep2.Runs {
		t.Fatalf("validation not deterministic: %+v vs %+v", rep, rep2)
	}

	// Nil inputs are configuration faults, not panics.
	if _, err := ValidateEngines(nil, prog, Config{}); err == nil {
		t.Fatal("nil kernel accepted")
	}
	if _, err := ValidateEngines(k, nil, Config{}); err == nil {
		t.Fatal("nil program accepted")
	}
}
