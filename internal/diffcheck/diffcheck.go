// Package diffcheck differentially validates a candidate optimized image
// against a reference image before the fleet promotes it.
//
// PIBE's safety argument (§4) is that ICP and inlining only *eliminate*
// indirect branches; they must not change what the kernel does or expose
// an unhardened branch. The fleet loop rebuilds images from live,
// possibly skewed aggregates, so this package re-checks both halves of
// that argument on every candidate:
//
//  1. Structural: the candidate IR still verifies, and every surviving
//     indirect branch carries the configured defense
//     (harden.CheckInvariants) — no transformation dropped a hardening
//     site.
//  2. Behavioural: the candidate and the reference (unoptimized-but-
//     hardened) image are executed over the workload corpus under the
//     interpreter with identical seeds, and their observable results must
//     match — per-run trap status and the profile-visible sequence of
//     indirect-target resolutions (which original site resolved to which
//     function). The optimization passes reorder *dispatch* — promote it,
//     inline it — but never *resolution*: promoted chains and inlined
//     bodies key their resolves by the original site ID and consume no
//     extra RNG draws, so any control-flow miscompilation desynchronizes
//     the resolution stream and surfaces as a digest mismatch.
//
// Any violation is a structured resilience.FaultError in PhasePromote:
// KindUnhardenedSite for a dropped defense, KindDivergence for any
// behavioural or structural mismatch.
package diffcheck

import (
	"fmt"
	"hash"
	"hash/fnv"
	"sort"

	"repro/internal/cpu"
	"repro/internal/harden"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/kernel"
	"repro/internal/resilience"
	"repro/internal/workload"
)

// Config selects the validation corpus and the invariants to enforce.
type Config struct {
	// Flavors is the workload corpus both images execute; empty means
	// LMBench. Duplicates are ignored.
	Flavors []workload.Flavor
	// Seed derives the per-benchmark execution seeds. The same seed is
	// used on both images, which is what makes the comparison exact.
	Seed int64
	// Runs is the number of paired executions per (flavor, benchmark)
	// cell (default 3).
	Runs int
	// Harden is the defense configuration both images were hardened
	// with; it parameterizes the invariant check.
	Harden harden.Config
	// JumpSwitches relaxes the forward-edge invariant: that baseline
	// deliberately leaves indirect calls bare for its runtime hook.
	JumpSwitches bool
}

// Report summarizes a passed validation.
type Report struct {
	// Entries is the number of (flavor, benchmark) cells compared.
	Entries int
	// Runs is the total number of paired executions.
	Runs int
	// Digest is the combined observation digest both images produced.
	Digest string
}

// Validate checks the candidate image against the reference. It returns
// a nil error only when the candidate verifies, upholds the hardening
// invariant, and is observationally identical to the reference over the
// corpus. ref and cand must be compiled from the same kernel.
func Validate(k *kernel.Kernel, ref, cand *interp.Program, cfg Config) (*Report, error) {
	if k == nil || ref == nil || cand == nil {
		return nil, resilience.Faultf(resilience.PhasePromote, resilience.KindConfig, "diffcheck",
			"nil kernel or program")
	}
	if err := ir.Verify(cand.Module(), ir.VerifyOptions{}); err != nil {
		return nil, resilience.Fault(resilience.PhasePromote, resilience.KindDivergence, "ir-verify",
			fmt.Errorf("candidate module does not verify: %w", err))
	}
	if err := harden.CheckInvariants(cand.Module(), cfg.Harden, cfg.JumpSwitches); err != nil {
		fe, _ := resilience.AsFault(err)
		site := "harden-invariants"
		if fe != nil {
			site = fe.Site
		}
		return nil, resilience.Fault(resilience.PhasePromote, resilience.KindUnhardenedSite, site, err)
	}

	flavors := cfg.Flavors
	if len(flavors) == 0 {
		flavors = []workload.Flavor{workload.LMBench}
	}
	runs := cfg.Runs
	if runs <= 0 {
		runs = 3
	}
	rep := &Report{}
	total := fnv.New64a()
	seen := make(map[workload.Flavor]bool)
	for fi, flavor := range flavors {
		if seen[flavor] {
			continue
		}
		seen[flavor] = true
		refRes, err := workload.BuildResolver(k, ref, flavor)
		if err != nil {
			return nil, resilience.Fault(resilience.PhasePromote, resilience.KindConfig, flavor.String(), err)
		}
		candRes, err := workload.BuildResolver(k, cand, flavor)
		if err != nil {
			return nil, resilience.Fault(resilience.PhasePromote, resilience.KindConfig, flavor.String(), err)
		}
		mix := workload.Mix(flavor)
		benches := make([]string, 0, len(mix))
		for b := range mix {
			benches = append(benches, b)
		}
		sort.Strings(benches)
		for bi, bench := range benches {
			entry, ok := k.Entries[bench]
			if !ok {
				return nil, resilience.Faultf(resilience.PhasePromote, resilience.KindConfig,
					flavor.String()+"/"+bench, "mix references unknown benchmark")
			}
			cell := fmt.Sprintf("%s/%s", flavor, bench)
			seed := cfg.Seed + int64(fi)*1_000_003 + int64(bi)*8191 + 7
			refMC := observedMachine(ref, refRes, seed)
			candMC := observedMachine(cand, candRes, seed)
			for r := 0; r < runs; r++ {
				refObs := runObserved(refMC, entry)
				candObs := runObserved(candMC, entry)
				if refObs.outcome != candObs.outcome {
					return nil, resilience.Faultf(resilience.PhasePromote, resilience.KindDivergence, cell,
						"run %d: trap status diverged: reference %s, candidate %s",
						r, refObs.outcome, candObs.outcome)
				}
				if refObs.digest != candObs.digest {
					return nil, resilience.Faultf(resilience.PhasePromote, resilience.KindDivergence, cell,
						"run %d: resolution trace diverged after %d resolutions (reference saw %d): "+
							"first mismatch at %s",
						r, candObs.resolves, refObs.resolves, firstMismatch(refObs, candObs))
				}
				fmt.Fprintf(total, "%s %d %s %s\n", cell, r, refObs.outcome, refObs.digest)
				rep.Runs++
			}
			rep.Entries++
		}
	}
	rep.Digest = fmt.Sprintf("%016x", total.Sum64())
	return rep, nil
}

// ValidateEngines differentially validates the threaded-code execution
// tier against the packed-event interpreter on a single program: the
// same image is executed over the workload corpus by both engines with
// identical seeds, and every run must agree on trap outcome, on the
// profile-visible resolution sequence, and — stronger than the
// image-vs-image gate — on the cycle-exact CPU model state (Cycles and
// every counter). This is the same canary machinery the fleet uses to
// promote candidate images, applied to promoting the fast engine: a
// compiled-tier miscompilation surfaces exactly like an optimizer
// miscompilation would, as a KindDivergence fault naming the cell.
func ValidateEngines(k *kernel.Kernel, prog *interp.Program, cfg Config) (*Report, error) {
	if k == nil || prog == nil {
		return nil, resilience.Faultf(resilience.PhasePromote, resilience.KindConfig, "diffcheck",
			"nil kernel or program")
	}
	flavors := cfg.Flavors
	if len(flavors) == 0 {
		flavors = []workload.Flavor{workload.LMBench}
	}
	runs := cfg.Runs
	if runs <= 0 {
		runs = 3
	}
	rep := &Report{}
	total := fnv.New64a()
	seen := make(map[workload.Flavor]bool)
	for fi, flavor := range flavors {
		if seen[flavor] {
			continue
		}
		seen[flavor] = true
		res, err := workload.BuildResolver(k, prog, flavor)
		if err != nil {
			return nil, resilience.Fault(resilience.PhasePromote, resilience.KindConfig, flavor.String(), err)
		}
		mix := workload.Mix(flavor)
		benches := make([]string, 0, len(mix))
		for b := range mix {
			benches = append(benches, b)
		}
		sort.Strings(benches)
		for bi, bench := range benches {
			entry, ok := k.Entries[bench]
			if !ok {
				return nil, resilience.Faultf(resilience.PhasePromote, resilience.KindConfig,
					flavor.String()+"/"+bench, "mix references unknown benchmark")
			}
			cell := fmt.Sprintf("%s/%s", flavor, bench)
			seed := cfg.Seed + int64(fi)*1_000_003 + int64(bi)*8191 + 7
			refOb := observedMachine(prog, res, seed)
			refOb.mc.Engine = interp.EngineInterp
			refOb.mc.CPU = cpu.New(cpu.DefaultParams())
			candOb := observedMachine(prog, res, seed)
			candOb.mc.Engine = interp.EngineCompiled
			candOb.mc.CPU = cpu.New(cpu.DefaultParams())
			for r := 0; r < runs; r++ {
				refObs := runObserved(refOb, entry)
				candObs := runObserved(candOb, entry)
				if refObs.outcome != candObs.outcome {
					return nil, resilience.Faultf(resilience.PhasePromote, resilience.KindDivergence, cell,
						"run %d: trap status diverged: interpreter %s, compiled %s",
						r, refObs.outcome, candObs.outcome)
				}
				if refObs.digest != candObs.digest {
					return nil, resilience.Faultf(resilience.PhasePromote, resilience.KindDivergence, cell,
						"run %d: resolution trace diverged after %d resolutions (interpreter saw %d): "+
							"first mismatch at %s",
						r, candObs.resolves, refObs.resolves, firstMismatch(refObs, candObs))
				}
				if refOb.mc.CPU.Cycles != candOb.mc.CPU.Cycles {
					return nil, resilience.Faultf(resilience.PhasePromote, resilience.KindDivergence, cell,
						"run %d: cycle count diverged: interpreter %d, compiled %d",
						r, refOb.mc.CPU.Cycles, candOb.mc.CPU.Cycles)
				}
				if refOb.mc.CPU.Stats != candOb.mc.CPU.Stats {
					return nil, resilience.Faultf(resilience.PhasePromote, resilience.KindDivergence, cell,
						"run %d: event counters diverged: interpreter %+v, compiled %+v",
						r, refOb.mc.CPU.Stats, candOb.mc.CPU.Stats)
				}
				fmt.Fprintf(total, "%s %d %s %s %d\n", cell, r, refObs.outcome, refObs.digest, refOb.mc.CPU.Cycles)
				rep.Runs++
			}
			rep.Entries++
		}
	}
	rep.Digest = fmt.Sprintf("%016x", total.Sum64())
	return rep, nil
}

// observation is one run's observable result: the trap outcome and a
// digest of the (original site, resolved target) sequence. The trace
// keeps a bounded tail for mismatch reporting.
type observation struct {
	outcome  string
	digest   string
	resolves int
	trace    []string
}

const traceTail = 8

type observer struct {
	mc    *interp.Machine
	h     hash.Hash64
	count int
	tail  []string
}

func observedMachine(prog *interp.Program, res *interp.Resolver, seed int64) *observer {
	mc := interp.NewMachine(prog, seed)
	mc.Res = res
	ob := &observer{mc: mc, h: fnv.New64a()}
	mc.OnResolve = func(orig ir.SiteID, target int32) {
		name := prog.FuncName(int(target))
		fmt.Fprintf(ob.h, "%d>%s\n", orig, name)
		ob.count++
		if len(ob.tail) == traceTail {
			copy(ob.tail, ob.tail[1:])
			ob.tail = ob.tail[:traceTail-1]
		}
		ob.tail = append(ob.tail, fmt.Sprintf("site %d -> %s", orig, name))
	}
	return ob
}

func runObserved(ob *observer, entry string) observation {
	ob.h.Reset()
	ob.count = 0
	ob.tail = ob.tail[:0]
	err := ob.mc.Run(entry)
	outcome := "ok"
	if err != nil {
		if fe, ok := resilience.AsFault(err); ok {
			outcome = string(fe.Kind)
		} else {
			outcome = "error"
		}
	}
	return observation{
		outcome:  outcome,
		digest:   fmt.Sprintf("%016x", ob.h.Sum64()),
		resolves: ob.count,
		trace:    append([]string(nil), ob.tail...),
	}
}

// firstMismatch renders the tail of both traces for the divergence error.
func firstMismatch(ref, cand observation) string {
	return fmt.Sprintf("reference tail %v vs candidate tail %v", ref.trace, cand.trace)
}
