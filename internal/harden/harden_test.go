package harden

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/resilience"
)

func buildModule(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule()
	h := ir.NewFunction(m, "h", 0)
	h.ALU(1).Ret()

	f := ir.NewFunction(m, "f", 0)
	f.IndirectCall(0)
	f.Switch([]string{"a", "b"})
	f.NewBlock("a").ALU(1).Jmp("done")
	f.NewBlock("b").ALU(1).Jmp("done")
	f.NewBlock("done").Ret()

	boot := ir.NewFunction(m, "boot_init", 0)
	boot.SetAttrs(ir.AttrBoot)
	boot.ALU(1).Ret()

	asmF := ir.NewFunction(m, "pv_ops", 0)
	site, reg := asmF.Resolve()
	asmF.ICall(site, reg, 0)
	asmF.Func().Entry().Instrs[1].Asm = true // the hypercall macro
	asmF.Ret()

	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m
}

func TestConfigDefenseMapping(t *testing.T) {
	cases := []struct {
		cfg      Config
		fwd, bwd ir.Defense
		name     string
	}{
		{Config{}, ir.DefNone, ir.DefNone, "none"},
		{Config{Retpolines: true}, ir.DefRetpoline, ir.DefNone, "retpolines"},
		{Config{RetRetpolines: true}, ir.DefNone, ir.DefRetRetpoline, "ret-retpolines"},
		{Config{LVICFI: true}, ir.DefLVI, ir.DefLVIRet, "lvi-cfi"},
		{Config{Retpolines: true, LVICFI: true}, ir.DefFencedRetpoline, ir.DefLVIRet, "retpolines+lvi-cfi"},
		{Config{Retpolines: true, RetRetpolines: true, LVICFI: true}, ir.DefFencedRetpoline, ir.DefFencedRetRet, "all-defenses"},
	}
	for _, c := range cases {
		if got := c.cfg.ForwardDefense(); got != c.fwd {
			t.Errorf("%s: forward = %v, want %v", c.name, got, c.fwd)
		}
		if got := c.cfg.BackwardDefense(); got != c.bwd {
			t.Errorf("%s: backward = %v, want %v", c.name, got, c.bwd)
		}
		if got := c.cfg.String(); got != c.name {
			t.Errorf("String() = %q, want %q", got, c.name)
		}
	}
}

func TestApplyAllDefenses(t *testing.T) {
	m := buildModule(t)
	cfg := Config{Retpolines: true, RetRetpolines: true, LVICFI: true}
	c, err := Apply(m, cfg)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if c.DefendedICalls != 1 {
		t.Errorf("DefendedICalls = %d, want 1", c.DefendedICalls)
	}
	if c.VulnICalls != 1 {
		t.Errorf("VulnICalls = %d, want 1 (the asm hypercall)", c.VulnICalls)
	}
	// Returns: h, f, pv_ops are defended; boot_init is boot-only.
	if c.DefendedReturns != 3 {
		t.Errorf("DefendedReturns = %d, want 3", c.DefendedReturns)
	}
	if c.BootReturns != 1 {
		t.Errorf("BootReturns = %d, want 1", c.BootReturns)
	}
	if c.LoweredJumpTables != 1 || c.VulnIJumps != 0 {
		t.Errorf("jump tables: lowered=%d vuln=%d, want 1/0", c.LoweredJumpTables, c.VulnIJumps)
	}
	// Re-collecting must agree with what Apply reported.
	c2 := CollectCensus(m, cfg)
	if c2.DefendedICalls != c.DefendedICalls || c2.VulnICalls != c.VulnICalls ||
		c2.DefendedReturns != c.DefendedReturns || c2.BootReturns != c.BootReturns {
		t.Errorf("CollectCensus disagrees: %+v vs %+v", c2, c)
	}
}

func TestApplyGrowsImage(t *testing.T) {
	m := buildModule(t)
	before := m.ByteSize()
	if _, err := Apply(m, Config{Retpolines: true, RetRetpolines: true, LVICFI: true}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if m.ByteSize() <= before {
		t.Errorf("image size %d -> %d: hardening must grow the image", before, m.ByteSize())
	}
}

func TestNoDefensesLeavesEverythingVulnerable(t *testing.T) {
	m := buildModule(t)
	c, err := Apply(m, Config{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if c.DefendedICalls != 0 || c.DefendedReturns != 0 {
		t.Error("zero config defended something")
	}
	if c.VulnICalls != 2 {
		t.Errorf("VulnICalls = %d, want 2", c.VulnICalls)
	}
	if c.VulnIJumps != 1 {
		t.Errorf("VulnIJumps = %d, want 1 (jump table kept)", c.VulnIJumps)
	}
}

func TestRetpolinesOnlyKeepsReturnsUnprotected(t *testing.T) {
	m := buildModule(t)
	c, err := Apply(m, Config{Retpolines: true})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if c.DefendedReturns != 0 {
		t.Error("retpolines-only config must not touch returns")
	}
	if c.VulnReturns == 0 {
		t.Error("returns should be counted vulnerable")
	}
	if c.DefendedICalls != 1 {
		t.Errorf("DefendedICalls = %d, want 1", c.DefendedICalls)
	}
	if c.LoweredJumpTables != 1 {
		t.Error("retpolines must disable jump tables")
	}
}

func TestAsmSwitchNotLowered(t *testing.T) {
	m := ir.NewModule()
	f := ir.NewFunction(m, "f", 0)
	f.Switch([]string{"a"})
	f.NewBlock("a").Ret()
	f.Func().Entry().Instrs[0].Asm = true
	c, err := Apply(m, Config{Retpolines: true})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if c.VulnIJumps != 1 || c.LoweredJumpTables != 0 {
		t.Errorf("asm jump table: vuln=%d lowered=%d, want 1/0", c.VulnIJumps, c.LoweredJumpTables)
	}
}

func TestHardenedModuleStillVerifies(t *testing.T) {
	m := buildModule(t)
	if _, err := Apply(m, Config{Retpolines: true, RetRetpolines: true, LVICFI: true}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify after harden: %v", err)
	}
}

func TestNonTransientDefenseMapping(t *testing.T) {
	cases := []struct {
		cfg      Config
		fwd, bwd ir.Defense
	}{
		{Config{LLVMCFI: true}, ir.DefLLVMCFI, ir.DefNone},
		{Config{StackProtector: true}, ir.DefNone, ir.DefStackProtector},
		{Config{SafeStack: true}, ir.DefNone, ir.DefSafeStack},
		// Transient defenses take precedence on a shared edge.
		{Config{Retpolines: true, LLVMCFI: true}, ir.DefRetpoline, ir.DefNone},
		{Config{RetRetpolines: true, StackProtector: true}, ir.DefNone, ir.DefRetRetpoline},
	}
	for _, c := range cases {
		if got := c.cfg.ForwardDefense(); got != c.fwd {
			t.Errorf("%+v forward = %v, want %v", c.cfg, got, c.fwd)
		}
		if got := c.cfg.BackwardDefense(); got != c.bwd {
			t.Errorf("%+v backward = %v, want %v", c.cfg, got, c.bwd)
		}
	}
}

func TestNonTransientDefensesKeepJumpTables(t *testing.T) {
	// Only retpolines/LVI disable jump tables (the transient threat);
	// LLVM-CFI does not.
	m := buildModule(t)
	c, err := Apply(m, Config{LLVMCFI: true, StackProtector: true})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if c.LoweredJumpTables != 0 {
		t.Error("non-transient config lowered jump tables")
	}
	if c.VulnIJumps != 1 {
		t.Errorf("VulnIJumps = %d, want 1", c.VulnIJumps)
	}
}

func TestCheckInvariantsCleanModule(t *testing.T) {
	cfg := Config{Retpolines: true, RetRetpolines: true, LVICFI: true}
	m := buildModule(t)
	if _, err := Apply(m, cfg); err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(m, cfg, false); err != nil {
		t.Fatalf("hardened module fails its own invariants: %v", err)
	}
	// No defenses demanded, none applied: also clean.
	if err := CheckInvariants(buildModule(t), Config{}, false); err != nil {
		t.Fatalf("unhardened module under empty config: %v", err)
	}
}

func TestCheckInvariantsStrippedRetpoline(t *testing.T) {
	cfg := Config{Retpolines: true, RetRetpolines: true, LVICFI: true}
	m := buildModule(t)
	if _, err := Apply(m, cfg); err != nil {
		t.Fatal(err)
	}
	// Deliberately strip the retpoline from one rewriteable indirect call,
	// as a buggy transform that re-introduced a bare site would.
	stripped := false
	for _, f := range m.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if !stripped && in.Op == ir.OpICall && !in.Asm {
				in.Defense = ir.DefNone
				stripped = true
			}
		})
	}
	if !stripped {
		t.Fatal("no rewriteable indirect call in fixture")
	}
	err := CheckInvariants(m, cfg, false)
	fe, ok := resilience.AsFault(err)
	if !ok || fe.Kind != resilience.KindUnhardenedSite {
		t.Fatalf("stripped retpoline: err = %v, want KindUnhardenedSite", err)
	}
	if fe.Site == "" {
		t.Fatal("violation does not name the site")
	}
}

func TestCheckInvariantsStrippedReturnAndJumpTable(t *testing.T) {
	cfg := Config{Retpolines: true, RetRetpolines: true}
	m := buildModule(t)
	if _, err := Apply(m, cfg); err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Funcs {
		if f.Attrs.Has(ir.AttrBoot) {
			continue
		}
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == ir.OpRet && !in.Asm {
				in.Defense = ir.DefNone
			}
		})
	}
	if !resilience.IsKind(CheckInvariants(m, cfg, false), resilience.KindUnhardenedSite) {
		t.Fatal("stripped return retpoline not flagged")
	}

	m2 := buildModule(t)
	if _, err := Apply(m2, cfg); err != nil {
		t.Fatal(err)
	}
	for _, f := range m2.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == ir.OpSwitch && !in.Asm {
				in.JumpTable = true // resurrect the lowered table
			}
		})
	}
	if !resilience.IsKind(CheckInvariants(m2, cfg, false), resilience.KindUnhardenedSite) {
		t.Fatal("resurrected jump table not flagged")
	}
}

func TestCheckInvariantsJumpSwitchesRelaxation(t *testing.T) {
	cfg := Config{Retpolines: true, RetRetpolines: true}
	m := buildModule(t)
	if _, err := Apply(m, cfg); err != nil {
		t.Fatal(err)
	}
	// The JumpSwitches baseline strips forward thunks for its runtime
	// promotion hook; the relaxed check must accept that and still demand
	// hardened returns.
	for _, f := range m.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == ir.OpICall && !in.Asm {
				in.Defense = ir.DefNone
			}
		})
	}
	if err := CheckInvariants(m, cfg, true); err != nil {
		t.Fatalf("jumpSwitches relaxation rejected bare icalls: %v", err)
	}
	if err := CheckInvariants(m, cfg, false); err == nil {
		t.Fatal("strict check accepted bare icalls")
	}
}

func TestNewBackendDefenseMapping(t *testing.T) {
	cases := []struct {
		cfg      Config
		fwd, bwd ir.Defense
		name     string
	}{
		{Config{FineIBT: true}, ir.DefFineIBT, ir.DefNone, "fineibt"},
		{Config{PACCFI: true}, ir.DefPAC, ir.DefPACRet, "pac-cfi"},
		{Config{VeriFence: true}, ir.DefVeriFence, ir.DefNone, "verifence"},
		{Config{FineIBT: true, PACCFI: true}, ir.DefFineIBT, ir.DefPACRet, "fineibt+pac-cfi"},
		// Transient thunks claim the edge first: a retpolined site needs
		// no landing-pad check, an LVI-fenced return needs no auth.
		{Config{Retpolines: true, FineIBT: true}, ir.DefRetpoline, ir.DefNone, "retpolines"},
		{Config{LVICFI: true, PACCFI: true}, ir.DefLVI, ir.DefLVIRet, "lvi-cfi"},
	}
	for _, c := range cases {
		if got := c.cfg.ForwardDefense(); got != c.fwd {
			t.Errorf("%s: forward = %v, want %v", c.name, got, c.fwd)
		}
		if got := c.cfg.BackwardDefense(); got != c.bwd {
			t.Errorf("%s: backward = %v, want %v", c.name, got, c.bwd)
		}
		if got := c.cfg.String(); got != c.name {
			t.Errorf("String() = %q, want %q", got, c.name)
		}
		if !c.cfg.Any() {
			t.Errorf("%s: Any() = false", c.name)
		}
	}
}

// TestApplyNewBackendsRoundTrip hardens the shared fixture under each new
// backend and checks the Apply census, the CheckInvariants round-trip, and
// CollectCensus agreement — then tampers with one site and expects the
// invariant check to flag it.
func TestApplyNewBackendsRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{FineIBT: true},
		{PACCFI: true},
		{VeriFence: true},
		{FineIBT: true, PACCFI: true},
	} {
		t.Run(cfg.String(), func(t *testing.T) {
			m := buildModule(t)
			c, err := Apply(m, cfg)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if got := c.DefendedICalls + c.ProvenICalls; got != 1 {
				t.Errorf("defended+proven icalls = %d, want 1", got)
			}
			if c.VulnICalls != 1 {
				t.Errorf("VulnICalls = %d, want 1 (the asm hypercall)", c.VulnICalls)
			}
			wantRets := 0
			if cfg.PACCFI {
				wantRets = 3
			}
			if c.DefendedReturns != wantRets {
				t.Errorf("DefendedReturns = %d, want %d", c.DefendedReturns, wantRets)
			}
			// None of the new backends lowers jump tables; only VeriFence
			// touches them (fenced in place).
			if c.LoweredJumpTables != 0 {
				t.Errorf("LoweredJumpTables = %d, want 0", c.LoweredJumpTables)
			}
			if cfg.ForwardDefense() == ir.DefVeriFence {
				if c.FencedJumpTables != 1 || c.VulnIJumps != 0 {
					t.Errorf("fencedJT=%d vulnIJ=%d, want 1/0", c.FencedJumpTables, c.VulnIJumps)
				}
			} else if c.VulnIJumps != 1 {
				t.Errorf("VulnIJumps = %d, want 1 (table kept, unfenced)", c.VulnIJumps)
			}
			if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
				t.Fatalf("Verify after harden: %v", err)
			}
			if err := CheckInvariants(m, cfg, false); err != nil {
				t.Fatalf("hardened module fails its own invariants: %v", err)
			}
			c2 := CollectCensus(m, cfg)
			if *c2 != *c {
				t.Errorf("CollectCensus disagrees:\n got %+v\nwant %+v", c2, c)
			}

			// Tamper: flip the defense on the first rewriteable icall.
			tampered := false
			for _, f := range m.Funcs {
				f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
					if tampered || in.Op != ir.OpICall || in.Asm {
						return
					}
					if in.Defense == ir.DefNone {
						in.Defense = cfg.ForwardDefense() // fence a proven site
					} else {
						in.Defense = ir.DefNone // strip a demanded thunk
					}
					tampered = true
				})
			}
			if !tampered {
				t.Fatal("no rewriteable indirect call in fixture")
			}
			if !resilience.IsKind(CheckInvariants(m, cfg, false), resilience.KindUnhardenedSite) {
				t.Error("tampered icall not flagged")
			}
		})
	}
}

// TestThunkSizeGrowth: every new backend must grow the image, and the
// growth must land where the backend's cost model says it does.
func TestThunkSizeGrowth(t *testing.T) {
	base := buildModule(t).ByteSize()
	for _, cfg := range []Config{{FineIBT: true}, {PACCFI: true}, {VeriFence: true}} {
		m := buildModule(t)
		if _, err := Apply(m, cfg); err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if m.ByteSize() <= base {
			t.Errorf("%s: image size %d -> %d, hardening must grow the image", cfg, base, m.ByteSize())
		}
	}
	// PAC grows both edges, FineIBT only the forward one: on a fixture
	// with more returns than icalls the PAC image is strictly larger.
	mf, mp := buildModule(t), buildModule(t)
	if _, err := Apply(mf, Config{FineIBT: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(mp, Config{PACCFI: true}); err != nil {
		t.Fatal(err)
	}
	if mp.ByteSize() <= mf.ByteSize() {
		t.Errorf("pac-cfi image %d not larger than fineibt image %d", mp.ByteSize(), mf.ByteSize())
	}
}

// buildVeriFenceFixture constructs one function per provability class:
//
//   - prov: resolve immediately followed by the icall — provable;
//   - split: resolve in the entry block, icall in a successor — the shape
//     ICP promotion leaves behind, unprovable;
//   - clob: a store between resolve and icall — unprovable;
//   - big: adjacent resolve/icall inside a function padded past the
//     verifier budget — unprovable.
func buildVeriFenceFixture(t *testing.T) (*ir.Module, map[string]ir.SiteID) {
	t.Helper()
	m := ir.NewModule()
	ir.NewFunction(m, "callee", 0).ALU(1).Ret()
	sites := make(map[string]ir.SiteID)

	p := ir.NewFunction(m, "prov", 0)
	site, reg := p.Resolve()
	sites["prov"] = site
	p.ICall(site, reg, 0).Ret()

	s := ir.NewFunction(m, "split", 0)
	site, reg = s.Resolve()
	sites["split"] = site
	s.Jmp("fb")
	s.NewBlock("fb").ICall(site, reg, 0).Ret()

	c := ir.NewFunction(m, "clob", 0)
	site, reg = c.Resolve()
	sites["clob"] = site
	c.Store().ICall(site, reg, 0).Ret()

	b := ir.NewFunction(m, "big", 0)
	site, reg = b.Resolve()
	sites["big"] = site
	b.ICall(site, reg, 0)
	for i := 0; i < ir.DefaultVerifierBudget; i++ {
		b.ALU(1)
	}
	b.Ret()

	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m, sites
}

// TestVeriFenceProperty: provable sites are never fenced, unprovable
// sites always are — per site, across every unprovability cause.
func TestVeriFenceProperty(t *testing.T) {
	m, sites := buildVeriFenceFixture(t)
	prov := ir.ProvableSites(m, 0)
	if !prov[sites["prov"]] {
		t.Error("adjacent resolve/icall not provable")
	}
	for _, name := range []string{"split", "clob", "big"} {
		if prov[sites[name]] {
			t.Errorf("site %q provable, want unprovable", name)
		}
	}

	cfg := Config{VeriFence: true}
	c, err := Apply(m, cfg)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if c.ProvenICalls != 1 || c.DefendedICalls != 3 {
		t.Errorf("proven=%d defended=%d, want 1/3", c.ProvenICalls, c.DefendedICalls)
	}
	byName := make(map[string]ir.Defense)
	for _, f := range m.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == ir.OpICall {
				byName[f.Name] = in.Defense
			}
		})
	}
	if byName["prov"] != ir.DefNone {
		t.Errorf("provable site fenced: %v", byName["prov"])
	}
	for _, name := range []string{"split", "clob", "big"} {
		if byName[name] != ir.DefVeriFence {
			t.Errorf("unprovable site %q carries %v, want verifence", name, byName[name])
		}
	}
	if err := CheckInvariants(m, cfg, false); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	if c2 := CollectCensus(m, cfg); *c2 != *c {
		t.Errorf("CollectCensus disagrees:\n got %+v\nwant %+v", c2, c)
	}
}

// TestVeriFenceJumpTableFenced: jump tables are fenced in place — kept
// as tables, grown by the fence — never lowered; and the invariant check
// flags a table whose fence was dropped.
func TestVeriFenceJumpTableFenced(t *testing.T) {
	cfg := Config{VeriFence: true}
	m := buildModule(t)
	if _, err := Apply(m, cfg); err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op != ir.OpSwitch || in.Asm {
				return
			}
			if !in.JumpTable {
				t.Error("verifence lowered a jump table")
			}
			if in.Defense != ir.DefVeriFence {
				t.Errorf("jump table carries %v, want verifence", in.Defense)
			}
			in.Defense = ir.DefNone // drop the fence
		})
	}
	if !resilience.IsKind(CheckInvariants(m, cfg, false), resilience.KindUnhardenedSite) {
		t.Error("unfenced jump table not flagged")
	}
}
