// Package harden applies transient control-flow defenses to the indirect
// branches of a module, mirroring §6 of the paper:
//
//   - retpolines for indirect calls (Spectre V2),
//   - return retpolines for returns (Ret2spec / RSB poisoning),
//   - LVI-CFI fences for both edges (Load Value Injection),
//   - a combined "fenced retpoline" when retpolines and LVI-CFI are both
//     requested (the two defenses instrument the same code sequence and
//     are otherwise incompatible — Listing 7), and
//   - jump-table disabling, lowering switch dispatch to compare chains
//     (the default LLVM behaviour when retpolines or LVI are enabled).
//
// Sites that originate from inline assembly cannot be rewritten by the
// compiler and remain vulnerable; the pass counts them (Table 11).
package harden

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/resilience"
)

// Config selects which defenses to enforce. The zero value applies
// nothing.
type Config struct {
	// Retpolines hardens indirect calls and jumps against Spectre V2.
	Retpolines bool
	// RetRetpolines hardens returns against RSB poisoning (Ret2spec).
	RetRetpolines bool
	// LVICFI fences the target loads of indirect calls and returns
	// against Load Value Injection.
	LVICFI bool

	// Non-transient defenses (Table 1's cheap rows). They are measured
	// for completeness and compose with nothing here: the pass applies
	// them only where no transient defense claims the same edge.
	LLVMCFI        bool // forward-edge type-set checks
	StackProtector bool // stack canaries on returns
	SafeStack      bool // separate return stack

	// RSBRefill enables the kernel's ad-hoc RSB-stuffing mitigation on
	// privilege transitions instead of hardening each return (§6.4).
	// It rewrites no instructions; the execution engine charges the
	// refill at syscall entry.
	RSBRefill bool
}

// Any reports whether at least one instruction-rewriting defense is
// enabled.
func (c Config) Any() bool {
	return c.Retpolines || c.RetRetpolines || c.LVICFI ||
		c.LLVMCFI || c.StackProtector || c.SafeStack
}

// String names the configuration the way the paper's tables do.
func (c Config) String() string {
	switch {
	case c.Retpolines && c.RetRetpolines && c.LVICFI:
		return "all-defenses"
	case c.Retpolines && c.LVICFI:
		return "retpolines+lvi-cfi"
	case c.Retpolines && c.RetRetpolines:
		return "retpolines+ret-retpolines"
	case c.Retpolines:
		return "retpolines"
	case c.RetRetpolines:
		return "ret-retpolines"
	case c.LVICFI:
		return "lvi-cfi"
	case c.LLVMCFI:
		return "llvm-cfi"
	case c.StackProtector:
		return "stackprotector"
	case c.SafeStack:
		return "safestack"
	case c.RSBRefill:
		return "rsb-refill"
	default:
		return "none"
	}
}

// ForwardDefense returns the thunk applied to a rewriteable indirect call
// under this configuration.
func (c Config) ForwardDefense() ir.Defense {
	switch {
	case c.Retpolines && c.LVICFI:
		return ir.DefFencedRetpoline
	case c.Retpolines:
		return ir.DefRetpoline
	case c.LVICFI:
		return ir.DefLVI
	case c.LLVMCFI:
		return ir.DefLLVMCFI
	default:
		return ir.DefNone
	}
}

// BackwardDefense returns the thunk applied to a return.
func (c Config) BackwardDefense() ir.Defense {
	switch {
	case c.RetRetpolines && c.LVICFI:
		return ir.DefFencedRetRet
	case c.RetRetpolines:
		return ir.DefRetRetpoline
	case c.LVICFI:
		return ir.DefLVIRet
	case c.StackProtector:
		return ir.DefStackProtector
	case c.SafeStack:
		return ir.DefSafeStack
	default:
		return ir.DefNone
	}
}

// Census summarizes the protection state of a module's forward and
// backward edges (Table 11's statistics).
type Census struct {
	// DefendedICalls is the number of indirect calls rewritten to a
	// defense thunk.
	DefendedICalls int
	// VulnICalls is the number of indirect calls left unprotected
	// (inline-assembly sites the compiler cannot rewrite).
	VulnICalls int
	// VulnIJumps is the number of indirect jumps still emitted (jump
	// tables that could not be lowered plus assembly jumps).
	VulnIJumps int
	// DefendedReturns / VulnReturns tally backward edges; boot-only
	// returns are counted as BootReturns and excluded from VulnReturns
	// since they never execute after boot.
	DefendedReturns int
	VulnReturns     int
	BootReturns     int
	// LoweredJumpTables counts switches converted to compare chains.
	LoweredJumpTables int
}

// Apply instruments the module in place and returns the census. The
// hardening also grows each thunked site: a retpoline call sequence is
// larger than a bare indirect call, which the size accounting of
// Table 12 must see.
func Apply(mod *ir.Module, cfg Config) (*Census, error) {
	if mod == nil {
		return nil, fmt.Errorf("harden: nil module")
	}
	fwd, bwd := cfg.ForwardDefense(), cfg.BackwardDefense()
	c := &Census{}
	for _, f := range mod.Funcs {
		boot := f.Attrs.Has(ir.AttrBoot)
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			switch in.Op {
			case ir.OpICall:
				if in.Asm {
					c.VulnICalls++
					return
				}
				in.Defense = fwd
				if fwd != ir.DefNone {
					c.DefendedICalls++
					in.Size = thunkSize(fwd)
				} else {
					c.VulnICalls++
				}
			case ir.OpRet:
				if in.Asm {
					c.VulnReturns++
					return
				}
				if boot {
					c.BootReturns++
					return
				}
				in.Defense = bwd
				if bwd != ir.DefNone {
					c.DefendedReturns++
					in.Size = thunkSize(bwd)
				} else {
					c.VulnReturns++
				}
			case ir.OpSwitch:
				if !in.JumpTable {
					return
				}
				if in.Asm {
					c.VulnIJumps++
					return
				}
				if cfg.Retpolines || cfg.LVICFI {
					in.JumpTable = false
					c.LoweredJumpTables++
					// A compare chain is larger than a table dispatch.
					in.Size = int32(ir.DefaultInstrSize * (1 + len(in.Targets)))
				} else {
					c.VulnIJumps++
				}
			}
		})
	}
	return c, nil
}

// thunkSize returns the encoded size of a hardened branch sequence.
// Values approximate the listings in the paper: a retpoline thunk call
// plus its out-of-line body amortized per site.
// Retpoline thunk bodies are shared (one per register), so a hardened
// call site grows only by the register move and thunk call; return-edge
// sequences are inlined and a little larger.
func thunkSize(d ir.Defense) int32 {
	switch d {
	case ir.DefRetpoline:
		return 8
	case ir.DefLVI:
		return 8
	case ir.DefFencedRetpoline:
		return 10
	case ir.DefRetRetpoline:
		return 12
	case ir.DefLVIRet:
		return 9
	case ir.DefFencedRetRet:
		return 15
	case ir.DefLLVMCFI:
		return 9
	case ir.DefStackProtector:
		return 10
	case ir.DefSafeStack:
		return 8
	default:
		return ir.DefaultInstrSize
	}
}

// CheckInvariants verifies PIBE's safety invariant on an already-hardened
// module: every surviving indirect branch the compiler can rewrite
// carries exactly the defense the configuration demands. Optimization
// passes may *eliminate* indirect branches, never *expose* them — a
// rewriteable indirect call without the forward thunk, a post-boot return
// without the backward thunk, or an unlowered jump table under
// retpolines/LVI means a transformation (or a miscompile) dropped a
// hardening site. The first violation is returned as a
// resilience.FaultError of KindUnhardenedSite naming the site; nil means
// the module upholds the invariant.
//
// jumpSwitches relaxes the forward-edge check: under the JumpSwitches
// baseline the build deliberately leaves indirect calls bare for the
// runtime promotion hook, so only backward edges and jump tables are
// enforced.
func CheckInvariants(mod *ir.Module, cfg Config, jumpSwitches bool) error {
	if mod == nil {
		return resilience.Faultf(resilience.PhaseBuild, resilience.KindConfig, "harden", "nil module")
	}
	fwd, bwd := cfg.ForwardDefense(), cfg.BackwardDefense()
	if jumpSwitches {
		fwd = ir.DefNone
	}
	var violation *resilience.FaultError
	for _, f := range mod.Funcs {
		if violation != nil {
			break
		}
		boot := f.Attrs.Has(ir.AttrBoot)
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if violation != nil {
				return
			}
			site := fmt.Sprintf("%s/%s[%d]", f.Name, b.Name, i)
			switch in.Op {
			case ir.OpICall:
				if !in.Asm && in.Defense != fwd {
					violation = resilience.Faultf(resilience.PhaseBuild, resilience.KindUnhardenedSite, site,
						"indirect call carries %v, config demands %v", in.Defense, fwd)
				}
			case ir.OpRet:
				if !in.Asm && !boot && in.Defense != bwd {
					violation = resilience.Faultf(resilience.PhaseBuild, resilience.KindUnhardenedSite, site,
						"return carries %v, config demands %v", in.Defense, bwd)
				}
			case ir.OpSwitch:
				if in.JumpTable && !in.Asm && (cfg.Retpolines || cfg.LVICFI) {
					violation = resilience.Faultf(resilience.PhaseBuild, resilience.KindUnhardenedSite, site,
						"jump table not lowered under %s", cfg)
				}
			}
		})
	}
	if violation != nil {
		return violation
	}
	return nil
}

// CollectCensus recomputes the census of an already-hardened module
// without modifying it, given the configuration it was hardened with.
func CollectCensus(mod *ir.Module, cfg Config) *Census {
	c := &Census{}
	for _, f := range mod.Funcs {
		boot := f.Attrs.Has(ir.AttrBoot)
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			switch in.Op {
			case ir.OpICall:
				if in.Defense != ir.DefNone {
					c.DefendedICalls++
				} else {
					c.VulnICalls++
				}
			case ir.OpRet:
				switch {
				case in.Defense != ir.DefNone:
					c.DefendedReturns++
				case boot:
					c.BootReturns++
				default:
					c.VulnReturns++
				}
			case ir.OpSwitch:
				if in.JumpTable {
					c.VulnIJumps++
				} else if cfg.Retpolines || cfg.LVICFI {
					c.LoweredJumpTables++
				}
			}
		})
	}
	return c
}
