// Package harden applies transient control-flow defenses to the indirect
// branches of a module, mirroring §6 of the paper:
//
//   - retpolines for indirect calls (Spectre V2),
//   - return retpolines for returns (Ret2spec / RSB poisoning),
//   - LVI-CFI fences for both edges (Load Value Injection),
//   - a combined "fenced retpoline" when retpolines and LVI-CFI are both
//     requested (the two defenses instrument the same code sequence and
//     are otherwise incompatible — Listing 7), and
//   - jump-table disabling, lowering switch dispatch to compare chains
//     (the default LLVM behaviour when retpolines or LVI are enabled).
//
// Sites that originate from inline assembly cannot be rewritten by the
// compiler and remain vulnerable; the pass counts them (Table 11).
package harden

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/resilience"
)

// Config selects which defenses to enforce. The zero value applies
// nothing.
type Config struct {
	// Retpolines hardens indirect calls and jumps against Spectre V2.
	Retpolines bool
	// RetRetpolines hardens returns against RSB poisoning (Ret2spec).
	RetRetpolines bool
	// LVICFI fences the target loads of indirect calls and returns
	// against Load Value Injection.
	LVICFI bool

	// Non-transient defenses (Table 1's cheap rows). They are measured
	// for completeness and compose with nothing here: the pass applies
	// them only where no transient defense claims the same edge.
	LLVMCFI        bool // forward-edge type-set checks
	StackProtector bool // stack canaries on returns
	SafeStack      bool // separate return stack

	// Post-2021 hardware-assisted backends. They yield to the transient
	// thunks above when both claim an edge (a retpolined site needs no
	// landing-pad check), and otherwise add a cheap check to a normally
	// predicted dispatch.
	//
	// FineIBT places a coarse IBT landing pad with a per-site SID
	// compare at every indirect-call target (forward edge only).
	FineIBT bool
	// PACCFI signs function pointers on the call side and authenticates
	// return addresses (Camouflage-style ARM pointer authentication) —
	// both edges, with the forward cost on the *call*, not the branch.
	PACCFI bool
	// VeriFence fences only the indirect branches the IR verifier
	// cannot prove safe (ir.ProvableSites); provable sites deliberately
	// stay bare, and jump tables are fenced in place instead of lowered.
	VeriFence bool

	// RSBRefill enables the kernel's ad-hoc RSB-stuffing mitigation on
	// privilege transitions instead of hardening each return (§6.4).
	// It rewrites no instructions; the execution engine charges the
	// refill at syscall entry.
	RSBRefill bool
}

// Any reports whether at least one instruction-rewriting defense is
// enabled.
func (c Config) Any() bool {
	return c.Retpolines || c.RetRetpolines || c.LVICFI ||
		c.LLVMCFI || c.StackProtector || c.SafeStack ||
		c.FineIBT || c.PACCFI || c.VeriFence
}

// String names the configuration the way the paper's tables do.
func (c Config) String() string {
	switch {
	case c.Retpolines && c.RetRetpolines && c.LVICFI:
		return "all-defenses"
	case c.Retpolines && c.LVICFI:
		return "retpolines+lvi-cfi"
	case c.Retpolines && c.RetRetpolines:
		return "retpolines+ret-retpolines"
	case c.Retpolines:
		return "retpolines"
	case c.RetRetpolines:
		return "ret-retpolines"
	case c.LVICFI:
		return "lvi-cfi"
	case c.FineIBT && c.PACCFI:
		return "fineibt+pac-cfi"
	case c.FineIBT:
		return "fineibt"
	case c.PACCFI:
		return "pac-cfi"
	case c.VeriFence:
		return "verifence"
	case c.LLVMCFI:
		return "llvm-cfi"
	case c.StackProtector:
		return "stackprotector"
	case c.SafeStack:
		return "safestack"
	case c.RSBRefill:
		return "rsb-refill"
	default:
		return "none"
	}
}

// ForwardDefense returns the thunk applied to a rewriteable indirect call
// under this configuration.
func (c Config) ForwardDefense() ir.Defense {
	switch {
	case c.Retpolines && c.LVICFI:
		return ir.DefFencedRetpoline
	case c.Retpolines:
		return ir.DefRetpoline
	case c.LVICFI:
		return ir.DefLVI
	case c.FineIBT:
		return ir.DefFineIBT
	case c.PACCFI:
		return ir.DefPAC
	case c.LLVMCFI:
		return ir.DefLLVMCFI
	case c.VeriFence:
		// Per-site: unprovable sites get the fence; ir.ProvableSites
		// decides which provable sites stay bare (Apply/CheckInvariants
		// recompute the same set).
		return ir.DefVeriFence
	default:
		return ir.DefNone
	}
}

// BackwardDefense returns the thunk applied to a return.
func (c Config) BackwardDefense() ir.Defense {
	switch {
	case c.RetRetpolines && c.LVICFI:
		return ir.DefFencedRetRet
	case c.RetRetpolines:
		return ir.DefRetRetpoline
	case c.LVICFI:
		return ir.DefLVIRet
	case c.PACCFI:
		return ir.DefPACRet
	case c.StackProtector:
		return ir.DefStackProtector
	case c.SafeStack:
		return ir.DefSafeStack
	default:
		return ir.DefNone
	}
}

// Census summarizes the protection state of a module's forward and
// backward edges (Table 11's statistics).
type Census struct {
	// DefendedICalls is the number of indirect calls rewritten to a
	// defense thunk.
	DefendedICalls int
	// VulnICalls is the number of indirect calls left unprotected
	// (inline-assembly sites the compiler cannot rewrite).
	VulnICalls int
	// ProvenICalls counts indirect calls the VeriFence verifier proved
	// safe and deliberately left bare — protected by proof, not by a
	// thunk, so they are neither defended nor vulnerable.
	ProvenICalls int
	// VulnIJumps is the number of indirect jumps still emitted (jump
	// tables that could not be lowered plus assembly jumps).
	VulnIJumps int
	// DefendedReturns / VulnReturns tally backward edges; boot-only
	// returns are counted as BootReturns and excluded from VulnReturns
	// since they never execute after boot.
	DefendedReturns int
	VulnReturns     int
	BootReturns     int
	// LoweredJumpTables counts switches converted to compare chains.
	LoweredJumpTables int
	// FencedJumpTables counts jump tables kept as tables behind a
	// VeriFence lfence instead of being lowered.
	FencedJumpTables int
}

// Apply instruments the module in place and returns the census. The
// hardening also grows each thunked site: a retpoline call sequence is
// larger than a bare indirect call, which the size accounting of
// Table 12 must see.
func Apply(mod *ir.Module, cfg Config) (*Census, error) {
	if mod == nil {
		return nil, fmt.Errorf("harden: nil module")
	}
	fwd, bwd := cfg.ForwardDefense(), cfg.BackwardDefense()
	var prov map[ir.SiteID]bool
	if fwd == ir.DefVeriFence {
		prov = ir.ProvableSites(mod, 0)
	}
	c := &Census{}
	for _, f := range mod.Funcs {
		boot := f.Attrs.Has(ir.AttrBoot)
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			switch in.Op {
			case ir.OpICall:
				if in.Asm {
					c.VulnICalls++
					return
				}
				if fwd == ir.DefVeriFence && prov[in.Site] {
					// The verifier proved this site; no fence needed.
					in.Defense = ir.DefNone
					c.ProvenICalls++
					return
				}
				in.Defense = fwd
				if fwd != ir.DefNone {
					c.DefendedICalls++
					in.Size = thunkSize(fwd)
				} else {
					c.VulnICalls++
				}
			case ir.OpRet:
				if in.Asm {
					c.VulnReturns++
					return
				}
				if boot {
					c.BootReturns++
					return
				}
				in.Defense = bwd
				if bwd != ir.DefNone {
					c.DefendedReturns++
					in.Size = thunkSize(bwd)
				} else {
					c.VulnReturns++
				}
			case ir.OpSwitch:
				if !in.JumpTable {
					return
				}
				if in.Asm {
					c.VulnIJumps++
					return
				}
				if cfg.Retpolines || cfg.LVICFI {
					in.JumpTable = false
					c.LoweredJumpTables++
					// A compare chain is larger than a table dispatch.
					in.Size = int32(ir.DefaultInstrSize * (1 + len(in.Targets)))
				} else if fwd == ir.DefVeriFence {
					// A data-driven index is never provable; fence the
					// dispatch in place instead of lowering the table.
					in.Defense = ir.DefVeriFence
					in.Size = int32(ir.DefaultInstrSize) + fenceBytes
					c.FencedJumpTables++
				} else {
					c.VulnIJumps++
				}
			}
		})
	}
	return c, nil
}

// fenceBytes is the encoded size of a single lfence (3 bytes on x86-64);
// a VeriFence-fenced jump table keeps its dispatch and grows by exactly
// the fence.
const fenceBytes = 3

// thunkSize returns the encoded size of a hardened branch sequence.
// Values approximate the listings in the paper: a retpoline thunk call
// plus its out-of-line body amortized per site.
// Retpoline thunk bodies are shared (one per register), so a hardened
// call site grows only by the register move and thunk call; return-edge
// sequences are inlined and a little larger.
func thunkSize(d ir.Defense) int32 {
	switch d {
	case ir.DefRetpoline:
		return 8
	case ir.DefLVI:
		return 8
	case ir.DefFencedRetpoline:
		return 10
	case ir.DefRetRetpoline:
		return 12
	case ir.DefLVIRet:
		return 9
	case ir.DefFencedRetRet:
		return 15
	case ir.DefLLVMCFI:
		return 9
	case ir.DefStackProtector:
		return 10
	case ir.DefSafeStack:
		return 8
	case ir.DefFineIBT:
		// endbr64 at the target is charged to the callee; the site pays
		// for the SID move feeding the landing-pad compare.
		return 7
	case ir.DefPAC:
		return 6 // pacia-style sign folded into the call sequence
	case ir.DefPACRet:
		return 6 // autia before the return
	case ir.DefVeriFence:
		return int32(ir.DefaultInstrSize) + fenceBytes
	default:
		return ir.DefaultInstrSize
	}
}

// CheckInvariants verifies PIBE's safety invariant on an already-hardened
// module: every surviving indirect branch the compiler can rewrite
// carries exactly the defense the configuration demands. Optimization
// passes may *eliminate* indirect branches, never *expose* them — a
// rewriteable indirect call without the forward thunk, a post-boot return
// without the backward thunk, or an unlowered jump table under
// retpolines/LVI means a transformation (or a miscompile) dropped a
// hardening site. The first violation is returned as a
// resilience.FaultError of KindUnhardenedSite naming the site; nil means
// the module upholds the invariant.
//
// jumpSwitches relaxes the forward-edge check: under the JumpSwitches
// baseline the build deliberately leaves indirect calls bare for the
// runtime promotion hook, so only backward edges and jump tables are
// enforced.
func CheckInvariants(mod *ir.Module, cfg Config, jumpSwitches bool) error {
	if mod == nil {
		return resilience.Faultf(resilience.PhaseBuild, resilience.KindConfig, "harden", "nil module")
	}
	fwdCfg := cfg.ForwardDefense()
	fwd, bwd := fwdCfg, cfg.BackwardDefense()
	if jumpSwitches {
		fwd = ir.DefNone
	}
	// VeriFence's demand is per-site: ProvableSites is a pure function of
	// the module, so recomputing it here reproduces exactly the set Apply
	// consulted (unless an optimization pass broke a site's provability
	// after hardening — which is precisely the invariant violation this
	// check exists to catch).
	var prov map[ir.SiteID]bool
	if fwd == ir.DefVeriFence {
		prov = ir.ProvableSites(mod, 0)
	}
	var violation *resilience.FaultError
	for _, f := range mod.Funcs {
		if violation != nil {
			break
		}
		boot := f.Attrs.Has(ir.AttrBoot)
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if violation != nil {
				return
			}
			site := fmt.Sprintf("%s/%s[%d]", f.Name, b.Name, i)
			switch in.Op {
			case ir.OpICall:
				want := fwd
				if fwd == ir.DefVeriFence && prov[in.Site] {
					want = ir.DefNone
				}
				if !in.Asm && in.Defense != want {
					violation = resilience.Faultf(resilience.PhaseBuild, resilience.KindUnhardenedSite, site,
						"indirect call carries %v, config demands %v", in.Defense, want)
				}
			case ir.OpRet:
				if !in.Asm && !boot && in.Defense != bwd {
					violation = resilience.Faultf(resilience.PhaseBuild, resilience.KindUnhardenedSite, site,
						"return carries %v, config demands %v", in.Defense, bwd)
				}
			case ir.OpSwitch:
				if in.JumpTable && !in.Asm && (cfg.Retpolines || cfg.LVICFI) {
					violation = resilience.Faultf(resilience.PhaseBuild, resilience.KindUnhardenedSite, site,
						"jump table not lowered under %s", cfg)
				}
				// Jump-table fencing is demanded even under jumpSwitches:
				// the baseline leaves *calls* bare for runtime promotion,
				// never table dispatch.
				if in.JumpTable && !in.Asm && fwdCfg == ir.DefVeriFence &&
					!(cfg.Retpolines || cfg.LVICFI) && in.Defense != ir.DefVeriFence {
					violation = resilience.Faultf(resilience.PhaseBuild, resilience.KindUnhardenedSite, site,
						"jump table not fenced under %s", cfg)
				}
			}
		})
	}
	if violation != nil {
		return violation
	}
	return nil
}

// CollectCensus recomputes the census of an already-hardened module
// without modifying it, given the configuration it was hardened with.
func CollectCensus(mod *ir.Module, cfg Config) *Census {
	var prov map[ir.SiteID]bool
	if cfg.ForwardDefense() == ir.DefVeriFence {
		prov = ir.ProvableSites(mod, 0)
	}
	c := &Census{}
	for _, f := range mod.Funcs {
		boot := f.Attrs.Has(ir.AttrBoot)
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			switch in.Op {
			case ir.OpICall:
				switch {
				case in.Defense != ir.DefNone:
					c.DefendedICalls++
				case !in.Asm && prov[in.Site]:
					c.ProvenICalls++
				default:
					c.VulnICalls++
				}
			case ir.OpRet:
				switch {
				case in.Defense != ir.DefNone:
					c.DefendedReturns++
				case boot:
					c.BootReturns++
				default:
					c.VulnReturns++
				}
			case ir.OpSwitch:
				switch {
				case in.JumpTable && in.Defense == ir.DefVeriFence:
					c.FencedJumpTables++
				case in.JumpTable:
					c.VulnIJumps++
				case cfg.Retpolines || cfg.LVICFI:
					c.LoweredJumpTables++
				}
			}
		})
	}
	return c
}
