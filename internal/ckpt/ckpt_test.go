package ckpt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// payload is a stand-in for a serialized profile: line-oriented with a
// magic header, like the real payloads the fleet and sweep frame.
var payload = []byte("pibe-profile v1\nops 220000\nfn vfs_read 181000\nsite 23 vfs_read indirect 180000 ext4_read:160000 pipe_read:20000\n")

func checkpointSections() []Section {
	return []Section{
		{Name: "meta", Data: []byte("epoch 3\nrebuilds 1\n")},
		{Name: "baseline", Data: payload},
		{Name: "aggregate", Data: append([]byte(nil), payload...)},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	secs := checkpointSections()
	var buf bytes.Buffer
	if err := WriteSections(&buf, secs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(secs) {
		t.Fatalf("round-trip kept %d of %d sections", len(got), len(secs))
	}
	for i := range secs {
		if got[i].Name != secs[i].Name || !bytes.Equal(got[i].Data, secs[i].Data) {
			t.Fatalf("section %d mismatch: %q vs %q", i, got[i].Name, secs[i].Name)
		}
	}
	// Lenient agrees and reports a clean parse.
	lgot, sal, err := ReadSectionsLenient(bytes.NewReader(buf.Bytes()))
	if err != nil || !sal.Clean() || len(lgot) != len(secs) {
		t.Fatalf("lenient on clean input: %d sections, salvage %v, err %v", len(lgot), sal, err)
	}
	// Binary payloads (newlines, NULs, frame-lookalike bytes) survive.
	bin := []Section{{Name: "blob", Data: []byte("sec fake 3 00000000\nend 1\n\x00\xff")}}
	buf.Reset()
	if err := WriteSections(&buf, bin); err != nil {
		t.Fatal(err)
	}
	got, err = ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 1 || !bytes.Equal(got[0].Data, bin[0].Data) {
		t.Fatalf("binary payload mangled: %v, %v", got, err)
	}
}

func TestCheckpointRejectsBadNames(t *testing.T) {
	var buf bytes.Buffer
	for _, name := range []string{"", "two words", "tab\tname", "new\nline"} {
		if err := WriteSections(&buf, []Section{{Name: name}}); err == nil {
			t.Fatalf("WriteSections accepted section name %q", name)
		}
	}
}

func TestCheckpointBitFlip(t *testing.T) {
	secs := checkpointSections()
	var buf bytes.Buffer
	if err := WriteSections(&buf, secs); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Flip one byte inside the middle section's payload: strict must
	// reject, lenient must drop exactly that section and keep the rest.
	flipped := append([]byte(nil), clean...)
	off := bytes.Index(flipped, secs[1].Data) + len(secs[1].Data)/2
	flipped[off] ^= 0x40
	if _, err := ReadSections(bytes.NewReader(flipped)); err == nil {
		t.Fatal("strict read accepted a bit-flipped checkpoint")
	}
	got, sal, err := ReadSectionsLenient(bytes.NewReader(flipped))
	if err != nil {
		t.Fatal(err)
	}
	if sal.Clean() || sal.Dropped != 1 || sal.Kept != 2 {
		t.Fatalf("bit-flip salvage = %+v", sal)
	}
	if len(got) != 2 || got[0].Name != "meta" || got[1].Name != "aggregate" {
		t.Fatalf("salvaged wrong sections: %v", names(got))
	}
	if !bytes.Equal(got[1].Data, secs[2].Data) {
		t.Fatal("section after the damaged one did not survive intact")
	}
}

func TestCheckpointTruncation(t *testing.T) {
	secs := checkpointSections()
	var buf bytes.Buffer
	if err := WriteSections(&buf, secs); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Cut everywhere: the salvage must be a clean prefix of the sections,
	// never an error, never a corrupted payload.
	for cut := 0; cut < len(clean); cut++ {
		torn := clean[:cut]
		if _, err := ReadSections(bytes.NewReader(torn)); err == nil && cut < len(clean) {
			t.Fatalf("strict read accepted a checkpoint torn at %d", cut)
		}
		got, sal, err := ReadSectionsLenient(bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("lenient errored at cut %d: %v", cut, err)
		}
		if sal.Clean() {
			t.Fatalf("torn checkpoint at %d reported clean", cut)
		}
		if len(got) > len(secs) {
			t.Fatalf("cut %d salvaged %d sections from a %d-section file", cut, len(got), len(secs))
		}
		for i, s := range got {
			if s.Name != secs[i].Name || !bytes.Equal(s.Data, secs[i].Data) {
				t.Fatalf("cut %d: salvaged section %d is not the original prefix", cut, i)
			}
		}
	}
}

func TestSaveAtomicLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state")
	secs := checkpointSections()
	if err := SaveAtomic(path, secs); err != nil {
		t.Fatalf("SaveAtomic: %v", err)
	}
	got, sal, err := Load(path)
	if err != nil || !sal.Clean() || len(got) != len(secs) {
		t.Fatalf("Load = %d sections, %v, %v", len(got), sal, err)
	}
	// Overwrite leaves no temp litter.
	if err := SaveAtomic(path, secs[:1]); err != nil {
		t.Fatalf("SaveAtomic overwrite: %v", err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after overwrite, want just the checkpoint", len(entries))
	}
	got, _, err = Load(path)
	if err != nil || len(got) != 1 {
		t.Fatalf("Load after overwrite = %d sections, %v", len(got), err)
	}
}

func TestLoadMissing(t *testing.T) {
	secs, sal, err := Load(filepath.Join(t.TempDir(), "absent"))
	if secs != nil || sal != nil || err != nil {
		t.Fatalf("missing checkpoint should be a fresh start, got %v %v %v", secs, sal, err)
	}
}

// TestAppenderIncremental: a quiescent append-mode checkpoint is a
// strictly valid container after every Append, and resuming compacts a
// salvaged prefix back into one.
func TestAppenderIncremental(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state")
	a, err := CreateAppender(path, Section{Name: "config", Data: []byte("hash abc\n")})
	if err != nil {
		t.Fatalf("CreateAppender: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Append(Section{Name: fmt.Sprintf("cell-%d", i), Data: []byte(strings.Repeat("x", i+1))}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		// Strict read must accept the file at every quiescent point.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		secs, err := ReadSections(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("after append %d: %v", i, err)
		}
		if len(secs) != i+2 || a.Sections() != i+2 {
			t.Fatalf("after append %d: %d sections on disk, appender says %d", i, len(secs), a.Sections())
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume compacts and continues.
	secs, sal, err := Load(path)
	if err != nil || !sal.Clean() || len(secs) != 6 {
		t.Fatalf("Load = %d sections, %v, %v", len(secs), sal, err)
	}
	b, err := ResumeAppender(path, secs)
	if err != nil {
		t.Fatalf("ResumeAppender: %v", err)
	}
	if err := b.Append(Section{Name: "cell-5", Data: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	secs, sal, err = Load(path)
	if err != nil || !sal.Clean() || len(secs) != 7 || secs[6].Name != "cell-5" {
		t.Fatalf("after resume+append: %d sections, %v, %v", len(secs), sal, err)
	}
}

// TestAppenderTornTail: truncating an append-mode checkpoint at any byte
// salvages a clean prefix of the appended sections, and ResumeAppender
// restores a strictly valid file from it.
func TestAppenderTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state")
	a, err := CreateAppender(path, Section{Name: "config", Data: []byte("hash abc\n")})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("hash abc\n")}
	for i := 0; i < 3; i++ {
		data := []byte(fmt.Sprintf("cell %d payload", i))
		want = append(want, data)
		if err := a.Append(Section{Name: fmt.Sprintf("cell-%d", i), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn")
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		secs, _, err := Load(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for i, s := range secs {
			if !bytes.Equal(s.Data, want[i]) {
				t.Fatalf("cut %d: section %d not a clean prefix", cut, i)
			}
		}
		r, err := ResumeAppender(torn, secs)
		if err != nil {
			t.Fatalf("cut %d: ResumeAppender: %v", cut, err)
		}
		if err := r.Append(Section{Name: "tail", Data: []byte("t")}); err != nil {
			t.Fatalf("cut %d: Append after resume: %v", cut, err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(torn)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadSections(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("cut %d: compacted file not strictly valid: %v", cut, err)
		}
		if len(got) != len(secs)+1 {
			t.Fatalf("cut %d: %d sections after resume, want %d", cut, len(got), len(secs)+1)
		}
	}
}

func names(secs []Section) string {
	var parts []string
	for _, s := range secs {
		parts = append(parts, s.Name)
	}
	return fmt.Sprint(parts)
}

// FuzzCheckpointRead mirrors FuzzProfRead for the checkpoint container:
// neither reader may panic on arbitrary input, the lenient reader never
// errors on in-memory input, and whatever it salvages re-frames into a
// checkpoint the strict reader accepts.
func FuzzCheckpointRead(f *testing.F) {
	var buf bytes.Buffer
	secs := []Section{
		{Name: "meta", Data: []byte("epoch 3\n")},
		{Name: "baseline", Data: []byte("pibe-profile v1\nops 7\n")},
	}
	if err := WriteSections(&buf, secs); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add("")
	f.Add("pibe-checkpoint v1\n")
	f.Add("pibe-checkpoint v1\nend 0\n")
	f.Add(valid[:len(valid)/2])                          // torn write
	f.Add(strings.Replace(valid, "epoch", "epocX", 1))   // payload bit-flip
	f.Add(strings.Replace(valid, "sec meta", "sec", 1))  // mangled frame
	f.Add(strings.Replace(valid, "end 2", "end 9", 1))   // wrong end count
	f.Add("wrong magic\nsec a 0 00000000\n\nend 1\n")    // foreign header
	f.Add("pibe-checkpoint v1\nsec a 999999 00000000\n") // length past EOF

	f.Fuzz(func(t *testing.T, data string) {
		ReadSections(strings.NewReader(data))

		got, sal, err := ReadSectionsLenient(strings.NewReader(data))
		if err != nil {
			t.Fatalf("ReadSectionsLenient errored on in-memory input: %v", err)
		}
		if sal == nil {
			t.Fatal("ReadSectionsLenient returned nil salvage")
		}
		var out bytes.Buffer
		if err := WriteSections(&out, got); err != nil {
			t.Fatalf("salvaged sections failed to re-frame: %v", err)
		}
		if _, err := ReadSections(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("salvaged sections did not round-trip strictly: %v", err)
		}
	})
}
