// Package ckpt is the shared crash-safe checkpoint container of the
// reproduction: named, CRC-framed byte sections in a line-oriented,
// versioned file, written either atomically (temp file + sync + rename,
// for whole-state checkpoints like the fleet service's) or incrementally
// (an Appender that syncs after every record, for per-unit checkpoints
// like the sweep's per-cell state file).
//
// The format:
//
//	pibe-checkpoint v1
//	sec meta 42 1a2b3c4d
//	<42 raw payload bytes>
//	sec baseline 1337 deadbeef
//	<1337 raw payload bytes>
//	end 2
//
// A torn or bit-flipped file is detected and salvaged section by
// section: ReadSectionsLenient keeps every section whose frame and CRC
// are intact and reports exactly what was lost. The container carries no
// semantics of its own — callers gate resume on their own content hashes
// (the fleet's baseline hash, the sweep's config fingerprint) stored
// inside a section.
package ckpt

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

const checkpointMagic = "pibe-checkpoint v1"

// Section is one named, CRC-framed payload of a checkpoint file.
type Section struct {
	Name string
	Data []byte
}

// WriteSections serializes the sections in order. Names must be non-empty
// and free of whitespace so the frame lines stay parseable.
func WriteSections(w io.Writer, secs []Section) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n", checkpointMagic); err != nil {
		return err
	}
	for _, s := range secs {
		if err := writeSection(bw, s); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "end %d\n", len(secs)); err != nil {
		return err
	}
	return bw.Flush()
}

// writeSection emits one framed section.
func writeSection(w io.Writer, s Section) error {
	if s.Name == "" || strings.ContainsAny(s.Name, " \t\n\r") {
		return fmt.Errorf("ckpt: checkpoint section name %q is empty or contains whitespace", s.Name)
	}
	crc := crc32.ChecksumIEEE(s.Data)
	if _, err := fmt.Fprintf(w, "sec %s %d %08x\n", s.Name, len(s.Data), crc); err != nil {
		return err
	}
	if _, err := w.Write(s.Data); err != nil {
		return err
	}
	_, err := w.Write([]byte{'\n'})
	return err
}

// Salvage summarizes what a lenient checkpoint read kept and lost.
type Salvage struct {
	// Kept counts sections whose frame and CRC were intact.
	Kept int
	// Dropped counts sections discarded for a CRC mismatch.
	Dropped int
	// Truncated records a torn tail: a frame or payload cut short.
	Truncated bool
	// BadMagic records a missing or wrong header line.
	BadMagic bool
	// MissingEnd records an absent or inconsistent end record (a write
	// that never completed, even if every kept section is intact).
	MissingEnd bool
	// Errs holds the first few salvage reasons, capped.
	Errs []string
}

// Clean reports whether the checkpoint parsed without any degradation.
func (s *Salvage) Clean() bool {
	return s.Dropped == 0 && !s.Truncated && !s.BadMagic && !s.MissingEnd
}

func (s *Salvage) String() string {
	out := fmt.Sprintf("ckpt: checkpoint salvaged %d sections (%d dropped)", s.Kept, s.Dropped)
	if s.Truncated {
		out += ", truncated"
	}
	if s.BadMagic {
		out += ", bad magic"
	}
	if s.MissingEnd {
		out += ", missing end"
	}
	return out
}

// ReadSections parses a checkpoint serialized by WriteSections. It is
// strict: any framing damage, CRC mismatch, missing end record or
// trailing garbage fails the whole read.
func ReadSections(r io.Reader) ([]Section, error) {
	secs, sal, err := readSections(r, false)
	if err != nil {
		return nil, err
	}
	if !sal.Clean() {
		return nil, fmt.Errorf("ckpt: checkpoint damaged: %s", sal)
	}
	return secs, nil
}

// ReadSectionsLenient parses a checkpoint, keeping every section whose
// frame and CRC survive and reporting what was lost. Torn writes salvage
// to the intact prefix. The error is non-nil only when the underlying
// reader fails; the sections and salvage summary are valid even then.
func ReadSectionsLenient(r io.Reader) ([]Section, *Salvage, error) {
	return readSections(r, true)
}

func readSections(r io.Reader, lenient bool) ([]Section, *Salvage, error) {
	br := bufio.NewReader(r)
	sal := &Salvage{}
	note := func(format string, args ...any) {
		if len(sal.Errs) < 8 {
			sal.Errs = append(sal.Errs, fmt.Sprintf(format, args...))
		}
	}
	fail := func(err error) ([]Section, *Salvage, error) {
		if lenient {
			return nil, sal, nil
		}
		return nil, sal, err
	}
	header, err := readLine(br)
	if err != nil {
		sal.BadMagic, sal.MissingEnd = true, true
		note("missing header: %v", err)
		return fail(fmt.Errorf("ckpt: checkpoint missing header: %w", err))
	}
	if header != checkpointMagic {
		sal.BadMagic, sal.MissingEnd = true, true
		note("bad magic %q", header)
		return fail(fmt.Errorf("ckpt: checkpoint bad magic %q", header))
	}
	var secs []Section
	for {
		line, err := readLine(br)
		if err != nil {
			// Ran out before the end record: a write torn between frames.
			sal.Truncated, sal.MissingEnd = true, true
			note("torn between sections: %v", err)
			if lenient {
				return secs, sal, nil
			}
			return nil, sal, fmt.Errorf("ckpt: checkpoint torn (no end record)")
		}
		fields := strings.Fields(line)
		switch {
		case len(fields) == 4 && fields[0] == "sec":
			name := fields[1]
			size, err1 := strconv.ParseInt(fields[2], 10, 63)
			want, err2 := strconv.ParseUint(fields[3], 16, 32)
			if err1 != nil || err2 != nil || size < 0 {
				sal.Truncated, sal.MissingEnd = true, true
				note("malformed frame %q", line)
				if lenient {
					return secs, sal, nil
				}
				return nil, sal, fmt.Errorf("ckpt: checkpoint malformed frame %q", line)
			}
			data := make([]byte, size)
			if _, err := io.ReadFull(br, data); err != nil {
				sal.Truncated, sal.MissingEnd = true, true
				note("section %s payload torn: %v", name, err)
				if lenient {
					return secs, sal, nil
				}
				return nil, sal, fmt.Errorf("ckpt: checkpoint section %s payload torn", name)
			}
			if b, err := br.ReadByte(); err != nil || b != '\n' {
				sal.Truncated, sal.MissingEnd = true, true
				note("section %s frame not newline-terminated", name)
				if lenient {
					return secs, sal, nil
				}
				return nil, sal, fmt.Errorf("ckpt: checkpoint section %s frame not newline-terminated", name)
			}
			if got := crc32.ChecksumIEEE(data); uint64(got) != want {
				// The frame is intact, so the damage is contained: drop just
				// this section and keep scanning.
				sal.Dropped++
				note("section %s crc mismatch: got %08x want %08x", name, got, want)
				if !lenient {
					return nil, sal, fmt.Errorf("ckpt: checkpoint section %s crc mismatch", name)
				}
				continue
			}
			secs = append(secs, Section{Name: name, Data: data})
			sal.Kept++
		case len(fields) == 2 && fields[0] == "end":
			n, err := strconv.Atoi(fields[1])
			if err != nil || n != sal.Kept+sal.Dropped {
				sal.MissingEnd = true
				note("end record %q inconsistent with %d sections", line, sal.Kept+sal.Dropped)
				if !lenient {
					return nil, sal, fmt.Errorf("ckpt: checkpoint end record %q inconsistent", line)
				}
			}
			if _, err := br.ReadByte(); err != io.EOF {
				note("trailing bytes after end record")
				if !lenient {
					return nil, sal, fmt.Errorf("ckpt: checkpoint has trailing bytes after end record")
				}
			}
			return secs, sal, nil
		default:
			sal.Truncated, sal.MissingEnd = true, true
			note("unknown frame %q", line)
			if lenient {
				return secs, sal, nil
			}
			return nil, sal, fmt.Errorf("ckpt: checkpoint unknown frame %q", line)
		}
	}
}

// readLine reads one newline-terminated line, rejecting unterminated
// tails (a torn write).
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("unterminated line: %w", err)
	}
	return strings.TrimSuffix(line, "\n"), nil
}

// SaveAtomic checkpoints secs into path atomically: the sections are
// framed and CRC-guarded, written to a temporary file in the same
// directory, synced, and renamed into place — a crash at any point
// leaves either the previous checkpoint or a salvageable new one, never
// a half-written hole where the old state used to be.
func SaveAtomic(path string, secs []Section) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := WriteSections(tmp, secs); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: checkpoint rename: %w", err)
	}
	return nil
}

// Load reads the checkpoint at path leniently. A missing file returns
// (nil, nil, nil) — a fresh start; any other open failure is an error.
func Load(path string) ([]Section, *Salvage, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: open checkpoint: %w", err)
	}
	defer f.Close()
	secs, sal, err := ReadSectionsLenient(f)
	if err != nil {
		return nil, sal, fmt.Errorf("ckpt: read checkpoint: %w", err)
	}
	return secs, sal, nil
}

// An Appender grows a checkpoint one section at a time, fsyncing after
// every Append so a completed unit of work survives any later crash. The
// end record is rewritten in place on each append, so a quiescent file is
// a strictly valid checkpoint; a crash mid-append leaves an intact prefix
// that ReadSectionsLenient salvages (the torn tail loses at most the
// section being written).
type Appender struct {
	f   *os.File
	off int64 // where the next section frame starts (over the end record)
	n   int   // sections on disk
}

// CreateAppender starts a fresh incremental checkpoint at path,
// truncating whatever was there, and writes the prelude sections (the
// caller's config/fingerprint gate) before returning.
func CreateAppender(path string, prelude ...Section) (*Appender, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: create appender: %w", err)
	}
	header := checkpointMagic + "\nend 0\n"
	if _, err := f.WriteAt([]byte(header), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: appender header: %w", err)
	}
	a := &Appender{f: f, off: int64(len(checkpointMagic) + 1)}
	if err := a.Append(prelude...); err != nil {
		f.Close()
		return nil, err
	}
	return a, nil
}

// ResumeAppender compacts a (possibly torn) incremental checkpoint back
// to the given salvaged sections — rewritten atomically, so a crash
// during compaction cannot lose previously durable sections — and
// reopens it for appending.
func ResumeAppender(path string, secs []Section) (*Appender, error) {
	if err := SaveAtomic(path, secs); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reopen appender: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: appender stat: %w", err)
	}
	end := fmt.Sprintf("end %d\n", len(secs))
	a := &Appender{f: f, off: st.Size() - int64(len(end)), n: len(secs)}
	return a, nil
}

// Append frames and durably writes the given sections: payloads first,
// then the refreshed end record, then one fsync. Safe only from one
// goroutine at a time; callers appending from a worker pool must
// serialize (the sweep holds a mutex around it).
func (a *Appender) Append(secs ...Section) error {
	if len(secs) == 0 {
		return nil
	}
	var block strings.Builder
	for _, s := range secs {
		if err := writeSection(&block, s); err != nil {
			return err
		}
	}
	block.WriteString(fmt.Sprintf("end %d\n", a.n+len(secs)))
	data := []byte(block.String())
	if _, err := a.f.WriteAt(data, a.off); err != nil {
		return fmt.Errorf("ckpt: append: %w", err)
	}
	newLen := a.off + int64(len(data))
	// The old end record is overwritten by the new sections; trim any
	// leftover tail in the (theoretical) case the file shrank.
	if err := a.f.Truncate(newLen); err != nil {
		return fmt.Errorf("ckpt: append truncate: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: append sync: %w", err)
	}
	a.n += len(secs)
	a.off = newLen - int64(len(fmt.Sprintf("end %d\n", a.n)))
	return nil
}

// Sections reports how many sections are durably on disk.
func (a *Appender) Sections() int { return a.n }

// Close syncs and closes the underlying file.
func (a *Appender) Close() error {
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		return err
	}
	return a.f.Close()
}
