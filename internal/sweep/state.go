package sweep

// Crash-safe sweep state. The state file is an internal/ckpt container:
// one "sweep-config" section holding the canonical sweep configuration
// plus its FNV-64a fingerprint, followed by one "cell-<i>" section per
// completed grid cell (i is the global grid index), appended and
// fsynced as cells finish. Because ckpt's appender keeps the container
// strictly valid between appends and a torn tail salvages to the intact
// prefix, a SIGKILL at any point loses at most the cells in flight.
//
// Resume is fingerprint-gated: the stored hash must match the hash the
// resuming run computes from its own flags, otherwise the file is
// rejected — silently mixing cells from two different sweeps would
// produce a report that looks valid and is wrong. Shards are
// deliberately excluded from the fingerprint so the state files of a
// sharded sweep (same grid, different -sweep-shard) agree on the hash
// and Merge can verify they belong together.
//
// Cells are stored as their canonical JSON. Go's float64 JSON encoding
// round-trips exactly (shortest representation that re-parses to the
// same bits), which is what makes a resumed or merged report
// byte-identical to an uninterrupted single-process run's.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ckpt"
)

const stateConfigSection = "sweep-config"

// stateMeta is the parsed "sweep-config" section.
type stateMeta struct {
	Hash         string
	Seed         int64
	ColdFuncs    int
	HelperLayers int
	KneeFactor   float64
	Timings      bool
	ICPGrid      []float64
	InlineGrid   []float64
	Combos       []string
	Cells        int
	// Shard and Shards record which shard of a sharded sweep wrote the
	// file. They sit outside the fingerprint (shard files of one sweep
	// must agree on the hash) but inside the config section, so Merge
	// can reject the same shard supplied twice and resume can reject a
	// state file written by a different shard. -1 marks a file from
	// before the fields existed.
	Shard, Shards int
}

func formatGrid(g []float64) string {
	parts := make([]string, len(g))
	for i, v := range g {
		// 'g'/-1 is the shortest representation that parses back to the
		// same float64, so the grid survives the state file exactly.
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func parseGridLine(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	g := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		g[i] = v
	}
	return g, nil
}

// statePayload renders the canonical configuration text the fingerprint
// covers: everything that determines the meaning of a cell index and
// the bytes of the final report — except the shard assignment, which
// must differ between the state files Merge later combines.
func statePayload(seed int64, cfg *Config, totalCells int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", seed)
	fmt.Fprintf(&b, "cold-funcs %d\n", cfg.ColdFuncs)
	fmt.Fprintf(&b, "helper-layers %d\n", cfg.HelperLayers)
	fmt.Fprintf(&b, "knee-factor %s\n", strconv.FormatFloat(cfg.KneeFactor, 'g', -1, 64))
	fmt.Fprintf(&b, "timings %t\n", cfg.Timings)
	fmt.Fprintf(&b, "icp-grid %s\n", formatGrid(cfg.ICPGrid))
	fmt.Fprintf(&b, "inline-grid %s\n", formatGrid(cfg.InlineGrid))
	names := make([]string, len(cfg.Combos))
	for i, c := range cfg.Combos {
		names[i] = c.Name
	}
	fmt.Fprintf(&b, "combos %s\n", strings.Join(names, ","))
	fmt.Fprintf(&b, "cells %d\n", totalCells)
	return b.String()
}

// stateHash fingerprints the configuration: FNV-64a over the canonical
// payload, 16 hex digits (the same shape prof.Profile.Hash uses).
func stateHash(seed int64, cfg *Config, totalCells int) string {
	h := fnv.New64a()
	h.Write([]byte(statePayload(seed, cfg, totalCells)))
	return fmt.Sprintf("%016x", h.Sum64())
}

func stateConfigData(seed int64, cfg *Config, totalCells int) []byte {
	payload := statePayload(seed, cfg, totalCells)
	// The shard assignment is recorded after the fingerprinted payload:
	// it identifies the file without contributing to the hash.
	shard := fmt.Sprintf("shard %d\nshards %d\n", cfg.Shard, cfg.Shards)
	return []byte("hash " + stateHash(seed, cfg, totalCells) + "\n" + payload + shard)
}

func cellSectionName(i int) string { return fmt.Sprintf("cell-%d", i) }

// parseState decodes the sections of a loaded state file. It is
// lenient the way resume wants: a missing or garbled config section
// returns a nil meta (the caller decides that is fatal), an
// unparseable or out-of-range cell section is dropped with a warning,
// and duplicate cell sections resolve last-writer-wins — a resumed run
// re-appends a failed cell's fresh result after the stale one.
func parseState(secs []ckpt.Section) (*stateMeta, map[int]Cell, []string) {
	var meta *stateMeta
	var warns []string
	type pending struct {
		idx  int
		cell Cell
	}
	var cells []pending
	for _, sec := range secs {
		switch {
		case sec.Name == stateConfigSection:
			m := &stateMeta{Shard: -1, Shards: -1}
			ok := true
			for _, line := range strings.Split(strings.TrimRight(string(sec.Data), "\n"), "\n") {
				key, val, _ := strings.Cut(line, " ")
				var err error
				switch key {
				case "hash":
					m.Hash = val
				case "seed":
					m.Seed, err = strconv.ParseInt(val, 10, 64)
				case "cold-funcs":
					m.ColdFuncs, err = strconv.Atoi(val)
				case "helper-layers":
					m.HelperLayers, err = strconv.Atoi(val)
				case "knee-factor":
					m.KneeFactor, err = strconv.ParseFloat(val, 64)
				case "timings":
					m.Timings, err = strconv.ParseBool(val)
				case "icp-grid":
					m.ICPGrid, err = parseGridLine(val)
				case "inline-grid":
					m.InlineGrid, err = parseGridLine(val)
				case "combos":
					m.Combos = strings.Split(val, ",")
				case "cells":
					m.Cells, err = strconv.Atoi(val)
				case "shard":
					m.Shard, err = strconv.Atoi(val)
				case "shards":
					m.Shards, err = strconv.Atoi(val)
				}
				if err != nil {
					warns = append(warns, fmt.Sprintf("state config line %q: %v", line, err))
					ok = false
				}
			}
			if !ok || m.Hash == "" || m.Cells <= 0 {
				warns = append(warns, "state config section unusable")
				continue
			}
			meta = m
		case strings.HasPrefix(sec.Name, "cell-"):
			idx, err := strconv.Atoi(strings.TrimPrefix(sec.Name, "cell-"))
			if err != nil || idx < 0 {
				warns = append(warns, fmt.Sprintf("dropping state section %q: bad cell index", sec.Name))
				continue
			}
			var c Cell
			if err := json.Unmarshal(sec.Data, &c); err != nil {
				warns = append(warns, fmt.Sprintf("dropping state cell %d: %v", idx, err))
				continue
			}
			cells = append(cells, pending{idx, c})
		default:
			warns = append(warns, fmt.Sprintf("dropping unknown state section %q", sec.Name))
		}
	}
	out := make(map[int]Cell, len(cells))
	for _, p := range cells {
		if meta != nil && p.idx >= meta.Cells {
			warns = append(warns, fmt.Sprintf("dropping state cell %d: index outside grid of %d cells", p.idx, meta.Cells))
			continue
		}
		out[p.idx] = p.cell // last writer wins
	}
	return meta, out, warns
}

// stateWriter serializes concurrent cell appends from the sweep's
// worker pool onto the single-goroutine ckpt.Appender.
type stateWriter struct {
	mu  sync.Mutex
	app *ckpt.Appender
}

func (w *stateWriter) put(i int, c Cell) error {
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.app.Append(ckpt.Section{Name: cellSectionName(i), Data: data})
}

func (w *stateWriter) Close() error {
	if w == nil || w.app == nil {
		return nil
	}
	return w.app.Close()
}

// openState opens cfg.StatePath for this run: a fresh file gets the
// config section and an empty cell log; an existing file is
// fingerprint-checked, its completed cells returned for skipping, and
// the file compacted (dropping any torn tail) before appending resumes.
func openState(seed int64, cfg *Config, totalCells int) (map[int]Cell, *stateWriter, error) {
	cfgSec := ckpt.Section{Name: stateConfigSection, Data: stateConfigData(seed, cfg, totalCells)}
	secs, sal, err := ckpt.Load(cfg.StatePath)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: load state %s: %w", cfg.StatePath, err)
	}
	if secs == nil && sal == nil {
		app, err := ckpt.CreateAppender(cfg.StatePath, cfgSec)
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: create state %s: %w", cfg.StatePath, err)
		}
		return nil, &stateWriter{app: app}, nil
	}
	if sal != nil && !sal.Clean() {
		cfg.Warnf("sweep: warning: state file %s was torn; salvaged intact prefix (%s)", cfg.StatePath, sal)
	}
	meta, cells, warns := parseState(secs)
	for _, w := range warns {
		cfg.Warnf("sweep: warning: %s", w)
	}
	if meta == nil {
		return nil, nil, fmt.Errorf("sweep: state file %s has no usable config section; delete it to start over", cfg.StatePath)
	}
	if want := stateHash(seed, cfg, totalCells); meta.Hash != want {
		return nil, nil, fmt.Errorf("sweep: state file %s was written by a different sweep configuration (its hash %s, this run's %s); delete it or rerun with the original flags", cfg.StatePath, meta.Hash, want)
	}
	if meta.Shard >= 0 && (meta.Shard != cfg.Shard || meta.Shards != cfg.Shards) {
		return nil, nil, fmt.Errorf("sweep: state file %s was written by shard %d/%d, this run is shard %d/%d; resuming would mix shards' cells into one file", cfg.StatePath, meta.Shard, meta.Shards, cfg.Shard, cfg.Shards)
	}
	// Compact before resuming: rewrite config plus the surviving cells
	// atomically, so appends land on a strictly valid container even if
	// the crash left a torn tail behind.
	keep := []ckpt.Section{cfgSec}
	idxs := make([]int, 0, len(cells))
	for i := range cells {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		data, err := json.Marshal(cells[i])
		if err != nil {
			return nil, nil, err
		}
		keep = append(keep, ckpt.Section{Name: cellSectionName(i), Data: data})
	}
	app, err := ckpt.ResumeAppender(cfg.StatePath, keep)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: resume state %s: %w", cfg.StatePath, err)
	}
	cfg.Warnf("sweep: resuming from %s: %d of %d cells already complete", cfg.StatePath, len(cells), totalCells)
	return cells, &stateWriter{app: app}, nil
}

// MergeInfo summarizes what Merge combined.
type MergeInfo struct {
	// Files is the number of state files read; Cells the number of
	// distinct grid cells recovered across them.
	Files, Cells int
	// Failed counts merged cells that are failure records.
	Failed int
	// Missing lists global grid indices present in no state file —
	// cells a crashed or unfinished shard never completed.
	Missing []int
	// Warnings carries per-file salvage notes (dropped sections, torn
	// tails) for the caller to surface.
	Warnings []string
}

// Merge combines the state files of a sharded (or merely interrupted)
// sweep into the canonical report. Every file must carry the same
// configuration fingerprint; the grids, combos, and knee factor are
// reconstructed from the first file's config section, cells are
// reassembled in global grid order, and knees recomputed — the result
// is byte-identical to the report a single uninterrupted process would
// have emitted, provided no cells are missing. When the same cell
// appears in several files, a successful record beats a failed one and
// two conflicting successful records are an error.
func Merge(paths []string) (*Report, *MergeInfo, error) {
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("sweep: merge: no state files given")
	}
	var meta *stateMeta
	cells := make(map[int]Cell)
	var warns []string
	// A duplicated input — the same file twice, or two files written by
	// the same shard — is rejected rather than silently deduplicated:
	// last-writer-wins would hide that the user meant to pass a
	// *different* shard's file, leaving its cells quietly missing.
	seenPath := make(map[string]string, len(paths))
	seenShard := make(map[string]string, len(paths))
	for _, path := range paths {
		clean := filepath.Clean(path)
		if prev, dup := seenPath[clean]; dup {
			return nil, nil, fmt.Errorf("sweep: merge: state file %s supplied twice (as %s and %s); pass each shard's file exactly once", clean, prev, path)
		}
		seenPath[clean] = path
		secs, sal, err := ckpt.Load(path)
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: merge: load %s: %w", path, err)
		}
		if secs == nil && sal == nil {
			return nil, nil, fmt.Errorf("sweep: merge: state file %s does not exist", path)
		}
		if sal != nil && !sal.Clean() {
			warns = append(warns, fmt.Sprintf("state file %s was torn; salvaged intact prefix (%s)", path, sal))
		}
		m, cs, w := parseState(secs)
		warns = append(warns, w...)
		if m == nil {
			return nil, nil, fmt.Errorf("sweep: merge: state file %s has no usable config section", path)
		}
		if meta == nil {
			meta = m
		} else if m.Hash != meta.Hash {
			return nil, nil, fmt.Errorf("sweep: merge: state file %s belongs to a different sweep configuration (hash %s, want %s)", path, m.Hash, meta.Hash)
		}
		if m.Shard >= 0 {
			key := fmt.Sprintf("%d/%d", m.Shard, m.Shards)
			if prev, dup := seenShard[key]; dup {
				return nil, nil, fmt.Errorf("sweep: merge: state files %s and %s were both written by shard %d/%d; the same shard supplied twice means another shard's file is missing", prev, path, m.Shard, m.Shards)
			}
			seenShard[key] = path
		}
		for i, c := range cs {
			prev, ok := cells[i]
			switch {
			case !ok:
				cells[i] = c
			case prev.Failed && !c.Failed:
				cells[i] = c
			case !prev.Failed && !c.Failed:
				a, _ := json.Marshal(prev)
				b, _ := json.Marshal(c)
				if string(a) != string(b) {
					return nil, nil, fmt.Errorf("sweep: merge: cell %d has conflicting successful results across state files", i)
				}
			}
		}
	}
	rep := &Report{
		Seed:         meta.Seed,
		ColdFuncs:    meta.ColdFuncs,
		HelperLayers: meta.HelperLayers,
		ICPGrid:      meta.ICPGrid,
		InlineGrid:   meta.InlineGrid,
		KneeFactor:   meta.KneeFactor,
		Combos:       meta.Combos,
	}
	info := &MergeInfo{Files: len(paths), Cells: len(cells), Warnings: warns}
	for i := 0; i < meta.Cells; i++ {
		c, ok := cells[i]
		if !ok {
			info.Missing = append(info.Missing, i)
			continue
		}
		rep.Cells = append(rep.Cells, c)
		if c.Failed {
			rep.FailedCells++
			info.Failed++
		}
	}
	kcfg := Config{
		ICPGrid:    meta.ICPGrid,
		InlineGrid: meta.InlineGrid,
		KneeFactor: meta.KneeFactor,
	}
	for _, n := range meta.Combos {
		kcfg.Combos = append(kcfg.Combos, Combo{Name: n})
	}
	rep.Knees = knees(kcfg, rep.Cells)
	return rep, info, nil
}
