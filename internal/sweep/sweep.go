// Package sweep is the dense budget-grid engine behind `pibe sweep`: it
// evaluates every cell of an ICP×inline budget grid crossed with the
// four transient-defense combinations of the paper's evaluation, and
// reports the full overhead surface instead of the three spot budgets
// the individual tables use.
//
// The paper's headline claim is a curve, not a point — overhead falls
// from 149.1% to 10.6% as the optimization budgets sweep from 0% to
// 99.9% under all defenses (PIBE §8, Tables 1–2 and 5) — and the sweep
// reproduces that trajectory per defense combo, answers "which budget
// do I pick" with automatic knee-point detection, and emits both
// aligned text matrices and a machine-readable BENCH_sweep.json.
//
// Cells share one bench.Suite, so the singleflight image/latency caches
// build each configuration exactly once no matter how the grid is
// fanned out, and measurement inside a cell goes through the sharded
// deterministic driver when the suite's system has measure workers set.
// The report is a pure function of (kernel config, grid, combos): cells
// are assembled in grid order, not completion order, and every float in
// the JSON comes from the deterministic measurement path, so the
// emitted bytes are identical for every worker count ≥ 1. Wall-clock
// build times are the one exception; they are recorded only when
// Config.Timings is set (and are zero otherwise), which is why the
// default emission stays byte-reproducible.
package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	pibe "repro"
	"repro/internal/bench"
)

// DefaultGrid is the default budget grid applied to both axes: the
// paper's 0-to-99.9999% trajectory densified around the knee region
// where the curve flattens.
var DefaultGrid = []float64{0, 0.5, 0.9, 0.99, 0.999, 0.9999, 0.999999}

// Combo names one defense combination of the sweep.
type Combo struct {
	Name     string
	Defenses pibe.Defenses
}

// DefaultCombos are the four transient-defense combinations the paper
// evaluates: each Spectre-class defense alone, then all of them.
func DefaultCombos() []Combo {
	return []Combo{
		{"retpoline", pibe.Defenses{Retpolines: true}},
		{"ret-retpoline", pibe.Defenses{RetRetpolines: true}},
		{"lvi-cfi", pibe.Defenses{LVICFI: true}},
		{"all", pibe.AllDefenses},
	}
}

// CombosByName resolves a comma-separated combo list ("retpoline,all")
// against DefaultCombos.
func CombosByName(s string) ([]Combo, error) {
	all := DefaultCombos()
	var out []Combo
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, c := range all {
			if c.Name == name {
				out = append(out, c)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sweep: unknown defense combo %q (have retpoline, ret-retpoline, lvi-cfi, all)", name)
		}
	}
	if len(out) == 0 {
		return all, nil
	}
	return out, nil
}

// ParseGrid parses a comma-separated budget grid given in percent
// ("0,50,90,99,99.9"). Values must be fractions of coverage in
// [0, 100); they are sorted ascending and deduplicated.
func ParseGrid(s string) ([]float64, error) {
	var grid []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(tok), "%"))
		if tok == "" {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad grid value %q: %v", tok, err)
		}
		if math.IsNaN(v) || v < 0 || v >= 100 {
			return nil, fmt.Errorf("sweep: grid value %v%% outside [0, 100)", v)
		}
		// Snap the percent-to-fraction division to 15 significant digits
		// so "99.9" becomes exactly 0.999 rather than 0.999000...01; the
		// budgets land verbatim in BENCH_sweep.json and in image cache
		// keys, where float noise would only confuse.
		f, _ := strconv.ParseFloat(strconv.FormatFloat(v/100, 'g', 15, 64), 64)
		grid = append(grid, f)
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	sort.Float64s(grid)
	uniq := grid[:1]
	for _, v := range grid[1:] {
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq, nil
}

// ScaledKernelConfig maps the -sweep-kernel-scale factor onto a kernel
// configuration: scale 1 is the default calibrated kernel; scale S
// multiplies the cold driver corpus (ColdFuncs into the thousands) and
// adds S-1 helper layers (capped at 4 so hot stacks stay plausible),
// stressing the census tables at realistic scale.
func ScaledKernelConfig(seed int64, scale int) pibe.KernelConfig {
	cfg := pibe.KernelConfig{Seed: seed}
	if scale <= 1 {
		return cfg
	}
	cfg.ColdFuncs = 2200 * scale
	layers := scale - 1
	if layers > 4 {
		layers = 4
	}
	cfg.HelperLayers = layers
	return cfg
}

// Config parameterizes one sweep run.
type Config struct {
	// ICPGrid and InlineGrid are the budgets swept on each axis, as
	// fractions (0.999 for 99.9%). Empty selects DefaultGrid.
	ICPGrid, InlineGrid []float64
	// Combos are the defense combinations crossed with the grid; empty
	// selects DefaultCombos.
	Combos []Combo
	// KneeFactor is the slowdown-factor tolerance of knee detection:
	// the knee is the least aggressive cell whose slowdown factor
	// (1+geomean) is within KneeFactor of the combo's best. Zero means
	// the default 1.1.
	KneeFactor float64
	// Timings records wall-clock build times into the report. Off by
	// default because wall time is the only non-deterministic field:
	// without it BENCH_sweep.json is byte-identical across runs and
	// worker counts.
	Timings bool
	// Warnf receives aggregation-degradation warnings (a cell's
	// geomean skipped non-finite overheads or clamped factors). Nil
	// logs to stderr.
	Warnf func(format string, args ...any)
}

func (c *Config) fill() {
	if len(c.ICPGrid) == 0 {
		c.ICPGrid = DefaultGrid
	}
	if len(c.InlineGrid) == 0 {
		c.InlineGrid = DefaultGrid
	}
	if len(c.Combos) == 0 {
		c.Combos = DefaultCombos()
	}
	if c.KneeFactor <= 0 {
		c.KneeFactor = 1.1
	}
	if c.Warnf == nil {
		c.Warnf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
}

// Cell is one evaluated (combo, icp, inline) grid point.
type Cell struct {
	Combo        string  `json:"combo"`
	ICPBudget    float64 `json:"icp_budget"`
	InlineBudget float64 `json:"inline_budget"`
	// Geomean is the LMBench geomean overhead versus the LTO baseline.
	Geomean float64 `json:"geomean_overhead"`
	// ICPWeightFrac is the fraction of candidate indirect-branch
	// weight eliminated by promotion; InlineReturnFrac the fraction of
	// profiled return weight elided by inlining.
	ICPWeightFrac    float64 `json:"icp_weight_eliminated"`
	InlineReturnFrac float64 `json:"inline_return_weight_elided"`
	// GeomeanSkipped/GeomeanClamped count aggregation repairs (see
	// workload.GeomeanStats); nonzero means this cell's curve point is
	// not a faithful summary of its per-benchmark overheads.
	GeomeanSkipped int `json:"geomean_skipped"`
	GeomeanClamped int `json:"geomean_clamped"`
	// BuildMS is the wall-clock image build time; recorded only under
	// Config.Timings (0 otherwise, keeping the report deterministic).
	BuildMS float64 `json:"build_ms"`
}

// Knee is the per-combo answer to "which budget do I pick": the least
// aggressive cell whose slowdown factor is within the knee factor of
// the combo's best cell.
type Knee struct {
	Combo        string  `json:"combo"`
	ICPBudget    float64 `json:"icp_budget"`
	InlineBudget float64 `json:"inline_budget"`
	Geomean      float64 `json:"geomean_overhead"`
	BestGeomean  float64 `json:"best_geomean"`
}

// Report is the machine-readable result of one sweep (BENCH_sweep.json).
type Report struct {
	Seed         int64     `json:"seed"`
	ColdFuncs    int       `json:"cold_funcs,omitempty"`
	HelperLayers int       `json:"helper_layers,omitempty"`
	ICPGrid      []float64 `json:"icp_grid"`
	InlineGrid   []float64 `json:"inline_grid"`
	KneeFactor   float64   `json:"knee_factor"`
	Combos       []string  `json:"combos"`
	Cells        []Cell    `json:"cells"`
	Knees        []Knee    `json:"knees"`
}

// Run evaluates the full grid against the suite's kernel. Cells fan out
// across the suite's worker pool (every cell runs even if one fails and
// the lowest-index error wins, mirroring Suite.ForEach's contract), and
// the report is assembled in deterministic grid order: combos in config
// order, then ICP budget, then inline budget.
func Run(s *bench.Suite, cfg Config) (*Report, error) {
	cfg.fill()
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	type cellKey struct {
		combo    int
		icp, inl int
	}
	keys := make([]cellKey, 0, len(cfg.Combos)*len(cfg.ICPGrid)*len(cfg.InlineGrid))
	for ci := range cfg.Combos {
		for ii := range cfg.ICPGrid {
			for li := range cfg.InlineGrid {
				keys = append(keys, cellKey{ci, ii, li})
			}
		}
	}
	cells := make([]Cell, len(keys))
	if err := s.ForEach(len(keys), func(i int) error {
		k := keys[i]
		combo := cfg.Combos[k.combo]
		icp, inl := cfg.ICPGrid[k.icp], cfg.InlineGrid[k.inl]
		name := fmt.Sprintf("sweep-%s-icp%g-inl%g", combo.Name, icp, inl)
		bc := pibe.BuildConfig{
			Profile:  s.ProfLM,
			Defenses: combo.Defenses,
			Optimize: pibe.OptimizeConfig{ICPBudget: icp, InlineBudget: inl},
		}
		start := time.Now()
		img, err := s.Image(name, bc)
		if err != nil {
			return fmt.Errorf("sweep: cell %s: %w", name, err)
		}
		buildMS := float64(time.Since(start).Nanoseconds()) / 1e6
		lat, err := s.Latencies(name, bc)
		if err != nil {
			return fmt.Errorf("sweep: cell %s: %w", name, err)
		}
		ovs := make([]float64, len(lat))
		for j := range lat {
			ovs[j] = pibe.Overhead(base[j].Micros, lat[j].Micros)
		}
		g, stats := pibe.GeomeanCounted(ovs)
		if stats.Degenerate() {
			cfg.Warnf("sweep: warning: cell %s geomean degraded: %s", name, stats)
		}
		c := Cell{
			Combo:          combo.Name,
			ICPBudget:      icp,
			InlineBudget:   inl,
			Geomean:        g,
			GeomeanSkipped: stats.Skipped,
			GeomeanClamped: stats.Clamped,
		}
		if cfg.Timings {
			c.BuildMS = buildMS
		}
		if r := img.Opt.ICP; r != nil && r.TotalWeight > 0 {
			c.ICPWeightFrac = float64(r.PromotedWeight) / float64(r.TotalWeight)
		}
		if r := img.Opt.Inline; r != nil {
			c.InlineReturnFrac = r.ElidedReturnFraction()
		}
		cells[i] = c
		return nil
	}); err != nil {
		return nil, err
	}
	rep := &Report{
		Seed:       s.Seed,
		ICPGrid:    cfg.ICPGrid,
		InlineGrid: cfg.InlineGrid,
		KneeFactor: cfg.KneeFactor,
		Cells:      cells,
	}
	for _, c := range cfg.Combos {
		rep.Combos = append(rep.Combos, c.Name)
	}
	rep.Knees = knees(cfg, cells)
	return rep, nil
}

// knees finds, per combo, the least aggressive cell whose slowdown
// factor (1+geomean) is within cfg.KneeFactor of the combo's best
// (lowest) factor. "Least aggressive" orders cells by max(icp, inline)
// ascending, then icp+inline, then geomean, then (icp, inline) — so the
// knee is the cheapest budget pair that already buys (nearly) the full
// win, the answer to the paper's "which budget do I pick". Factors
// rather than raw geomeans keep the comparison meaningful when the best
// overhead is negative (the PGO-only combos can beat the LTO baseline).
func knees(cfg Config, cells []Cell) []Knee {
	var out []Knee
	for _, combo := range cfg.Combos {
		best, bestGeomean := math.Inf(1), math.Inf(1)
		for _, c := range cells {
			if c.Combo == combo.Name && 1+c.Geomean < best {
				best, bestGeomean = 1+c.Geomean, c.Geomean
			}
		}
		if math.IsInf(best, 1) {
			continue
		}
		kneeIdx := -1
		better := func(a, b Cell) bool {
			am, bm := math.Max(a.ICPBudget, a.InlineBudget), math.Max(b.ICPBudget, b.InlineBudget)
			if am != bm {
				return am < bm
			}
			as, bs := a.ICPBudget+a.InlineBudget, b.ICPBudget+b.InlineBudget
			if as != bs {
				return as < bs
			}
			if a.Geomean != b.Geomean {
				return a.Geomean < b.Geomean
			}
			if a.ICPBudget != b.ICPBudget {
				return a.ICPBudget < b.ICPBudget
			}
			return a.InlineBudget < b.InlineBudget
		}
		for i, c := range cells {
			if c.Combo != combo.Name || 1+c.Geomean > cfg.KneeFactor*best {
				continue
			}
			if kneeIdx < 0 || better(c, cells[kneeIdx]) {
				kneeIdx = i
			}
		}
		if kneeIdx >= 0 {
			k := cells[kneeIdx]
			out = append(out, Knee{
				Combo:        k.Combo,
				ICPBudget:    k.ICPBudget,
				InlineBudget: k.InlineBudget,
				Geomean:      k.Geomean,
				BestGeomean:  bestGeomean,
			})
		}
	}
	return out
}

// WriteJSON marshals the report as indented JSON (a trailing newline
// included). Marshaling is deterministic: field order is fixed by the
// struct definitions and cells are in grid order.
func (r *Report) WriteJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Tables renders one aligned text matrix per combo: rows are ICP
// budgets, columns inline budgets, cells the geomean overhead. The
// combo's knee cell is marked with '*' and restated in the notes.
func (r *Report) Tables() []*bench.Table {
	idx := make(map[string]Cell, len(r.Cells))
	for _, c := range r.Cells {
		idx[fmt.Sprintf("%s/%g/%g", c.Combo, c.ICPBudget, c.InlineBudget)] = c
	}
	kneeOf := make(map[string]Knee, len(r.Knees))
	for _, k := range r.Knees {
		kneeOf[k.Combo] = k
	}
	var out []*bench.Table
	for _, combo := range r.Combos {
		t := &bench.Table{
			ID:     "sweep-" + combo,
			Title:  fmt.Sprintf("Budget sweep, %s defenses: LMBench geomean overhead (icp ↓ × inline →)", combo),
			Header: []string{"icp \\ inline"},
		}
		for _, inl := range r.InlineGrid {
			t.Header = append(t.Header, BudgetLabel(inl))
		}
		knee, hasKnee := kneeOf[combo]
		for _, icp := range r.ICPGrid {
			row := []string{BudgetLabel(icp)}
			for _, inl := range r.InlineGrid {
				c, ok := idx[fmt.Sprintf("%s/%g/%g", combo, icp, inl)]
				if !ok {
					row = append(row, "n/a")
					continue
				}
				cell := fmt.Sprintf("%+.1f%%", 100*c.Geomean)
				if hasKnee && knee.ICPBudget == icp && knee.InlineBudget == inl {
					cell += "*"
				}
				row = append(row, cell)
			}
			t.Rows = append(t.Rows, row)
		}
		if hasKnee {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"knee (*): icp %s × inline %s at %+.1f%% — least aggressive cell within %.2fx of the best %+.1f%%",
				BudgetLabel(knee.ICPBudget), BudgetLabel(knee.InlineBudget),
				100*knee.Geomean, r.KneeFactor, 100*knee.BestGeomean))
		}
		out = append(out, t)
	}
	return out
}

// BudgetLabel renders a budget fraction the way the paper writes it
// ("99.9%").
func BudgetLabel(b float64) string {
	v := strconv.FormatFloat(b*100, 'f', 6, 64)
	v = strings.TrimRight(v, "0")
	v = strings.TrimRight(v, ".")
	return v + "%"
}
