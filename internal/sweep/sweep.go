// Package sweep is the dense budget-grid engine behind `pibe sweep`: it
// evaluates every cell of an ICP×inline budget grid crossed with the
// four transient-defense combinations of the paper's evaluation, and
// reports the full overhead surface instead of the three spot budgets
// the individual tables use.
//
// The paper's headline claim is a curve, not a point — overhead falls
// from 149.1% to 10.6% as the optimization budgets sweep from 0% to
// 99.9% under all defenses (PIBE §8, Tables 1–2 and 5) — and the sweep
// reproduces that trajectory per defense combo, answers "which budget
// do I pick" with automatic knee-point detection, and emits both
// aligned text matrices and a machine-readable BENCH_sweep.json.
//
// Cells share one bench.Suite, so the singleflight image/latency caches
// build each configuration exactly once no matter how the grid is
// fanned out, and measurement inside a cell goes through the sharded
// deterministic driver when the suite's system has measure workers set.
// The report is a pure function of (kernel config, grid, combos): cells
// are assembled in grid order, not completion order, and every float in
// the JSON comes from the deterministic measurement path, so the
// emitted bytes are identical for every worker count ≥ 1. Wall-clock
// build times are the one exception; they are recorded only when
// Config.Timings is set (and are zero otherwise), which is why the
// default emission stays byte-reproducible.
//
// A sweep at -sweep-kernel-scale is hours of compute, so the engine is
// crash-safe and degrades gracefully rather than being all-or-nothing:
//
//   - With Config.StatePath set, every completed cell is appended to a
//     CRC-framed state file (internal/ckpt) and fsynced, so a SIGKILL at
//     any point loses at most the cells in flight. A rerun with the same
//     path resumes by skipping completed cells — the resumed
//     BENCH_sweep.json is byte-identical to an uninterrupted run's.
//     Resume is gated on a fingerprint of the sweep configuration; a
//     state file from a different configuration is rejected.
//   - A cell whose build or measurement fails is retried under
//     Config.Retry (capped exponential backoff for transient faults),
//     and if it keeps failing it degrades instead of aborting the sweep:
//     the cell is marked failed in the report with its structured fault,
//     excluded from knee detection, and rendered as a FAIL entry plus a
//     per-combo warning note in the text matrices.
//   - Config.Shards/Shard partition the grid deterministically across
//     cooperating processes (cell index modulo shard count); Merge
//     combines the shard state files back into the canonical report,
//     byte-identical to what a single process would have emitted.
package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	pibe "repro"
	"repro/internal/bench"
	"repro/internal/resilience"
)

// DefaultGrid is the default budget grid applied to both axes: the
// paper's 0-to-99.9999% trajectory densified around the knee region
// where the curve flattens.
var DefaultGrid = []float64{0, 0.5, 0.9, 0.99, 0.999, 0.9999, 0.999999}

// Combo names one defense combination of the sweep.
type Combo struct {
	Name     string
	Defenses pibe.Defenses
}

// DefaultCombos are the defense combinations crossed with the budget
// grid: the paper's four transient-defense rows (each Spectre-class
// defense alone, then all of them) plus the three post-2021 backends,
// whose cost shapes move the knee (see EXPERIMENTS.md).
func DefaultCombos() []Combo {
	return []Combo{
		{"retpoline", pibe.Defenses{Retpolines: true}},
		{"ret-retpoline", pibe.Defenses{RetRetpolines: true}},
		{"lvi-cfi", pibe.Defenses{LVICFI: true}},
		{"fineibt", pibe.Defenses{FineIBT: true}},
		{"pac-cfi", pibe.Defenses{PACCFI: true}},
		{"verifence", pibe.Defenses{VeriFence: true}},
		{"all", pibe.AllDefenses},
	}
}

// CombosByName resolves a comma-separated combo list ("retpoline,all")
// against DefaultCombos. Duplicate names are rejected: a repeated combo
// would silently double its cells in the result surface and break the
// byte-identical determinism contract.
func CombosByName(s string) ([]Combo, error) {
	all := DefaultCombos()
	known := make([]string, len(all))
	for i, c := range all {
		known[i] = c.Name
	}
	seen := make(map[string]bool)
	var out []Combo
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if seen[name] {
			return nil, resilience.Faultf(resilience.PhaseMeasure, resilience.KindConfig, "sweep-combos",
				"duplicate defense combo %q", name)
		}
		seen[name] = true
		found := false
		for _, c := range all {
			if c.Name == name {
				out = append(out, c)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sweep: unknown defense combo %q (have %s)", name, strings.Join(known, ", "))
		}
	}
	if len(out) == 0 {
		return all, nil
	}
	return out, nil
}

// ParseGrid parses a comma-separated budget grid given in percent
// ("0,50,90,99,99.9"). Values must be fractions of coverage in
// [0, 100); they are sorted ascending and deduplicated.
func ParseGrid(s string) ([]float64, error) {
	var grid []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(tok), "%"))
		if tok == "" {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad grid value %q: %w", tok, err)
		}
		if math.IsNaN(v) || v < 0 || v >= 100 {
			return nil, fmt.Errorf("sweep: grid value %v%% outside [0, 100)", v)
		}
		// Snap the percent-to-fraction division to 15 significant digits
		// so "99.9" becomes exactly 0.999 rather than 0.999000...01; the
		// budgets land verbatim in BENCH_sweep.json and in image cache
		// keys, where float noise would only confuse.
		f, _ := strconv.ParseFloat(strconv.FormatFloat(v/100, 'g', 15, 64), 64)
		grid = append(grid, f)
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	sort.Float64s(grid)
	uniq := grid[:1]
	for _, v := range grid[1:] {
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq, nil
}

// ScaledKernelConfig maps the -sweep-kernel-scale factor onto a kernel
// configuration: scale 1 is the default calibrated kernel; scale S
// multiplies the cold driver corpus (ColdFuncs into the thousands) and
// adds S-1 helper layers (capped at 4 so hot stacks stay plausible),
// stressing the census tables at realistic scale.
func ScaledKernelConfig(seed int64, scale int) pibe.KernelConfig {
	cfg := pibe.KernelConfig{Seed: seed}
	if scale <= 1 {
		return cfg
	}
	cfg.ColdFuncs = 2200 * scale
	layers := scale - 1
	if layers > 4 {
		layers = 4
	}
	cfg.HelperLayers = layers
	return cfg
}

// Config parameterizes one sweep run.
type Config struct {
	// ICPGrid and InlineGrid are the budgets swept on each axis, as
	// fractions (0.999 for 99.9%). Empty selects DefaultGrid.
	ICPGrid, InlineGrid []float64
	// Combos are the defense combinations crossed with the grid; empty
	// selects DefaultCombos.
	Combos []Combo
	// KneeFactor is the slowdown-factor tolerance of knee detection:
	// the knee is the least aggressive cell whose slowdown factor
	// (1+geomean) is within KneeFactor of the combo's best. Zero means
	// the default 1.1.
	KneeFactor float64
	// Timings records wall-clock build times into the report. Off by
	// default because wall time is the only non-deterministic field:
	// without it BENCH_sweep.json is byte-identical across runs and
	// worker counts.
	Timings bool
	// ColdFuncs and HelperLayers record the kernel scaling of the suite
	// (sweep.ScaledKernelConfig) into the report and the state-file
	// fingerprint; zero means the default calibrated kernel.
	ColdFuncs, HelperLayers int
	// StatePath, when non-empty, checkpoints every completed cell into a
	// crash-safe state file and resumes from it when it already exists:
	// completed cells are skipped (failed ones are given another
	// chance), and the resumed report is byte-identical to an
	// uninterrupted run's. A state file whose config fingerprint does
	// not match this configuration is rejected.
	StatePath string
	// Shards and Shard partition the grid across cooperating processes:
	// this run evaluates only the cells whose global grid index is
	// congruent to Shard modulo Shards. Zero Shards means 1 (the whole
	// grid); Shard must be in [0, Shards). Merge recombines the shard
	// state files into the canonical report.
	Shards, Shard int
	// Retry bounds the per-cell retry loop: a cell whose build or
	// measurement fails with a transient fault is retried with capped
	// exponential backoff before it degrades to a failed cell. The
	// zero value selects resilience.DefaultRetry.
	Retry resilience.RetryPolicy
	// Ctx cancels in-flight retry backoff sleeps; nil means Background.
	Ctx context.Context
	// Warnf receives degradation warnings (a cell's geomean skipped
	// non-finite overheads or clamped factors, a cell that failed after
	// retries, a salvaged state file). Nil logs to stderr.
	Warnf func(format string, args ...any)
}

func (c *Config) fill() error {
	if len(c.ICPGrid) == 0 {
		c.ICPGrid = DefaultGrid
	}
	if len(c.InlineGrid) == 0 {
		c.InlineGrid = DefaultGrid
	}
	if len(c.Combos) == 0 {
		c.Combos = DefaultCombos()
	}
	if c.KneeFactor <= 0 {
		c.KneeFactor = 1.1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Shard < 0 || c.Shard >= c.Shards {
		return fmt.Errorf("sweep: shard %d outside [0, %d)", c.Shard, c.Shards)
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	if c.Warnf == nil {
		c.Warnf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return nil
}

// Cell is one evaluated (combo, icp, inline) grid point.
type Cell struct {
	Combo        string  `json:"combo"`
	ICPBudget    float64 `json:"icp_budget"`
	InlineBudget float64 `json:"inline_budget"`
	// Geomean is the LMBench geomean overhead versus the LTO baseline.
	Geomean float64 `json:"geomean_overhead"`
	// ICPWeightFrac is the fraction of candidate indirect-branch
	// weight eliminated by promotion; InlineReturnFrac the fraction of
	// profiled return weight elided by inlining.
	ICPWeightFrac    float64 `json:"icp_weight_eliminated"`
	InlineReturnFrac float64 `json:"inline_return_weight_elided"`
	// GeomeanSkipped/GeomeanClamped count aggregation repairs (see
	// workload.GeomeanStats); nonzero means this cell's curve point is
	// not a faithful summary of its per-benchmark overheads.
	GeomeanSkipped int `json:"geomean_skipped"`
	GeomeanClamped int `json:"geomean_clamped"`
	// BuildMS is the wall-clock image build time; recorded only under
	// Config.Timings (0 otherwise, keeping the report deterministic).
	BuildMS float64 `json:"build_ms"`
	// Failed marks a cell whose build or measurement kept failing after
	// the retry policy was exhausted. Its overhead fields are zero, it
	// is excluded from knee detection, and the FailureXxx fields carry
	// the structured fault that sank it.
	Failed          bool   `json:"failed,omitempty"`
	FailurePhase    string `json:"failure_phase,omitempty"`
	FailureKind     string `json:"failure_kind,omitempty"`
	FailureInjected bool   `json:"failure_injected,omitempty"`
	Failure         string `json:"failure,omitempty"`
}

// Knee is the per-combo answer to "which budget do I pick": the least
// aggressive cell whose slowdown factor is within the knee factor of
// the combo's best cell.
type Knee struct {
	Combo        string  `json:"combo"`
	ICPBudget    float64 `json:"icp_budget"`
	InlineBudget float64 `json:"inline_budget"`
	Geomean      float64 `json:"geomean_overhead"`
	BestGeomean  float64 `json:"best_geomean"`
}

// Report is the machine-readable result of one sweep (BENCH_sweep.json).
type Report struct {
	Seed         int64     `json:"seed"`
	ColdFuncs    int       `json:"cold_funcs,omitempty"`
	HelperLayers int       `json:"helper_layers,omitempty"`
	ICPGrid      []float64 `json:"icp_grid"`
	InlineGrid   []float64 `json:"inline_grid"`
	KneeFactor   float64   `json:"knee_factor"`
	Combos       []string  `json:"combos"`
	// FailedCells counts cells that degraded to failure; their fault
	// detail is on the cells themselves.
	FailedCells int    `json:"failed_cells,omitempty"`
	Cells       []Cell `json:"cells"`
	Knees       []Knee `json:"knees"`
}

// cellKey addresses one grid point; the global cell index (grid order:
// combo, then ICP budget, then inline budget) is its position in the
// keys slice and the unit of sharding and checkpointing.
type cellKey struct {
	combo    int
	icp, inl int
}

func gridKeys(cfg *Config) []cellKey {
	keys := make([]cellKey, 0, len(cfg.Combos)*len(cfg.ICPGrid)*len(cfg.InlineGrid))
	for ci := range cfg.Combos {
		for ii := range cfg.ICPGrid {
			for li := range cfg.InlineGrid {
				keys = append(keys, cellKey{ci, ii, li})
			}
		}
	}
	return keys
}

// cellName is the suite cache key and log label of a cell.
func cellName(combo Combo, icp, inl float64) string {
	return fmt.Sprintf("sweep-%s-icp%g-inl%g", combo.Name, icp, inl)
}

// measureCell builds and measures one grid point under the given suite
// cache key. It is the one attempt inside the retry loop; retries pass a
// fresh key because the suite's flight map caches failures forever.
func measureCell(s *bench.Suite, key string, base []pibe.Latency, combo Combo, icp, inl float64, timings bool) (Cell, error) {
	bc := pibe.BuildConfig{
		Profile:  s.ProfLM,
		Defenses: combo.Defenses,
		Optimize: pibe.OptimizeConfig{ICPBudget: icp, InlineBudget: inl},
	}
	start := time.Now()
	img, err := s.Image(key, bc)
	if err != nil {
		return Cell{}, err
	}
	buildMS := float64(time.Since(start).Nanoseconds()) / 1e6
	lat, err := s.Latencies(key, bc)
	if err != nil {
		return Cell{}, err
	}
	ovs := make([]float64, len(lat))
	for j := range lat {
		ovs[j] = pibe.Overhead(base[j].Micros, lat[j].Micros)
	}
	g, stats := pibe.GeomeanCounted(ovs)
	c := Cell{
		Combo:          combo.Name,
		ICPBudget:      icp,
		InlineBudget:   inl,
		Geomean:        g,
		GeomeanSkipped: stats.Skipped,
		GeomeanClamped: stats.Clamped,
	}
	if timings {
		c.BuildMS = buildMS
	}
	if r := img.Opt.ICP; r != nil && r.TotalWeight > 0 {
		c.ICPWeightFrac = float64(r.PromotedWeight) / float64(r.TotalWeight)
	}
	if r := img.Opt.Inline; r != nil {
		c.InlineReturnFrac = r.ElidedReturnFraction()
	}
	return c, nil
}

// evalCell runs one cell to completion: transient faults are retried
// under the config's policy (each retry under a fresh cache key, since
// the suite caches failed flights), and a cell that exhausts its
// retries degrades to a failed Cell carrying the structured fault
// instead of an error — one poisoned grid point must not sink an
// hours-long sweep.
func evalCell(s *bench.Suite, cfg *Config, base []pibe.Latency, k cellKey) Cell {
	combo := cfg.Combos[k.combo]
	icp, inl := cfg.ICPGrid[k.icp], cfg.InlineGrid[k.inl]
	name := cellName(combo, icp, inl)
	var c Cell
	attempt := 0
	err := resilience.Retry(cfg.Ctx, cfg.Retry, func() error {
		attempt++
		key := name
		if attempt > 1 {
			key = fmt.Sprintf("%s-retry%d", name, attempt)
		}
		cc, err := measureCell(s, key, base, combo, icp, inl, cfg.Timings)
		if err != nil {
			return err
		}
		c = cc
		return nil
	})
	if err != nil {
		c = Cell{Combo: combo.Name, ICPBudget: icp, InlineBudget: inl,
			Failed: true, Failure: err.Error()}
		if fe, ok := resilience.AsFault(err); ok {
			c.FailurePhase = string(fe.Phase)
			c.FailureKind = string(fe.Kind)
			c.FailureInjected = fe.Injected
		}
		cfg.Warnf("sweep: warning: cell %s failed after %d attempt(s), degrading: %v", name, attempt, err)
		return c
	}
	if c.GeomeanSkipped > 0 || c.GeomeanClamped > 0 {
		cfg.Warnf("sweep: warning: cell %s geomean degraded: skipped %d, clamped %d",
			name, c.GeomeanSkipped, c.GeomeanClamped)
	}
	return c
}

// Run evaluates the grid against the suite's kernel. Cells fan out
// across the suite's worker pool, failed cells degrade instead of
// aborting (see evalCell), and the report is assembled in deterministic
// grid order: combos in config order, then ICP budget, then inline
// budget. With Config.StatePath the run checkpoints each completed cell
// and resumes past completed ones; with Config.Shards > 1 it evaluates
// only this process's share of the grid.
func Run(s *bench.Suite, cfg Config) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	keys := gridKeys(&cfg)
	cells := make([]Cell, len(keys))
	have := make([]bool, len(keys))

	var st *stateWriter
	if cfg.StatePath != "" {
		restored, w, err := openState(s.Seed, &cfg, len(keys))
		if err != nil {
			return nil, err
		}
		st = w
		defer st.Close()
		for i, c := range restored {
			cells[i], have[i] = c, true
		}
	}

	// This process's work: its shard of the grid, minus cells already
	// restored from the state file — except failed ones, which get a
	// fresh chance on resume.
	var work []int
	for i := range keys {
		if i%cfg.Shards != cfg.Shard {
			continue
		}
		if have[i] && !cells[i].Failed {
			continue
		}
		work = append(work, i)
	}

	if err := s.ForEach(len(work), func(wi int) error {
		i := work[wi]
		c := evalCell(s, &cfg, base, keys[i])
		cells[i], have[i] = c, true
		if st != nil {
			if err := st.put(i, c); err != nil {
				return fmt.Errorf("sweep: checkpoint cell %d: %w", i, err)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	rep := &Report{
		Seed:         s.Seed,
		ColdFuncs:    cfg.ColdFuncs,
		HelperLayers: cfg.HelperLayers,
		ICPGrid:      cfg.ICPGrid,
		InlineGrid:   cfg.InlineGrid,
		KneeFactor:   cfg.KneeFactor,
	}
	for _, c := range cfg.Combos {
		rep.Combos = append(rep.Combos, c.Name)
	}
	// Grid order; a sharded run simply omits the other shards' cells
	// (Merge reassembles the full surface from the shard state files).
	for i := range keys {
		if !have[i] {
			continue
		}
		rep.Cells = append(rep.Cells, cells[i])
		if cells[i].Failed {
			rep.FailedCells++
		}
	}
	rep.Knees = knees(cfg, rep.Cells)
	return rep, nil
}

// knees finds, per combo, the least aggressive cell whose slowdown
// factor (1+geomean) is within cfg.KneeFactor of the combo's best
// (lowest) factor. Failed cells are excluded from both the best-factor
// scan and the knee candidates. Factors rather than raw geomeans keep
// the comparison meaningful when the best overhead is negative (the
// PGO-only combos can beat the LTO baseline).
func knees(cfg Config, cells []Cell) []Knee {
	var out []Knee
	for _, combo := range cfg.Combos {
		best, bestGeomean := math.Inf(1), math.Inf(1)
		for _, c := range cells {
			if c.Combo == combo.Name && !c.Failed && 1+c.Geomean < best {
				best, bestGeomean = 1+c.Geomean, c.Geomean
			}
		}
		if math.IsInf(best, 1) {
			continue
		}
		kneeIdx := -1
		for i, c := range cells {
			if c.Combo != combo.Name || c.Failed || 1+c.Geomean > cfg.KneeFactor*best {
				continue
			}
			if kneeIdx < 0 || lessAggressive(c, cells[kneeIdx]) {
				kneeIdx = i
			}
		}
		if kneeIdx >= 0 {
			k := cells[kneeIdx]
			out = append(out, Knee{
				Combo:        k.Combo,
				ICPBudget:    k.ICPBudget,
				InlineBudget: k.InlineBudget,
				Geomean:      k.Geomean,
				BestGeomean:  bestGeomean,
			})
		}
	}
	return out
}

// lessAggressive is the total order knee selection minimizes over
// qualifying cells: max(icp, inline) ascending, then icp+inline, then
// (icp, inline) lexicographically. It compares budgets only — never the
// geomean — so when several equally-cheap cells qualify, the knee is
// deterministically the lower-budget cell, independent of grid
// iteration order and of measurement noise between near-tied cells.
func lessAggressive(a, b Cell) bool {
	am, bm := math.Max(a.ICPBudget, a.InlineBudget), math.Max(b.ICPBudget, b.InlineBudget)
	if am != bm {
		return am < bm
	}
	as, bs := a.ICPBudget+a.InlineBudget, b.ICPBudget+b.InlineBudget
	if as != bs {
		return as < bs
	}
	if a.ICPBudget != b.ICPBudget {
		return a.ICPBudget < b.ICPBudget
	}
	return a.InlineBudget < b.InlineBudget
}

// WriteJSON marshals the report as indented JSON (a trailing newline
// included). Marshaling is deterministic: field order is fixed by the
// struct definitions and cells are in grid order.
func (r *Report) WriteJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ReadReport parses a BENCH_sweep.json written by WriteJSON.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: read report: %w", err)
	}
	r := &Report{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("sweep: parse report %s: %w", path, err)
	}
	return r, nil
}

// Tables renders one aligned text matrix per combo: rows are ICP
// budgets, columns inline budgets, cells the geomean overhead. The
// combo's knee cell is marked with '*' and restated in the notes.
// Failed cells render as FAIL and are restated — with their structured
// fault — in a per-combo warning note: degradation is surfaced, never
// silently averaged away.
func (r *Report) Tables() []*bench.Table {
	idx := make(map[string]Cell, len(r.Cells))
	for _, c := range r.Cells {
		idx[fmt.Sprintf("%s/%g/%g", c.Combo, c.ICPBudget, c.InlineBudget)] = c
	}
	kneeOf := make(map[string]Knee, len(r.Knees))
	for _, k := range r.Knees {
		kneeOf[k.Combo] = k
	}
	var out []*bench.Table
	for _, combo := range r.Combos {
		t := &bench.Table{
			ID:     "sweep-" + combo,
			Title:  fmt.Sprintf("Budget sweep, %s defenses: LMBench geomean overhead (icp ↓ × inline →)", combo),
			Header: []string{"icp \\ inline"},
		}
		for _, inl := range r.InlineGrid {
			t.Header = append(t.Header, BudgetLabel(inl))
		}
		knee, hasKnee := kneeOf[combo]
		var failed []Cell
		for _, icp := range r.ICPGrid {
			row := []string{BudgetLabel(icp)}
			for _, inl := range r.InlineGrid {
				c, ok := idx[fmt.Sprintf("%s/%g/%g", combo, icp, inl)]
				if !ok {
					row = append(row, "n/a")
					continue
				}
				if c.Failed {
					row = append(row, "FAIL")
					failed = append(failed, c)
					continue
				}
				cell := fmt.Sprintf("%+.1f%%", 100*c.Geomean)
				if hasKnee && knee.ICPBudget == icp && knee.InlineBudget == inl {
					cell += "*"
				}
				row = append(row, cell)
			}
			t.Rows = append(t.Rows, row)
		}
		if hasKnee {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"knee (*): icp %s × inline %s at %+.1f%% — least aggressive cell within %.2fx of the best %+.1f%%",
				BudgetLabel(knee.ICPBudget), BudgetLabel(knee.InlineBudget),
				100*knee.Geomean, r.KneeFactor, 100*knee.BestGeomean))
		}
		for _, c := range failed {
			detail := c.Failure
			if c.FailureKind != "" {
				detail = fmt.Sprintf("%s/%s", c.FailurePhase, c.FailureKind)
				if c.FailureInjected {
					detail += " [injected]"
				}
			}
			t.Notes = append(t.Notes, fmt.Sprintf(
				"warning: cell icp %s × inline %s FAILED (%s) — excluded from knee detection",
				BudgetLabel(c.ICPBudget), BudgetLabel(c.InlineBudget), detail))
		}
		out = append(out, t)
	}
	return out
}

// BudgetLabel renders a budget fraction the way the paper writes it
// ("99.9%").
func BudgetLabel(b float64) string {
	v := strconv.FormatFloat(b*100, 'f', 6, 64)
	v = strings.TrimRight(v, "0")
	v = strings.TrimRight(v, ".")
	return v + "%"
}
