package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
)

// TestKneeTieBreakPrefersLowerBudget is the regression test for knee
// tie-breaking: when several cells with the same max and sum of budgets
// qualify, the knee is the one with the lower ICP budget — the geomean
// never participates in the ordering, so measurement noise between
// near-tied cells cannot flip the knee. The old comparator consulted
// the geomean before the individual budgets, which picked (0.5, 0) here
// because its overhead is marginally lower.
func TestKneeTieBreakPrefersLowerBudget(t *testing.T) {
	cfg := Config{Combos: []Combo{{Name: "c"}}, KneeFactor: 1.1}
	cells := []Cell{
		{Combo: "c", ICPBudget: 0.5, InlineBudget: 0.5, Geomean: 0.048},
		{Combo: "c", ICPBudget: 0.5, InlineBudget: 0, Geomean: 0.03},
		{Combo: "c", ICPBudget: 0, InlineBudget: 0.5, Geomean: 0.05},
	}
	for name, order := range map[string][]Cell{
		"given":    cells,
		"reversed": {cells[2], cells[1], cells[0]},
	} {
		ks := knees(cfg, order)
		if len(ks) != 1 {
			t.Fatalf("%s: knees = %+v, want 1", name, ks)
		}
		if ks[0].ICPBudget != 0 || ks[0].InlineBudget != 0.5 {
			t.Errorf("%s: knee = icp %v × inline %v, want the icp-cheaper (0, 0.5) cell",
				name, ks[0].ICPBudget, ks[0].InlineBudget)
		}
	}
}

// TestKneeExcludesFailedCells: a failed cell neither sets the combo's
// best factor nor qualifies as a knee, and a combo whose every cell
// failed yields no knee at all.
func TestKneeExcludesFailedCells(t *testing.T) {
	cfg := Config{Combos: []Combo{{Name: "c"}, {Name: "d"}}, KneeFactor: 1.1}
	cells := []Cell{
		// The failed cell claims a geomean of 0 (the zero value); if it
		// leaked into the best-factor scan it would disqualify the others.
		{Combo: "c", ICPBudget: 0, InlineBudget: 0, Failed: true, Failure: "boom"},
		{Combo: "c", ICPBudget: 0.5, InlineBudget: 0.5, Geomean: 0.40},
		{Combo: "c", ICPBudget: 0.999, InlineBudget: 0.999, Geomean: 0.38},
		{Combo: "d", ICPBudget: 0, InlineBudget: 0, Failed: true, Failure: "boom"},
	}
	ks := knees(cfg, cells)
	if len(ks) != 1 || ks[0].Combo != "c" {
		t.Fatalf("knees = %+v, want exactly one for combo c", ks)
	}
	if ks[0].ICPBudget != 0.5 || ks[0].BestGeomean != 0.38 {
		t.Errorf("knee = %+v, want the 50%% cell against best 0.38", ks[0])
	}
}

// sweepStateConfig is the small grid the state tests sweep: one combo,
// 2x2 grid, 4 cells.
func sweepStateConfig(statePath string) Config {
	return Config{
		ICPGrid:    []float64{0, 0.999},
		InlineGrid: []float64{0, 0.999},
		Combos:     []Combo{{Name: "retpoline", Defenses: mustCombos("retpoline")[0].Defenses}},
		StatePath:  statePath,
		Warnf:      func(string, ...any) {},
	}
}

func mustCombos(s string) []Combo {
	cs, err := CombosByName(s)
	if err != nil {
		panic(err)
	}
	return cs
}

// TestSweepStateResumeByteIdentical is the acceptance test of the
// tentpole: a sweep interrupted at an arbitrary point — simulated by
// truncating the state file at several byte offsets, including mid-cell
// torn writes — resumes past the surviving cells and emits a
// BENCH_sweep.json byte-identical to an uninterrupted run's. It also
// covers the degenerate resumes: a fully complete state file (nothing
// left to run) and an empty one (everything left to run).
func TestSweepStateResumeByteIdentical(t *testing.T) {
	s := newSweepSuite(t, 2)
	dir := t.TempDir()

	ref, err := Run(s, sweepStateConfig(""))
	if err != nil {
		t.Fatalf("reference Run: %v", err)
	}
	refJSON, err := ref.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}

	state := filepath.Join(dir, "sweep.state")
	cfg := sweepStateConfig(state)
	if _, err := Run(s, cfg); err != nil {
		t.Fatalf("checkpointed Run: %v", err)
	}
	full, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	firstCell := bytes.Index(full, []byte("sec cell-"))
	if firstCell < 0 {
		t.Fatalf("state file has no cell sections:\n%s", full)
	}

	cuts := map[string]int{
		"no-cells":  firstCell,            // config survived, every cell lost
		"mid-cell":  firstCell + 40,       // torn write inside the first cell frame
		"torn-tail": len(full) - 10,       // last cell's frame torn
		"complete":  len(full),            // nothing to do on resume
	}
	for name, cut := range cuts {
		resumed := filepath.Join(dir, "resume-"+name+".state")
		if err := os.WriteFile(resumed, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := sweepStateConfig(resumed)
		rep, err := Run(s, cfg)
		if err != nil {
			t.Fatalf("%s: resumed Run: %v", name, err)
		}
		got, err := rep.WriteJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, refJSON) {
			t.Errorf("%s: resumed BENCH_sweep.json differs from the uninterrupted run's:\n%s\n-- want --\n%s",
				name, got, refJSON)
		}
		// The resumed state file must itself be complete and strictly
		// valid: a second resume finds all cells done.
		secs, err := os.Open(resumed)
		if err != nil {
			t.Fatal(err)
		}
		parsed, rerr := ckpt.ReadSections(secs)
		secs.Close()
		if rerr != nil {
			t.Fatalf("%s: state file not strictly valid after resume: %v", name, rerr)
		}
		meta, cells, _ := parseState(parsed)
		if meta == nil || len(cells) != 4 {
			t.Errorf("%s: resumed state holds %d cells, want 4", name, len(cells))
		}
	}
}

// TestSweepStateTamperRejected: resuming with flags that differ from the
// ones the state file was written under is refused — the config
// fingerprint gates resume, so cells from one sweep can never silently
// leak into another's report.
func TestSweepStateTamperRejected(t *testing.T) {
	s := newSweepSuite(t, 2)
	state := filepath.Join(t.TempDir(), "sweep.state")
	if _, err := Run(s, sweepStateConfig(state)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"knee-factor": func(c *Config) { c.KneeFactor = 1.2 },
		"grid":        func(c *Config) { c.ICPGrid = []float64{0, 0.5, 0.999} },
		"combos":      func(c *Config) { c.Combos = mustCombos("retpoline,all") },
		"timings":     func(c *Config) { c.Timings = true },
	} {
		cfg := sweepStateConfig(state)
		mutate(&cfg)
		if _, err := Run(s, cfg); err == nil {
			t.Errorf("%s: resume with changed config accepted, want fingerprint rejection", name)
		}
	}
	// A garbled config section (hash line bit-flipped, CRC re-framed so
	// the container itself is valid) is also rejected.
	secsF, err := os.Open(state)
	if err != nil {
		t.Fatal(err)
	}
	secs, err := ckpt.ReadSections(secsF)
	secsF.Close()
	if err != nil {
		t.Fatal(err)
	}
	for i := range secs {
		if secs[i].Name == stateConfigSection {
			data := bytes.Replace(secs[i].Data, []byte("hash "), []byte("hash f"), 1)
			secs[i].Data = data
		}
	}
	if err := ckpt.SaveAtomic(state, secs); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, sweepStateConfig(state)); err == nil {
		t.Error("resume with tampered config hash accepted, want rejection")
	}
}

// TestSweepStateFailedCellRerunOnResume: a failed cell persisted in the
// state file is given a fresh chance on resume (unlike successful
// cells, which are skipped), and the healthy rerun replaces it.
func TestSweepStateFailedCellRerunOnResume(t *testing.T) {
	s := newSweepSuite(t, 2)
	state := filepath.Join(t.TempDir(), "sweep.state")
	cfg := sweepStateConfig(state)

	ref, err := Run(s, sweepStateConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := ref.WriteJSON()

	// Hand-build a state file whose cell 0 is a failure record.
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	restored, w, err := openState(s.Seed, &cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("fresh state restored %d cells", len(restored))
	}
	fail := Cell{Combo: "retpoline", ICPBudget: 0, InlineBudget: 0,
		Failed: true, FailureKind: "transient", Failure: "injected for test"}
	if err := w.put(0, fail); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(s, sweepStateConfig(state))
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if rep.FailedCells != 0 {
		t.Errorf("FailedCells = %d after rerun, want 0", rep.FailedCells)
	}
	got, _ := rep.WriteJSON()
	if !bytes.Equal(got, refJSON) {
		t.Errorf("report after failed-cell rerun differs from reference:\n%s", got)
	}
}

// TestSweepShardMerge: a 2-way sharded sweep — two runs over disjoint
// halves of the grid, each with its own state file — merges back into a
// report byte-identical to the single-process run's. Mismatched
// fingerprints and absent files are refused.
func TestSweepShardMerge(t *testing.T) {
	s := newSweepSuite(t, 2)
	dir := t.TempDir()

	ref, err := Run(s, sweepStateConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := ref.WriteJSON()

	var paths []string
	for shard := 0; shard < 2; shard++ {
		cfg := sweepStateConfig(filepath.Join(dir, "shard"+string(rune('0'+shard))+".state"))
		cfg.Shards, cfg.Shard = 2, shard
		rep, err := Run(s, cfg)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if len(rep.Cells) != 2 {
			t.Fatalf("shard %d evaluated %d cells, want 2 of the 4", shard, len(rep.Cells))
		}
		paths = append(paths, cfg.StatePath)
	}

	merged, info, err := Merge(paths)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if len(info.Missing) != 0 || info.Cells != 4 {
		t.Fatalf("MergeInfo = %+v, want 4 cells and none missing", info)
	}
	got, err := merged.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refJSON) {
		t.Errorf("merged report differs from single-process run:\n%s\n-- want --\n%s", got, refJSON)
	}

	// Merging only one shard reports the other's cells as missing.
	_, info, err = Merge(paths[:1])
	if err != nil {
		t.Fatalf("Merge(one shard): %v", err)
	}
	if len(info.Missing) != 2 {
		t.Errorf("one-shard merge Missing = %v, want 2 indices", info.Missing)
	}

	// A state file from a different configuration cannot be merged in.
	other := filepath.Join(dir, "other.state")
	cfg := sweepStateConfig(other)
	cfg.KneeFactor = 1.3
	if _, err := Run(s, cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge(append(paths, other)); err == nil {
		t.Error("Merge accepted a state file with a different fingerprint")
	}
	if _, _, err := Merge([]string{filepath.Join(dir, "nope.state")}); err == nil {
		t.Error("Merge accepted a missing state file")
	}
}

// TestSweepMergeRejectsDuplicateShard is the regression test for the
// duplicated-input hazard: passing the same shard's state file twice
// (the same path, or a copy at a different path) used to be silently
// deduplicated by last-writer-wins, which hid that the user meant to
// pass a *different* shard's file and quietly reported its cells as
// missing. Merge now refuses both shapes, and resume refuses a state
// file written by a different shard assignment. State files are
// hand-assembled (no sweep runs), so the test is fast.
func TestSweepMergeRejectsDuplicateShard(t *testing.T) {
	dir := t.TempDir()

	// writeState assembles a well-formed state file for one shard of a
	// 2-way sharded 4-cell sweep, holding the given cell indices.
	writeState := func(name string, shard int, cellIdx ...int) string {
		cfg := sweepStateConfig("")
		if err := cfg.fill(); err != nil {
			t.Fatal(err)
		}
		cfg.Shards, cfg.Shard = 2, shard
		secs := []ckpt.Section{
			{Name: stateConfigSection, Data: stateConfigData(5, &cfg, 4)},
		}
		for _, i := range cellIdx {
			data, _ := json.Marshal(Cell{Combo: "retpoline", Geomean: 0.1 * float64(i+1)})
			secs = append(secs, ckpt.Section{Name: cellSectionName(i), Data: data})
		}
		path := filepath.Join(dir, name)
		if err := ckpt.SaveAtomic(path, secs); err != nil {
			t.Fatal(err)
		}
		return path
	}

	shard0 := writeState("shard0.state", 0, 0, 2)
	shard1 := writeState("shard1.state", 1, 1, 3)

	// Sanity: the intended pairing merges cleanly.
	if _, info, err := Merge([]string{shard0, shard1}); err != nil {
		t.Fatalf("Merge(shard0, shard1): %v", err)
	} else if info.Cells != 4 || len(info.Missing) != 0 {
		t.Fatalf("Merge(shard0, shard1) info = %+v, want 4 cells, none missing", info)
	}

	// The same path twice is refused outright.
	if _, _, err := Merge([]string{shard0, shard0}); err == nil {
		t.Error("Merge accepted the same state file path twice")
	}
	// So is a lexically different spelling of the same path.
	if _, _, err := Merge([]string{shard0, filepath.Join(dir, ".", "shard0.state")}); err == nil {
		t.Error("Merge accepted the same state file under a different spelling")
	}

	// A copy of shard 0's file at another path is caught by the recorded
	// shard assignment, not the path.
	copy0 := writeState("copy0.state", 0, 0, 2)
	if _, _, err := Merge([]string{shard0, copy0}); err == nil {
		t.Error("Merge accepted two state files written by the same shard")
	}

	// Resume refuses a state file written by a different shard: the
	// fingerprint matches (shards are outside the hash), so only the
	// recorded assignment stands between shard 1 and shard 0's file.
	cfg := sweepStateConfig(shard0)
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	cfg.Shards, cfg.Shard = 2, 1
	if _, _, err := openState(5, &cfg, 4); err == nil {
		t.Error("openState accepted a state file written by a different shard")
	}
	// The matching assignment still resumes.
	cfg.Shard = 0
	cells, w, err := openState(5, &cfg, 4)
	if err != nil {
		t.Fatalf("openState with matching shard: %v", err)
	}
	w.Close()
	if len(cells) != 2 {
		t.Errorf("resume restored %d cells, want 2", len(cells))
	}

	// A pre-shard-field legacy file (no shard/shards lines) still merges:
	// its assignment is unknown, so it is exempt from the shard check.
	legacySecs := []ckpt.Section{{
		Name: stateConfigSection,
		Data: func() []byte {
			lcfg := sweepStateConfig("")
			if err := lcfg.fill(); err != nil {
				t.Fatal(err)
			}
			payload := statePayload(5, &lcfg, 4)
			return []byte("hash " + stateHash(5, &lcfg, 4) + "\n" + payload)
		}(),
	}}
	legacy := filepath.Join(dir, "legacy.state")
	if err := ckpt.SaveAtomic(legacy, legacySecs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge([]string{legacy, shard1}); err != nil {
		t.Errorf("Merge refused a legacy state file without shard fields: %v", err)
	}
}

// FuzzSweepStateRead hammers the state-file parse path (lenient ckpt
// container read, then section decoding) with corrupt inputs: it must
// never panic, and whatever cells it does keep must be well-formed.
func FuzzSweepStateRead(f *testing.F) {
	// Seed with a real (hand-assembled, no suite needed) state file:
	// a config section plus two cells, one of them a failure record.
	cfg := sweepStateConfig("")
	if err := cfg.fill(); err != nil {
		f.Fatal(err)
	}
	cell0, _ := json.Marshal(Cell{Combo: "retpoline", Geomean: 0.42})
	cell1, _ := json.Marshal(Cell{Combo: "retpoline", ICPBudget: 0.999,
		Failed: true, FailureKind: "transient", Failure: "boom"})
	var buf bytes.Buffer
	if err := ckpt.WriteSections(&buf, []ckpt.Section{
		{Name: stateConfigSection, Data: stateConfigData(5, &cfg, 4)},
		{Name: cellSectionName(0), Data: cell0},
		{Name: cellSectionName(1), Data: cell1},
	}); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("pibe-checkpoint v1\nsec sweep-config 4 deadbeef\nhash\nend 1\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		secs, _, err := ckpt.ReadSectionsLenient(bytes.NewReader(data))
		if err != nil {
			return
		}
		meta, cells, _ := parseState(secs)
		if meta == nil {
			return
		}
		for i := range cells {
			if i < 0 || i >= meta.Cells {
				t.Fatalf("parseState kept out-of-range cell %d (grid %d)", i, meta.Cells)
			}
		}
	})
}
