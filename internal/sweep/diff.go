package sweep

// Surface diffing: `pibe sweep-diff A.json B.json` compares two
// BENCH_sweep.json overhead surfaces — a before/after pair across a
// code change, a seed bump, or a kernel-scale change — and reports
// per-cell overhead deltas plus knee migration per combo. The paper's
// result is a curve, so a regression shows up as a region of the
// surface drifting, not as a single number; the diff makes that drift
// visible cell by cell.

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bench"
)

// CellDelta is one grid point's before/after comparison.
type CellDelta struct {
	Combo        string
	ICPBudget    float64
	InlineBudget float64
	// A and B are the geomean overheads on each side; Delta is B-A (in
	// overhead fraction, so 0.01 is one percentage point).
	A, B, Delta float64
	// OnlyIn is "a" or "b" when the cell exists on one side only
	// (different grids, a sharded report with missing cells); empty when
	// both sides have it.
	OnlyIn string
	// AFailed/BFailed mark failure records; a failed side has no
	// meaningful overhead and the delta is not computed.
	AFailed, BFailed bool
}

// KneeMove is one combo's knee migration between the two surfaces.
type KneeMove struct {
	Combo string
	// A and B are the knees on each side; nil when that side found none
	// (combo absent, or every cell failed).
	A, B *Knee
	// Moved reports whether the knee budgets differ (not merely the
	// overhead at an unchanged knee).
	Moved bool
}

// DiffReport is the structured comparison of two sweep reports.
type DiffReport struct {
	Cells []CellDelta
	Knees []KneeMove
	// MaxAbsDelta is the largest |Delta| across comparable cells — the
	// one-number answer to "did the surface move".
	MaxAbsDelta float64
}

// Diff compares two sweep reports cell by cell. Cells are matched on
// (combo, icp budget, inline budget) and emitted in B's grid order with
// A-only cells appended per combo, so the output is deterministic in
// the inputs.
func Diff(a, b *Report) *DiffReport {
	type key struct {
		combo    string
		icp, inl float64
	}
	ak := make(map[key]Cell, len(a.Cells))
	for _, c := range a.Cells {
		ak[key{c.Combo, c.ICPBudget, c.InlineBudget}] = c
	}
	bk := make(map[key]Cell, len(b.Cells))
	for _, c := range b.Cells {
		bk[key{c.Combo, c.ICPBudget, c.InlineBudget}] = c
	}
	d := &DiffReport{}
	seen := make(map[key]bool, len(b.Cells))
	for _, bc := range b.Cells {
		k := key{bc.Combo, bc.ICPBudget, bc.InlineBudget}
		seen[k] = true
		cd := CellDelta{
			Combo:        bc.Combo,
			ICPBudget:    bc.ICPBudget,
			InlineBudget: bc.InlineBudget,
			B:            bc.Geomean,
			BFailed:      bc.Failed,
		}
		ac, ok := ak[k]
		if !ok {
			cd.OnlyIn = "b"
		} else {
			cd.A, cd.AFailed = ac.Geomean, ac.Failed
			if !ac.Failed && !bc.Failed {
				cd.Delta = bc.Geomean - ac.Geomean
				if abs := math.Abs(cd.Delta); abs > d.MaxAbsDelta {
					d.MaxAbsDelta = abs
				}
			}
		}
		d.Cells = append(d.Cells, cd)
	}
	for _, ac := range a.Cells {
		k := key{ac.Combo, ac.ICPBudget, ac.InlineBudget}
		if seen[k] {
			continue
		}
		d.Cells = append(d.Cells, CellDelta{
			Combo:        ac.Combo,
			ICPBudget:    ac.ICPBudget,
			InlineBudget: ac.InlineBudget,
			A:            ac.Geomean,
			AFailed:      ac.Failed,
			OnlyIn:       "a",
		})
	}
	combos := b.Combos
	for _, c := range a.Combos {
		found := false
		for _, o := range combos {
			if o == c {
				found = true
				break
			}
		}
		if !found {
			combos = append(combos, c)
		}
	}
	kneeOf := func(r *Report, combo string) *Knee {
		for i := range r.Knees {
			if r.Knees[i].Combo == combo {
				k := r.Knees[i]
				return &k
			}
		}
		return nil
	}
	for _, combo := range combos {
		ka, kb := kneeOf(a, combo), kneeOf(b, combo)
		moved := (ka == nil) != (kb == nil) ||
			(ka != nil && kb != nil &&
				(ka.ICPBudget != kb.ICPBudget || ka.InlineBudget != kb.InlineBudget))
		d.Knees = append(d.Knees, KneeMove{Combo: combo, A: ka, B: kb, Moved: moved})
	}
	return d
}

// Tables renders the diff as one delta matrix per combo (B minus A, in
// percentage points) with knee-migration and coverage notes.
func (d *DiffReport) Tables(a, b *Report) []*bench.Table {
	// Render on the union grid so cells present on only one side still
	// get a column/row.
	union := func(x, y []float64) []float64 {
		out := append([]float64(nil), x...)
		for _, v := range y {
			found := false
			for _, u := range out {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				out = append(out, v)
			}
		}
		return out
	}
	icps := union(b.ICPGrid, a.ICPGrid)
	inls := union(b.InlineGrid, a.InlineGrid)
	idx := make(map[string]CellDelta, len(d.Cells))
	var combos []string
	for _, c := range d.Cells {
		k := fmt.Sprintf("%s/%g/%g", c.Combo, c.ICPBudget, c.InlineBudget)
		idx[k] = c
		found := false
		for _, o := range combos {
			if o == c.Combo {
				found = true
				break
			}
		}
		if !found {
			combos = append(combos, c.Combo)
		}
	}
	kneeOf := make(map[string]KneeMove, len(d.Knees))
	for _, k := range d.Knees {
		kneeOf[k.Combo] = k
	}
	var out []*bench.Table
	for _, combo := range combos {
		t := &bench.Table{
			ID:     "sweep-diff-" + combo,
			Title:  fmt.Sprintf("Sweep diff, %s defenses: geomean overhead delta B-A in pp (icp ↓ × inline →)", combo),
			Header: []string{"icp \\ inline"},
		}
		for _, inl := range inls {
			t.Header = append(t.Header, BudgetLabel(inl))
		}
		for _, icp := range icps {
			row := []string{BudgetLabel(icp)}
			for _, inl := range inls {
				c, ok := idx[fmt.Sprintf("%s/%g/%g", combo, icp, inl)]
				switch {
				case !ok:
					row = append(row, "n/a")
				case c.AFailed || c.BFailed:
					var sides []string
					if c.AFailed {
						sides = append(sides, "A")
					}
					if c.BFailed {
						sides = append(sides, "B")
					}
					row = append(row, "FAIL:"+strings.Join(sides, ""))
				case c.OnlyIn == "a":
					row = append(row, "A-only")
				case c.OnlyIn == "b":
					row = append(row, "B-only")
				default:
					row = append(row, fmt.Sprintf("%+.2fpp", 100*c.Delta))
				}
			}
			t.Rows = append(t.Rows, row)
		}
		if km, ok := kneeOf[combo]; ok {
			switch {
			case km.A == nil && km.B == nil:
				t.Notes = append(t.Notes, "knee: absent on both sides")
			case km.A == nil:
				t.Notes = append(t.Notes, fmt.Sprintf("knee: appeared at icp %s × inline %s (%+.1f%%)",
					BudgetLabel(km.B.ICPBudget), BudgetLabel(km.B.InlineBudget), 100*km.B.Geomean))
			case km.B == nil:
				t.Notes = append(t.Notes, fmt.Sprintf("knee: disappeared (was icp %s × inline %s at %+.1f%%)",
					BudgetLabel(km.A.ICPBudget), BudgetLabel(km.A.InlineBudget), 100*km.A.Geomean))
			case km.Moved:
				t.Notes = append(t.Notes, fmt.Sprintf("knee MOVED: icp %s × inline %s (%+.1f%%) -> icp %s × inline %s (%+.1f%%)",
					BudgetLabel(km.A.ICPBudget), BudgetLabel(km.A.InlineBudget), 100*km.A.Geomean,
					BudgetLabel(km.B.ICPBudget), BudgetLabel(km.B.InlineBudget), 100*km.B.Geomean))
			default:
				t.Notes = append(t.Notes, fmt.Sprintf("knee unchanged at icp %s × inline %s (%+.1f%% -> %+.1f%%)",
					BudgetLabel(km.A.ICPBudget), BudgetLabel(km.A.InlineBudget), 100*km.A.Geomean, 100*km.B.Geomean))
			}
		}
		out = append(out, t)
	}
	return out
}
