package sweep

import (
	"bytes"
	"errors"
	"math"
	"runtime"
	"strconv"
	"strings"
	"testing"

	pibe "repro"
	"repro/internal/bench"
	"repro/internal/resilience"
)

func TestParseGrid(t *testing.T) {
	got, err := ParseGrid(" 99.9, 0, 50%, 99.9 ")
	if err != nil {
		t.Fatalf("ParseGrid: %v", err)
	}
	// Sorted, deduplicated, and snapped: 99.9/100 is exactly 0.999, not
	// 0.999000...01 float noise.
	want := []float64{0, 0.5, 0.999}
	if len(got) != len(want) {
		t.Fatalf("ParseGrid = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ParseGrid[%d] = %v, want exactly %v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", ",,", "100", "-1", "99.9,abc", "nan"} {
		if _, err := ParseGrid(bad); err == nil {
			t.Errorf("ParseGrid(%q) accepted, want error", bad)
		}
	}
	// The parse failure is wrapped with %w: the strconv error stays
	// reachable so callers can tell a malformed flag from a range error.
	_, err = ParseGrid("99.9,abc")
	var ne *strconv.NumError
	if !errors.As(err, &ne) {
		t.Errorf("ParseGrid error %v does not unwrap to *strconv.NumError", err)
	}
}

func TestCombosByName(t *testing.T) {
	got, err := CombosByName("retpoline, all")
	if err != nil {
		t.Fatalf("CombosByName: %v", err)
	}
	if len(got) != 2 || got[0].Name != "retpoline" || got[1].Name != "all" {
		t.Fatalf("CombosByName = %+v", got)
	}
	if !got[1].Defenses.Retpolines || !got[1].Defenses.LVICFI {
		t.Errorf("combo 'all' defenses = %+v, want all enabled", got[1].Defenses)
	}
	if all, err := CombosByName(""); err != nil || len(all) != 7 {
		t.Errorf("CombosByName(empty) = %d combos, %v; want the 7 defaults", len(all), err)
	}
	for _, name := range []string{"fineibt", "pac-cfi", "verifence"} {
		got, err := CombosByName(name)
		if err != nil || len(got) != 1 || got[0].Name != name {
			t.Errorf("CombosByName(%q) = %+v, %v", name, got, err)
		}
	}
	if c, _ := CombosByName("verifence"); !c[0].Defenses.VeriFence || c[0].Defenses.Retpolines {
		t.Errorf("combo 'verifence' defenses = %+v, want only VeriFence", c[0].Defenses)
	}
	if _, err := CombosByName("retpoline,bogus"); err == nil {
		t.Error("CombosByName accepted unknown combo")
	}
}

// TestCombosByNameDuplicate: a repeated combo would silently double its
// cells in the sweep surface, so it is rejected with a typed config
// fault naming the offender.
func TestCombosByNameDuplicate(t *testing.T) {
	_, err := CombosByName("retpoline,all,retpoline")
	if err == nil {
		t.Fatal("CombosByName accepted a duplicate combo")
	}
	fault, ok := resilience.AsFault(err)
	if !ok {
		t.Fatalf("duplicate error %v is not a resilience.FaultError", err)
	}
	if fault.Kind != resilience.KindConfig || fault.Site != "sweep-combos" {
		t.Errorf("fault = kind %v site %q, want KindConfig at sweep-combos", fault.Kind, fault.Site)
	}
	if !strings.Contains(err.Error(), "retpoline") {
		t.Errorf("error %q does not name the duplicated combo", err)
	}
}

func TestScaledKernelConfig(t *testing.T) {
	if cfg := ScaledKernelConfig(7, 1); cfg != (pibe.KernelConfig{Seed: 7}) {
		t.Errorf("scale 1 = %+v, want the default kernel config", cfg)
	}
	cfg := ScaledKernelConfig(7, 3)
	if cfg.ColdFuncs != 6600 || cfg.HelperLayers != 2 {
		t.Errorf("scale 3 = %+v, want ColdFuncs 6600, HelperLayers 2", cfg)
	}
	if cfg := ScaledKernelConfig(7, 10); cfg.HelperLayers != 4 {
		t.Errorf("scale 10 HelperLayers = %d, want the cap 4", cfg.HelperLayers)
	}
}

// TestKneeSelection drives the knee detector over hand-built cells:
// within the default 1.1x factor tolerance the least aggressive
// qualifying budget pair wins; tightening the tolerance moves the knee
// to the best cell; negative best overheads (PGO beating the baseline)
// compare as slowdown factors, not raw geomeans.
func TestKneeSelection(t *testing.T) {
	cfg := Config{
		Combos:     []Combo{{Name: "c"}},
		KneeFactor: 1.1,
	}
	cells := []Cell{
		{Combo: "c", ICPBudget: 0, InlineBudget: 0, Geomean: 1.00},
		{Combo: "c", ICPBudget: 0.5, InlineBudget: 0.5, Geomean: 0.05},
		{Combo: "c", ICPBudget: 0.999, InlineBudget: 0.999, Geomean: 0.02},
	}
	ks := knees(cfg, cells)
	if len(ks) != 1 {
		t.Fatalf("knees = %+v, want 1", ks)
	}
	// 1.05 <= 1.1 * 1.02, so the cheaper 50% pair is the knee.
	if ks[0].ICPBudget != 0.5 || ks[0].InlineBudget != 0.5 || ks[0].BestGeomean != 0.02 {
		t.Errorf("knee = %+v, want the 50%%/50%% cell with best 0.02", ks[0])
	}

	cfg.KneeFactor = 1.01 // 1.05 > 1.01 * 1.02: only the best qualifies
	ks = knees(cfg, cells)
	if len(ks) != 1 || ks[0].ICPBudget != 0.999 {
		t.Errorf("tight knee = %+v, want the 99.9%% cell", ks)
	}

	neg := []Cell{
		{Combo: "c", ICPBudget: 0, InlineBudget: 0, Geomean: 0.30},
		{Combo: "c", ICPBudget: 0.5, InlineBudget: 0, Geomean: -0.02},
		{Combo: "c", ICPBudget: 0.999, InlineBudget: 0.999, Geomean: -0.06},
	}
	cfg.KneeFactor = 1.1
	ks = knees(cfg, neg)
	// Factor 0.98 <= 1.1 * 0.94: the half-budget cell already buys the win.
	if len(ks) != 1 || ks[0].ICPBudget != 0.5 || ks[0].InlineBudget != 0 {
		t.Errorf("negative-overhead knee = %+v, want the 50%%/0%% cell", ks)
	}
	if math.Abs(ks[0].BestGeomean-(-0.06)) > 1e-12 {
		t.Errorf("BestGeomean = %v, want -0.06", ks[0].BestGeomean)
	}
}

func TestBudgetLabelSweep(t *testing.T) {
	cases := map[float64]string{
		0:        "0%",
		0.5:      "50%",
		0.999:    "99.9%",
		0.999999: "99.9999%",
	}
	for in, want := range cases {
		if got := BudgetLabel(in); got != want {
			t.Errorf("BudgetLabel(%v) = %q, want %q", in, got, want)
		}
	}
}

func newSweepSuite(t *testing.T, measureWorkers int) *bench.Suite {
	t.Helper()
	s, err := bench.NewSuiteKernel(pibe.KernelConfig{Seed: 5, ColdFuncs: 300})
	if err != nil {
		t.Fatalf("NewSuiteKernel: %v", err)
	}
	s.Sys.SetMeasureWorkers(measureWorkers)
	return s
}

// TestSweepSmallGridDeterministicAndMonotone is the acceptance test of
// the sweep engine: the same seed and grid produce byte-identical
// BENCH_sweep.json for -measure-workers 1, 2 and GOMAXPROCS (each on a
// fresh suite, so nothing is cached between runs), and within each
// defense combo the fully-budgeted diagonal cell is strictly cheaper
// than the unoptimized origin cell — the paper's overhead trajectory in
// miniature.
func TestSweepSmallGridDeterministicAndMonotone(t *testing.T) {
	grid := []float64{0, 0.999}
	combos, err := CombosByName("retpoline,all")
	if err != nil {
		t.Fatal(err)
	}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}

	var first *Report
	var firstJSON []byte
	for _, w := range workerCounts {
		s := newSweepSuite(t, w)
		s.Workers = w // vary the cell fan-out too, not just measurement
		rep, err := Run(s, Config{
			ICPGrid:    grid,
			InlineGrid: grid,
			Combos:     combos,
			Warnf:      t.Logf,
		})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", w, err)
		}
		data, err := rep.WriteJSON()
		if err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if first == nil {
			first, firstJSON = rep, data
			continue
		}
		if !bytes.Equal(firstJSON, data) {
			t.Fatalf("BENCH_sweep.json differs between workers=%d and workers=%d", workerCounts[0], w)
		}
	}

	if len(first.Cells) != len(combos)*len(grid)*len(grid) {
		t.Fatalf("cells = %d, want %d", len(first.Cells), len(combos)*len(grid)*len(grid))
	}
	cellAt := func(combo string, icp, inl float64) Cell {
		for _, c := range first.Cells {
			if c.Combo == combo && c.ICPBudget == icp && c.InlineBudget == inl {
				return c
			}
		}
		t.Fatalf("missing cell %s/%v/%v", combo, icp, inl)
		return Cell{}
	}
	for _, combo := range combos {
		origin := cellAt(combo.Name, 0, 0)
		full := cellAt(combo.Name, 0.999, 0.999)
		if !(full.Geomean < origin.Geomean) {
			t.Errorf("%s: geomean at 99.9%%/99.9%% = %v, want < origin %v",
				combo.Name, full.Geomean, origin.Geomean)
		}
		if origin.ICPWeightFrac != 0 || origin.InlineReturnFrac != 0 {
			t.Errorf("%s origin eliminated fractions = %v/%v, want 0/0",
				combo.Name, origin.ICPWeightFrac, origin.InlineReturnFrac)
		}
		if full.ICPWeightFrac < 0.9 {
			t.Errorf("%s full-budget ICP weight eliminated = %v, want >= 0.9",
				combo.Name, full.ICPWeightFrac)
		}
		if full.BuildMS != 0 {
			t.Errorf("%s BuildMS = %v, want 0 without Config.Timings", combo.Name, full.BuildMS)
		}
	}
	if len(first.Knees) != len(combos) {
		t.Fatalf("knees = %+v, want one per combo", first.Knees)
	}

	// The rendered matrices mark each combo's knee and restate it.
	var rendered strings.Builder
	for _, tab := range first.Tables() {
		rendered.WriteString(tab.Render())
	}
	out := rendered.String()
	for _, want := range []string{"sweep-retpoline", "sweep-all", "*", "knee (*)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q:\n%s", want, out)
		}
	}
}
