package sweep

import (
	"math"
	"strings"
	"testing"
)

func diffFixture() (*Report, *Report) {
	grid := []float64{0, 0.999}
	a := &Report{
		Seed: 1, ICPGrid: grid, InlineGrid: grid, KneeFactor: 1.1,
		Combos: []string{"all"},
		Cells: []Cell{
			{Combo: "all", ICPBudget: 0, InlineBudget: 0, Geomean: 1.49},
			{Combo: "all", ICPBudget: 0, InlineBudget: 0.999, Geomean: 0.80},
			{Combo: "all", ICPBudget: 0.999, InlineBudget: 0, Geomean: 0.60},
			{Combo: "all", ICPBudget: 0.999, InlineBudget: 0.999, Geomean: 0.106},
		},
		Knees: []Knee{{Combo: "all", ICPBudget: 0.999, InlineBudget: 0.999, Geomean: 0.106, BestGeomean: 0.106}},
	}
	b := &Report{
		Seed: 1, ICPGrid: grid, InlineGrid: grid, KneeFactor: 1.1,
		Combos: []string{"all"},
		Cells: []Cell{
			{Combo: "all", ICPBudget: 0, InlineBudget: 0, Geomean: 1.49},
			{Combo: "all", ICPBudget: 0, InlineBudget: 0.999, Geomean: 0.11}, // improved enough to become the knee
			{Combo: "all", ICPBudget: 0.999, InlineBudget: 0, Failed: true, Failure: "boom"},
			{Combo: "all", ICPBudget: 0.999, InlineBudget: 0.999, Geomean: 0.106},
		},
		Knees: []Knee{{Combo: "all", ICPBudget: 0, InlineBudget: 0.999, Geomean: 0.11, BestGeomean: 0.106}},
	}
	return a, b
}

func TestDiffDeltasAndKneeMigration(t *testing.T) {
	a, b := diffFixture()
	d := Diff(a, b)
	if len(d.Cells) != 4 {
		t.Fatalf("diff cells = %d, want 4", len(d.Cells))
	}
	at := func(icp, inl float64) CellDelta {
		for _, c := range d.Cells {
			if c.ICPBudget == icp && c.InlineBudget == inl {
				return c
			}
		}
		t.Fatalf("missing delta %v/%v", icp, inl)
		return CellDelta{}
	}
	if got := at(0, 0.999).Delta; math.Abs(got-(-0.69)) > 1e-12 {
		t.Errorf("delta(0, 99.9) = %v, want -0.69", got)
	}
	if got := at(0, 0).Delta; got != 0 {
		t.Errorf("delta(0,0) = %v, want 0", got)
	}
	if c := at(0.999, 0); !c.BFailed || c.Delta != 0 {
		t.Errorf("failed-B cell = %+v, want BFailed with no delta", c)
	}
	if math.Abs(d.MaxAbsDelta-0.69) > 1e-12 {
		t.Errorf("MaxAbsDelta = %v, want 0.69", d.MaxAbsDelta)
	}
	if len(d.Knees) != 1 || !d.Knees[0].Moved {
		t.Fatalf("knee moves = %+v, want one moved knee", d.Knees)
	}

	out := ""
	for _, tab := range d.Tables(a, b) {
		out += tab.Render()
	}
	for _, want := range []string{"sweep-diff-all", "knee MOVED", "FAIL:B", "-69.00pp"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered diff missing %q:\n%s", want, out)
		}
	}
}

// TestDiffDisjointCells: cells present on one side only are reported as
// such, never as a numeric delta.
func TestDiffDisjointCells(t *testing.T) {
	a, b := diffFixture()
	b.Cells = append(b.Cells, Cell{Combo: "all", ICPBudget: 0.5, InlineBudget: 0.5, Geomean: 0.2})
	a.Cells = append(a.Cells, Cell{Combo: "retpoline", ICPBudget: 0, InlineBudget: 0, Geomean: 0.3})
	a.Combos = append(a.Combos, "retpoline")
	d := Diff(a, b)
	var bOnly, aOnly int
	for _, c := range d.Cells {
		switch c.OnlyIn {
		case "a":
			aOnly++
			if c.Combo != "retpoline" {
				t.Errorf("unexpected A-only cell %+v", c)
			}
		case "b":
			bOnly++
			if c.ICPBudget != 0.5 {
				t.Errorf("unexpected B-only cell %+v", c)
			}
		}
	}
	if aOnly != 1 || bOnly != 1 {
		t.Errorf("one-sided cells = %d A-only, %d B-only; want 1 and 1", aOnly, bOnly)
	}
	// The retpoline combo exists only in A: its knee move reports a
	// disappeared knee (nil on the B side) without panicking.
	for _, k := range d.Knees {
		if k.Combo == "retpoline" && k.B != nil {
			t.Errorf("retpoline knee B = %+v, want nil", k.B)
		}
	}
}
