package workload

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/interp"
)

// TestMeasureParallelEquivalence checks the sharded driver's core
// contract: every (benchmark, repetition) cell is a pure function of the
// runner config, so Measure, MeasureAll and MeasureRequest return
// byte-identical results for every worker count. Run under -race this
// also shakes out data races between cells.
func TestMeasureParallelEquivalence(t *testing.T) {
	k, prog := setup(t)
	type result struct {
		one Measurement
		all []Measurement
		req float64
	}
	measure := func(workers int) result {
		t.Helper()
		r, err := NewRunner(k, prog, Nginx, 9)
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		r.Workers = workers
		var res result
		if res.one, err = r.Measure("read"); err != nil {
			t.Fatalf("Measure(workers=%d): %v", workers, err)
		}
		if res.all, err = r.MeasureAll(); err != nil {
			t.Fatalf("MeasureAll(workers=%d): %v", workers, err)
		}
		if res.req, err = r.MeasureRequest(5); err != nil {
			t.Fatalf("MeasureRequest(workers=%d): %v", workers, err)
		}
		return res
	}
	serial := measure(1)
	for _, w := range []int{2, 4, 7} {
		got := measure(w)
		if got.one != serial.one {
			t.Errorf("Measure differs at %d workers: %+v vs %+v", w, got.one, serial.one)
		}
		if !reflect.DeepEqual(got.all, serial.all) {
			t.Errorf("MeasureAll differs at %d workers", w)
		}
		if got.req != serial.req {
			t.Errorf("MeasureRequest differs at %d workers: %v vs %v", w, got.req, serial.req)
		}
	}
}

// TestBatchedAccountingMatchesExact checks the cost-batching invariant:
// precomputed per-block charges must equal the per-event accounting path
// cycle for cycle and counter for counter, across every kernel entry.
func TestBatchedAccountingMatchesExact(t *testing.T) {
	k, prog := setup(t)
	res, err := BuildResolver(k, prog, LMBench)
	if err != nil {
		t.Fatalf("BuildResolver: %v", err)
	}
	run := func(exact bool) (int64, cpu.Counters) {
		t.Helper()
		mc := interp.NewMachine(prog, 7)
		mc.CPU = cpu.New(cpu.DefaultParams())
		mc.Res = res
		mc.ExactAccounting = exact
		for _, sp := range k.Specs {
			for i := 0; i < 3; i++ {
				if err := mc.Run(k.Entries[sp.Name]); err != nil {
					t.Fatalf("Run(%s, exact=%v): %v", sp.Name, exact, err)
				}
			}
		}
		return mc.CPU.Cycles, mc.CPU.Stats
	}
	batchedCycles, batchedStats := run(false)
	exactCycles, exactStats := run(true)
	if batchedCycles != exactCycles {
		t.Errorf("cycle delta: batched %d, exact %d", batchedCycles, exactCycles)
	}
	if batchedStats != exactStats {
		t.Errorf("counter delta:\nbatched %+v\nexact   %+v", batchedStats, exactStats)
	}
}
