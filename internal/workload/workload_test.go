package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/kernel"
)

func setup(t *testing.T) (*kernel.Kernel, *interp.Program) {
	t.Helper()
	k, err := kernel.Generate(kernel.Config{Seed: 3, ColdFuncs: 200})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	prog, err := interp.Compile(k.Mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return k, prog
}

func TestBuildResolverCoversAllSites(t *testing.T) {
	k, prog := setup(t)
	res, err := BuildResolver(k, prog, LMBench)
	if err != nil {
		t.Fatalf("BuildResolver: %v", err)
	}
	if got := len(res.Sites()); got != len(k.Sites) {
		t.Errorf("resolver covers %d sites, want %d", got, len(k.Sites))
	}
}

func TestTargetWeightsFlavorRotation(t *testing.T) {
	site := kernel.Site{ID: 42, Targets: []string{"a", "b", "c"}}
	lm := TargetWeights(site, LMBench)
	ap := TargetWeights(site, Apache)
	if len(lm) != 3 || len(ap) != 3 {
		t.Fatal("weight vectors wrong length")
	}
	// LMBench ranks in natural order: first target hottest.
	if !(lm[0] > lm[1] && lm[1] > lm[2]) {
		t.Errorf("LMBench weights not Zipf-ordered: %v", lm)
	}
	// Single-target sites are identical across flavors.
	single := kernel.Site{ID: 43, Targets: []string{"a"}}
	if TargetWeights(single, LMBench)[0] != TargetWeights(single, Apache)[0] {
		t.Error("single-target site weight differs across flavors")
	}
}

func TestMixes(t *testing.T) {
	lm := Mix(LMBench)
	if len(lm) != len(kernel.LMBenchSpecs) {
		t.Errorf("LMBench mix has %d entries, want %d", len(lm), len(kernel.LMBenchSpecs))
	}
	ap := Mix(Apache)
	if _, hasFork := ap["fork_exit"]; hasFork {
		t.Error("Apache mix must not fork (event-driven server)")
	}
	if ap["read"] == 0 || ap["tcp"] == 0 {
		t.Error("Apache mix must read and use tcp")
	}
	for _, f := range []Flavor{Nginx, Apache, DBench} {
		if len(Request(f)) == 0 {
			t.Errorf("%v has no request script", f)
		}
		us := UserShare(f)
		if us <= 0 || us >= 1 {
			t.Errorf("%v UserShare = %v, want in (0,1)", f, us)
		}
	}
	if Request(LMBench) != nil {
		t.Error("LMBench is not an application workload")
	}
}

func TestMeasureDeterministic(t *testing.T) {
	k, prog := setup(t)
	run := func() float64 {
		r, err := NewRunner(k, prog, LMBench, 9)
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		m, err := r.Measure("read")
		if err != nil {
			t.Fatalf("Measure: %v", err)
		}
		return m.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different medians: %v vs %v", a, b)
	}
}

func TestMeasureUnknownBenchmark(t *testing.T) {
	k, prog := setup(t)
	r, err := NewRunner(k, prog, LMBench, 9)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := r.Measure("bogus"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestProfileEqualTimeWeighting(t *testing.T) {
	k, prog := setup(t)
	r, err := NewRunner(k, prog, LMBench, 9)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	p, err := r.Profile(2)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	// Cheap syscalls must be entered far more often than forks
	// (equal-time weighting), but forks must still appear.
	if p.Invocations["sys_null"] < 50*p.Invocations["sys_fork_shell"] {
		t.Errorf("null=%d fork_shell=%d: equal-time weighting missing",
			p.Invocations["sys_null"], p.Invocations["sys_fork_shell"])
	}
	if p.Invocations["sys_fork_shell"] == 0 {
		t.Error("fork_shell never profiled")
	}
	if p.Ops == 0 {
		t.Error("Ops not recorded")
	}
}

func TestApacheProfileIsCountBased(t *testing.T) {
	k, prog := setup(t)
	r, err := NewRunner(k, prog, Apache, 9)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	p, err := r.Profile(2)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if p.Invocations["sys_fork_exit"] != 0 {
		t.Error("Apache profile exercised fork")
	}
	if p.Invocations["sys_read"] == 0 {
		t.Error("Apache profile has no reads")
	}
}

func TestMeasureRequest(t *testing.T) {
	k, prog := setup(t)
	r, err := NewRunner(k, prog, Nginx, 9)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	cycles, err := r.MeasureRequest(3)
	if err != nil {
		t.Fatalf("MeasureRequest: %v", err)
	}
	if cycles <= 0 {
		t.Fatalf("request cycles = %v", cycles)
	}
	lmr, err := NewRunner(k, prog, LMBench, 9)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := lmr.MeasureRequest(3); err == nil {
		t.Fatal("LMBench request measurement should fail")
	}
}

func TestMedianAndGeomean(t *testing.T) {
	if m := median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("median odd = %v, want 3", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median even = %v, want 2.5", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median empty = %v, want 0", m)
	}
	g := Geomean([]float64{0.10, 0.10})
	if g < 0.0999 || g > 0.1001 {
		t.Errorf("Geomean uniform = %v, want 0.10", g)
	}
	if Geomean(nil) != 0 {
		t.Error("Geomean empty != 0")
	}
	// Speedups and slowdowns combine multiplicatively.
	g = Geomean([]float64{0.21, -0.10})
	if g < 0.043 || g > 0.045 {
		t.Errorf("Geomean mixed = %v, want ≈0.0440", g)
	}
}

// TestGeomeanDefined: Geomean is total — empty, all-NaN and mixed
// non-finite inputs all produce a finite, defined result instead of
// propagating NaN into a rendered table.
func TestGeomeanDefined(t *testing.T) {
	if g := Geomean([]float64{}); g != 0 {
		t.Errorf("Geomean(empty non-nil) = %v, want 0", g)
	}
	nan := math.NaN()
	if g := Geomean([]float64{nan, nan}); g != 0 {
		t.Errorf("Geomean(all NaN) = %v, want 0", g)
	}
	if g := Geomean([]float64{math.Inf(1), math.Inf(-1)}); g != 0 {
		t.Errorf("Geomean(all Inf) = %v, want 0", g)
	}
	// Non-finite entries are skipped, not zeroed: the finite inputs
	// alone determine the mean.
	g := Geomean([]float64{0.10, nan, 0.10, math.Inf(1)})
	if g < 0.0999 || g > 0.1001 {
		t.Errorf("Geomean(mixed NaN) = %v, want 0.10 from the finite entries", g)
	}
	if got := Geomean([]float64{0.25}); math.IsNaN(got) || got != 0.25 {
		t.Errorf("Geomean(single) = %v, want 0.25", got)
	}
}

// TestGeomeanCounted: the counting variant accounts for every silent
// repair the plain Geomean makes — non-finite entries skipped, sub-floor
// factors clamped — so sweep-scale callers can tell a genuinely flat
// curve from one flattened by aggregation damage.
func TestGeomeanCounted(t *testing.T) {
	g, stats := GeomeanCounted([]float64{0.10, 0.20})
	if stats.Degenerate() || stats.Skipped != 0 || stats.Clamped != 0 {
		t.Errorf("clean inputs reported degenerate: %+v", stats)
	}
	if want := Geomean([]float64{0.10, 0.20}); g != want {
		t.Errorf("GeomeanCounted = %v, Geomean = %v; want identical", g, want)
	}

	// One NaN and one +Inf skipped, one -99.5% overhead clamped to the
	// 0.01 factor floor; the two healthy entries still aggregate.
	g, stats = GeomeanCounted([]float64{0.10, math.NaN(), -0.995, math.Inf(1), 0.10})
	if stats.Skipped != 2 || stats.Clamped != 1 {
		t.Errorf("stats = %+v, want Skipped 2, Clamped 1", stats)
	}
	if !stats.Degenerate() {
		t.Error("Degenerate() = false with skipped and clamped entries")
	}
	want := math.Pow(1.1*0.01*1.1, 1.0/3) - 1
	if math.Abs(g-want) > 1e-12 {
		t.Errorf("GeomeanCounted = %v, want %v (clamped factor included)", g, want)
	}
	if s := stats.String(); !strings.Contains(s, "2 non-finite") || !strings.Contains(s, "1 clamped") {
		t.Errorf("stats.String() = %q, want the skip and clamp counts", s)
	}

	// All-degenerate input: result 0, everything counted.
	g, stats = GeomeanCounted([]float64{math.Inf(-1), math.NaN()})
	if g != 0 || stats.Skipped != 2 {
		t.Errorf("all-skipped = (%v, %+v), want (0, Skipped 2)", g, stats)
	}
}
