// Package workload drives the synthetic kernel the way the paper's
// benchmarks drive Linux: it supplies each indirect call site's runtime
// target distribution (what file types, socket families and handlers a
// workload actually exercises), defines the operation mixes of LMBench
// and of the application workloads (Apache, Nginx, DBench), collects
// profiles, and measures per-operation latency with the paper's
// methodology (repeated rounds, median).
package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cpu"
	"repro/internal/interp"
	"repro/internal/kernel"
	"repro/internal/prof"
	"repro/internal/resilience"
)

// Flavor identifies a workload.
type Flavor int

// The workloads of the evaluation.
const (
	LMBench Flavor = iota
	Apache
	Nginx
	DBench
)

func (f Flavor) String() string {
	switch f {
	case LMBench:
		return "lmbench"
	case Apache:
		return "apache"
	case Nginx:
		return "nginx"
	case DBench:
		return "dbench"
	}
	return fmt.Sprintf("flavor(%d)", int(f))
}

// TargetWeights returns the runtime target distribution a flavor induces
// at one indirect call site. LMBench uses a Zipf-like ranking in the
// site's natural target order; application flavors rotate which target is
// hot at multi-target sites, which is what makes an Apache-trained
// profile only partially match LMBench's hot candidates (§8.4).
func TargetWeights(site kernel.Site, flavor Flavor) []uint64 {
	nt := len(site.Targets)
	rot := 0
	if flavor != LMBench && nt > 1 {
		rot = (int(site.ID)*7 + int(flavor)*3) % nt
	}
	w := make([]uint64, nt)
	for i := 0; i < nt; i++ {
		rank := (i + rot) % nt
		w[i] = uint64(1000/((rank+1)*(rank+1))) + 1
	}
	return w
}

// BuildResolver installs the flavor's distribution for every executable
// site of the kernel against the given compiled program.
func BuildResolver(k *kernel.Kernel, prog *interp.Program, flavor Flavor) (*interp.Resolver, error) {
	res := interp.NewResolverSized(prog.SiteBound())
	for _, site := range k.Sites {
		weights := TargetWeights(site, flavor)
		idx := make([]int, len(site.Targets))
		for i, t := range site.Targets {
			fi := prog.FuncIndex(t)
			if fi < 0 {
				return nil, fmt.Errorf("workload: site %d target %q not in program", site.ID, t)
			}
			idx[i] = fi
		}
		d, err := interp.NewDist(idx, weights)
		if err != nil {
			return nil, fmt.Errorf("workload: site %d: %v", site.ID, err)
		}
		res.Set(site.ID, d)
	}
	return res, nil
}

// Mix returns the relative operation frequency per benchmark for a
// flavor's profiling/driving run. LMBench exercises every microbenchmark
// equally; the application mixes are web-server- and file-server-shaped
// (no fork family for Apache/Nginx event loops — "monotonic" relative to
// LMBench).
func Mix(flavor Flavor) map[string]int {
	switch flavor {
	case Apache:
		return map[string]int{
			"read": 30, "write": 25, "open": 8, "stat": 10, "fstat": 5,
			"af_unix": 5, "select_tcp": 10, "tcp": 20, "tcp_conn": 5,
			"mmap": 3, "sig_dispatch": 2, "pipe": 3, "page_fault": 2,
		}
	case Nginx:
		return map[string]int{
			"read": 25, "write": 30, "open": 10, "stat": 15,
			"select_tcp": 15, "tcp": 25, "tcp_conn": 8, "af_unix": 4,
		}
	case DBench:
		return map[string]int{
			"read": 30, "write": 30, "open": 15, "stat": 15, "fstat": 10,
			"mmap": 5, "page_fault": 3, "pipe": 2,
		}
	default:
		m := make(map[string]int, len(kernel.LMBenchSpecs))
		for _, s := range kernel.LMBenchSpecs {
			m[s.Name] = 1
		}
		return m
	}
}

// Request returns the syscall sequence one application-level request
// (HTTP request, SMB operation batch) performs, for the macrobenchmarks
// of Table 7.
func Request(flavor Flavor) []string {
	switch flavor {
	case Nginx:
		return []string{"select_tcp", "tcp", "stat", "open", "read", "write", "tcp"}
	case Apache:
		return []string{"select_tcp", "tcp", "stat", "open", "read", "write", "write", "tcp", "sig_dispatch"}
	case DBench:
		return []string{"open", "stat", "write", "write", "read", "read", "fstat", "pipe"}
	default:
		return nil
	}
}

// UserShare is the fraction of one request's baseline cycles spent in
// userspace (constant across kernel configurations). Lightweight Nginx
// is the most kernel-bound; Apache's MPM event machinery does more
// userspace work per request.
func UserShare(flavor Flavor) float64 {
	switch flavor {
	case Nginx:
		return 0.28
	case Apache:
		return 0.57
	case DBench:
		return 0.44
	default:
		return 0
	}
}

// Runner measures and profiles a compiled kernel under a flavor.
type Runner struct {
	Kernel *kernel.Kernel
	Prog   *interp.Program
	Res    *interp.Resolver
	CPU    *cpu.Model
	Hook   interp.ICallHook
	Flavor Flavor
	Seed   int64

	// RefillRSB enables RSB stuffing at every syscall entry during
	// measurement (the §6.4 alternative to return retpolines).
	RefillRSB bool

	// Inject, when non-nil, threads chaos faults through the runner:
	// profiling machines draw interpreter faults from it (an abort
	// degrades to a partial profile), and measurement rounds draw
	// transient failures (absorbed by Retry). Measurement machines
	// themselves run injector-free so retried rounds stay deterministic.
	Inject *resilience.Injector
	// Retry bounds the backoff loop that absorbs transient measurement
	// faults; the zero value means resilience.DefaultRetry().
	Retry resilience.RetryPolicy

	// Reps is the number of measurement rounds (the artifact uses 5,
	// reporting medians).
	Reps int
	// RepCycles is the per-round target cycle volume per benchmark,
	// which determines how many operations each round executes.
	RepCycles int64

	// Workers selects the measurement driver. Zero (the default) keeps
	// the legacy serial driver: one machine and one shared CPU model per
	// benchmark, warmed once, Reset between rounds. Any value >= 1
	// selects the sharded driver (parallel.go), which gives every
	// repetition its own derived seed, machine and cpu.Model so
	// repetitions can run on a bounded worker pool; its results are
	// identical for every worker count, including 1.
	Workers int
	// NewHook builds a fresh ICallHook per measurement repetition for
	// the sharded driver (stateful hooks such as the JumpSwitches
	// runtime are not safe to share across workers). When Hook is set
	// but NewHook is nil, the sharded driver cannot replicate the hook
	// and the runner falls back to the legacy serial driver.
	NewHook func() interp.ICallHook

	// Engine selects the execution tier for every machine this runner
	// builds. The compiled tier is cycle-exact (and falls back to the
	// interpreter when a machine's configuration rules it out — e.g.
	// profiling machines carry a recorder), so results are identical
	// for either setting; only wall-clock changes.
	Engine interp.Engine
}

// NewRunner builds a Runner with a fresh CPU model and the flavor's
// resolver.
func NewRunner(k *kernel.Kernel, prog *interp.Program, flavor Flavor, seed int64) (*Runner, error) {
	res, err := BuildResolver(k, prog, flavor)
	if err != nil {
		return nil, err
	}
	return &Runner{
		Kernel: k,
		Prog:   prog,
		Res:    res,
		CPU:    cpu.New(cpu.DefaultParams()),
		Flavor: flavor,
		Seed:   seed,
		// Seed the backoff jitter per runner so concurrent collectors
		// hitting the same transient fault desynchronize their retries.
		Retry:     resilience.RetryPolicy{Seed: seed},
		Reps:      5,
		RepCycles: 3_000_000,
	}, nil
}

// Measurement is the result of measuring one benchmark.
type Measurement struct {
	Bench  string
	Cycles float64 // per operation, median of rounds
	Micros float64
}

// Measure runs one LMBench benchmark and returns the median-of-rounds
// per-operation latency. Transient measurement faults (injected chaos or
// any *resilience.FaultError of kind transient) are absorbed by retrying
// the whole benchmark — fresh machine, same seeds, so a successful retry
// is deterministic — with capped exponential backoff.
func (r *Runner) Measure(bench string) (Measurement, error) {
	if r.sharded() {
		return r.measureSharded(bench)
	}
	var m Measurement
	err := resilience.Retry(nil, r.Retry, func() error {
		var err error
		m, err = r.measureOnce(bench)
		return err
	})
	return m, err
}

func (r *Runner) measureOnce(bench string) (Measurement, error) {
	entry, ok := r.Kernel.Entries[bench]
	if !ok {
		return Measurement{}, fmt.Errorf("workload: unknown benchmark %q", bench)
	}
	var spec *kernel.PathSpec
	for i := range r.Kernel.Specs {
		if r.Kernel.Specs[i].Name == bench {
			spec = &r.Kernel.Specs[i]
		}
	}
	ops := 20
	if spec != nil {
		ops = int(r.RepCycles / (spec.Cycles + 1))
		if ops < 4 {
			ops = 4
		}
		if ops > 400 {
			ops = 400
		}
	}
	mc := interp.NewMachine(r.Prog, r.Seed+int64(len(bench))*131)
	mc.CPU = r.CPU
	mc.Res = r.Res
	mc.Hook = r.Hook
	mc.RefillRSB = r.RefillRSB
	mc.Engine = r.Engine

	// Warm predictors and caches.
	warm := ops / 4
	if warm < 2 {
		warm = 2
	}
	for i := 0; i < warm; i++ {
		if err := mc.Run(entry); err != nil {
			return Measurement{}, err
		}
	}
	samples := make([]float64, r.Reps)
	for rep := 0; rep < r.Reps; rep++ {
		if err := r.Inject.MeasureFault(bench); err != nil {
			return Measurement{}, err
		}
		r.CPU.Reset()
		for i := 0; i < ops; i++ {
			if err := mc.Run(entry); err != nil {
				return Measurement{}, err
			}
		}
		samples[rep] = float64(r.CPU.Cycles) / float64(ops)
	}
	med := median(samples)
	return Measurement{
		Bench:  bench,
		Cycles: med,
		Micros: med / (r.CPU.P.FreqGHz * 1e3),
	}, nil
}

// MeasureAll measures every LMBench benchmark in spec order.
func (r *Runner) MeasureAll() ([]Measurement, error) {
	if r.sharded() {
		return r.measureAllSharded()
	}
	out := make([]Measurement, 0, len(r.Kernel.Specs))
	for _, s := range r.Kernel.Specs {
		m, err := r.Measure(s.Name)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", s.Name, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// Profile executes the flavor's operation mix with recording enabled and
// returns the aggregated profile. opsScale multiplies the mix weights
// (an opsScale of 20 runs 20 operations per unit of mix weight).
//
// If a run aborts — an interpreter trap or fuel/depth exhaustion,
// organic or injected — Profile degrades gracefully: it returns the
// partial profile collected up to the abort alongside the abort error,
// so callers can still merge and use what was gathered. Only when even
// lifting the partial counts fails is the profile nil.
func (r *Runner) Profile(opsScale int) (*prof.Profile, error) {
	if opsScale <= 0 {
		opsScale = 10
	}
	mc := interp.NewMachine(r.Prog, r.Seed^0x5eed)
	mc.Res = r.Res
	mc.Inject = r.Inject
	mc.Rec = interp.NewRecorder(r.Prog)
	// Engine selection is honored but moot here: a recorder-carrying
	// machine always falls back to the interpreter.
	mc.Engine = r.Engine
	mix := Mix(r.Flavor)
	benches := make([]string, 0, len(mix))
	for b := range mix {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	specCycles := make(map[string]int64, len(r.Kernel.Specs))
	for _, sp := range r.Kernel.Specs {
		specCycles[sp.Name] = sp.Cycles
	}
	var ops uint64
	for _, b := range benches {
		entry, ok := r.Kernel.Entries[b]
		if !ok {
			return nil, fmt.Errorf("workload: mix references unknown benchmark %q", b)
		}
		n := mix[b] * opsScale
		if r.Flavor == LMBench {
			// LMBench gives every microbenchmark an equal time slice,
			// so cheap operations execute far more often than forks:
			// profile operation counts are inverse to latency.
			if c := specCycles[b]; c > 0 {
				n = int(int64(mix[b]*opsScale) * 120_000 / c)
				if n < 2 {
					n = 2
				}
			}
		}
		for i := 0; i < n; i++ {
			if err := mc.Run(entry); err != nil {
				if resilience.IsAbort(err) {
					// Salvage the counts recorded before the abort.
					mc.Rec.AddOps(ops)
					partial, perr := mc.Rec.Profile()
					if perr != nil {
						return nil, fmt.Errorf("workload: profiling aborted (%v) and salvage failed: %v", err, perr)
					}
					return partial, fmt.Errorf("workload: profiling aborted after %d ops: %w", ops, err)
				}
				return nil, err
			}
			ops++
		}
	}
	mc.Rec.AddOps(ops)
	return mc.Rec.Profile()
}

// MeasureRequest measures the cycles one application request takes in
// the kernel (median of rounds). The caller adds the constant userspace
// cycles when computing throughput. Transient faults are retried like
// Measure's.
func (r *Runner) MeasureRequest(reps int) (float64, error) {
	if r.sharded() {
		return r.measureRequestSharded(reps)
	}
	var c float64
	err := resilience.Retry(nil, r.Retry, func() error {
		var err error
		c, err = r.measureRequestOnce(reps)
		return err
	})
	return c, err
}

func (r *Runner) measureRequestOnce(reps int) (float64, error) {
	script := Request(r.Flavor)
	if script == nil {
		return 0, fmt.Errorf("workload: flavor %v has no request script", r.Flavor)
	}
	if reps <= 0 {
		reps = 5
	}
	mc := interp.NewMachine(r.Prog, r.Seed+977)
	mc.CPU = r.CPU
	mc.Res = r.Res
	mc.Hook = r.Hook
	mc.RefillRSB = r.RefillRSB
	mc.Engine = r.Engine
	runOnce := func() error {
		for _, b := range script {
			if err := mc.Run(r.Kernel.Entries[b]); err != nil {
				return err
			}
		}
		return nil
	}
	const perRep = 30
	for i := 0; i < 10; i++ { // warm-up
		if err := runOnce(); err != nil {
			return 0, err
		}
	}
	samples := make([]float64, reps)
	for rep := 0; rep < reps; rep++ {
		if err := r.Inject.MeasureFault(r.Flavor.String()); err != nil {
			return 0, err
		}
		r.CPU.Reset()
		for i := 0; i < perRep; i++ {
			if err := runOnce(); err != nil {
				return 0, err
			}
		}
		samples[rep] = float64(r.CPU.Cycles) / perRep
	}
	return median(samples), nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Geomean returns the geometric mean of (1+x) minus one over the given
// relative overheads — the aggregation the paper's tables use. Inputs
// are fractions (0.10 for 10%).
//
// The result is always defined: an empty (or nil) slice yields 0, and
// non-finite inputs (NaN, ±Inf — e.g. an overhead computed against a
// zero or failed baseline measurement) are skipped rather than allowed
// to poison the whole aggregate. If every input is non-finite the
// result is 0. Callers that must not lose that degradation silently
// (sweeps over hundreds of cells, where a flattened curve is
// indistinguishable from a real one) should use GeomeanCounted and
// check the returned stats.
func Geomean(overheads []float64) float64 {
	g, _ := GeomeanCounted(overheads)
	return g
}

// GeomeanStats reports how many Geomean inputs were silently repaired:
// Skipped counts non-finite entries (NaN, ±Inf) dropped from the
// aggregate, Clamped counts factors below the 0.01 floor (overheads
// under -99%) raised to it. Either being nonzero means the geomean no
// longer faithfully summarizes its inputs.
type GeomeanStats struct {
	Skipped int
	Clamped int
}

// Degenerate reports whether any input was skipped or clamped.
func (s GeomeanStats) Degenerate() bool { return s.Skipped > 0 || s.Clamped > 0 }

func (s GeomeanStats) String() string {
	return fmt.Sprintf("%d non-finite skipped, %d clamped to the 0.01 factor floor", s.Skipped, s.Clamped)
}

// GeomeanCounted is Geomean plus an account of the entries it skipped
// (non-finite) or clamped (factor floor), so aggregation-layer
// degradation is observable instead of silently flattening curves.
func GeomeanCounted(overheads []float64) (float64, GeomeanStats) {
	var stats GeomeanStats
	prod, n := 1.0, 0
	for _, o := range overheads {
		f := 1 + o
		if math.IsNaN(f) || math.IsInf(f, 0) {
			stats.Skipped++
			continue
		}
		if f < 0.01 {
			f = 0.01
			stats.Clamped++
		}
		prod *= f
		n++
	}
	if n == 0 {
		return 0, stats
	}
	return math.Pow(prod, 1/float64(n)) - 1, stats
}
