package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"repro/internal/cpu"
	"repro/internal/interp"
	"repro/internal/kernel"
)

// This file implements the sharded measurement driver: every repetition
// of every benchmark is an independent cell with its own derived seed,
// interpreter machine and cpu.Model, so cells can execute on a bounded
// worker pool in any order and still merge to exactly the results a
// one-worker run produces.
//
// Determinism contract: a cell's result is a pure function of
// (Runner config, benchmark name, repetition index). The per-cell seed
// is derived by hashing (Seed, bench, rep) — never from worker identity
// or scheduling — and predictor state never crosses cells, so the merge
// (median per benchmark, benchmarks in spec order) is byte-identical for
// every worker count.
//
// The sharded driver refuses two configurations it cannot replicate per
// cell, falling back to the legacy serial driver: a chaos injector
// (whose draw order is serial by definition) and a shared stateful Hook
// without a NewHook factory.

// sharded reports whether measurement should use the sharded driver.
func (r *Runner) sharded() bool {
	return r.Workers > 0 && r.Inject == nil && (r.Hook == nil || r.NewHook != nil)
}

// repSeed derives the RNG seed for one measurement cell. The derivation
// depends only on the runner seed, the benchmark name and the repetition
// index — not on worker count or scheduling.
func repSeed(base int64, bench string, rep int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	io.WriteString(h, bench)
	binary.LittleEndian.PutUint64(buf[:], uint64(rep))
	h.Write(buf[:])
	return int64(h.Sum64())
}

// runCells evaluates fn for every index in [0, n) on a pool of at most
// `workers` goroutines and returns the results in index order. Every
// cell runs to completion; if any fail, the lowest-index error is
// returned, so the error too is independent of scheduling.
func runCells(n, workers int, fn func(i int) (float64, error)) ([]float64, error) {
	out := make([]float64, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return out, nil
}

// RunCells exposes the sharded driver's cell pool for side-effecting
// fan-outs (the ingest simulator drives millions of reporting kernels
// through it): fn(0) .. fn(n-1) run on at most `workers` goroutines,
// every cell runs to completion, and the lowest-index error is
// returned — the same scheduling-independent contract the measurement
// cells above rely on. Determinism is the caller's half of the bargain:
// fn must be a pure function of its index (plus commutative shared
// state, like profile merges).
func RunCells(n, workers int, fn func(i int) error) error {
	_, err := runCells(n, workers, func(i int) (float64, error) {
		return 0, fn(i)
	})
	return err
}

// cellMachine builds the fresh machine one cell runs on.
func (r *Runner) cellMachine(seed int64) *interp.Machine {
	mc := interp.NewMachine(r.Prog, seed)
	mc.CPU = cpu.New(r.CPU.P)
	mc.Res = r.Res
	mc.RefillRSB = r.RefillRSB
	mc.Engine = r.Engine
	if r.NewHook != nil {
		mc.Hook = r.NewHook()
	}
	return mc
}

// measureBenchCell runs one warmed repetition of one LMBench benchmark
// and returns its per-operation cycle count.
func (r *Runner) measureBenchCell(bench string, rep int) (float64, error) {
	entry, ok := r.Kernel.Entries[bench]
	if !ok {
		return 0, fmt.Errorf("workload: unknown benchmark %q", bench)
	}
	var spec *kernel.PathSpec
	for i := range r.Kernel.Specs {
		if r.Kernel.Specs[i].Name == bench {
			spec = &r.Kernel.Specs[i]
		}
	}
	ops := 20
	if spec != nil {
		ops = int(r.RepCycles / (spec.Cycles + 1))
		if ops < 4 {
			ops = 4
		}
		if ops > 400 {
			ops = 400
		}
	}
	mc := r.cellMachine(repSeed(r.Seed, bench, rep))
	warm := ops / 4
	if warm < 2 {
		warm = 2
	}
	for i := 0; i < warm; i++ {
		if err := mc.Run(entry); err != nil {
			return 0, err
		}
	}
	mc.CPU.Reset()
	for i := 0; i < ops; i++ {
		if err := mc.Run(entry); err != nil {
			return 0, err
		}
	}
	return float64(mc.CPU.Cycles) / float64(ops), nil
}

func (r *Runner) reps() int {
	if r.Reps > 0 {
		return r.Reps
	}
	return 5
}

// measureSharded is the sharded Measure: repetitions fan out as cells,
// the median merges them.
func (r *Runner) measureSharded(bench string) (Measurement, error) {
	reps := r.reps()
	samples, err := runCells(reps, r.Workers, func(rep int) (float64, error) {
		return r.measureBenchCell(bench, rep)
	})
	if err != nil {
		return Measurement{}, err
	}
	med := median(samples)
	return Measurement{
		Bench:  bench,
		Cycles: med,
		Micros: med / (r.CPU.P.FreqGHz * 1e3),
	}, nil
}

// measureAllSharded fans every (benchmark, repetition) pair out as one
// cell, so the pool stays busy across benchmark boundaries, then merges
// medians in spec order.
func (r *Runner) measureAllSharded() ([]Measurement, error) {
	specs := r.Kernel.Specs
	reps := r.reps()
	vals, err := runCells(len(specs)*reps, r.Workers, func(i int) (float64, error) {
		sp := specs[i/reps]
		v, err := r.measureBenchCell(sp.Name, i%reps)
		if err != nil {
			return 0, fmt.Errorf("workload: %s: %w", sp.Name, err)
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Measurement, len(specs))
	for si := range specs {
		med := median(vals[si*reps : (si+1)*reps])
		out[si] = Measurement{
			Bench:  specs[si].Name,
			Cycles: med,
			Micros: med / (r.CPU.P.FreqGHz * 1e3),
		}
	}
	return out, nil
}

// measureRequestCell runs one warmed repetition of the flavor's request
// script and returns its per-request cycle count.
func (r *Runner) measureRequestCell(script []string, rep int) (float64, error) {
	mc := r.cellMachine(repSeed(r.Seed+977, "request:"+r.Flavor.String(), rep))
	runOnce := func() error {
		for _, b := range script {
			if err := mc.Run(r.Kernel.Entries[b]); err != nil {
				return err
			}
		}
		return nil
	}
	const perRep = 30
	for i := 0; i < 10; i++ { // warm-up
		if err := runOnce(); err != nil {
			return 0, err
		}
	}
	mc.CPU.Reset()
	for i := 0; i < perRep; i++ {
		if err := runOnce(); err != nil {
			return 0, err
		}
	}
	return float64(mc.CPU.Cycles) / perRep, nil
}

// measureRequestSharded is the sharded MeasureRequest.
func (r *Runner) measureRequestSharded(reps int) (float64, error) {
	script := Request(r.Flavor)
	if script == nil {
		return 0, fmt.Errorf("workload: flavor %v has no request script", r.Flavor)
	}
	if reps <= 0 {
		reps = 5
	}
	samples, err := runCells(reps, r.Workers, func(rep int) (float64, error) {
		return r.measureRequestCell(script, rep)
	})
	if err != nil {
		return 0, err
	}
	return median(samples), nil
}
