package workload

import (
	"runtime"
	"testing"

	"repro/internal/interp"
	"repro/internal/kernel"
)

func benchRunner(b *testing.B, flavor Flavor) *Runner {
	b.Helper()
	k, err := kernel.Generate(kernel.Config{Seed: 3})
	if err != nil {
		b.Fatalf("Generate: %v", err)
	}
	prog, err := interp.Compile(k.Mod)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	r, err := NewRunner(k, prog, flavor, 9)
	if err != nil {
		b.Fatalf("NewRunner: %v", err)
	}
	return r
}

// BenchmarkMeasureRequest is the headline engine benchmark: the cycles of
// one application request, measured with the serial driver.
func BenchmarkMeasureRequest(b *testing.B) {
	r := benchRunner(b, Nginx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.MeasureRequest(5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureRequestParallel is BenchmarkMeasureRequest on the
// sharded driver with GOMAXPROCS workers; on multi-core machines the
// ratio of the two is the parallel-driver speedup reported in
// BENCH_engine.json.
func BenchmarkMeasureRequestParallel(b *testing.B) {
	r := benchRunner(b, Nginx)
	r.Workers = runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.MeasureRequest(5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureAllSerial measures the full LMBench sweep serially.
func BenchmarkMeasureAllSerial(b *testing.B) {
	r := benchRunner(b, LMBench)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.MeasureAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileCollection profiles the Apache mix.
func BenchmarkProfileCollection(b *testing.B) {
	r := benchRunner(b, Apache)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Profile(2); err != nil {
			b.Fatal(err)
		}
	}
}
