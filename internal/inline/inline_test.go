package inline

import (
	"strings"
	"testing"

	"repro/internal/inlinecost"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/prof"
)

// buildCallerCallee returns a module where caller calls callee once.
func buildCallerCallee(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule()
	leaf := ir.NewFunction(m, "leaf", 0)
	leaf.ALU(2).Ret()
	callee := ir.NewFunction(m, "callee", 2)
	callee.ALU(5)
	callee.Call("leaf", 0)
	callee.Ret()
	caller := ir.NewFunction(m, "caller", 0)
	caller.ALU(1)
	caller.Call("callee", 2)
	caller.ALU(1)
	caller.Ret()
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m
}

func TestApplyInlinesBody(t *testing.T) {
	m := buildCallerCallee(t)
	caller := m.Func("caller")
	bi, ii, ok := FindSite(caller, findCallSite(t, caller, "callee"))
	if !ok {
		t.Fatal("call site not found")
	}
	children, err := Apply(m, caller, bi, ii, "il0")
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("post-inline Verify: %v", err)
	}
	// The child call to leaf must be reported with a fresh site.
	if len(children) != 1 || children[0].Callee != "leaf" || children[0].Indirect {
		t.Fatalf("children = %+v, want one direct call to leaf", children)
	}
	if children[0].Site == children[0].Orig {
		t.Error("child site was not refreshed")
	}
	// The caller must no longer call callee directly...
	for _, b := range caller.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall && b.Instrs[i].Callee == "callee" {
				t.Fatal("direct call to callee still present after inlining")
			}
		}
	}
	// ...must still contain exactly one return (its own; the callee's
	// became a jump to the continuation)...
	rets := 0
	caller.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpRet {
			rets++
		}
	})
	if rets != 1 {
		t.Errorf("caller returns = %d, want 1", rets)
	}
	// ...and the callee function itself must be untouched.
	if got := len(m.Func("callee").Blocks); got != 1 {
		t.Errorf("callee blocks = %d, want 1", got)
	}
}

func TestApplyMaterializesArguments(t *testing.T) {
	m := buildCallerCallee(t)
	caller := m.Func("caller")
	before := caller.ByteSize()
	bi, ii, _ := FindSite(caller, findCallSite(t, caller, "callee"))
	if _, err := Apply(m, caller, bi, ii, "il0"); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// Growth = callee body + 2 arg set-ups + jumps - the call itself;
	// at minimum the callee body size.
	if growth := caller.ByteSize() - before; growth < m.Func("callee").ByteSize() {
		t.Errorf("caller grew by %d bytes, want at least callee size %d",
			growth, m.Func("callee").ByteSize())
	}
}

func TestApplyExecutionEquivalence(t *testing.T) {
	// Same seed, same resolver: leaf invocation counts must be identical
	// before and after inlining (inlining consumes no RNG draws).
	m := buildCallerCallee(t)
	countLeaf := func(mod *ir.Module) uint64 {
		p, err := interp.Compile(mod)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		mc := interp.NewMachine(p, 1234)
		mc.Rec = interp.NewRecorder(p)
		for i := 0; i < 500; i++ {
			if err := mc.Run("caller"); err != nil {
				t.Fatalf("Run: %v", err)
			}
		}
		pr, err := mc.Rec.Profile()
		if err != nil {
			t.Fatalf("Profile: %v", err)
		}
		return pr.Invocations["leaf"]
	}
	before := countLeaf(m.Clone())

	caller := m.Func("caller")
	bi, ii, _ := FindSite(caller, findCallSite(t, caller, "callee"))
	if _, err := Apply(m, caller, bi, ii, "il0"); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	after := countLeaf(m)
	if before != after {
		t.Fatalf("leaf invocations changed: %d -> %d", before, after)
	}
	if before != 500 {
		t.Fatalf("leaf invocations = %d, want 500", before)
	}
}

func TestApplyRejectsRecursionAndBadInput(t *testing.T) {
	m := ir.NewModule()
	rec := ir.NewFunction(m, "rec", 0)
	rec.Call("rec", 0)
	rec.Ret()
	f := m.Func("rec")
	if _, err := Apply(m, f, 0, 0, "x"); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursive inline: err = %v", err)
	}
	if _, err := Apply(m, f, 9, 0, "x"); err == nil {
		t.Error("bad block index accepted")
	}
	if _, err := Apply(m, f, 0, 9, "x"); err == nil {
		t.Error("bad instr index accepted")
	}
	if _, err := Apply(m, f, 0, 1, "x"); err == nil {
		t.Error("inlining a non-call accepted")
	}
}

// figure1Module reproduces Figure 1: bar calls foo_1 (big, hot), foo_2
// and foo_3 (small, warm). Without Rule 3, inlining foo_1 first depletes
// bar's Rule 2 budget and blocks foo_2/foo_3.
func figure1Module(t *testing.T) (*ir.Module, *prof.Profile) {
	t.Helper()
	m := ir.NewModule()
	// foo_1: cost 12000 => 2400 unit instructions (5 each).
	f1 := ir.NewFunction(m, "foo_1", 0)
	f1.ALU(2399).Ret()
	f2 := ir.NewFunction(m, "foo_2", 0)
	f2.ALU(59).Ret() // cost 300
	f3 := ir.NewFunction(m, "foo_3", 0)
	f3.ALU(39).Ret() // cost 200
	bar := ir.NewFunction(m, "bar", 0)
	s1 := bar.Call("foo_1", 0)
	s2 := bar.Call("foo_2", 0)
	s3 := bar.Call("foo_3", 0)
	bar.Ret()
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if c := inlinecost.Function(m.Func("foo_1")); c != 12000 {
		t.Fatalf("foo_1 cost = %d, want 12000", c)
	}
	p := prof.New()
	p.AddDirect(s1, "bar", "foo_1", 1000)
	p.AddDirect(s2, "bar", "foo_2", 500)
	p.AddDirect(s3, "bar", "foo_3", 500)
	p.AddInvocation("bar", 1000)
	p.AddInvocation("foo_1", 1000)
	p.AddInvocation("foo_2", 500)
	p.AddInvocation("foo_3", 500)
	return m, p
}

func TestRule3FigureOne(t *testing.T) {
	// With Rule 3 active: foo_1 (cost 12000 > 3000) is blocked; foo_2
	// and foo_3 are inlined, eliminating 1000 execution counts.
	m, p := figure1Module(t)
	res, err := Run(m, p, Options{Budget: 1.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inlined != 2 {
		t.Errorf("Inlined = %d, want 2 (foo_2, foo_3)", res.Inlined)
	}
	if res.BlockedRule3Sites != 1 || res.BlockedRule3Weight != 1000 {
		t.Errorf("Rule3 blocked %d sites / %d weight, want 1/1000",
			res.BlockedRule3Sites, res.BlockedRule3Weight)
	}
	if res.InlinedWeight != 1000 {
		t.Errorf("InlinedWeight = %d, want 1000", res.InlinedWeight)
	}
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("post Verify: %v", err)
	}
}

func TestRule2DepletionWithoutRule3(t *testing.T) {
	// Rule 3 disabled: the greedy inliner takes foo_1 first (fits the
	// 12000 budget exactly), then foo_2 and foo_3 are blocked by Rule 2
	// — the failure mode Figure 1 illustrates.
	m, p := figure1Module(t)
	res, err := Run(m, p, Options{Budget: 1.0, Rule3Threshold: -1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inlined != 1 {
		t.Errorf("Inlined = %d, want 1 (foo_1 only)", res.Inlined)
	}
	if res.BlockedRule2Sites != 2 || res.BlockedRule2Weight != 1000 {
		t.Errorf("Rule2 blocked %d sites / %d weight, want 2/1000",
			res.BlockedRule2Sites, res.BlockedRule2Weight)
	}
}

func TestBudgetSelectsHotSitesOnly(t *testing.T) {
	m := ir.NewModule()
	hot := ir.NewFunction(m, "hot", 0)
	hot.ALU(3).Ret()
	cold := ir.NewFunction(m, "cold", 0)
	cold.ALU(3).Ret()
	caller := ir.NewFunction(m, "caller", 0)
	sh := caller.Call("hot", 0)
	sc := caller.Call("cold", 0)
	caller.Ret()
	p := prof.New()
	p.AddDirect(sh, "caller", "hot", 9900)
	p.AddDirect(sc, "caller", "cold", 100)
	p.AddInvocation("hot", 9900)
	p.AddInvocation("cold", 100)

	res, err := Run(m, p, Options{Budget: 0.99})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inlined != 1 {
		t.Fatalf("Inlined = %d, want 1", res.Inlined)
	}
	// The cold call must survive.
	if _, _, ok := FindSite(m.Func("caller"), sc); !ok {
		t.Error("cold site was inlined despite the budget")
	}
	if _, _, ok := FindSite(m.Func("caller"), sh); ok {
		t.Error("hot site was not inlined")
	}
}

func TestInheritedChildSitesAreInlinedTransitively(t *testing.T) {
	// caller -> mid -> leaf, all hot: with a full budget the inliner
	// should first inline mid into caller, then the inherited leaf call.
	m := ir.NewModule()
	leaf := ir.NewFunction(m, "leaf", 0)
	leaf.ALU(2).Ret()
	mid := ir.NewFunction(m, "mid", 0)
	mid.ALU(2)
	sLeaf := mid.Call("leaf", 0)
	mid.Ret()
	caller := ir.NewFunction(m, "caller", 0)
	sMid := caller.Call("mid", 0)
	caller.Ret()

	p := prof.New()
	p.AddDirect(sMid, "caller", "mid", 1000)
	p.AddDirect(sLeaf, "mid", "leaf", 1000)
	p.AddInvocation("caller", 1000)
	p.AddInvocation("mid", 1000)
	p.AddInvocation("leaf", 1000)

	res, err := Run(m, p, Options{Budget: 1.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inlined != 2 {
		t.Fatalf("Inlined = %d, want 2 (mid then inherited leaf)", res.Inlined)
	}
	// No calls should remain anywhere on the caller's path.
	calls := 0
	m.Func("caller").ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpCall {
			calls++
		}
	})
	if calls != 0 {
		t.Errorf("caller still has %d direct calls", calls)
	}
	if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
		t.Fatalf("post Verify: %v", err)
	}
}

func TestNoInlineAndOptNoneRespected(t *testing.T) {
	m := ir.NewModule()
	ni := ir.NewFunction(m, "ni", 0)
	ni.SetAttrs(ir.AttrNoInline)
	ni.ALU(1).Ret()
	on := ir.NewFunction(m, "on", 0)
	on.SetAttrs(ir.AttrOptNone)
	on.ALU(1).Ret()
	caller := ir.NewFunction(m, "caller", 0)
	s1 := caller.Call("ni", 0)
	s2 := caller.Call("on", 0)
	caller.Ret()
	p := prof.New()
	p.AddDirect(s1, "caller", "ni", 100)
	p.AddDirect(s2, "caller", "on", 100)
	res, err := Run(m, p, Options{Budget: 1.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inlined != 0 {
		t.Errorf("Inlined = %d, want 0", res.Inlined)
	}
	if res.BlockedOtherSites != 2 || res.BlockedOtherWeight != 200 {
		t.Errorf("other-blocked = %d sites / %d weight, want 2/200",
			res.BlockedOtherSites, res.BlockedOtherWeight)
	}
}

func TestLaxHeuristicsOverrideRules(t *testing.T) {
	// Figure 1 module with lax heuristics covering everything: even
	// foo_1 (Rule 3 violation) gets inlined.
	m, p := figure1Module(t)
	res, err := Run(m, p, Options{Budget: 1.0, LaxBudget: 1.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inlined != 3 {
		t.Errorf("Inlined = %d, want 3 under lax heuristics", res.Inlined)
	}
}

func TestZeroBudgetDoesNothing(t *testing.T) {
	m, p := figure1Module(t)
	before := m.ByteSize()
	res, err := Run(m, p, Options{Budget: 0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inlined != 0 || m.ByteSize() != before {
		t.Error("zero budget changed the module")
	}
}

func findCallSite(t *testing.T, f *ir.Function, callee string) ir.SiteID {
	t.Helper()
	var site ir.SiteID
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee == callee {
			site = in.Site
		}
	})
	if site == 0 {
		t.Fatalf("no call to %s in %s", callee, f.Name)
	}
	return site
}

func BenchmarkApply(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := ir.NewModule()
		callee := ir.NewFunction(m, "callee", 2)
		callee.ALU(40).Ret()
		caller := ir.NewFunction(m, "caller", 0)
		caller.ALU(2)
		site := caller.Call("callee", 2)
		caller.Ret()
		f := m.Func("caller")
		bi, ii, _ := FindSite(f, site)
		b.StartTimer()
		if _, err := Apply(m, f, bi, ii, "il0"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunPolicyOnFanout(b *testing.B) {
	// A caller with 200 profiled sites; measures worklist + transform
	// throughput.
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := ir.NewModule()
		p := prof.New()
		leaf := ir.NewFunction(m, "leaf", 1)
		leaf.ALU(6).Ret()
		caller := ir.NewFunction(m, "caller", 0)
		for j := 0; j < 200; j++ {
			s := caller.Call("leaf", 1)
			p.AddDirect(s, "caller", "leaf", uint64(1000-j))
		}
		caller.Ret()
		p.AddInvocation("leaf", 200_000)
		b.StartTimer()
		if _, err := Run(m, p, Options{Budget: 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}
