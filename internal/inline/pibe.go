package inline

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/inlinecost"
	"repro/internal/ir"
	"repro/internal/prof"
)

// Options configures PIBE's greedy profile-guided inliner.
type Options struct {
	// Budget is the optimization budget as a fraction of the cumulative
	// direct-call execution count, e.g. 0.999 for the paper's "99.9%".
	Budget float64

	// Rule2Threshold caps caller complexity after inlining; zero means
	// the paper's default (12000). Negative disables Rule 2.
	Rule2Threshold int64

	// Rule3Threshold caps callee complexity; zero means the paper's
	// default (3000). Negative disables Rule 3.
	Rule3Threshold int64

	// LaxBudget, when positive, disables Rules 2 and 3 for the hottest
	// sites that together cover this fraction of the cumulative count —
	// the paper's "lax heuristics" configuration (budget 99.9999% with
	// size heuristics disabled inside the 99% budget).
	LaxBudget float64

	// ExtraWeights supplies execution counts for call sites created
	// after profiling (promoted direct calls added by indirect call
	// promotion). Keys are exact site IDs.
	ExtraWeights map[ir.SiteID]uint64

	// MaxInlines is a safety valve on the number of inline operations;
	// zero means no limit beyond the budget.
	MaxInlines int

	// DisableInheritance turns off the constant-ratio heuristic: call
	// sites copied into the caller by inlining are not re-enqueued as
	// candidates. Ablation for DESIGN.md's D5.
	DisableInheritance bool
}

func (o *Options) rule2() int64 {
	switch {
	case o.Rule2Threshold == 0:
		return inlinecost.Rule2Threshold
	case o.Rule2Threshold < 0:
		return 1 << 62
	default:
		return o.Rule2Threshold
	}
}

func (o *Options) rule3() int64 {
	switch {
	case o.Rule3Threshold == 0:
		return inlinecost.Rule3Threshold
	case o.Rule3Threshold < 0:
		return 1 << 62
	default:
		return o.Rule3Threshold
	}
}

// Result reports what the inliner did, in the units the paper's Tables 8,
// 9 and 10 are expressed in.
type Result struct {
	// Candidates is the number of initial candidate sites (profiled,
	// non-zero-weight direct call sites).
	Candidates int
	// TotalWeight is the cumulative execution count over candidates.
	TotalWeight uint64
	// Inlined counts successful inline operations; InlinedWeight the
	// execution count they elide (calls and returns removed per run).
	Inlined       int
	InlinedWeight uint64
	// BlockedRule2Weight etc. record the weight not elided per inhibitor
	// (Table 9). "Other" covers recursion, noinline/optnone attributes
	// and unknown callees.
	BlockedRule2Weight int64
	BlockedRule3Weight int64
	BlockedOtherWeight int64
	BlockedRule2Sites  int
	BlockedRule3Sites  int
	BlockedOtherSites  int
	// OverallWeight is the execution count eligible for inlining at
	// this budget (Table 9's "Ovr." column): processed weight, whether
	// elided or blocked.
	OverallWeight uint64
	// UnprocessedWeight is the weight of initial candidates left below
	// the budget floor.
	UnprocessedWeight uint64
}

// ElidedReturnFraction estimates the share of profiled return weight the
// inliner eliminated (the Table 8 "return weight" percentage).
func (r *Result) ElidedReturnFraction() float64 {
	if r.TotalWeight == 0 {
		return 0
	}
	blocked := uint64(r.BlockedRule2Weight+r.BlockedRule3Weight+r.BlockedOtherWeight) + r.UnprocessedWeight
	if blocked >= r.TotalWeight {
		return 0
	}
	return float64(r.TotalWeight-blocked) / float64(r.TotalWeight)
}

type candidate struct {
	site    ir.SiteID
	caller  *ir.Function
	callee  string
	weight  uint64
	seq     int  // FIFO tiebreak for determinism
	initial bool // from the original module, not inherited via inlining
}

type candHeap []*candidate

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight > h[j].weight
	}
	return h[i].seq < h[j].seq
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(*candidate)) }
func (h *candHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Run applies PIBE's greedy inlining policy to the module in place.
//
// The algorithm follows §5.2: candidates are all profiled direct call
// sites; an optimization budget selects the hottest sites covering
// Budget of the cumulative count; sites are processed hottest-first; a
// successful inline adds the callee's own call sites to the worklist
// with counts scaled by ε/invocations(callee) (the constant-ratio
// heuristic); Rule 2 rejects sites whose caller would exceed the
// complexity threshold, Rule 3 rejects callees above their own
// threshold.
func Run(mod *ir.Module, p *prof.Profile, opts Options) (*Result, error) {
	res := &Result{}
	weights := make(map[ir.SiteID]uint64)

	var h candHeap
	seq := 0
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpCall {
					continue
				}
				var w uint64
				if ew, ok := opts.ExtraWeights[in.Site]; ok {
					w = ew
				} else if s := p.Sites[in.Orig]; s != nil && !s.Indirect() {
					w = s.Count
				}
				if w == 0 {
					continue
				}
				weights[in.Site] = w
				h = append(h, &candidate{site: in.Site, caller: f, callee: in.Callee, weight: w, seq: seq, initial: true})
				seq++
				res.TotalWeight += w
			}
		}
	}
	res.Candidates = len(h)
	if res.Candidates == 0 || opts.Budget <= 0 {
		return res, nil
	}
	// The budget selects the initial candidate set: the hottest sites
	// that together cover Budget of the cumulative count. The weight of
	// the coldest selected site becomes the processing floor — call
	// sites inherited from inlined callees are processed whenever they
	// are at least that hot, colder ones never ("at the beginning, we
	// greedily select all targets that fit in this budget; then, at
	// each step we attempt to inline the hottest remaining call site").
	floor := weightFloor(h, opts.Budget)
	var laxFloor uint64 // weights >= laxFloor skip the size heuristics
	if opts.LaxBudget > 0 {
		laxFloor = weightFloor(h, opts.LaxBudget)
	}
	heap.Init(&h)

	rule2, rule3 := opts.rule2(), opts.rule3()
	// Rule 2 is a complexity *budget*: each caller may absorb at most
	// rule2 cost units of inlined code (Figure 1's "after inlining
	// [foo_1, cost 12000] we already depleted bar's complexity budget").
	added := make(map[string]int64)
	calleeCost := make(map[string]int64)
	costOf := func(f *ir.Function) int64 {
		if c, ok := calleeCost[f.Name]; ok {
			return c
		}
		c := inlinecost.Function(f)
		calleeCost[f.Name] = c
		return c
	}

	ilSeq := 0
	for h.Len() > 0 {
		if h[0].weight < floor {
			break
		}
		if opts.MaxInlines > 0 && res.Inlined >= opts.MaxInlines {
			break
		}
		c := heap.Pop(&h).(*candidate)
		res.OverallWeight += c.weight

		lax := laxFloor > 0 && c.weight >= laxFloor

		callee := mod.Func(c.callee)
		if callee == nil || callee == c.caller ||
			callee.Attrs.Has(ir.AttrNoInline) || callee.Attrs.Has(ir.AttrOptNone) ||
			c.caller.Attrs.Has(ir.AttrOptNone) {
			res.BlockedOtherWeight += int64(c.weight)
			res.BlockedOtherSites++
			continue
		}
		ccost := costOf(callee)
		if !lax && ccost > rule3 {
			res.BlockedRule3Weight += int64(c.weight)
			res.BlockedRule3Sites++
			continue
		}
		if !lax && added[c.caller.Name]+ccost > rule2 {
			res.BlockedRule2Weight += int64(c.weight)
			res.BlockedRule2Sites++
			continue
		}
		bi, ii, ok := FindSite(c.caller, c.site)
		if !ok {
			// The site disappeared (its containing code was itself
			// replaced); treat as other.
			res.BlockedOtherWeight += int64(c.weight)
			res.BlockedOtherSites++
			continue
		}
		tag := fmt.Sprintf("il%d", ilSeq)
		ilSeq++
		children, err := Apply(mod, c.caller, bi, ii, tag)
		if err != nil {
			return nil, err
		}
		res.Inlined++
		res.InlinedWeight += c.weight
		added[c.caller.Name] += ccost
		// The caller's absolute cost grew too: keep the callee-cost
		// cache coherent in case this caller is later inlined itself.
		if cc, ok := calleeCost[c.caller.Name]; ok {
			calleeCost[c.caller.Name] = cc + ccost
		}

		// Constant-ratio heuristic: the callee's call sites join the
		// caller with counts scaled by ε / invocations(callee).
		if opts.DisableInheritance {
			continue
		}
		inv := p.Invocations[c.callee]
		if inv == 0 {
			continue
		}
		for _, ch := range children {
			if ch.Indirect {
				continue // indirect sites are ICP's business, not the inliner's
			}
			base := weights[ch.Source]
			if base == 0 {
				if s := p.Sites[ch.Orig]; s != nil && !s.Indirect() {
					base = s.Count
				} else if ew, ok := opts.ExtraWeights[ch.Orig]; ok {
					base = ew
				}
			}
			if base == 0 {
				continue
			}
			w := uint64(float64(base) * float64(c.weight) / float64(inv))
			if w == 0 {
				continue
			}
			weights[ch.Site] = w
			heap.Push(&h, &candidate{site: ch.Site, caller: c.caller, callee: ch.Callee, weight: w, seq: seq})
			seq++
		}
	}
	for _, c := range h {
		if c.initial {
			res.UnprocessedWeight += c.weight
		}
	}
	return res, nil
}

// weightFloor returns the weight of the coldest site inside the given
// budget over the initial candidate list.
func weightFloor(h candHeap, budget float64) uint64 {
	if budget >= 1 {
		return 1
	}
	order := make([]*candidate, len(h))
	copy(order, h)
	sort.Slice(order, func(i, j int) bool { return order[i].weight > order[j].weight })
	items := make([]prof.WeightedItem, len(order))
	for i, c := range order {
		items[i] = prof.WeightedItem{Index: i, Weight: c.weight}
	}
	n := prof.CumulativeBudget(items, budget, false)
	if n == 0 {
		return 0
	}
	return order[n-1].weight
}
