package inline

// Differential testing of the whole transformation pipeline: generate
// random (but verifiable) modules, collect a profile by execution, run
// ICP + PIBE inlining + hardening in every budget combination, and check
// two properties the paper's correctness depends on:
//
//  1. the transformed module still verifies, and
//  2. execution is semantically equivalent — every leaf function is
//     invoked exactly as often as before under the same seed (transforms
//     consume no randomness and must preserve dispatch decisions).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/harden"
	"repro/internal/icp"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/prof"
)

// randomModule builds a layered random call graph:
// entry -> mids -> leaves, with direct calls, indirect calls through
// per-site target sets, counted loops and cold branches.
func randomModule(rng *rand.Rand) (*ir.Module, map[ir.SiteID][]string) {
	m := ir.NewModule()
	mkPool := func(prefix string, n int) []string {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("%s%d", prefix, i)
			b := ir.NewFunction(m, names[i], rng.Intn(3))
			b.ALU(1 + rng.Intn(6))
			if rng.Intn(4) == 0 {
				b.BrProb(0.1, "cold", "hot")
				b.NewBlock("cold")
				b.ALU(5 + rng.Intn(700)) // occasionally Rule-3 sized
				b.Jmp("out")
				b.NewBlock("hot")
				b.Jmp("out")
				b.NewBlock("out")
			}
			b.Ret()
		}
		return names
	}
	// Direct callees and indirect-dispatch handlers are disjoint pools
	// so the differential invariant (handler invocation counts are
	// preserved exactly) is not confused by legitimate inlining of
	// direct calls.
	nLeaves := 2 + rng.Intn(5)
	leaves := mkPool("leaf", nLeaves)
	nHandlers := 2 + rng.Intn(5)
	handlers := mkPool("handler", nHandlers)
	sites := make(map[ir.SiteID][]string)
	nMids := 1 + rng.Intn(4)
	mids := make([]string, nMids)
	for i := range mids {
		mids[i] = fmt.Sprintf("mid%d", i)
		b := ir.NewFunction(m, mids[i], rng.Intn(2))
		if rng.Intn(3) == 0 {
			b.SetAttrs(ir.AttrNoInline)
		}
		b.ALU(1 + rng.Intn(4))
		calls := 1 + rng.Intn(3)
		for c := 0; c < calls; c++ {
			if rng.Intn(3) == 0 {
				site := b.IndirectCall(rng.Intn(2))
				nt := 1 + rng.Intn(nHandlers)
				perm := rng.Perm(nHandlers)[:nt]
				var targets []string
				for _, p := range perm {
					targets = append(targets, handlers[p])
				}
				sites[site] = targets
			} else {
				b.Call(leaves[rng.Intn(nLeaves)], rng.Intn(3))
			}
		}
		b.Ret()
	}
	e := ir.NewFunction(m, "entry", 0)
	e.Jmp("loop")
	e.NewBlock("loop")
	e.ALU(1 + rng.Intn(4))
	for c := 0; c < 1+rng.Intn(nMids); c++ {
		e.Call(mids[rng.Intn(nMids)], rng.Intn(2))
	}
	if rng.Intn(2) == 0 {
		site := e.IndirectCall(1)
		sites[site] = []string{handlers[rng.Intn(nHandlers)]}
	}
	e.BrLoop(int32(1+rng.Intn(6)), "loop", "out")
	e.NewBlock("out")
	e.Ret()
	return m, sites
}

func leafCounts(t *testing.T, m *ir.Module, sites map[ir.SiteID][]string, seed int64, runs int) map[string]uint64 {
	t.Helper()
	prog, err := interp.Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res := interp.NewResolver()
	for site, targets := range sites {
		idx := make([]int, len(targets))
		w := make([]uint64, len(targets))
		for i, tg := range targets {
			idx[i] = prog.FuncIndex(tg)
			w[i] = uint64(100 / (i + 1))
		}
		d, err := interp.NewDist(idx, w)
		if err != nil {
			t.Fatalf("NewDist: %v", err)
		}
		res.Set(site, d)
	}
	mc := interp.NewMachine(prog, seed)
	mc.Res = res
	mc.Rec = interp.NewRecorder(prog)
	for i := 0; i < runs; i++ {
		if err := mc.Run("entry"); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	p, err := mc.Rec.Profile()
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	out := make(map[string]uint64)
	for fn, n := range p.Invocations {
		out[fn] = n
	}
	return out
}

func collectProfile(t *testing.T, m *ir.Module, sites map[ir.SiteID][]string, seed int64) *prof.Profile {
	t.Helper()
	prog, err := interp.Compile(m.Clone())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res := interp.NewResolver()
	for site, targets := range sites {
		idx := make([]int, len(targets))
		w := make([]uint64, len(targets))
		for i, tg := range targets {
			idx[i] = prog.FuncIndex(tg)
			w[i] = uint64(100 / (i + 1))
		}
		d, err := interp.NewDist(idx, w)
		if err != nil {
			t.Fatalf("NewDist: %v", err)
		}
		res.Set(site, d)
	}
	mc := interp.NewMachine(prog, seed^0x9e3779b9)
	mc.Res = res
	mc.Rec = interp.NewRecorder(prog)
	for i := 0; i < 60; i++ {
		if err := mc.Run("entry"); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	p, err := mc.Rec.Profile()
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	return p
}

func TestPipelineDifferential(t *testing.T) {
	// exact marks configurations where handler invocation counts must be
	// preserved bit-for-bit: any configuration that cannot inline a
	// promoted call. With ICP and inlining combined, promoted direct
	// calls may be legitimately inlined (the paper's core synergy), so
	// handler bodies execute inside their callers and invocation counts
	// drop; there we only require verification and successful execution.
	budgets := []struct {
		icpB, inlB, lax float64
		exact           bool
	}{
		{0, 0, 0, true},
		{0.9, 0, 0, true},
		{1.0, 0, 0, true},
		{0, 0.99, 0, true}, // icall targets are never direct callees here
		{0.99999, 0.999999, 0, false},
		{0.99999, 0.999999, 0.99, false},
	}
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, sites := randomModule(rng)
		if err := ir.Verify(m, ir.VerifyOptions{}); err != nil {
			t.Fatalf("seed %d: generated module invalid: %v", seed, err)
		}
		profile := collectProfile(t, m, sites, seed)
		before := leafCounts(t, m.Clone(), sites, seed*31, 40)

		for bi, b := range budgets {
			mod := m.Clone()
			var extra map[ir.SiteID]uint64
			if b.icpB > 0 {
				res, err := icp.Run(mod, profile, icp.Options{Budget: b.icpB})
				if err != nil {
					t.Fatalf("seed %d cfg %d: icp: %v", seed, bi, err)
				}
				extra = res.NewSiteWeights
			}
			if b.inlB > 0 {
				if _, err := Run(mod, profile, Options{Budget: b.inlB, LaxBudget: b.lax, ExtraWeights: extra}); err != nil {
					t.Fatalf("seed %d cfg %d: inline: %v", seed, bi, err)
				}
			}
			if _, err := harden.Apply(mod, harden.Config{Retpolines: true, RetRetpolines: true, LVICFI: true}); err != nil {
				t.Fatalf("seed %d cfg %d: harden: %v", seed, bi, err)
			}
			if err := ir.Verify(mod, ir.VerifyOptions{}); err != nil {
				t.Fatalf("seed %d cfg %d: post-pipeline verify: %v", seed, bi, err)
			}
			after := leafCounts(t, mod, sites, seed*31, 40)
			if !b.exact {
				continue
			}
			for fn, n := range before {
				if fn == "entry" {
					continue
				}
				// Handler functions are reached only through indirect
				// dispatch (possibly promoted to compare chains), which
				// these configurations must preserve exactly.
				if isLeafTarget(fn, sites) {
					if after[fn] != n {
						t.Fatalf("seed %d cfg %d: %s invocations %d -> %d (dispatch changed)",
							seed, bi, fn, n, after[fn])
					}
				}
			}
		}
	}
}

// isLeafTarget reports whether fn is a target of any indirect site —
// those dispatches survive every transform (promotion keeps semantics,
// and the inliner never inlines indirect callees).
func isLeafTarget(fn string, sites map[ir.SiteID][]string) bool {
	for _, ts := range sites {
		for _, t := range ts {
			if t == fn {
				return true
			}
		}
	}
	return false
}
