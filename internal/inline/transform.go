// Package inline implements function inlining: the mechanical IR
// transformation and, on top of it, PIBE's security-tailored greedy
// profile-guided inlining policy (§5.2 of the paper).
//
// Unlike a traditional inliner, which inlines to expose further
// optimization and therefore prefers tiny callees, PIBE inlines to
// *eliminate backward edges* (returns) from hot paths so they need no
// hardening. The policy processes call sites hottest-first under an
// optimization budget, with two complexity heuristics (Rules 2 and 3)
// preventing code bloat from destroying the gains in the instruction
// cache.
package inline

import (
	"fmt"

	"repro/internal/ir"
)

// ChildSite describes a call site that inlining copied from the callee
// into the caller. The policy assigns such sites an inherited execution
// count (Rule 1's constant-ratio heuristic).
type ChildSite struct {
	// Site is the fresh site ID the copy received.
	Site ir.SiteID
	// Source is the site ID the instruction had in the callee body —
	// the key under which the policy may already track an adjusted
	// weight for it (if the callee itself received inlined code).
	Source ir.SiteID
	// Orig is the original profiling-build site the chain of copies
	// descends from.
	Orig ir.SiteID
	// Callee is the static target for direct sites, "" for indirect.
	Callee string
	// Indirect marks indirect call sites.
	Indirect bool
}

// Apply replaces the direct call at caller.Blocks[bi].Instrs[ii] with the
// body of its callee. tag must be unique within the caller; it prefixes
// the names of the spliced blocks. The callee's formal parameters
// materialize as Args set-up instructions, matching the cost model's
// assumption that a call needs one instruction per argument.
//
// Apply returns the call sites copied into the caller. The callee
// function itself is left untouched (other callers may still use it).
func Apply(mod *ir.Module, caller *ir.Function, bi, ii int, tag string) ([]ChildSite, error) {
	if bi < 0 || bi >= len(caller.Blocks) {
		return nil, fmt.Errorf("inline: block index %d out of range in %s", bi, caller.Name)
	}
	b := caller.Blocks[bi]
	if ii < 0 || ii >= len(b.Instrs) {
		return nil, fmt.Errorf("inline: instr index %d out of range in %s.%s", ii, caller.Name, b.Name)
	}
	call := b.Instrs[ii]
	if call.Op != ir.OpCall {
		return nil, fmt.Errorf("inline: %s.%s[%d] is %v, not a direct call", caller.Name, b.Name, ii, call.Op)
	}
	callee := mod.Func(call.Callee)
	if callee == nil {
		return nil, fmt.Errorf("inline: unknown callee %q", call.Callee)
	}
	if callee == caller {
		return nil, fmt.Errorf("inline: refusing to inline recursive call %s -> %s", caller.Name, callee.Name)
	}
	if len(callee.Blocks) == 0 {
		return nil, fmt.Errorf("inline: callee %s has no body", callee.Name)
	}

	prefix := tag + "."
	cloned := mod.CloneBlocksInto(callee, prefix, int32(caller.NumRegs))

	// Collect the call sites that now live in the caller, pairing each
	// clone with its source instruction in the callee body (the blocks
	// are structurally identical by construction).
	var children []ChildSite
	for bi2, cb := range cloned {
		src := callee.Blocks[bi2]
		for i := range cb.Instrs {
			in := &cb.Instrs[i]
			switch in.Op {
			case ir.OpCall:
				children = append(children, ChildSite{Site: in.Site, Source: src.Instrs[i].Site, Orig: in.Orig, Callee: in.Callee})
			case ir.OpICall:
				children = append(children, ChildSite{Site: in.Site, Source: src.Instrs[i].Site, Orig: in.Orig, Indirect: true})
			}
		}
	}

	// The continuation receives the instructions after the call; the
	// callee's returns become jumps to it. This is where the backward
	// edge disappears.
	contName := prefix + "cont"
	cont := &ir.Block{Name: contName, Instrs: append([]ir.Instr(nil), b.Instrs[ii+1:]...)}
	for _, cb := range cloned {
		if t := cb.Terminator(); t != nil && t.Op == ir.OpRet {
			*t = ir.Instr{Op: ir.OpJmp, Then: contName}
		}
	}

	// Rewrite the call block: head, argument set-up, jump into the body.
	head := b.Instrs[:ii:ii]
	for a := int32(0); a < call.Args; a++ {
		head = append(head, ir.Instr{Op: ir.OpALU})
	}
	head = append(head, ir.Instr{Op: ir.OpJmp, Then: cloned[0].Name})
	b.Instrs = head

	// Splice: call block, callee body, continuation, rest.
	rest := caller.Blocks[bi+1:]
	blocks := make([]*ir.Block, 0, len(caller.Blocks)+len(cloned)+1)
	blocks = append(blocks, caller.Blocks[:bi+1]...)
	blocks = append(blocks, cloned...)
	blocks = append(blocks, cont)
	blocks = append(blocks, rest...)
	caller.Blocks = blocks
	caller.NumRegs += callee.NumRegs
	caller.InvalidateIndex()
	return children, nil
}

// FindSite locates the direct call with the given site ID inside f,
// returning block and instruction indices, or ok=false.
func FindSite(f *ir.Function, site ir.SiteID) (bi, ii int, ok bool) {
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op == ir.OpCall && in.Site == site {
				return bi, ii, true
			}
		}
	}
	return 0, 0, false
}
