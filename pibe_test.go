package pibe_test

import (
	"bytes"
	"math"
	"testing"

	pibe "repro"
)

// testSystem builds a small kernel once per test binary.
func testSystem(t *testing.T) *pibe.System {
	t.Helper()
	sys, err := pibe.NewSyntheticKernel(pibe.KernelConfig{Seed: 5, ColdFuncs: 300})
	if err != nil {
		t.Fatalf("NewSyntheticKernel: %v", err)
	}
	return sys
}

func testProfile(t *testing.T, sys *pibe.System) *pibe.Profile {
	t.Helper()
	p, err := sys.Profile(pibe.LMBench, 2)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	return p
}

func TestPipelineEndToEnd(t *testing.T) {
	sys := testSystem(t)
	profile := testProfile(t, sys)

	base, err := sys.Build(pibe.BuildConfig{})
	if err != nil {
		t.Fatalf("Build baseline: %v", err)
	}
	hard, err := sys.Build(pibe.BuildConfig{Defenses: pibe.AllDefenses})
	if err != nil {
		t.Fatalf("Build hardened: %v", err)
	}
	opt, err := sys.Build(pibe.BuildConfig{
		Profile:  profile,
		Defenses: pibe.AllDefenses,
		Optimize: pibe.OptimizeConfig{ICPBudget: 0.99999, InlineBudget: 0.999999, LaxBudget: 0.99},
	})
	if err != nil {
		t.Fatalf("Build optimized: %v", err)
	}

	baseLat, err := base.MeasureLMBench(pibe.LMBench)
	if err != nil {
		t.Fatalf("measure baseline: %v", err)
	}
	hardLat, err := hard.MeasureLMBench(pibe.LMBench)
	if err != nil {
		t.Fatalf("measure hardened: %v", err)
	}
	optLat, err := opt.MeasureLMBench(pibe.LMBench)
	if err != nil {
		t.Fatalf("measure optimized: %v", err)
	}

	var hardOv, optOv []float64
	for i := range baseLat {
		hardOv = append(hardOv, pibe.Overhead(baseLat[i].Micros, hardLat[i].Micros))
		optOv = append(optOv, pibe.Overhead(baseLat[i].Micros, optLat[i].Micros))
	}
	gHard, gOpt := pibe.Geomean(hardOv), pibe.Geomean(optOv)

	// The headline claim: comprehensive defenses are an order of
	// magnitude cheaper with PIBE's optimizations.
	if gHard < 0.5 {
		t.Errorf("unoptimized all-defenses geomean = %.1f%%, expected severe overhead", 100*gHard)
	}
	if gOpt > gHard/3 {
		t.Errorf("optimized geomean %.1f%% not well below unoptimized %.1f%%", 100*gOpt, 100*gHard)
	}
}

func TestOptimizationRequiresProfile(t *testing.T) {
	sys := testSystem(t)
	_, err := sys.Build(pibe.BuildConfig{Optimize: pibe.OptimizeConfig{ICPBudget: 0.99}})
	if err == nil {
		t.Fatal("Build without profile accepted")
	}
}

func TestProfileSerializationRoundTrip(t *testing.T) {
	sys := testSystem(t)
	profile := testProfile(t, sys)
	var buf bytes.Buffer
	if _, err := profile.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := pibe.ReadProfile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadProfile: %v", err)
	}
	// A profile read back must drive the same optimization decisions.
	img1, err := sys.Build(pibe.BuildConfig{Profile: profile,
		Optimize: pibe.OptimizeConfig{ICPBudget: 0.99, InlineBudget: 0.99}})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	img2, err := sys.Build(pibe.BuildConfig{Profile: got,
		Optimize: pibe.OptimizeConfig{ICPBudget: 0.99, InlineBudget: 0.99}})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if img1.Opt.Inline.Inlined != img2.Opt.Inline.Inlined ||
		img1.Opt.ICP.PromotedTargets != img2.Opt.ICP.PromotedTargets {
		t.Errorf("round-tripped profile changed decisions: %d/%d vs %d/%d",
			img1.Opt.Inline.Inlined, img1.Opt.ICP.PromotedTargets,
			img2.Opt.Inline.Inlined, img2.Opt.ICP.PromotedTargets)
	}
}

func TestSecurityReportAcrossConfigs(t *testing.T) {
	sys := testSystem(t)
	base, err := sys.Build(pibe.BuildConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	hard, err := sys.Build(pibe.BuildConfig{Defenses: pibe.AllDefenses})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rb, rh := base.SecurityReport(), hard.SecurityReport()
	if rb.ICallsSpectreV2 < rb.TotalICalls-20 {
		t.Errorf("unhardened kernel: only %d/%d icalls V2-vulnerable", rb.ICallsSpectreV2, rb.TotalICalls)
	}
	// After hardening only the inline-assembly sites stay vulnerable.
	if rh.ICallsSpectreV2 != 12 {
		t.Errorf("hardened kernel: %d V2-vulnerable icalls, want 12 (asm hypercalls)", rh.ICallsSpectreV2)
	}
	if rh.ReturnsRet2spec != 0 {
		t.Errorf("hardened kernel: %d RSB-vulnerable returns, want 0", rh.ReturnsRet2spec)
	}
	if rh.IJumpsSpectreV2 != 5 {
		t.Errorf("hardened kernel: %d vulnerable ijumps, want 5 (asm jump tables)", rh.IJumpsSpectreV2)
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	sys := testSystem(t)
	profile := testProfile(t, sys)
	cfg := pibe.BuildConfig{
		Profile:  profile,
		Defenses: pibe.AllDefenses,
		Optimize: pibe.OptimizeConfig{ICPBudget: 0.999, InlineBudget: 0.999},
	}
	a, err := sys.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := sys.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if a.Size() != b.Size() || a.Opt.Inline.Inlined != b.Opt.Inline.Inlined {
		t.Error("same config produced different images")
	}
	la, err := a.MeasureBenchmark(pibe.LMBench, "read")
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	lb, err := b.MeasureBenchmark(pibe.LMBench, "read")
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	if la.Cycles != lb.Cycles {
		t.Errorf("read latency differs across identical builds: %v vs %v", la.Cycles, lb.Cycles)
	}
}

func TestJumpSwitchesBetweenNoOptAndICP(t *testing.T) {
	sys := testSystem(t)
	profile := testProfile(t, sys)
	retp := pibe.Defenses{Retpolines: true}
	measure := func(cfg pibe.BuildConfig) float64 {
		img, err := sys.Build(cfg)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		lat, err := img.MeasureLMBench(pibe.LMBench)
		if err != nil {
			t.Fatalf("measure: %v", err)
		}
		var sum float64
		for _, l := range lat {
			sum += l.Cycles
		}
		return sum
	}
	noopt := measure(pibe.BuildConfig{Defenses: retp})
	js := measure(pibe.BuildConfig{Defenses: retp, JumpSwitches: true})
	icp := measure(pibe.BuildConfig{Profile: profile, Defenses: retp,
		Optimize: pibe.OptimizeConfig{ICPBudget: 0.99999}})
	// Table 3's ordering: static promotion beats JumpSwitches beats
	// unoptimized retpolines.
	if !(icp < js && js < noopt) {
		t.Errorf("ordering violated: icp=%.0f js=%.0f noopt=%.0f", icp, js, noopt)
	}
}

func TestImageStatsAndSizeGrowth(t *testing.T) {
	sys := testSystem(t)
	profile := testProfile(t, sys)
	base, err := sys.Build(pibe.BuildConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	opt, err := sys.Build(pibe.BuildConfig{Profile: profile, Defenses: pibe.AllDefenses,
		Optimize: pibe.OptimizeConfig{ICPBudget: 0.999, InlineBudget: 0.999}})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if opt.Size() <= base.Size() {
		t.Error("optimization+hardening did not grow the image")
	}
	growth := float64(opt.Size()-base.Size()) / float64(base.Size())
	// The ceiling is loose: the paper reports 5-37% at realistic budgets,
	// but this build promotes at budget 0.999, which inlines nearly every
	// hot chain. The exact figure sits near 60% and wobbles by a fraction
	// of a percent with the profile sampler's value-to-target mapping.
	if growth > 0.62 {
		t.Errorf("image growth %.0f%% is excessive (paper: 5-37%%)", 100*growth)
	}
	st := opt.Stats()
	if st.Funcs == 0 || st.IndirectCalls == 0 {
		t.Error("Stats incomplete")
	}
}

// TestHeadlineShapeAcrossSeeds verifies that the paper's qualitative
// claims are robust to the synthetic kernel's structural randomness:
// for multiple generation seeds, the configuration ordering must hold
// (unoptimized all-defenses severe; PGO alone a speedup; optimized
// all-defenses an order of magnitude below unoptimized).
func TestHeadlineShapeAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed shape check is slow")
	}
	for _, seed := range []int64{2, 3} {
		seed := seed
		t.Run(string(rune('0'+seed)), func(t *testing.T) {
			sys, err := pibe.NewSyntheticKernel(pibe.KernelConfig{Seed: seed, ColdFuncs: 400})
			if err != nil {
				t.Fatalf("NewSyntheticKernel: %v", err)
			}
			profile, err := sys.Profile(pibe.LMBench, 2)
			if err != nil {
				t.Fatalf("Profile: %v", err)
			}
			geomean := func(cfg pibe.BuildConfig, base []pibe.Latency) float64 {
				img, err := sys.Build(cfg)
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				lat, err := img.MeasureLMBench(pibe.LMBench)
				if err != nil {
					t.Fatalf("measure: %v", err)
				}
				if base == nil {
					return 0
				}
				var ovs []float64
				for i := range base {
					ovs = append(ovs, pibe.Overhead(base[i].Micros, lat[i].Micros))
				}
				return pibe.Geomean(ovs)
			}
			baseImg, err := sys.Build(pibe.BuildConfig{})
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			base, err := baseImg.MeasureLMBench(pibe.LMBench)
			if err != nil {
				t.Fatalf("measure: %v", err)
			}
			opt := pibe.OptimizeConfig{ICPBudget: 0.99999, InlineBudget: 0.999999, LaxBudget: 0.99}
			noopt := geomean(pibe.BuildConfig{Defenses: pibe.AllDefenses}, base)
			pgo := geomean(pibe.BuildConfig{Profile: profile, Optimize: opt}, base)
			full := geomean(pibe.BuildConfig{Profile: profile, Defenses: pibe.AllDefenses, Optimize: opt}, base)
			t.Logf("seed %d: no-opt %+.1f%%, pgo %+.1f%%, optimized %+.1f%%",
				seed, 100*noopt, 100*pgo, 100*full)
			if noopt < 0.8 {
				t.Errorf("no-opt geomean %.1f%%: defenses should be severe", 100*noopt)
			}
			if pgo > 0 {
				t.Errorf("PGO-only geomean %.1f%%: should be a speedup", 100*pgo)
			}
			if full > noopt/4 {
				t.Errorf("optimized %.1f%% vs unoptimized %.1f%%: want a large reduction",
					100*full, 100*noopt)
			}
		})
	}
}

// TestOverheadZeroBase: a zero baseline is an infinite regression, not a
// free lunch. Overhead(0, new>0) must be +Inf — not the old silent 0,
// which reported a benchmark whose baseline measurement failed or
// returned zero as having "no overhead" — and only the doubly-degenerate
// Overhead(0, 0) is 0. Geomean then skips the Inf (GeomeanCounted
// counts it), so the broken baseline surfaces as a skipped entry rather
// than flattening the aggregate.
func TestOverheadZeroBase(t *testing.T) {
	if got := pibe.Overhead(0, 12.5); !math.IsInf(got, 1) {
		t.Errorf("Overhead(0, 12.5) = %v, want +Inf", got)
	}
	if got := pibe.Overhead(0, 0); got != 0 {
		t.Errorf("Overhead(0, 0) = %v, want 0", got)
	}
	if got := pibe.Overhead(10, 15); got != 0.5 {
		t.Errorf("Overhead(10, 15) = %v, want 0.5", got)
	}

	// End to end through the aggregate: the Inf from a zero baseline is
	// skipped and counted, leaving the healthy entries' geomean.
	ovs := []float64{pibe.Overhead(0, 12.5), pibe.Overhead(10, 11), pibe.Overhead(10, 11)}
	g, stats := pibe.GeomeanCounted(ovs)
	if stats.Skipped != 1 || stats.Clamped != 0 {
		t.Errorf("stats = %+v, want exactly the one Inf skipped", stats)
	}
	if math.Abs(g-0.1) > 1e-12 {
		t.Errorf("geomean = %v, want 0.1 from the finite entries", g)
	}
}
