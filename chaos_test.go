package pibe_test

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	pibe "repro"
	"repro/internal/bench"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/ir"
	profpkg "repro/internal/prof"
	"repro/internal/resilience"
	"repro/internal/sweep"
)

// The chaos suite runs the full profile→optimize→harden→measure pipeline
// under a matrix of injected faults and asserts the graceful-degradation
// contract: zero panics, every built image passes ir.Verify, transient
// measurement faults are absorbed by retry/backoff, aborted profiling
// runs yield usable partial profiles, and measured latencies stay within
// a per-scenario tolerance of the fault-free control run.

// chaosBenches is the benchmark subset each scenario measures.
var chaosBenches = []string{"read", "open"}

// chaosScenario is one cell of the fault matrix.
type chaosScenario struct {
	name string
	// rates arms the system injector for profiling/measurement chaos.
	rates pibe.FaultRates
	// maxFaults caps injected faults so retries are guaranteed to converge.
	maxFaults int
	// mangle post-processes the serialized clean profile (torn writes,
	// corrupt records) before it is lenient-read back.
	mangle pibe.FaultRates
	// zeroWeight replaces the profile with an empty (all-zero-weight) one.
	zeroWeight bool
	// wantAbort requires the profiling run to abort with a usable
	// non-empty partial profile.
	wantAbort bool
	// tol bounds the measured-latency ratio vs the fault-free control:
	// each benchmark must land within [control/tol, control*tol].
	tol float64
}

func chaosMatrix() []chaosScenario {
	return []chaosScenario{
		{name: "fault-free-control", tol: 1.0001},
		{name: "interp-trap", rates: pibe.FaultRates{Trap: 2e-4}, wantAbort: true, tol: 4},
		{name: "fuel-exhaustion", rates: pibe.FaultRates{Fuel: 2e-5}, wantAbort: true, tol: 4},
		{name: "depth-exhaustion", rates: pibe.FaultRates{Depth: 2e-4}, wantAbort: true, tol: 4},
		{name: "profile-truncation", mangle: pibe.FaultRates{Truncate: 1}, tol: 4},
		{name: "corrupt-profile-record", mangle: pibe.FaultRates{Corrupt: 1}, tol: 1.5},
		// Fault caps stay below DefaultRetry's 4 attempts so the final
		// attempt is guaranteed fault-free.
		{name: "transient-measure-failure", rates: pibe.FaultRates{Measure: 0.4}, maxFaults: 3, tol: 1.25},
		{name: "zero-weight-profile", zeroWeight: true, tol: 10},
		{name: "combined-trap-and-transients", rates: pibe.FaultRates{Trap: 1e-4, Measure: 0.4}, maxFaults: 3, wantAbort: true, tol: 4},
	}
}

// chaosBuild is the all-defenses optimized configuration every scenario
// builds.
func chaosBuild(p *pibe.Profile) pibe.BuildConfig {
	return pibe.BuildConfig{
		Profile:  p,
		Defenses: pibe.AllDefenses,
		Optimize: pibe.OptimizeConfig{ICPBudget: 0.99999, InlineBudget: 0.999, LaxBudget: 0.99},
	}
}

// runChaosPipeline executes one scenario end to end and returns the
// measured latencies keyed by benchmark.
func runChaosPipeline(t *testing.T, sys *pibe.System, sc chaosScenario) map[string]float64 {
	t.Helper()
	var inject *resilience.Injector
	if sc.rates != (pibe.FaultRates{}) {
		inject = sys.InjectFaults(int64(1000+len(sc.name)), sc.rates, sc.maxFaults)
	}
	defer sys.InjectFaults(0, pibe.FaultRates{}, 0)

	// Phase 1: profile, possibly aborting into a partial profile.
	p, err := sys.Profile(pibe.LMBench, 2)
	if sc.wantAbort {
		if err == nil || !pibe.IsPartialProfileErr(err) {
			t.Fatalf("expected an aborted profiling run, got err=%v", err)
		}
		if p == nil || len(p.Raw().Sites) == 0 {
			t.Fatalf("aborted profiling run did not yield a non-empty partial profile (err=%v)", err)
		}
	} else if err != nil {
		t.Fatalf("Profile: %v", err)
	}

	// Phase 2: optional serialization damage (torn write / corrupt
	// record) salvaged by the lenient reader.
	if sc.mangle != (pibe.FaultRates{}) {
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		mangler := resilience.NewInjector(7, sc.mangle)
		damaged, kinds := mangler.MangleProfile(buf.Bytes())
		if len(kinds) == 0 {
			t.Fatal("mangler applied no damage")
		}
		salvaged, sal, err := pibe.ReadProfileLenient(bytes.NewReader(damaged))
		if err != nil {
			t.Fatalf("ReadProfileLenient: %v", err)
		}
		if sal.Clean() {
			t.Fatalf("damaged profile read back clean; salvage = %s", sal)
		}
		if sal.Kept == 0 || len(salvaged.Raw().Sites) == 0 {
			t.Fatalf("nothing salvaged from damaged profile: %s", sal)
		}
		p = salvaged
	}
	if sc.zeroWeight {
		empty, err := pibe.ReadProfile(strings.NewReader("pibe-profile v1\nops 0\n"))
		if err != nil {
			t.Fatalf("empty profile: %v", err)
		}
		p = empty
	}

	// Phase 3: build. The image must verify.
	img, err := sys.Build(chaosBuild(p))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := ir.Verify(img.Mod, ir.VerifyOptions{}); err != nil {
		t.Fatalf("built image does not verify: %v", err)
	}

	// Phase 4: measure. Transient faults must be absorbed by retry.
	lats := make(map[string]float64, len(chaosBenches))
	for _, b := range chaosBenches {
		lat, err := img.MeasureBenchmark(pibe.LMBench, b)
		if err != nil {
			t.Fatalf("MeasureBenchmark(%s): %v", b, err)
		}
		if lat.Micros <= 0 || math.IsNaN(lat.Micros) || math.IsInf(lat.Micros, 0) {
			t.Fatalf("MeasureBenchmark(%s) = %v µs", b, lat.Micros)
		}
		lats[b] = lat.Micros
	}

	if sc.rates.Measure > 0 {
		counts := inject.Counts()
		if counts[resilience.KindTransient] == 0 {
			t.Fatal("transient-measure scenario injected no transient faults")
		}
	}
	return lats
}

func TestChaosMatrix(t *testing.T) {
	sys := testSystem(t)
	matrix := chaosMatrix()
	if matrix[0].name != "fault-free-control" {
		t.Fatal("control scenario must run first")
	}
	control := runChaosPipeline(t, sys, matrix[0])
	for _, sc := range matrix[1:] {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			lats := runChaosPipeline(t, sys, sc)
			for _, b := range chaosBenches {
				ratio := lats[b] / control[b]
				if ratio > sc.tol || ratio < 1/sc.tol {
					t.Errorf("%s latency %.3fµs is %.2fx the fault-free control %.3fµs (tolerance %gx)",
						b, lats[b], ratio, control[b], sc.tol)
				}
			}
		})
	}
}

// TestPartialProfileMergeWorkflow covers the degraded-operations path end
// to end: a profiling run aborted by injected faults yields a partial
// profile, that partial merges with a clean profile from another
// workload, and the merged profile drives a build that verifies and
// measures successfully.
func TestPartialProfileMergeWorkflow(t *testing.T) {
	sys := testSystem(t)

	sys.InjectFaults(99, pibe.FaultRates{Trap: 2e-4}, 0)
	partial, err := sys.Profile(pibe.LMBench, 2)
	sys.InjectFaults(0, pibe.FaultRates{}, 0)
	if err == nil || !pibe.IsPartialProfileErr(err) {
		t.Fatalf("expected aborted profiling run, got %v", err)
	}
	if partial == nil || len(partial.Raw().Sites) == 0 {
		t.Fatal("no usable partial profile")
	}
	fe, ok := pibe.IsFault(err)
	if !ok || !fe.Injected || fe.Phase != resilience.PhaseExecute {
		t.Fatalf("abort error lacks structured fault detail: %+v ok=%v", fe, ok)
	}

	clean, err := sys.Profile(pibe.Apache, 2)
	if err != nil {
		t.Fatalf("clean profile: %v", err)
	}
	sitesBefore := len(clean.Raw().Sites)
	clean.Merge(partial)
	if len(clean.Raw().Sites) < sitesBefore {
		t.Fatal("merge lost sites")
	}

	img, err := sys.Build(chaosBuild(clean))
	if err != nil {
		t.Fatalf("Build with merged partial profile: %v", err)
	}
	if err := ir.Verify(img.Mod, ir.VerifyOptions{}); err != nil {
		t.Fatalf("image from merged partial profile does not verify: %v", err)
	}
	lat, err := img.MeasureBenchmark(pibe.LMBench, "read")
	if err != nil || lat.Micros <= 0 {
		t.Fatalf("measurement on merged-profile image: %v (%.3fµs)", err, lat.Micros)
	}
}

// TestFleetUnderFaults runs the continuous-profiling fleet with a seeded
// chaos injector tripping interpreter traps inside the collectors, and
// asserts the degradation contract: the fleet neither panics nor aborts,
// the run is marked partial with at least one aborted collector, and the
// final aggregate is a usable non-empty partial profile that still
// drives drift detection into the rebuild pipeline. The promotion gates
// then decide freely — a candidate optimized for a trap-truncated
// aggregate may regress the canary and be rolled back — but every
// decision must be recorded.
func TestFleetUnderFaults(t *testing.T) {
	sys := testSystem(t)
	baseline := testProfile(t, sys)

	inj := sys.InjectFaults(1234, pibe.FaultRates{Trap: 3e-4}, 0)
	defer sys.InjectFaults(0, pibe.FaultRates{}, 0)

	fl, err := sys.NewFleet(baseline, pibe.FleetConfig{
		Runners:        4,
		Shards:         4,
		Epochs:         2,
		Seed:           77,
		Mix:            []pibe.Workload{pibe.Apache, pibe.Nginx},
		DriftThreshold: 0.75,
		Build:          chaosBuild(nil),
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	res, err := fl.Run()
	if err != nil {
		t.Fatalf("fleet aborted instead of degrading to a partial aggregate: %v", err)
	}
	if inj.Total() == 0 {
		t.Fatal("no faults fired; the scenario tested nothing")
	}
	if !res.Partial {
		t.Fatal("faults fired but the run is not marked partial")
	}
	var aborted int
	for _, e := range res.Epochs {
		aborted += e.Aborted + e.Failed
	}
	if aborted == 0 {
		t.Fatal("no collector aborted under injected traps")
	}
	if res.Final == nil || len(res.Final.Raw().Sites) == 0 {
		t.Fatal("partial aggregate is empty")
	}
	var rebuilt bool
	for _, e := range res.Epochs {
		rebuilt = rebuilt || e.Rebuilt
		if e.Rebuilt && !e.Promoted && e.Rejected == "" && !e.Canary {
			t.Errorf("epoch %d rebuilt but recorded no promotion decision: %+v", e.Epoch, e)
		}
	}
	if !rebuilt {
		t.Errorf("partial aggregate did not drive a drift rebuild attempt; epochs: %+v", res.Epochs)
	}
	if res.Rebuilds+res.Rejections == 0 {
		t.Errorf("rebuild pipeline reached no decision: %+v", res)
	}
}

// TestFleetCrashMidEpochResume kills a crash-safe fleet in the middle of
// an epoch — a measurement blackout makes the epoch's pipeline fail
// after collection but before its checkpoint is written — and asserts
// the crash-safety contract: at most the in-flight epoch is lost, and a
// resume from the same state directory converges on exactly the final
// aggregate, promotion count and image of a run that never crashed.
func TestFleetCrashMidEpochResume(t *testing.T) {
	sys := testSystem(t)
	baseline := testProfile(t, sys)
	mkCfg := func(dir string) pibe.FleetConfig {
		return pibe.FleetConfig{
			Runners:        4,
			Shards:         4,
			Epochs:         2,
			Seed:           42,
			Mix:            []pibe.Workload{pibe.Apache, pibe.Nginx},
			DriftThreshold: 0.75,
			Build:          chaosBuild(nil),
			Measure:        true,
			MeasureApp:     pibe.Apache,
			StateDir:       dir,
		}
	}

	// Crash run: every measurement fails, so epoch 0's trajectory sample
	// errors out mid-epoch, before the checkpoint write.
	dirB := t.TempDir()
	inj := sys.InjectFaults(99, pibe.FaultRates{Measure: 1}, 0)
	flB, err := sys.NewFleet(baseline, mkCfg(dirB))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	if _, err := flB.Run(); err == nil {
		t.Fatal("measurement blackout did not crash the run")
	}
	if inj.Total() == 0 {
		t.Fatal("no faults fired; the scenario tested nothing")
	}
	sys.InjectFaults(0, pibe.FaultRates{}, 0)

	// At most the in-flight epoch may be lost: the crash happened during
	// epoch 0, so no completed epoch may be checkpointed.
	if st, _, err := fleet.LoadState(dirB); err != nil {
		t.Fatalf("LoadState after crash: %v", err)
	} else if st != nil && st.Epoch > 0 {
		t.Fatalf("crashed epoch was checkpointed as complete: %d", st.Epoch)
	}

	// Resume replays the lost epoch and finishes; a reference run that
	// never crashed must be indistinguishable.
	flR, err := sys.NewFleet(baseline, mkCfg(dirB))
	if err != nil {
		t.Fatalf("NewFleet resume: %v", err)
	}
	resR, err := flR.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	dirC := t.TempDir()
	flC, err := sys.NewFleet(baseline, mkCfg(dirC))
	if err != nil {
		t.Fatalf("NewFleet reference: %v", err)
	}
	resC, err := flC.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if resR.Rebuilds != resC.Rebuilds || resR.Rejections != resC.Rejections {
		t.Errorf("resumed counters (rebuilds %d, rejections %d) != reference (%d, %d)",
			resR.Rebuilds, resR.Rejections, resC.Rebuilds, resC.Rejections)
	}
	var rb, cb bytes.Buffer
	resR.Final.WriteTo(&rb)
	resC.Final.WriteTo(&cb)
	if !bytes.Equal(rb.Bytes(), cb.Bytes()) {
		t.Error("resumed final aggregate differs from the never-crashed run")
	}
	cr, err := flR.Image().MeasureRequestCycles(pibe.Apache)
	if err != nil {
		t.Fatalf("measure resumed image: %v", err)
	}
	cc, err := flC.Image().MeasureRequestCycles(pibe.Apache)
	if err != nil {
		t.Fatalf("measure reference image: %v", err)
	}
	if cr != cc {
		t.Errorf("resumed fleet serves a different image: %.0f vs %.0f request cycles", cr, cc)
	}
}

// TestSweepUnderFaults runs the budget-grid sweep engine under injected
// measurement chaos and asserts its graceful-degradation contract. With
// every measurement failing, the sweep must still complete: each cell
// degrades to a structured failure record (transient, injected) instead
// of aborting the run, the failures are surfaced per combo as FAIL
// entries plus warning notes in the rendered matrices, and knee
// detection excludes them entirely. With a bounded fault burst that
// retry can absorb, the sweep must instead emit a report byte-identical
// to the fault-free run's — retries leave no trace in the output.
func TestSweepUnderFaults(t *testing.T) {
	// The suite's singleflight cache means a second Run on the same
	// suite never re-measures (cached cells shadow the injector), so
	// every scenario gets a fresh suite with a pre-warmed baseline —
	// injected faults then land on grid cells (which degrade per-cell)
	// rather than on sweep setup (which is fatal).
	newSuite := func() *bench.Suite {
		t.Helper()
		suite, err := bench.NewSuiteKernel(pibe.KernelConfig{Seed: 5, ColdFuncs: 300})
		if err != nil {
			t.Fatalf("NewSuiteKernel: %v", err)
		}
		suite.Sys.SetMeasureWorkers(2)
		if _, err := suite.Baseline(); err != nil {
			t.Fatalf("Baseline: %v", err)
		}
		return suite
	}
	combos, err := sweep.CombosByName("retpoline,all")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sweep.Config{
		ICPGrid:    []float64{0, 0.999},
		InlineGrid: []float64{0, 0.999},
		Combos:     combos,
		// Keep the chaos run fast: exhaust retries without real backoff.
		Retry: resilience.RetryPolicy{Sleep: func(time.Duration) {}},
		Warnf: t.Logf,
	}
	cleanRep, err := sweep.Run(newSuite(), cfg)
	if err != nil {
		t.Fatalf("fault-free Run: %v", err)
	}

	// Total measurement blackout: every cell fails, the sweep survives.
	suite := newSuite()
	inj := suite.Sys.InjectFaults(4321, pibe.FaultRates{Measure: 1}, 0)
	rep, err := sweep.Run(suite, cfg)
	suite.Sys.InjectFaults(0, pibe.FaultRates{}, 0)
	if err != nil {
		t.Fatalf("sweep aborted under measurement blackout instead of degrading: %v", err)
	}
	if inj.Total() == 0 {
		t.Fatal("no faults fired; the scenario tested nothing")
	}
	total := len(combos) * 2 * 2
	if rep.FailedCells != total || len(rep.Cells) != total {
		t.Fatalf("FailedCells = %d of %d cells, want all %d failed", rep.FailedCells, len(rep.Cells), total)
	}
	for _, c := range rep.Cells {
		if !c.Failed || !c.FailureInjected || c.FailureKind != string(resilience.KindTransient) {
			t.Fatalf("cell %+v lacks structured transient-injected failure detail", c)
		}
	}
	if len(rep.Knees) != 0 {
		t.Errorf("knees = %+v computed from failed cells, want none", rep.Knees)
	}
	rendered := ""
	for _, tab := range rep.Tables() {
		rendered += tab.Render()
	}
	for _, combo := range combos {
		if !strings.Contains(rendered, "sweep-"+combo.Name) {
			t.Errorf("rendered matrices missing combo %q", combo.Name)
		}
	}
	for _, want := range []string{"FAIL", "warning:", "excluded from knee detection", "[injected]"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered matrices missing %q:\n%s", want, rendered)
		}
	}

	// A bounded burst (fewer faults than retry attempts) is absorbed by
	// the retry loop: no cell degrades, every combo still gets a knee,
	// and the surface stays close to the fault-free one. (Exact byte
	// identity is out of reach here by design: an armed injector routes
	// measurement through the legacy serial driver, whose values differ
	// slightly from the sharded driver's.)
	suite = newSuite()
	inj = suite.Sys.InjectFaults(4321, pibe.FaultRates{Measure: 0.4}, 3)
	rep, err = sweep.Run(suite, cfg)
	suite.Sys.InjectFaults(0, pibe.FaultRates{}, 0)
	if err != nil {
		t.Fatalf("Run under bounded faults: %v", err)
	}
	if inj.Total() == 0 {
		t.Fatal("bounded-burst scenario injected nothing")
	}
	if rep.FailedCells != 0 {
		t.Fatalf("bounded burst left %d failed cells, want all absorbed by retry", rep.FailedCells)
	}
	if len(rep.Knees) != len(combos) {
		t.Errorf("knees = %+v, want one per combo", rep.Knees)
	}
	cleanAt := make(map[string]float64, len(cleanRep.Cells))
	for _, c := range cleanRep.Cells {
		cleanAt[fmt.Sprintf("%s/%g/%g", c.Combo, c.ICPBudget, c.InlineBudget)] = c.Geomean
	}
	for _, c := range rep.Cells {
		clean := cleanAt[fmt.Sprintf("%s/%g/%g", c.Combo, c.ICPBudget, c.InlineBudget)]
		if ratio := (1 + c.Geomean) / (1 + clean); ratio > 1.1 || ratio < 1/1.1 {
			t.Errorf("cell %s icp %g inl %g drifted under absorbed faults: %v vs clean %v",
				c.Combo, c.ICPBudget, c.InlineBudget, c.Geomean, clean)
		}
	}
}

// TestIngestUnderChaos runs the multi-tenant ingestion front under
// concurrent chaos: a poison tenant shipping structurally malformed
// deltas every round while every legitimate tenant floods past its
// admission rate into a merge queue small enough to shed. The bulkhead
// contract under test: the service degrades per-tenant — poison is
// rejected by sanitation, the poison tenant's breaker quarantines it,
// floods are throttled, queue overflow is shed — and the run never
// aborts, panics, or lets a malformed delta reach the global aggregate.
func TestIngestUnderChaos(t *testing.T) {
	base := profpkg.New()
	for i := 0; i < 24; i++ {
		id := ir.SiteID(i + 1)
		if i%2 == 0 {
			base.AddDirect(id, fmt.Sprintf("fn%d", i%6), fmt.Sprintf("callee%d", i), 1)
		} else {
			for j := 0; j < 3; j++ {
				base.AddIndirect(id, fmt.Sprintf("fn%d", i%6), fmt.Sprintf("t%d", j), 20)
			}
		}
	}
	sim, err := ingest.NewSim(ingest.SimConfig{
		Tenants: 8, Kernels: 8, Rounds: 6, Workers: 8,
		SitesPerDelta: 4, Seed: 7,
		Bases:  []ingest.Base{{Name: "chaos", Prof: base}},
		Poison: &ingest.PoisonConfig{Kernels: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ingest.Open(ingest.Config{
		Workers: 4, BatchSize: 2, QueueDepth: 1, Shed: true,
		TenantRate: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if err := sim.Run(svc); err != nil {
		t.Fatalf("ingest aborted under chaos instead of degrading: %v", err)
	}

	st := svc.Stats()
	if st.Poison == 0 {
		t.Error("no poison rejections; the scenario tested nothing")
	}
	if st.Throttled == 0 {
		t.Error("no admission-control refusals under flooding")
	}
	if st.Trips == 0 {
		t.Error("the poison tenant never tripped its breaker")
	}
	for _, reason := range []string{"poison", "throttle"} {
		if st.ShedByReason[reason] == 0 {
			t.Errorf("shed-by-reason breakdown missing %q drops: %v", reason, st.ShedByReason)
		}
	}
	var row ingest.TenantStat
	for _, ts := range st.Tenants {
		if ts.ID == ingest.PoisonTenantID {
			row = ts
		}
	}
	if row.ID == "" {
		t.Fatal("poison tenant missing from stats")
	}
	// A tenant whose every probe faults can never heal: it must be
	// either quarantined or on (doomed) probation, never healthy.
	if row.Health != "quarantined" && row.Health != "probation" {
		t.Errorf("poison tenant health %q after sustained poison, want quarantined/probation", row.Health)
	}
	if row.Trips == 0 || row.Poison == 0 {
		t.Errorf("poison tenant row lost its fault tallies: %+v", row)
	}

	// Nothing malformed may have leaked into the global aggregate.
	snap := svc.GlobalSnapshot()
	if len(snap.Sites) == 0 {
		t.Error("global aggregate is empty; legitimate traffic was lost entirely")
	}
	for id, site := range snap.Sites {
		if site.Caller == "poison_caller" {
			t.Errorf("poison site %d leaked into the global aggregate", id)
		}
	}
}

// TestOptimizeConfigValidation covers the satellite requirement: NaN,
// negative and >1 budgets and negative MaxICPTargets are rejected with
// structured errors instead of silently misbehaving.
func TestOptimizeConfigValidation(t *testing.T) {
	sys := testSystem(t)
	p := testProfile(t, sys)
	bad := []pibe.OptimizeConfig{
		{ICPBudget: math.NaN()},
		{InlineBudget: math.NaN()},
		{LaxBudget: math.NaN()},
		{ICPBudget: -0.1},
		{InlineBudget: 1.5},
		{LaxBudget: -2},
		{ICPBudget: 0.5, MaxICPTargets: -1},
	}
	for _, o := range bad {
		_, err := sys.Build(pibe.BuildConfig{Profile: p, Optimize: o})
		if err == nil {
			t.Errorf("Build accepted invalid OptimizeConfig %+v", o)
			continue
		}
		fe, ok := pibe.IsFault(err)
		if !ok || fe.Kind != resilience.KindConfig {
			t.Errorf("invalid config %+v: error not structured as config fault: %v", o, err)
		}
	}
	// The valid boundary cases still build.
	for _, o := range []pibe.OptimizeConfig{{}, {ICPBudget: 1, InlineBudget: 1, LaxBudget: 1}} {
		if _, err := sys.Build(pibe.BuildConfig{Profile: p, Optimize: o}); err != nil {
			t.Errorf("Build rejected valid OptimizeConfig %+v: %v", o, err)
		}
	}
}
