// Quickstart: the whole PIBE pipeline in one screen.
//
//	go run ./examples/quickstart
//
// It generates the synthetic kernel, collects an LMBench profile, builds
// three images (LTO baseline, fully defended, fully defended + PIBE), and
// prints the paper's headline comparison.
package main

import (
	"fmt"
	"log"

	pibe "repro"
)

func main() {
	// 1. Generate the kernel substrate (deterministic per seed).
	sys, err := pibe.NewSyntheticKernel(pibe.KernelConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Profiling run: execute a representative workload on the
	// profiling binary and collect per-call-site execution counts plus
	// indirect-target value profiles.
	profile, err := sys.Profile(pibe.LMBench, 5)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Build three production images.
	baseline, err := sys.Build(pibe.BuildConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defended, err := sys.Build(pibe.BuildConfig{Defenses: pibe.AllDefenses})
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := sys.Build(pibe.BuildConfig{
		Profile:  profile,
		Defenses: pibe.AllDefenses,
		Optimize: pibe.OptimizeConfig{
			ICPBudget:    0.99999,  // promote 99.999% of indirect-call weight
			InlineBudget: 0.999999, // inline 99.9999% of return weight
			LaxBudget:    0.99,     // "lax heuristics" inside the 99% budget
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inlined %d call sites, promoted %d indirect-call targets\n",
		optimized.Opt.Inline.Inlined, optimized.Opt.ICP.PromotedTargets)

	// 4. Measure all three under LMBench.
	baseLat, err := baseline.MeasureLMBench(pibe.LMBench)
	if err != nil {
		log.Fatal(err)
	}
	defLat, err := defended.MeasureLMBench(pibe.LMBench)
	if err != nil {
		log.Fatal(err)
	}
	optLat, err := optimized.MeasureLMBench(pibe.LMBench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %10s %12s %12s\n", "test", "LTO µs", "all-defenses", "PIBE")
	var defOv, optOv []float64
	for i := range baseLat {
		d := pibe.Overhead(baseLat[i].Micros, defLat[i].Micros)
		o := pibe.Overhead(baseLat[i].Micros, optLat[i].Micros)
		defOv = append(defOv, d)
		optOv = append(optOv, o)
		fmt.Printf("%-14s %10.2f %+11.1f%% %+11.1f%%\n", baseLat[i].Bench, baseLat[i].Micros, 100*d, 100*o)
	}
	fmt.Printf("%-14s %10s %+11.1f%% %+11.1f%%\n", "GEOMEAN", "-",
		100*pibe.Geomean(defOv), 100*pibe.Geomean(optOv))
	fmt.Println("\npaper: 149.1% -> 10.6% (an order of magnitude)")
}
