// Workload-robustness example (§8.4 of the paper): how much does it hurt
// to optimize the kernel with the *wrong* profile?
//
//	go run ./examples/workload-robustness
//
// A binary vendor cannot profile every customer's workload. PIBE's answer
// is that a mismatched profile still removes most of the defense
// overhead, because hot kernel paths overlap across workloads. This
// example optimizes with an Apache profile, measures LMBench, and
// compares against the matched-profile and unoptimized images, plus the
// default-LLVM-inliner strawman.
package main

import (
	"fmt"
	"log"

	pibe "repro"
)

func main() {
	sys, err := pibe.NewSyntheticKernel(pibe.KernelConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	lmProfile, err := sys.Profile(pibe.LMBench, 5)
	if err != nil {
		log.Fatal(err)
	}
	apProfile, err := sys.Profile(pibe.Apache, 4)
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := sys.Build(pibe.BuildConfig{})
	if err != nil {
		log.Fatal(err)
	}
	baseLat, err := baseline.MeasureLMBench(pibe.LMBench)
	if err != nil {
		log.Fatal(err)
	}

	opt := pibe.OptimizeConfig{ICPBudget: 0.99999, InlineBudget: 0.999999, LaxBudget: 0.99}
	configs := []struct {
		name string
		cfg  pibe.BuildConfig
	}{
		{"no optimization", pibe.BuildConfig{Defenses: pibe.AllDefenses}},
		{"matched profile (LMBench)", pibe.BuildConfig{Profile: lmProfile, Defenses: pibe.AllDefenses, Optimize: opt}},
		{"mismatched profile (Apache)", pibe.BuildConfig{Profile: apProfile, Defenses: pibe.AllDefenses, Optimize: opt}},
		{"default LLVM inliner", pibe.BuildConfig{Profile: lmProfile, Defenses: pibe.AllDefenses,
			Optimize: pibe.OptimizeConfig{InlineBudget: 0.999999, UseLLVMInliner: true}}},
	}
	fmt.Printf("%-30s %10s\n", "configuration", "geomean")
	for _, c := range configs {
		img, err := sys.Build(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		lat, err := img.MeasureLMBench(pibe.LMBench)
		if err != nil {
			log.Fatal(err)
		}
		var ovs []float64
		for i := range baseLat {
			ovs = append(ovs, pibe.Overhead(baseLat[i].Micros, lat[i].Micros))
		}
		fmt.Printf("%-30s %+9.1f%%\n", c.name, 100*pibe.Geomean(ovs))
	}
	fmt.Println("\npaper: 149.1% / 10.6% / 22.5% / 100.2% — a mismatched profile")
	fmt.Println("keeps most of the win; a weight-blind inliner loses almost all of it.")
}
