// Attack-demo example: simulate the three transient control-flow attacks
// of the paper's threat model against one indirect call site and one
// return, under each hardening configuration.
//
//	go run ./examples/attack-demo
//
// The microarchitectural model exposes the attacker's primitives —
// poisoning the branch target buffer (Spectre V2), poisoning the return
// stack buffer (Ret2spec), and injecting a value into a faulting target
// load (LVI) — and reports whether speculation reaches the attacker's
// gadget.
package main

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/cpu"
	"repro/internal/ir"
)

func main() {
	forward := []ir.Defense{
		ir.DefNone, ir.DefRetpoline, ir.DefLVI, ir.DefFencedRetpoline,
	}
	backward := []ir.Defense{
		ir.DefNone, ir.DefRetRetpoline, ir.DefLVIRet, ir.DefFencedRetRet,
	}

	fmt.Println("forward edge (indirect call at 0x401000):")
	fmt.Printf("  %-22s %-12s %-12s\n", "defense", "Spectre V2", "LVI")
	for _, d := range forward {
		m := cpu.New(cpu.DefaultParams())
		v2 := attack.SpectreV2(m, 0x401000, d)
		lvi := attack.LVI(d)
		fmt.Printf("  %-22s %-12s %-12s\n", d, verdict(v2), verdict(lvi))
	}

	fmt.Println("\nbackward edge (return):")
	fmt.Printf("  %-22s %-12s %-12s\n", "defense", "Ret2spec", "LVI")
	for _, d := range backward {
		m := cpu.New(cpu.DefaultParams())
		m.DirectCall(0x402000, 0) // the call whose return the attacker hijacks
		r2s := attack.Ret2spec(m, d, 4)
		lvi := attack.LVI(d)
		fmt.Printf("  %-22s %-12s %-12s\n", d, verdict(r2s), verdict(lvi))
	}

	fmt.Println("\nwhy each verdict holds:")
	m := cpu.New(cpu.DefaultParams())
	fmt.Printf("  - %s\n", attack.SpectreV2(m, 0x401000, ir.DefNone).Reason)
	fmt.Printf("  - %s\n", attack.SpectreV2(m, 0x401000, ir.DefRetpoline).Reason)
	m.DirectCall(0x402000, 0)
	fmt.Printf("  - %s\n", attack.Ret2spec(m, ir.DefRetRetpoline, 4).Reason)
	fmt.Printf("  - %s\n", attack.LVI(ir.DefRetpoline).Reason)
	fmt.Printf("  - %s\n", attack.LVI(ir.DefFencedRetpoline).Reason)
	fmt.Println("\nonly the combined fenced sequences stop every attack — which is")
	fmt.Println("why comprehensive protection needs all defenses at once (§6.3),")
	fmt.Println("and why eliding the branch entirely is so much cheaper.")
}

func verdict(o attack.Outcome) string {
	if o.Vulnerable {
		return "HIJACKED"
	}
	return "safe"
}
