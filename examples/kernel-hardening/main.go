// Kernel-hardening example: a kernel maintainer's view.
//
//	go run ./examples/kernel-hardening
//
// For each individual transient mitigation (retpolines, return
// retpolines, LVI-CFI) and the comprehensive set, it builds both an
// unoptimized and a PIBE-optimized image, then reports the LMBench
// geomean, the image growth, and the residual attack surface — the
// deployment trade-off table an administrator would consult.
package main

import (
	"fmt"
	"log"

	pibe "repro"
)

func main() {
	sys, err := pibe.NewSyntheticKernel(pibe.KernelConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	profile, err := sys.Profile(pibe.LMBench, 5)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := sys.Build(pibe.BuildConfig{})
	if err != nil {
		log.Fatal(err)
	}
	baseLat, err := baseline.MeasureLMBench(pibe.LMBench)
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		d    pibe.Defenses
	}{
		{"retpolines (Spectre V2)", pibe.Defenses{Retpolines: true}},
		{"return retpolines (Ret2spec)", pibe.Defenses{RetRetpolines: true}},
		{"LVI-CFI (LVI)", pibe.Defenses{LVICFI: true}},
		{"all defenses", pibe.AllDefenses},
	}

	fmt.Printf("%-30s %12s %12s %10s %22s\n",
		"mitigation", "no-opt", "PIBE", "img growth", "residual vulnerable")
	for _, c := range configs {
		plain, err := sys.Build(pibe.BuildConfig{Defenses: c.d})
		if err != nil {
			log.Fatal(err)
		}
		opt, err := sys.Build(pibe.BuildConfig{
			Profile:  profile,
			Defenses: c.d,
			Optimize: pibe.OptimizeConfig{ICPBudget: 0.99999, InlineBudget: 0.999999, LaxBudget: 0.99},
		})
		if err != nil {
			log.Fatal(err)
		}
		gPlain := geomeanVs(baseLat, plain)
		gOpt := geomeanVs(baseLat, opt)
		rep := opt.SecurityReport()
		growth := float64(opt.Size()-baseline.Size()) / float64(baseline.Size())
		fmt.Printf("%-30s %+11.1f%% %+11.1f%% %+9.1f%% %6d icalls, %d ijumps\n",
			c.name, 100*gPlain, 100*gOpt, 100*growth,
			rep.ICallsSpectreV2, rep.IJumpsSpectreV2)
	}
	fmt.Println("\nresidual vulnerable sites are inline-assembly hypercalls and")
	fmt.Println("assembly jump tables the compiler cannot rewrite (paper §8.6).")
}

func geomeanVs(base []pibe.Latency, img *pibe.Image) float64 {
	lat, err := img.MeasureLMBench(pibe.LMBench)
	if err != nil {
		log.Fatal(err)
	}
	var ovs []float64
	for i := range base {
		ovs = append(ovs, pibe.Overhead(base[i].Micros, lat[i].Micros))
	}
	return pibe.Geomean(ovs)
}
